package mdm_test

import (
	"fmt"
	"log"

	"mdm"
)

// The minimal §5 protocol: build a crystal, thermostat it, free-run it, and
// read the observables.
func ExampleNewSimulation() {
	sim, err := mdm.NewSimulation(mdm.Config{
		Cells:       1,
		Temperature: 300,
		Dt:          1,
		Backend:     mdm.BackendReference,
		Seed:        2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = sim.Free() }()
	if err := sim.RunNVT(5); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d NaCl ions in a %.2f Å box\n", sim.N(), sim.System.L)
	fmt.Printf("thermostatted to %.0f K\n", sim.System.Temperature())
	// Output:
	// 8 NaCl ions in a 5.64 Å box
	// thermostatted to 300 K
}

// Table 4's headline: the effective speed of the current MDM.
func ExampleTable4() {
	cols, err := mdm.Table4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.2f Tflops effective\n", cols[0].Name, cols[0].EffTflops)
	// Output:
	// MDM current: 1.34 Tflops effective
}

// Table 5's hardware inventory rows.
func ExampleTable5() {
	for _, r := range mdm.Table5()[:2] {
		fmt.Printf("%s: %.0f -> %.0f\n", r.Quantity, r.Current, r.Future)
	}
	// Output:
	// Number of MDGRAPE-2 chips: 64 -> 1536
	// Number of WINE-2 chips: 2240 -> 2688
}
