package mdm

import (
	"fmt"
	"math"

	"mdm/internal/analysis"
	"mdm/internal/cellindex"
	"mdm/internal/core"
	"mdm/internal/ewald"
	"mdm/internal/md"
	"mdm/internal/mdgrape2"
	"mdm/internal/units"
	"mdm/internal/vec"
	"mdm/internal/wine2"
)

// Figure2Series is the temperature trace of one Figure 2 panel.
type Figure2Series struct {
	Cells int       // rock-salt cells per side
	N     int       // particle count
	Times []float64 // ps
	Temps []float64 // K
	Mean  float64
	Std   float64
}

// Figure2Config parameterizes the temperature-fluctuation experiment of
// Figure 2. The paper ran N = 1.10×10⁵, 1.48×10⁶ and 1.88×10⁷ particles for
// 2,000 NVT + 1,000 NVE steps at 1,200 K; this reproduction runs the same
// protocol at laptop-feasible N (the claim under test — σ_T ∝ N^(-1/2) — is
// independent of the absolute scale).
type Figure2Config struct {
	CellsList   []int   // e.g. {2, 3, 4}: N = 64, 216, 512 …
	NVTSteps    int     // default 120
	NVESteps    int     // default 60
	Temperature float64 // default 1200 K
	Dt          float64 // default 2 fs
	Backend     Backend // default BackendMDM
	Seed        int64   // default 1
}

func (c *Figure2Config) fillDefaults() {
	if len(c.CellsList) == 0 {
		c.CellsList = []int{2, 3, 4}
	}
	if c.NVTSteps == 0 {
		c.NVTSteps = 120
	}
	if c.NVESteps == 0 {
		c.NVESteps = 60
	}
	if c.Temperature == 0 {
		c.Temperature = 1200
	}
	if c.Dt == 0 {
		c.Dt = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RunFigure2 executes the protocol for every system size and returns the
// temperature traces plus the (N, σ_T/T) points with the fitted power law.
// The canonical-ensemble expectation is exponent ≈ -1/2: Figure 2's visual
// message, made quantitative.
func RunFigure2(cfg Figure2Config) ([]Figure2Series, []analysis.FluctuationPoint, error) {
	cfg.fillDefaults()
	var series []Figure2Series
	var pts []analysis.FluctuationPoint
	for _, cells := range cfg.CellsList {
		sim, err := NewSimulation(Config{
			Cells:          cells,
			Temperature:    cfg.Temperature,
			Dt:             cfg.Dt,
			Backend:        cfg.Backend,
			Seed:           cfg.Seed,
			PotentialEvery: 10, // the paper evaluated the potential sparsely
		})
		if err != nil {
			return nil, nil, fmt.Errorf("mdm: figure 2 at %d cells: %w", cells, err)
		}
		if err := sim.RunNVT(cfg.NVTSteps); err != nil {
			return nil, nil, err
		}
		if err := sim.RunNVE(cfg.NVESteps); err != nil {
			return nil, nil, err
		}
		// Fluctuations from the NVE segment (NVT velocity scaling pins T).
		recs := sim.Records()
		nve := recs[len(recs)-cfg.NVESteps:]
		var temps, times []float64
		for _, r := range nve {
			temps = append(temps, r.T)
			times = append(times, r.Time)
		}
		mean := analysis.Mean(temps)
		std := analysis.Std(temps)
		series = append(series, Figure2Series{
			Cells: cells,
			N:     sim.N(),
			Times: times,
			Temps: temps,
			Mean:  mean,
			Std:   std,
		})
		if mean > 0 && std > 0 {
			pts = append(pts, analysis.FluctuationPoint{
				N: sim.N(), MeanT: mean, StdT: std, RelFluc: std / mean,
			})
		}
		if err := sim.Free(); err != nil {
			return nil, nil, err
		}
	}
	return series, pts, nil
}

// Accuracy summarizes the hardware-simulator force errors against the
// float64 reference — the quantitative form of §3.4.4 ("about 10^-4.5") and
// §3.5.4 ("about 10^-7").
type Accuracy struct {
	N int
	// Wavenumber-space force error of the WINE-2 pipelines, relative to the
	// RMS reference force.
	WineWorst, WineRMS float64
	// Real-space force error of the MDGRAPE-2 pipelines against the same
	// pair walk in float64, relative to the RMS reference force.
	MDGWorst, MDGRMS float64
}

// MeasureAccuracy builds a perturbed crystal and probes both pipelines.
func MeasureAccuracy(cells int, seed int64) (*Accuracy, error) {
	if cells < 1 {
		return nil, fmt.Errorf("mdm: cells %d must be positive", cells)
	}
	sys, err := md.NewRockSalt(cells, 5.64)
	if err != nil {
		return nil, err
	}
	// Deterministic thermal-ish displacements.
	for i := range sys.Pos {
		h := float64((i*2654435761+int(seed)*97)%1000)/1000.0 - 0.5
		g := float64((i*40503+int(seed)*131)%1000)/1000.0 - 0.5
		k := float64((i*9973+int(seed)*17)%1000)/1000.0 - 0.5
		sys.Pos[i] = sys.Pos[i].Add(vec.New(h, g, k).Scale(0.5)).Wrap(sys.L)
	}
	p := ewald.ParamsForAlpha(sys.L, ewald.SReal/0.45)
	acc := &Accuracy{N: sys.N()}

	// WINE-2 vs reference wavenumber forces.
	wsys, err := wine2.NewSystem(wine2.CurrentConfig())
	if err != nil {
		return nil, err
	}
	waves := ewald.Waves(p)
	sn, cn := ewald.StructureFactors(waves, sys.Pos, sys.Charge)
	wantW := ewald.WavenumberForces(p, waves, sn, cn, sys.Pos, sys.Charge)
	gotS, gotC, err := wsys.DFT(sys.L, waves, sys.Pos, sys.Charge)
	if err != nil {
		return nil, err
	}
	gotW, err := wsys.IDFT(sys.L, waves, gotS, gotC, sys.Pos, sys.Charge)
	if err != nil {
		return nil, err
	}
	acc.WineWorst, acc.WineRMS = forceErrors(gotW, wantW)

	// MDGRAPE-2 Coulomb real-space pass vs the identical float64 pair walk.
	msys, err := mdgrape2.NewSystem(mdgrape2.CurrentConfig())
	if err != nil {
		return nil, err
	}
	if err := msys.LoadTable("ewald", core.EwaldRealG, -20, 8); err != nil {
		return nil, err
	}
	grid, err := cellindex.NewGrid(sys.L, p.RCut)
	if err != nil {
		return nil, err
	}
	js, err := mdgrape2.NewJSet(grid, sys.Pos, sys.Type)
	if err != nil {
		return nil, err
	}
	aC := p.Alpha * p.Alpha / (p.L * p.L)
	co, err := mdgrape2.NewCoeffs(2, aC, 0)
	if err != nil {
		return nil, err
	}
	co.Set(0, 0, aC, 1)
	co.Set(0, 1, aC, -1)
	co.Set(1, 1, aC, 1)
	pref := units.Coulomb * math.Pow(p.Alpha/p.L, 3)
	scale := make([]float64, sys.N())
	for i := range scale {
		scale[i] = pref
	}
	gotM, err := msys.ComputeForces("ewald", co, sys.Pos, sys.Type, scale, js)
	if err != nil {
		return nil, err
	}
	wantM := make([]vec.V, sys.N())
	sorted := js.Sorted
	for i := range sys.Pos {
		ci := grid.CellOf(sys.Pos[i])
		var accF vec.V
		for _, nb := range grid.Neighbors(ci) {
			jstart, jend := sorted.CellRange(nb.Cell)
			for j := jstart; j < jend; j++ {
				rij := sys.Pos[i].Sub(sorted.At(j).Add(nb.Shift))
				r2 := rij.Norm2()
				if r2 == 0 {
					continue
				}
				qj := sys.Charge[sorted.Order[j]]
				accF = accF.Add(rij.Scale(sys.Charge[i] * qj * core.EwaldRealG(aC*r2)))
			}
		}
		wantM[i] = accF.Scale(pref)
	}
	acc.MDGWorst, acc.MDGRMS = forceErrors(gotM, wantM)
	return acc, nil
}

// forceErrors returns the worst and RMS deviation of got from want, both
// relative to the RMS magnitude of want.
func forceErrors(got, want []vec.V) (worst, rms float64) {
	scale := vec.RMS(want)
	if scale == 0 {
		return 0, 0
	}
	sum := 0.0
	for i := range got {
		d := got[i].Sub(want[i]).Norm() / scale
		if d > worst {
			worst = d
		}
		sum += d * d
	}
	return worst, math.Sqrt(sum / float64(len(got)))
}
