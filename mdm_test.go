package mdm

import (
	"math"
	"testing"

	"mdm/internal/analysis"
)

func TestBackendString(t *testing.T) {
	if BackendMDM.String() != "MDM" || BackendReference.String() != "Reference" {
		t.Error("backend names wrong")
	}
	if Backend(9).String() == "" {
		t.Error("unknown backend should print")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	p, err := c.EwaldParams()
	if err != nil {
		t.Fatal(err)
	}
	if p.L != 2*5.64 {
		t.Errorf("default box = %g", p.L)
	}
	if p.RCut > p.L/2 {
		t.Errorf("default r_cut %g violates the minimum-image constraint", p.RCut)
	}
}

func TestNewSimulationValidation(t *testing.T) {
	if _, err := NewSimulation(Config{Backend: Backend(42)}); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := NewSimulation(Config{Cells: -1}); err == nil {
		t.Error("negative cells accepted")
	}
}

func TestReferenceSimulationProtocol(t *testing.T) {
	sim, err := NewSimulation(Config{
		Cells:       2,
		Temperature: 300,
		Dt:          1,
		Backend:     BackendReference,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sim.N() != 64 {
		t.Errorf("N = %d", sim.N())
	}
	if err := sim.RunNVT(10); err != nil {
		t.Fatal(err)
	}
	// NVT pins the temperature.
	if got := sim.System.Temperature(); math.Abs(got-300) > 1 {
		t.Errorf("T after NVT = %g", got)
	}
	if err := sim.RunNVE(30); err != nil {
		t.Fatal(err)
	}
	if got := len(sim.Records()); got != 42 {
		t.Errorf("records = %d, want 42 (initial + 10 NVT + segment marker + 30 NVE)", got)
	}
	if drift := sim.EnergyDrift(); drift > 1e-2 {
		t.Errorf("drift = %g", drift)
	}
	mean, std := sim.TemperatureStats()
	if mean <= 0 || std < 0 {
		t.Errorf("stats = %g ± %g", mean, std)
	}
	if err := sim.Free(); err != nil {
		t.Fatal(err)
	}
}

func TestMDMSimulationRuns(t *testing.T) {
	sim, err := NewSimulation(Config{
		Cells:       2,
		Temperature: 300,
		Dt:          1,
		Backend:     BackendMDM,
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunNVE(20); err != nil {
		t.Fatal(err)
	}
	if drift := sim.EnergyDrift(); drift > 1e-3 {
		t.Errorf("MDM NVE drift = %g", drift)
	}
	if err := sim.Free(); err != nil {
		t.Fatal(err)
	}
}

func TestTable4Headline(t *testing.T) {
	cols, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 {
		t.Fatalf("columns = %d", len(cols))
	}
	if eff := cols[0].EffTflops; math.Abs(eff-1.34) > 0.2 {
		t.Errorf("effective speed = %.2f Tflops, paper 1.34", eff)
	}
	if len(Table5()) != 6 {
		t.Error("Table 5 rows wrong")
	}
	if _, err := Table4At(0, 1); err == nil {
		t.Error("invalid Table4At accepted")
	}
}

func TestRunFigure2ScalingReference(t *testing.T) {
	// Short runs at two sizes: the relative fluctuation must shrink with N
	// and the fitted exponent must be near -1/2.
	series, pts, err := RunFigure2(Figure2Config{
		CellsList:   []int{2, 3},
		NVTSteps:    40,
		NVESteps:    60,
		Temperature: 1200,
		Backend:     BackendReference,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || len(pts) != 2 {
		t.Fatalf("series = %d, points = %d", len(series), len(pts))
	}
	if series[0].N != 64 || series[1].N != 216 {
		t.Errorf("N = %d, %d", series[0].N, series[1].N)
	}
	if pts[1].RelFluc >= pts[0].RelFluc {
		t.Errorf("fluctuation did not shrink: %g (N=64) vs %g (N=216)",
			pts[0].RelFluc, pts[1].RelFluc)
	}
	c, p, err := analysis.FitInverseSqrt(pts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("σ_T/T = %.3f · N^%.2f (canonical expectation: N^-0.5)", c, p)
	if p > -0.2 || p < -1.0 {
		t.Errorf("fitted exponent %.2f implausibly far from -0.5", p)
	}
}

func TestMeasureAccuracy(t *testing.T) {
	acc, err := MeasureAccuracy(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc.N != 64 {
		t.Errorf("N = %d", acc.N)
	}
	// WINE-2: the paper quotes ~1e-4.5 relative; our datapath lands between
	// 1e-6 and 1e-4 depending on the wave set.
	if acc.WineWorst <= 0 || acc.WineWorst > 1e-3 {
		t.Errorf("WINE-2 worst error = %g", acc.WineWorst)
	}
	// MDGRAPE-2: ~1e-7 pairwise; whole-force errors stay below 1e-5.
	if acc.MDGWorst <= 0 || acc.MDGWorst > 1e-4 {
		t.Errorf("MDGRAPE-2 worst error = %g", acc.MDGWorst)
	}
	if acc.WineRMS > acc.WineWorst || acc.MDGRMS > acc.MDGWorst {
		t.Error("rms exceeds worst")
	}
	t.Logf("WINE-2: worst %.2e rms %.2e (paper ~1e-4.5); MDGRAPE-2: worst %.2e rms %.2e (paper ~1e-7 pairwise)",
		acc.WineWorst, acc.WineRMS, acc.MDGWorst, acc.MDGRMS)
	if _, err := MeasureAccuracy(0, 1); err == nil {
		t.Error("cells=0 accepted")
	}
}

func TestFigure2aTemperatureDecline(t *testing.T) {
	// §5 on Figure 2a: "The gradual decrease of the temperature ... is
	// probably caused by the shortage of the time-steps for NVT ensemble. In
	// the initial condition the particles are in the crystal state whose
	// potential energy is lower than that of liquid state" — with too little
	// thermostatted equilibration, melting continues into the NVE segment
	// and converts kinetic into potential energy. Reproduce it: a short NVT
	// stage from the crystal, then NVE, and the temperature trend is down.
	sim, err := NewSimulation(Config{
		Cells:       2,
		Temperature: 1200,
		Dt:          2,
		Backend:     BackendReference,
		Seed:        6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunNVT(15); err != nil { // deliberately too short
		t.Fatal(err)
	}
	if err := sim.RunNVE(120); err != nil {
		t.Fatal(err)
	}
	recs := sim.Records()
	nve := recs[len(recs)-120:]
	mean := 0.0
	for _, r := range nve {
		mean += r.T
	}
	mean /= float64(len(nve))
	// At 64 ions the decline is not monotone (the small system sloshes
	// energy between KE and PE), but the paper's mechanism shows cleanly as
	// the NVE segment running well below the 1,200 K thermostat target:
	// continued disordering keeps converting kinetic into potential energy.
	t.Logf("mean NVE temperature = %.0f K after under-equilibrated NVT at 1200 K (paper: gradual decrease in Fig. 2a)", mean)
	if mean > 1140 {
		t.Errorf("NVE mean T = %.0f K, expected well below the 1200 K target", mean)
	}
}
