# Standard entry points; `make check` is the gate CI runs.

GO ?= go

.PHONY: all build test bench bench-json bench-smoke batch-smoke weak-smoke bench-compare vet mdmvet audit race chaos fuzz-smoke check fmt

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

bench-json:
	sh scripts/bench.sh

bench-smoke:
	GOMAXPROCS=2 $(GO) run ./cmd/mdmbench -smoke -iters 3 -reps 2

batch-smoke:
	GOMAXPROCS=1 $(GO) run ./cmd/mdmbench -batch-smoke

weak-smoke:
	$(GO) run ./cmd/mdmbench -weak-smoke

bench-compare:
	$(GO) run ./cmd/mdmbench -compare -threshold 0.2 BENCH_3.json BENCH_4.json

vet:
	$(GO) vet ./...

mdmvet:
	$(GO) run ./cmd/mdmvet -baseline mdmvet.baseline ./...

audit:
	$(GO) run ./cmd/mdmvet -audit

race:
	$(GO) test -race ./internal/fault/... ./internal/mpi/... ./internal/core/... \
		./internal/domain/... \
		./internal/parallelize/... ./internal/wine2/... ./internal/mdgrape2/... \
		./internal/cellindex/... ./internal/supervise/... ./internal/store/... \
		./internal/lifecycle/... ./internal/serve/...

chaos:
	$(GO) test -run 'Chaos|Resilient|FaultHook|RunProtocol|CheckpointFile|CheckpointTyped|Watchdog|Breaker|Journal|Supervise|Interrupt|CrashMatrix|Serve' \
		./internal/core/... ./internal/wine2/... ./internal/mdgrape2/... \
		./internal/md/... ./internal/supervise/... ./internal/serve/... \
		./cmd/mdmsim/... ./cmd/mdmserve/... .

fuzz-smoke:
	$(GO) test ./internal/fault/ -run '^$$' -fuzz FuzzParseScenario -fuzztime 3s
	$(GO) test ./internal/md/ -run '^$$' -fuzz FuzzReadCheckpoint -fuzztime 3s
	$(GO) test ./internal/supervise/ -run '^$$' -fuzz FuzzReadJournal -fuzztime 3s
	$(GO) test ./internal/store/ -run '^$$' -fuzz FuzzScanRunDir -fuzztime 3s

fmt:
	gofmt -w .

check:
	sh scripts/check.sh
