# Standard entry points; `make check` is the gate CI runs.

GO ?= go

.PHONY: all build test bench vet mdmvet race chaos check fmt

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...

mdmvet:
	$(GO) run ./cmd/mdmvet ./...

race:
	$(GO) test -race ./internal/fault/... ./internal/mpi/... ./internal/core/...

chaos:
	$(GO) test -run 'Chaos|Resilient|FaultHook|RunProtocol|CheckpointFile|CheckpointTyped' \
		./internal/core/... ./internal/wine2/... ./internal/mdgrape2/... \
		./internal/md/... ./cmd/mdmsim/...

fmt:
	gofmt -w .

check:
	sh scripts/check.sh
