# Standard entry points; `make check` is the gate CI runs.

GO ?= go

.PHONY: all build test bench vet mdmvet race check fmt

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...

mdmvet:
	$(GO) run ./cmd/mdmvet ./...

race:
	$(GO) test -race ./internal/mpi/... ./internal/core/...

fmt:
	gofmt -w .

check:
	sh scripts/check.sh
