# Standard entry points; `make check` is the gate CI runs.

GO ?= go

.PHONY: all build test bench bench-json bench-smoke vet mdmvet race chaos check fmt

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

bench-json:
	sh scripts/bench.sh

bench-smoke:
	$(GO) run ./cmd/mdmbench -smoke -iters 3 -reps 2

vet:
	$(GO) vet ./...

mdmvet:
	$(GO) run ./cmd/mdmvet ./...

race:
	$(GO) test -race ./internal/fault/... ./internal/mpi/... ./internal/core/... \
		./internal/parallelize/... ./internal/wine2/... ./internal/mdgrape2/... \
		./internal/cellindex/...

chaos:
	$(GO) test -run 'Chaos|Resilient|FaultHook|RunProtocol|CheckpointFile|CheckpointTyped' \
		./internal/core/... ./internal/wine2/... ./internal/mdgrape2/... \
		./internal/md/... ./cmd/mdmsim/...

fmt:
	gofmt -w .

check:
	sh scripts/check.sh
