#!/bin/sh
# check.sh — the repository's full verification gate, as run by `make check`
# and CI. Every step must pass; the script stops at the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> gofmt"
unformatted=$(gofmt -l . | grep -v '^\.git/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> mdmvet (fixedformat singleprec mpitags unitsmix goroutineloop)"
go run ./cmd/mdmvet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrency-bearing packages)"
go test -race ./internal/fault/... ./internal/mpi/... ./internal/core/... \
    ./internal/parallelize/... ./internal/wine2/... ./internal/mdgrape2/... \
    ./internal/cellindex/...

echo "==> bench smoke (parallel must not lose to serial on the Figure-2 step)"
go run ./cmd/mdmbench -smoke -iters 3 -reps 2

echo "==> chaos suite (fault injection, recovery, checkpoint restart)"
go test -run 'Chaos|Resilient|FaultHook|RunProtocol|CheckpointFile|CheckpointTyped' \
    ./internal/core/... ./internal/wine2/... ./internal/mdgrape2/... \
    ./internal/md/... ./cmd/mdmsim/...

echo "==> all checks passed"
