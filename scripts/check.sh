#!/bin/sh
# check.sh — the repository's full verification gate, as run by `make check`
# and CI. Every step must pass; the script stops at the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> gofmt"
unformatted=$(gofmt -l . | grep -v '^\.git/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> mdmvet (full analyzer suite incl. stepflow determinism checks, baseline-filtered)"
go run ./cmd/mdmvet -baseline mdmvet.baseline ./...

echo "==> mdmvet -audit (every //mdm:* suppression must carry a justification)"
go run ./cmd/mdmvet -audit >/dev/null

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrency-bearing packages)"
go test -race ./internal/fault/... ./internal/mpi/... ./internal/core/... \
    ./internal/domain/... \
    ./internal/parallelize/... ./internal/wine2/... ./internal/mdgrape2/... \
    ./internal/cellindex/... ./internal/supervise/... ./internal/store/... \
    ./internal/lifecycle/... ./internal/serve/...

echo "==> bench smoke (parallel must not lose to serial; pipeline overlap at GOMAXPROCS=2)"
GOMAXPROCS=2 go run ./cmd/mdmbench -smoke -iters 3 -reps 2

echo "==> batch throughput smoke (K=16 batched must amortize >=1.8x over sequential, single core)"
GOMAXPROCS=1 go run ./cmd/mdmbench -batch-smoke

echo "==> weak-scaling smoke (reuse steps stream ghost positions only; per-particle cost flat at 8 ranks)"
go run ./cmd/mdmbench -weak-smoke

echo "==> bench artifact regression gate (BENCH_3 -> BENCH_4 on the recorded families)"
go run ./cmd/mdmbench -compare -threshold 0.2 BENCH_3.json BENCH_4.json

echo "==> chaos suite (fault injection, recovery, checkpoint restart, supervision, crash matrix)"
go test -run 'Chaos|Resilient|FaultHook|RunProtocol|CheckpointFile|CheckpointTyped|Watchdog|Breaker|Journal|Supervise|Interrupt|CrashMatrix|Serve' \
    ./internal/core/... ./internal/wine2/... ./internal/mdgrape2/... \
    ./internal/md/... ./internal/supervise/... ./internal/serve/... \
    ./cmd/mdmsim/... ./cmd/mdmserve/... .

echo "==> fuzz smoke (decoders and the fault DSL must hold up under mutation)"
go test ./internal/fault/ -run '^$' -fuzz FuzzParseScenario -fuzztime 3s
go test ./internal/md/ -run '^$' -fuzz FuzzReadCheckpoint -fuzztime 3s
go test ./internal/supervise/ -run '^$' -fuzz FuzzReadJournal -fuzztime 3s
go test ./internal/store/ -run '^$' -fuzz FuzzScanRunDir -fuzztime 3s

echo "==> all checks passed"
