#!/bin/sh
# bench.sh — record a benchmark artifact for the intra-board parallelism
# layer. Picks the next free BENCH_<n>.json in the repo root and writes the
# cmd/mdmbench report there (ns/op, allocs/op and speedup at pool widths
# 1/2/4/8 for the machine force evaluation, the WINE-2 DFT/IDFT pair, the
# j-set build and the Figure-2 MD step with the concurrent pipeline off, on,
# and on with a Verlet skin), plus the interleaved pipeline-off/on headline
# comparison at the engine-balanced Ewald splitting, plus the batchThroughput
# family (simulations/sec for K in {1,4,16,64} replicas of the 216-ion system
# through one batched machine vs K sequential machines; -batch-steps 0 skips
# it), plus the weakScaling family (the spatial decomposition at 64 ions/rank
# for 1/8/27 ranks with per-tag rebuild and reuse traffic; -weak-steps 0
# skips it). The artifact records gomaxprocs and num_cpu, so baselines taken
# on single-core hosts are recognizable as serial measurements.
#
# Usage: scripts/bench.sh [extra mdmbench flags, e.g. -iters 20]
#        scripts/bench.sh -compare BENCH_a.json BENCH_b.json
#
# The -compare form renders a regression summary between two recorded
# artifacts (ns/op delta per configuration, alloc growth, pipeline speedup)
# and exits 1 when the new report regresses beyond the threshold.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "-compare" ]; then
    shift
    exec go run ./cmd/mdmbench -compare "$@"
fi

n=0
while [ -e "BENCH_${n}.json" ]; do
    n=$((n + 1))
done
out="BENCH_${n}.json"

echo "==> go run ./cmd/mdmbench -o $out $*"
go run ./cmd/mdmbench -o "$out" "$@"
