package mdm

import (
	"fmt"

	"mdm/internal/core"
	"mdm/internal/md"
)

// BatchResult is one slot's outcome from RunBatch: the final system state and
// the per-step observable track, plus the summary figures the single-run API
// exposes as methods.
type BatchResult struct {
	Seed    int64       // velocity seed the slot was initialized with
	System  *md.System  // final positions/velocities
	Records []md.Record // one sample per step (plus the initial state)

	TemperatureMean float64 // mean sampled temperature (K)
	TemperatureStd  float64 // its standard deviation (the Figure 2 quantity)
	EnergyDrift     float64 // max relative total-energy deviation over the NVE segment

	JSetRebuilds int // cell sorts this slot performed
	JSetReuses   int // force calls that reused the slot's sorted layout
}

// RunBatch runs k independent replicas of the configured system — identical
// except for the velocity seed, which is cfg.Seed + slot — through ONE
// simulated MDM, using the paper's §5 protocol: nvtSteps of velocity-scaling
// thermostat followed by nveSteps at constant energy.
//
// This is the throughput mode for small-N parameter sweeps: the machine's
// fixed per-run costs (kernel table loads, coefficient RAMs, the wavevector
// enumeration, the cell grid, every step-path scratch buffer) are paid once
// and amortized over all k replicas, and the potential energy is evaluated
// every 100 steps per slot unless cfg.PotentialEvery says otherwise — the
// paper's own bookkeeping cadence (§5), where the single-run API defaults to
// every step. Slots step serially in a fixed order, so each trajectory is
// bit-identical to running that replica alone under the same MachineConfig:
// results are independent of k and of slot order by construction.
//
// The batch driver targets the plain machine backend: cfg.Backend must be
// BackendMDM, and fault injection or supervision must be off (those layers
// wrap a single trajectory's step clock).
//
//mdm:stepflow -- hot-path root: the batch driver's run loop; its sampling closure runs between rounds, so the whole body is step-adjacent
func RunBatch(cfg Config, k, nvtSteps, nveSteps int) ([]BatchResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("mdm: batch of %d replicas", k)
	}
	if cfg.Backend != BackendMDM {
		return nil, fmt.Errorf("mdm: batch driver requires the MDM backend, got %v", cfg.Backend)
	}
	if cfg.Faults != "" {
		return nil, fmt.Errorf("mdm: batch driver does not support fault injection")
	}
	if cfg.Supervise.enabled() || cfg.Supervise.Journal != "" {
		return nil, fmt.Errorf("mdm: batch driver does not support supervision")
	}
	if cfg.Ranks != 0 {
		return nil, fmt.Errorf("mdm: batch driver does not support the spatial decomposition")
	}
	if cfg.PotentialEvery == 0 {
		// Throughput default: the paper evaluated the potential every 100
		// steps (§5). fillDefaults would pick 1 (the interactive default).
		cfg.PotentialEvery = 100
	}
	cfg.fillDefaults()
	p, err := cfg.EwaldParams()
	if err != nil {
		return nil, err
	}
	mcfg := core.CurrentMachineConfig(p)
	mcfg.PotentialEvery = cfg.PotentialEvery
	mcfg.Workers = cfg.Workers
	mcfg.Pipeline = cfg.Pipeline
	mcfg.Skin = cfg.Skin

	systems := make([]*md.System, k)
	seeds := make([]int64, k)
	for i := range systems {
		sys, err := md.NewRockSalt(cfg.Cells, cfg.Lattice)
		if err != nil {
			return nil, err
		}
		seeds[i] = cfg.Seed + int64(i)
		sys.SetMaxwellVelocities(cfg.Temperature, seeds[i])
		systems[i] = sys
	}

	bm, err := core.NewBatchMachine(mcfg, systems, cfg.Dt)
	if err != nil {
		return nil, err
	}
	recorders := make([]md.Recorder, k)
	sampleAll := func(int) error {
		for i := range recorders {
			recorders[i].Sample(bm.Integrator(i))
		}
		return nil
	}
	sampleAll(0)

	for i := 0; i < k; i++ {
		it := bm.Integrator(i)
		it.Mode = md.NVT
		it.Target = cfg.Temperature
	}
	if err := bm.Run(nvtSteps, sampleAll); err != nil {
		_ = bm.Free()
		return nil, err
	}

	// The NVE segment is the conservation measurement window; note where it
	// starts in each track and sample the segment's opening energy, mirroring
	// Simulation.RunNVE.
	nveStart := make([]int, k)
	for i := 0; i < k; i++ {
		nveStart[i] = len(recorders[i].Records)
		recorders[i].Sample(bm.Integrator(i))
		bm.Integrator(i).Mode = md.NVE
	}
	if err := bm.Run(nveSteps, sampleAll); err != nil {
		_ = bm.Free()
		return nil, err
	}

	results := make([]BatchResult, k)
	for i := range results {
		mean, std := recorders[i].TemperatureStats()
		nve := md.Recorder{Records: recorders[i].Records[nveStart[i]:]}
		rebuilds, reuses := bm.JSetStats(i)
		results[i] = BatchResult{
			Seed:            seeds[i],
			System:          systems[i],
			Records:         recorders[i].Records,
			TemperatureMean: mean,
			TemperatureStd:  std,
			EnergyDrift:     nve.EnergyDrift(),
			JSetRebuilds:    rebuilds,
			JSetReuses:      reuses,
		}
	}
	return results, bm.Free()
}
