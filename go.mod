module mdm

go 1.22
