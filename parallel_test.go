package mdm

import (
	"math"
	"testing"
)

// The worker pool stripes the simulated pipelines across host cores without
// changing any accumulation order, so a full protocol run must be
// byte-identical at every pool width — the repo's zero-numerical-drift
// guarantee for the intra-board parallelism layer.

func runProtocolWithWorkers(t *testing.T, workers int) *Simulation {
	t.Helper()
	sim, err := NewSimulation(Config{
		Cells:   2,
		Backend: BackendMDM,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunNVT(10); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunNVE(50); err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestNVEProtocolBitIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine protocol comparison in -short mode")
	}
	serial := runProtocolWithWorkers(t, 1)
	defer func() { _ = serial.Free() }()
	for _, w := range []int{4} {
		par := runProtocolWithWorkers(t, w)
		for i := range serial.System.Pos {
			a, b := serial.System.Pos[i], par.System.Pos[i]
			if math.Float64bits(a.X) != math.Float64bits(b.X) ||
				math.Float64bits(a.Y) != math.Float64bits(b.Y) ||
				math.Float64bits(a.Z) != math.Float64bits(b.Z) {
				t.Fatalf("workers=%d: position %d differs after 50-step NVE: %v vs %v", w, i, b, a)
			}
			va, vb := serial.System.Vel[i], par.System.Vel[i]
			if va != vb {
				t.Fatalf("workers=%d: velocity %d differs: %v vs %v", w, i, vb, va)
			}
		}
		sa, pa := serial.Records(), par.Records()
		if len(sa) != len(pa) {
			t.Fatalf("workers=%d: %d records vs %d", w, len(pa), len(sa))
		}
		for k := range sa {
			if math.Float64bits(sa[k].E) != math.Float64bits(pa[k].E) ||
				math.Float64bits(sa[k].PE) != math.Float64bits(pa[k].PE) {
				t.Fatalf("workers=%d: record %d energies differ: %+v vs %+v", w, k, pa[k], sa[k])
			}
		}
		_ = par.Free()
	}
}
