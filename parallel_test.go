package mdm

import (
	"math"
	"testing"
)

// The worker pool stripes the simulated pipelines across host cores without
// changing any accumulation order, so a full protocol run must be
// byte-identical at every pool width — the repo's zero-numerical-drift
// guarantee for the intra-board parallelism layer.

func runProtocolWithWorkers(t *testing.T, workers int) *Simulation {
	t.Helper()
	sim, err := NewSimulation(Config{
		Cells:   2,
		Backend: BackendMDM,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunNVT(10); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunNVE(50); err != nil {
		t.Fatal(err)
	}
	return sim
}

// The spatial decomposition keeps every cell's particle order serial, so the
// public API must deliver bit-identical protocol runs at any rank count when
// the wavenumber side stays a single group.
func TestNVEProtocolBitIdenticalAcrossRanks(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine protocol comparison in -short mode")
	}
	run := func(ranks int) *Simulation {
		t.Helper()
		sim, err := NewSimulation(Config{
			Cells:   2,
			Backend: BackendMDM,
			Skin:    0.5,
			Ranks:   ranks,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.RunNVT(5); err != nil {
			t.Fatal(err)
		}
		if err := sim.RunNVE(20); err != nil {
			t.Fatal(err)
		}
		return sim
	}
	serial, err := NewSimulation(Config{Cells: 2, Backend: BackendMDM, Skin: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = serial.Free() }()
	if err := serial.RunNVT(5); err != nil {
		t.Fatal(err)
	}
	if err := serial.RunNVE(20); err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{2, 4} {
		par := run(ranks)
		for i := range serial.System.Pos {
			a, b := serial.System.Pos[i], par.System.Pos[i]
			if math.Float64bits(a.X) != math.Float64bits(b.X) ||
				math.Float64bits(a.Y) != math.Float64bits(b.Y) ||
				math.Float64bits(a.Z) != math.Float64bits(b.Z) {
				t.Fatalf("ranks=%d: position %d differs after the protocol: %v vs %v", ranks, i, b, a)
			}
			if serial.System.Vel[i] != par.System.Vel[i] {
				t.Fatalf("ranks=%d: velocity %d differs", ranks, i)
			}
		}
		sa, pa := serial.Records(), par.Records()
		if len(sa) != len(pa) {
			t.Fatalf("ranks=%d: %d records vs %d", ranks, len(pa), len(sa))
		}
		for k := range sa {
			if math.Float64bits(sa[k].E) != math.Float64bits(pa[k].E) ||
				math.Float64bits(sa[k].PE) != math.Float64bits(pa[k].PE) {
				t.Fatalf("ranks=%d: record %d energies differ: %+v vs %+v", ranks, k, pa[k], sa[k])
			}
		}
		_ = par.Free()
	}
}

// Config.Ranks composes only with the MDM backend and the single-run driver.
func TestRanksValidation(t *testing.T) {
	if _, err := NewSimulation(Config{Backend: BackendReference, Ranks: 2}); err == nil {
		t.Error("reference backend accepted Ranks")
	}
	if _, err := RunBatch(Config{Ranks: 2}, 2, 1, 1); err == nil {
		t.Error("batch driver accepted Ranks")
	}
}

func TestNVEProtocolBitIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine protocol comparison in -short mode")
	}
	serial := runProtocolWithWorkers(t, 1)
	defer func() { _ = serial.Free() }()
	for _, w := range []int{4} {
		par := runProtocolWithWorkers(t, w)
		for i := range serial.System.Pos {
			a, b := serial.System.Pos[i], par.System.Pos[i]
			if math.Float64bits(a.X) != math.Float64bits(b.X) ||
				math.Float64bits(a.Y) != math.Float64bits(b.Y) ||
				math.Float64bits(a.Z) != math.Float64bits(b.Z) {
				t.Fatalf("workers=%d: position %d differs after 50-step NVE: %v vs %v", w, i, b, a)
			}
			va, vb := serial.System.Vel[i], par.System.Vel[i]
			if va != vb {
				t.Fatalf("workers=%d: velocity %d differs: %v vs %v", w, i, vb, va)
			}
		}
		sa, pa := serial.Records(), par.Records()
		if len(sa) != len(pa) {
			t.Fatalf("workers=%d: %d records vs %d", w, len(pa), len(sa))
		}
		for k := range sa {
			if math.Float64bits(sa[k].E) != math.Float64bits(pa[k].E) ||
				math.Float64bits(sa[k].PE) != math.Float64bits(pa[k].PE) {
				t.Fatalf("workers=%d: record %d energies differ: %+v vs %+v", w, k, pa[k], sa[k])
			}
		}
		_ = par.Free()
	}
}
