package mdm

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mdm/internal/md"
	"mdm/internal/supervise"
)

// runJournaled drives one NVT+NVE protocol under a journal and returns the
// finished simulation (caller frees).
func runJournaled(t *testing.T, cfg Config, nvt, nve int) *Simulation {
	t.Helper()
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunNVT(nvt); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunNVE(nve); err != nil {
		t.Fatal(err)
	}
	return sim
}

// A run killed between checkpoints must resume from checkpoint + journal at
// the exact committed step and finish bit-identical to a run that was never
// interrupted — the central durability claim of the write-ahead journal.
func TestJournalKillResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	base := Config{
		Cells:  2,
		Faults: "mdg:transient@step=8; wine2:slow@step=5,ms=1",
		Supervise: SuperviseConfig{
			Watchdog: time.Second,
			Journal:  filepath.Join(dir, "a.wal"),
		},
	}

	// The uninterrupted reference: 6 NVT + 6 NVE steps.
	ref := runJournaled(t, base, 6, 6)
	defer func() { _ = ref.Free() }()

	// The victim: checkpoint at step 3, keep running to step 8 (2 NVE steps
	// past the NVT segment), then "die" without any further checkpoint.
	cfg := base
	cfg.Supervise.Journal = filepath.Join(dir, "b.wal")
	ckpt := filepath.Join(dir, "b.ckpt")
	victim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.RunNVT(3); err != nil {
		t.Fatal(err)
	}
	if err := writeCheckpoint(ckpt, victim); err != nil {
		t.Fatal(err)
	}
	if err := victim.RunNVT(3); err != nil {
		t.Fatal(err)
	}
	if err := victim.RunNVE(2); err != nil {
		t.Fatal(err)
	}
	// The kill: abandon the run. Records through step 8 are already fsynced;
	// Free only releases the boards (a real SIGKILL would not even do that).
	if err := victim.Free(); err != nil {
		t.Fatal(err)
	}

	// Resume replays steps 4-8 from the journal over the checkpoint…
	resumed, err := ResumeFromJournal(cfg, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resumed.Free() }()
	if got := resumed.Integrator.StepCount(); got != 8 {
		t.Fatalf("resumed at step %d, want 8", got)
	}
	// …and the remaining 4 NVE steps finish the protocol.
	if err := resumed.RunNVE(4); err != nil {
		t.Fatal(err)
	}

	if resumed.Integrator.StepCount() != ref.Integrator.StepCount() {
		t.Fatalf("step counts diverge: %d vs %d",
			resumed.Integrator.StepCount(), ref.Integrator.StepCount())
	}
	for i := range ref.System.Pos {
		if resumed.System.Pos[i] != ref.System.Pos[i] || resumed.System.Vel[i] != ref.System.Vel[i] {
			t.Fatalf("ion %d diverges after kill-resume:\n  pos %v vs %v\n  vel %v vs %v",
				i, resumed.System.Pos[i], ref.System.Pos[i], resumed.System.Vel[i], ref.System.Vel[i])
		}
	}
	// The scheduled faults fired on both timelines (the transient at step 8
	// fired during the replay, not a second time after it).
	rep, ok := resumed.FaultReport()
	if !ok || rep.Retries != 1 {
		t.Errorf("resumed fault report: ok=%v %+v, want exactly 1 retry", ok, rep)
	}

	// The journal now holds the full contiguous timeline exactly once.
	recs, err := supervise.ReadJournalFile(cfg.Supervise.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 12 {
		t.Fatalf("journal has %d records, want 12", len(recs))
	}
	for i, r := range recs {
		if r.Step != i+1 {
			t.Fatalf("journal record %d commits step %d, want %d", i, r.Step, i+1)
		}
	}
	if recs[5].Stage != "nvt" || recs[6].Stage != "nve" {
		t.Errorf("stage boundary wrong: step 6 %q, step 7 %q", recs[5].Stage, recs[6].Stage)
	}
}

// writeCheckpoint mirrors what mdmsim's periodic checkpointing does.
func writeCheckpoint(path string, sim *Simulation) error {
	return md.WriteCheckpointFile(path, sim.System, sim.Integrator.StepCount())
}

// A torn final journal line — the on-disk shape of a kill mid-append — must
// not block the resume: the torn step simply re-executes.
func TestJournalResumeToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Cells:     2,
		Supervise: SuperviseConfig{Journal: filepath.Join(dir, "run.wal")},
	}
	ckpt := filepath.Join(dir, "run.ckpt")
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunNVT(2); err != nil {
		t.Fatal(err)
	}
	if err := writeCheckpoint(ckpt, sim); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunNVT(3); err != nil {
		t.Fatal(err)
	}
	want := append([][3]float64(nil), flatten(sim)...)
	if err := sim.Free(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half.
	buf, err := os.ReadFile(cfg.Supervise.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfg.Supervise.Journal, buf[:len(buf)-25], 0o644); err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeFromJournal(cfg, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resumed.Free() }()
	// The torn step 5 was dropped; replay stops at step 4 and re-running one
	// NVT step reproduces the lost state exactly.
	if got := resumed.Integrator.StepCount(); got != 4 {
		t.Fatalf("resumed at step %d, want 4", got)
	}
	if err := resumed.RunNVT(1); err != nil {
		t.Fatal(err)
	}
	for i, p := range flatten(resumed) {
		if p != want[i] {
			t.Fatalf("ion %d diverges after torn-tail resume", i)
		}
	}
	// The re-executed step was re-journaled: the file ends with a valid
	// record for step 5 again.
	recs, err := supervise.ReadJournalFile(cfg.Supervise.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[4].Step != 5 {
		t.Fatalf("journal not repaired: %d records, last step %d", len(recs), recs[len(recs)-1].Step)
	}
}

func flatten(sim *Simulation) [][3]float64 {
	out := make([][3]float64, 0, sim.N())
	for _, p := range sim.System.Pos {
		out = append(out, [3]float64{p.X, p.Y, p.Z})
	}
	return out
}

// An interrupted run stops on a committed step with ErrInterrupted, and the
// journal's last record is exactly that step.
func TestInterruptStopsOnCommittedStep(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Cells:     2,
		Supervise: SuperviseConfig{Journal: filepath.Join(dir, "run.wal")},
	}
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sim.Free() }()
	steps := 0
	sim.SetInterrupt(func() bool {
		steps++
		return steps >= 3
	})
	err = sim.RunNVT(10)
	if err != ErrInterrupted {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if got := sim.Integrator.StepCount(); got != 3 {
		t.Errorf("stopped at step %d, want 3", got)
	}
	if err := sim.Free(); err != nil {
		t.Fatal(err)
	}
	recs, err := supervise.ReadJournalFile(cfg.Supervise.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Step != 3 {
		t.Fatalf("journal: %d records, want 3 ending at step 3", len(recs))
	}
}

// The journal payload carries the accumulated recovery report, so a resumed
// run's audit trail includes what happened before the kill.
func TestJournalPayloadCarriesFaultReport(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Cells:     2,
		Faults:    "mdg:transient@step=2",
		Supervise: SuperviseConfig{Journal: filepath.Join(dir, "run.wal")},
	}
	sim := runJournaled(t, cfg, 3, 0)
	if err := sim.Free(); err != nil {
		t.Fatal(err)
	}
	recs, err := supervise.ReadJournalFile(cfg.Supervise.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("journal has %d records, want 3", len(recs))
	}
	var rep FaultReport
	if err := json.Unmarshal(recs[2].Payload, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Retries != 1 {
		t.Errorf("journaled report: %+v, want the step-2 retry", rep)
	}
	if len(recs[2].Cursor) == 0 {
		t.Error("journaled cursor empty: fired events would refire on resume")
	}
}
