package mdm

import (
	"errors"
	"io/fs"
	"sync"
	"testing"

	"mdm/internal/md"
	"mdm/internal/store"
	"mdm/internal/supervise"
)

// ResumeFromJournal's failure modes must stay typed — the serving layer maps
// them to distinct HTTP statuses (nothing durable → restart from scratch;
// damaged checkpoint → permanent failure; stale directory → operator
// decision) — so each path is pinned against errors.Is here.

// reTestConfig is a journaled config over a fresh fault-free FaultFS.
func reTestConfig(fsys store.FS) Config {
	cfg := Config{
		Cells:     2,
		Backend:   BackendReference,
		Supervise: SuperviseConfig{Journal: "run.wal"},
	}
	cfg.fsys = fsys
	return cfg
}

// reRun runs a short journaled protocol with a mid-run checkpoint, leaving a
// consistent checkpoint + journal-tail pair on fsys.
func reRun(t *testing.T, fsys store.FS) {
	t.Helper()
	sim, err := NewSimulation(reTestConfig(fsys))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sim.Free() }()
	if err := sim.RunNVT(3); err != nil {
		t.Fatal(err)
	}
	if err := sim.WriteCheckpoint("run.ckpt"); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunNVE(2); err != nil {
		t.Fatal(err)
	}
}

// Nothing durable at all: the typed verdict is store.ErrNoRunState, which
// the caller may treat as "start the run over, no progress is lost".
func TestResumeErrorNoRunState(t *testing.T) {
	fsys := store.NewFaultFS(nil)
	_, err := ResumeFromJournal(reTestConfig(fsys), "run.ckpt")
	if !errors.Is(err, store.ErrNoRunState) {
		t.Fatalf("resume over empty store: %v, want store.ErrNoRunState", err)
	}
}

// A journal exists but the checkpoint file is gone (deleted underfoot, or a
// different run's layout): missing-file errors must surface as fs.ErrNotExist
// (store.NotExist recognizes it), not a generic string.
func TestResumeErrorMissingJournal(t *testing.T) {
	fsys := store.NewFaultFS(nil)
	reRun(t, fsys)
	// Remove the whole journal: active segment and any rotated ones.
	if err := fsys.Remove("run.wal"); err != nil {
		t.Fatal(err)
	}
	segs, err := store.JournalSegments(fsys, "run.wal")
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		if err := fsys.Remove(seg); err != nil {
			t.Fatal(err)
		}
	}
	if err := fsys.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	_, rerr := ResumeFromJournal(reTestConfig(fsys), "run.ckpt")
	if rerr == nil {
		t.Fatal("resume with missing journal succeeded")
	}
	if !store.NotExist(rerr) && !errors.Is(rerr, fs.ErrNotExist) {
		t.Fatalf("missing journal: %v, want fs.ErrNotExist", rerr)
	}
}

// A corrupt checkpoint image is unrecoverable: the typed verdict is the
// checkpoint reader's own md.ErrCheckpointCorrupt, not a scan wrapper.
func TestResumeErrorDamagedCheckpoint(t *testing.T) {
	fsys := store.NewFaultFS(nil)
	reRun(t, fsys)
	// Flip a byte in the middle of the checkpoint image.
	buf, err := fsys.ReadFile("run.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := store.WriteFileAtomic(fsys, "run.ckpt", buf); err != nil {
		t.Fatal(err)
	}
	// With the checkpoint dead, the journal's records are stranded history:
	// resume must refuse with the checkpoint's typed corruption error.
	_, rerr := ResumeFromJournal(reTestConfig(fsys), "run.ckpt")
	if !errors.Is(rerr, md.ErrCheckpointCorrupt) {
		t.Fatalf("damaged checkpoint: %v, want md.ErrCheckpointCorrupt", rerr)
	}
}

// A journal that does not continue the checkpoint's timeline (here: a
// leftover journal from an older incarnation whose steps are disjoint from
// the fresh checkpoint) is a stale run directory: store.ErrStaleRunDir.
func TestResumeErrorStaleRunDir(t *testing.T) {
	fsys := store.NewFaultFS(nil)
	reRun(t, fsys)
	// Rewrite the active journal segment with records far past the
	// checkpoint: a committed step 3 checkpoint followed by steps 7..8 has a
	// hole no replay can cross.
	j, err := supervise.CreateJournalFS("run.wal", supervise.Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []int{7, 8} {
		if err := j.Append(supervise.Record{Step: step, Stage: "nve"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rerr := ResumeFromJournal(reTestConfig(fsys), "run.ckpt")
	if !errors.Is(rerr, store.ErrStaleRunDir) {
		t.Fatalf("stale run dir: %v, want store.ErrStaleRunDir", rerr)
	}
}

// Journal records with no checkpoint at all are equally stale: progress
// exists on disk that a fresh start would silently discard.
func TestResumeErrorStrandedJournal(t *testing.T) {
	fsys := store.NewFaultFS(nil)
	reRun(t, fsys)
	if err := fsys.Remove("run.ckpt"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	_, rerr := ResumeFromJournal(reTestConfig(fsys), "run.ckpt")
	if !errors.Is(rerr, store.ErrStaleRunDir) {
		t.Fatalf("stranded journal: %v, want store.ErrStaleRunDir", rerr)
	}
}

// Free is idempotent and safe to call concurrently with itself on a
// completed run: the session manager's reaper races the executor's deferred
// Free, and the loser must observe the first call's verdict, not a
// double-close panic from the journal or the board arena.
func TestFreeIdempotentAndConcurrent(t *testing.T) {
	fsys := store.NewFaultFS(nil)
	cfg := reTestConfig(fsys)
	cfg.Backend = BackendMDM // exercise the board-freeing path too
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunNVT(2); err != nil {
		t.Fatal(err)
	}

	first := sim.Free()
	if first != nil {
		t.Fatalf("first Free: %v", first)
	}
	const frees = 8
	var wg sync.WaitGroup
	errs := make([]error, frees)
	for i := 0; i < frees; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = sim.Free()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, first) {
			t.Errorf("concurrent Free %d = %v, want the first call's verdict (%v)", i, err, first)
		}
	}
}
