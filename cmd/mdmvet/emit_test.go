package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"mdm/internal/analyzers"
)

func sampleFindings() []Finding {
	return []Finding{
		{Analyzer: "maporder", File: "internal/core/machine.go", Line: 42, Column: 7,
			Message: "map iteration in hot-path function Forces writes total, declared outside the loop"},
		{Analyzer: "wallclock", File: "internal/md/md.go", Line: 9, Column: 2,
			Message: "time.Now in hot-path function Step"},
	}
}

// TestSARIFRoundTrip emits SARIF and re-reads it as untyped JSON, checking
// the shape code-scanning requires: schema/version header, a driver with
// rules, and results whose ruleId resolves against the rules and whose
// locations carry uri + startLine.
func TestSARIFRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := emitSARIF(&buf, analyzers.All(), sampleFindings()); err != nil {
		t.Fatal(err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if got := log["$schema"]; got != sarifSchemaURI {
		t.Errorf("$schema = %v, want %v", got, sarifSchemaURI)
	}
	if got := log["version"]; got != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", got)
	}
	runs, ok := log["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v, want exactly one run", log["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "mdmvet" {
		t.Errorf("driver name = %v, want mdmvet", driver["name"])
	}
	ruleIDs := map[string]bool{}
	for _, r := range driver["rules"].([]any) {
		rule := r.(map[string]any)
		id := rule["id"].(string)
		ruleIDs[id] = true
		if rule["shortDescription"].(map[string]any)["text"].(string) == "" {
			t.Errorf("rule %s has an empty shortDescription", id)
		}
	}
	for _, a := range analyzers.All() {
		if !ruleIDs[a.Name] {
			t.Errorf("analyzer %s missing from SARIF rules", a.Name)
		}
	}
	results, ok := run["results"].([]any)
	if !ok || len(results) != len(sampleFindings()) {
		t.Fatalf("got %d results, want %d", len(results), len(sampleFindings()))
	}
	for i, r := range results {
		res := r.(map[string]any)
		if id := res["ruleId"].(string); !ruleIDs[id] {
			t.Errorf("result %d ruleId %q not among the declared rules", i, id)
		}
		if res["level"] != "error" {
			t.Errorf("result %d level = %v, want error", i, res["level"])
		}
		loc := res["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
		uri := loc["artifactLocation"].(map[string]any)["uri"].(string)
		if uri == "" || strings.Contains(uri, "\\") {
			t.Errorf("result %d uri = %q, want a slash-separated relative path", i, uri)
		}
		if line := loc["region"].(map[string]any)["startLine"].(float64); line < 1 {
			t.Errorf("result %d startLine = %v, want >= 1", i, line)
		}
	}
}

// TestBaselineRoundTrip writes a baseline, reads it back, and checks that
// splitBaseline skips exactly the recorded findings — including at a
// different line number, since baselines match (analyzer, file, message).
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mdmvet.baseline")
	recorded := sampleFindings()
	if err := writeBaseline(path, recorded); err != nil {
		t.Fatal(err)
	}
	set, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	moved := recorded[0]
	moved.Line += 100 // unrelated edits shift lines; the baseline must still match
	fresh := Finding{Analyzer: "hotalloc", File: "internal/core/machine.go", Line: 7, Message: "new finding"}
	kept, skipped := splitBaseline([]Finding{moved, recorded[1], fresh}, set)
	if len(skipped) != 2 {
		t.Errorf("skipped %d findings, want 2: %v", len(skipped), skipped)
	}
	if len(kept) != 1 || kept[0].Analyzer != "hotalloc" {
		t.Errorf("kept = %v, want just the fresh hotalloc finding", kept)
	}
}

// TestEmitGitHub checks the workflow-command shape GitHub parses.
func TestEmitGitHub(t *testing.T) {
	var buf bytes.Buffer
	emitGitHub(&buf, sampleFindings()[:1])
	got := buf.String()
	want := "::error file=internal/core/machine.go,line=42,col=7,title=mdmvet/maporder::"
	if !strings.HasPrefix(got, want) {
		t.Errorf("annotation = %q, want prefix %q", got, want)
	}
	if strings.Count(got, "\n") != 1 {
		t.Errorf("annotation must be a single line, got %q", got)
	}
}

// TestEmitJSONRoundTrip checks the flat JSON list re-parses into Findings.
func TestEmitJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := emitJSON(&buf, sampleFindings()); err != nil {
		t.Fatal(err)
	}
	var back []Finding
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != sampleFindings()[0] || back[1] != sampleFindings()[1] {
		t.Errorf("round-trip mismatch: %v", back)
	}
}
