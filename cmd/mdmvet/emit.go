// Machine-consumable output for mdmvet: a flat JSON finding list, SARIF
// 2.1.0 for code-scanning uploads, GitHub workflow-command annotations, and
// the baseline file enabling incremental adoption of new analyzers.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mdm/internal/analyzers"
)

// A Finding is one diagnostic with a module-relative path — the unit of the
// JSON output and of baseline matching.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // slash-separated, relative to the module root
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// newFinding relativizes a diagnostic against the module root.
func newFinding(root string, d analyzers.Diagnostic) Finding {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return Finding{
		Analyzer: d.Analyzer,
		File:     file,
		Line:     d.Pos.Line,
		Column:   d.Pos.Column,
		Message:  d.Message,
	}
}

func emitJSON(w io.Writer, findings []Finding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// emitGitHub prints one workflow-command annotation per finding; GitHub
// renders them inline on the PR diff.
func emitGitHub(w io.Writer, findings []Finding) {
	for _, f := range findings {
		// Workflow commands terminate at newlines; findings are single-line.
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=mdmvet/%s::%s\n",
			f.File, f.Line, f.Column, f.Analyzer, f.Message)
	}
}

//
// SARIF 2.1.0 (the subset code-scanning consumes).
//

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

const sarifSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"

// buildSARIF assembles the log: one run, one rule per analyzer that appears
// in the suite, one result per finding.
func buildSARIF(suite []*analyzers.Analyzer, findings []Finding) sarifLog {
	rules := make([]sarifRule, 0, len(suite))
	for _, a := range suite {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	return sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "mdmvet", InformationURI: "https://example.invalid/mdm", Rules: rules}},
			Results: results,
		}},
	}
}

func emitSARIF(w io.Writer, suite []*analyzers.Analyzer, findings []Finding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(buildSARIF(suite, findings))
}

//
// Baseline: a checked-in list of accepted findings, matched by analyzer,
// file and message (line numbers excluded so unrelated edits don't churn
// it). New findings fail the build; baselined ones are reported as skipped.
//

type baselineFile struct {
	Comment  string          `json:"comment,omitempty"`
	Findings []baselineEntry `json:"findings"`
}

type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

// readBaseline loads the baseline set, mapping each entry to its match key.
func readBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	set := make(map[string]bool, len(bf.Findings))
	for _, e := range bf.Findings {
		set[baselineKey(e.Analyzer, e.File, e.Message)] = true
	}
	return set, nil
}

// writeBaseline records the current findings as the accepted baseline.
func writeBaseline(path string, findings []Finding) error {
	bf := baselineFile{
		Comment: "mdmvet baseline: accepted findings for incremental adoption; regenerate with mdmvet -write-baseline " + filepath.Base(path),
	}
	for _, f := range findings {
		bf.Findings = append(bf.Findings, baselineEntry{Analyzer: f.Analyzer, File: f.File, Message: f.Message})
	}
	sort.Slice(bf.Findings, func(i, j int) bool {
		a, b := bf.Findings[i], bf.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	//mdm:rawiook -- baseline file: regenerated with -write-baseline, not durable run state
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// splitBaseline partitions findings into kept (new) and skipped (baselined).
func splitBaseline(findings []Finding, baseline map[string]bool) (kept, skipped []Finding) {
	for _, f := range findings {
		if baseline[baselineKey(f.Analyzer, f.File, f.Message)] {
			skipped = append(skipped, f)
		} else {
			kept = append(kept, f)
		}
	}
	return kept, skipped
}
