// Command mdmvet runs the mdmvet static-analysis suite (internal/analyzers)
// over Go packages, in the style of a go/analysis multichecker:
//
//	go run ./cmd/mdmvet ./...
//	go run ./cmd/mdmvet -list
//	go run ./cmd/mdmvet -run fixedformat,mpitags ./internal/...
//	go run ./cmd/mdmvet -json ./...              # machine-readable findings
//	go run ./cmd/mdmvet -sarif -o out.sarif ./...
//	go run ./cmd/mdmvet -baseline mdmvet.baseline ./...
//	go run ./cmd/mdmvet -audit                   # suppression-comment hygiene
//	go run ./cmd/mdmvet -stepflow ./...          # dump the hot-path fact set
//
// Before the analyzers run, a callgraph pass over every loaded package
// computes the "stepflow" fact — transitive reachability from the
// //mdm:stepflow-annotated hot-path roots — which gates the determinism
// analyzers (maporder, wallclock, hotalloc, shardmerge).
//
// Exit status is 0 when the suite is clean, 1 when it reports diagnostics
// (or -audit finds malformed suppressions), and 2 when packages fail to load
// or type-check. Findings can be silenced for a reviewed line with a
// "//mdm:<key> -- justification" comment; see the package documentation of
// internal/analyzers. The justification is mandatory: -audit lists every
// suppression in the tree and fails on bare ones.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mdm/internal/analyzers"
	"mdm/internal/analyzers/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mdmvet", flag.ExitOnError)
	list := fs.Bool("list", false, "list available analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("C", ".", "directory to resolve package patterns in")
	jsonOut := fs.Bool("json", false, "emit findings as JSON instead of text")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0 instead of text")
	outPath := fs.String("o", "", "write the -json/-sarif report to this file (default stdout)")
	baselinePath := fs.String("baseline", "", "skip findings recorded in this baseline file")
	writeBaselinePath := fs.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	github := fs.Bool("github", false, "also print GitHub workflow-command annotations for findings")
	audit := fs.Bool("audit", false, "list every //mdm:* suppression in the tree and fail on missing justifications")
	stepflow := fs.Bool("stepflow", false, "print the stepflow fact set (hot-path functions) and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: mdmvet [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := filepath.Abs(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdmvet: %v\n", err)
		return 2
	}

	if *audit {
		return runAudit(root, suite)
	}

	if *only != "" {
		suite = selectAnalyzers(suite, *only)
		if suite == nil {
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := load.NewLoader(root, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdmvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(root, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdmvet: %v\n", err)
		return 2
	}

	facts := analyzers.BuildFacts(pkgs)
	if *stepflow {
		for _, name := range facts.StepFlowNames() {
			fmt.Println(name)
		}
		return 0
	}

	var findings []Finding
	for _, pkg := range pkgs {
		for _, d := range analyzers.RunPackageFacts(pkg, suite, facts) {
			findings = append(findings, newFinding(root, d))
		}
	}

	if *writeBaselinePath != "" {
		if err := writeBaseline(*writeBaselinePath, findings); err != nil {
			fmt.Fprintf(os.Stderr, "mdmvet: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "mdmvet: wrote %d finding(s) to %s\n", len(findings), *writeBaselinePath)
		return 0
	}
	if *baselinePath != "" {
		baseline, err := readBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdmvet: %v\n", err)
			return 2
		}
		var skipped []Finding
		findings, skipped = splitBaseline(findings, baseline)
		if len(skipped) > 0 {
			fmt.Fprintf(os.Stderr, "mdmvet: %d baselined finding(s) skipped\n", len(skipped))
		}
	}

	out := os.Stdout
	if *outPath != "" {
		//mdm:rawiook -- findings report: re-runnable output, not durable run state
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdmvet: %v\n", err)
			return 2
		}
		defer f.Close()
		out = f
	}
	switch {
	case *jsonOut:
		if err := emitJSON(out, findings); err != nil {
			fmt.Fprintf(os.Stderr, "mdmvet: %v\n", err)
			return 2
		}
	case *sarifOut:
		if err := emitSARIF(out, suite, findings); err != nil {
			fmt.Fprintf(os.Stderr, "mdmvet: %v\n", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintf(out, "%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Column, f.Message, f.Analyzer)
		}
	}
	if *github {
		emitGitHub(os.Stdout, findings)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// runAudit implements -audit: the suppression-hygiene listing and gate.
func runAudit(root string, suite []*analyzers.Analyzer) int {
	sups, problems, err := analyzers.AuditDir(root, analyzers.KnownSuppressKeys(suite))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdmvet: %v\n", err)
		return 2
	}
	for _, s := range sups {
		fmt.Printf("%s:%d: //mdm:%s -- %s\n", s.Pos.Filename, s.Pos.Line, s.Key, s.Reason)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "\nmdmvet -audit: %d problem(s):\n", len(problems))
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "  %s\n", p)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "mdmvet -audit: %d suppression(s), all justified\n", len(sups))
	return 0
}

func selectAnalyzers(suite []*analyzers.Analyzer, names string) []*analyzers.Analyzer {
	byName := make(map[string]*analyzers.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analyzers.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "mdmvet: unknown analyzer %q\n", name)
			return nil
		}
		out = append(out, a)
	}
	return out
}
