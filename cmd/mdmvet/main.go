// Command mdmvet runs the mdmvet static-analysis suite (internal/analyzers)
// over Go packages, in the style of a go/analysis multichecker:
//
//	go run ./cmd/mdmvet ./...
//	go run ./cmd/mdmvet -list
//	go run ./cmd/mdmvet -run fixedformat,mpitags ./internal/...
//
// Exit status is 0 when the suite is clean, 1 when it reports diagnostics,
// and 2 when packages fail to load or type-check. Findings can be silenced
// for a reviewed line with a "//mdm:<key> justification" comment; see the
// package documentation of internal/analyzers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mdm/internal/analyzers"
	"mdm/internal/analyzers/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mdmvet", flag.ExitOnError)
	list := fs.Bool("list", false, "list available analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("C", ".", "directory to resolve package patterns in")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: mdmvet [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		suite = selectAnalyzers(suite, *only)
		if suite == nil {
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := load.NewLoader(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdmvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdmvet: %v\n", err)
		return 2
	}

	found := false
	for _, pkg := range pkgs {
		for _, d := range analyzers.RunPackage(pkg, suite) {
			fmt.Printf("%s\n", d)
			found = true
		}
	}
	if found {
		return 1
	}
	return 0
}

func selectAnalyzers(suite []*analyzers.Analyzer, names string) []*analyzers.Analyzer {
	byName := make(map[string]*analyzers.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analyzers.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "mdmvet: unknown analyzer %q\n", name)
			return nil
		}
		out = append(out, a)
	}
	return out
}
