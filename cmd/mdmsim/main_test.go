package main

import (
	"path/filepath"
	"strings"
	"testing"

	"mdm"
	"mdm/internal/md"
)

// A fatal host fault mid-run must be healed by restarting from the last
// periodic checkpoint, and the restarted run must finish the full protocol.
func TestRunProtocolRestartsAfterFatalFault(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	sim, err := mdm.NewSimulation(mdm.Config{
		Cells:  2,
		Faults: "run:fatal@step=35",
	})
	if err != nil {
		t.Fatal(err)
	}
	var logs []string
	o := &runOpts{
		nvt:         20,
		nve:         40,
		ckptPath:    ckpt,
		ckptEvery:   10,
		maxRestarts: 2,
		frame:       func(*mdm.Simulation, string) error { return nil },
		logf:        func(f string, a ...any) { logs = append(logs, f) },
	}
	final, restarts, err := runProtocol(sim, o)
	defer func() { _ = final.Free() }()
	if err != nil {
		t.Fatalf("protocol did not heal: %v", err)
	}
	if restarts != 1 {
		t.Errorf("restarts = %d, want 1", restarts)
	}
	if len(logs) != 1 || !strings.Contains(logs[0], "restart") {
		t.Errorf("restart not logged: %v", logs)
	}
	if got := final.Integrator.StepCount(); got != 60 {
		t.Errorf("final step = %d, want 60", got)
	}
	if final == sim {
		t.Error("restart did not rebuild the simulation")
	}
	// The last checkpoint records the completed run.
	_, step, err := md.ReadCheckpointFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if step != 60 {
		t.Errorf("checkpoint step = %d, want 60", step)
	}
	rep, ok := final.FaultReport()
	if !ok || rep.Fallback {
		t.Errorf("fault report after restart: ok=%v rep=%+v", ok, rep)
	}
	// The pre-restart history (including the fatal) survives the restart.
	if len(rep.Events) == 0 || !strings.Contains(strings.Join(rep.Events, "\n"), "fatal") {
		t.Errorf("restart lost the recovery history: %v", rep.Events)
	}
}

// Without a checkpoint there is no restart point: the fatal fault must
// surface instead of looping.
func TestRunProtocolFatalWithoutCheckpointFails(t *testing.T) {
	sim, err := mdm.NewSimulation(mdm.Config{
		Cells:  2,
		Faults: "run:fatal@step=5",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sim.Free() }()
	o := &runOpts{
		nvt: 10, nve: 10, maxRestarts: 2,
		frame: func(*mdm.Simulation, string) error { return nil },
		logf:  func(string, ...any) {},
	}
	if _, _, err := runProtocol(sim, o); err == nil {
		t.Fatal("fatal fault vanished without a checkpoint to restart from")
	}
}
