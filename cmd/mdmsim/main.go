// Command mdmsim runs the paper's §5 simulation protocol — NVT by velocity
// scaling followed by NVE — for molten NaCl on either the simulated MDM or
// the float64 reference, and reports the observables the paper quotes:
// temperature trace, energy conservation and step timing statistics.
//
//	mdmsim -cells 3 -t 1200 -nvt 200 -nve 100 -backend mdm
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mdm"
	"mdm/internal/md"
)

func main() {
	cells := flag.Int("cells", 2, "rock-salt cells per side (N = 8·cells³)")
	temp := flag.Float64("t", 1200, "temperature (K), paper: 1200")
	dt := flag.Float64("dt", 2, "time step (fs), paper: 2")
	nvt := flag.Int("nvt", 100, "NVT steps, paper: 2000")
	nve := flag.Int("nve", 50, "NVE steps, paper: 1000")
	backend := flag.String("backend", "mdm", "force engine: mdm or reference")
	seed := flag.Int64("seed", 1, "velocity seed")
	every := flag.Int("every", 10, "print a sample every k steps")
	xyz := flag.String("xyz", "", "write an XYZ trajectory frame every k steps to this file")
	flag.Parse()

	var be mdm.Backend
	switch *backend {
	case "mdm":
		be = mdm.BackendMDM
	case "reference":
		be = mdm.BackendReference
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q\n", *backend)
		os.Exit(2)
	}

	sim, err := mdm.NewSimulation(mdm.Config{
		Cells:          *cells,
		Temperature:    *temp,
		Dt:             *dt,
		Backend:        be,
		Seed:           *seed,
		PotentialEvery: 1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() { _ = sim.Free() }()

	p := sim.Params()
	fmt.Printf("system: %d NaCl ions in a %.2f Å box, backend %s\n", sim.N(), p.L, be)
	fmt.Printf("ewald:  alpha=%.2f r_cut=%.2f Å Lk_cut=%.2f (N_wv ≈ %.0f)\n",
		p.Alpha, p.RCut, p.LKCut, p.NWv())
	fmt.Printf("run:    %d NVT + %d NVE steps of %.1f fs at %.0f K\n\n", *nvt, *nve, *dt, *temp)

	var traj *os.File
	if *xyz != "" {
		traj, err = os.Create(*xyz)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			// The trajectory is the program's output: a failed close (full
			// disk, NFS flush) must not pass silently.
			if err := traj.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}
	writeFrame := func(stage string) {
		if traj == nil {
			return
		}
		if err := md.WriteXYZ(traj, sim.System, stage); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	start := time.Now()
	writeFrame("initial")
	if err := sim.RunNVT(*nvt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	writeFrame("after-nvt")
	if err := sim.RunNVE(*nve); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	writeFrame("final")
	elapsed := time.Since(start)

	fmt.Printf("%8s %10s %12s %12s %14s %9s\n", "step", "t (ps)", "T (K)", "KE (eV)", "PE (eV)", "E (eV)")
	recs := sim.Records()
	for i, r := range recs {
		if i%*every != 0 && i != len(recs)-1 {
			continue
		}
		fmt.Printf("%8d %10.4f %12.2f %12.4f %14.4f %9.3f\n", r.Step, r.Time, r.T, r.KE, r.PE, r.E)
	}

	mean, std := sim.TemperatureStats()
	fmt.Printf("\ntemperature: %.1f ± %.1f K (sigma/mean = %.4f)\n", mean, std, std/mean)
	fmt.Printf("NVE energy drift: %.3g relative (paper: < 5e-7 over 2 ps at N = 1.88e7)\n", sim.EnergyDrift())
	steps := *nvt + *nve
	fmt.Printf("wall clock: %.2f s total, %.1f ms/step for N=%d\n",
		elapsed.Seconds(), elapsed.Seconds()*1000/float64(steps), sim.N())
}
