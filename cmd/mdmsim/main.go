// Command mdmsim runs the paper's §5 simulation protocol — NVT by velocity
// scaling followed by NVE — for molten NaCl on either the simulated MDM or
// the float64 reference, and reports the observables the paper quotes:
// temperature trace, energy conservation and step timing statistics.
//
//	mdmsim -cells 3 -t 1200 -nvt 200 -nve 100 -backend mdm
//
// The -faults flag injects a deterministic fault scenario into the machine
// backend; with -checkpoint the run writes crash-safe periodic checkpoints
// and automatically restarts from the last one after a fatal host fault:
//
//	mdmsim -faults "wine2:board-drop@step=60,board=2; run:fatal@step=90" \
//	       -checkpoint run.ckpt -checkpoint-every 25
//
// Long runs add supervision: -watchdog bounds every hardware call, -journal
// write-ahead-logs every committed step, and -resume recovers a killed run
// from checkpoint + journal at the exact committed step:
//
//	mdmsim -nvt 2000 -nve 1000 -watchdog 30s \
//	       -checkpoint run.ckpt -journal run.wal -summary run.json
//	mdmsim -nvt 2000 -nve 1000 -watchdog 30s \
//	       -checkpoint run.ckpt -journal run.wal -resume
//
// Signal contract: the first SIGINT/SIGTERM finishes the current step,
// flushes the journal, writes a final checkpoint and exits 0 with summary
// status "interrupted"; a second signal kills the process immediately
// (exit 130). Errors exit 1, usage errors 2.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"mdm"
	"mdm/internal/fault"
	"mdm/internal/lifecycle"
	"mdm/internal/md"
)

// runOpts is the protocol schedule and resilience policy of one invocation.
type runOpts struct {
	nvt, nve    int
	ckptPath    string // "" disables checkpointing (and restarts)
	ckptEvery   int
	maxRestarts int
	frame       func(sim *mdm.Simulation, stage string) error
	logf        func(format string, args ...any)
}

// checkpoint writes the crash-safe checkpoint if one is configured. The
// commit also rotates and compacts the write-ahead journal, keeping it
// bounded across a long campaign.
func (o *runOpts) checkpoint(sim *mdm.Simulation) error {
	if o.ckptPath == "" {
		return nil
	}
	return sim.WriteCheckpoint(o.ckptPath)
}

// runSegments advances sim from wherever its step counter stands through the
// rest of the NVT+NVE protocol, checkpointing every ckptEvery steps.
func runSegments(sim *mdm.Simulation, o *runOpts) error {
	chunked := func(run func(int) error, until int) error {
		for {
			done := sim.Integrator.StepCount()
			if done >= until {
				return nil
			}
			n := until - done
			if o.ckptPath != "" && o.ckptEvery > 0 && n > o.ckptEvery {
				n = o.ckptEvery
			}
			if err := run(n); err != nil {
				return err
			}
			if err := o.checkpoint(sim); err != nil {
				return err
			}
		}
	}
	if err := chunked(sim.RunNVT, o.nvt); err != nil {
		return err
	}
	if err := o.frame(sim, "after-nvt"); err != nil {
		return err
	}
	return chunked(sim.RunNVE, o.nvt+o.nve)
}

// runProtocol drives the whole protocol with self-healing: a fatal injected
// host fault triggers a restart from the last checkpoint (up to maxRestarts
// times), reusing the simulation's fault schedule so the fatal does not
// refire. It returns the final simulation, which differs from the argument
// after a restart.
func runProtocol(sim *mdm.Simulation, o *runOpts) (*mdm.Simulation, int, error) {
	// Seed the checkpoint before the first step so a fault in the first
	// chunk still has a restart point.
	if err := o.checkpoint(sim); err != nil {
		return sim, 0, err
	}
	restarts := 0
	for {
		err := runSegments(sim, o)
		if err == nil {
			return sim, restarts, nil
		}
		var fe *fault.FatalError
		if o.ckptPath == "" || restarts >= o.maxRestarts || !errors.As(err, &fe) {
			return sim, restarts, err
		}
		restarts++
		sys, step, rerr := md.ReadCheckpointFile(o.ckptPath)
		if rerr != nil {
			return sim, restarts, fmt.Errorf("restarting after %v: %w", err, rerr)
		}
		o.logf("fatal fault (%v): restart %d/%d from checkpoint at step %d",
			err, restarts, o.maxRestarts, step)
		resumed, rerr := mdm.ResumeSimulation(sim, sys, step)
		if rerr != nil {
			return sim, restarts, rerr
		}
		sim = resumed
	}
}

// runSummary is the machine-readable result contract of one invocation,
// written by -summary.
type runSummary struct {
	Status      string           `json:"status"` // "ok" | "interrupted" | "error"
	Steps       int              `json:"steps"`
	Restarts    int              `json:"restarts"`
	WallSeconds float64          `json:"wall_seconds"`
	TempMeanK   float64          `json:"temp_mean_k"`
	TempStdK    float64          `json:"temp_std_k"`
	EnergyDrift float64          `json:"energy_drift"`
	Fault       *mdm.FaultReport `json:"fault,omitempty"`
}

func summarize(sim *mdm.Simulation, status string, restarts int, elapsed time.Duration) runSummary {
	mean, std := sim.TemperatureStats()
	s := runSummary{
		Status:      status,
		Steps:       sim.Integrator.StepCount(),
		Restarts:    restarts,
		WallSeconds: elapsed.Seconds(),
		TempMeanK:   mean,
		TempStdK:    std,
		EnergyDrift: sim.EnergyDrift(),
	}
	if rep, ok := sim.FaultReport(); ok {
		s.Fault = &rep
	}
	return s
}

func writeSummary(path string, s runSummary) error {
	return lifecycle.WriteSummary(path, s)
}

// runBatchMode drives the -batch throughput protocol: k replicas of the
// configured system, differing only in velocity seed, stepped through one
// shared machine. Reports per-replica observables and aggregate throughput.
func runBatchMode(cfg mdm.Config, k, nvt, nve int) int {
	fmt.Printf("batch:  %d replicas, seeds %d..%d, %d NVT + %d NVE steps each\n",
		k, cfg.Seed, cfg.Seed+int64(k)-1, nvt, nve)
	start := time.Now()
	results, err := mdm.RunBatch(cfg, k, nvt, nve)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	elapsed := time.Since(start)

	fmt.Printf("%6s %6s %14s %12s %10s\n", "slot", "seed", "T (K)", "NVE drift", "sort/reuse")
	for i, r := range results {
		fmt.Printf("%6d %6d %8.1f±%5.1f %12.3g %5d/%d\n",
			i, r.Seed, r.TemperatureMean, r.TemperatureStd, r.EnergyDrift, r.JSetRebuilds, r.JSetReuses)
	}
	steps := k * (nvt + nve)
	fmt.Printf("\nwall clock: %.2f s total, %.2f ms/replica-step, %.2f full runs/s\n",
		elapsed.Seconds(), elapsed.Seconds()*1000/float64(steps), float64(k)/elapsed.Seconds())
	return 0
}

func main() {
	// run() owns every cleanup as a defer and reports an exit code; the only
	// os.Exit on the normal paths is here, so profiles, trajectories, the
	// journal and the simulated boards are flushed no matter how the run
	// ends. (The second-signal hard kill is the deliberate exception.)
	os.Exit(run())
}

func run() (exit int) {
	cells := flag.Int("cells", 2, "rock-salt cells per side (N = 8·cells³)")
	temp := flag.Float64("t", 1200, "temperature (K), paper: 1200")
	dt := flag.Float64("dt", 2, "time step (fs), paper: 2")
	nvt := flag.Int("nvt", 100, "NVT steps, paper: 2000")
	nve := flag.Int("nve", 50, "NVE steps, paper: 1000")
	backend := flag.String("backend", "mdm", "force engine: mdm or reference")
	alpha := flag.Float64("alpha", 0, "Ewald splitting parameter (0 = balanced for the box; large boxes may prefer the machine balance, e.g. ewald.CostModel with the 27-cell geometry)")
	potEvery := flag.Int("potential-every", 1, "evaluate the potential energy every k steps on the mdm backend (paper: 100)")
	seed := flag.Int64("seed", 1, "velocity seed")
	every := flag.Int("every", 10, "print a sample every k steps")
	xyz := flag.String("xyz", "", "write an XYZ trajectory frame every k steps to this file")
	faults := flag.String("faults", "", `fault scenario, e.g. "wine2:board-drop@step=60,board=2; run:fatal@step=90"`)
	ckpt := flag.String("checkpoint", "", "crash-safe checkpoint file (enables restart after fatal faults)")
	ckptEvery := flag.Int("checkpoint-every", 25, "steps between checkpoints")
	maxRestarts := flag.Int("max-restarts", 3, "restarts from checkpoint after fatal faults")
	batch := flag.Int("batch", 0, "throughput mode: run K independent replicas (seeds seed..seed+K-1) through one machine; incompatible with faults/checkpointing/supervision")
	workers := flag.Int("workers", 0, "worker-pool width striping the simulated pipelines across cores (0 = GOMAXPROCS, 1 = serial); bit-identical at any width")
	pipeline := flag.Bool("pipeline", false, "overlap the WINE-2 wavenumber pass with the MDGRAPE-2 real-space sweep and fuse the four real-space passes; bit-identical to the sequential path")
	skin := flag.Float64("skin", 0, "Verlet skin in Å: reuse the sorted cell layout until a particle moves more than skin/2 (0 = rebuild every step)")
	ranks := flag.Int("ranks", 0, "spatial decomposition: split the box into this many cell blocks, one real-space process each (0 = single process); bit-identical with -wave-ranks 1")
	waveRanks := flag.Int("wave-ranks", 0, "wavenumber processes alongside -ranks (default 1); >1 regroups the structure-factor reduction and agrees to float64 rounding")
	watchdog := flag.Duration("watchdog", 0, "stall deadline for one hardware call, e.g. 30s (0 disables the watchdog)")
	journal := flag.String("journal", "", "write-ahead step journal path (with -checkpoint, enables -resume after a kill)")
	syncEvery := flag.Int("sync-every", 1, "journal group-commit interval: fsync every Nth step record (1 = every step, the strongest durability; N > 1 risks the last N-1 steps on a power cut)")
	resume := flag.Bool("resume", false, "resume a killed run from -checkpoint and -journal at the exact committed step")
	summaryPath := flag.String("summary", "", "write a machine-readable JSON run summary to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		//mdm:rawiook -- pprof profile: diagnostic output, lose-on-crash is fine
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			//mdm:rawiook -- pprof profile: diagnostic output, lose-on-crash is fine
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	var be mdm.Backend
	switch *backend {
	case "mdm":
		be = mdm.BackendMDM
	case "reference":
		be = mdm.BackendReference
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q\n", *backend)
		return 2
	}
	if *faults != "" && be != mdm.BackendMDM {
		fmt.Fprintln(os.Stderr, "-faults requires the mdm backend")
		return 2
	}
	if *watchdog > 0 && be != mdm.BackendMDM {
		fmt.Fprintln(os.Stderr, "-watchdog requires the mdm backend")
		return 2
	}
	if *resume && (*ckpt == "" || *journal == "") {
		fmt.Fprintln(os.Stderr, "-resume requires -checkpoint and -journal")
		return 2
	}
	if (*pipeline || *skin != 0) && be != mdm.BackendMDM {
		fmt.Fprintln(os.Stderr, "-pipeline and -skin require the mdm backend")
		return 2
	}
	if *ranks != 0 && be != mdm.BackendMDM {
		fmt.Fprintln(os.Stderr, "-ranks requires the mdm backend")
		return 2
	}
	if *waveRanks != 0 && *ranks == 0 {
		fmt.Fprintln(os.Stderr, "-wave-ranks requires -ranks")
		return 2
	}
	if *ranks != 0 && *batch > 0 {
		fmt.Fprintln(os.Stderr, "-batch is incompatible with -ranks")
		return 2
	}
	if *batch > 0 {
		if be != mdm.BackendMDM {
			fmt.Fprintln(os.Stderr, "-batch requires the mdm backend")
			return 2
		}
		if *faults != "" || *ckpt != "" || *journal != "" || *resume || *watchdog > 0 || *xyz != "" {
			fmt.Fprintln(os.Stderr, "-batch is incompatible with -faults, -checkpoint, -journal, -resume, -watchdog and -xyz")
			return 2
		}
		// PotentialEvery stays 0: RunBatch defaults it to the paper's
		// every-100-steps cadence (§5), the throughput protocol.
		return runBatchMode(mdm.Config{
			Cells:       *cells,
			Temperature: *temp,
			Dt:          *dt,
			Alpha:       *alpha,
			Seed:        *seed,
			Workers:     *workers,
			Pipeline:    *pipeline,
			Skin:        *skin,
		}, *batch, *nvt, *nve)
	}

	cfg := mdm.Config{
		Cells:          *cells,
		Temperature:    *temp,
		Dt:             *dt,
		Alpha:          *alpha,
		Backend:        be,
		Seed:           *seed,
		PotentialEvery: *potEvery,
		Faults:         *faults,
		Workers:        *workers,
		Pipeline:       *pipeline,
		Skin:           *skin,
		Ranks:          *ranks,
		WaveRanks:      *waveRanks,
		Supervise: mdm.SuperviseConfig{
			Watchdog:  *watchdog,
			Journal:   *journal,
			SyncEvery: *syncEvery,
		},
	}
	var sim *mdm.Simulation
	var err error
	if *resume {
		sim, err = mdm.ResumeFromJournal(cfg, *ckpt)
	} else {
		sim, err = mdm.NewSimulation(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// sim is reassigned after a restart; the deferred Free releases whichever
	// simulation is live at exit and closes the journal behind it.
	defer func() { _ = sim.Free() }()

	// Graceful shutdown: the first signal stops the run on the next completed
	// step; a second signal kills the process without waiting (exit 130).
	sd := lifecycle.Watch(nil)
	defer sd.Stop()
	sim.SetInterrupt(sd.Requested)

	p := sim.Params()
	fmt.Printf("system: %d NaCl ions in a %.2f Å box, backend %s\n", sim.N(), p.L, be)
	fmt.Printf("ewald:  alpha=%.2f r_cut=%.2f Å Lk_cut=%.2f (N_wv ≈ %.0f)\n",
		p.Alpha, p.RCut, p.LKCut, p.NWv())
	if *ranks > 0 {
		nw := *waveRanks
		if nw == 0 {
			nw = 1
		}
		fmt.Printf("ranks:  %d real-space blocks + %d wavenumber processes\n", *ranks, nw)
	}
	fmt.Printf("run:    %d NVT + %d NVE steps of %.1f fs at %.0f K\n", *nvt, *nve, *dt, *temp)
	if *faults != "" {
		fmt.Printf("faults: %s\n", *faults)
	}
	if *resume {
		fmt.Printf("resume: checkpoint %s + journal %s replayed to step %d\n",
			*ckpt, *journal, sim.Integrator.StepCount())
	}
	fmt.Println()

	var traj *os.File
	if *xyz != "" {
		//mdm:rawiook -- trajectory dump: re-runnable output, not durable run state
		traj, err = os.Create(*xyz)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			// The trajectory is the program's output: a failed close (full
			// disk, NFS flush) must not pass silently.
			if err := traj.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				if exit == 0 {
					exit = 1
				}
			}
		}()
	}
	o := &runOpts{
		nvt:         *nvt,
		nve:         *nve,
		ckptPath:    *ckpt,
		ckptEvery:   *ckptEvery,
		maxRestarts: *maxRestarts,
		frame: func(sim *mdm.Simulation, stage string) error {
			if traj == nil {
				return nil
			}
			return md.WriteXYZ(traj, sim.System, stage)
		},
		logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}

	start := time.Now()
	if err := o.frame(sim, "initial"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var restarts int
	sim, restarts, err = runProtocol(sim, o)
	status := "ok"
	switch {
	case err == nil:
	case errors.Is(err, mdm.ErrInterrupted):
		// Graceful shutdown: the interrupted step is journaled and sampled;
		// seal the run with a final checkpoint so -resume continues from it.
		status = "interrupted"
		o.logf("interrupted: stopping at completed step %d", sim.Integrator.StepCount())
		if cerr := o.checkpoint(sim); cerr != nil {
			fmt.Fprintln(os.Stderr, cerr)
			status = "error"
			exit = 1
		}
	default:
		fmt.Fprintln(os.Stderr, err)
		if serr := writeSummary(*summaryPath, summarize(sim, "error", restarts, time.Since(start))); serr != nil {
			fmt.Fprintln(os.Stderr, serr)
		}
		return 1
	}
	if err := o.frame(sim, "final"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	elapsed := time.Since(start)

	fmt.Printf("%8s %10s %12s %12s %14s %9s\n", "step", "t (ps)", "T (K)", "KE (eV)", "PE (eV)", "E (eV)")
	recs := sim.Records()
	for i, r := range recs {
		if i%*every != 0 && i != len(recs)-1 {
			continue
		}
		fmt.Printf("%8d %10.4f %12.2f %12.4f %14.4f %9.3f\n", r.Step, r.Time, r.T, r.KE, r.PE, r.E)
	}

	mean, std := sim.TemperatureStats()
	fmt.Printf("\ntemperature: %.1f ± %.1f K (sigma/mean = %.4f)\n", mean, std, std/mean)
	fmt.Printf("NVE energy drift: %.3g relative (paper: < 5e-7 over 2 ps at N = 1.88e7)\n", sim.EnergyDrift())
	if rep, ok := sim.FaultReport(); ok {
		fmt.Printf("fault recovery: %d retries, %d re-stripes, %d suspect steps, %d fallback steps, %d restarts\n",
			rep.Retries, rep.Restripes, rep.SuspectSteps, rep.FallbackSteps, restarts)
		for _, e := range rep.Events {
			fmt.Printf("  %s\n", e)
		}
	}
	steps := *nvt + *nve
	fmt.Printf("wall clock: %.2f s total, %.1f ms/step for N=%d\n",
		elapsed.Seconds(), elapsed.Seconds()*1000/float64(steps), sim.N())
	if status == "interrupted" {
		fmt.Printf("status: interrupted at step %d; resume with -resume -checkpoint %s -journal %s\n",
			sim.Integrator.StepCount(), *ckpt, *journal)
	}
	if err := writeSummary(*summaryPath, summarize(sim, status, restarts, elapsed)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return exit
}
