// Command mdmsim runs the paper's §5 simulation protocol — NVT by velocity
// scaling followed by NVE — for molten NaCl on either the simulated MDM or
// the float64 reference, and reports the observables the paper quotes:
// temperature trace, energy conservation and step timing statistics.
//
//	mdmsim -cells 3 -t 1200 -nvt 200 -nve 100 -backend mdm
//
// The -faults flag injects a deterministic fault scenario into the machine
// backend; with -checkpoint the run writes crash-safe periodic checkpoints
// and automatically restarts from the last one after a fatal host fault:
//
//	mdmsim -faults "wine2:board-drop@step=60,board=2; run:fatal@step=90" \
//	       -checkpoint run.ckpt -checkpoint-every 25
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"mdm"
	"mdm/internal/fault"
	"mdm/internal/md"
)

// runOpts is the protocol schedule and resilience policy of one invocation.
type runOpts struct {
	nvt, nve    int
	ckptPath    string // "" disables checkpointing (and restarts)
	ckptEvery   int
	maxRestarts int
	frame       func(sim *mdm.Simulation, stage string) error
	logf        func(format string, args ...any)
}

// checkpoint writes the crash-safe checkpoint if one is configured.
func (o *runOpts) checkpoint(sim *mdm.Simulation) error {
	if o.ckptPath == "" {
		return nil
	}
	return md.WriteCheckpointFile(o.ckptPath, sim.System, sim.Integrator.StepCount())
}

// runSegments advances sim from wherever its step counter stands through the
// rest of the NVT+NVE protocol, checkpointing every ckptEvery steps.
func runSegments(sim *mdm.Simulation, o *runOpts) error {
	chunked := func(run func(int) error, until int) error {
		for {
			done := sim.Integrator.StepCount()
			if done >= until {
				return nil
			}
			n := until - done
			if o.ckptPath != "" && o.ckptEvery > 0 && n > o.ckptEvery {
				n = o.ckptEvery
			}
			if err := run(n); err != nil {
				return err
			}
			if err := o.checkpoint(sim); err != nil {
				return err
			}
		}
	}
	if err := chunked(sim.RunNVT, o.nvt); err != nil {
		return err
	}
	if err := o.frame(sim, "after-nvt"); err != nil {
		return err
	}
	return chunked(sim.RunNVE, o.nvt+o.nve)
}

// runProtocol drives the whole protocol with self-healing: a fatal injected
// host fault triggers a restart from the last checkpoint (up to maxRestarts
// times), reusing the simulation's fault schedule so the fatal does not
// refire. It returns the final simulation, which differs from the argument
// after a restart.
func runProtocol(sim *mdm.Simulation, o *runOpts) (*mdm.Simulation, int, error) {
	// Seed the checkpoint before the first step so a fault in the first
	// chunk still has a restart point.
	if err := o.checkpoint(sim); err != nil {
		return sim, 0, err
	}
	restarts := 0
	for {
		err := runSegments(sim, o)
		if err == nil {
			return sim, restarts, nil
		}
		var fe *fault.FatalError
		if o.ckptPath == "" || restarts >= o.maxRestarts || !errors.As(err, &fe) {
			return sim, restarts, err
		}
		restarts++
		sys, step, rerr := md.ReadCheckpointFile(o.ckptPath)
		if rerr != nil {
			return sim, restarts, fmt.Errorf("restarting after %v: %w", err, rerr)
		}
		o.logf("fatal fault (%v): restart %d/%d from checkpoint at step %d",
			err, restarts, o.maxRestarts, step)
		resumed, rerr := mdm.ResumeSimulation(sim, sys, step)
		if rerr != nil {
			return sim, restarts, rerr
		}
		sim = resumed
	}
}

func main() {
	cells := flag.Int("cells", 2, "rock-salt cells per side (N = 8·cells³)")
	temp := flag.Float64("t", 1200, "temperature (K), paper: 1200")
	dt := flag.Float64("dt", 2, "time step (fs), paper: 2")
	nvt := flag.Int("nvt", 100, "NVT steps, paper: 2000")
	nve := flag.Int("nve", 50, "NVE steps, paper: 1000")
	backend := flag.String("backend", "mdm", "force engine: mdm or reference")
	seed := flag.Int64("seed", 1, "velocity seed")
	every := flag.Int("every", 10, "print a sample every k steps")
	xyz := flag.String("xyz", "", "write an XYZ trajectory frame every k steps to this file")
	faults := flag.String("faults", "", `fault scenario, e.g. "wine2:board-drop@step=60,board=2; run:fatal@step=90"`)
	ckpt := flag.String("checkpoint", "", "crash-safe checkpoint file (enables restart after fatal faults)")
	ckptEvery := flag.Int("checkpoint-every", 25, "steps between checkpoints")
	maxRestarts := flag.Int("max-restarts", 3, "restarts from checkpoint after fatal faults")
	workers := flag.Int("workers", 0, "worker-pool width striping the simulated pipelines across cores (0 = GOMAXPROCS, 1 = serial); bit-identical at any width")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	var be mdm.Backend
	switch *backend {
	case "mdm":
		be = mdm.BackendMDM
	case "reference":
		be = mdm.BackendReference
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q\n", *backend)
		os.Exit(2)
	}
	if *faults != "" && be != mdm.BackendMDM {
		fmt.Fprintln(os.Stderr, "-faults requires the mdm backend")
		os.Exit(2)
	}

	sim, err := mdm.NewSimulation(mdm.Config{
		Cells:          *cells,
		Temperature:    *temp,
		Dt:             *dt,
		Backend:        be,
		Seed:           *seed,
		PotentialEvery: 1,
		Faults:         *faults,
		Workers:        *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() { _ = sim.Free() }()

	p := sim.Params()
	fmt.Printf("system: %d NaCl ions in a %.2f Å box, backend %s\n", sim.N(), p.L, be)
	fmt.Printf("ewald:  alpha=%.2f r_cut=%.2f Å Lk_cut=%.2f (N_wv ≈ %.0f)\n",
		p.Alpha, p.RCut, p.LKCut, p.NWv())
	fmt.Printf("run:    %d NVT + %d NVE steps of %.1f fs at %.0f K\n", *nvt, *nve, *dt, *temp)
	if *faults != "" {
		fmt.Printf("faults: %s\n", *faults)
	}
	fmt.Println()

	var traj *os.File
	if *xyz != "" {
		traj, err = os.Create(*xyz)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			// The trajectory is the program's output: a failed close (full
			// disk, NFS flush) must not pass silently.
			if err := traj.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}
	o := &runOpts{
		nvt:         *nvt,
		nve:         *nve,
		ckptPath:    *ckpt,
		ckptEvery:   *ckptEvery,
		maxRestarts: *maxRestarts,
		frame: func(sim *mdm.Simulation, stage string) error {
			if traj == nil {
				return nil
			}
			return md.WriteXYZ(traj, sim.System, stage)
		},
		logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}

	start := time.Now()
	if err := o.frame(sim, "initial"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sim, restarts, err := runProtocol(sim, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := o.frame(sim, "final"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	fmt.Printf("%8s %10s %12s %12s %14s %9s\n", "step", "t (ps)", "T (K)", "KE (eV)", "PE (eV)", "E (eV)")
	recs := sim.Records()
	for i, r := range recs {
		if i%*every != 0 && i != len(recs)-1 {
			continue
		}
		fmt.Printf("%8d %10.4f %12.2f %12.4f %14.4f %9.3f\n", r.Step, r.Time, r.T, r.KE, r.PE, r.E)
	}

	mean, std := sim.TemperatureStats()
	fmt.Printf("\ntemperature: %.1f ± %.1f K (sigma/mean = %.4f)\n", mean, std, std/mean)
	fmt.Printf("NVE energy drift: %.3g relative (paper: < 5e-7 over 2 ps at N = 1.88e7)\n", sim.EnergyDrift())
	if rep, ok := sim.FaultReport(); ok {
		fmt.Printf("fault recovery: %d retries, %d re-stripes, %d suspect steps, %d fallback steps, %d restarts\n",
			rep.Retries, rep.Restripes, rep.SuspectSteps, rep.FallbackSteps, restarts)
		for _, e := range rep.Events {
			fmt.Printf("  %s\n", e)
		}
	}
	steps := *nvt + *nve
	fmt.Printf("wall clock: %.2f s total, %.1f ms/step for N=%d\n",
		elapsed.Seconds(), elapsed.Seconds()*1000/float64(steps), sim.N())
}
