package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mdm/internal/serve"
)

// The daemon's startup, drain and exit-code contracts are pinned against a
// real process: the test binary re-execs itself as the server (TestMain
// dispatches on MDM_SERVE_HELPER) so flag parsing, signal handling, the HTTP
// listener and os.Exit all run exactly as in production.

func TestMain(m *testing.M) {
	if os.Getenv("MDM_SERVE_HELPER") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// startServer launches the daemon on an ephemeral port and returns the
// command, its base URL (parsed from the startup line) and its stdout
// scanner.
func startServer(t *testing.T, args ...string) (*exec.Cmd, string, *bufio.Scanner) {
	t.Helper()
	cmd := exec.Command(os.Args[0], append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Env = append(os.Environ(), "MDM_SERVE_HELPER=1")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr := strings.TrimSpace(strings.SplitN(line[i+len("listening on "):], ",", 2)[0])
			return cmd, "http://" + addr, sc
		}
	}
	t.Fatalf("server never announced its address (scan err: %v)", sc.Err())
	return nil, "", nil
}

// TestServeBinaryDrainContract runs the full daemon lifecycle: start on an
// ephemeral port, submit and finish a session over HTTP, SIGTERM, and verify
// the drain line, the machine-readable summary file and exit code 0.
func TestServeBinaryDrainContract(t *testing.T) {
	dir := t.TempDir()
	sumPath := filepath.Join(dir, "drain.json")
	cmd, base, stdout := startServer(t,
		"-root", filepath.Join(dir, "data"), "-summary", sumPath, "-checkpoint-every", "2")

	resp, err := http.Post(base+"/v1/sessions", "application/json", //mdm:httpok -- test client against the daemon under test; the test binary's deadline bounds it
		bytes.NewReader([]byte(`{"tenant":"alice","cells":2,"steps":4,"backend":"reference"}`)))
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d %+v", resp.StatusCode, st)
	}
	deadline := time.Now().Add(30 * time.Second)
	for st.State != serve.StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("session stuck: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(base + "/v1/sessions/" + st.ID) //mdm:httpok -- test client against the daemon under test; the test binary's deadline bounds it
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	drained := false
	for stdout.Scan() {
		if strings.Contains(stdout.Text(), "drained:") {
			drained = true
			break
		}
	}
	if !drained {
		t.Fatalf("no drain line before exit (scan err: %v)", stdout.Err())
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("graceful drain exit: %v, want success (exit 0)", err)
	}

	data, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatalf("drain summary file: %v", err)
	}
	var sum serve.DrainSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("drain summary is not valid JSON: %v\n%s", err, data)
	}
	if sum.Sessions[serve.StateDone] != 1 || len(sum.Interrupted) != 0 {
		t.Fatalf("drain summary = %+v, want one done session, none interrupted", sum)
	}
}
