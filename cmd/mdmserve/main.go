// Command mdmserve is the long-lived simulation daemon: an HTTP/JSON service
// that admits, schedules and supervises concurrent NaCl simulation sessions
// for multiple tenants, journaling and checkpointing every session so that
// killing the server and restarting it resumes every interrupted run at its
// exact committed step.
//
//	mdmserve -addr :8488 -root /var/lib/mdm
//
// Submit a session and watch it:
//
//	curl -s -X POST localhost:8488/v1/sessions \
//	     -d '{"tenant":"alice","cells":2,"steps":200}'
//	curl -s localhost:8488/v1/sessions/s0001
//	curl -s localhost:8488/v1/sessions/s0001/observables?since=100
//
// Signal contract: the first SIGINT/SIGTERM drains — admission stops (503),
// running sessions finish their committed step, journals are flushed, final
// checkpoints written — then the drain summary is printed (and written to
// -summary if set) and the process exits 0. A second signal kills the
// process immediately (exit 130). Startup errors exit 1, usage errors 2.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"mdm/internal/lifecycle"
	"mdm/internal/serve"
	"mdm/internal/supervise"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8488", "listen address")
	root := flag.String("root", "mdmserve-data", "run-directory root (sessions live in <root>/<tenant>/<id>)")
	executors := flag.Int("executors", 2, "concurrent session executors")
	workerBudget := flag.Int("worker-budget", 0, "total simulation worker budget shared by all executors (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 16, "admission queue capacity")
	admitWait := flag.Duration("admit-wait", 100*time.Millisecond, "bounded wait for a queue slot before a 503")
	ckptEvery := flag.Int("checkpoint-every", 8, "steps between checkpoint commits")
	maxSteps := flag.Int("max-steps", 100000, "server-side per-session step budget")
	maxSessions := flag.Int("tenant-max-sessions", 8, "per-tenant live-session quota (0 = unlimited)")
	maxQueued := flag.Int("tenant-max-queued", 4, "per-tenant queued-session quota (0 = unlimited)")
	maxPSteps := flag.Int64("tenant-max-particle-steps", 0, "per-tenant lifetime particle-step budget (0 = unlimited)")
	breakerTrip := flag.Int("breaker-trip", 3, "tenant breaker: failures within the window that open it")
	breakerWindow := flag.Int("breaker-window", 20, "tenant breaker: failure-counting window in admission ticks")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 rejections")
	summaryPath := flag.String("summary", "", "write the machine-readable drain summary to this file")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	mgr, err := serve.Open(serve.Config{
		Root:            *root,
		Executors:       *executors,
		WorkerBudget:    *workerBudget,
		QueueDepth:      *queueDepth,
		AdmitWait:       *admitWait,
		CheckpointEvery: *ckptEvery,
		MaxSessionSteps: *maxSteps,
		Quota: serve.Quota{
			MaxSessions:      *maxSessions,
			MaxQueued:        *maxQueued,
			MaxParticleSteps: *maxPSteps,
		},
		Breaker: supervise.BreakerConfig{
			Trip:   *breakerTrip,
			Window: *breakerWindow,
		},
		RetryAfter: *retryAfter,
		Logf:       logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	srv := mgr.Server(*addr)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// The resolved address is part of the startup contract: with -addr :0
	// the supervising process (or test) reads it from stdout.
	fmt.Printf("mdmserve: listening on %s, root %s\n", ln.Addr(), *root)

	// Graceful drain: the first signal stops admission and interrupts
	// sessions at their next committed step; a second signal exits 130.
	done := make(chan struct{})
	sd := lifecycle.Watch(func() { close(done) })
	defer sd.Stop()

	serveErr := make(chan error, 1)
	//mdm:gojoinok -- HTTP accept loop: joined via serveErr after srv.Close below
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, err)
		mgr.Close()
		return 1
	case <-done:
	}

	sum := mgr.Drain()
	_ = srv.Close()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
	}
	fmt.Printf("mdmserve: drained: %d interrupted, %d queued, sessions %v\n",
		len(sum.Interrupted), len(sum.Queued), sum.Sessions)
	if *summaryPath != "" {
		if err := lifecycle.WriteSummary(*summaryPath, sum); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return 0
}
