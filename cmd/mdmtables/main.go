// Command mdmtables regenerates the paper's tables:
//
//	mdmtables -table 1   component inventory (Table 1)
//	mdmtables -table 4   performance accounting (Table 4) — the 1.34 Tflops headline
//	mdmtables -table 5   current vs future MDM (Table 5)
//	mdmtables -table all (default) everything
//
// Table 4 can be evaluated at a different system size with -n and -l.
package main

import (
	"flag"
	"fmt"
	"os"

	"mdm"
	"mdm/internal/host"
	"mdm/internal/perf"
)

func main() {
	table := flag.String("table", "all", "which table to print: 1, 4, 5 or all")
	n := flag.Int("n", perf.PaperN, "particle count for Table 4")
	l := flag.Float64("l", perf.PaperL, "box side (Å) for Table 4")
	breakdown := flag.Bool("breakdown", false, "also print the per-component step-time breakdown")
	flag.Parse()

	if *breakdown {
		printBreakdown(*n, *l)
		fmt.Println()
	}
	switch *table {
	case "1":
		printTable1()
	case "4":
		printTable4(*n, *l)
	case "5":
		printTable5()
	case "all":
		printTable1()
		fmt.Println()
		printTable4(*n, *l)
		fmt.Println()
		printTable5()
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
}

func printBreakdown(n int, l float64) {
	density := float64(n) / (l * l * l)
	fmt.Println("Step-time breakdown (component model, §6.1 discussion):")
	fmt.Printf("%-14s %12s %12s %12s %12s %10s %10s\n",
		"machine", "WINE compute", "WINE comm", "MDG compute", "MDG comm", "host", "total")
	for _, m := range []perf.MachineModel{perf.CurrentMDM(), perf.FutureMDM()} {
		p := m.OptimalParams(n, l)
		b := m.StepTime(p, n, density)
		fmt.Printf("%-14s %11.2fs %11.2fs %11.2fs %11.2fs %9.2fs %9.2fs\n",
			m.Name, b.TWineCompute, b.TWineComm, b.TMDGCompute, b.TMDGComm, b.THost, b.Total)
	}
}

func printTable1() {
	fmt.Println("Table 1: Components of the MDM system")
	fmt.Printf("%-16s %-52s %s\n", "Component", "Product", "Manufacturer")
	for _, c := range host.Inventory() {
		fmt.Printf("%-16s %-52s %s\n", c.Component, c.Product, c.Manufacturer)
	}
}

func printTable4(n int, l float64) {
	cols, err := mdm.Table4At(n, l)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("Table 4: Performance of simulation (N = %.3g, L = %g Å)\n", float64(n), l)
	fmt.Printf("%-38s %14s %14s %14s\n", "", cols[0].Name, cols[1].Name, cols[2].Name)
	row := func(label string, f func(perf.Column) string) {
		fmt.Printf("%-38s %14s %14s %14s\n", label, f(cols[0]), f(cols[1]), f(cols[2]))
	}
	row("alpha", func(c perf.Column) string { return fmt.Sprintf("%.1f", c.Alpha) })
	row("r_cut (Å)", func(c perf.Column) string { return fmt.Sprintf("%.1f", c.RCut) })
	row("L k_cut", func(c perf.Column) string { return fmt.Sprintf("%.1f", c.LKCut) })
	row("N_int", func(c perf.Column) string {
		if c.NInt == 0 {
			return "-"
		}
		return fmt.Sprintf("%.3g", c.NInt)
	})
	row("N_int_g", func(c perf.Column) string {
		if c.NIntG == 0 {
			return "-"
		}
		return fmt.Sprintf("%.3g", c.NIntG)
	})
	row("N_wv", func(c perf.Column) string { return fmt.Sprintf("%.3g", c.NWv) })
	row("Flops/step, real-space part", func(c perf.Column) string { return fmt.Sprintf("%.3g", c.FlopsReal) })
	row("Flops/step, wavenumber-space part", func(c perf.Column) string { return fmt.Sprintf("%.3g", c.FlopsWave) })
	row("Total flops per time-step", func(c perf.Column) string { return fmt.Sprintf("%.3g", c.FlopsTotal) })
	row("sec/step", func(c perf.Column) string { return fmt.Sprintf("%.2f", c.SecPerStep) })
	row("Calculation speed (Tflops)", func(c perf.Column) string { return fmt.Sprintf("%.2f", c.CalcTflops) })
	row("Effective speed (Tflops)", func(c perf.Column) string { return fmt.Sprintf("%.2f", c.EffTflops) })

	if n == perf.PaperN && l == perf.PaperL {
		fmt.Println("\nPaper values for comparison:")
		fmt.Printf("%-38s %14s %14s %14s\n", "sec/step (paper)", "43.8", "43.8", "4.48")
		fmt.Printf("%-38s %14s %14s %14s\n", "Calculation speed (paper)", "15.4", "1.34", "48.7")
		fmt.Printf("%-38s %14s %14s %14s\n", "Effective speed (paper)", "1.34", "1.34", "13.1")
	}
}

func printTable5() {
	fmt.Println("Table 5: Comparison of current and future versions of MDM")
	fmt.Printf("%-42s %10s %10s\n", "System", "Current", "Future")
	for _, r := range mdm.Table5() {
		fmt.Printf("%-42s %10.4g %10.4g\n", r.Quantity, r.Current, r.Future)
	}
	fmt.Println("\n(Paper efficiencies: 26/29% current, 50% future; see EXPERIMENTS.md)")
}
