// Command mdmaccuracy measures the force accuracy of the two simulated
// special-purpose pipelines against the float64 reference, reproducing the
// accuracy claims of §3.4.4 (WINE-2: relative F(wn) error ≈ 10^-4.5) and
// §3.5.4 (MDGRAPE-2: pairwise relative error ≈ 10^-7).
//
//	mdmaccuracy -cells 3 -trials 3
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"mdm"
)

func main() {
	cells := flag.Int("cells", 2, "rock-salt cells per side")
	trials := flag.Int("trials", 3, "independent perturbed configurations")
	flag.Parse()

	fmt.Printf("pipeline accuracy vs float64 reference (%d trials, %d ions each)\n\n",
		*trials, 8**cells**cells**cells)
	fmt.Printf("%6s %14s %14s %14s %14s\n", "trial", "WINE worst", "WINE rms", "MDG worst", "MDG rms")
	var worstW, worstM float64
	for s := int64(1); s <= int64(*trials); s++ {
		acc, err := mdm.MeasureAccuracy(*cells, s)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%6d %14.3e %14.3e %14.3e %14.3e\n",
			s, acc.WineWorst, acc.WineRMS, acc.MDGWorst, acc.MDGRMS)
		worstW = math.Max(worstW, acc.WineWorst)
		worstM = math.Max(worstM, acc.MDGWorst)
	}
	fmt.Printf("\nWINE-2   worst relative F(wn) error: %.3e = 10^%.2f (paper: ~10^-4.5)\n",
		worstW, math.Log10(worstW))
	fmt.Printf("MDGRAPE-2 worst relative F(re) error: %.3e = 10^%.2f (paper: ~1e-7 pairwise)\n",
		worstM, math.Log10(worstM))
}
