// Command mdmfigure2 regenerates Figure 2 of the paper: the instantaneous
// temperature plotted against time for several particle counts, showing the
// fluctuation shrinking as N grows. The paper ran 1.10×10⁵ … 1.88×10⁷
// particles on the MDM; this reproduction runs a scaled-down series (the
// σ_T ∝ N^(-1/2) law under test is size-independent) and prints both the
// traces (as columns suitable for plotting) and the fitted power law.
//
//	mdmfigure2 -cells 2,3,4 -nvt 120 -nve 60 -t 1200 -backend mdm
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mdm"
	"mdm/internal/analysis"
)

func main() {
	cellsFlag := flag.String("cells", "2,3,4", "comma-separated rock-salt cells per side (N = 8·cells³)")
	nvt := flag.Int("nvt", 120, "NVT (velocity-scaling) steps, paper: 2000")
	nve := flag.Int("nve", 60, "NVE steps, paper: 1000")
	temp := flag.Float64("t", 1200, "temperature (K)")
	dt := flag.Float64("dt", 2, "time step (fs)")
	backend := flag.String("backend", "mdm", "force engine: mdm or reference")
	seed := flag.Int64("seed", 1, "velocity seed")
	traces := flag.Bool("traces", false, "print the full T(t) traces")
	flag.Parse()

	var cells []int
	for _, s := range strings.Split(*cellsFlag, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || c < 1 {
			fmt.Fprintf(os.Stderr, "bad cells value %q\n", s)
			os.Exit(2)
		}
		cells = append(cells, c)
	}
	var be mdm.Backend
	switch *backend {
	case "mdm":
		be = mdm.BackendMDM
	case "reference":
		be = mdm.BackendReference
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q\n", *backend)
		os.Exit(2)
	}

	series, pts, err := mdm.RunFigure2(mdm.Figure2Config{
		CellsList:   cells,
		NVTSteps:    *nvt,
		NVESteps:    *nve,
		Temperature: *temp,
		Dt:          *dt,
		Backend:     be,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("Figure 2 (scaled): temperature fluctuation vs particle count, backend %s\n", be)
	fmt.Printf("%8s %10s %10s %12s\n", "N", "<T> (K)", "sigma_T", "sigma_T/<T>")
	for _, pt := range pts {
		fmt.Printf("%8d %10.1f %10.2f %12.5f\n", pt.N, pt.MeanT, pt.StdT, pt.RelFluc)
	}
	if len(pts) >= 2 {
		c, p, err := analysis.FitInverseSqrt(pts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fit failed: %v\n", err)
		} else {
			fmt.Printf("\nfit: sigma_T/<T> = %.3f * N^%.3f  (canonical expectation: exponent -0.5)\n", c, p)
		}
	}
	if *traces {
		for _, s := range series {
			fmt.Printf("\n# N = %d (NVE segment)\n# time(ps)  T(K)\n", s.N)
			for i := range s.Times {
				fmt.Printf("%.5f %.2f\n", s.Times[i], s.Temps[i])
			}
		}
	}
}
