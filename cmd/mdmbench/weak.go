// Weak-scaling family for the spatial decomposition: fixed work per rank
// (64 ions, one 2×2×2-cell block each), growing rank counts, and per-tag
// traffic accounting for the rebuild and reuse step shapes.
package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"mdm/internal/core"
	"mdm/internal/ewald"
	"mdm/internal/md"
	"mdm/internal/mpi"
)

// TagTraffic is the per-tag MPI traffic of one step, labeled with the
// protocol name of the tag (core.TagName).
type TagTraffic struct {
	Tag      int    `json:"tag"`
	Name     string `json:"name"`
	Messages int64  `json:"messages"`
	Bytes    int64  `json:"bytes"`
}

// WeakScalingResult is one rung of the weak-scaling ladder: p real-space
// ranks each owning a fixed 64-ion block of a box that grows with p.
//
// Two efficiencies are reported because they answer different questions.
// WallEfficiency = t(1)/t(p) is the classic weak-scaling number: 1.0 means p
// ranks finish the p×-larger system in the base wall time — it requires p
// real cores, and on a time-shared host it degenerates to ~1/p. PerParticle-
// Efficiency = (t(1)/N(1))/(t(p)/N(p)) divides the serialization out: it is
// 1.0 when the per-particle step cost stays flat as ranks are added, i.e.
// the decomposition added no per-rank overhead — the honest gate on a host
// with fewer cores than ranks (the artifact's num_cpu field says which
// regime produced the record).
type WeakScalingResult struct {
	Ranks            int     `json:"ranks"`
	Cells            int     `json:"cells"`
	N                int     `json:"n"`
	ParticlesPerRank int     `json:"particles_per_rank"`
	Steps            int     `json:"steps"`
	NsPerStep        float64 `json:"ns_per_step"`
	NsPerParticle    float64 `json:"ns_per_particle_step"`
	WallEfficiency   float64 `json:"wall_efficiency"`
	PerParticleEff   float64 `json:"per_particle_efficiency"`

	// RebuildTraffic is the per-tag traffic of one full rebuild step
	// (migration + halo re-exchange); ReuseTraffic is one reuse step, where
	// only ghost positions stream. Tags with no traffic are omitted.
	RebuildTraffic []TagTraffic `json:"rebuild_traffic"`
	ReuseTraffic   []TagTraffic `json:"reuse_traffic"`
}

// weakRungs is the ladder: rank count and box side (in rock-salt cells) grow
// together so every rank owns one 2×2×2 block of grid cells — 64 ions.
var weakRungs = []struct{ ranks, cells int }{
	{1, 2}, {8, 4}, {27, 6},
}

// weakParams holds the real-space discretization physical while the box
// grows: r_cut stays at the 64-ion accuracy-suite cutoff (2.633·11.28/5.851
// = 5.076 Å), so with the 0.5 Å skin the cell side is 5.576–5.64 Å and the
// grid has exactly `cells` cells per axis — every rung's rank owns the same
// 8-cell block and sees the same 56-cell ghost shell. The wavenumber cutoff
// is pinned at the base rung's value instead of growing with α (which would
// be the accuracy-balanced choice) so the wavenumber work per particle is
// constant too: the family isolates the real-space decomposition rather
// than re-measuring Ewald cost balancing.
func weakParams(cells int) ewald.Params {
	base := ewald.ParamsForAlpha(2*5.64, ewald.SReal/0.45)
	l := float64(cells) * 5.64
	p := ewald.ParamsForAlpha(l, ewald.SReal*l/base.RCut)
	p.LKCut = base.LKCut
	return p
}

// weakTags is the fixed, deterministic order traffic rows are reported in.
var weakTags = []int{core.TagMigrate, core.TagHalo, core.TagGhostPos, core.TagForces, core.TagGroupReduce}

// trafficDelta turns an after-minus-before StatsByTag pair into labeled
// rows, in weakTags order, dropping silent tags.
func trafficDelta(before, after map[int]mpi.Stats) []TagTraffic {
	var out []TagTraffic
	for _, tag := range weakTags {
		d := mpi.Stats{
			Messages: after[tag].Messages - before[tag].Messages,
			Bytes:    after[tag].Bytes - before[tag].Bytes,
		}
		if d.Messages == 0 && d.Bytes == 0 {
			continue
		}
		out = append(out, TagTraffic{Tag: tag, Name: core.TagName(tag), Messages: d.Messages, Bytes: d.Bytes})
	}
	return out
}

// weakRung times one rung of the ladder: steps NVE steps of the 1200 K
// melt protocol at fixed 64 ions/rank, plus a forced-rebuild step and a
// reuse step bracketed by per-tag traffic snapshots.
func weakRung(ranks, cells, warmup, steps int) (WeakScalingResult, error) {
	p := weakParams(cells)
	cfg := core.CurrentMachineConfig(p)
	cfg.PotentialEvery = 100
	cfg.Skin = 0.5
	world, err := mpi.NewWorld(ranks + 1)
	if err != nil {
		return WeakScalingResult{}, err
	}
	run, err := core.NewParallelRun(world, cfg, ranks, 1)
	if err != nil {
		return WeakScalingResult{}, err
	}
	defer func() { _ = run.Free() }()
	sys, err := md.NewRockSalt(cells, 5.64)
	if err != nil {
		return WeakScalingResult{}, err
	}
	sys.SetMaxwellVelocities(1200, 1)
	it, err := md.NewIntegrator(sys, run, 2.0)
	if err != nil {
		return WeakScalingResult{}, err
	}
	if err := it.Run(warmup, nil); err != nil {
		return WeakScalingResult{}, err
	}

	start := time.Now()
	if err := it.Run(steps, nil); err != nil {
		return WeakScalingResult{}, err
	}
	nsPerStep := float64(time.Since(start).Nanoseconds()) / float64(steps)

	// One forced rebuild step and one reuse step, each bracketed by per-tag
	// snapshots. The reuse step follows a fresh rebuild, so the skin budget
	// is full and the step cannot spill into another rebuild.
	run.InvalidateGeometry()
	before := world.StatsByTag()
	if err := it.Run(1, nil); err != nil {
		return WeakScalingResult{}, err
	}
	mid := world.StatsByTag()
	if err := it.Run(1, nil); err != nil {
		return WeakScalingResult{}, err
	}
	after := world.StatsByTag()

	n := sys.N()
	return WeakScalingResult{
		Ranks:            ranks,
		Cells:            cells,
		N:                n,
		ParticlesPerRank: n / ranks,
		Steps:            steps,
		NsPerStep:        nsPerStep,
		NsPerParticle:    nsPerStep / float64(n),
		RebuildTraffic:   trafficDelta(before, mid),
		ReuseTraffic:     trafficDelta(mid, after),
	}, nil
}

// weakScaling runs the ladder and fills in efficiencies against the
// single-rank rung.
func weakScaling(rungs []struct{ ranks, cells int }, warmup, steps int) ([]WeakScalingResult, error) {
	var out []WeakScalingResult
	var base WeakScalingResult
	for _, rung := range rungs {
		r, err := weakRung(rung.ranks, rung.cells, warmup, steps)
		if err != nil {
			return nil, fmt.Errorf("weak scaling ranks=%d: %w", rung.ranks, err)
		}
		if rung.ranks == 1 {
			base = r
		}
		if base.NsPerStep > 0 {
			r.WallEfficiency = base.NsPerStep / r.NsPerStep
			r.PerParticleEff = base.NsPerParticle / r.NsPerParticle
		}
		out = append(out, r)
		fmt.Fprintf(os.Stderr, "weakScaling ranks=%d N=%d: %.1f ms/step, per-particle efficiency %.2f\n",
			r.Ranks, r.N, r.NsPerStep/1e6, r.PerParticleEff)
	}
	return out, nil
}

// bytesFor returns the byte count of one tag in a traffic row set (0 when
// the tag is silent).
func bytesFor(rows []TagTraffic, tag int) int64 {
	for _, r := range rows {
		if r.Tag == tag {
			return r.Bytes
		}
	}
	return 0
}

// weakSmoke gates CI on the decomposition's two structural claims, sized to
// stay quick ({1,8} ranks, a handful of steps):
//
//   - protocol: a reuse step streams ghost positions only — no halo, no
//     migration — and moves strictly fewer bytes than a rebuild step;
//   - overhead: the per-particle step cost at 8 ranks stays within 2× of the
//     single-rank cost. The wall-clock weak-scaling number needs one real
//     core per rank and is recorded in the artifact instead of gated here:
//     on a host with num_cpu < ranks (CI boxes included) the in-process
//     world time-shares the ranks and wall efficiency measures the host,
//     not the decomposition.
func weakSmoke() error {
	results, err := weakScaling(weakRungs[:2], 1, 3)
	if err != nil {
		return err
	}
	for _, r := range results {
		if r.Ranks == 1 {
			continue
		}
		rebuild := bytesFor(r.RebuildTraffic, core.TagHalo)
		ghost := bytesFor(r.ReuseTraffic, core.TagGhostPos)
		if rebuild == 0 || ghost == 0 {
			return fmt.Errorf("weak smoke ranks=%d: expected halo bytes on rebuild (%d) and ghost-position bytes on reuse (%d)", r.Ranks, rebuild, ghost)
		}
		if b := bytesFor(r.ReuseTraffic, core.TagHalo); b != 0 {
			return fmt.Errorf("weak smoke ranks=%d: reuse step re-sent %d halo bytes", r.Ranks, b)
		}
		if b := bytesFor(r.ReuseTraffic, core.TagMigrate); b != 0 {
			return fmt.Errorf("weak smoke ranks=%d: reuse step migrated %d bytes", r.Ranks, b)
		}
		if ghost >= rebuild {
			return fmt.Errorf("weak smoke ranks=%d: reuse ghost stream (%d B) not smaller than rebuild halo (%d B)", r.Ranks, ghost, rebuild)
		}
		const margin = 2.0
		if r.PerParticleEff < 1/margin {
			return fmt.Errorf("weak smoke ranks=%d: per-particle efficiency %.2f (required ≥ %.2f)", r.Ranks, r.PerParticleEff, 1/margin)
		}
		fmt.Printf("weak smoke: ranks=%d per-particle efficiency %.2f, reuse %d B vs rebuild %d B (num_cpu=%d)\n",
			r.Ranks, r.PerParticleEff, ghost, rebuild, runtime.NumCPU())
	}
	return nil
}
