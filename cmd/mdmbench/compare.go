// Benchmark artifact comparison: `mdmbench -compare A.json B.json` renders a
// regression summary between two reports recorded by scripts/bench.sh, so a
// perf change can be judged from checked-in artifacts instead of re-running
// both sides. Configurations are matched by (name, workers); pipeline rows by
// workers. A configuration is called a regression when the new ns/op exceeds
// the old by more than the threshold, or when allocs/op grew by more than
// half an allocation per op: the arena work made per-step allocation counts
// exact integers, so a real leak adds at least 1.0/op, while the recorded
// figure carries sub-integer jitter (it is a process-wide Mallocs delta over
// the timing window, so background runtime allocation and amortized
// rebuild-cadence effects land in the fraction).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

type benchKey struct {
	name    string
	workers int
}

// compareReports prints the summary and returns the number of regressions.
func compareReports(aPath, bPath string, threshold float64) (int, error) {
	a, err := readReport(aPath)
	if err != nil {
		return 0, err
	}
	b, err := readReport(bPath)
	if err != nil {
		return 0, err
	}
	if a.GOMAXPROCS != b.GOMAXPROCS || a.NumCPU != b.NumCPU || a.N != b.N {
		fmt.Printf("note: environments differ (%s: gomaxprocs=%d num_cpu=%d n=%d; %s: gomaxprocs=%d num_cpu=%d n=%d) — deltas are indicative only\n",
			aPath, a.GOMAXPROCS, a.NumCPU, a.N, bPath, b.GOMAXPROCS, b.NumCPU, b.N)
	}

	old := make(map[benchKey]Result, len(a.Results))
	for _, r := range a.Results {
		old[benchKey{r.Name, r.Workers}] = r
	}
	regressions := 0
	fmt.Printf("%-34s %14s %14s %9s %16s\n", "configuration", aPath+" ns/op", bPath+" ns/op", "delta", "allocs/op")
	keys := make([]benchKey, 0, len(b.Results))
	for _, r := range b.Results {
		keys = append(keys, benchKey{r.Name, r.Workers})
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].workers < keys[j].workers
	})
	newByKey := make(map[benchKey]Result, len(b.Results))
	for _, r := range b.Results {
		newByKey[benchKey{r.Name, r.Workers}] = r
	}
	for _, k := range keys {
		nr := newByKey[k]
		or, ok := old[k]
		label := fmt.Sprintf("%s/w%d", k.name, k.workers)
		if !ok {
			fmt.Printf("%-34s %14s %14.0f %9s %16.1f\n", label, "-", nr.NsPerOp, "new", nr.AllocsPerOp)
			continue
		}
		delta := nr.NsPerOp/or.NsPerOp - 1
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressions++
		} else if or.AllocsPerOp > 0 && nr.AllocsPerOp > or.AllocsPerOp+0.5 {
			// Reports from before alloc recording carry 0; only a real
			// old measurement can regress. The half-alloc slack absorbs
			// window-counting jitter; a leak is at least +1.0/op.
			mark = "  ALLOC REGRESSION"
			regressions++
		}
		fmt.Printf("%-34s %14.0f %14.0f %+8.1f%% %7.1f → %-7.1f%s\n",
			label, or.NsPerOp, nr.NsPerOp, 100*delta, or.AllocsPerOp, nr.AllocsPerOp, mark)
	}
	for _, r := range a.Results {
		if _, ok := newByKey[benchKey{r.Name, r.Workers}]; !ok {
			fmt.Printf("%-34s %14.0f %14s\n", fmt.Sprintf("%s/w%d", r.Name, r.Workers), r.NsPerOp, "dropped")
		}
	}

	oldPipe := make(map[int]PipelineResult, len(a.Pipeline))
	for _, p := range a.Pipeline {
		oldPipe[p.Workers] = p
	}
	for _, p := range b.Pipeline {
		op, ok := oldPipe[p.Workers]
		if !ok {
			continue
		}
		delta := p.OnNsPerOp/op.OnNsPerOp - 1
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-34s %14.0f %14.0f %+8.1f%% speedup %.2f → %.2f%s\n",
			fmt.Sprintf("pipeline-on/w%d", p.Workers), op.OnNsPerOp, p.OnNsPerOp, 100*delta, op.Speedup, p.Speedup, mark)
	}
	oldBatch := make(map[int]BatchThroughputResult, len(a.Batch))
	for _, r := range a.Batch {
		oldBatch[r.K] = r
	}
	for _, r := range b.Batch {
		label := fmt.Sprintf("batchThroughput/K%d", r.K)
		or, ok := oldBatch[r.K]
		if !ok || or.Steps != r.Steps {
			// No prior batch section (pre-throughput-mode artifact) or a
			// different protocol length: nothing comparable.
			fmt.Printf("%-34s %14s %14.0f %9s batched %.2fx sequential\n",
				label, "-", r.BatchedNsPerRun, "new", r.Speedup)
			continue
		}
		delta := r.BatchedNsPerRun/or.BatchedNsPerRun - 1
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-34s %14.0f %14.0f %+8.1f%% batched %.2fx → %.2fx sequential%s\n",
			label, or.BatchedNsPerRun, r.BatchedNsPerRun, 100*delta, or.Speedup, r.Speedup, mark)
	}
	oldWeak := make(map[int]WeakScalingResult, len(a.WeakScaling))
	for _, r := range a.WeakScaling {
		oldWeak[r.Ranks] = r
	}
	for _, r := range b.WeakScaling {
		label := fmt.Sprintf("weakScaling/p%d", r.Ranks)
		or, ok := oldWeak[r.Ranks]
		if !ok || or.N != r.N {
			// No prior weak-scaling section (pre-decomposition artifact) or a
			// different rung size: nothing comparable.
			fmt.Printf("%-34s %14s %14.0f %9s per-particle eff %.2f\n",
				label, "-", r.NsPerStep, "new", r.PerParticleEff)
			continue
		}
		delta := r.NsPerStep/or.NsPerStep - 1
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-34s %14.0f %14.0f %+8.1f%% per-particle eff %.2f → %.2f%s\n",
			label, or.NsPerStep, r.NsPerStep, 100*delta, or.PerParticleEff, r.PerParticleEff, mark)
	}
	if regressions > 0 {
		fmt.Printf("\n%d regression(s) beyond %.0f%%\n", regressions, 100*threshold)
	} else {
		fmt.Printf("\nno regressions beyond %.0f%%\n", 100*threshold)
	}
	return regressions, nil
}
