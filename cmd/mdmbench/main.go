// Command mdmbench measures the intra-board parallelism of the simulated
// MDM: the hot paths that package parallelize stripes across host cores are
// timed at pool widths 1, 2, 4 and 8 and reported as JSON with per-width
// speedups over the serial path.
//
//	mdmbench -o BENCH_0.json            # record a benchmark artifact
//	mdmbench -smoke                     # CI gate: parallel must not lose to serial
//
// Every width computes bit-identical physics (the parallel_test.go contract),
// so the JSON is purely a wall-clock document. Speedups beyond 1× require
// GOMAXPROCS > 1; the artifact records gomaxprocs so a single-core record is
// recognizable as a serial baseline rather than a failed optimization.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mdm"
	"mdm/internal/cellindex"
	"mdm/internal/core"
	"mdm/internal/ewald"
	"mdm/internal/md"
	"mdm/internal/mdgrape2"
	"mdm/internal/parallelize"
	"mdm/internal/vec"
	"mdm/internal/wine2"
)

// Result is one timed configuration.
type Result struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	Speedup     float64 `json:"speedup"` // vs workers=1 of the same name
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// PipelineResult compares the Figure-2 step with the concurrent pipeline on
// versus off at one pool width — the headline ratio of the fused/overlapped
// step path. The comparison uses the engine-balanced Ewald splitting (see
// run) and interleaves the two configurations so host-load drift cancels.
type PipelineResult struct {
	Workers    int     `json:"workers"`
	OffNsPerOp float64 `json:"off_ns_per_op"`
	OnNsPerOp  float64 `json:"on_ns_per_op"`
	Speedup    float64 `json:"speedup"` // off / on
}

// BatchThroughputResult compares K replicas of the 216-ion system run
// batched through one shared machine (mdm.RunBatch, the throughput protocol:
// potential every 100 steps as in §5) against K sequential full runs through
// the single-run API (mdm.NewSimulation + RunNVE, whose interactive default
// evaluates the potential every step). Both arms run serially (Workers=1), so
// the ratio is pure amortization — shared setup, shared step-path arenas and
// the paper's bookkeeping cadence — not parallelism.
type BatchThroughputResult struct {
	K                    int     `json:"k"`
	Steps                int     `json:"steps"` // NVE steps per replica
	BatchedNsPerRun      float64 `json:"batched_ns_per_run"`
	SequentialNsPerRun   float64 `json:"sequential_ns_per_run"`
	BatchedRunsPerSec    float64 `json:"batched_runs_per_sec"`
	SequentialRunsPerSec float64 `json:"sequential_runs_per_sec"`
	Speedup              float64 `json:"speedup"` // sequential / batched, in runs/sec
}

// Report is the whole artifact (a BENCH_<n>.json file).
type Report struct {
	GOMAXPROCS  int                     `json:"gomaxprocs"`
	NumCPU      int                     `json:"num_cpu"`
	N           int                     `json:"n_particles"`
	Iters       int                     `json:"iters_per_sample"`
	Results     []Result                `json:"results"`
	Pipeline    []PipelineResult        `json:"pipeline,omitempty"`
	Batch       []BatchThroughputResult `json:"batch,omitempty"`
	WeakScaling []WeakScalingResult     `json:"weak_scaling,omitempty"`
}

// benchSystem is the 216-ion perturbed crystal of the bench_test.go
// micro-benchmarks.
func benchSystem() (*md.System, ewald.Params, error) {
	sys, err := md.NewRockSalt(3, 5.64)
	if err != nil {
		return nil, ewald.Params{}, err
	}
	for i := range sys.Pos {
		h := float64((i*2654435761)%1000)/1000.0 - 0.5
		sys.Pos[i] = sys.Pos[i].Add(vec.New(h, -h, h*0.5).Scale(0.4)).Wrap(sys.L)
	}
	p := ewald.ParamsForAlpha(sys.L, ewald.SReal/0.45)
	return sys, p, nil
}

// timeOp times iters calls of op and returns the best-of-reps ns/op (the
// usual defense against scheduler noise) plus the steady-state heap
// allocations per op of the last rep.
func timeOp(iters, reps int, op func() error) (ns, allocs float64, err error) {
	for i := 0; i < 3; i++ { // warm-up: tables, caches, buffer arenas
		if err := op(); err != nil {
			return 0, 0, err
		}
	}
	var ms0, ms1 runtime.MemStats
	best := 0.0
	for r := 0; r < reps; r++ {
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := op(); err != nil {
				return 0, 0, err
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(iters)
		runtime.ReadMemStats(&ms1)
		allocs = float64(ms1.Mallocs-ms0.Mallocs) / float64(iters)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best, allocs, nil
}

// family times one benchmark family across the worker widths and appends the
// results (with speedups vs the width-1 sample) to the report.
func (rep *Report) family(name string, widths []int, iters, reps int, mk func(workers int) (func() error, error)) error {
	var base float64
	for _, w := range widths {
		op, err := mk(w)
		if err != nil {
			return fmt.Errorf("%s workers=%d: %w", name, w, err)
		}
		ns, allocs, err := timeOp(iters, reps, op)
		if err != nil {
			return fmt.Errorf("%s workers=%d: %w", name, w, err)
		}
		if w == 1 {
			base = ns
		}
		speedup := 0.0
		if base > 0 {
			speedup = base / ns
		}
		rep.Results = append(rep.Results, Result{
			Name: name, Workers: w, NsPerOp: ns, Speedup: speedup, AllocsPerOp: allocs,
		})
	}
	return nil
}

// figure2Family builds the Figure-2 step op at one machine configuration.
func figure2Family(p ewald.Params, pipeline bool, skin float64) func(workers int) (func() error, error) {
	return func(workers int) (func() error, error) {
		cfg := core.CurrentMachineConfig(p)
		cfg.Workers = workers
		cfg.PotentialEvery = 100
		cfg.Pipeline = pipeline
		cfg.Skin = skin
		m, err := core.NewMachine(cfg)
		if err != nil {
			return nil, err
		}
		// Each configuration integrates its own system so the trajectories
		// start identically (they also stay bit-identical at equal skin — the
		// contract under test elsewhere; here only the clock matters).
		run, err := md.NewRockSalt(3, 5.64)
		if err != nil {
			return nil, err
		}
		run.SetMaxwellVelocities(1200, 1)
		it, err := md.NewIntegrator(run, m, 2.0)
		if err != nil {
			return nil, err
		}
		return func() error { return it.Run(1, nil) }, nil
	}
}

// batchThroughput times one batched-vs-sequential comparison at batch size k:
// K full replica runs (steps NVE steps each, seeds 1..K) through one shared
// machine, then the same K runs through K fresh single-run simulations. These
// are macro-benchmarks seconds long, so a single sample per arm is stable.
func batchThroughput(k, steps int) (BatchThroughputResult, error) {
	cfg := mdm.Config{Cells: 3, Temperature: 1200, Workers: 1}

	start := time.Now()
	if _, err := mdm.RunBatch(cfg, k, 0, steps); err != nil {
		return BatchThroughputResult{}, fmt.Errorf("batched K=%d: %w", k, err)
	}
	batched := time.Since(start)

	start = time.Now()
	for i := 0; i < k; i++ {
		c := cfg
		c.Seed = 1 + int64(i) // the same replica set RunBatch runs
		sim, err := mdm.NewSimulation(c)
		if err != nil {
			return BatchThroughputResult{}, fmt.Errorf("sequential K=%d slot %d: %w", k, i, err)
		}
		if err := sim.RunNVE(steps); err != nil {
			_ = sim.Free()
			return BatchThroughputResult{}, fmt.Errorf("sequential K=%d slot %d: %w", k, i, err)
		}
		if err := sim.Free(); err != nil {
			return BatchThroughputResult{}, fmt.Errorf("sequential K=%d slot %d: %w", k, i, err)
		}
	}
	sequential := time.Since(start)

	return BatchThroughputResult{
		K:                    k,
		Steps:                steps,
		BatchedNsPerRun:      float64(batched.Nanoseconds()) / float64(k),
		SequentialNsPerRun:   float64(sequential.Nanoseconds()) / float64(k),
		BatchedRunsPerSec:    float64(k) / batched.Seconds(),
		SequentialRunsPerSec: float64(k) / sequential.Seconds(),
		Speedup:              sequential.Seconds() / batched.Seconds(),
	}, nil
}

func run(widths []int, iters, reps, batchSteps, weakSteps int) (*Report, error) {
	sys, p, err := benchSystem()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		N:          sys.N(),
		Iters:      iters,
	}
	waves := ewald.Waves(p)

	if err := rep.family("machineForces", widths, iters, reps, func(workers int) (func() error, error) {
		cfg := core.CurrentMachineConfig(p)
		cfg.Workers = workers
		m, err := core.NewMachine(cfg)
		if err != nil {
			return nil, err
		}
		return func() error {
			_, _, err := m.Forces(sys)
			return err
		}, nil
	}); err != nil {
		return nil, err
	}

	if err := rep.family("wine2DFTIDFT", widths, iters, reps, func(workers int) (func() error, error) {
		w, err := wine2.NewSystem(wine2.CurrentConfig())
		if err != nil {
			return nil, err
		}
		w.SetPool(parallelize.New(workers))
		return func() error {
			sn, cn, err := w.DFT(sys.L, waves, sys.Pos, sys.Charge)
			if err != nil {
				return err
			}
			_, err = w.IDFT(sys.L, waves, sn, cn, sys.Pos, sys.Charge)
			return err
		}, nil
	}); err != nil {
		return nil, err
	}

	if err := rep.family("jsetBuild", widths, iters, reps, func(workers int) (func() error, error) {
		grid, err := cellindex.NewGrid(sys.L, p.RCut)
		if err != nil {
			return nil, err
		}
		pool := parallelize.New(workers)
		return func() error {
			_, err := mdgrape2.NewJSetPool(grid, sys.Pos, sys.Type, nil, pool)
			return err
		}, nil
	}); err != nil {
		return nil, err
	}

	if err := rep.family("figure2Step", widths, iters, reps, figure2Family(p, false, 0)); err != nil {
		return nil, err
	}
	if err := rep.family("figure2StepPipeline", widths, iters, reps, figure2Family(p, true, 0)); err != nil {
		return nil, err
	}
	if err := rep.family("figure2StepPipelineSkin", widths, iters, reps, figure2Family(p, true, 0.5)); err != nil {
		return nil, err
	}

	// Headline ratios: the same step with the concurrent pipeline off vs on,
	// measured interleaved (off/on alternate within each rep) so both
	// configurations see the same host load and frequency state — the
	// cross-family numbers above are timed minutes apart and their ratio
	// absorbs any drift in between. The comparison runs at the pipeline's
	// design point: α chosen so WINE-2 and MDGRAPE-2 carry comparable
	// per-step work (the MDM balances its engines so neither starves the
	// other — concurrency pays nothing when one engine dominates). The
	// family benchmarks above keep the accuracy-suite α, which loads the
	// real-space engine ~5× heavier.
	pb := ewald.ParamsForAlpha(sys.L, ewald.SReal/0.33)
	for _, w := range widths {
		pr, err := pipelineCompare(pb, w, iters, reps)
		if err != nil {
			return nil, fmt.Errorf("pipeline compare workers=%d: %w", w, err)
		}
		rep.Pipeline = append(rep.Pipeline, pr)
	}

	// Throughput mode: batched small-N replicas vs sequential full runs.
	// These are multi-second macro runs (skipped when batchSteps is 0, e.g.
	// in smoke mode, which has its own quick batch gate).
	if batchSteps > 0 {
		for _, k := range []int{1, 4, 16, 64} {
			br, err := batchThroughput(k, batchSteps)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "batchThroughput K=%d: %.2f runs/s batched vs %.2f sequential (%.2fx)\n",
				k, br.BatchedRunsPerSec, br.SequentialRunsPerSec, br.Speedup)
			rep.Batch = append(rep.Batch, br)
		}
	}

	// Weak scaling of the spatial decomposition: fixed 64 ions/rank at
	// growing rank counts, with per-tag traffic for the rebuild and reuse
	// step shapes (skipped when weakSteps is 0, e.g. in smoke mode, which
	// has its own quick weak-scaling gate).
	if weakSteps > 0 {
		ws, err := weakScaling(weakRungs, 2, weakSteps)
		if err != nil {
			return nil, err
		}
		rep.WeakScaling = ws
	}

	return rep, nil
}

// pipelineCompare times the Figure-2 step with the pipeline off and on at one
// pool width, alternating the two configurations within every rep and keeping
// each side's best sample.
func pipelineCompare(p ewald.Params, workers, iters, reps int) (PipelineResult, error) {
	offOp, err := figure2Family(p, false, 0)(workers)
	if err != nil {
		return PipelineResult{}, err
	}
	onOp, err := figure2Family(p, true, 0)(workers)
	if err != nil {
		return PipelineResult{}, err
	}
	sample := func(op func() error) (float64, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := op(); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
	}
	// Warm both sides (tables, arenas, CPU frequency) before any timing.
	for i := 0; i < 3; i++ {
		if err := offOp(); err != nil {
			return PipelineResult{}, err
		}
		if err := onOp(); err != nil {
			return PipelineResult{}, err
		}
	}
	var bestOff, bestOn float64
	for r := 0; r < reps; r++ {
		off, err := sample(offOp)
		if err != nil {
			return PipelineResult{}, err
		}
		on, err := sample(onOp)
		if err != nil {
			return PipelineResult{}, err
		}
		if bestOff == 0 || off < bestOff {
			bestOff = off
		}
		if bestOn == 0 || on < bestOn {
			bestOn = on
		}
	}
	return PipelineResult{
		Workers:    workers,
		OffNsPerOp: bestOff,
		OnNsPerOp:  bestOn,
		Speedup:    bestOff / bestOn,
	}, nil
}

// smoke gates CI: at workers=GOMAXPROCS the Figure-2 step must not run
// meaningfully slower than serial, and with two or more host cores the
// concurrent WINE-2/MDGRAPE-2 pipeline must beat the sequential step by the
// overlap margin. On a single-core host the pool collapses to the inline
// path and the engines cannot truly overlap, so both checks degenerate to
// "overhead is noise"; on multicore they catch a parallelization or overlap
// regression. The margins absorb scheduler jitter on loaded CI machines.
func smoke(iters, reps int) error {
	widths := []int{1, runtime.GOMAXPROCS(0)}
	if widths[1] == 1 {
		widths = widths[:1]
	}
	rep, err := run(widths, iters, reps, 0, 0)
	if err != nil {
		return err
	}
	const margin = 1.30
	for _, r := range rep.Results {
		if r.Name != "figure2Step" || r.Workers == 1 {
			continue
		}
		if r.Speedup < 1/margin {
			return fmt.Errorf("figure2Step at workers=%d is %.2fx serial speed (allowed ≥ %.2fx)",
				r.Workers, r.Speedup, 1/margin)
		}
		fmt.Printf("smoke: figure2Step workers=%d speedup %.2fx (gomaxprocs=%d)\n",
			r.Workers, r.Speedup, rep.GOMAXPROCS)
	}
	if rep.GOMAXPROCS >= 2 && rep.NumCPU >= 2 {
		// Overlap gate: pipeline-on vs pipeline-off at workers=1 — one host
		// core per simulated engine, the paper's two-device concurrency.
		// (At workers=GOMAXPROCS both configurations already saturate every
		// core with striped work, so overlap cannot show; the gate needs an
		// idle core for the second engine.) The fused sweep plus engine
		// overlap must be worth at least 1.25× when the engines can actually
		// run concurrently — two or more real cores; GOMAXPROCS≥2 on one
		// core merely timeshares them.
		const overlapMargin = 1.25
		for _, pr := range rep.Pipeline {
			if pr.Workers != 1 {
				continue
			}
			if pr.Speedup < overlapMargin {
				return fmt.Errorf("figure2Step pipeline at workers=%d is %.2fx the sequential step (required ≥ %.2fx)",
					pr.Workers, pr.Speedup, overlapMargin)
			}
			fmt.Printf("smoke: figure2Step pipeline workers=%d overlap speedup %.2fx\n", pr.Workers, pr.Speedup)
		}
	} else {
		// Pipeline must still not lose to sequential even without a second
		// core to overlap on.
		for _, pr := range rep.Pipeline {
			if pr.Speedup < 1/margin {
				return fmt.Errorf("figure2Step pipeline at workers=%d is %.2fx the sequential step (allowed ≥ %.2fx)",
					pr.Workers, pr.Speedup, 1/margin)
			}
		}
		fmt.Printf("smoke: num_cpu=%d gomaxprocs=%d, engines cannot truly overlap; pipeline overhead check only\n",
			rep.NumCPU, rep.GOMAXPROCS)
	}
	if len(rep.Results) > 0 && rep.GOMAXPROCS == 1 {
		fmt.Println("smoke: gomaxprocs=1, parallel widths collapse to the serial path; overhead check only")
	}
	return nil
}

// batchSmoke gates CI on the throughput mode's whole reason to exist: a
// batched K=16 run of the 216-ion system must deliver at least 1.8× the
// runs/sec of 16 sequential single-run simulations on the serial path (the
// design point is ≥ 2×; the margin absorbs loaded CI machines). Both arms are
// Workers=1, so the ratio measures amortization, not parallelism.
func batchSmoke(steps int) error {
	br, err := batchThroughput(16, steps)
	if err != nil {
		return err
	}
	fmt.Printf("batch smoke: K=%d steps=%d: %.2f runs/s batched vs %.2f sequential (%.2fx)\n",
		br.K, br.Steps, br.BatchedRunsPerSec, br.SequentialRunsPerSec, br.Speedup)
	const margin = 1.8
	if br.Speedup < margin {
		return fmt.Errorf("batched K=%d throughput is only %.2fx sequential (required ≥ %.1fx)", br.K, br.Speedup, margin)
	}
	return nil
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	iters := flag.Int("iters", 10, "operations per timing sample")
	reps := flag.Int("reps", 3, "timing samples per configuration (best is kept)")
	smokeMode := flag.Bool("smoke", false, "CI gate: check parallel is not slower than serial on the Figure-2 step")
	batchSmokeMode := flag.Bool("batch-smoke", false, "CI gate: batched K=16 must beat 16 sequential runs by ≥ 1.8x runs/sec")
	batchSteps := flag.Int("batch-steps", 25, "NVE steps per replica in the batchThroughput family (0 skips the family)")
	weakSmokeMode := flag.Bool("weak-smoke", false, "CI gate: the decomposition's reuse step must stream only ghost positions, and per-particle cost must stay flat at 8 ranks")
	weakSteps := flag.Int("weak-steps", 6, "timed steps per rung in the weak-scaling family (0 skips the family)")
	compareMode := flag.Bool("compare", false, "compare two recorded reports: mdmbench -compare OLD.json NEW.json")
	threshold := flag.Float64("threshold", 0.20, "ns/op growth beyond this fraction counts as a regression in -compare")
	flag.Parse()

	if *compareMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: mdmbench -compare OLD.json NEW.json")
			os.Exit(2)
		}
		regressions, err := compareReports(flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}

	if *smokeMode {
		if err := smoke(*iters, *reps); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *batchSmokeMode {
		if err := batchSmoke(15); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *weakSmokeMode {
		if err := weakSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	rep, err := run([]int{1, 2, 4, 8}, *iters, *reps, *batchSteps, *weakSteps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	//mdm:rawiook -- benchmark report: re-runnable output, not durable run state
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (gomaxprocs=%d)\n", *out, rep.GOMAXPROCS)
}
