package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeReport(t *testing.T, dir, name string, rep Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareReports(t *testing.T) {
	dir := t.TempDir()
	old := Report{
		GOMAXPROCS: 2, NumCPU: 2, N: 64,
		Results: []Result{
			{Name: "forces", Workers: 1, NsPerOp: 1000, AllocsPerOp: 10},
			{Name: "forces", Workers: 2, NsPerOp: 600, AllocsPerOp: 10},
			{Name: "dropped", Workers: 1, NsPerOp: 500},
		},
		Pipeline: []PipelineResult{{Workers: 2, OnNsPerOp: 800, Speedup: 1.5}},
	}
	newer := Report{
		GOMAXPROCS: 2, NumCPU: 2, N: 64,
		Results: []Result{
			{Name: "forces", Workers: 1, NsPerOp: 1050, AllocsPerOp: 10}, // +5%: within threshold
			{Name: "forces", Workers: 2, NsPerOp: 900, AllocsPerOp: 10},  // +50%: regression
			{Name: "fresh", Workers: 1, NsPerOp: 200},                    // new row, never a regression
		},
		Pipeline: []PipelineResult{{Workers: 2, OnNsPerOp: 820, Speedup: 1.45}},
	}
	a := writeReport(t, dir, "a.json", old)
	b := writeReport(t, dir, "b.json", newer)

	got, err := compareReports(a, b, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("compareReports = %d regressions, want 1 (forces/w2 +50%%)", got)
	}

	// Alloc growth is a regression on its own, even when ns/op holds steady —
	// but only against an old report that actually recorded allocs.
	newer.Results[0].AllocsPerOp = 14
	b2 := writeReport(t, dir, "b2.json", newer)
	if got, err = compareReports(a, b2, 0.20); err != nil || got != 2 {
		t.Fatalf("with alloc growth: got %d, %v; want 2 regressions", got, err)
	}
	old.Results[0].AllocsPerOp = 0 // pre-alloc-recording artifact
	a2 := writeReport(t, dir, "a2.json", old)
	if got, err = compareReports(a2, b2, 0.20); err != nil || got != 1 {
		t.Fatalf("against alloc-free old report: got %d, %v; want 1 regression", got, err)
	}
}

func TestCompareReportsClean(t *testing.T) {
	dir := t.TempDir()
	rep := Report{
		GOMAXPROCS: 2, NumCPU: 2, N: 64,
		Results:  []Result{{Name: "forces", Workers: 1, NsPerOp: 1000, AllocsPerOp: 10}},
		Pipeline: []PipelineResult{{Workers: 2, OnNsPerOp: 800, Speedup: 1.5}},
	}
	a := writeReport(t, dir, "a.json", rep)
	if got, err := compareReports(a, a, 0.20); err != nil || got != 0 {
		t.Fatalf("self-compare: got %d regressions, %v; want 0", got, err)
	}
}
