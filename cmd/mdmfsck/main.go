// Command mdmfsck inspects, verifies and repairs the durable artifacts of an
// mdm run — the checkpoint and the write-ahead journal (active segment plus
// rotated wal.NNNN segments) that ResumeFromJournal needs to rebuild a killed
// simulation:
//
//	go run ./cmd/mdmfsck -checkpoint run.ckpt -journal run.journal
//	go run ./cmd/mdmfsck -verify -checkpoint run.ckpt -journal run.journal
//	go run ./cmd/mdmfsck -repair -checkpoint run.ckpt -journal run.journal
//
// The default mode prints the recovery manager's inventory (store.Scan) as
// JSON: every artifact with its validation status, the newest consistent
// checkpoint + journal-tail pair, and the lists of torn, damaged and stale
// files. -repair applies the inventory's verdict the same way resume does —
// torn or interior-corrupt journal segments are truncated to their valid
// prefix with a full atomic replace, stale atomic-replace temps are removed —
// and prints the post-repair inventory. A damaged checkpoint is never
// touched: that state is unrecoverable and deleting it is a human's call.
//
// Exit status is 0 when the directory is healthy (with -repair: healthy
// after repair), 1 when anomalies exist that -repair could fix (or -verify
// found the directory unclean), and 2 when the state is unrecoverable — no
// checkpoint validates yet journal progress exists — or the scan itself
// fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mdm/internal/md"
	"mdm/internal/store"
	"mdm/internal/supervise"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// report is the JSON document mdmfsck emits: the scan inventory plus the
// tool's verdict and, after -repair, the paths it changed.
type report struct {
	*store.Inventory
	Healthy       bool     `json:"healthy"`
	Unrecoverable bool     `json:"unrecoverable"`
	Repaired      []string `json:"repaired,omitempty"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mdmfsck", flag.ExitOnError)
	ckpt := fs.String("checkpoint", "run.ckpt", "checkpoint path")
	journal := fs.String("journal", "run.journal", "journal path (active segment; rotated segments are derived)")
	verify := fs.Bool("verify", false, "verify only: exit 0 iff the run directory is clean")
	repair := fs.Bool("repair", false, "truncate torn journal tails and remove stale temps, then re-verify")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: mdmfsck [-verify|-repair] -checkpoint path -journal path\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *verify && *repair {
		fmt.Fprintln(stderr, "mdmfsck: -verify and -repair are mutually exclusive")
		return 2
	}

	fsys := store.OS()
	lay := store.Layout{Checkpoint: *ckpt, Journal: *journal}
	v := store.Validators{CheckpointStep: md.CheckpointStep, ScanSegment: supervise.ScanSegment}

	inv, err := store.Scan(fsys, lay, v)
	if err != nil {
		fmt.Fprintln(stderr, "mdmfsck:", err)
		return 2
	}
	rep := report{Inventory: inv}
	if *repair && !inv.Healthy() && !inv.Unrecoverable() {
		changed, err := store.Repair(fsys, inv)
		if err != nil {
			fmt.Fprintln(stderr, "mdmfsck: repair:", err)
			return 2
		}
		rep.Repaired = changed
		if inv, err = store.Scan(fsys, lay, v); err != nil {
			fmt.Fprintln(stderr, "mdmfsck:", err)
			return 2
		}
		rep.Inventory = inv
	}
	rep.Healthy = inv.Healthy()
	rep.Unrecoverable = inv.Unrecoverable()

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(stderr, "mdmfsck:", err)
		return 2
	}
	switch {
	case rep.Unrecoverable:
		return 2
	case !rep.Healthy:
		return 1
	}
	return 0
}
