package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mdm/internal/md"
	"mdm/internal/store"
	"mdm/internal/supervise"
)

// writeRun lays down a healthy run directory on the real filesystem: a
// checkpoint at step 2 and a journal carrying steps 3..5.
func writeRun(t *testing.T) (dir, ckpt, journal string) {
	t.Helper()
	dir = t.TempDir()
	ckpt = filepath.Join(dir, "run.ckpt")
	journal = filepath.Join(dir, "run.journal")
	s, err := md.NewRockSalt(2, 5.64)
	if err != nil {
		t.Fatal(err)
	}
	if err := md.WriteCheckpointFile(ckpt, s, 2); err != nil {
		t.Fatal(err)
	}
	j, err := supervise.CreateJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	for step := 3; step <= 5; step++ {
		if err := j.Append(supervise.Record{Step: step, Stage: "nvt"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, ckpt, journal
}

// fsck runs the tool against the run directory and decodes its JSON report.
func fsck(t *testing.T, mode, ckpt, journal string) (int, report) {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "fsck-out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	args := []string{"-checkpoint", ckpt, "-journal", journal}
	if mode != "" {
		args = append(args, mode)
	}
	code := run(args, out, os.Stderr)
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if len(data) > 0 {
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("report not valid JSON: %v\n%s", err, data)
		}
	}
	return code, rep
}

// A clean run directory verifies with exit 0 and reports the consistent
// resume pair.
func TestFsckHealthy(t *testing.T) {
	_, ckpt, journal := writeRun(t)
	code, rep := fsck(t, "-verify", ckpt, journal)
	if code != 0 {
		t.Fatalf("verify on healthy dir: exit %d", code)
	}
	if !rep.Healthy || rep.Unrecoverable {
		t.Fatalf("verdict: %+v", rep)
	}
	if rep.CheckpointStep != 2 || rep.ResumeStep != 5 {
		t.Fatalf("resume pair: ckpt=%d resume=%d", rep.CheckpointStep, rep.ResumeStep)
	}
}

// A torn journal tail fails -verify with exit 1, and -repair truncates it
// back to health: the surviving whole records still replay.
func TestFsckRepairTornTail(t *testing.T) {
	_, ckpt, journal := writeRun(t)
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journal, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	code, rep := fsck(t, "-verify", ckpt, journal)
	if code != 1 || rep.Healthy {
		t.Fatalf("verify on torn dir: exit %d, %+v", code, rep)
	}

	code, rep = fsck(t, "-repair", ckpt, journal)
	if code != 0 || !rep.Healthy {
		t.Fatalf("repair: exit %d, %+v", code, rep)
	}
	if len(rep.Repaired) != 1 || rep.Repaired[0] != journal {
		t.Fatalf("repaired: %v", rep.Repaired)
	}
	if rep.ResumeStep != 4 {
		t.Fatalf("resume after truncating torn step-5 record: %d", rep.ResumeStep)
	}
	recs, err := supervise.ReadJournalFile(journal)
	if err != nil {
		t.Fatalf("repaired journal unreadable: %v", err)
	}
	if len(recs) != 2 || recs[1].Step != 4 {
		t.Fatalf("repaired journal records: %+v", recs)
	}
}

// A stale atomic-replace temp is debris: exit 1 until -repair removes it.
func TestFsckRepairStaleTemp(t *testing.T) {
	_, ckpt, journal := writeRun(t)
	tmp := store.TempPath(ckpt)
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _ := fsck(t, "-verify", ckpt, journal)
	if code != 1 {
		t.Fatalf("verify with stale temp: exit %d", code)
	}
	code, rep := fsck(t, "-repair", ckpt, journal)
	if code != 0 || !rep.Healthy {
		t.Fatalf("repair: exit %d, %+v", code, rep)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived repair: %v", err)
	}
}

// A bit-flipped checkpoint with journal progress behind it is unrecoverable:
// exit 2, and -repair refuses to touch the checkpoint.
func TestFsckUnrecoverableCheckpoint(t *testing.T) {
	_, ckpt, journal := writeRun(t)
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	data[40] ^= 1
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, rep := fsck(t, "", ckpt, journal)
	if code != 2 || !rep.Unrecoverable {
		t.Fatalf("corrupt checkpoint: exit %d, %+v", code, rep)
	}
	code, rep = fsck(t, "-repair", ckpt, journal)
	if code != 2 || len(rep.Repaired) != 0 {
		t.Fatalf("repair must not touch a damaged checkpoint: exit %d, repaired %v", code, rep.Repaired)
	}
	after, err := os.ReadFile(ckpt)
	if err != nil || len(after) != len(data) {
		t.Fatalf("checkpoint modified by repair: %v", err)
	}
}

// A missing run directory is simply empty: nothing to verify, exit 0.
func TestFsckEmptyDir(t *testing.T) {
	dir := t.TempDir()
	code, rep := fsck(t, "-verify", filepath.Join(dir, "run.ckpt"), filepath.Join(dir, "run.journal"))
	if code != 0 || !rep.Healthy {
		t.Fatalf("empty dir: exit %d, %+v", code, rep)
	}
	if rep.ResumeStep != -1 {
		t.Fatalf("resume step in empty dir: %d", rep.ResumeStep)
	}
}
