// Top-level benchmark harness: one benchmark (or group) per table and figure
// of the paper, plus the ablation comparisons DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem .
//
// The tables themselves are printed by cmd/mdmtables and cmd/mdmfigure2; the
// benchmarks here time the code paths that regenerate them and the simulated
// machine against its float64 baseline.
package mdm_test

import (
	"math"
	"testing"

	"mdm"
	"mdm/internal/cellindex"
	"mdm/internal/core"
	"mdm/internal/ewald"
	"mdm/internal/host"
	"mdm/internal/md"
	"mdm/internal/parallelize"
	"mdm/internal/perf"
	"mdm/internal/pme"
	"mdm/internal/treecode"
	"mdm/internal/vec"
	"mdm/internal/wine2"
)

// BenchmarkTable1Inventory regenerates the Table 1 component list.
func BenchmarkTable1Inventory(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(host.Inventory()) != 8 {
			b.Fatal("inventory broken")
		}
	}
}

// BenchmarkTable4Model regenerates the full Table 4 accounting at the
// paper's N = 1.88e7, including the per-machine α optimization and the
// component timing model.
func BenchmarkTable4Model(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cols, err := mdm.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if math.Abs(cols[0].EffTflops-1.34) > 0.2 {
			b.Fatalf("effective speed drifted: %g", cols[0].EffTflops)
		}
	}
}

// BenchmarkTable5Model regenerates Table 5.
func BenchmarkTable5Model(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(mdm.Table5()) != 6 {
			b.Fatal("table 5 broken")
		}
	}
}

// BenchmarkFigure2Step times one full MD step (the unit of Figure 2's
// 3,000-step runs) on the simulated MDM at increasing system sizes, the
// scaled version of the paper's N sweep.
func BenchmarkFigure2Step(b *testing.B) {
	for _, cells := range []int{2, 3} {
		b.Run(sizeName(cells), func(b *testing.B) {
			sim, err := mdm.NewSimulation(mdm.Config{
				Cells:          cells,
				Temperature:    1200,
				Backend:        mdm.BackendMDM,
				PotentialEvery: 100,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = sim.Free() }()
			b.ReportAllocs()
			b.ResetTimer()
			if err := sim.RunNVE(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func sizeName(cells int) string {
	n := 8 * cells * cells * cells
	return "N=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkStepMDMvsReference is the machine-vs-baseline ablation: the same
// MD step evaluated by the simulated hardware and by the float64
// conventional path.
func BenchmarkStepMDMvsReference(b *testing.B) {
	for _, backend := range []mdm.Backend{mdm.BackendMDM, mdm.BackendReference} {
		b.Run(backend.String(), func(b *testing.B) {
			sim, err := mdm.NewSimulation(mdm.Config{
				Cells:          2,
				Temperature:    1200,
				Backend:        backend,
				PotentialEvery: 100,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = sim.Free() }()
			b.ReportAllocs()
			b.ResetTimer()
			if err := sim.RunNVE(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// benchSystem builds a 216-ion perturbed crystal shared by the backend
// micro-benchmarks.
func benchSystem(b *testing.B) (*md.System, ewald.Params) {
	b.Helper()
	sys, err := md.NewRockSalt(3, 5.64)
	if err != nil {
		b.Fatal(err)
	}
	for i := range sys.Pos {
		h := float64((i*2654435761)%1000)/1000.0 - 0.5
		sys.Pos[i] = sys.Pos[i].Add(vec.New(h, -h, h*0.5).Scale(0.4)).Wrap(sys.L)
	}
	alpha := ewald.SReal / 0.45
	p := ewald.ParamsForAlpha(sys.L, alpha)
	return sys, p
}

// BenchmarkWavenumberEngines compares the three wavenumber-space engines of
// §6.3 on identical input: the float64 direct sum (what a conventional CPU
// does), the WINE-2 fixed-point pipelines, and smooth particle-mesh Ewald.
func BenchmarkWavenumberEngines(b *testing.B) {
	sys, p := benchSystem(b)
	waves := ewald.Waves(p)

	b.Run("directFloat64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sn, cn := ewald.StructureFactors(waves, sys.Pos, sys.Charge)
			ewald.WavenumberForces(p, waves, sn, cn, sys.Pos, sys.Charge)
		}
	})
	b.Run("wine2Pipelines", func(b *testing.B) {
		w, err := wine2.NewSystem(wine2.CurrentConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sn, cn, err := w.DFT(sys.L, waves, sys.Pos, sys.Charge)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := w.IDFT(sys.L, waves, sn, cn, sys.Pos, sys.Charge); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pme", func(b *testing.B) {
		m, err := pme.ParamsFor(p, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Compute(sys.Pos, sys.Charge); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRealSpaceGeometries is the §2.2 accounting ablation: the same
// real-space pair sum walked with the 27-cell no-third-law method (MDGRAPE-2,
// N_int_g) and with the half-sphere Newton's-third-law method (conventional,
// N_int ≈ N_int_g/13).
func BenchmarkRealSpaceGeometries(b *testing.B) {
	sys, p := benchSystem(b)
	grid, err := cellindex.NewGrid(sys.L, p.RCut)
	if err != nil {
		b.Fatal(err)
	}
	sorted := cellindex.Sort(grid, sys.Pos)

	b.Run("cell27NoThirdLaw", func(b *testing.B) {
		b.ReportAllocs()
		count := 0
		for i := 0; i < b.N; i++ {
			sorted.ForEachOrderedPair(func(i, j int, rij vec.V) { count++ })
		}
		b.ReportMetric(float64(count)/float64(b.N)/float64(sys.N()), "pairs/particle")
	})
	b.Run("halfSphereThirdLaw", func(b *testing.B) {
		b.ReportAllocs()
		count := 0
		for i := 0; i < b.N; i++ {
			sorted.ForEachHalfPair(p.RCut, func(i, j int, rij vec.V) { count++ })
		}
		b.ReportMetric(float64(count)/float64(b.N)/float64(sys.N()), "pairs/particle")
	})
}

// BenchmarkTreeVsDirect is the §6.3 tree-code comparison on the
// open-boundary problem.
func BenchmarkTreeVsDirect(b *testing.B) {
	sys, _ := benchSystem(b)
	b.Run("barnesHut0.5", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr, err := treecode.Build(sys.Pos, sys.Charge, 0.5)
			if err != nil {
				b.Fatal(err)
			}
			tr.Forces()
		}
	})
	b.Run("directN2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			treecode.Direct(sys.Pos, sys.Charge)
		}
	})
}

// BenchmarkMachineForces times a full force evaluation (4 MDGRAPE-2 passes +
// WINE-2 DFT/IDFT + host bookkeeping) against the reference.
func BenchmarkMachineForces(b *testing.B) {
	sys, p := benchSystem(b)
	b.Run("machine", func(b *testing.B) {
		m, err := core.NewMachine(core.CurrentMachineConfig(p))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := m.Forces(sys); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		ref, err := core.NewReference(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := ref.Forces(sys); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelScaling is the intra-board parallelism table: the full
// machine force evaluation and the WINE-2 DFT/IDFT pair at pool widths 1, 2,
// 4, 8. Every width computes bit-identical results (see parallel_test.go);
// wall-clock scaling beyond width 1 needs GOMAXPROCS > 1 — on a single-core
// host all widths collapse to the serial path plus negligible pool overhead.
func BenchmarkParallelScaling(b *testing.B) {
	sys, p := benchSystem(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("machineForces/workers="+itoa(workers), func(b *testing.B) {
			cfg := core.CurrentMachineConfig(p)
			cfg.Workers = workers
			m, err := core.NewMachine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := m.Forces(sys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	waves := ewald.Waves(p)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("wine2DFTIDFT/workers="+itoa(workers), func(b *testing.B) {
			w, err := wine2.NewSystem(wine2.CurrentConfig())
			if err != nil {
				b.Fatal(err)
			}
			w.SetPool(parallelize.New(workers))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sn, cn, err := w.DFT(sys.L, waves, sys.Pos, sys.Charge)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := w.IDFT(sys.L, waves, sn, cn, sys.Pos, sys.Charge); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlphaOptimizer times the Table 4 α optimization (the closed-form
// balance of §2 / §5).
func BenchmarkAlphaOptimizer(b *testing.B) {
	b.ReportAllocs()
	density := float64(perf.PaperN) / (perf.PaperL * perf.PaperL * perf.PaperL)
	m := perf.CurrentMDM().CostModel()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = m.OptimalAlpha(perf.PaperL, density)
	}
	_ = sink
}
