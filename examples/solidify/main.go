// Solidify: the scientific target the paper's machine was built for. §1:
// "One of our target is to investigate the solid-liquid phase transition of
// ionic system with over million particles... In the previous work, we
// performed 1 ns of solidification simulations with 13,824 particles of
// NaCl, and obtained small size of polycrystals."
//
// This example runs the quench protocol at laptop scale: melt a small NaCl
// box well above the melting point, then quench it below, tracking the
// structural order (first RDF peak), the potential energy and the pressure.
// On cooling, the pair correlations sharpen and the potential drops — the
// onset of re-ordering the paper's full-scale runs resolve into polycrystal
// grains. It also writes an XYZ trajectory for visualization.
package main

import (
	"fmt"
	"log"
	"os"

	"mdm"
	"mdm/internal/analysis"
	"mdm/internal/md"
)

func main() {
	sim, err := mdm.NewSimulation(mdm.Config{
		Cells:       2,
		Temperature: 2500, // well molten
		Dt:          2,
		Backend:     mdm.BackendReference,
		Seed:        11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = sim.Free() }()

	//mdm:rawiook -- trajectory dump: re-runnable output, not durable run state
	traj, err := os.Create("solidify.xyz")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := traj.Close(); err != nil {
			log.Fatal(err)
		}
	}()

	stage := func(name string, tK float64, steps int) {
		sim.Integrator.Target = tK
		sim.Integrator.Mode = md.NVT
		if err := sim.Integrator.Run(steps, nil); err != nil {
			log.Fatal(err)
		}
		rdf, err := analysis.NewRDF(sim.System.L, sim.System.L/2*0.99, 60)
		if err != nil {
			log.Fatal(err)
		}
		// Sample a few configurations for the RDF.
		for k := 0; k < 8; k++ {
			if err := sim.Integrator.Run(5, nil); err != nil {
				log.Fatal(err)
			}
			rdf.AddFrame(sim.System.Pos, sim.System.Pos)
		}
		rs, g := rdf.Curve()
		peakR, peakH := analysis.FirstPeak(rs, g, 1.5)
		press, err := sim.Pressure()
		if err != nil {
			log.Fatal(err)
		}
		if err := md.WriteXYZ(traj, sim.System, fmt.Sprintf("stage=%s T=%.0fK", name, tK)); err != nil {
			log.Fatal(err)
		}
		rec := sim.Integrator
		fmt.Printf("%-8s T=%6.0f K  PE=%9.2f eV  P=%+7.2f GPa  g(r) peak %.2f Å height %.2f\n",
			name, sim.System.Temperature(), rec.Potential(), press, peakR, peakH)
	}

	fmt.Printf("quench protocol, %d ions (paper: 13,824 ions over 1 ns in [14])\n\n", sim.N())
	stage("melt", 2500, 150)
	stage("cool-1", 1500, 100)
	stage("cool-2", 900, 100)
	stage("quench", 300, 200)

	fmt.Println("\ntrajectory written to solidify.xyz (4 frames)")
	fmt.Println("expected trend: potential energy drops and the first RDF peak")
	fmt.Println("sharpens as the melt re-orders — the phase transition the MDM")
	fmt.Println("was built to study at the million-particle scale.")
}
