// Methods: the §6.3 comparison — "One of the purpose of our hardware is to
// investigate the accuracy and speed of the Ewald summation compared with
// other fast methods." This example evaluates the Coulomb problem four ways
// on the same configuration and reports accuracy and operation counts:
//
//  1. direct Ewald summation in float64 (the reference — what MDM computes),
//  2. the WINE-2 fixed-point pipelines (hardware accuracy ~1e-4.5),
//  3. smooth particle-mesh Ewald (the O(N log N) mesh method, ref. [4]),
//  4. Barnes–Hut tree code on the open-boundary problem (refs. [2], [18]).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"mdm/internal/ewald"
	"mdm/internal/pme"
	"mdm/internal/treecode"
	"mdm/internal/vec"
	"mdm/internal/wine2"
)

const (
	n     = 512
	l     = 20.0
	alpha = 8.0
)

func main() {
	rng := rand.New(rand.NewSource(9))
	pos := make([]vec.V, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		q[i] = float64(1 - 2*(i%2))
	}
	p := ewald.Params{L: l, Alpha: alpha, RCut: 0.45 * l, LKCut: alpha * ewald.SWave / math.Pi}
	waves := ewald.Waves(p)

	// 1. Reference: direct structure-factor sums.
	t0 := time.Now()
	sn, cn := ewald.StructureFactors(waves, pos, q)
	ref := ewald.WavenumberForces(p, waves, sn, cn, pos, q)
	tRef := time.Since(t0)
	fscale := vec.RMS(ref)
	fmt.Printf("N = %d, %d wavevectors, reference RMS F(wn) = %.4f eV/Å\n\n", n, len(waves), fscale)
	fmt.Printf("%-28s %12s %12s %s\n", "method", "worst err", "rms err", "time")
	fmt.Printf("%-28s %12s %12s %v\n", "direct Ewald (float64)", "-", "-", tRef)

	// 2. WINE-2 pipelines.
	wsys, err := wine2.NewSystem(wine2.CurrentConfig())
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	hs, hc, err := wsys.DFT(l, waves, pos, q)
	if err != nil {
		log.Fatal(err)
	}
	hw, err := wsys.IDFT(l, waves, hs, hc, pos, q)
	if err != nil {
		log.Fatal(err)
	}
	report("WINE-2 (fixed point)", hw, ref, fscale, time.Since(t0))

	// 3. Smooth particle-mesh Ewald.
	mesh, err := pme.ParamsFor(p, 4)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	res, err := mesh.Compute(pos, q)
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("PME (K=%d, order 4)", mesh.K), res.Forces, ref, fscale, time.Since(t0))

	// 4. Tree code on the open-boundary problem (different physics: no
	// periodic images), compared against the exact open-boundary sum.
	fmt.Println("\nopen-boundary Coulomb (tree code vs direct O(N²)):")
	t0 = time.Now()
	direct := treecode.Direct(pos, q)
	tDirect := time.Since(t0)
	dscale := vec.RMS(direct)
	for _, theta := range []float64{0.8, 0.4} {
		tr, err := treecode.Build(pos, q, theta)
		if err != nil {
			log.Fatal(err)
		}
		t0 = time.Now()
		f := tr.Forces()
		report(fmt.Sprintf("Barnes-Hut θ=%.1f", theta), f, direct, dscale, time.Since(t0))
		fmt.Printf("%-28s %d node + %d leaf interactions (direct: %d pairs in %v)\n",
			"", tr.NodeInteractions, tr.LeafInteractions, n*(n-1), tDirect)
	}
}

func report(name string, got, want []vec.V, scale float64, dt time.Duration) {
	worst, rms := 0.0, 0.0
	for i := range got {
		d := got[i].Sub(want[i]).Norm() / scale
		if d > worst {
			worst = d
		}
		rms += d * d
	}
	rms = math.Sqrt(rms / float64(len(got)))
	fmt.Printf("%-28s %12.2e %12.2e %v\n", name, worst, rms, dt)
}
