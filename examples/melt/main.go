// Melt: the molten-salt study behind Figure 2 — heat a NaCl crystal to
// 1200 K, watch it lose crystalline order (via the radial distribution
// function), and compare the temperature fluctuation across system sizes.
//
// This is the workload of the paper's §5 at laptop scale: the physics claims
// it demonstrates (RDF broadening on melting, σ_T ∝ N^(-1/2)) are
// size-independent.
package main

import (
	"fmt"
	"log"

	"mdm"
	"mdm/internal/analysis"
)

func main() {
	fmt.Println("== molten NaCl (scaled-down §5 run) ==")

	// A crystal at low temperature vs the same box driven to the melt.
	for _, tK := range []float64{300, 1800} {
		sim, err := mdm.NewSimulation(mdm.Config{
			Cells:       2,
			Temperature: tK,
			Backend:     mdm.BackendReference, // float64 path: fastest for the demo
			Seed:        7,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.RunNVT(150); err != nil {
			log.Fatal(err)
		}
		// RDF and mean-squared displacement over the last configurations.
		rdf, err := analysis.NewRDF(sim.System.L, sim.System.L/2*0.99, 60)
		if err != nil {
			log.Fatal(err)
		}
		msd := analysis.NewMSD(sim.System.L, sim.System.Pos)
		var times, msds []float64
		for k := 0; k < 10; k++ {
			if err := sim.RunNVT(5); err != nil {
				log.Fatal(err)
			}
			rdf.AddFrame(sim.System.Pos, sim.System.Pos)
			times = append(times, float64(5*(k+1))*2) // fs
			msds = append(msds, msd.Update(sim.System.Pos))
		}
		rs, g := rdf.Curve()
		pos, height := analysis.FirstPeak(rs, g, 1.5)
		d, _, err := analysis.DiffusionCoefficient(times, msds)
		if err != nil {
			log.Fatal(err)
		}
		// Å²/fs → cm²/s: ×1e-16 cm²/Å² ÷ 1e-15 s/fs = ×0.1.
		fmt.Printf("T = %4.0f K: first g(r) peak at %.2f Å, height %.2f, D ≈ %.1e cm²/s",
			tK, pos, height, d*0.1)
		if height > 2.5 {
			fmt.Println("  (sharp: solid-like order)")
		} else {
			fmt.Println("  (broad: liquid-like)")
		}
		_ = sim.Free()
	}

	// Figure 2: fluctuations shrink with N.
	fmt.Println("\n== temperature fluctuation vs N (Figure 2) ==")
	_, pts, err := mdm.RunFigure2(mdm.Figure2Config{
		CellsList: []int{2, 3},
		NVTSteps:  60,
		NVESteps:  80,
		Backend:   mdm.BackendReference,
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("N = %4d: sigma_T/<T> = %.4f\n", p.N, p.RelFluc)
	}
	if c, p, err := analysis.FitInverseSqrt(pts); err != nil {
		log.Printf("fit failed: %v", err)
	} else {
		fmt.Printf("fit: sigma_T/<T> = %.3f * N^%.2f (expect exponent ≈ -0.5)\n", c, p)
	}
}
