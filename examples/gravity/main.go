// Gravity: §6.4 of the paper notes that "MDM can be used for other
// applications, such as cosmological simulation" — the MDGRAPE-2 pipeline
// computes an *arbitrary* central force f⃗ = b·g(a r²)·r⃗ from its
// coefficient RAM, so a 1/r² attraction is just another table.
//
// This example loads the Plummer-softened gravitational kernel
// g(x) = (x + ε²)^(-3/2) into the simulated MDGRAPE-2 and integrates a small
// self-gravitating cluster, GRAPE style: pipeline forces, host integration.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"mdm/internal/cellindex"
	"mdm/internal/mdgrape2"
	"mdm/internal/vec"
)

const (
	nBodies = 256
	boxSide = 100.0 // the cell grid wants a box; make it big enough that
	// the cluster never feels the periodic images
	soft  = 0.05 // Plummer softening
	dt    = 1e-3
	steps = 400
)

func main() {
	// The pipelines evaluate g(x) = (x + ε²)^(-3/2); with a_ij = 1 and
	// b_ij = -m_j (attraction) the force on i is -Σ m_j r⃗_ij/(r²+ε²)^(3/2).
	sys, err := mdgrape2.NewSystem(mdgrape2.CurrentConfig())
	if err != nil {
		log.Fatal(err)
	}
	g := func(x float64) float64 { return math.Pow(x+soft*soft, -1.5) }
	if err := sys.LoadTable("plummer", g, -20, 12); err != nil {
		log.Fatal(err)
	}
	co, err := mdgrape2.NewCoeffs(1, 1, -1) // unit masses, attractive
	if err != nil {
		log.Fatal(err)
	}

	// Cold-ish Plummer-like sphere at the box center.
	rng := rand.New(rand.NewSource(42))
	pos := make([]vec.V, nBodies)
	vel := make([]vec.V, nBodies)
	types := make([]int, nBodies)
	center := vec.New(boxSide/2, boxSide/2, boxSide/2)
	for i := range pos {
		for {
			p := vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(1.0)
			if p.Norm() < 4 {
				pos[i] = center.Add(p)
				break
			}
		}
		// Velocity dispersion chosen near virial equilibrium for this
		// cluster (σ ≈ 5 per component gives 2·KE ≈ |PE|).
		vel[i] = vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(5.0)
	}

	// One big cell: every body interacts with every body, like a GRAPE run.
	grid, err := cellindex.NewGrid(boxSide, boxSide)
	if err != nil {
		log.Fatal(err)
	}

	energy := func() (ke, pe float64) {
		for i := range vel {
			ke += 0.5 * vel[i].Norm2()
		}
		for i := 0; i < nBodies; i++ {
			for j := i + 1; j < nBodies; j++ {
				r := pos[i].Sub(pos[j]).Norm()
				pe -= 1 / math.Sqrt(r*r+soft*soft)
			}
		}
		return ke, pe
	}

	forcesAt := func() []vec.V {
		js, err := mdgrape2.NewJSet(grid, pos, types)
		if err != nil {
			log.Fatal(err)
		}
		f, err := sys.ComputeForces("plummer", co, pos, types, nil, js)
		if err != nil {
			log.Fatal(err)
		}
		return f
	}

	f := forcesAt()
	ke0, pe0 := energy()
	fmt.Printf("GRAPE-style N-body on the MDGRAPE-2 simulator: %d bodies\n", nBodies)
	fmt.Printf("initial: KE %.3f  PE %.3f  E %.3f  virial -2KE/PE %.2f\n", ke0, pe0, ke0+pe0, -2*ke0/pe0)

	// Leapfrog.
	for s := 0; s < steps; s++ {
		for i := range pos {
			vel[i] = vel[i].Add(f[i].Scale(dt / 2))
			pos[i] = pos[i].Add(vel[i].Scale(dt))
		}
		f = forcesAt()
		for i := range pos {
			vel[i] = vel[i].Add(f[i].Scale(dt / 2))
		}
	}
	ke1, pe1 := energy()
	fmt.Printf("after %d steps: KE %.3f  PE %.3f  E %.3f\n", steps, ke1, pe1, ke1+pe1)
	fmt.Printf("energy drift: %.2e relative\n", math.Abs((ke1+pe1)-(ke0+pe0))/math.Abs(ke0+pe0))
	st := sys.Stats()
	fmt.Printf("pipeline work: %d pair evaluations in %d calls (%.1f µs at the real chip's rate)\n",
		st.PairsEvaluated, st.Calls, sys.ComputeTime(st.PairsEvaluated)*1e6)
}
