// SPH: §6.4 of the paper — "MDM can be used for other applications, such as
// cosmological simulation, Smoothed Particle Hydrodynamics (SPH), and vortex
// dynamics simulation."
//
// This example runs an isothermal SPH gas entirely through the simulated
// MDGRAPE-2 pipelines: densities via the potential mode (kernel table +
// per-particle mass in the charge field) and symmetric pressure forces via
// two force passes. A dense central blob relaxes toward uniform density
// while total momentum stays at round-off.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mdm/internal/analysis"
	"mdm/internal/mdgrape2"
	"mdm/internal/sph"
	"mdm/internal/vec"
)

const (
	l     = 14.0
	h     = 1.1
	nBlob = 220
	nBack = 180
	dt    = 0.02
)

func main() {
	rng := rand.New(rand.NewSource(3))
	var pos []vec.V
	var mass []float64
	// Dense Gaussian blob in the middle…
	center := vec.New(l/2, l/2, l/2)
	for i := 0; i < nBlob; i++ {
		p := vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(1.2)
		pos = append(pos, center.Add(p).Wrap(l))
		mass = append(mass, 1)
	}
	// …in a sparse uniform background.
	for i := 0; i < nBack; i++ {
		pos = append(pos, vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l))
		mass = append(mass, 1)
	}

	fluid, err := sph.NewFluid(mdgrape2.CurrentConfig(), l, h, 1.0, pos, mass)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("SPH on the MDGRAPE-2 simulator: %d particles, h = %.1f, isothermal c = 1\n\n", fluid.N(), h)
	fmt.Printf("%6s %12s %12s %14s\n", "step", "peak rho", "mean rho", "|momentum|")
	report := func(step int, rho []float64) {
		peak := 0.0
		for _, r := range rho {
			if r > peak {
				peak = r
			}
		}
		fmt.Printf("%6d %12.4f %12.4f %14.2e\n", step, peak, analysis.Mean(rho), fluid.Momentum().Norm())
	}
	rho, err := fluid.Densities()
	if err != nil {
		log.Fatal(err)
	}
	report(0, rho)
	for batch := 1; batch <= 5; batch++ {
		var last []float64
		for s := 0; s < 12; s++ {
			last, err = fluid.Step(dt)
			if err != nil {
				log.Fatal(err)
			}
		}
		report(batch*12, last)
	}
	st := fluid.Stats()
	fmt.Printf("\npipeline work: %d pair evaluations in %d passes", st.PairsEvaluated, st.Calls)
	fmt.Printf(" (%.1f ms at the real 64-chip machine's rate)\n",
		float64(st.PairsEvaluated)/(256*100e6)*1e3)
	fmt.Println("expected: the blob's peak density relaxes toward the mean while")
	fmt.Println("momentum stays at round-off — pressure-driven expansion computed")
	fmt.Println("entirely by the special-purpose pipelines, as §6.4 envisioned.")
}
