// Quickstart: run a small molten-NaCl simulation on the simulated MDM and
// print the observables — the ten-line version of the paper's §5 protocol.
package main

import (
	"fmt"
	"log"

	"mdm"
)

func main() {
	// 64 NaCl ions at 1200 K (the paper's melt temperature), forces
	// evaluated by the simulated WINE-2 + MDGRAPE-2 machine.
	sim, err := mdm.NewSimulation(mdm.Config{
		Cells:       2,
		Temperature: 1200,
		Backend:     mdm.BackendMDM,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = sim.Free() }()

	// NVT equilibration by velocity scaling, then an NVE segment, exactly
	// like the paper's 2,000 + 1,000 step run (scaled down).
	if err := sim.RunNVT(50); err != nil {
		log.Fatal(err)
	}
	if err := sim.RunNVE(50); err != nil {
		log.Fatal(err)
	}

	p := sim.Params()
	fmt.Printf("N = %d ions, box %.2f Å, Ewald alpha %.2f (r_cut %.2f Å, %0.f waves)\n",
		sim.N(), p.L, p.Alpha, p.RCut, p.NWv())
	mean, std := sim.TemperatureStats()
	fmt.Printf("temperature: %.0f ± %.0f K\n", mean, std)
	fmt.Printf("NVE energy drift: %.2e relative (paper: <5e-7 at N=1.9e7)\n", sim.EnergyDrift())

	last := sim.Records()[len(sim.Records())-1]
	fmt.Printf("final state: t = %.3f ps, E = %.3f eV\n", last.Time, last.E)
}
