package mdm

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"mdm/internal/md"
	"mdm/internal/vec"
)

// Golden 50-step NVE trajectory hashes captured from the seed AoS
// implementation (pre-SoA), pinning the machine backend's numbers across the
// structure-of-arrays refactor and every bit-identity knob: worker width,
// pipeline overlap, and — per skin value, since a Verlet skin selects its own
// discretization — the j-set reuse path. Config: Cells/Temperature=1200/
// Seed=1/Dt=2/BackendMDM/PotentialEvery=100, RunNVE(50).
//
// If one of these ever changes, the step path's arithmetic changed: that is a
// physics regression (or an intentional discretization change that must
// re-capture the goldens and say so in the commit).
var goldenNVE = []struct {
	cells int
	skin  float64
	init  string // hash of all positions before the run
	final string // hash of positions then velocities after 50 NVE steps
}{
	{cells: 2, skin: 0, init: "b10ea6a48da85105", final: "21b4654a55f7805a"},
	{cells: 2, skin: 0.5, init: "b10ea6a48da85105", final: "56b71747254744ae"},
	{cells: 3, skin: 0, init: "faf5142d2a2f554d", final: "cf600f310cdd6446"},
	{cells: 3, skin: 0.5, init: "faf5142d2a2f554d", final: "be381edb9b4c29f2"},
}

// hashVecs folds vectors into an FNV-64a running hash, little-endian float64
// bits — stable across architectures for identical values.
func hashVecs(h interface{ Write([]byte) (int, error) }, vs []vec.V) {
	var buf [8]byte
	w := func(f float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	for _, v := range vs {
		w(v.X)
		w(v.Y)
		w(v.Z)
	}
}

func hashPos(s *md.System) string {
	h := fnv.New64a()
	hashVecs(h, s.Pos)
	return fmt.Sprintf("%016x", h.Sum64())
}

func hashState(s *md.System) string {
	h := fnv.New64a()
	hashVecs(h, s.Pos)
	hashVecs(h, s.Vel)
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestGoldenNVEBitIdentity drives every bit-identity axis of the machine
// backend — SoA hot path vs the captured AoS goldens, worker widths 1/2/4/8,
// pipeline on/off — at two system sizes and two skins, and demands the exact
// seed trajectory hash from each. The width and pipeline axes are contracts
// (same discretization, same bits); the skin axis has one golden per value.
func TestGoldenNVEBitIdentity(t *testing.T) {
	widths := []int{1, 2, 4, 8}
	if testing.Short() {
		widths = []int{1, 4}
	}
	for _, g := range goldenNVE {
		for _, workers := range widths {
			for _, pipeline := range []bool{false, true} {
				name := fmt.Sprintf("cells=%d/skin=%g/workers=%d/pipeline=%v", g.cells, g.skin, workers, pipeline)
				t.Run(name, func(t *testing.T) {
					if testing.Short() && g.cells == 3 && workers != 1 {
						t.Skip("short mode: cells=3 width sweep skipped")
					}
					sim, err := NewSimulation(Config{
						Cells:          g.cells,
						Temperature:    1200,
						Backend:        BackendMDM,
						PotentialEvery: 100,
						Workers:        workers,
						Pipeline:       pipeline,
						Skin:           g.skin,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer func() { _ = sim.Free() }()
					if got := hashPos(sim.System); got != g.init {
						t.Fatalf("initial positions hash %s, golden %s", got, g.init)
					}
					if err := sim.RunNVE(50); err != nil {
						t.Fatal(err)
					}
					if got := hashState(sim.System); got != g.final {
						t.Fatalf("50-step NVE state hash %s, golden %s", got, g.final)
					}
				})
			}
		}
	}
}

// TestGoldenNVEBatchSlot runs the golden configuration as slot 0 of a batch:
// the shared-machine driver must reproduce the solo golden hash exactly (the
// other slot exists to perturb the shared scratch between slot-0 steps).
func TestGoldenNVEBatchSlot(t *testing.T) {
	g := goldenNVE[0]
	res, err := RunBatch(Config{
		Cells:          g.cells,
		Temperature:    1200,
		Backend:        BackendMDM,
		PotentialEvery: 100,
		Workers:        1,
		Skin:           g.skin,
	}, 2, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got := hashState(res[0].System); got != g.final {
		t.Fatalf("batch slot 0 NVE state hash %s, golden %s", got, g.final)
	}
}
