package mdm

import (
	"fmt"
	"testing"

	"mdm/internal/fault"
	"mdm/internal/store"
	"mdm/internal/vec"
)

// The crash matrix: kill the run at EVERY storage operation it performs —
// each journal-record write, each fsync (the post-write-pre-sync window),
// each atomic-replace rename (checkpoint commit, journal creation, segment
// rotation) and each file creation — then recover and finish. Whatever the
// kill point, the finished trajectory must be bit-identical to a run that
// was never interrupted. This is the end-to-end proof of the storage
// layer's durability contract; the per-operation semantics are unit-tested
// in internal/store and internal/supervise.

// The matrix protocol: 5 NVT + 3 NVE steps with a checkpoint commit (and the
// journal rotation + compaction that ride on it) after step 3.
const (
	cmCkptStep = 3
	cmNVTSteps = 5
	cmNVESteps = 3
	cmLastStep = cmNVTSteps + cmNVESteps
	cmCkptPath = "run.ckpt"
	cmWALPath  = "run.wal"
)

func cmConfig(fsys store.FS) Config {
	cfg := Config{
		Cells:     2,
		Backend:   BackendReference,
		Supervise: SuperviseConfig{Journal: cmWALPath},
	}
	cfg.fsys = fsys
	return cfg
}

// cmRunProtocol drives the matrix protocol from the start, returning the
// first storage failure (the injected kill) unswallowed.
func cmRunProtocol(sim *Simulation) error {
	if err := sim.RunNVT(cmCkptStep); err != nil {
		return err
	}
	if err := sim.WriteCheckpoint(cmCkptPath); err != nil {
		return err
	}
	if err := sim.RunNVT(cmNVTSteps - cmCkptStep); err != nil {
		return err
	}
	return sim.RunNVE(cmNVESteps)
}

// cmFinish completes the protocol from wherever a resume landed.
func cmFinish(sim *Simulation) error {
	step := sim.Integrator.StepCount()
	if step < cmNVTSteps {
		if err := sim.RunNVT(cmNVTSteps - step); err != nil {
			return err
		}
		step = cmNVTSteps
	}
	return sim.RunNVE(cmLastStep - step)
}

// countHook tallies storage operations per class — the probe that sizes the
// matrix. The reference run doubles as the census.
type countHook struct {
	ops map[string]int64
}

func (h *countHook) StoreOp(class string) fault.StoreFate {
	h.ops[class]++
	return fault.StoreFate{}
}

// cmReference runs the protocol uninterrupted on a fault filesystem,
// returning the final state and the per-class operation counts.
func cmReference(t *testing.T) (pos, vel []vec.V, ops map[string]int64) {
	t.Helper()
	hook := &countHook{ops: make(map[string]int64)}
	fs := store.NewFaultFS(hook)
	sim, err := NewSimulation(cmConfig(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sim.Free() }()
	if err := cmRunProtocol(sim); err != nil {
		t.Fatal(err)
	}
	if sim.Integrator.StepCount() != cmLastStep {
		t.Fatalf("reference stopped at step %d", sim.Integrator.StepCount())
	}
	pos = append([]vec.V(nil), sim.System.Pos...)
	vel = append([]vec.V(nil), sim.System.Vel...)
	return pos, vel, hook.ops
}

// cmRecover reboots the crashed filesystem, recovers — resume from the
// newest consistent checkpoint + journal-tail pair, or start over when the
// kill predates any durable checkpoint — and finishes the protocol,
// returning the final simulation.
func cmRecover(t *testing.T, fs *store.FaultFS, cfg Config) *Simulation {
	t.Helper()
	fs.Reboot(nil)
	if sim, err := ResumeFromJournal(cfg, cmCkptPath); err == nil {
		// The resume repaired the crash debris; the directory it leaves
		// behind must pass the same scan mdmfsck -verify runs.
		lay := store.Layout{Checkpoint: cmCkptPath, Journal: cmWALPath}
		inv, serr := store.Scan(fs, lay, storeValidators())
		if serr != nil || !inv.Healthy() {
			t.Fatalf("post-resume scan not healthy: %v\n%+v", serr, inv)
		}
		step := sim.Integrator.StepCount()
		if step < cmCkptStep || step > cmLastStep-1 {
			t.Fatalf("resumed at implausible step %d", step)
		}
		if err := cmFinish(sim); err != nil {
			t.Fatalf("finish after resume at step %d: %v", step, err)
		}
		return sim
	}
	// No durable checkpoint to build on: the run starts over. NewSimulation
	// retires the debris (stale segments, old active journal) itself.
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatalf("fresh start after kill: %v", err)
	}
	if err := cmRunProtocol(sim); err != nil {
		t.Fatalf("fresh run after kill: %v", err)
	}
	return sim
}

// cmAssertIdentical compares the recovered trajectory to the reference, bit
// for bit.
func cmAssertIdentical(t *testing.T, sim *Simulation, pos, vel []vec.V) {
	t.Helper()
	if got := sim.Integrator.StepCount(); got != cmLastStep {
		t.Fatalf("finished at step %d, want %d", got, cmLastStep)
	}
	for i := range pos {
		if sim.System.Pos[i] != pos[i] || sim.System.Vel[i] != vel[i] {
			t.Fatalf("ion %d diverges after kill-recover:\n  pos %v vs %v\n  vel %v vs %v",
				i, sim.System.Pos[i], pos[i], sim.System.Vel[i], vel[i])
		}
	}
}

func TestCrashMatrix(t *testing.T) {
	pos, vel, ops := cmReference(t)

	// The census must see every operation class the matrix enumerates —
	// otherwise the matrix is silently shrinking.
	for _, class := range []string{"create", "write", "sync", "rename"} {
		if ops[class] == 0 {
			t.Fatalf("reference run performed no %q operations; census %v", class, ops)
		}
	}

	var scenarios []string
	for _, class := range []string{"create", "write", "sync", "rename"} {
		for n := int64(1); n <= ops[class]; n++ {
			scenarios = append(scenarios, fmt.Sprintf("store:crash@%s=%d", class, n))
		}
	}
	// Torn variants: the kill lands mid-record, leaving 0 or 9 bytes of the
	// in-flight buffer on disk.
	for n := int64(1); n <= ops["write"]; n++ {
		scenarios = append(scenarios,
			fmt.Sprintf("store:torn-write@write=%d,bytes=0", n),
			fmt.Sprintf("store:torn-write@write=%d,bytes=9", n))
	}
	// Crash squarely before each rename: the atomic-replace commit point.
	for n := int64(1); n <= ops["rename"]; n++ {
		scenarios = append(scenarios, fmt.Sprintf("store:crash-before-rename@rename=%d", n))
	}

	for _, scenario := range scenarios {
		t.Run(scenario, func(t *testing.T) {
			in, err := fault.ParseInjector(scenario)
			if err != nil {
				t.Fatal(err)
			}
			fs := store.NewFaultFS(in)
			cfg := cmConfig(fs)
			victim, err := NewSimulation(cfg)
			if err == nil {
				err = cmRunProtocol(victim)
				_ = victim.Free() // kill: the latched fs fails the close too
			}
			if err == nil {
				t.Fatalf("scenario %s never fired", scenario)
			}
			if !fs.Crashed() {
				t.Fatalf("victim failed without crashing: %v", err)
			}
			recovered := cmRecover(t, fs, cfg)
			defer func() { _ = recovered.Free() }()
			cmAssertIdentical(t, recovered, pos, vel)
		})
	}
}

// One matrix lane through the MDM backend: the journaled fixed-point
// pipeline recovers bit-identically too (the full matrix runs on the
// reference backend for speed; the storage layer under test is identical).
func TestCrashMatrixMDMBackend(t *testing.T) {
	hook := &countHook{ops: make(map[string]int64)}
	fs := store.NewFaultFS(hook)
	cfg := cmConfig(fs)
	cfg.Backend = BackendMDM
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cmRunProtocol(sim); err != nil {
		t.Fatal(err)
	}
	pos := append([]vec.V(nil), sim.System.Pos...)
	vel := append([]vec.V(nil), sim.System.Vel...)
	if err := sim.Free(); err != nil {
		t.Fatal(err)
	}

	// Kill at a journal append past the checkpoint; resume must replay.
	writes := hook.ops["write"]
	scenario := fmt.Sprintf("store:crash@write=%d", writes-1)
	in, err := fault.ParseInjector(scenario)
	if err != nil {
		t.Fatal(err)
	}
	fs = store.NewFaultFS(in)
	cfg = cmConfig(fs)
	cfg.Backend = BackendMDM
	victim, err := NewSimulation(cfg)
	if err == nil {
		err = cmRunProtocol(victim)
		_ = victim.Free()
	}
	if err == nil {
		t.Fatalf("scenario %s never fired", scenario)
	}
	recovered := cmRecover(t, fs, cfg)
	defer func() { _ = recovered.Free() }()
	cmAssertIdentical(t, recovered, pos, vel)
}
