package mdm

import (
	"math"
	"testing"
)

// The concurrent WINE-2/MDGRAPE-2 pipeline and the Verlet skin are opt-in
// Config knobs on the public API. The pipeline reorders nothing — every
// engine keeps its own accumulators and the join applies them in the fixed
// serial order — so a protocol run must be byte-identical with the pipeline
// on and off at any pool width.

func runProtocolPipeline(t *testing.T, pipeline bool, workers int, skin float64) *Simulation {
	t.Helper()
	sim, err := NewSimulation(Config{
		Cells:    2,
		Backend:  BackendMDM,
		Workers:  workers,
		Pipeline: pipeline,
		Skin:     skin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunNVT(5); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunNVE(25); err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestPipelineConfigBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine protocol comparison in -short mode")
	}
	serial := runProtocolPipeline(t, false, 1, 0)
	defer func() { _ = serial.Free() }()
	for _, w := range []int{1, 4} {
		piped := runProtocolPipeline(t, true, w, 0)
		for i := range serial.System.Pos {
			a, b := serial.System.Pos[i], piped.System.Pos[i]
			if math.Float64bits(a.X) != math.Float64bits(b.X) ||
				math.Float64bits(a.Y) != math.Float64bits(b.Y) ||
				math.Float64bits(a.Z) != math.Float64bits(b.Z) {
				t.Fatalf("pipeline workers=%d: position %d differs after 25-step NVE: %v vs %v", w, i, b, a)
			}
		}
		sa, pa := serial.Records(), piped.Records()
		if len(sa) != len(pa) {
			t.Fatalf("pipeline workers=%d: %d records vs %d", w, len(pa), len(sa))
		}
		for k := range sa {
			if math.Float64bits(sa[k].E) != math.Float64bits(pa[k].E) ||
				math.Float64bits(sa[k].PE) != math.Float64bits(pa[k].PE) {
				t.Fatalf("pipeline workers=%d: record %d energies differ: %+v vs %+v", w, k, pa[k], sa[k])
			}
		}
		_ = piped.Free()
	}
}

func TestPipelineSkinConservesEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine protocol run in -short mode")
	}
	// A positive skin is a different (widened-cutoff) discretization, so it
	// is not bit-compared against skin=0; it must still conserve energy over
	// the NVE stretch, which fails if stale neighbor sets ever leak through.
	sim := runProtocolPipeline(t, true, 2, 0.6)
	defer func() { _ = sim.Free() }()
	if drift := sim.EnergyDrift(); !(drift < 2e-4) {
		t.Fatalf("pipeline+skin NVE energy drift %.3g (want < 2e-4)", drift)
	}
}

func TestSkinValidation(t *testing.T) {
	if _, err := NewSimulation(Config{Cells: 2, Backend: BackendMDM, Skin: -0.1}); err == nil {
		t.Fatal("negative skin accepted")
	}
}
