// Package parallelize is the shared worker-pool layer that maps the MDM's
// chip-level concurrency onto host OS threads.
//
// The real machine never ran a loop serially: WINE-2 striped the wavenumber
// sum over 2,240 chips and MDGRAPE-2 striped the i-particles over 256
// pipelines (§3.4, §3.5). The simulators reproduce those datapaths
// bit-exactly but, before this layer, executed every pipeline on one OS
// thread. A Pool re-introduces the hardware's parallel axis: an index range
// is split into at most Workers contiguous shards ("virtual boards"), each
// shard runs on its own goroutine, and the caller merges shard results in
// shard order.
//
// Determinism contract. Sharding is a pure function of (n, workers):
// shard s covers [s·n/w, (s+1)·n/w). A worker writes only to the output
// slots of its own shard, so any per-index output (forces[i], sn[w]) is
// bit-identical to the serial loop regardless of scheduling. Reductions
// (scalar sums) must be merged by the caller in ascending shard order; the
// fixed-point int64 accumulators of WINE-2 are associative, so even their
// reduced sums stay bit-identical. Pool(1) — and a nil *Pool — runs the body
// inline on the calling goroutine: exactly the pre-pool serial code path,
// with no goroutine, channel, or defer overhead.
//
// Error contract. The error returned by Run is the error of the
// lowest-numbered failing shard, independent of goroutine timing, so fault
// injection and recovery stay deterministic under concurrency. A panicking
// shard is converted to a *PanicError rather than crashing the process
// sideways on a worker goroutine.
package parallelize

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool is a bounded, stateless worker pool: it owns no goroutines between
// calls, so one Pool may be shared by concurrent callers (e.g. the per-rank
// sessions of the §4 parallel layout) without locking.
type Pool struct {
	workers int
}

// New returns a pool of the given width. workers <= 0 selects
// runtime.GOMAXPROCS(0), the number of OS threads the Go scheduler will
// actually run; workers == 1 makes every Run execute inline (the serial
// code path).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool width. A nil pool is serial: width 1.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// PanicError wraps a panic recovered on a worker goroutine.
type PanicError struct {
	Shard int
	Value any
}

// Error implements error.
//
//mdm:hotallocok -- panic rendering: reached only after a worker panicked, never on the clean step path
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallelize: panic in shard %d: %v", e.Shard, e.Value)
}

// Shards splits the index range [0, n) into at most workers contiguous
// shards: shard s covers [s·n/w, (s+1)·n/w). Every index is covered exactly
// once, empty shards are dropped, and the split depends only on (n, workers)
// — the deterministic striping the bit-exactness contract rests on.
func Shards(n, workers int) [][2]int {
	return appendShards(nil, n, workers)
}

// appendShards appends the contiguous split of [0, n) to dst — the in-place
// form Run uses to keep dispatch records allocation-free once grown.
func appendShards(dst [][2]int, n, workers int) [][2]int {
	if n <= 0 {
		return dst
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	for s := 0; s < workers; s++ {
		lo := s * n / workers
		hi := (s + 1) * n / workers
		if lo < hi {
			//mdm:hotallocok -- appends into dst[:0] of a pooled dispatch record; the backing array grows once per record, then every Run reuses it
			dst = append(dst, [2]int{lo, hi})
		}
	}
	return dst
}

// NumShards returns len(Shards(n, workers)) without building the slice:
// every shard of the contiguous split is non-empty once workers is clamped
// to n, so the count is min(workers, n) (and 0 for an empty range). Callers
// sizing per-shard accumulators on a hot path use this to stay allocation-
// free.
func NumShards(n, workers int) int {
	if n <= 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	return workers
}

// dispatch is the reusable scratch of one multi-shard Run: the shard table,
// the per-shard error slots, the join WaitGroup, and one pre-built spawn
// closure per shard slot. Records live in a process-wide sync.Pool, so a
// steady-state Run allocates nothing regardless of width — the per-width
// allocation growth of allocating the shard list, error slice and one
// hidden capture struct per `go fn(args)` statement on every dispatch is
// what the pooling removes (the BENCH_2 machineForces 11 → 144 allocs/op
// climb across widths 1 → 8).
type dispatch struct {
	fn     func(shard, lo, hi int) error
	shards [][2]int
	errs   []error
	calls  []*shardCall
	wg     sync.WaitGroup
}

// shardCall is one shard slot of a dispatch. Its spawn closure g is built
// once, when the slot is first grown, and captures only the slot itself —
// `go c.g()` passes an existing zero-argument funcval to the scheduler, which
// is the one goroutine-spawn shape that does not allocate a capture struct.
type shardCall struct {
	d *dispatch
	s int
	g func()
}

var dispatchPool = sync.Pool{New: func() any { return new(dispatch) }}

// grow ensures the dispatch has at least n shard slots, building the
// per-slot spawn closures once (amortized: a record that has dispatched at
// width w never allocates again at widths ≤ w).
func (d *dispatch) grow(n int) {
	for len(d.calls) < n {
		c := &shardCall{d: d, s: len(d.calls)}
		c.g = func() { c.d.runShard(c.s) }
		//mdm:hotallocok -- slot construction is amortized: a record that has dispatched at width w never allocates again at widths ≤ w
		d.calls = append(d.calls, c)
	}
}

// runShard executes one shard on its worker goroutine, keeping the panic
// and per-shard error contracts of Run.
func (d *dispatch) runShard(s int) {
	defer d.wg.Done()
	defer func() {
		if v := recover(); v != nil {
			d.errs[s] = &PanicError{Shard: s, Value: v}
		}
	}()
	r := d.shards[s]
	d.errs[s] = d.fn(s, r[0], r[1])
}

// Run executes fn over the index range [0, n), split into at most Workers()
// contiguous shards. fn receives its shard number and half-open range
// [lo, hi); it must write only to per-index state of its own range (or to
// per-shard state merged by the caller afterwards). With one shard — a nil
// or width-1 pool, or n <= 1 — fn runs inline on the calling goroutine.
//
// The returned error is the lowest-numbered failing shard's error; a shard
// panic surfaces as a *PanicError.
func (p *Pool) Run(n int, fn func(shard, lo, hi int) error) error {
	workers := p.Workers()
	if n <= 0 {
		return nil
	}
	if NumShards(n, workers) == 1 {
		// Single-shard fast path without materializing the shard list: the
		// zero-alloc step path runs through here at width 1.
		return runInline(fn, 0, n)
	}
	d := dispatchPool.Get().(*dispatch)
	d.fn = fn
	d.shards = appendShards(d.shards[:0], n, workers)
	ns := len(d.shards)
	if cap(d.errs) < ns {
		d.errs = make([]error, ns)
	}
	d.errs = d.errs[:ns]
	for s := range d.errs {
		d.errs[s] = nil
	}
	d.grow(ns)
	d.wg.Add(ns)
	for s := 0; s < ns; s++ {
		go d.calls[s].g()
	}
	d.wg.Wait()
	var err error
	for _, e := range d.errs {
		if e != nil {
			err = e
			break
		}
	}
	d.fn = nil // do not retain the caller's closure across pool reuse
	dispatchPool.Put(d)
	return err
}

// runInline is the single-shard fast path: no goroutine, no channel — the
// pre-pool serial code path, with only the panic contract kept uniform.
func runInline(fn func(shard, lo, hi int) error, lo, hi int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Shard: 0, Value: v}
		}
	}()
	return fn(0, lo, hi)
}
