//go:build !race

package parallelize

const raceDetectorEnabled = false
