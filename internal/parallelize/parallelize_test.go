package parallelize

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestShardsCoverExactly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 8, 100, 1000} {
		for _, w := range []int{1, 2, 3, 4, 8, 13, 1000} {
			shards := Shards(n, w)
			covered := make([]int, n)
			prev := 0
			for _, r := range shards {
				if r[0] != prev {
					t.Fatalf("n=%d w=%d: shard starts at %d, want %d", n, w, r[0], prev)
				}
				if r[0] >= r[1] {
					t.Fatalf("n=%d w=%d: empty shard %v survived", n, w, r)
				}
				for i := r[0]; i < r[1]; i++ {
					covered[i]++
				}
				prev = r[1]
			}
			if n > 0 && prev != n {
				t.Fatalf("n=%d w=%d: shards end at %d", n, w, prev)
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d w=%d: index %d covered %d times", n, w, i, c)
				}
			}
			if len(shards) > w || (n > 0 && len(shards) > n) {
				t.Fatalf("n=%d w=%d: %d shards", n, w, len(shards))
			}
		}
	}
}

func TestShardsDeterministic(t *testing.T) {
	a := fmt.Sprint(Shards(1000, 7))
	b := fmt.Sprint(Shards(1000, 7))
	if a != b {
		t.Fatalf("sharding not deterministic: %s vs %s", a, b)
	}
}

func TestNilAndWidthOnePoolRunInline(t *testing.T) {
	gid := func() string {
		var buf [64]byte
		return string(buf[:runtime.Stack(buf[:], false)])[:20]
	}
	for _, p := range []*Pool{nil, New(1)} {
		if p.Workers() != 1 {
			t.Fatalf("Workers() = %d, want 1", p.Workers())
		}
		caller := gid()
		calls := 0
		err := p.Run(100, func(shard, lo, hi int) error {
			calls++
			if shard != 0 || lo != 0 || hi != 100 {
				t.Fatalf("inline shard = (%d, %d, %d)", shard, lo, hi)
			}
			if gid() != caller {
				t.Fatal("width-1 pool hopped goroutines")
			}
			return nil
		})
		if err != nil || calls != 1 {
			t.Fatalf("inline run: err=%v calls=%d", err, calls)
		}
	}
}

func TestDefaultWidthIsGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Workers() = %d, want %d", got, want)
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(-3).Workers() = %d", got)
	}
}

func TestRunCoversAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8} {
		p := New(w)
		out := make([]int64, 997)
		if err := p.Run(len(out), func(shard, lo, hi int) error {
			for i := lo; i < hi; i++ {
				atomic.AddInt64(&out[i], int64(i)+1)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != int64(i)+1 {
				t.Fatalf("w=%d: out[%d] = %d", w, i, v)
			}
		}
	}
}

func TestRunReturnsLowestShardError(t *testing.T) {
	p := New(8)
	errShard := errors.New("shard failed")
	for trial := 0; trial < 20; trial++ {
		err := p.Run(64, func(shard, lo, hi int) error {
			if shard >= 3 {
				return fmt.Errorf("%w: %d", errShard, shard)
			}
			return nil
		})
		if err == nil || !errors.Is(err, errShard) {
			t.Fatalf("err = %v", err)
		}
		// Deterministic winner: shard 3 is the lowest failing shard.
		if got := err.Error(); got != "shard failed: 3" {
			t.Fatalf("trial %d: nondeterministic error choice: %q", trial, got)
		}
	}
}

func TestRunConvertsPanicToError(t *testing.T) {
	p := New(4)
	err := p.Run(16, func(shard, lo, hi int) error {
		if shard == 2 {
			panic("boom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Shard != 2 || pe.Value != "boom" {
		t.Fatalf("panic error = %+v", pe)
	}
	// The inline (single-shard) path must also not crash the process.
	err = New(1).Run(4, func(shard, lo, hi int) error { panic("inline") })
	if !errors.As(err, &pe) || pe.Value != "inline" {
		t.Fatalf("inline panic: err = %v", err)
	}
}

func TestPoolSharedByConcurrentCallers(t *testing.T) {
	// One pool used from many goroutines at once, as the §4 rank sessions do.
	p := New(4)
	done := make(chan error, 8)
	for c := 0; c < 8; c++ {
		go func() {
			var total int64
			err := p.Run(1000, func(shard, lo, hi int) error {
				for i := lo; i < hi; i++ {
					atomic.AddInt64(&total, 1)
				}
				return nil
			})
			if err == nil && total != 1000 {
				err = fmt.Errorf("total = %d", total)
			}
			done <- err
		}()
	}
	for c := 0; c < 8; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunZeroLength(t *testing.T) {
	called := false
	if err := New(4).Run(0, func(shard, lo, hi int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for empty range")
	}
}

// TestRunSteadyStateAllocsFlatAcrossWidths pins the dispatch-record pooling:
// once a record has dispatched at a width, further Runs at that width must
// not allocate per shard (the BENCH_2 regression was ~1 capture struct per
// spawned shard plus the shard/error slices, so allocs/op climbed with the
// pool width). The bound is loose enough for scheduler stack growth and an
// occasional GC emptying the sync.Pool, but far below one alloc per shard.
func TestRunSteadyStateAllocsFlatAcrossWidths(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race-detector instrumentation allocates per goroutine handoff; the pinned counts only hold in uninstrumented builds")
	}
	out := make([]int, 1024)
	for _, w := range []int{2, 4, 8} {
		p := New(w)
		body := func() {
			_ = p.Run(len(out), func(shard, lo, hi int) error {
				for i := lo; i < hi; i++ {
					out[i] = shard
				}
				return nil
			})
		}
		body() // warm the dispatch pool at this width
		avg := testing.AllocsPerRun(100, body)
		if avg > 2 {
			t.Errorf("width %d: %.2f allocs per Run, want ~0 (dispatch scratch not pooled?)", w, avg)
		}
	}
}
