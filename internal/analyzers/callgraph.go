package analyzers

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"mdm/internal/analyzers/load"
)

// This file is the fact-propagation layer of the suite: a whole-module call
// graph computed once over every loaded package, from which per-function
// *facts* are derived and handed to the analyzers through Pass.Facts. The
// first (and so far only) fact is "stepflow": the transitive closure of the
// simulation hot path.
//
// The paper's 1.34 Tflops run works because every MDM stage is strictly
// ordered hardware; the repo mirrors that with bit-identity and journal/replay
// contracts that only hold if the per-step code is deterministic and
// allocation-free. Those properties are global — a map walk three calls below
// core.Machine.Forces breaks bit-identity just as surely as one inside it —
// so the determinism analyzers (maporder, wallclock, hotalloc, shardmerge)
// need to know, per function, whether it can execute during a step.
//
// Roots are declared in source: a function whose doc comment carries a
// "//mdm:stepflow -- reason" directive is a hot-path entry point. The repo
// annotates core.Machine.Forces, md.Integrator.Step/Run, the WINE-2 and
// MDGRAPE-2 session entry points, and the supervision hooks the step path
// invokes (journal append, watchdog beat). Reachability propagates through:
//
//   - direct calls, go statements and defers (resolved through go/types);
//   - closures: a function literal's body belongs to its declaring function,
//     so calls inside it propagate from that function;
//   - interface dispatch: a call through an interface method fans out to
//     every concrete method in the module with the same name and shape
//     (a class-hierarchy approximation — deliberately an over- rather than
//     under-approximation, since a missed hot function is a silent hole in
//     the determinism gate);
//   - callbacks: a named function or method value passed as an argument to a
//     stepflow function is assumed invoked by it (Integrator.Run(n, observe)
//     marks observe).
//
// Cross-package identity: the loader type-checks each package from source but
// resolves its imports from compiler export data, so the *types.Func for
// core.Machine.Forces seen from package md is a different object than the one
// from core's own load. Functions are therefore keyed by FullName() strings,
// which are identical in both universes.

// StepFlowKey is the //mdm: directive that marks a function as a hot-path
// root for the callgraph pass.
const StepFlowKey = "stepflow"

// Facts carries the module-wide analysis facts consumed by fact-aware
// analyzers via Pass.Facts. A nil *Facts disables those analyzers.
type Facts struct {
	stepflow map[string]bool // types.Func FullName → reachable from a root
	roots    []string        // annotated root names, sorted
}

// StepFlow reports whether fn is on the simulation hot path.
func (f *Facts) StepFlow(fn *types.Func) bool {
	return f != nil && fn != nil && f.stepflow[funcKey(fn)]
}

// StepFlowName reports whether the function with the given FullName is on
// the simulation hot path.
func (f *Facts) StepFlowName(name string) bool {
	return f != nil && f.stepflow[name]
}

// Roots returns the annotated root function names, sorted.
func (f *Facts) Roots() []string {
	if f == nil {
		return nil
	}
	return append([]string(nil), f.roots...)
}

// StepFlowNames returns every hot-path function name, sorted — the export
// consumed by tests and by mdmvet's machine-readable output.
func (f *Facts) StepFlowNames() []string {
	if f == nil {
		return nil
	}
	names := make([]string, 0, len(f.stepflow))
	for name := range f.stepflow {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// funcKey names a function consistently across the source-checked and
// export-data universes.
func funcKey(fn *types.Func) string { return fn.FullName() }

// methodShape is the name+arity signature used to fan interface calls out to
// candidate concrete methods.
type methodShape struct {
	name    string
	params  int
	results int
}

func shapeOf(fn *types.Func) methodShape {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return methodShape{name: fn.Name()}
	}
	return methodShape{name: fn.Name(), params: sig.Params().Len(), results: sig.Results().Len()}
}

// callGraph accumulates edges while the packages are walked.
type callGraph struct {
	edges   map[string][]string      // caller key → callee keys
	impls   map[methodShape][]string // method shape → concrete methods in the module
	roots   map[string]bool          // annotated //mdm:stepflow functions
	ifaceBy map[string]methodShape   // interface-method key → its shape
}

// BuildFacts computes the module call graph over the loaded packages and
// returns the propagated facts. Packages may be passed in any order.
func BuildFacts(pkgs []*load.Package) *Facts {
	g := &callGraph{
		edges:   make(map[string][]string),
		impls:   make(map[methodShape][]string),
		roots:   make(map[string]bool),
		ifaceBy: make(map[string]methodShape),
	}
	for _, pkg := range pkgs {
		g.collectImpls(pkg)
	}
	for _, pkg := range pkgs {
		g.collectEdges(pkg)
	}
	return g.propagate()
}

// collectImpls records every concrete method declared in the package, keyed
// by shape, so interface calls can fan out to them.
func (g *callGraph) collectImpls(pkg *load.Package) {
	scope := pkg.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			g.impls[shapeOf(m)] = append(g.impls[shapeOf(m)], funcKey(m))
		}
	}
}

// collectEdges walks every function declaration of the package, recording
// its root annotation and outgoing edges.
func (g *callGraph) collectEdges(pkg *load.Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			caller := funcKey(fn)
			if hasStepFlowDirective(fd) {
				g.roots[caller] = true
			}
			g.walkBody(pkg, caller, fd.Body)
		}
	}
}

// hasStepFlowDirective reports whether the declaration's doc comment carries
// a //mdm:stepflow directive.
func hasStepFlowDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		for _, key := range commentKeys(c) {
			if key == StepFlowKey {
				return true
			}
		}
	}
	return false
}

// walkBody records every outgoing edge of one function body: direct calls
// (including go and defer), interface calls, and named functions passed as
// call arguments.
func (g *callGraph) walkBody(pkg *load.Package, caller string, body *ast.BlockStmt) {
	info := pkg.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, call); fn != nil {
			key := funcKey(fn)
			g.edges[caller] = append(g.edges[caller], key)
			if recvIsInterface(fn) {
				g.ifaceBy[key] = shapeOf(fn)
			}
			// A function value handed to a callee is assumed invoked inside
			// it: the edge goes callee → argument, so callbacks passed into
			// hot-path functions (Integrator.Run(n, observe)) inherit their
			// stepflow status from the receiver of the value, not the caller.
			for _, arg := range call.Args {
				if af := funcValueOf(info, arg); af != nil {
					g.edges[key] = append(g.edges[key], funcKey(af))
				}
			}
		}
		return true
	})
}

// funcValueOf resolves an expression used as a value (not called) to the
// named function or method it denotes, or nil.
func funcValueOf(info *types.Info, expr ast.Expr) *types.Func {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// recvIsInterface reports whether fn is an interface method.
func recvIsInterface(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// propagate runs the BFS from the annotated roots, fanning interface-method
// nodes out to the module's shape-matching concrete methods.
func (g *callGraph) propagate() *Facts {
	reach := make(map[string]bool)
	var queue []string
	enqueue := func(key string) {
		if !reach[key] {
			reach[key] = true
			queue = append(queue, key)
		}
	}
	for root := range g.roots {
		enqueue(root)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range g.edges[cur] {
			enqueue(next)
		}
		if shape, ok := g.ifaceBy[cur]; ok {
			for _, impl := range g.impls[shape] {
				enqueue(impl)
			}
		}
	}
	roots := make([]string, 0, len(g.roots))
	for root := range g.roots {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	return &Facts{stepflow: reach, roots: roots}
}

//
// Helpers shared by the stepflow analyzers.
//

// stepFlowFuncs yields every function declaration in the pass that the facts
// place on the hot path, skipping test files: the determinism contract binds
// production step code, and test doubles pulled in through the interface
// fan-out would otherwise drown the signal.
func stepFlowFuncs(pass *Pass, visit func(fd *ast.FuncDecl, fn *types.Func)) {
	if pass.Facts == nil {
		return
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.FileStart).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil || !pass.Facts.StepFlow(fn) {
				continue
			}
			visit(fd, fn)
		}
	}
}

// isFloat reports whether t's underlying type (or element type, for slices
// and arrays) is a floating-point kind.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// floatElem reports whether t is a slice or array of floats.
func floatElem(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isFloat(u.Elem())
	case *types.Array:
		return isFloat(u.Elem())
	}
	return false
}
