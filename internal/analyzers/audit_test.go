package analyzers_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdm/internal/analyzers"
	"mdm/internal/analyzers/atest"
)

// TestAuditDir exercises the suppression audit on a synthetic tree: justified
// suppressions are listed cleanly, bare and unknown-key ones are problems.
func TestAuditDir(t *testing.T) {
	root := t.TempDir()
	src := `package p

import "time"

//mdm:stepflow -- root of the synthetic hot path
func step() {
	_ = time.Now() //mdm:wallclockok -- liveness only
	bad()
}

func bad() {
	_ = time.Now() //mdm:wallclockok
}

//mdm:nosuchkey -- typo in the key
func typo() {}
`
	if err := os.WriteFile(filepath.Join(root, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Hidden directories are skipped even when they contain suppressions.
	hidden := filepath.Join(root, ".cache")
	if err := os.MkdirAll(hidden, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(hidden, "h.go"), []byte("package h\n\n//mdm:bogus\nfunc f() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	known := analyzers.KnownSuppressKeys(analyzers.All())
	sups, problems, err := analyzers.AuditDir(root, known)
	if err != nil {
		t.Fatal(err)
	}
	if len(sups) != 4 {
		t.Errorf("found %d suppressions, want 4: %v", len(sups), sups)
	}
	if len(problems) != 2 {
		t.Fatalf("found %d problems, want 2: %v", len(problems), problems)
	}
	var sawBare, sawUnknown bool
	for _, p := range problems {
		if strings.Contains(p, "lacks a justification") && strings.Contains(p, "wallclockok") {
			sawBare = true
		}
		if strings.Contains(p, `unknown suppression key "nosuchkey"`) {
			sawUnknown = true
		}
	}
	if !sawBare {
		t.Errorf("missing bare-suppression problem in %v", problems)
	}
	if !sawUnknown {
		t.Errorf("missing unknown-key problem in %v", problems)
	}
	for _, s := range sups {
		if s.Key == "stepflow" && s.Reason != "root of the synthetic hot path" {
			t.Errorf("stepflow reason = %q", s.Reason)
		}
	}
}

// TestAuditRepoClean runs the audit over the real module — the in-process
// equivalent of `mdmvet -audit` — and requires every suppression justified.
func TestAuditRepoClean(t *testing.T) {
	root := atest.ModuleRoot(t)
	known := analyzers.KnownSuppressKeys(analyzers.All())
	sups, problems, err := analyzers.AuditDir(root, known)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Errorf("audit: %s", p)
	}
	if len(sups) < 40 {
		t.Errorf("found only %d suppressions; the repo carries far more — is the walk broken?", len(sups))
	}
}
