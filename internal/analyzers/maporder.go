package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags map iteration on the simulation hot path whose body does
// order-sensitive work: writes to variables declared outside the loop
// (accumulators, output slices) or floating-point arithmetic. Go randomizes
// map iteration order per run, so any such loop produces a different float
// reduction order — or a differently ordered output slice — on every
// execution, silently breaking the repo's bit-identity contract (identical
// forces at every worker width, pipeline on/off) and the journal replay
// contract. The fix is to iterate a sorted key slice; the collection half of
// that idiom (`for k := range m { keys = append(keys, k) }` followed by a
// sort) is recognized and exempt. Where the body is genuinely order-free
// (pure lookups, set membership) the finding is suppressed with
// //mdm:maporderok -- reason.
var MapOrder = &Analyzer{
	Name:     "maporder",
	Doc:      "flag order-sensitive map iteration (accumulator writes, float math) in stepflow code",
	Suppress: "maporderok",
	Run:      runMapOrder,
}

func runMapOrder(pass *Pass) {
	stepFlowFuncs(pass, func(fd *ast.FuncDecl, fn *types.Func) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if keyCollection(pass, fd, rng) {
				return true
			}
			if reason := orderSensitive(pass, rng); reason != "" {
				pass.Reportf(rng.Pos(),
					"map iteration in hot-path function %s %s; map order is randomized per run, breaking bit-identity — iterate sorted keys instead", fd.Name.Name, reason)
			}
			return true
		})
	})
}

// orderSensitive describes why the range body depends on iteration order, or
// returns "" when it looks order-free.
func orderSensitive(pass *Pass, rng *ast.RangeStmt) string {
	// Objects introduced by the range statement itself (key/value vars and
	// anything declared in the body) are per-iteration and safe to write.
	local := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})

	reason := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			if stmt.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range stmt.Lhs {
				if obj := lvalueRoot(pass.Info, lhs); obj != nil && !local[obj] {
					reason = "writes " + obj.Name() + ", declared outside the loop"
					return false
				}
			}
		case *ast.IncDecStmt:
			if obj := lvalueRoot(pass.Info, stmt.X); obj != nil && !local[obj] {
				reason = "increments " + obj.Name() + ", declared outside the loop"
				return false
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(stmt.Fun).(*ast.Ident); ok && id.Name == "append" && isBuiltin(pass.Info, id) {
				// append is flagged through the assignment it feeds; a bare
				// append call discards its result and is meaningless anyway.
				return true
			}
		case *ast.BinaryExpr:
			switch stmt.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				if tv, ok := pass.Info.Types[stmt]; ok && isFloat(tv.Type) && tv.Value == nil {
					reason = "does float arithmetic"
					return false
				}
			}
		}
		return true
	})
	return reason
}

// sortPkgs are the packages whose functions establish a deterministic order
// on a slice; a key slice handed to one of them is no longer order-sensitive.
var sortPkgs = map[string]bool{"sort": true, "slices": true}

// keyCollection reports whether the range is the collection half of the
// sorted-iteration idiom the analyzer itself recommends: a body that is
// exactly `keys = append(keys, k)` over the range key, with keys later
// passed to a sort/slices call in the same function. The append order leaks
// map order, but the subsequent sort erases it.
func keyCollection(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) bool {
	if rng.Value != nil || rng.Key == nil || len(rng.Body.List) != 1 {
		return false
	}
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := pass.Info.Defs[keyID]
	as, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst := lvalueRoot(pass.Info, as.Lhs[0])
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || dst == nil || keyObj == nil || len(call.Args) != 2 {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" || !isBuiltin(pass.Info, id) {
		return false
	}
	if lvalueRoot(pass.Info, call.Args[0]) != dst {
		return false
	}
	if arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident); !ok || pass.Info.Uses[arg] != keyObj {
		return false
	}
	// The slice must reach a sort call after the loop.
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() < rng.End() {
			return true
		}
		callee := calleeFunc(pass.Info, c)
		if callee == nil || callee.Pkg() == nil || !sortPkgs[callee.Pkg().Path()] {
			return true
		}
		for _, a := range c.Args {
			if lvalueRoot(pass.Info, a) == dst {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// lvalueRoot resolves the base object of an assignable expression: the
// variable itself for identifiers, the indexed/selected variable for
// x[i] = ... and x.f = ... chains.
func lvalueRoot(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if e.Name == "_" {
				return nil
			}
			if obj := info.Uses[e]; obj != nil {
				return obj
			}
			return info.Defs[e]
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
