package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// singlePrecPkgs are the packages whose pipeline functions model the
// MDGRAPE-2 single-precision datapath ("most of the arithmetic units in the
// pipeline use IEEE754 single floating point format", §3.5.4).
var singlePrecPkgs = map[string]bool{
	"mdm/internal/mdgrape2": true,
	"mdm/internal/funceval": true,
}

// float64OKMathFuncs are math package predicates and bit-casts that do not
// perform double-precision arithmetic.
var float64OKMathFuncs = map[string]bool{
	"IsNaN":           true,
	"IsInf":           true,
	"Signbit":         true,
	"Float32bits":     true,
	"Float32frombits": true,
	"Float64bits":     true,
	"Float64frombits": true,
}

// SinglePrec flags double-precision computation inside pipeline functions of
// the MDGRAPE-2 packages. A pipeline function is one whose signature carries
// float32 values (and no float64): within it, float64 arithmetic, calls to
// float64 math.* functions, and float64(...) widenings are reported. The
// hardware's documented exception — double-precision force *accumulation* —
// lives in functions whose signatures carry float64 and is therefore out of
// scope by construction. Reviewed boundary crossings are suppressed with
// //mdm:float64ok comments.
var SinglePrec = &Analyzer{
	Name:     "singleprec",
	Doc:      "flag float64 computation inside float32 pipeline functions",
	Suppress: "float64ok",
	Run:      runSinglePrec,
}

func runSinglePrec(pass *Pass) {
	if !singlePrecPkgs[pass.Path] {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !isPipelineFunc(pass.Info, fd) {
				continue
			}
			checkPipelineBody(pass, fd)
		}
	}
}

// isPipelineFunc reports whether the function's parameter and result types
// mention float32 but not float64 (the shape of a simulated pipeline stage).
func isPipelineFunc(info *types.Info, fd *ast.FuncDecl) bool {
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	var has32, has64 bool
	scan := func(tuple *types.Tuple) {
		for i := 0; i < tuple.Len(); i++ {
			k32, k64 := mentionsFloats(tuple.At(i).Type(), 0)
			has32 = has32 || k32
			has64 = has64 || k64
		}
	}
	scan(sig.Params())
	scan(sig.Results())
	return has32 && !has64
}

// mentionsFloats walks a type structurally looking for float32/float64.
func mentionsFloats(t types.Type, depth int) (f32, f64 bool) {
	if depth > 8 {
		return false, false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Float32:
			return true, false
		case types.Float64:
			return false, true
		}
	case *types.Pointer:
		return mentionsFloats(u.Elem(), depth+1)
	case *types.Slice:
		return mentionsFloats(u.Elem(), depth+1)
	case *types.Array:
		return mentionsFloats(u.Elem(), depth+1)
	case *types.Map:
		k32, k64 := mentionsFloats(u.Key(), depth+1)
		e32, e64 := mentionsFloats(u.Elem(), depth+1)
		return k32 || e32, k64 || e64
	case *types.Signature:
		var has32, has64 bool
		for _, tuple := range []*types.Tuple{u.Params(), u.Results()} {
			for i := 0; i < tuple.Len(); i++ {
				k32, k64 := mentionsFloats(tuple.At(i).Type(), depth+1)
				has32 = has32 || k32
				has64 = has64 || k64
			}
		}
		return has32, has64
	}
	return false, false
}

func isFloat64(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

func checkPipelineBody(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.BinaryExpr:
			switch node.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				if isFloat64(pass.Info, node.X) || isFloat64(pass.Info, node.Y) {
					pass.Reportf(node.OpPos,
						"float64 arithmetic in pipeline function %s; the MDGRAPE-2 datapath is float32 (§3.5.4)", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			// float64(...) widening out of the pipeline.
			if tv, ok := pass.Info.Types[node.Fun]; ok && tv.IsType() {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Float64 {
					pass.Reportf(node.Pos(),
						"float64 conversion in pipeline function %s; keep the datapath in float32 or justify with //mdm:float64ok", fd.Name.Name)
				}
				return true
			}
			if fn := calleeFunc(pass.Info, node); fn != nil &&
				fn.Pkg() != nil && fn.Pkg().Path() == "math" &&
				!float64OKMathFuncs[fn.Name()] {
				pass.Reportf(node.Pos(),
					"float64 math.%s call in pipeline function %s; the MDGRAPE-2 datapath is float32 (§3.5.4)", fn.Name(), fd.Name.Name)
			}
		}
		return true
	})
}
