package analyzers

import (
	"go/ast"
	"go/types"
)

// goroutineLoopExemptPkgs are the packages allowed to hand-roll goroutine
// fan-out: the worker-pool layer itself is the sanctioned implementation.
var goroutineLoopExemptPkgs = map[string]bool{
	"mdm/internal/parallelize": true,
}

// GoroutineLoop flags `go func() {...}()` launched inside a for/range loop
// when the function literal captures the loop variable instead of receiving
// it as an argument or going through the parallelize pool. The repo's
// determinism contract routes data-parallel loops through parallelize.Pool,
// whose fixed sharding keeps outputs bit-identical and whose error path is
// deterministic; an ad-hoc goroutine-per-iteration loop has neither property,
// and a captured loop variable is the usual symptom of one. Launches that
// pass the variable as a call argument (the mpi substrate's pattern) do not
// capture and are not flagged. Reviewed launches are suppressed with
// //mdm:goloopok comments.
var GoroutineLoop = &Analyzer{
	Name:     "goroutineloop",
	Doc:      "flag goroutines launched in loops capturing the loop variable instead of using parallelize.Pool",
	Suppress: "goloopok",
	Run:      runGoroutineLoop,
}

func runGoroutineLoop(pass *Pass) {
	if goroutineLoopExemptPkgs[pass.Path] {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			loopVars := map[types.Object]string{}
			switch loop := n.(type) {
			case *ast.RangeStmt:
				body = loop.Body
				for _, e := range []ast.Expr{loop.Key, loop.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.Info.Defs[id]; obj != nil {
							loopVars[obj] = id.Name
						}
					}
				}
			case *ast.ForStmt:
				body = loop.Body
				if init, ok := loop.Init.(*ast.AssignStmt); ok {
					for _, e := range init.Lhs {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							if obj := pass.Info.Defs[id]; obj != nil {
								loopVars[obj] = id.Name
							}
						}
					}
				}
			default:
				return true
			}
			if len(loopVars) == 0 {
				return true
			}
			checkLoopBodyGoStmts(pass, body, loopVars)
			return true
		})
	}
}

// checkLoopBodyGoStmts reports every go statement in the loop body whose
// function literal references a loop variable of the enclosing loop.
func checkLoopBodyGoStmts(pass *Pass, body *ast.BlockStmt, loopVars map[types.Object]string) {
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		var captured string
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if captured != "" {
				return false
			}
			if id, ok := m.(*ast.Ident); ok {
				if name, isLoopVar := loopVars[pass.Info.Uses[id]]; isLoopVar {
					captured = name
					return false
				}
			}
			return true
		})
		if captured != "" {
			pass.Reportf(gs.Pos(),
				"goroutine launched in a loop captures loop variable %s; stripe the loop through parallelize.Pool (or pass %s as an argument) so sharding and errors stay deterministic", captured, captured)
		}
		return true
	})
}
