// Package load type-checks the packages of this module for the mdmvet
// analyzer suite without depending on golang.org/x/tools.
//
// It mirrors the way cmd/vet's unitchecker consumes the build system: package
// metadata comes from `go list -json`, and imports are satisfied from the
// compiler export data that `go list -export` materializes in the build
// cache. Each analyzed package is parsed and type-checked from source
// (including its in-package *_test.go files, which are part of the contract
// the analyzers enforce); everything it imports — standard library and other
// module packages alike — is loaded through the standard gc importer.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File // GoFiles + in-package TestGoFiles, in that order
	Pkg        *types.Package
	TypesInfo  *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath   string
	Dir          string
	Name         string
	Standard     bool
	ForTest      string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

func runGoList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&out)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportMap builds importPath → export-data file for the whole dependency
// closure of the given patterns, test dependencies included.
func exportMap(dir string, patterns []string) (map[string]string, error) {
	args := append([]string{"-export", "-deps", "-test", "-json=ImportPath,Export,ForTest,Standard"}, patterns...)
	entries, err := runGoList(dir, args...)
	if err != nil {
		return nil, err
	}
	m := make(map[string]string)
	for _, e := range entries {
		// Skip test variants ("pkg [pkg.test]", "pkg.test"): imports must
		// resolve to the plain package.
		if e.ForTest != "" || strings.HasSuffix(e.ImportPath, ".test") || strings.Contains(e.ImportPath, " [") {
			continue
		}
		if e.Export != "" {
			m[e.ImportPath] = e.Export
		}
	}
	return m, nil
}

// Loader type-checks module packages against compiler export data.
type Loader struct {
	Fset    *token.FileSet
	exports map[string]string
	imp     types.ImporterFrom
}

// NewLoader prepares a loader rooted at the module directory dir, able to
// resolve every import reachable from the given package patterns.
func NewLoader(dir string, patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	exports, err := exportMap(dir, patterns)
	if err != nil {
		return nil, err
	}
	l := &Loader{Fset: token.NewFileSet(), exports: exports}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", lookup).(types.ImporterFrom)
	return l, nil
}

// Load parses and type-checks the packages matched by the patterns, with
// in-package test files included. External test packages (package foo_test)
// are type-checked as their own Package entries with import path "path_test".
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"-json=ImportPath,Dir,Name,GoFiles,TestGoFiles,XTestGoFiles,Error"}, patterns...)
	entries, err := runGoList(dir, args...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, e := range entries {
		if e.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", e.ImportPath, e.Error.Err)
		}
		files := append(append([]string{}, e.GoFiles...), e.TestGoFiles...)
		p, err := l.Check(e.ImportPath, e.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
		if len(e.XTestGoFiles) > 0 {
			p, err := l.Check(e.ImportPath+"_test", e.Dir, e.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// Check parses the named files (relative to dir) and type-checks them as one
// package under the given import path.
func (l *Loader) Check(importPath, dir string, files []string) (*Package, error) {
	var asts []*ast.File
	for _, name := range files {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.Fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      asts,
		Pkg:        pkg,
		TypesInfo:  info,
	}, nil
}
