package load

import (
	"go/ast"
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot finds the repository root relative to this source file.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", "..", ".."))
}

func TestLoadTypechecksModulePackages(t *testing.T) {
	root := moduleRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(root, "./internal/fixed", "./internal/wine2", "./internal/mpi")
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	for _, path := range []string{"mdm/internal/fixed", "mdm/internal/wine2", "mdm/internal/mpi"} {
		p, ok := byPath[path]
		if !ok {
			t.Fatalf("package %s not loaded (got %v)", path, keys(byPath))
		}
		if p.Pkg == nil || !p.Pkg.Complete() {
			t.Errorf("%s: incomplete types.Package", path)
		}
		if len(p.TypesInfo.Defs) == 0 {
			t.Errorf("%s: empty type info", path)
		}
		// In-package test files must be part of the checked package.
		hasTest := false
		for _, f := range p.Files {
			name := p.Fset.File(f.Pos()).Name()
			if filepath.Base(name) != "" && len(name) > 8 && name[len(name)-8:] == "_test.go" {
				hasTest = true
			}
		}
		if !hasTest {
			t.Errorf("%s: no test files loaded", path)
		}
	}

	// Cross-package types must resolve: wine2's use of fixed.F must have a
	// signature from the imported mdm/internal/fixed.
	w := byPath["mdm/internal/wine2"]
	found := false
	for id, obj := range w.TypesInfo.Uses {
		if id.Name == "F" && obj.Pkg() != nil && obj.Pkg().Path() == "mdm/internal/fixed" {
			found = true
			break
		}
	}
	if !found {
		t.Error("wine2 does not resolve fixed.F to mdm/internal/fixed")
	}
	_ = ast.IsExported // keep ast import honest
}

func keys(m map[string]*Package) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
