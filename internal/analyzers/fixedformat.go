package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// carrierBits is the fixed-point carrier budget: package fixed carries raw
// values in int64 and caps Format.TotalBits at 62 so short sums cannot
// overflow (see fixed.Format.Valid).
const carrierBits = 62

const fixedPkg = "mdm/internal/fixed"

// FixedFormat flags fixed-point formats that cannot fit the int64 carrier:
//
//   - fixed.F(i, f) calls and fixed.Format{...} literals whose constant
//     total width i+f+1 is outside [2, 62];
//   - fixed.F calls with a constant Int and a Frac derived as a sum of two
//     widths (a product width, Frac_a+Frac_b): the sum is not statically
//     bounded, so a non-zero Int on top of it risks exceeding the carrier —
//     use fixed.WideFor(frac) for product-width intermediates instead;
//   - fixed.MulRound call sites whose constant fractional widths alone
//     (aFrac+bFrac) exceed 61 bits, or whose constant outFrac exceeds 61
//     bits, either of which overflows the int64 product.
var FixedFormat = &Analyzer{
	Name:     "fixedformat",
	Doc:      "check fixed.Format widths against the 62-bit int64 carrier limit",
	Suppress: "fixedok",
	Run:      runFixedFormat,
}

func runFixedFormat(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				checkFixedCall(pass, file, node)
			case *ast.CompositeLit:
				checkFormatLit(pass, node)
			}
			return true
		})
	}
}

func checkFixedCall(pass *Pass, file *ast.File, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != fixedPkg {
		return
	}
	switch fn.Name() {
	case "F":
		if len(call.Args) != 2 {
			return
		}
		i, iConst := constUint(pass.Info, call.Args[0])
		f, fConst := constUint(pass.Info, call.Args[1])
		switch {
		case iConst && fConst:
			checkTotalWidth(pass, call.Pos(), i, f)
		case iConst && i >= carrierBits:
			pass.Reportf(call.Pos(),
				"fixed.F: Int width %d alone exceeds the %d-bit carrier", i, carrierBits)
		case fConst && f >= carrierBits:
			pass.Reportf(call.Pos(),
				"fixed.F: Frac width %d alone exceeds the %d-bit carrier", f, carrierBits)
		case iConst && i > 0 && isWidthSum(pass, file, call.Args[1]):
			pass.Reportf(call.Pos(),
				"fixed.F: Int %d on top of a product-width Frac (sum of operand widths) can exceed the %d-bit carrier; use fixed.WideFor for product intermediates", i, carrierBits)
		}
	case "MulRound":
		if len(call.Args) != 5 {
			return
		}
		aFrac, aOK := constUint(pass.Info, call.Args[2])
		bFrac, bOK := constUint(pass.Info, call.Args[3])
		outFrac, oOK := constUint(pass.Info, call.Args[4])
		if aOK && bOK && aFrac+bFrac > carrierBits-1 {
			pass.Reportf(call.Pos(),
				"fixed.MulRound: product fractional width %d+%d exceeds %d bits and overflows int64", aFrac, bFrac, carrierBits-1)
		}
		if oOK && outFrac > carrierBits-1 {
			pass.Reportf(call.Pos(),
				"fixed.MulRound: output fractional width %d exceeds %d bits", outFrac, carrierBits-1)
		}
	}
}

// checkFormatLit checks fixed.Format{Int: ..., Frac: ...} composite literals
// with constant fields.
func checkFormatLit(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != fixedPkg || named.Obj().Name() != "Format" {
		return
	}
	var intW, fracW uint64
	var intOK, fracOK bool
	for idx, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, _ := kv.Key.(*ast.Ident)
			if key == nil {
				continue
			}
			switch key.Name {
			case "Int":
				intW, intOK = constUint(pass.Info, kv.Value)
			case "Frac":
				fracW, fracOK = constUint(pass.Info, kv.Value)
			}
		} else {
			switch idx {
			case 0:
				intW, intOK = constUint(pass.Info, elt)
			case 1:
				fracW, fracOK = constUint(pass.Info, elt)
			}
		}
	}
	// Omitted fields are zero-valued constants.
	if !intOK && len(lit.Elts) < 2 {
		intW, intOK = 0, allKeyed(lit)
	}
	if !fracOK && len(lit.Elts) < 2 {
		fracW, fracOK = 0, allKeyed(lit)
	}
	if intOK && fracOK {
		checkTotalWidth(pass, lit.Pos(), intW, fracW)
	}
}

func allKeyed(lit *ast.CompositeLit) bool {
	for _, elt := range lit.Elts {
		if _, ok := elt.(*ast.KeyValueExpr); !ok {
			return false
		}
	}
	return true
}

func checkTotalWidth(pass *Pass, pos token.Pos, i, f uint64) {
	total := i + f + 1
	if total > carrierBits {
		pass.Reportf(pos,
			"fixed-point format s%d.%d is %d bits wide, exceeding the %d-bit carrier limit", i, f, total, carrierBits)
	} else if total < 2 {
		pass.Reportf(pos,
			"fixed-point format s%d.%d has no value bits", i, f)
	}
}

// isWidthSum reports whether expr is, or one local definition away from, a
// binary sum a+b — the shape of a product width (Frac_a + Frac_b).
func isWidthSum(pass *Pass, file *ast.File, expr ast.Expr) bool {
	expr = ast.Unparen(expr)
	if ident, ok := expr.(*ast.Ident); ok {
		if def := localDef(pass.Info, file, ident); def != nil {
			expr = ast.Unparen(def)
		}
	}
	bin, ok := expr.(*ast.BinaryExpr)
	return ok && bin.Op.String() == "+"
}
