package analyzers

import (
	"math"
	"testing"

	"mdm/internal/units"
)

// TestUnitsConstValuesMirrorPackage pins the analyzer's duplicate-literal
// table to the real internal/units constants, so the two cannot drift.
func TestUnitsConstValuesMirrorPackage(t *testing.T) {
	want := map[string]float64{
		"Coulomb":      units.Coulomb,
		"Boltzmann":    units.Boltzmann,
		"ForceToAccel": units.ForceToAccel,
		"EVPerA3ToGPa": units.EVPerA3ToGPa,
		"MassNa":       units.MassNa,
		"MassCl":       units.MassCl,
	}
	if len(want) != len(unitsConstValues) {
		t.Errorf("table has %d entries, expected %d", len(unitsConstValues), len(want))
	}
	for name, w := range want {
		got, ok := unitsConstValues[name]
		if !ok {
			t.Errorf("missing table entry %s", name)
			continue
		}
		if math.Abs(got-w) > 1e-12*math.Abs(w) {
			t.Errorf("%s: table %v, units package %v", name, got, w)
		}
	}
	// Every tagged constant that is plausible to hardcode should also have a
	// dimension tag.
	for name := range unitsConstValues {
		if _, ok := unitsTags[name]; !ok {
			t.Errorf("%s has a value entry but no dimension tag", name)
		}
	}
}

func TestSigDigits(t *testing.T) {
	cases := []struct {
		text string
		want int
	}{
		{"14.399645478", 11},
		{"8.617333262e-5", 10},
		{"14.4", 3},
		{"1.0", 2},
		{"0.00125", 3},
		{"1_4.39", 4},
	}
	for _, c := range cases {
		if got := sigDigits(c.text); got != c.want {
			t.Errorf("sigDigits(%q) = %d, want %d", c.text, got, c.want)
		}
	}
}
