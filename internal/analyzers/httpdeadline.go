package analyzers

import (
	"go/ast"
	"go/types"
)

// httpDeadlineFuncs are the net/http package-level conveniences that run on
// the deadline-less defaults: DefaultServeMux servers with zero timeouts and
// DefaultClient requests that wait forever. In a daemon that supervises
// multi-hour simulation campaigns, one silent peer pins a goroutine (or a
// whole drain) indefinitely.
var httpDeadlineFuncs = map[string]string{
	"ListenAndServe":    "serves with no ReadHeaderTimeout: a client that opens a connection and goes silent pins a goroutine forever",
	"ListenAndServeTLS": "serves with no ReadHeaderTimeout: a client that opens a connection and goes silent pins a goroutine forever",
	"Serve":             "serves with no ReadHeaderTimeout: a client that opens a connection and goes silent pins a goroutine forever",
	"ServeTLS":          "serves with no ReadHeaderTimeout: a client that opens a connection and goes silent pins a goroutine forever",
	"Get":               "uses http.DefaultClient, which has no Timeout: a stalled server blocks the caller forever",
	"Post":              "uses http.DefaultClient, which has no Timeout: a stalled server blocks the caller forever",
	"PostForm":          "uses http.DefaultClient, which has no Timeout: a stalled server blocks the caller forever",
	"Head":              "uses http.DefaultClient, which has no Timeout: a stalled server blocks the caller forever",
}

// HTTPDeadline flags HTTP server and client construction without I/O
// deadlines: http.Server composite literals that set no ReadHeaderTimeout (or
// ReadTimeout), http.Client literals that set no Timeout, and the net/http
// package-level helpers (ListenAndServe, Serve, Get, Post, PostForm, Head)
// that bake the deadline-less defaults in. The serve daemon's availability
// argument assumes every accept loop and every outbound request eventually
// times out; a reviewed //mdm:httpok -- suppression marks the sites where an
// unbounded wait is the intended behaviour (e.g. a test client whose test
// binary already carries a deadline).
var HTTPDeadline = &Analyzer{
	Name:     "httpdeadline",
	Doc:      "flag net/http servers and clients constructed without I/O deadlines",
	Suppress: "httpok",
	Run:      runHTTPDeadline,
}

func runHTTPDeadline(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					// Methods are fine: (*http.Server).Serve runs with whatever
					// deadlines its receiver carries; only the package-level
					// helpers hard-code the deadline-less defaults.
					return true
				}
				if why, ok := httpDeadlineFuncs[fn.Name()]; ok {
					pass.Reportf(n.Pos(), "http.%s %s; build an http.Server/http.Client with explicit timeouts instead", fn.Name(), why)
				}
			case *ast.CompositeLit:
				switch httpNamedType(pass.Info, n) {
				case "Server":
					if !hasField(n, "ReadHeaderTimeout") && !hasField(n, "ReadTimeout") {
						pass.Reportf(n.Pos(), "http.Server literal sets no ReadHeaderTimeout (or ReadTimeout): a client that opens a connection and goes silent pins a goroutine forever")
					}
				case "Client":
					if !hasField(n, "Timeout") {
						pass.Reportf(n.Pos(), "http.Client literal sets no Timeout: a stalled server blocks every request on this client forever")
					}
				}
			}
			return true
		})
	}
}

// httpNamedType returns the type name of a composite literal when it is a
// named net/http type, "" otherwise.
func httpNamedType(info *types.Info, lit *ast.CompositeLit) string {
	tv, ok := info.Types[lit]
	if !ok {
		return ""
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
		return ""
	}
	return obj.Name()
}

// hasField reports whether a keyed composite literal sets the named field.
func hasField(lit *ast.CompositeLit, name string) bool {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	return false
}
