package analyzers

import (
	"go/ast"
	"strings"
)

// rawIOFuncs are the os-package calls that create, mutate or replace files
// directly. Durable run state written through them silently skips the
// storage layer's crash discipline — atomic replace, file fsync, directory
// fsync — and the fault filesystem's injection points, so a kill test can
// never reach the code path and a real kill can tear it.
var rawIOFuncs = map[string]bool{
	"OpenFile":   true,
	"Create":     true,
	"CreateTemp": true,
	"Rename":     true,
	"WriteFile":  true,
}

// rawIOExemptPkgs may touch os file APIs directly: internal/store IS the
// wrapper layer the rest of the tree must go through.
var rawIOExemptPkgs = map[string]bool{
	"mdm/internal/store": true,
}

// RawIO flags direct os file-writing calls (os.OpenFile, os.Create,
// os.CreateTemp, os.Rename, os.WriteFile) outside internal/store. The
// crash-safe storage layer (store.FS) is the only sanctioned route to
// durable run state — checkpoints and journals written through it get the
// atomic-replace + fsync discipline and stay reachable by the FaultFS crash
// matrix. Sites that write genuinely non-durable output (trajectory dumps,
// profiles, vet reports: lose-on-crash is acceptable and re-runnable) carry
// reviewed //mdm:rawiook -- suppressions. Test files are exempt: tests
// fabricate broken files on purpose.
var RawIO = &Analyzer{
	Name:     "rawio",
	Doc:      "flag raw os file writes outside internal/store (bypasses the crash-safe storage layer)",
	Suppress: "rawiook",
	Run:      runRawIO,
}

func runRawIO(pass *Pass) {
	if rawIOExemptPkgs[pass.Path] {
		return
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.FileStart).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" || !rawIOFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"os.%s bypasses the crash-safe storage layer; durable run state must go through a store.FS (internal/store) so it gets atomic replace, fsync and fault injection", fn.Name())
			return true
		})
	}
}
