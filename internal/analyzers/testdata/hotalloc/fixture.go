// Fixtures for the hotalloc analyzer: per-step allocation patterns (growing
// append, Sprintf, string concatenation, capturing go closures) in stepflow
// code undo the ~10 allocs/step arena work. Preallocated loops, error paths
// and cold functions stay quiet.
package fixture

import "fmt"

// step is the fixture's hot-path root; everything it reaches is stepflow.
//
//mdm:stepflow -- fixture: hot-path root
func step(xs []float64, names []string) string {
	grow(xs)
	prealloc(xs)
	appendOnce(xs)
	launch(xs)
	reviewedLaunch(xs)
	_ = fail(3)
	_ = label(1)
	return join(names)
}

// grow appends inside a loop — the growing-slice pattern.
func grow(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		out = append(out, x*2) // want `append in a loop in hot-path function grow grows its slice per step`
	}
	return out
}

// prealloc sizes the output up front and indexes — the sanctioned pattern.
func prealloc(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * 2
	}
	return out
}

// appendOnce appends outside any loop; a one-shot append is amortized by the
// caller and not flagged.
func appendOnce(xs []float64) []float64 {
	return append(xs, 1)
}

// label formats on the step path.
func label(n int) string {
	return fmt.Sprintf("step %d", n) // want `fmt.Sprintf in hot-path function label allocates on every call`
}

// join concatenates strings in a loop.
func join(names []string) string {
	s := ""
	for _, n := range names {
		s = s + n // want `string concatenation in hot-path function join allocates on every call`
	}
	return s
}

// fail builds an error — fmt.Errorf is exempt, error paths run on failure.
func fail(n int) error {
	return fmt.Errorf("step %d failed", n)
}

// launch starts a goroutine whose closure captures outer state.
func launch(xs []float64) {
	done := make(chan struct{})
	go func() { // want `go statement in hot-path function launch captures xs`
		_ = xs[0]
		close(done)
	}()
	<-done
}

// reviewedLaunch carries a justified suppression on the same pattern.
func reviewedLaunch(xs []float64) {
	done := make(chan struct{})
	//mdm:hotallocok -- fixture: one launch per call, joined immediately below
	go func() {
		_ = xs[0]
		close(done)
	}()
	<-done
}

// coldGrow is the offending pattern off the hot path — must not fire.
func coldGrow(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
