package fixture

import (
	"net"
	"net/http"
	"time"
)

// Servers: the accept loop must carry a header deadline.

func serveDefaults() error {
	return http.ListenAndServe(":8080", nil) // want "http.ListenAndServe serves with no ReadHeaderTimeout"
}

func serveListener(ln net.Listener) error {
	return http.Serve(ln, nil) // want "http.Serve serves with no ReadHeaderTimeout"
}

func serverNoTimeouts() *http.Server {
	return &http.Server{Addr: ":8080"} // want "http.Server literal sets no ReadHeaderTimeout"
}

func serverWriteOnly() *http.Server {
	return &http.Server{ // want "http.Server literal sets no ReadHeaderTimeout"
		Addr:         ":8080",
		WriteTimeout: 30 * time.Second,
	}
}

func serverHeaderDeadline() *http.Server {
	return &http.Server{
		Addr:              ":8080",
		ReadHeaderTimeout: 5 * time.Second,
	}
}

func serverReadDeadline() *http.Server {
	return &http.Server{
		Addr:        ":8080",
		ReadTimeout: 30 * time.Second,
	}
}

// Clients: every outbound request must eventually time out.

func getDefaultClient(url string) (*http.Response, error) {
	return http.Get(url) // want "http.Get uses http.DefaultClient"
}

func postDefaultClient(url string) (*http.Response, error) {
	return http.Post(url, "application/json", nil) // want "http.Post uses http.DefaultClient"
}

func clientNoTimeout() *http.Client {
	return &http.Client{} // want "http.Client literal sets no Timeout"
}

func clientWithTimeout() *http.Client {
	return &http.Client{Timeout: 10 * time.Second}
}

// A reviewed suppression is the sanctioned escape hatch.
func getSuppressed(url string) (*http.Response, error) {
	return http.Get(url) //mdm:httpok -- fixture: documents the reviewed-suppression form
}
