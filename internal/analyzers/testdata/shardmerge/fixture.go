// Fixtures for the shardmerge analyzer: floating-point accumulation into
// captured state from goroutine or worker closures makes the reduction order
// a scheduling artifact. Disjoint per-shard writes, serial pair iterators and
// cold functions stay quiet.
package fixture

import (
	"mdm/internal/cellindex"
	"mdm/internal/vec"
)

// step is the fixture's hot-path root; everything it reaches is stepflow.
//
//mdm:stepflow -- fixture: hot-path root
func step(xs []float64, sorted *cellindex.Sorted) float64 {
	total := gather(xs)
	workers(xs)
	total += disjoint(xs)
	total += serialPairs(sorted)
	total += reviewed(xs)
	return total
}

// runShard stands in for a worker-pool submission.
func runShard(f func(shard int)) { f(0) }

// gather accumulates into a captured float from a goroutine.
func gather(xs []float64) float64 {
	total := 0.0
	done := make(chan struct{})
	go func() {
		for _, x := range xs {
			total += x // want `goroutine in hot-path function gather accumulates into captured float variable total`
		}
		close(done)
	}()
	<-done
	return total
}

// workers accumulates into a captured slice element from a worker closure.
func workers(sums []float64) {
	runShard(func(shard int) {
		sums[0] += float64(shard) // want `worker closure in hot-path function workers accumulates into captured shared float slice sums`
	})
}

// disjoint writes each shard's own slot with plain assignment and merges
// after the join — the sanctioned pattern.
func disjoint(xs []float64) float64 {
	partial := make([]float64, 2)
	runShard(func(shard int) {
		partial[shard] = xs[0]
	})
	return partial[0] + partial[1]
}

// serialPairs accumulates inside a closure handed to the known-serial pair
// iterator; it runs on the calling goroutine in fixed cell order, so the
// exemption applies.
func serialPairs(s *cellindex.Sorted) float64 {
	pot := 0.0
	s.ForEachOrderedPair(func(i, j int, rij vec.V) {
		pot += rij.X
	})
	return pot
}

// reviewed carries a justified suppression on an otherwise-flagged pattern.
func reviewed(xs []float64) float64 {
	total := 0.0
	done := make(chan struct{})
	go func() {
		for _, x := range xs {
			total += x //mdm:shardmergeok -- fixture: single goroutine, sequenced by the channel join below
		}
		close(done)
	}()
	<-done
	return total
}

// coldGather is the offending pattern off the hot path — must not fire.
func coldGather(xs []float64) float64 {
	total := 0.0
	done := make(chan struct{})
	go func() {
		for _, x := range xs {
			total += x
		}
		close(done)
	}()
	<-done
	return total
}
