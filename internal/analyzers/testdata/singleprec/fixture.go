// Fixtures for the singleprec analyzer. This package is type-checked under
// the import path mdm/internal/mdgrape2, so its float32-signature functions
// are treated as MDGRAPE-2 pipeline stages.
package fixture

import "math"

// pipeOK is a clean float32 pipeline stage.
func pipeOK(a, b float32) float32 { return a*b + 1 }

// pipeBad computes in double precision inside the pipeline.
func pipeBad(x float32) float32 {
	y := float64(x) * 2 // want `float64 conversion in pipeline function pipeBad` `float64 arithmetic in pipeline function pipeBad`
	s := math.Sqrt(y)   // want `float64 math\.Sqrt call in pipeline function pipeBad`
	return float32(s)
}

// hostSide carries float64 in its signature, so it is host code by
// construction: double-precision math is its job.
func hostSide(x float64) float64 { return math.Sqrt(x) * 0.5 }

// accumulate matches the documented hardware exception: float64 appears in
// the signature (the double-precision force accumulator), so it is exempt.
func accumulate(acc *float64, fs []float32) {
	for _, f := range fs {
		*acc += float64(f)
	}
}

// pipeSuppressed widens at a reviewed boundary.
func pipeSuppressed(x float32) float32 {
	xf := float64(x)                         //mdm:float64ok -- fixture: exact widening, no double rounding
	if math.IsNaN(xf) || math.IsInf(xf, 0) { // predicates never compute
		return 0
	}
	return x
}

// pipeDocSuppressed is suppressed for its whole body via the doc comment.
//
//mdm:float64ok -- fixture: reviewed host readout helper
func pipeDocSuppressed(x float32) float32 {
	return float32(float64(x) * math.Pi / math.Pi)
}
