// Fixtures for the goroutineloop analyzer: goroutines launched in loops must
// not capture the loop variable — data-parallel loops go through the
// parallelize pool, and explicit launches pass the variable as an argument.
package fixture

import "sync"

func process(int) {}

// capturedRange launches one goroutine per element, capturing the loop
// variable in the closure.
func capturedRange(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() { // want `goroutine launched in a loop captures loop variable it`
			defer wg.Done()
			process(it)
		}()
	}
	wg.Wait()
}

// capturedIndex captures a classic three-clause loop counter.
func capturedIndex(n int) {
	for i := 0; i < n; i++ {
		go func() { // want `goroutine launched in a loop captures loop variable i`
			process(i)
		}()
	}
}

// passedAsArgument is the sanctioned explicit pattern: the loop variable
// enters the goroutine as a call argument, so the closure owns a copy.
func passedAsArgument(items []int) {
	for _, it := range items {
		go func(v int) {
			process(v)
		}(it)
	}
}

// outerCapture closes over state that is not the loop variable; that is not
// this analyzer's concern.
func outerCapture(items []int) {
	total := 0
	for range items {
		go func() {
			total++
		}()
	}
}

// noGoroutine uses the loop variable synchronously.
func noGoroutine(items []int) {
	for _, it := range items {
		process(it)
	}
}

// reviewed is a justified capture, suppressed like any other mdmvet finding.
func reviewed(items []int) {
	for _, it := range items {
		//mdm:goloopok -- single-element slice, sequenced by the channel below
		go func() {
			process(it)
		}()
	}
}
