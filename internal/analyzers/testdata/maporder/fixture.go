// Fixtures for the maporder analyzer: map iteration whose body is
// order-sensitive (accumulator writes, output appends, float arithmetic)
// breaks bit-identity in stepflow code; order-free bodies and cold-path
// walks stay quiet.
package fixture

import "sort"

// step is the fixture's hot-path root; everything it reaches is stepflow.
//
//mdm:stepflow -- fixture: hot-path root
func step(m map[string]float64, set map[string]bool) float64 {
	total := sumUnordered(m)
	total += sumSorted(m)
	collect(m)
	countEntries(m)
	drain(set)
	total += reviewed(m)
	return total
}

// sumUnordered accumulates a float across a raw map range.
func sumUnordered(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `map iteration in hot-path function sumUnordered writes total, declared outside the loop`
		total += v
	}
	return total
}

// sumSorted is the sanctioned pattern: collect keys, sort, iterate the
// slice. The collection loop is the recognized idiom and must not fire.
func sumSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// collect appends map entries to an outer slice — the output order leaks.
func collect(m map[string]float64) []string {
	var out []string
	for k := range m { // want `map iteration in hot-path function collect writes out, declared outside the loop`
		out = append(out, k)
	}
	return out
}

// countEntries increments an outer counter per entry.
func countEntries(m map[string]float64) int {
	n := 0
	for range m { // want `map iteration in hot-path function countEntries increments n, declared outside the loop`
		n++
	}
	return n
}

// drain deletes every entry — no writes to outer state, no float math, so
// the body is order-free and must not fire.
func drain(set map[string]bool) {
	for k := range set {
		delete(set, k)
	}
}

// reviewed carries a justified suppression on an otherwise-flagged loop.
func reviewed(m map[string]float64) float64 {
	n := 0
	//mdm:maporderok -- fixture: integer count, order-independent by construction
	for range m {
		n++
	}
	return float64(n)
}

// coldSum is byte-for-byte the offending pattern, but unreachable from the
// stepflow root — the analyzer must stay quiet off the hot path.
func coldSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}
