// Fixtures for the recvwithin analyzer.
package fixture

import (
	"time"

	"mdm/internal/mpi"
)

const (
	tagData  = 1
	tagReply = 2
)

func unbounded(c *mpi.Comm) {
	_, _ = c.Recv(0, tagData)         // want `unbounded mpi Recv blocks forever`
	_, _ = c.RecvFloat64s(0, tagData) // want `unbounded mpi RecvFloat64s blocks forever`
	_ = c.Barrier()                   // want `unbounded mpi Barrier blocks forever`
}

func bounded(c *mpi.Comm) {
	_, _ = c.RecvWithin(0, tagData, time.Second)
	_, _ = c.RecvFloat64sWithin(0, tagReply, time.Second)
	_ = c.BarrierWithin(time.Second)
}

//mdm:recvok -- fixture: the world deadline (SetTimeout) bounds these receives
func reviewed(c *mpi.Comm) {
	_, _ = c.Recv(0, tagData)
	_ = c.Barrier()
}

func reviewedLine(c *mpi.Comm) {
	_, _ = c.RecvFloat64s(0, tagReply) //mdm:recvok -- fixture: reviewed bounded receive
}

// The sending side cannot block on a dead peer in this substrate: never
// flagged.
func sender(c *mpi.Comm) error { return c.Send(1, tagData, nil) }
