package fixture

import "mdm/internal/mpi"

// Test files are exempt: the go test timeout already bounds every blocking
// receive, so none of these may be flagged.
func blockingInTest(c *mpi.Comm) {
	_, _ = c.Recv(0, tagData)
	_, _ = c.RecvFloat64s(0, tagReply)
	_ = c.Barrier()
}
