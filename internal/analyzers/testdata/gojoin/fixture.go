// Fixtures for the gojoin analyzer: a launched goroutine must signal
// completion — channel send, close, or sync.WaitGroup Done/Wait — so the
// launcher can join it and collect its error.
package fixture

import (
	"fmt"
	"sync"
)

func work() error { return nil }

// fireAndForget launches a goroutine nothing can ever wait for.
func fireAndForget() {
	go func() { // want `goroutine body has no join path`
		_ = work()
	}()
}

// namedDetached launches a package-local function whose body never signals.
func namedDetached() {
	go logForever() // want `goroutine body has no join path`
}

func logForever() {
	for {
		_ = work()
	}
}

// joinedByChannel sends its result on a channel the launcher drains.
func joinedByChannel() error {
	errc := make(chan error, 1)
	go func() {
		errc <- work()
	}()
	return <-errc
}

// joinedByClose signals completion by closing a done channel, deferred so
// every return path signals.
func joinedByClose() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = work()
	}()
	<-done
}

// joinedByWaitGroup is the classic fan-out/fan-in shape.
func joinedByWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = work()
		}(i)
	}
	wg.Wait()
}

// namedJoined launches a package-local method-free function that closes its
// done channel; resolving the declaration body must clear it.
func namedJoined() {
	go monitor()
	<-monitorDone
}

var monitorDone = make(chan struct{})

func monitor() {
	defer close(monitorDone)
	_ = work()
}

// crossPackage launches a function whose body is not loaded here; the
// analyzer stays silent rather than guessing.
func crossPackage() {
	go fmt.Println("detached but unresolvable")
}

// reviewedDetached is a process-lifetime goroutine, detached by design.
func reviewedDetached() {
	//mdm:gojoinok -- process-lifetime watcher, never joined by design
	go func() {
		for {
			_ = work()
		}
	}()
}
