// Fixtures for the mpitags analyzer.
package fixture

import (
	"time"

	"mdm/internal/mpi"
)

// Named tags in the style of internal/core.
const (
	tagPing   = 1
	tagPong   = 2
	tagOrphan = 3
	tagGhost  = 4
	tagNoise  = 9
	tagBound  = 10
	tagLagged = 11
)

func paired(c *mpi.Comm) error {
	// Matched Send/Recv pairs: silent.
	if err := c.Send(1, tagPing, nil); err != nil {
		return err
	}
	if _, err := c.Recv(0, tagPing); err != nil {
		return err
	}
	if err := c.Send(0, tagPong, []float64{1}); err != nil {
		return err
	}
	if _, err := c.RecvFloat64s(1, tagPong); err != nil {
		return err
	}
	// The wildcard is receive-only by design.
	if _, err := c.Recv(0, mpi.AnyTag); err != nil {
		return err
	}
	return nil
}

func literals(c *mpi.Comm) {
	_ = c.Send(1, 7, nil)        // want `mpi Send with untyped literal tag 7`
	_, _ = c.Recv(1, -3)         // want `mpi Recv with untyped literal tag -3`
	_, _ = c.RecvFloat64s(0, 12) // want `mpi RecvFloat64s with untyped literal tag 12`
	_ = c.Send(1, 11, nil)       //mdm:tagok -- fixture: reviewed one-shot probe
	_ = c.Send(1, tagNoise, nil)
	_, _ = c.Recv(1, tagNoise)
}

func oneSided(c *mpi.Comm) {
	_ = c.Send(1, tagOrphan, nil) // want `tag constant tagOrphan is sent but never received`
	_, _ = c.Recv(1, tagGhost)    // want `tag constant tagGhost is received but never sent`
}

// The deadline-aware receive variants carry the same tag discipline.
func deadlines(c *mpi.Comm) {
	_ = c.Send(1, tagBound, nil)
	_, _ = c.RecvWithin(0, tagBound, time.Second)
	_ = c.Send(0, tagLagged, []float64{1})
	_, _ = c.RecvFloat64sWithin(1, tagLagged, time.Second)
	_, _ = c.RecvWithin(1, 33, time.Second)         // want `mpi RecvWithin with untyped literal tag 33`
	_, _ = c.RecvFloat64sWithin(1, 34, time.Second) // want `mpi RecvFloat64sWithin with untyped literal tag 34`
	_, _ = c.RecvWithin(0, mpi.AnyTag, time.Second) // wildcard stays exempt
}

// worldSize is unrelated API surface: no tag argument, never flagged.
func worldSize(c *mpi.Comm) int { return c.Size() }
