// Fixtures for the mpitags analyzer.
package fixture

import "mdm/internal/mpi"

// Named tags in the style of internal/core.
const (
	tagPing   = 1
	tagPong   = 2
	tagOrphan = 3
	tagGhost  = 4
	tagNoise  = 9
)

func paired(c *mpi.Comm) error {
	// Matched Send/Recv pairs: silent.
	if err := c.Send(1, tagPing, nil); err != nil {
		return err
	}
	if _, err := c.Recv(0, tagPing); err != nil {
		return err
	}
	if err := c.Send(0, tagPong, []float64{1}); err != nil {
		return err
	}
	if _, err := c.RecvFloat64s(1, tagPong); err != nil {
		return err
	}
	// The wildcard is receive-only by design.
	if _, err := c.Recv(0, mpi.AnyTag); err != nil {
		return err
	}
	return nil
}

func literals(c *mpi.Comm) {
	_ = c.Send(1, 7, nil)        // want `mpi Send with untyped literal tag 7`
	_, _ = c.Recv(1, -3)         // want `mpi Recv with untyped literal tag -3`
	_, _ = c.RecvFloat64s(0, 12) // want `mpi RecvFloat64s with untyped literal tag 12`
	_ = c.Send(1, 11, nil)       //mdm:tagok fixture: reviewed one-shot probe
	_ = c.Send(1, tagNoise, nil)
	_, _ = c.Recv(1, tagNoise)
}

func oneSided(c *mpi.Comm) {
	_ = c.Send(1, tagOrphan, nil) // want `tag constant tagOrphan is sent but never received`
	_, _ = c.Recv(1, tagGhost)    // want `tag constant tagGhost is received but never sent`
}

// worldSize is unrelated API surface: no tag argument, never flagged.
func worldSize(c *mpi.Comm) int { return c.Size() }
