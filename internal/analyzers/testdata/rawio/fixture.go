// Fixtures for the rawio analyzer: direct os file-writing calls bypass the
// crash-safe storage layer (internal/store) — no atomic replace, no fsync
// discipline, invisible to the fault filesystem's crash matrix.
package fixture

import (
	"io"
	"os"
)

// saveState writes durable state with raw os calls: every write-side call
// fires.
func saveState(data []byte) error {
	f, err := os.Create("state.tmp") // want `os.Create bypasses the crash-safe storage layer`
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename("state.tmp", "state") // want `os.Rename bypasses the crash-safe storage layer`
}

// appendLog opens a file for appending without the store layer.
func appendLog(line string) error {
	f, err := os.OpenFile("log", os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644) // want `os.OpenFile bypasses the crash-safe storage layer`
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.WriteString(f, line)
	return err
}

// dumpAll uses the one-shot and temp-file helpers.
func dumpAll(data []byte) error {
	if err := os.WriteFile("dump", data, 0o644); err != nil { // want `os.WriteFile bypasses the crash-safe storage layer`
		return err
	}
	_, err := os.CreateTemp("", "scratch") // want `os.CreateTemp bypasses the crash-safe storage layer`
	return err
}

// readSide only reads: read paths are the store layer's concern too, but
// they cannot tear durable state, so the analyzer leaves them alone.
func readSide() ([]byte, error) {
	data, err := os.ReadFile("state")
	if err != nil {
		return nil, err
	}
	_ = os.Remove("scratch")
	f, err := os.Open("state")
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return data, nil
}

// reviewed writes a lose-on-crash artifact (a trajectory dump) and carries
// the sanctioned suppression.
func reviewed(data []byte) error {
	//mdm:rawiook -- trajectory dump: re-runnable output, not durable run state
	return os.WriteFile("traj.xyz", data, 0o644)
}
