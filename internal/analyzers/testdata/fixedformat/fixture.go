// Fixtures for the fixedformat analyzer: positive findings carry want
// comments, everything else must stay silent.
package fixture

import "mdm/internal/fixed"

func constantFormats() {
	_ = fixed.F(1, 22)  // ok: the WINE-2 trig format, 24 bits
	_ = fixed.F(30, 30) // ok: 61 bits
	_ = fixed.F(31, 30) // ok: exactly the 62-bit boundary
	_ = fixed.F(31, 31) // want `format s31\.31 is 63 bits wide, exceeding the 62-bit carrier limit`
	_ = fixed.F(0, 0)   // want `format s0\.0 has no value bits`
	_ = fixed.F(70, 0)  // want `format s70\.0 is 71 bits wide`

	_ = fixed.Format{Int: 40, Frac: 30} // want `format s40\.30 is 71 bits wide`
	_ = fixed.Format{Int: 10, Frac: 20} // ok: 31 bits
	_ = fixed.Format{Frac: 22}          // ok: 23 bits, omitted Int
	_ = fixed.Format{Frac: 65}          // want `format s0\.65 is 66 bits wide`
}

func halfConstantFormats(w uint) {
	_ = fixed.F(62, w) // want `Int width 62 alone exceeds the 62-bit carrier`
	_ = fixed.F(w, 62) // want `Frac width 62 alone exceeds the 62-bit carrier`
	_ = fixed.F(20, w) // ok: w is unconstrained but not a product width
}

func productWidths(aFrac, bFrac uint) {
	prod := aFrac + bFrac
	_ = fixed.F(30, prod)       // want `Int 30 on top of a product-width Frac`
	_ = fixed.F(0, prod)        // ok: no integer bits on top of the product
	_ = fixed.WideFor(prod)     // ok: the checked constructor for product widths
	_ = fixed.F(2, aFrac)       // ok: single width, not a sum
	_ = fixed.F(4, aFrac+bFrac) // want `Int 4 on top of a product-width Frac`

	_ = fixed.MulRound(1, 1, 40, 30, 50)       // want `product fractional width 40\+30 exceeds 61 bits`
	_ = fixed.MulRound(1, 1, 20, 22, 42)       // ok: the WINE-2 DFT product
	_ = fixed.MulRound(1, 1, 10, 10, 70)       // want `output fractional width 70 exceeds 61 bits`
	_ = fixed.MulRound(1, 1, aFrac, bFrac, 20) // ok: widths not statically known
}

func suppressed() {
	_ = fixed.F(40, 40) //mdm:fixedok -- fixture: reviewed, never materialized
}
