// Fixtures for the unitsmix analyzer.
package fixture

import "mdm/internal/units"

func mixing(n int) {
	t := units.KineticToKelvin(1.5, n)
	e := units.KelvinToKinetic(300, n)

	_ = t + e // want `adding units\.KineticToKelvin \[K\] with units\.KelvinToKinetic \[eV\]`
	_ = e - t // want `subtracting units\.KelvinToKinetic \[eV\] with units\.KineticToKelvin \[K\]`
	_ = t > e // want `comparing units\.KineticToKelvin \[K\] with units\.KelvinToKinetic \[eV\]`

	_ = units.Coulomb + units.Boltzmann // want `adding units\.Coulomb \[eV·Å/e²\] with units\.Boltzmann \[eV/K\]`
	_ = units.MassNa + units.MassCl     // ok: both amu
	_ = t + t                           // ok: same dimension
	_ = units.Boltzmann * t             // ok: multiplication is the conversion idiom
	_ = e / units.Boltzmann             // ok
	_ = t + units.KineticToKelvin(2, n) // ok: both kelvin
}

func hardcoded() {
	_ = 14.399645478   // want `literal 14\.399645478 duplicates units\.Coulomb`
	_ = 8.617333262e-5 // want `literal 8\.617333262e-5 duplicates units\.Boltzmann`
	_ = 14.399645478   //mdm:unitsok -- fixture: doc mirror of the constant
	_ = 14.4           // ok: too few significant digits to be a copy
	_ = 160.21766208   // want `literal 160\.21766208 duplicates units\.EVPerA3ToGPa`
	_ = 2.718281828    // ok: matches no units constant
}
