// Fixtures for the batched hot path: the stepflow fact must propagate from a
// batch-driver root through the per-slot state swap and the interface
// dispatch into the shared machine, the way core.BatchMachine.Step reaches
// Machine.Forces through slotField — otherwise the determinism analyzers
// would silently skip everything the batch path executes.
package fixture

// state is one slot's trajectory-dependent scratch.
type state struct{ xs []float64 }

// field is the dispatch seam, shaped like md.ForceField.
type field interface {
	forces(n int) []float64
}

// machine is the shared evaluator every slot runs through.
type machine struct{ cur state }

// swapField adapts one slot to field: adopt the slot state, delegate to the
// shared machine, stash the state back — the batch swap pattern.
type swapField struct {
	m     *machine
	slots []state
	i     int
}

func (f swapField) forces(n int) []float64 {
	f.m.cur = f.slots[f.i]
	out := f.m.eval(n)
	f.slots[f.i] = f.m.cur
	return out
}

// eval allocates per call; it is hot only because the batch root reaches it
// through the interface fan-out and the swap adapter.
func (m *machine) eval(n int) []float64 {
	var out []float64
	for i := 0; i < n; i++ {
		out = append(out, float64(i)) // want `append in a loop in hot-path function eval grows its slice per step`
	}
	return out
}

// stepBatch is the batched per-step driver.
//
//mdm:stepflow -- fixture: batch-driver root
func stepBatch(ff field, k int) {
	for i := 0; i < k; i++ {
		_ = ff.forces(k)
	}
}

// coldEval is the same growing-append pattern off the batch path — must stay
// quiet.
func coldEval(n int) []float64 {
	var out []float64
	for i := 0; i < n; i++ {
		out = append(out, float64(i))
	}
	return out
}
