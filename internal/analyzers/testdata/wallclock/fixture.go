// Fixtures for the wallclock analyzer: clock reads and RNG draws in stepflow
// code diverge between a live run and a journal replay. Duration arithmetic
// and cold-path timing stay quiet.
package fixture

import (
	"math/rand"
	"time"
)

// step is the fixture's hot-path root; everything it reaches is stepflow.
//
//mdm:stepflow -- fixture: hot-path root
func step(n int) time.Duration {
	tick()
	jitter(n)
	waitOut()
	durationMath()
	liveness()
	return sinceStart(time.Unix(0, 0))
}

// tick samples the wall clock on the step path.
func tick() {
	_ = time.Now() // want `time.Now in hot-path function tick`
}

// jitter draws from the global RNG on the step path.
func jitter(n int) int {
	return rand.Intn(n + 1) // want `math/rand.Intn in hot-path function jitter`
}

// sinceStart measures elapsed wall time on the step path.
func sinceStart(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in hot-path function sinceStart`
}

// waitOut sleeps on the step path.
func waitOut() {
	time.Sleep(time.Millisecond) // want `time.Sleep in hot-path function waitOut`
}

// durationMath manipulates durations without reading the clock — fine.
func durationMath() time.Duration {
	d := 3 * time.Second
	return d / 2
}

// liveness carries a reviewed suppression (the watchdog-beat pattern).
func liveness() time.Time {
	return time.Now() //mdm:wallclockok -- fixture: liveness clock only, never enters simulation state
}

// coldTiming is the offending pattern off the hot path — must not fire.
func coldTiming() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}
