package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc is a heuristic allocation lint for the hot path. PR 5 drove the
// step path down to ~10 heap allocations per step by arena-ing every buffer a
// Forces call needs; an un-preallocated append, a fmt.Sprintf, a string
// concatenation or a captured-closure goroutine launch quietly undoes that —
// each is a per-step allocation (and for append, an amortized-copy one) that
// no test fails on. Flagged patterns in stepflow functions:
//
//   - append inside a loop: the growing-slice pattern; preallocate with
//     make(cap) in the constructor and index, or reuse an arena buffer.
//     Appends into a slice the function visibly preallocated — assigned from
//     a make with an explicit capacity, or rebound to x[:0] (the filter-in-
//     place idiom) — are exempt: they cannot regrow.
//   - fmt.Sprintf / fmt.Sprint / fmt.Sprintln: always allocates (fmt.Errorf
//     is exempt — error paths run once, on failure)
//   - non-constant string concatenation
//   - `go func(){...}` capturing outer variables: closure + goroutine per call
//
// Amortized allocations (a rebuild guarded by a geometry check, a buffer
// grown once then reused) are real but bounded; they carry reviewed
// //mdm:hotallocok -- suppressions naming the amortization.
var HotAlloc = &Analyzer{
	Name:     "hotalloc",
	Doc:      "flag per-step allocation patterns (growing append, Sprintf, string concat, capturing go closures) in stepflow code",
	Suppress: "hotallocok",
	Run:      runHotAlloc,
}

// sprintFuncs are the fmt functions that allocate on every call on the
// success path.
var sprintFuncs = map[string]bool{"Sprintf": true, "Sprint": true, "Sprintln": true}

func runHotAlloc(pass *Pass) {
	stepFlowFuncs(pass, func(fd *ast.FuncDecl, fn *types.Func) {
		checkAllocs(pass, fd, fd.Body, preallocatedRoots(pass, fd), false)
	})
}

// preallocatedRoots collects the base objects the function visibly sizes
// before appending: assigned from a 3-argument make (explicit capacity) or
// from a [:0] reslice of an existing backing array. Appends into those
// cannot regrow (the [:0] case amortizes across calls), so they are not
// per-step allocation bugs. Field assignments exempt the whole receiver —
// coarse, but a function that sizes one field of a buffer struct is sizing
// the struct.
func preallocatedRoots(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			sized := false
			switch e := ast.Unparen(rhs).(type) {
			case *ast.CallExpr:
				id, ok := ast.Unparen(e.Fun).(*ast.Ident)
				sized = ok && id.Name == "make" && isBuiltin(pass.Info, id) && len(e.Args) == 3
			case *ast.SliceExpr:
				lit, ok := e.High.(*ast.BasicLit)
				sized = ok && e.Low == nil && lit.Value == "0"
			}
			if !sized {
				continue
			}
			if obj := lvalueRoot(pass.Info, as.Lhs[i]); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// checkAllocs walks one statement tree; inLoop tracks whether the walk is
// inside a for/range body of the function (where appends grow per step).
func checkAllocs(pass *Pass, fd *ast.FuncDecl, n ast.Node, prealloc map[types.Object]bool, inLoop bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch e := m.(type) {
		case *ast.ForStmt:
			if e.Body != nil {
				checkAllocs(pass, fd, e.Body, prealloc, true)
			}
			// Init/Cond/Post stay at the current loop depth.
			for _, sub := range []ast.Node{e.Init, e.Cond, e.Post} {
				if sub != nil {
					checkAllocs(pass, fd, sub, prealloc, inLoop)
				}
			}
			return false
		case *ast.RangeStmt:
			if e.Body != nil {
				checkAllocs(pass, fd, e.Body, prealloc, true)
			}
			return false
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(e.Call.Fun).(*ast.FuncLit); ok {
				if name := capturedVar(pass, lit); name != "" {
					pass.Reportf(e.Pos(),
						"go statement in hot-path function %s captures %s; the closure and goroutine allocate on every step — reuse a worker or pass state through a preallocated channel", fd.Name.Name, name)
				}
			}
			return true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && isBuiltin(pass.Info, id) && inLoop {
				if len(e.Args) > 0 && prealloc[lvalueRoot(pass.Info, e.Args[0])] {
					return true
				}
				pass.Reportf(e.Pos(),
					"append in a loop in hot-path function %s grows its slice per step; preallocate with make(…, cap) or reuse an arena buffer", fd.Name.Name)
				return true
			}
			if callee := calleeFunc(pass.Info, e); callee != nil && callee.Pkg() != nil &&
				callee.Pkg().Path() == "fmt" && sprintFuncs[callee.Name()] {
				pass.Reportf(e.Pos(),
					"fmt.%s in hot-path function %s allocates on every call; format off the step path or use a preallocated buffer", callee.Name(), fd.Name.Name)
			}
			return true
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if tv, ok := pass.Info.Types[e]; ok && tv.Value == nil && isString(tv.Type) {
					pass.Reportf(e.Pos(),
						"string concatenation in hot-path function %s allocates on every call; build the string off the step path", fd.Name.Name)
					return false // don't re-flag the nested operands of a + chain
				}
			}
			return true
		}
		return true
	})
}

// capturedVar names one variable the function literal captures from its
// enclosing function, or "" when the literal is self-contained.
func capturedVar(pass *Pass, lit *ast.FuncLit) string {
	// Objects defined inside the literal (params included) are not captures.
	local := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || local[obj] || obj.IsField() {
			return true
		}
		// Package-level variables are not per-call captures.
		if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
			return true
		}
		captured = obj.Name()
		return false
	})
	return captured
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isBuiltin reports whether id denotes a predeclared builtin function (so
// e.g. `append` is the real builtin, not a shadowing user function).
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}
