package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoJoin flags goroutines launched without a join or error-collection path.
// A goroutine whose body never signals completion — no channel send, no
// close, no sync.WaitGroup Done/Wait — cannot be awaited by its launcher, so
// its failure is invisible and its work may still be in flight when the
// launcher tears shared state down. That is exactly the bug class the force
// pipeline's unconditional join exists to prevent: the recovery ladder
// assumes no engine pass outlives its step. Launches of functions from other
// packages are not resolvable here and are left alone; deliberately detached
// process-lifetime goroutines carry a reviewed //mdm:gojoinok comment. Test
// files are exempt (hang tests wedge goroutines on purpose).
var GoJoin = &Analyzer{
	Name:     "gojoin",
	Doc:      "check launched goroutines signal completion via a channel or WaitGroup",
	Suppress: "gojoinok",
	Run:      runGoJoin,
}

func runGoJoin(pass *Pass) {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.FileStart).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := launchedBody(pass, gs)
			if body == nil || signalsCompletion(pass, body) {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine body has no join path (no channel send, close, or WaitGroup Done/Wait): the launcher cannot await it or collect its error")
			return true
		})
	}
}

// launchedBody resolves the body of the function a go statement launches: a
// function literal inline, or a same-package named function or method. Calls
// into other packages (or through function values) return nil — their bodies
// are not loaded here, and flagging what cannot be inspected would be noise.
func launchedBody(pass *Pass, gs *ast.GoStmt) *ast.BlockStmt {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident, *ast.SelectorExpr:
		fn := calleeFunc(pass.Info, gs.Call)
		if fn == nil || fn.Pkg() != pass.Pkg {
			return nil
		}
		return funcDeclBody(pass, fn)
	default:
		return nil
	}
}

// funcDeclBody finds the declaration body of a package-local function.
func funcDeclBody(pass *Pass, fn *types.Func) *ast.BlockStmt {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && pass.Info.Defs[fd.Name] == fn {
				return fd.Body
			}
		}
	}
	return nil
}

// signalsCompletion reports whether the body (including nested literals and
// deferred closures) contains a completion signal the launcher side can wait
// on: a channel send, a close, or a sync.WaitGroup Done/Wait.
func signalsCompletion(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
					break
				}
			}
			fn := calleeFunc(pass.Info, n)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
				(fn.Name() == "Done" || fn.Name() == "Wait") {
				found = true
			}
		}
		return !found
	})
	return found
}
