// Package atest is a minimal analysistest-style harness for the mdmvet
// analyzers: fixture files under internal/analyzers/testdata/<name>/ are
// type-checked against the real module and the produced diagnostics are
// matched against `// want "regexp"` comments, exactly in the style of
// golang.org/x/tools/go/analysis/analysistest.
package atest

import (
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mdm/internal/analyzers"
	"mdm/internal/analyzers/load"
)

// ModuleRoot returns the repository root, located relative to this source
// file.
func ModuleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("atest: no caller info")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", "..", ".."))
}

var (
	loaderOnce sync.Once
	loader     *load.Loader
	loaderErr  error
)

// Loader returns a process-wide loader for the module, so the `go list
// -export` walk happens once per test binary.
func Loader(t *testing.T) *load.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = load.NewLoader(ModuleRoot(t))
	})
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return loader
}

// FixtureDir returns the testdata directory of the named fixture.
func FixtureDir(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(ModuleRoot(t), "internal", "analyzers", "testdata", name)
}

// FixtureFiles returns the sorted .go files of the named fixture.
func FixtureFiles(t *testing.T, name string) []string {
	t.Helper()
	dir := FixtureDir(t, name)
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("atest: no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(files)
	return files
}

// Run type-checks the fixture directory testdata/<name> as a package with
// the given import path, applies the analyzer, and matches diagnostics
// against the fixture's want comments. Stepflow facts are computed over the
// fixture package itself, so //mdm:stepflow-rooted fixtures exercise the
// fact-dependent analyzers.
func Run(t *testing.T, a *analyzers.Analyzer, name, importPath string) {
	t.Helper()
	files := FixtureFiles(t, name)
	pkg, err := Loader(t).Check(importPath, FixtureDir(t, name), files)
	if err != nil {
		t.Fatalf("atest: fixture %s does not type-check: %v", name, err)
	}
	facts := analyzers.BuildFacts([]*load.Package{pkg})
	diags := analyzers.RunPackageFacts(pkg, []*analyzers.Analyzer{a}, facts)

	wants := collectWants(t, files)
	for _, d := range diags {
		key := posKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants extracts `// want "re" ["re" ...]` expectations per line.
func collectWants(t *testing.T, files []string) map[posKey][]*want {
	t.Helper()
	out := make(map[posKey][]*want)
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		base := filepath.Base(path)
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			rest := strings.TrimSpace(m[1])
			for rest != "" {
				quote := rest[0]
				if quote != '"' && quote != '`' {
					t.Fatalf("%s:%d: malformed want clause %q", base, i+1, rest)
				}
				end := 1
				for end < len(rest) && (rest[end] != quote || (quote == '"' && rest[end-1] == '\\')) {
					end++
				}
				if end >= len(rest) {
					t.Fatalf("%s:%d: unterminated want string", base, i+1)
				}
				quoted := rest[:end+1]
				rest = strings.TrimSpace(rest[end+1:])
				pattern, err := strconv.Unquote(quoted)
				if err != nil {
					t.Fatalf("%s:%d: bad want string %s: %v", base, i+1, quoted, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", base, i+1, pattern, err)
				}
				key := posKey{base, i + 1}
				out[key] = append(out[key], &want{re: re})
			}
		}
	}
	return out
}
