package analyzers

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Suppression audit: every //mdm:<key> comment is a reviewed exception to a
// machine-checked contract, and the review is only worth anything if its
// justification survives next to it. The audit walks every .go file of the
// module (fixtures under testdata included — hygiene is repo-wide), lists
// each suppression, and reports the ones that are malformed:
//
//   - unknown key (not a registered analyzer's suppress key, nor stepflow)
//   - missing " -- reason" separator, or an empty reason after it
//
// The canonical form is:
//
//	//mdm:<key> -- <why this exception is correct>
//
// `mdmvet -audit` prints the listing and fails on any problem; `make audit`
// and CI run it.

// A Suppression is one //mdm:<key> comment found in the tree.
type Suppression struct {
	Pos    token.Position
	Key    string
	Reason string // justification after " -- "; empty when malformed
	Raw    string // the comment line as written
}

// KnownSuppressKeys returns every key the audit accepts: the suppress keys
// of the given analyzers plus the stepflow root directive.
func KnownSuppressKeys(analyzers []*Analyzer) map[string]bool {
	keys := map[string]bool{StepFlowKey: true}
	for _, a := range analyzers {
		if a.Suppress != "" {
			keys[a.Suppress] = true
		}
	}
	return keys
}

// AuditDir walks every .go file under root and returns the suppressions it
// finds plus a sorted list of problems ("file:line: what's wrong"). The walk
// skips .git and hidden directories but deliberately includes testdata.
func AuditDir(root string, known map[string]bool) ([]Suppression, []string, error) {
	fset := token.NewFileSet()
	var sups []Suppression
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("audit: %v", err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				base := fset.Position(c.Pos())
				for off, line := range strings.Split(c.Text, "\n") {
					line = strings.TrimSpace(line)
					rest, ok := strings.CutPrefix(line, suppressPrefix)
					if !ok {
						continue
					}
					pos := base
					pos.Line += off
					key, tail, _ := strings.Cut(rest, " ")
					s := Suppression{Pos: pos, Key: key, Raw: line}
					rel, rerr := filepath.Rel(root, pos.Filename)
					if rerr == nil {
						s.Pos.Filename = filepath.ToSlash(rel)
					}
					switch {
					case key == "":
						problems = append(problems, fmt.Sprintf("%s: bare //mdm: comment with no key", s.Pos))
					case !known[key]:
						problems = append(problems, fmt.Sprintf("%s: unknown suppression key %q", s.Pos, key))
					}
					reason := ""
					if _, after, found := strings.Cut(tail, "--"); found {
						reason = strings.TrimSpace(after)
					}
					if reason == "" {
						problems = append(problems, fmt.Sprintf(
							"%s: suppression //mdm:%s lacks a justification; write \"//mdm:%s -- <reason>\"", s.Pos, key, key))
					}
					s.Reason = reason
					sups = append(sups, s)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Slice(sups, func(i, j int) bool {
		a, b := sups[i].Pos, sups[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	sort.Strings(problems)
	return sups, problems, nil
}
