// Package analyzers implements mdmvet, a static-analysis suite for the MDM
// reproduction's numerics and concurrency contracts.
//
// The paper's argument rests on controlled precision: WINE-2 is a fixed-point
// two's-complement datapath carried in int64 words (§3.4.4), MDGRAPE-2 is
// strictly IEEE-754 single precision with double-precision accumulation only
// (§3.5.4), and the goroutine-based MPI substrate relies on deterministic
// tag-matched message pairs. None of those contracts fail a unit test when
// silently violated, so this package encodes them as machine-checked rules:
//
//	fixedformat — fixed.Format widths must fit the 62-bit int64 carrier,
//	              including product widths at MulRound call sites
//	singleprec  — float32 pipeline functions in internal/mdgrape2 and
//	              internal/funceval must not compute in float64
//	mpitags     — mpi Send/Recv tags must be named constants, matched
//	              between senders and receivers
//	unitsmix    — values from different internal/units helpers must not be
//	              mixed additively, and unit constants must not be
//	              re-hardcoded as literals
//	goroutineloop — goroutines launched in a loop must not capture the
//	              loop variable in their closures
//	recvwithin  — production code must use the bounded mpi receive forms
//	              (RecvWithin, RecvFloat64sWithin, BarrierWithin) or a
//	              world deadline, so a wedged peer cannot block forever
//	gojoin      — launched goroutines must signal completion (channel send,
//	              close, or WaitGroup Done/Wait) so the launcher can join
//	              them and collect their errors
//	httpdeadline — net/http servers and clients must carry explicit I/O
//	              deadlines (ReadHeaderTimeout on servers, Timeout on
//	              clients); the deadline-less package defaults are flagged
//
// On top of the per-package checks, a callgraph pass (callgraph.go) computes
// transitive reachability from //mdm:stepflow-annotated roots and marks every
// function on the simulation hot path. Four determinism analyzers consume
// that fact:
//
//	maporder    — no map iteration whose body writes accumulators or does
//	              float math in stepflow code (nondeterministic order breaks
//	              bit-identity)
//	wallclock   — no time.Now/time.Since/math/rand in stepflow code (breaks
//	              journal replay)
//	hotalloc    — no growing appends, fmt.Sprintf, string concatenation or
//	              captured-closure goroutine launches in stepflow code (the
//	              arena'd step path budgets ~10 allocs/step)
//	shardmerge  — no floating-point read-modify-write accumulation into
//	              captured state from goroutines or worker closures in
//	              stepflow code (shard results merge in fixed serial order)
//
// Each analyzer's diagnostics can be suppressed for a reviewed line with a
// comment of the form "//mdm:<key> -- <justification>" (for example
// //mdm:float64ok -- exact widening) placed on the offending line, the line
// above it, or in the doc comment of the enclosing function. The
// justification after " -- " is mandatory: `mdmvet -audit` fails on bare
// suppressions.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Reportf) so the suite can migrate to the upstream framework
// mechanically; the upstream module is not vendored because this tree builds
// offline against the standard library only.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mdm/internal/analyzers/load"
)

// An Analyzer describes one analysis pass.
type Analyzer struct {
	Name     string
	Doc      string
	Suppress string // //mdm:<key> comment key that silences this analyzer
	Run      func(*Pass)
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // package import path
	Pkg      *types.Package
	Info     *types.Info
	Facts    *Facts // module-wide callgraph facts; nil disables fact-aware analyzers

	diags      []Diagnostic
	suppressed *suppressions
}

// Reportf records a diagnostic at pos unless a suppression comment covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed.covers(p.Analyzer.Suppress, position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressions indexes //mdm:<key> comments by file, line and function range.
type suppressions struct {
	lines  map[string]map[int][]string // file → line → keys on that line
	ranges []suppressedRange           // functions whose doc carries a key
	fset   *token.FileSet
}

type suppressedRange struct {
	file     string
	from, to int // line range, inclusive
	keys     []string
}

const suppressPrefix = "//mdm:"

func commentKeys(c *ast.Comment) []string {
	var keys []string
	for _, line := range strings.Split(c.Text, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, suppressPrefix); ok {
			key, _, _ := strings.Cut(rest, " ")
			if key != "" {
				keys = append(keys, key)
			}
		}
	}
	return keys
}

func buildSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{lines: make(map[string]map[int][]string), fset: fset}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				keys := commentKeys(c)
				if len(keys) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				m := s.lines[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					s.lines[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], keys...)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				return true
			}
			var keys []string
			for _, c := range fd.Doc.List {
				keys = append(keys, commentKeys(c)...)
			}
			if len(keys) > 0 {
				from := fset.Position(fd.Pos())
				to := fset.Position(fd.End())
				s.ranges = append(s.ranges, suppressedRange{
					file: from.Filename, from: from.Line, to: to.Line, keys: keys,
				})
			}
			return true
		})
	}
	return s
}

// covers reports whether a diagnostic with the given suppression key at
// position pos is silenced: a matching key on the same line, the line above,
// or in the doc comment of the enclosing function.
func (s *suppressions) covers(key string, pos token.Position) bool {
	if key == "" {
		return false
	}
	if m := s.lines[pos.Filename]; m != nil {
		for _, l := range [2]int{pos.Line, pos.Line - 1} {
			for _, k := range m[l] {
				if k == key {
					return true
				}
			}
		}
	}
	for _, r := range s.ranges {
		if r.file == pos.Filename && r.from <= pos.Line && pos.Line <= r.to {
			for _, k := range r.keys {
				if k == key {
					return true
				}
			}
		}
	}
	return false
}

// RunPackage runs the analyzers over one loaded package without module-wide
// facts: the per-package analyzers behave as always and the fact-aware ones
// (maporder, wallclock, hotalloc, shardmerge) stay silent. Use
// RunPackageFacts with a BuildFacts result to enable them.
func RunPackage(pkg *load.Package, analyzers []*Analyzer) []Diagnostic {
	return RunPackageFacts(pkg, analyzers, nil)
}

// RunPackageFacts runs the analyzers over one loaded package with the given
// module-wide facts and returns the surviving (non-suppressed) diagnostics
// sorted by position.
func RunPackageFacts(pkg *load.Package, analyzers []*Analyzer, facts *Facts) []Diagnostic {
	sup := buildSuppressions(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Path:       pkg.ImportPath,
			Pkg:        pkg.Pkg,
			Info:       pkg.TypesInfo,
			Facts:      facts,
			suppressed: sup,
		}
		a.Run(pass)
		diags = append(diags, pass.diags...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// All returns the full mdmvet suite. The last four are the fact-aware
// determinism analyzers: they only report when the runner supplies BuildFacts
// output via RunPackageFacts.
func All() []*Analyzer {
	return []*Analyzer{
		FixedFormat, SinglePrec, MPITags, UnitsMix, GoroutineLoop, RecvWithin, GoJoin, RawIO,
		HTTPDeadline,
		MapOrder, WallClock, HotAlloc, ShardMerge,
	}
}

//
// Shared AST/type helpers.
//

// calleeFunc resolves a call expression to the *types.Func it invokes, or nil
// for builtins, conversions and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the named function (or method, via its
// receiver-stripped name) of the package with the given import path.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// constUint evaluates expr as a non-negative integer constant.
func constUint(info *types.Info, expr ast.Expr) (uint64, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	u, ok := constant.Uint64Val(v)
	return u, ok
}

// localDef returns the defining RHS expression of ident if it is a local
// variable introduced by a short variable declaration in the enclosing
// function, resolving one level only (x := <expr>).
func localDef(info *types.Info, file *ast.File, ident *ast.Ident) ast.Expr {
	obj := info.Uses[ident]
	if obj == nil {
		return nil
	}
	var rhs ast.Expr
	ast.Inspect(file, func(n ast.Node) bool {
		if rhs != nil {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if ok && info.Defs[id] == obj {
				rhs = as.Rhs[i]
				return false
			}
		}
		return true
	})
	return rhs
}

// enclosingFile finds the *ast.File containing pos.
func enclosingFile(files []*ast.File, pos token.Pos) *ast.File {
	for _, f := range files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
