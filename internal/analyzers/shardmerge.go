package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShardMerge flags floating-point read-modify-write accumulation into
// captured state from concurrently executed closures on the hot path: a
// `total += partial` or `dst[i] += v` inside a `go func(){...}` or a worker
// closure handed to another function. The repo's bit-identity contract
// tolerates parallelism only when shards write disjoint results (plain
// assignment to their own index range) and the launcher merges them in one
// fixed serial order afterward; an in-closure float accumulation makes the
// reduction order depend on goroutine scheduling — different sums on every
// run even when no race detector fires (and usually a data race too).
// Reviewed exceptions (a closure proven to run on one goroutine, an ordered
// channel join) carry //mdm:shardmergeok -- suppressions. Closures handed to
// the known-serial pair iterators of internal/cellindex run on the calling
// goroutine in fixed cell order and are exempt.
var ShardMerge = &Analyzer{
	Name:     "shardmerge",
	Doc:      "flag float += accumulation into captured state from goroutine/worker closures in stepflow code",
	Suppress: "shardmergeok",
	Run:      runShardMerge,
}

// shardSerialIterators are higher-order functions documented to invoke their
// callback on the calling goroutine in a fixed order; closures passed to them
// accumulate deterministically.
var shardSerialIterators = map[string]map[string]bool{
	"mdm/internal/cellindex": {
		"ForEachOrderedPair":      true,
		"ForEachOrderedPairTable": true,
		"ForEachHalfPair":         true,
		"forEachOrderedPair":      true,
	},
}

// serialIterator reports whether fn is one of the known-serial callback
// iterators.
func serialIterator(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && shardSerialIterators[fn.Pkg().Path()][fn.Name()]
}

func runShardMerge(pass *Pass) {
	stepFlowFuncs(pass, func(fd *ast.FuncDecl, fn *types.Func) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var lit *ast.FuncLit
			launch := ""
			switch e := n.(type) {
			case *ast.GoStmt:
				if l, ok := ast.Unparen(e.Call.Fun).(*ast.FuncLit); ok {
					lit, launch = l, "goroutine"
				}
			case *ast.CallExpr:
				// A closure passed as an argument: a worker submission
				// (pool.Run, errgroup-style helpers) runs it concurrently;
				// treat every function-call operand conservatively, except
				// the iterators known to run their callback serially.
				if serialIterator(calleeFunc(pass.Info, e)) {
					return true
				}
				for _, arg := range e.Args {
					if l, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						checkShardAccum(pass, fd, l, "worker closure")
					}
				}
				return true
			}
			if lit != nil {
				checkShardAccum(pass, fd, lit, launch)
			}
			return true
		})
	})
}

// checkShardAccum reports float compound assignments inside lit whose target
// is captured from the enclosing function.
func checkShardAccum(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit, launch string) {
	local := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			tv, ok := pass.Info.Types[lhs]
			if !ok || !isFloat(tv.Type) {
				continue
			}
			obj := lvalueRoot(pass.Info, lhs)
			if obj == nil || local[obj] {
				continue
			}
			what := "float variable"
			if floatElem(obj.Type()) {
				what = "shared float slice"
			}
			pass.Reportf(as.Pos(),
				"%s in hot-path function %s accumulates into captured %s %s; scheduling decides the reduction order, breaking bit-identity — write per-shard results and merge them in fixed serial order after the join", launch, fd.Name.Name, what, obj.Name())
		}
		return true
	})
}
