package analyzers

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the time package functions that read the wall (or
// monotonic) clock. Duration arithmetic and formatting are fine; sampling
// the clock is what diverges between a live run and a journal replay.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	"Tick":  true,
	"After": true,
	"Sleep": true,
}

// wallClockPkgs are the packages whose every call is a nondeterminism source.
var wallClockPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// WallClock flags clock reads (time.Now, time.Since, time.Until, timers) and
// math/rand use in hot-path functions. The step journal (PR 4) promises that
// replaying a journal reproduces the original run bit-for-bit; a step path
// that samples the wall clock or an unseeded RNG takes different branches on
// replay and the promise quietly dies. Supervision code that uses the
// monotonic clock only for liveness (watchdog beats) — never letting it into
// simulation state or journal records — carries reviewed
// //mdm:wallclockok -- suppressions.
var WallClock = &Analyzer{
	Name:     "wallclock",
	Doc:      "flag time.Now/time.Since/math/rand in stepflow code (breaks journal replay)",
	Suppress: "wallclockok",
	Run:      runWallClock,
}

func runWallClock(pass *Pass) {
	stepFlowFuncs(pass, func(fd *ast.FuncDecl, fn *types.Func) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			switch path := callee.Pkg().Path(); {
			case path == "time" && wallClockFuncs[callee.Name()]:
				pass.Reportf(call.Pos(),
					"time.%s in hot-path function %s; clock reads diverge between a live run and journal replay — derive times from the step counter or move the read off the step path", callee.Name(), fd.Name.Name)
			case wallClockPkgs[path]:
				pass.Reportf(call.Pos(),
					"%s.%s in hot-path function %s; RNG draws diverge between a live run and journal replay — thread an explicitly seeded source through the config instead", path, callee.Name(), fd.Name.Name)
			}
			return true
		})
	})
}
