package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"strings"
)

const unitsPkg = "mdm/internal/units"

// unitsTags assigns a dimension tag to each internal/units helper and
// constant. Additive mixing of two differently-tagged values is a unit error;
// multiplication and division build derived units and are the explicit
// conversion idiom, so they are not tracked.
var unitsTags = map[string]string{
	// constants
	"Coulomb":      "eV·Å/e²",
	"Boltzmann":    "eV/K",
	"ForceToAccel": "(Å/fs²)·amu/(eV/Å)",
	"JToEV":        "eV/J",
	"M6ToA6":       "Å⁶/m⁶",
	"M8ToA8":       "Å⁸/m⁸",
	"EVPerA3ToGPa": "GPa/(eV/Å³)",
	"MassNa":       "amu",
	"MassCl":       "amu",
	// conversion helpers, tagged by what they return
	"KineticToKelvin": "K",
	"KelvinToKinetic": "eV",
	"ThermalSpeed":    "Å/fs",
	"RelativeError":   "1",
}

// unitsConstValues mirrors the numeric values of internal/units constants so
// that re-hardcoded copies can be spotted even in packages that do not import
// internal/units. A test cross-checks this table against the real package.
var unitsConstValues = map[string]float64{
	"Coulomb":      14.399645478425668,
	"Boltzmann":    8.617333262e-5,
	"ForceToAccel": 9.648533212331e-3,
	"EVPerA3ToGPa": 160.21766208,
	"MassNa":       22.98976928,
	"MassCl":       35.453,
}

// unitsExemptPkgs never report literal duplicates: units defines the
// constants and this package mirrors them as the checker's specification.
var unitsExemptPkgs = map[string]bool{
	unitsPkg:                 true,
	"mdm/internal/analyzers": true,
}

// UnitsMix enforces unit discipline around internal/units:
//
//   - values produced by differently-tagged units helpers or constants must
//     not be combined with +, -, or comparisons without an explicit
//     conversion (multiplication/division is the conversion idiom and is
//     allowed);
//   - floating-point literals with at least 6 significant digits that
//     reproduce an internal/units constant are flagged — use the named
//     constant so the unit system stays in one place.
var UnitsMix = &Analyzer{
	Name:     "unitsmix",
	Doc:      "check internal/units values are not mixed across dimensions or re-hardcoded",
	Suppress: "unitsok",
	Run:      runUnitsMix,
}

func runUnitsMix(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.BinaryExpr:
				checkUnitMixing(pass, file, node)
			case *ast.BasicLit:
				checkUnitLiteral(pass, node)
			}
			return true
		})
	}
}

func checkUnitMixing(pass *Pass, file *ast.File, bin *ast.BinaryExpr) {
	switch bin.Op {
	case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	left, lok := unitTagOf(pass, file, bin.X)
	right, rok := unitTagOf(pass, file, bin.Y)
	if lok && rok && left.tag != right.tag {
		pass.Reportf(bin.OpPos,
			"%s units.%s [%s] with units.%s [%s]: different dimensions need an explicit conversion",
			describeOp(bin.Op), left.name, left.tag, right.name, right.tag)
	}
}

func describeOp(op token.Token) string {
	switch op {
	case token.ADD:
		return "adding"
	case token.SUB:
		return "subtracting"
	default:
		return "comparing"
	}
}

type unitValue struct {
	name string // units identifier the value came from
	tag  string // dimension tag
}

// unitTagOf resolves an expression to the internal/units helper or constant
// that produced it: a direct units.X reference, a call to a units helper, or
// a local variable one short-declaration away from either.
func unitTagOf(pass *Pass, file *ast.File, expr ast.Expr) (unitValue, bool) {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.CallExpr:
		if fn := calleeFunc(pass.Info, e); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == unitsPkg {
			if tag, ok := unitsTags[fn.Name()]; ok {
				return unitValue{name: fn.Name(), tag: tag}, true
			}
		}
	case *ast.Ident, *ast.SelectorExpr:
		var id *ast.Ident
		if sel, ok := e.(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else {
			id = e.(*ast.Ident)
		}
		if c, ok := pass.Info.Uses[id].(*types.Const); ok &&
			c.Pkg() != nil && c.Pkg().Path() == unitsPkg {
			if tag, ok := unitsTags[c.Name()]; ok {
				return unitValue{name: c.Name(), tag: tag}, true
			}
		}
		if v, ok := pass.Info.Uses[id].(*types.Var); ok && v.Pkg() != nil && v.Pkg().Path() == pass.Pkg.Path() {
			if def := localDef(pass.Info, file, id); def != nil {
				// One level only: don't chase chains of locals.
				if _, isIdent := ast.Unparen(def).(*ast.Ident); !isIdent {
					return unitTagOf(pass, file, def)
				}
			}
		}
	}
	return unitValue{}, false
}

// checkUnitLiteral flags float literals that duplicate a units constant.
func checkUnitLiteral(pass *Pass, lit *ast.BasicLit) {
	if lit.Kind != token.FLOAT || unitsExemptPkgs[pass.Pkg.Path()] {
		return
	}
	if sigDigits(lit.Value) < 6 {
		return
	}
	tv, ok := pass.Info.Types[lit]
	if !ok || tv.Value == nil {
		return
	}
	// Float64Val's bool reports exact representability, not success; the
	// rounded value is what source code would compute, so use it regardless.
	v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
	if v == 0 || math.IsInf(v, 0) {
		return
	}
	for name, want := range unitsConstValues {
		if math.Abs(v-want) <= 1e-6*math.Abs(want) {
			pass.Reportf(lit.Pos(),
				"literal %s duplicates units.%s (%v); use the named constant", lit.Value, name, want)
			return
		}
	}
}

// sigDigits counts significant digits in a floating-point literal's text:
// mantissa digits excluding leading zeros.
func sigDigits(text string) int {
	mantissa := text
	for _, sep := range []string{"e", "E", "p", "P"} {
		if i := strings.Index(mantissa, sep); i >= 0 {
			mantissa = mantissa[:i]
			break
		}
	}
	mantissa = strings.ReplaceAll(mantissa, "_", "")
	mantissa = strings.ReplaceAll(mantissa, ".", "")
	mantissa = strings.TrimLeft(mantissa, "+-0")
	return len(mantissa)
}
