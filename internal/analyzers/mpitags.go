package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

const mpiPkg = "mdm/internal/mpi"

// tagArgIndex maps the point-to-point methods of mpi.Comm to the position of
// their tag argument.
var tagArgIndex = map[string]int{
	"Send":               1,
	"Recv":               1,
	"RecvFloat64s":       1,
	"RecvWithin":         1,
	"RecvFloat64sWithin": 1,
}

// sendMethods marks which of those methods are the sending side.
var sendMethods = map[string]bool{"Send": true}

// MPITags enforces the deterministic SPMD tag discipline of the in-process
// MPI substrate: tags passed to (*mpi.Comm).Send/Recv/RecvFloat64s must be
// named constants (not bare integer literals), and a tag constant that is
// only ever sent, or only ever received, within a package indicates a
// mismatched Send/Recv pair. The AnyTag wildcard is exempt from pairing.
var MPITags = &Analyzer{
	Name:     "mpitags",
	Doc:      "check mpi Send/Recv tags are named constants with matched pairs",
	Suppress: "tagok",
	Run:      runMPITags,
}

type tagUse struct {
	sent, received bool
	firstPos       token.Pos
}

func runMPITags(pass *Pass) {
	uses := make(map[string]*tagUse)
	order := []string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || !isCommMethod(fn) {
				return true
			}
			idx, ok := tagArgIndex[fn.Name()]
			if !ok || idx >= len(call.Args) {
				return true
			}
			tag := ast.Unparen(call.Args[idx])
			switch expr := tag.(type) {
			case *ast.BasicLit:
				pass.Reportf(tag.Pos(),
					"mpi %s with untyped literal tag %s; use a named tag constant", fn.Name(), expr.Value)
			case *ast.UnaryExpr:
				if lit, ok := expr.X.(*ast.BasicLit); ok {
					pass.Reportf(tag.Pos(),
						"mpi %s with untyped literal tag %s%s; use a named tag constant", fn.Name(), expr.Op, lit.Value)
				}
			default:
				if name, pos, ok := namedTagConst(pass.Info, tag); ok {
					u := uses[name]
					if u == nil {
						u = &tagUse{firstPos: pos}
						uses[name] = u
						order = append(order, name)
					}
					if sendMethods[fn.Name()] {
						u.sent = true
					} else {
						u.received = true
					}
				}
			}
			return true
		})
	}
	sort.Strings(order)
	for _, name := range order {
		u := uses[name]
		switch {
		case u.sent && !u.received:
			pass.Reportf(u.firstPos,
				"tag constant %s is sent but never received in this package; mismatched Send/Recv pair?", name)
		case u.received && !u.sent:
			pass.Reportf(u.firstPos,
				"tag constant %s is received but never sent in this package; mismatched Send/Recv pair?", name)
		}
	}
}

// isCommMethod reports whether fn is a method of mdm/internal/mpi.Comm.
func isCommMethod(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != mpiPkg {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Comm"
}

// namedTagConst resolves expr to a named integer constant, skipping the
// AnyTag wildcard (which legitimately appears only on the receive side).
func namedTagConst(info *types.Info, expr ast.Expr) (string, token.Pos, bool) {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", token.NoPos, false
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok || c.Name() == "AnyTag" {
		return "", token.NoPos, false
	}
	return c.Name(), id.Pos(), true
}
