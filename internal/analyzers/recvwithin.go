package analyzers

import (
	"go/ast"
	"strings"
)

// unboundedRecv maps the blocking receive-side methods of mpi.Comm to their
// deadline-bounded counterparts.
var unboundedRecv = map[string]string{
	"Recv":         "RecvWithin",
	"RecvFloat64s": "RecvFloat64sWithin",
	"Barrier":      "BarrierWithin",
}

// RecvWithin flags unbounded blocking receives on the MPI substrate. A bare
// Recv/RecvFloat64s/Barrier waits forever if the peer dies or wedges, which
// defeats the watchdog and recovery ladder: a 36.5-hour production run (§6)
// must turn silence into a typed timeout it can act on. Production code
// should call the ...Within variants, or set a world-level deadline with
// World.SetTimeout and suppress the finding with //mdm:recvok explaining why
// the receive is bounded. Test files and the mpi package itself (which
// implements the bounded variants in terms of the bare ones) are exempt.
var RecvWithin = &Analyzer{
	Name:     "recvwithin",
	Doc:      "check blocking mpi receives are deadline-bounded",
	Suppress: "recvok",
	Run:      runRecvWithin,
}

func runRecvWithin(pass *Pass) {
	if pass.Path == mpiPkg {
		return
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.FileStart).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || !isCommMethod(fn) {
				return true
			}
			if within, ok := unboundedRecv[fn.Name()]; ok {
				pass.Reportf(call.Pos(),
					"unbounded mpi %s blocks forever if the peer wedges; use %s or bound it with World.SetTimeout",
					fn.Name(), within)
			}
			return true
		})
	}
}
