package analyzers_test

import (
	"testing"

	"mdm/internal/analyzers"
	"mdm/internal/analyzers/atest"
)

// Each analyzer is exercised against its fixture package, analysistest
// style: every want comment must be matched and nothing else may fire.

func TestFixedFormatFixtures(t *testing.T) {
	atest.Run(t, analyzers.FixedFormat, "fixedformat", "mdm/fixture/fixedformat")
}

func TestSinglePrecFixtures(t *testing.T) {
	// The fixture is checked under the mdgrape2 import path so the
	// pipeline-package gate applies to it.
	atest.Run(t, analyzers.SinglePrec, "singleprec", "mdm/internal/mdgrape2")
}

func TestSinglePrecIgnoresOtherPackages(t *testing.T) {
	// The same fixture under a non-pipeline path must produce nothing; the
	// run fails if the want comments go unmatched, so invert via a sub-run.
	pkg, err := atest.Loader(t).Check("mdm/fixture/hostcode", atest.FixtureDir(t, "singleprec"), atest.FixtureFiles(t, "singleprec"))
	if err != nil {
		t.Fatal(err)
	}
	if diags := analyzers.RunPackage(pkg, []*analyzers.Analyzer{analyzers.SinglePrec}); len(diags) != 0 {
		t.Errorf("singleprec fired outside its packages: %v", diags)
	}
}

func TestMPITagsFixtures(t *testing.T) {
	atest.Run(t, analyzers.MPITags, "mpitags", "mdm/fixture/mpitags")
}

func TestUnitsMixFixtures(t *testing.T) {
	atest.Run(t, analyzers.UnitsMix, "unitsmix", "mdm/fixture/unitsmix")
}

func TestGoroutineLoopFixtures(t *testing.T) {
	atest.Run(t, analyzers.GoroutineLoop, "goroutineloop", "mdm/fixture/goroutineloop")
}

func TestGoroutineLoopExemptsPool(t *testing.T) {
	// The pool package is the sanctioned fan-out implementation: the same
	// fixture under its import path must produce nothing.
	pkg, err := atest.Loader(t).Check("mdm/internal/parallelize", atest.FixtureDir(t, "goroutineloop"), atest.FixtureFiles(t, "goroutineloop"))
	if err != nil {
		t.Fatal(err)
	}
	if diags := analyzers.RunPackage(pkg, []*analyzers.Analyzer{analyzers.GoroutineLoop}); len(diags) != 0 {
		t.Errorf("goroutineloop fired inside the pool package: %v", diags)
	}
}

func TestRecvWithinFixtures(t *testing.T) {
	atest.Run(t, analyzers.RecvWithin, "recvwithin", "mdm/fixture/recvwithin")
}

func TestGoJoinFixtures(t *testing.T) {
	atest.Run(t, analyzers.GoJoin, "gojoin", "mdm/fixture/gojoin")
}

// TestSuiteCleanOnRepo runs the whole suite over the whole module — the
// in-process equivalent of `go run ./cmd/mdmvet ./...` — and requires it to
// be green. Real findings must be fixed or carry a reviewed //mdm:* comment.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root := atest.ModuleRoot(t)
	pkgs, err := atest.Loader(t).Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("expected to load the full module, got %d packages", len(pkgs))
	}
	for _, p := range pkgs {
		for _, d := range analyzers.RunPackage(p, analyzers.All()) {
			t.Errorf("%s", d)
		}
	}
}
