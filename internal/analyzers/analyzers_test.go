package analyzers_test

import (
	"testing"

	"mdm/internal/analyzers"
	"mdm/internal/analyzers/atest"
)

// Each analyzer is exercised against its fixture package, analysistest
// style: every want comment must be matched and nothing else may fire.

func TestFixedFormatFixtures(t *testing.T) {
	atest.Run(t, analyzers.FixedFormat, "fixedformat", "mdm/fixture/fixedformat")
}

func TestSinglePrecFixtures(t *testing.T) {
	// The fixture is checked under the mdgrape2 import path so the
	// pipeline-package gate applies to it.
	atest.Run(t, analyzers.SinglePrec, "singleprec", "mdm/internal/mdgrape2")
}

func TestSinglePrecIgnoresOtherPackages(t *testing.T) {
	// The same fixture under a non-pipeline path must produce nothing; the
	// run fails if the want comments go unmatched, so invert via a sub-run.
	pkg, err := atest.Loader(t).Check("mdm/fixture/hostcode", atest.FixtureDir(t, "singleprec"), atest.FixtureFiles(t, "singleprec"))
	if err != nil {
		t.Fatal(err)
	}
	if diags := analyzers.RunPackage(pkg, []*analyzers.Analyzer{analyzers.SinglePrec}); len(diags) != 0 {
		t.Errorf("singleprec fired outside its packages: %v", diags)
	}
}

func TestMPITagsFixtures(t *testing.T) {
	atest.Run(t, analyzers.MPITags, "mpitags", "mdm/fixture/mpitags")
}

func TestUnitsMixFixtures(t *testing.T) {
	atest.Run(t, analyzers.UnitsMix, "unitsmix", "mdm/fixture/unitsmix")
}

func TestGoroutineLoopFixtures(t *testing.T) {
	atest.Run(t, analyzers.GoroutineLoop, "goroutineloop", "mdm/fixture/goroutineloop")
}

func TestGoroutineLoopExemptsPool(t *testing.T) {
	// The pool package is the sanctioned fan-out implementation: the same
	// fixture under its import path must produce nothing.
	pkg, err := atest.Loader(t).Check("mdm/internal/parallelize", atest.FixtureDir(t, "goroutineloop"), atest.FixtureFiles(t, "goroutineloop"))
	if err != nil {
		t.Fatal(err)
	}
	if diags := analyzers.RunPackage(pkg, []*analyzers.Analyzer{analyzers.GoroutineLoop}); len(diags) != 0 {
		t.Errorf("goroutineloop fired inside the pool package: %v", diags)
	}
}

func TestRecvWithinFixtures(t *testing.T) {
	atest.Run(t, analyzers.RecvWithin, "recvwithin", "mdm/fixture/recvwithin")
}

func TestGoJoinFixtures(t *testing.T) {
	atest.Run(t, analyzers.GoJoin, "gojoin", "mdm/fixture/gojoin")
}

func TestRawIOFixtures(t *testing.T) {
	atest.Run(t, analyzers.RawIO, "rawio", "mdm/fixture/rawio")
}

func TestRawIOExemptsStore(t *testing.T) {
	// internal/store IS the wrapper layer: the same fixture under its import
	// path must produce nothing.
	pkg, err := atest.Loader(t).Check("mdm/internal/store", atest.FixtureDir(t, "rawio"), atest.FixtureFiles(t, "rawio"))
	if err != nil {
		t.Fatal(err)
	}
	if diags := analyzers.RunPackage(pkg, []*analyzers.Analyzer{analyzers.RawIO}); len(diags) != 0 {
		t.Errorf("rawio fired inside the store package: %v", diags)
	}
}

func TestHTTPDeadlineFixtures(t *testing.T) {
	atest.Run(t, analyzers.HTTPDeadline, "httpdeadline", "mdm/fixture/httpdeadline")
}

func TestMapOrderFixtures(t *testing.T) {
	atest.Run(t, analyzers.MapOrder, "maporder", "mdm/fixture/maporder")
}

func TestWallClockFixtures(t *testing.T) {
	atest.Run(t, analyzers.WallClock, "wallclock", "mdm/fixture/wallclock")
}

func TestHotAllocFixtures(t *testing.T) {
	atest.Run(t, analyzers.HotAlloc, "hotalloc", "mdm/fixture/hotalloc")
}

func TestShardMergeFixtures(t *testing.T) {
	atest.Run(t, analyzers.ShardMerge, "shardmerge", "mdm/fixture/shardmerge")
}

func TestBatchFlowFixtures(t *testing.T) {
	// The batch driver's swap dispatch: the stepflow fact must flow from a
	// batch root through the per-slot adapter's interface call into the
	// shared machine, so hotalloc sees allocations on the batched step path.
	atest.Run(t, analyzers.HotAlloc, "batchflow", "mdm/fixture/batchflow")
}

// TestStepFlowFactPropagation checks the callgraph pass across real module
// boundaries: functions nowhere near an //mdm:stepflow comment must be marked
// because a root reaches them — through plain calls, interface dispatch
// (md.ForceField), and callback arguments (Integrator.Run's observe) — and
// cold entry points must stay unmarked.
func TestStepFlowFactPropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	pkgs, err := atest.Loader(t).Load(atest.ModuleRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	facts := analyzers.BuildFacts(pkgs)
	if got := len(facts.Roots()); got < 6 {
		t.Fatalf("expected at least the 6 annotated roots, got %d: %v", got, facts.Roots())
	}
	hot := []string{
		// Direct call chain from core.Machine.Forces.
		"(*mdm/internal/cellindex.Sorted).ForEachOrderedPairTable",
		// Cross-package chain through the wine2 root into the DFT engine.
		"(*mdm/internal/wine2.System).DFTQuantizedInto",
		// Interface dispatch: md.Integrator.Step calls ForceField.Forces, and
		// CHA fans out to the core implementations.
		"(*mdm/internal/core.Machine).Forces",
		"(*mdm/internal/core.Resilient).Forces",
		// Callback edge: functions passed to Integrator.Run run between steps.
		"(*mdm.Simulation).observe",
		// Explicitly annotated root whose wiring is an assignment.
		"(*mdm/internal/supervise.Watchdog).Beat",
		// Batch entry points: the per-round driver and the per-slot swap
		// adapter it dispatches through (interface fan-out from
		// Integrator.Step's ForceField call).
		"(*mdm/internal/core.BatchMachine).Step",
		"(mdm/internal/core.slotField).Forces",
		// The batch driver root; its sampling closure runs between rounds, so
		// the recorder it calls must be hot too.
		"mdm.RunBatch",
		"(*mdm/internal/md.Recorder).Sample",
	}
	for _, name := range hot {
		if !facts.StepFlowName(name) {
			t.Errorf("%s not marked stepflow; roots=%v", name, facts.Roots())
		}
	}
	cold := []string{
		// The performance model is an offline predictor.
		"mdm/internal/perf.CurrentMDM",
		// The journal replay reader is an offline tool.
		"mdm/internal/supervise.ReadJournal",
	}
	for _, name := range cold {
		if facts.StepFlowName(name) {
			t.Errorf("%s wrongly marked stepflow", name)
		}
	}
}

// TestSuiteCleanOnRepo runs the whole suite over the whole module — the
// in-process equivalent of `go run ./cmd/mdmvet ./...` — and requires it to
// be green. Real findings must be fixed or carry a reviewed //mdm:* comment.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root := atest.ModuleRoot(t)
	pkgs, err := atest.Loader(t).Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("expected to load the full module, got %d packages", len(pkgs))
	}
	facts := analyzers.BuildFacts(pkgs)
	for _, p := range pkgs {
		for _, d := range analyzers.RunPackageFacts(p, analyzers.All(), facts) {
			t.Errorf("%s", d)
		}
	}
}
