package vec

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func close(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b)) }

func vclose(a, b V) bool { return close(a.X, b.X) && close(a.Y, b.Y) && close(a.Z, b.Z) }

func TestAddSub(t *testing.T) {
	a := New(1, 2, 3)
	b := New(-4, 5, 0.5)
	if got := a.Add(b); !vclose(got, New(-3, 7, 3.5)) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); !vclose(got, New(5, -3, 2.5)) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Sub(a); !vclose(got, Zero) {
		t.Errorf("a-a = %v, want zero", got)
	}
}

func TestScaleNeg(t *testing.T) {
	a := New(1, -2, 3)
	if got := a.Scale(2); !vclose(got, New(2, -4, 6)) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Neg(); !vclose(got, a.Scale(-1)) {
		t.Errorf("Neg = %v", got)
	}
}

func TestDotCross(t *testing.T) {
	x := New(1, 0, 0)
	y := New(0, 1, 0)
	z := New(0, 0, 1)
	if got := x.Dot(y); got != 0 {
		t.Errorf("x.y = %g", got)
	}
	if got := x.Cross(y); !vclose(got, z) {
		t.Errorf("x cross y = %v, want z", got)
	}
	if got := y.Cross(x); !vclose(got, z.Neg()) {
		t.Errorf("y cross x = %v, want -z", got)
	}
	a := New(2, 3, 4)
	if got := a.Cross(a); !vclose(got, Zero) {
		t.Errorf("a cross a = %v", got)
	}
}

func TestNorm(t *testing.T) {
	a := New(3, 4, 0)
	if got := a.Norm(); !close(got, 5) {
		t.Errorf("Norm = %g", got)
	}
	if got := a.Norm2(); !close(got, 25) {
		t.Errorf("Norm2 = %g", got)
	}
}

func TestComponent(t *testing.T) {
	a := New(7, 8, 9)
	for i, want := range []float64{7, 8, 9} {
		if got := a.Component(i); got != want {
			t.Errorf("Component(%d) = %g, want %g", i, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Component(3) did not panic")
		}
	}()
	a.Component(3)
}

func TestWrapBasics(t *testing.T) {
	l := 10.0
	cases := []struct{ in, want V }{
		{New(1, 2, 3), New(1, 2, 3)},
		{New(11, -2, 3), New(1, 8, 3)},
		{New(-0.5, 25, 10), New(9.5, 5, 0)},
		{New(0, 0, 0), New(0, 0, 0)},
	}
	for _, c := range cases {
		if got := c.in.Wrap(l); !vclose(got, c.want) {
			t.Errorf("Wrap(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWrapTinyNegative(t *testing.T) {
	l := 850.0
	got := New(-1e-300, 0, 0).Wrap(l)
	if got.X < 0 || got.X >= l {
		t.Errorf("Wrap(-1e-300) = %g, outside [0,%g)", got.X, l)
	}
}

func TestMinImageBasics(t *testing.T) {
	l := 10.0
	cases := []struct{ in, want V }{
		{New(1, 2, 3), New(1, 2, 3)},
		{New(6, -6, 0), New(-4, 4, 0)},
		{New(15, -15, 5), New(-5, -5, -5)}, // 5 maps to -5 (half-open interval)
	}
	for _, c := range cases {
		if got := c.in.MinImage(l); !vclose(got, c.want) {
			t.Errorf("MinImage(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsFinite(t *testing.T) {
	if !New(1, 2, 3).IsFinite() {
		t.Error("finite vector reported as non-finite")
	}
	if New(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported as finite")
	}
	if New(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported as finite")
	}
}

func TestSumRMSMaxNorm(t *testing.T) {
	vs := []V{New(1, 0, 0), New(0, 2, 0), New(0, 0, 2)}
	if got := Sum(vs); !vclose(got, New(1, 2, 2)) {
		t.Errorf("Sum = %v", got)
	}
	if got := MaxNorm(vs); !close(got, 2) {
		t.Errorf("MaxNorm = %g", got)
	}
	if got := RMS(vs); !close(got, math.Sqrt(3)) {
		t.Errorf("RMS = %g", got)
	}
	if got := RMS(nil); got != 0 {
		t.Errorf("RMS(nil) = %g", got)
	}
	if got := MaxNorm(nil); got != 0 {
		t.Errorf("MaxNorm(nil) = %g", got)
	}
}

// Property: Wrap always lands in [0, l) and preserves the value modulo l.
func TestWrapProperty(t *testing.T) {
	f := func(x, y, z float64) bool {
		v := New(clamp(x), clamp(y), clamp(z))
		l := 17.0
		w := v.Wrap(l)
		in := w.X >= 0 && w.X < l && w.Y >= 0 && w.Y < l && w.Z >= 0 && w.Z < l
		// difference must be an integer multiple of l (within rounding)
		kx := (v.X - w.X) / l
		mod := math.Abs(kx-math.Round(kx)) < 1e-9
		return in && mod
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MinImage lands in [-l/2, l/2) and distance is symmetric.
func TestMinImageProperty(t *testing.T) {
	f := func(x, y, z float64) bool {
		v := New(clamp(x), clamp(y), clamp(z))
		l := 11.0
		m := v.MinImage(l)
		in := m.X >= -l/2 && m.X < l/2 && m.Y >= -l/2 && m.Y < l/2 && m.Z >= -l/2 && m.Z < l/2
		sym := close(v.MinImage(l).Norm(), v.Neg().MinImage(l).Norm())
		return in && sym
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: dot product is bilinear and the norm matches Dot.
func TestDotProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, s float64) bool {
		a := New(clamp(ax), clamp(ay), clamp(az))
		b := New(clamp(bx), clamp(by), clamp(bz))
		s = clamp(s)
		lhs := a.Scale(s).Dot(b)
		rhs := s * a.Dot(b)
		return math.Abs(lhs-rhs) <= 1e-6*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a x b is orthogonal to both a and b.
func TestCrossOrthogonality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := New(clamp(ax), clamp(ay), clamp(az))
		b := New(clamp(bx), clamp(by), clamp(bz))
		c := a.Cross(b)
		scale := 1 + a.Norm()*b.Norm()
		return math.Abs(c.Dot(a))/scale < 1e-8 && math.Abs(c.Dot(b))/scale < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clamp maps arbitrary quick-generated floats into a sane finite range so the
// properties test numerics rather than overflow behaviour.
func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Mod(x, 1e6)
}

func BenchmarkMinImage(b *testing.B) {
	v := New(123.4, -567.8, 901.2)
	var sink V
	for i := 0; i < b.N; i++ {
		sink = v.MinImage(850)
	}
	_ = sink
}
