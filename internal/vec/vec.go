// Package vec provides the 3-component vector arithmetic used throughout the
// MDM reproduction: particle positions, velocities, forces and wavenumber
// vectors are all vec.V values.
//
// The package also implements the periodic-boundary helpers (wrapping into
// the computational box and the minimum-image convention) that the Ewald
// real-space sum and the cell-index method rely on.
package vec

import (
	"fmt"
	"math"
)

// V is a 3-component vector of float64.
type V struct {
	X, Y, Z float64
}

// Zero is the zero vector.
var Zero = V{}

// New returns the vector (x, y, z).
func New(x, y, z float64) V { return V{x, y, z} }

// Add returns a + b.
func (a V) Add(b V) V { return V{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a V) Sub(b V) V { return V{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s * a.
func (a V) Scale(s float64) V { return V{s * a.X, s * a.Y, s * a.Z} }

// Neg returns -a.
func (a V) Neg() V { return V{-a.X, -a.Y, -a.Z} }

// Dot returns the inner product a . b.
func (a V) Dot(b V) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product a x b.
func (a V) Cross(b V) V {
	return V{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm2 returns |a|^2.
func (a V) Norm2() float64 { return a.Dot(a) }

// Norm returns |a|.
func (a V) Norm() float64 { return math.Sqrt(a.Norm2()) }

// Mul returns the component-wise product of a and b.
func (a V) Mul(b V) V { return V{a.X * b.X, a.Y * b.Y, a.Z * b.Z} }

// Component returns the i-th component (0=X, 1=Y, 2=Z).
// It panics if i is outside [0, 2].
func (a V) Component(i int) float64 {
	switch i {
	case 0:
		return a.X
	case 1:
		return a.Y
	case 2:
		return a.Z
	}
	panic(fmt.Sprintf("vec: component index %d out of range", i))
}

// String implements fmt.Stringer.
func (a V) String() string { return fmt.Sprintf("(%g, %g, %g)", a.X, a.Y, a.Z) }

// IsFinite reports whether all components are finite (no NaN or Inf).
func (a V) IsFinite() bool {
	return !math.IsNaN(a.X) && !math.IsInf(a.X, 0) &&
		!math.IsNaN(a.Y) && !math.IsInf(a.Y, 0) &&
		!math.IsNaN(a.Z) && !math.IsInf(a.Z, 0)
}

// Wrap maps a into the periodic box [0, l) in each dimension.
// l must be positive.
func (a V) Wrap(l float64) V {
	return V{wrap1(a.X, l), wrap1(a.Y, l), wrap1(a.Z, l)}
}

func wrap1(x, l float64) float64 {
	x -= l * math.Floor(x/l)
	// Guard against x == l from floating-point rounding when x was a tiny
	// negative number: Floor(-eps/l) = -1 gives x = l - eps which can round
	// to exactly l.
	if x >= l {
		x -= l
	}
	return x
}

// MinImage returns the minimum-image displacement of a in a cubic periodic
// box with side l: each component is shifted by a multiple of l into
// [-l/2, l/2).
func (a V) MinImage(l float64) V {
	return V{minImage1(a.X, l), minImage1(a.Y, l), minImage1(a.Z, l)}
}

func minImage1(x, l float64) float64 {
	x -= l * math.Round(x/l)
	if x < -l/2 {
		x += l
	} else if x >= l/2 {
		x -= l
	}
	return x
}

// Dist returns the Euclidean distance |a-b|.
func Dist(a, b V) float64 { return a.Sub(b).Norm() }

// DistPeriodic returns the minimum-image distance between a and b in a cubic
// box with side l.
func DistPeriodic(a, b V, l float64) float64 { return a.Sub(b).MinImage(l).Norm() }

// Sum returns the sum of all vectors in vs.
func Sum(vs []V) V {
	var s V
	for _, v := range vs {
		s = s.Add(v)
	}
	return s
}

// MaxNorm returns the largest |v| over vs, or 0 for an empty slice.
func MaxNorm(vs []V) float64 {
	m := 0.0
	for _, v := range vs {
		if n := v.Norm(); n > m {
			m = n
		}
	}
	return m
}

// RMS returns the root-mean-square magnitude of vs, or 0 for an empty slice.
func RMS(vs []V) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v.Norm2()
	}
	return math.Sqrt(s / float64(len(vs)))
}
