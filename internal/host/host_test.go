package host

import (
	"math"
	"strings"
	"testing"
)

func TestInventoryMatchesTable1(t *testing.T) {
	inv := Inventory()
	if len(inv) != 8 {
		t.Fatalf("inventory rows = %d, Table 1 has 8", len(inv))
	}
	wantProducts := map[string]string{
		"Node computer": "Enterprise 4500",
		"CPU":           "Ultra SPARC-II 400 MHz",
		"Network":       "Myrinet",
		"Switch":        "16-port LAN switch",
	}
	got := map[string]string{}
	for _, c := range inv {
		got[c.Component] = c.Product
	}
	for comp, prod := range wantProducts {
		if got[comp] != prod {
			t.Errorf("%s = %q, want %q", comp, got[comp], prod)
		}
	}
	// The bus row must mention both bus standards.
	var bus string
	for _, c := range inv {
		if c.Component == "Bus" {
			bus = c.Product
		}
	}
	if !strings.Contains(bus, "CompactPCI") || !strings.Contains(bus, "PCI") {
		t.Errorf("bus row = %q", bus)
	}
}

func TestCurrentModel(t *testing.T) {
	m := Current()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Nodes != 4 || m.CPUsPerNode != 6 {
		t.Errorf("nodes = %d × %d, paper: 4 × 6", m.Nodes, m.CPUsPerNode)
	}
	if m.WineLinks() != 20 {
		t.Errorf("WINE-2 links = %d, paper: 20 clusters", m.WineLinks())
	}
	if m.MDGLinks() != 16 {
		t.Errorf("MDGRAPE-2 links = %d, paper: 16 clusters", m.MDGLinks())
	}
}

func TestFutureUpgrades(t *testing.T) {
	cur, fut := Current(), Future()
	if fut.PCIBandwidth != 2*cur.PCIBandwidth {
		t.Errorf("PCI upgrade ×%g, §6.1 says ×2", fut.PCIBandwidth/cur.PCIBandwidth)
	}
	if fut.NetBandwidth != 3*cur.NetBandwidth {
		t.Errorf("Myrinet upgrade ×%g, §6.1 says ×3", fut.NetBandwidth/cur.NetBandwidth)
	}
}

func TestTransferTimes(t *testing.T) {
	m := Current()
	// 100 MB over a 100 MB/s PCI link ≈ 1 s.
	if dt := m.PCITime(100e6); math.Abs(dt-1) > 0.01 {
		t.Errorf("PCITime(100MB) = %g", dt)
	}
	if m.PCITime(0) != 0 || m.NetTime(-5) != 0 {
		t.Error("zero/negative bytes should cost nothing")
	}
	// Latency dominates tiny messages.
	if dt := m.NetTime(1); dt < m.NetLatency {
		t.Errorf("NetTime(1) = %g < latency", dt)
	}
}

func TestHostTime(t *testing.T) {
	m := Current()
	// 24 CPUs × 100 Mflops = 2.4 Gflop/s.
	if dt := m.HostTime(2.4e9); math.Abs(dt-1) > 1e-9 {
		t.Errorf("HostTime(2.4e9) = %g, want 1", dt)
	}
	if m.HostTime(0) != 0 {
		t.Error("zero flops should cost nothing")
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	for _, mod := range []func(*Model){
		func(m *Model) { m.Nodes = 0 },
		func(m *Model) { m.CPUFlops = 0 },
		func(m *Model) { m.PCILatency = -1 },
		func(m *Model) { m.WineLinksPerNode = -1 },
	} {
		m := Current()
		mod(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("invalid model accepted: %+v", m)
		}
	}
}
