// Package host models the general-purpose front end of the MDM: the four Sun
// Enterprise 4500 node computers, the Myrinet network between them, and the
// PCI / CompactPCI links to the WINE-2 and MDGRAPE-2 boards (§3.2–3.3 and
// Table 1 of the paper).
//
// The package provides two things: the component inventory of Table 1, and a
// bandwidth/latency cost model used by the performance model (internal/perf)
// to reproduce the paper's timing discussion (§6.1) — the current machine is
// communication-bound on 32-bit PCI, and the planned upgrades double the PCI
// bandwidth and triple the Myrinet bandwidth.
package host

import "fmt"

// Component is one row of Table 1.
type Component struct {
	Component    string
	Product      string
	Manufacturer string
}

// Inventory returns the MDM component list of Table 1.
func Inventory() []Component {
	return []Component{
		{"Node computer", "Enterprise 4500", "Sun Microsystems"},
		{"CPU", "Ultra SPARC-II 400 MHz", "Sun Microsystems"},
		{"Network", "Myrinet", "Myricom"},
		{"Switch", "16-port LAN switch", "Myricom"},
		{"Network card", "LAN PCI card (LANai 4.3)", "Myricom"},
		{"Link", "Bus bridge", "SBS Technologies"},
		{"Interface", "PCI host card/(Compact)PCI backplane controller card", "SBS Technologies"},
		{"Bus", "CompactPCI (WINE-2) / PCI (MDGRAPE-2), PCI local bus spec. rev. 2.1", "-"},
	}
}

// Model is the host-side cost model: node count, per-node compute rate and
// the two communication channels (board links and inter-node network).
type Model struct {
	Nodes       int     // node computers
	CPUsPerNode int     // processors per node
	CPUFlops    float64 // sustained flop/s per processor for host-side work

	PCIBandwidth float64 // bytes/s of one PCI/CompactPCI bridge link
	PCILatency   float64 // seconds per transfer setup
	NetBandwidth float64 // bytes/s of one Myrinet link
	NetLatency   float64 // seconds per message

	WineLinksPerNode int // WINE-2 cluster bridges per node (5)
	MDGLinksPerNode  int // MDGRAPE-2 cluster bridges per node (4)
}

// Current is the machine as measured in July 2000: 32-bit/33 MHz PCI
// (~133 MB/s theoretical, ~100 MB/s sustained) and first-generation Myrinet
// cards (~100 MB/s sustained).
func Current() Model {
	return Model{
		Nodes:            4,
		CPUsPerNode:      6,
		CPUFlops:         100e6, // sustained on a 400 MHz UltraSPARC-II
		PCIBandwidth:     100e6,
		PCILatency:       20e-6,
		NetBandwidth:     100e6,
		NetLatency:       20e-6,
		WineLinksPerNode: 5,
		MDGLinksPerNode:  4,
	}
}

// Future applies the §6.1 upgrades: 64-bit PCI (bandwidth ×2) and new
// Myrinet cards (bandwidth ×3).
func Future() Model {
	m := Current()
	m.PCIBandwidth *= 2
	m.NetBandwidth *= 3
	return m
}

// Validate reports model errors.
func (m Model) Validate() error {
	if m.Nodes < 1 || m.CPUsPerNode < 1 {
		return fmt.Errorf("host: non-positive node configuration")
	}
	if m.CPUFlops <= 0 || m.PCIBandwidth <= 0 || m.NetBandwidth <= 0 {
		return fmt.Errorf("host: non-positive rates")
	}
	if m.PCILatency < 0 || m.NetLatency < 0 {
		return fmt.Errorf("host: negative latencies")
	}
	if m.WineLinksPerNode < 0 || m.MDGLinksPerNode < 0 {
		return fmt.Errorf("host: negative link counts")
	}
	return nil
}

// PCITime returns the time to move the given bytes over one bridge link.
func (m Model) PCITime(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return m.PCILatency + float64(bytes)/m.PCIBandwidth
}

// NetTime returns the time to move the given bytes over one Myrinet link.
func (m Model) NetTime(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return m.NetLatency + float64(bytes)/m.NetBandwidth
}

// HostTime returns the time for the host to execute the given flops, spread
// over all processors.
func (m Model) HostTime(flops float64) float64 {
	if flops <= 0 {
		return 0
	}
	return flops / (float64(m.Nodes*m.CPUsPerNode) * m.CPUFlops)
}

// WineLinks returns the total number of host↔WINE-2 bridge links.
func (m Model) WineLinks() int { return m.Nodes * m.WineLinksPerNode }

// MDGLinks returns the total number of host↔MDGRAPE-2 bridge links.
func (m Model) MDGLinks() int { return m.Nodes * m.MDGLinksPerNode }
