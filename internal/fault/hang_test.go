package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestHangBlocksUntilReleased(t *testing.T) {
	in, err := ParseInjector("mdg:hang@call=1,board=2")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- in.HardwareCall(MDG2) }()
	select {
	case err := <-done:
		t.Fatalf("hung call returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	in.ReleaseHangs()
	select {
	case err := <-done:
		var stall *StallError
		if !errors.As(err, &stall) {
			t.Fatalf("released hang returned %v, want *StallError", err)
		}
		if stall.Site != MDG2 || stall.Board != 2 {
			t.Errorf("StallError = %+v, want site mdg board 2", stall)
		}
	case <-time.After(time.Second):
		t.Fatal("ReleaseHangs did not unblock the call")
	}
	// One-shot: the retry goes through clean.
	if err := in.HardwareCall(MDG2); err != nil {
		t.Errorf("retry after stall: %v", err)
	}
}

func TestHangDoesNotBlockOtherSites(t *testing.T) {
	in, err := ParseInjector("wine2:hang@call=1")
	if err != nil {
		t.Fatal(err)
	}
	go in.HardwareCall(WINE2) // wedged, holds no lock
	defer in.ReleaseHangs()
	done := make(chan error, 1)
	go func() { done <- in.HardwareCall(MDG2) }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("mdg call during wine2 hang: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("a hang on wine2 blocked an mdg call: injector lock held while wedged")
	}
}

func TestSlowDelaysThenProceeds(t *testing.T) {
	in, err := ParseInjector("wine2:slow@call=1,ms=30")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := in.HardwareCall(WINE2); err != nil {
		t.Fatalf("slow call failed: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("slow call took %v, want >= 30ms", d)
	}
	// One-shot: the next call is fast and clean.
	start = time.Now()
	if err := in.HardwareCall(WINE2); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("second call took %v after one-shot slow", d)
	}
}

func TestTransientBoardAttribution(t *testing.T) {
	in, err := ParseInjector("mdg:transient@call=1,board=3; mdg:transient@call=2")
	if err != nil {
		t.Fatal(err)
	}
	var te *TransientError
	if err := in.HardwareCall(MDG2); !errors.As(err, &te) || te.Board != 3 {
		t.Fatalf("attributed transient = %v (board %d), want board 3", err, te.Board)
	}
	if err := in.HardwareCall(MDG2); !errors.As(err, &te) || te.Board != -1 {
		t.Fatalf("unattributed transient = %v (board %d), want board -1", err, te.Board)
	}
}

func TestParseHangSlowRoundTrip(t *testing.T) {
	scenario := "mdg:hang@step=6; mdg:hang@call=2,board=1; wine2:slow@step=4,ms=80"
	events, err := Parse(scenario)
	if err != nil {
		t.Fatal(err)
	}
	var parts []string
	for _, e := range events {
		parts = append(parts, e.String())
	}
	again, err := Parse(strings.Join(parts, "; "))
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if events[i] != again[i] {
			t.Errorf("round trip changed event %d: %v -> %v", i, events[i], again[i])
		}
	}
	for _, bad := range []string{
		"mpi:hang@call=1",            // hang is a hardware kind
		"run:slow@step=1,ms=5",       // slow is a hardware kind
		"mdg:hang@call=1,step=2",     // both schedules
		"wine2:slow@step=1,ms=-5",    // negative value
		"mdg:transient@step=1,ms=-1", // negative value
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestConsumeMarksFiredEvents(t *testing.T) {
	const scenario = "mdg:transient@step=2; wine2:transient@step=5; mdg:hang@step=8"
	a, err := ParseInjector(scenario)
	if err != nil {
		t.Fatal(err)
	}
	a.BeginStep(2)
	if err := a.HardwareCall(MDG2); err == nil {
		t.Fatal("scheduled transient did not fire")
	}
	// A fresh injector for the resumed process consumes the fired log: the
	// step-2 event stays consumed, the rest of the schedule is still armed.
	b, err := ParseInjector(scenario)
	if err != nil {
		t.Fatal(err)
	}
	b.Consume(a.Fired())
	if got := b.Remaining(); got != 2 {
		t.Fatalf("Remaining after Consume = %d, want 2", got)
	}
	b.BeginStep(2)
	if err := b.HardwareCall(MDG2); err != nil {
		t.Errorf("consumed event refired: %v", err)
	}
	b.BeginStep(5)
	if err := b.HardwareCall(WINE2); err == nil {
		t.Error("unconsumed event did not fire after resume")
	}
	if got, want := len(b.Fired()), 2; got != want {
		t.Errorf("fired log = %d entries, want %d", got, want)
	}
	// Lines that match nothing are ignored.
	b.Consume([]string{"step 9: mdg:transient@step=99", "garbage"})
	if got := b.Remaining(); got != 1 {
		t.Errorf("Remaining after junk Consume = %d, want 1", got)
	}
}
