package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// The scenario DSL: semicolon-separated clauses, each
//
//	site:kind@key=value,key=value,...
//
// Sites: wine2, mdg, mpi, run, store. Kinds and their keys:
//
//	wine2:board-drop@step=3,board=2      kill WINE-2 board 2 in step 3
//	mdg:transient@call=7                 fail the 7th MDGRAPE-2 call once
//	wine2:bitflip@step=5,word=12,bit=40  flip bit 40 of DFT accumulator 12
//	mpi:drop@src=1,dst=0,n=2             drop the 2nd message rank 1 → 0
//	mpi:delay@src=0,dst=1,n=3,ms=50      stall that message 50 ms
//	mpi:corrupt@src=0,dst=2,n=1,word=0,bit=7
//	mpi:senderr@src=1,dst=0,n=4          transient link error on send
//	mpi:recverr@src=1,dst=0,n=4          transient link error on receive
//	run:fatal@step=100                   host crash: restart from checkpoint
//	mdg:hang@step=6                      wedge a call until the watchdog fires
//	wine2:slow@step=4,ms=80              stall a call 80 ms, then proceed
//	store:torn-write@write=3,bytes=10    power cut: 3rd write persists 10 bytes
//	store:enospc@write=2                 2nd write fails, disk full
//	store:eio@sync=1                     1st fsync fails with an I/O error
//	store:bitrot@read=4,offset=7         flip a bit of byte 7 of the 4th read
//	store:crash-before-rename@rename=1   power cut just before the 1st rename
//	store:crash@sync=2                   power cut at the 2nd fsync
//
// transient and hang take an optional board= attributing the fault to one
// board, which lets the circuit-breaker layer quarantine a repeat offender.
//
// Hardware clauses take exactly one of call= (per-site hardware call count)
// or step= (simulation step); message clauses address the n-th message of a
// (src, dst) pair, which is deterministic because each rank's sends are
// program-ordered. Store clauses take exactly one of write=, read=, create=,
// rename= or sync= — the N-th storage operation of that class, counted per
// class by the fault-injecting filesystem — which is deterministic because
// the storage layer is driven from the program-ordered step loop.

// kindNames maps DSL kind tokens to Kind values.
var kindNames = map[string]Kind{
	"board-drop": BoardDrop,
	"transient":  Transient,
	"bitflip":    BitFlip,
	"drop":       MsgDrop,
	"delay":      MsgDelay,
	"corrupt":    MsgCorrupt,
	"senderr":    SendErr,
	"recverr":    RecvErr,
	"fatal":      Fatal,
	"hang":       Hang,
	"slow":       Slow,

	"torn-write":          TornWrite,
	"enospc":              NoSpace,
	"eio":                 IOErr,
	"bitrot":              BitRot,
	"crash-before-rename": CrashRename,
	"crash":               Crash,
}

// siteNames maps DSL site tokens to Site values.
var siteNames = map[string]Site{
	string(WINE2): WINE2,
	string(MDG2):  MDG2,
	string(MPI):   MPI,
	string(Run):   Run,
	string(Store): Store,
}

// Parse parses a scenario string into its fault schedule.
func Parse(scenario string) ([]Event, error) {
	var events []Event
	for _, clause := range strings.Split(scenario, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		e, err := parseClause(clause)
		if err != nil {
			return nil, err
		}
		if err := e.validate(); err != nil {
			return nil, fmt.Errorf("%w in %q", err, clause)
		}
		events = append(events, e)
	}
	return events, nil
}

// ParseInjector parses a scenario and builds its injector.
func ParseInjector(scenario string) (*Injector, error) {
	events, err := Parse(scenario)
	if err != nil {
		return nil, err
	}
	return NewInjector(events...)
}

func parseClause(clause string) (Event, error) {
	head, args, hasArgs := strings.Cut(clause, "@")
	siteTok, kindTok, ok := strings.Cut(head, ":")
	if !ok {
		return Event{}, fmt.Errorf("fault: clause %q: want site:kind@key=value,...", clause)
	}
	site, ok := siteNames[strings.TrimSpace(siteTok)]
	if !ok {
		return Event{}, fmt.Errorf("fault: clause %q: unknown site %q", clause, siteTok)
	}
	kind, ok := kindNames[strings.TrimSpace(kindTok)]
	if !ok {
		return Event{}, fmt.Errorf("fault: clause %q: unknown kind %q", clause, kindTok)
	}
	e := Event{Site: site, Kind: kind, Src: -1, Dst: -1}
	if kind == Transient || kind == Hang || kind == Slow {
		e.Board = -1 // board attribution is optional for these
	}
	if !hasArgs {
		return e, nil
	}
	for _, kv := range strings.Split(args, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Event{}, fmt.Errorf("fault: clause %q: malformed key=value %q", clause, kv)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return Event{}, fmt.Errorf("fault: clause %q: %s=%q is not an integer", clause, key, val)
		}
		if n < 0 {
			return Event{}, fmt.Errorf("fault: clause %q: %s=%q must be non-negative", clause, key, val)
		}
		switch strings.TrimSpace(key) {
		case "call":
			e.Call = n
		case "step":
			e.Step = int(n)
		case "board":
			e.Board = int(n)
		case "word":
			e.Word = int(n)
		case "bit":
			e.Bit = int(n)
		case "src":
			e.Src = int(n)
		case "dst":
			e.Dst = int(n)
		case "n":
			e.Nth = n
		case "ms":
			e.DelayMS = int(n)
		case OpWrite, OpRead, OpCreate, OpRename, OpSync:
			if e.OpClass != "" {
				return Event{}, fmt.Errorf("fault: clause %q: %s= conflicts with %s=", clause, key, e.OpClass)
			}
			e.OpClass = strings.TrimSpace(key)
			e.Op = n
		case "bytes":
			e.Bytes = int(n)
		case "offset":
			e.Offset = n
		default:
			return Event{}, fmt.Errorf("fault: clause %q: unknown key %q", clause, key)
		}
	}
	return e, nil
}

// RandomEvents draws a reproducible fault schedule: n events spread over
// [1, steps], covering the hardware fault classes on both engines. The same
// seed always yields the identical schedule (the determinism the acceptance
// tests assert). Events land in distinct steps so recovery reports stay
// bit-identical even on the parallel path.
func RandomEvents(seed int64, steps, n int) []Event {
	rng := rand.New(rand.NewSource(seed))
	if n > steps {
		n = steps
	}
	used := make(map[int]bool)
	var events []Event
	for len(events) < n {
		step := 1 + rng.Intn(steps)
		if used[step] {
			continue
		}
		used[step] = true
		site := WINE2
		if rng.Intn(2) == 1 {
			site = MDG2
		}
		var e Event
		switch rng.Intn(3) {
		case 0:
			e = Event{Site: site, Kind: Transient, Step: step, Board: -1}
		case 1:
			e = Event{Site: site, Kind: BitFlip, Step: step,
				Word: rng.Intn(64), Bit: 62 - rng.Intn(8)}
		default:
			e = Event{Site: site, Kind: BoardDrop, Step: step, Board: rng.Intn(8)}
		}
		events = append(events, e)
	}
	return events
}
