package fault

import (
	"strings"
	"testing"
)

// The store DSL round-trips through Event.String, and StoreOp fires each
// event exactly once at its per-class operation count.
func TestStoreDSLRoundTrip(t *testing.T) {
	clauses := []string{
		"store:torn-write@write=3,bytes=10",
		"store:enospc@write=2",
		"store:eio@sync=1",
		"store:bitrot@read=4,offset=7",
		"store:crash-before-rename@rename=1",
		"store:crash@sync=2",
		"store:eio@create=5",
	}
	for _, c := range clauses {
		events, err := Parse(c)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c, err)
		}
		if len(events) != 1 {
			t.Fatalf("Parse(%q): %d events, want 1", c, len(events))
		}
		if got := events[0].String(); got != c {
			t.Errorf("round trip: %q -> %q", c, got)
		}
	}
}

func TestStoreDSLRejects(t *testing.T) {
	bad := []string{
		"store:torn-write@bytes=10",        // no op counter
		"store:torn-write@read=1,bytes=4",  // torn-write is write-keyed
		"store:bitrot@write=1,offset=0",    // bitrot is read-keyed
		"store:crash-before-rename@sync=1", // rename-keyed only
		"store:enospc@write=1,read=2",      // two op counters
		"wine2:torn-write@write=1,bytes=0", // wrong site
		"store:transient@call=1",           // hardware kind on store site
	}
	for _, c := range bad {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q): want error, got nil", c)
		}
	}
}

func TestStoreOpFiresPerClassCounter(t *testing.T) {
	in, err := ParseInjector("store:enospc@write=2; store:eio@sync=1; store:bitrot@read=1,offset=3")
	if err != nil {
		t.Fatal(err)
	}
	if f := in.StoreOp(OpWrite); f.Hit {
		t.Fatalf("write 1 fired: %+v", f)
	}
	if f := in.StoreOp(OpCreate); f.Hit {
		t.Fatalf("create 1 fired: %+v", f)
	}
	f := in.StoreOp(OpWrite)
	if !f.Hit || f.Kind != NoSpace {
		t.Fatalf("write 2: got %+v, want NoSpace hit", f)
	}
	f = in.StoreOp(OpSync)
	if !f.Hit || f.Kind != IOErr {
		t.Fatalf("sync 1: got %+v, want IOErr hit", f)
	}
	f = in.StoreOp(OpRead)
	if !f.Hit || f.Kind != BitRot || f.Offset != 3 {
		t.Fatalf("read 1: got %+v, want BitRot offset 3", f)
	}
	// Every event fired exactly once; the counters keep advancing silently.
	if got := in.Remaining(); got != 0 {
		t.Fatalf("Remaining() = %d, want 0", got)
	}
	if f := in.StoreOp(OpWrite); f.Hit {
		t.Fatalf("write 3 re-fired: %+v", f)
	}
	fired := in.Fired()
	if len(fired) != 3 || !strings.Contains(fired[0], "store:enospc@write=2") {
		t.Fatalf("Fired() = %v", fired)
	}
}
