package fault

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	scenario := "wine2:board-drop@step=3,board=2; mdg:transient@call=7;" +
		"wine2:bitflip@step=5,word=12,bit=40; mpi:drop@src=1,dst=0,n=2;" +
		"mpi:delay@src=0,dst=1,n=3,ms=50; mpi:corrupt@src=0,dst=2,n=1,word=0,bit=7;" +
		"mpi:senderr@src=1,dst=0,n=4; mpi:recverr@src=1,dst=0,n=4; run:fatal@step=100"
	events, err := Parse(scenario)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 9 {
		t.Fatalf("parsed %d events, want 9", len(events))
	}
	// Re-render and re-parse: the DSL is its own canonical form.
	var parts []string
	for _, e := range events {
		parts = append(parts, e.String())
	}
	again, err := Parse(strings.Join(parts, ";"))
	if err != nil {
		t.Fatalf("re-parse of %q: %v", strings.Join(parts, ";"), err)
	}
	if !reflect.DeepEqual(events, again) {
		t.Errorf("round trip changed events:\n%v\n%v", events, again)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"nonsense",
		"wine2:explode@call=1",
		"venus:transient@call=1",
		"wine2:transient@call=1,step=2",                // both schedules
		"wine2:transient",                              // neither schedule
		"mpi:drop@src=1,dst=1,n=1",                     // src == dst
		"mpi:drop@src=0,dst=1",                         // missing n
		"run:fatal@call=3",                             // fatal is step-keyed
		"mdg:transient@call=x",                         // non-integer
		"wine2:transient@call=1,zork=2",                // unknown key
		"mpi:drop@src=1,dst=0 n=2",                     // malformed pair
		"wine2:board-drop@step=1;run:transient@step=2", // transient on run site
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestHardwareCallSchedule(t *testing.T) {
	in, err := ParseInjector("mdg:transient@call=2; wine2:board-drop@call=1,board=5")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.HardwareCall(MDG2); err != nil {
		t.Fatalf("call 1 failed: %v", err)
	}
	err = in.HardwareCall(MDG2)
	var te *TransientError
	if !errors.As(err, &te) || te.Site != MDG2 {
		t.Fatalf("call 2 = %v, want TransientError on mdg", err)
	}
	if err := in.HardwareCall(MDG2); err != nil {
		t.Fatalf("call 3 failed after transient: %v", err)
	}
	err = in.HardwareCall(WINE2)
	var be *BoardError
	if !errors.As(err, &be) || be.Board != 5 {
		t.Fatalf("wine2 call 1 = %v, want BoardError board 5", err)
	}
	// The dropout event fires once: the *schedule* is consumed even though a
	// real board stays dead until the host re-stripes around it.
	if err := in.HardwareCall(WINE2); err != nil {
		t.Fatalf("wine2 call 2 after consumed dropout: %v", err)
	}
	if got := in.Remaining(); got != 0 {
		t.Errorf("Remaining = %d", got)
	}
	if got := len(in.Fired()); got != 2 {
		t.Errorf("Fired = %d entries", got)
	}
}

func TestStepKeyedEvents(t *testing.T) {
	in, err := ParseInjector("wine2:transient@step=3")
	if err != nil {
		t.Fatal(err)
	}
	in.BeginStep(1)
	if err := in.HardwareCall(WINE2); err != nil {
		t.Fatalf("step 1: %v", err)
	}
	in.BeginStep(3)
	if err := in.HardwareCall(WINE2); err == nil {
		t.Fatal("step 3 call did not fire")
	}
	if err := in.HardwareCall(WINE2); err != nil {
		t.Fatalf("second call in step 3: %v", err)
	}
}

func TestPendingFlip(t *testing.T) {
	in, err := ParseInjector("mdg:bitflip@call=1,word=9,bit=13")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := in.PendingFlip(MDG2); ok {
		t.Fatal("flip pending before any call")
	}
	if err := in.HardwareCall(MDG2); err != nil {
		t.Fatalf("bitflip call errored: %v", err)
	}
	word, bit, ok := in.PendingFlip(MDG2)
	if !ok || word != 9 || bit != 13 {
		t.Fatalf("PendingFlip = (%d, %d, %v)", word, bit, ok)
	}
	if _, _, ok := in.PendingFlip(MDG2); ok {
		t.Fatal("flip not consumed")
	}
}

func TestMessageFates(t *testing.T) {
	in, err := ParseInjector("mpi:drop@src=1,dst=0,n=2; mpi:senderr@src=1,dst=0,n=3;" +
		"mpi:delay@src=0,dst=1,n=1,ms=1; mpi:corrupt@src=2,dst=0,n=1,word=3,bit=8;" +
		"mpi:recverr@src=0,dst=2,n=2")
	if err != nil {
		t.Fatal(err)
	}
	if f := in.SendFate(1, 0); f != (Fate{}) {
		t.Errorf("msg 1: %+v", f)
	}
	if f := in.SendFate(1, 0); !f.Drop {
		t.Errorf("msg 2 not dropped: %+v", f)
	}
	f := in.SendFate(1, 0)
	var le *LinkError
	if !errors.As(f.Err, &le) {
		t.Errorf("msg 3 err = %v", f.Err)
	}
	if f := in.SendFate(0, 1); f.Delay != time.Millisecond {
		t.Errorf("delay fate = %+v", f)
	}
	if f := in.SendFate(2, 0); !f.Corrupt || f.Word != 3 || f.Bit != 8 {
		t.Errorf("corrupt fate = %+v", f)
	}
	if err := in.RecvError(0, 2); err != nil {
		t.Errorf("recv 1: %v", err)
	}
	if err := in.RecvError(0, 2); err == nil {
		t.Error("recv 2 did not fail")
	}
}

func TestStepFault(t *testing.T) {
	in, err := ParseInjector("run:fatal@step=4")
	if err != nil {
		t.Fatal(err)
	}
	in.BeginStep(3)
	if err := in.StepFault(); err != nil {
		t.Fatalf("step 3: %v", err)
	}
	in.BeginStep(4)
	err = in.StepFault()
	var fe *FatalError
	if !errors.As(err, &fe) || fe.Step != 4 {
		t.Fatalf("step 4 = %v, want FatalError", err)
	}
	if err := in.StepFault(); err != nil {
		t.Fatalf("fatal refired: %v", err)
	}
}

func TestDeterministicFiringLog(t *testing.T) {
	// The same scenario driven by the same call sequence yields the
	// identical firing log — the reproducibility the chaos tests rely on.
	run := func() []string {
		in, err := ParseInjector("mdg:transient@call=2; wine2:bitflip@call=1,word=0,bit=3; run:fatal@step=2")
		if err != nil {
			t.Fatal(err)
		}
		in.BeginStep(1)
		_ = in.StepFault()
		_ = in.HardwareCall(MDG2)
		_ = in.HardwareCall(WINE2)
		in.PendingFlip(WINE2)
		in.BeginStep(2)
		_ = in.StepFault()
		_ = in.HardwareCall(MDG2)
		return in.Fired()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("firing logs differ:\n%v\n%v", a, b)
	}
	if len(a) != 3 {
		t.Errorf("fired %d events, want 3: %v", len(a), a)
	}
}

func TestRandomEventsReproducible(t *testing.T) {
	a := RandomEvents(42, 100, 5)
	b := RandomEvents(42, 100, 5)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different schedules")
	}
	c := RandomEvents(43, 100, 5)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules")
	}
	steps := map[int]bool{}
	for _, e := range a {
		if e.Step < 1 || e.Step > 100 {
			t.Errorf("event step %d outside [1, 100]", e.Step)
		}
		if steps[e.Step] {
			t.Errorf("duplicate step %d breaks report determinism", e.Step)
		}
		steps[e.Step] = true
		if err := e.validate(); err != nil {
			t.Errorf("invalid random event %v: %v", e, err)
		}
	}
}

func TestFlipFloat64(t *testing.T) {
	v := 1.5
	w := FlipFloat64(v, 3)
	if w == v {
		t.Error("flip changed nothing")
	}
	if got := FlipFloat64(w, 3); got != v {
		t.Errorf("double flip = %g, want %g", got, v)
	}
	// High-exponent flips produce the NaN/Inf/huge values the sanity guards
	// must catch.
	if hi := FlipFloat64(1.0, 62); !math.IsInf(hi, 0) && math.Abs(hi) < 1e100 && !math.IsNaN(hi) {
		t.Errorf("bit-62 flip of 1.0 = %g, expected a wild value", hi)
	}
}
