package fault

import (
	"strings"
	"testing"
)

// FuzzParseScenario drives the DSL parser with arbitrary input. The parser
// must never panic, and anything it accepts must satisfy the canonical-form
// property the recovery stack depends on: the rendered events re-parse
// successfully and idempotently (String of the re-parse equals String of the
// parse), and the schedule builds an injector.
func FuzzParseScenario(f *testing.F) {
	f.Add("wine2:board-drop@step=3,board=2; mdg:transient@call=7")
	f.Add("mdg:hang@step=6; wine2:slow@step=4,ms=80")
	f.Add("mpi:delay@src=0,dst=1,n=3,ms=50; run:fatal@step=100")
	f.Add("mdg:transient@step=9,board=1; mpi:corrupt@src=0,dst=2,n=1,word=0,bit=7")
	f.Add("wine2:bitflip@step=5,word=12,bit=40")
	f.Add(" ; ;; mdg:hang@message=2 ; ")
	f.Add("mdg:transient@step=-1")
	f.Add("bogus:kind@step=1")
	f.Fuzz(func(t *testing.T, scenario string) {
		events, err := Parse(scenario)
		if err != nil {
			return
		}
		render := func(evs []Event) string {
			parts := make([]string, len(evs))
			for i, e := range evs {
				parts[i] = e.String()
			}
			return strings.Join(parts, "; ")
		}
		first := render(events)
		again, err := Parse(first)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", scenario, first, err)
		}
		if second := render(again); second != first {
			t.Fatalf("rendering not idempotent:\n  %q\n  %q", first, second)
		}
		if _, err := NewInjector(events...); err != nil {
			t.Fatalf("parsed %q but injector rejected it: %v", scenario, err)
		}
	})
}
