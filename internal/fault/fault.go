// Package fault is the deterministic fault-injection layer of the MDM
// reproduction. The paper's headline run held 2,304 ASIC chips busy for 36.5
// hours (§5); at that scale the machine's real enemy is not flops but a flaky
// board, a hung Myrinet link, or a bit flip mid-stream — the GRAPE lineage
// papers treat chip-count-versus-reliability as an explicit design axis. This
// package provides the *schedule* of such faults: a scriptable, seeded
// Injector whose hooks are threaded into the simulated hardware
// (internal/wine2, internal/mdgrape2) and the message-passing substrate
// (internal/mpi), so the recovery policy in internal/core can be exercised
// end-to-end and reproducibly.
//
// Determinism contract: every event fires exactly once, at a position fixed
// by the scenario (a per-site hardware call count, a simulation step, or a
// per-(src,dst) message count). Scheduling events in distinct steps
// guarantees bit-identical recovery reports across runs even on the parallel
// path, where goroutine interleaving decides which *rank* observes a fault
// but never *whether* or *when* (in steps) it fires.
package fault

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"
)

// Site identifies an injection point in the machine stack.
type Site string

// The injectable subsystems.
const (
	WINE2 Site = "wine2" // wavenumber-space engine (internal/wine2)
	MDG2  Site = "mdg"   // real-space engine (internal/mdgrape2)
	MPI   Site = "mpi"   // message-passing substrate (internal/mpi)
	Run   Site = "run"   // the run itself (fatal host faults)
	Store Site = "store" // durable storage layer (internal/store VFS)
)

// Kind enumerates the fault classes the injector can schedule.
type Kind int

// The fault classes.
const (
	// BoardDrop permanently kills one hardware board: every calculation call
	// on the site fails with *BoardError until the host re-stripes the work
	// across the surviving boards.
	BoardDrop Kind = iota
	// Transient fails exactly one hardware call with *TransientError; a
	// retry succeeds.
	Transient
	// BitFlip corrupts one bit of one pipeline-memory word during one
	// hardware call (a WINE-2 DFT accumulator or an MDGRAPE-2 force word).
	BitFlip
	// MsgDrop silently discards one MPI message on the wire.
	MsgDrop
	// MsgDelay stalls one MPI message in the link for DelayMS milliseconds.
	MsgDelay
	// MsgCorrupt flips one bit of one MPI message payload.
	MsgCorrupt
	// SendErr fails one MPI send with a transient link error.
	SendErr
	// RecvErr fails one MPI receive with a transient link error.
	RecvErr
	// Fatal kills the whole run at a step (host crash); only a
	// restart-from-checkpoint recovers.
	Fatal
	// Hang wedges one hardware call: the call blocks until the watchdog
	// releases it (Injector.ReleaseHangs) or MaxHang elapses, then fails
	// with *StallError; a retry succeeds.
	Hang
	// Slow stalls one hardware call for DelayMS milliseconds (bounded by
	// MaxDelay) before letting it proceed normally.
	Slow
	// TornWrite crashes the storage layer mid-write: the Op-th store write
	// persists only its first Bytes bytes, every byte not yet fsynced is
	// lost, and all further storage operations fail with the FS down.
	TornWrite
	// NoSpace fails one store write with an out-of-space error; the
	// filesystem stays up and nothing is persisted by the failed write.
	NoSpace
	// IOErr fails one store operation (read, write, create, rename or sync)
	// with an I/O error; the filesystem stays up.
	IOErr
	// BitRot corrupts one store read: the bit at byte Offset of the data
	// returned by the Op-th read is flipped, simulating silent on-disk decay
	// that only a checksum can catch.
	BitRot
	// CrashRename crashes the storage layer immediately before the Op-th
	// rename: the rename never happens, unsynced data is lost, and all
	// further storage operations fail.
	CrashRename
	// Crash is a plain power cut at the Op-th store operation of the given
	// class: the operation has no effect, unsynced data is lost, and all
	// further storage operations fail.
	Crash
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case BoardDrop:
		return "board-drop"
	case Transient:
		return "transient"
	case BitFlip:
		return "bitflip"
	case MsgDrop:
		return "drop"
	case MsgDelay:
		return "delay"
	case MsgCorrupt:
		return "corrupt"
	case SendErr:
		return "senderr"
	case RecvErr:
		return "recverr"
	case Fatal:
		return "fatal"
	case Hang:
		return "hang"
	case Slow:
		return "slow"
	case TornWrite:
		return "torn-write"
	case NoSpace:
		return "enospc"
	case IOErr:
		return "eio"
	case BitRot:
		return "bitrot"
	case CrashRename:
		return "crash-before-rename"
	case Crash:
		return "crash"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled fault.
type Event struct {
	Site Site
	Kind Kind

	// Hardware scheduling (BoardDrop, Transient, BitFlip, Fatal): fire on
	// the site's Call-th hardware call (Call > 0), or on the first call of
	// simulation step Step (Step > 0, counted by Injector.BeginStep).
	Call int64
	Step int

	// Board names the board killed by BoardDrop, or attributes a Transient
	// or Hang to a specific board so the circuit-breaker layer can quarantine
	// a chronically flaky one (-1 = unattributed).
	Board int
	// Word and Bit locate a BitFlip / MsgCorrupt: Word indexes the corrupted
	// memory word (wave index on WINE-2, flattened force component on
	// MDGRAPE-2, float64 element of an MPI payload), Bit the bit within it.
	Word int
	Bit  int

	// Message scheduling (MsgDrop, MsgDelay, MsgCorrupt, SendErr, RecvErr):
	// fire on the Nth message of the (Src → Dst) pair. Per-pair counts are
	// deterministic because each rank's sends are program-ordered.
	Src, Dst int
	Nth      int64

	// DelayMS is the MsgDelay stall in milliseconds (bounded by MaxDelay).
	DelayMS int

	// Store scheduling (TornWrite, NoSpace, IOErr, BitRot, CrashRename,
	// Crash): fire on the Op-th storage operation of class OpClass ("write",
	// "read", "create", "rename" or "sync"), counted per class by the
	// injection-aware filesystem. Per-class counts are deterministic because
	// the storage layer is driven from the program-ordered step loop.
	Op      int64
	OpClass string
	// Bytes is how many bytes of a TornWrite's buffer persist before the
	// simulated power cut (0 = the write is lost entirely).
	Bytes int
	// Offset is the byte a BitRot corrupts within the data returned by the
	// targeted read.
	Offset int64
}

// String renders the event in the scenario DSL syntax (see Parse).
func (e Event) String() string {
	switch e.Kind {
	case BoardDrop:
		return fmt.Sprintf("%s:%s@%s,board=%d", e.Site, e.Kind, e.when(), e.Board)
	case Transient, Hang:
		if e.Board >= 0 {
			return fmt.Sprintf("%s:%s@%s,board=%d", e.Site, e.Kind, e.when(), e.Board)
		}
		return fmt.Sprintf("%s:%s@%s", e.Site, e.Kind, e.when())
	case Fatal:
		return fmt.Sprintf("%s:%s@%s", e.Site, e.Kind, e.when())
	case Slow:
		return fmt.Sprintf("%s:%s@%s,ms=%d", e.Site, e.Kind, e.when(), e.DelayMS)
	case BitFlip:
		return fmt.Sprintf("%s:%s@%s,word=%d,bit=%d", e.Site, e.Kind, e.when(), e.Word, e.Bit)
	case MsgDrop, SendErr, RecvErr:
		return fmt.Sprintf("%s:%s@src=%d,dst=%d,n=%d", e.Site, e.Kind, e.Src, e.Dst, e.Nth)
	case MsgDelay:
		return fmt.Sprintf("%s:%s@src=%d,dst=%d,n=%d,ms=%d", e.Site, e.Kind, e.Src, e.Dst, e.Nth, e.DelayMS)
	case MsgCorrupt:
		return fmt.Sprintf("%s:%s@src=%d,dst=%d,n=%d,word=%d,bit=%d", e.Site, e.Kind, e.Src, e.Dst, e.Nth, e.Word, e.Bit)
	case TornWrite:
		return fmt.Sprintf("%s:%s@%s=%d,bytes=%d", e.Site, e.Kind, e.OpClass, e.Op, e.Bytes)
	case BitRot:
		return fmt.Sprintf("%s:%s@%s=%d,offset=%d", e.Site, e.Kind, e.OpClass, e.Op, e.Offset)
	case NoSpace, IOErr, CrashRename, Crash:
		return fmt.Sprintf("%s:%s@%s=%d", e.Site, e.Kind, e.OpClass, e.Op)
	}
	return fmt.Sprintf("%s:%s", e.Site, e.Kind)
}

func (e Event) when() string {
	if e.Call > 0 {
		return fmt.Sprintf("call=%d", e.Call)
	}
	return fmt.Sprintf("step=%d", e.Step)
}

// validate reports scheduling errors in an event.
func (e Event) validate() error {
	switch e.Kind {
	case BoardDrop, Transient, BitFlip, Hang, Slow:
		if e.Site != WINE2 && e.Site != MDG2 {
			return fmt.Errorf("fault: %s event on non-hardware site %q", e.Kind, e.Site)
		}
		if (e.Call > 0) == (e.Step > 0) {
			return fmt.Errorf("fault: %s event needs exactly one of call= or step=", e.Kind)
		}
	case Fatal:
		if e.Site != Run {
			return fmt.Errorf("fault: fatal event must use site %q", Run)
		}
		if e.Step <= 0 {
			return fmt.Errorf("fault: fatal event needs step=")
		}
	case MsgDrop, MsgDelay, MsgCorrupt, SendErr, RecvErr:
		if e.Site != MPI {
			return fmt.Errorf("fault: %s event on non-mpi site %q", e.Kind, e.Site)
		}
		if e.Src < 0 || e.Dst < 0 || e.Src == e.Dst {
			return fmt.Errorf("fault: %s event needs distinct src= and dst=", e.Kind)
		}
		if e.Nth <= 0 {
			return fmt.Errorf("fault: %s event needs n= (per-pair message count)", e.Kind)
		}
	case TornWrite, NoSpace, IOErr, BitRot, CrashRename, Crash:
		if e.Site != Store {
			return fmt.Errorf("fault: %s event must use site %q", e.Kind, Store)
		}
		if e.Op <= 0 || e.OpClass == "" {
			return fmt.Errorf("fault: %s event needs exactly one of %s=, %s=, %s=, %s= or %s=",
				e.Kind, OpWrite, OpRead, OpCreate, OpRename, OpSync)
		}
		want := storeOpClasses[e.Kind]
		ok := false
		for _, c := range want {
			if e.OpClass == c {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("fault: %s event cannot be keyed by %s= (allowed: %s)",
				e.Kind, e.OpClass, strings.Join(want, ", "))
		}
	default:
		return fmt.Errorf("fault: unknown event kind %d", int(e.Kind))
	}
	return nil
}

// BoardError reports a permanently failed board. The recovery layer reacts
// by re-striping work across the surviving boards.
type BoardError struct {
	Site  Site
	Board int
}

// Error implements error.
//
//mdm:hotallocok -- error rendering: reached only once a fault fired, off the clean step path
func (e *BoardError) Error() string {
	return fmt.Sprintf("fault: %s board %d down", e.Site, e.Board)
}

// TransientError reports a one-shot hardware hiccup; a retry succeeds.
// Board attributes the hiccup to a specific board when the scenario named
// one (-1 = unattributed); the circuit-breaker layer uses it to quarantine
// chronically flaky boards.
type TransientError struct {
	Site  Site
	Board int
}

// Error implements error.
//
//mdm:hotallocok -- error rendering: reached only once a fault fired, off the clean step path
func (e *TransientError) Error() string {
	return fmt.Sprintf("fault: transient %s error", e.Site)
}

// StallError reports a hardware call that stopped making progress and was
// interrupted — by the watchdog releasing an injected hang, or by the MaxHang
// backstop on an unsupervised run. It is retryable; Board names the wedged
// board when the scenario attributed one (-1 = unattributed).
type StallError struct {
	Site  Site
	Board int
}

// Error implements error.
//
//mdm:hotallocok -- error rendering: reached only once a fault fired, off the clean step path
func (e *StallError) Error() string {
	return fmt.Sprintf("fault: %s stalled (watchdog)", e.Site)
}

// LinkError reports a transient message-passing failure (SendErr/RecvErr).
type LinkError struct {
	Src, Dst int
}

// Error implements error.
//
//mdm:hotallocok -- error rendering: reached only once a fault fired, off the clean step path
func (e *LinkError) Error() string {
	return fmt.Sprintf("fault: link %d→%d transient error", e.Src, e.Dst)
}

// FatalError reports an unrecoverable host fault; only a restart from the
// last checkpoint continues the run.
type FatalError struct {
	Step int
}

// Error implements error.
//
//mdm:hotallocok -- error rendering: reached only once a fault fired, off the clean step path
func (e *FatalError) Error() string {
	return fmt.Sprintf("fault: fatal host fault at step %d", e.Step)
}

// Fate is the injector's verdict on one MPI message, consulted by the
// substrate on every send when a hook is installed.
type Fate struct {
	Drop    bool          // discard the message on the wire
	Delay   time.Duration // stall the link before delivery
	Corrupt bool          // flip one payload bit
	Word    int           // corrupted payload element (Corrupt only)
	Bit     int           // corrupted bit within the element (Corrupt only)
	Err     error         // fail the operation instead (nil = proceed)
}

// Storage-operation classes: the per-class counters store events are keyed
// against. "create" also counts append-opens (both materialize a directory
// entry or a writable handle); "sync" counts file fsyncs and directory fsyncs
// on one clock, in program order.
const (
	OpWrite  = "write"
	OpRead   = "read"
	OpCreate = "create"
	OpRename = "rename"
	OpSync   = "sync"
)

// storeOpClasses lists which operation classes each store fault kind may be
// keyed by.
var storeOpClasses = map[Kind][]string{
	TornWrite:   {OpWrite},
	NoSpace:     {OpWrite},
	IOErr:       {OpWrite, OpRead, OpCreate, OpRename, OpSync},
	BitRot:      {OpRead},
	CrashRename: {OpRename},
	Crash:       {OpWrite, OpRead, OpCreate, OpRename, OpSync},
}

// StoreFate is the injector's verdict on one storage operation, consulted by
// the store VFS (internal/store.FaultFS) on every call when a hook is
// installed. The zero value lets the operation proceed.
type StoreFate struct {
	Hit    bool  // an event fired for this operation
	Kind   Kind  // TornWrite, NoSpace, IOErr, BitRot, CrashRename or Crash
	Bytes  int   // TornWrite: bytes of the buffer that persist
	Offset int64 // BitRot: byte offset to corrupt in the returned data
}

// StoreHook is the injection surface the storage layer consults. *Injector
// implements it; internal/store holds it as an interface so it stays testable
// with local fakes.
type StoreHook interface {
	// StoreOp fires at every storage operation of the given class (OpWrite,
	// OpRead, OpCreate, OpRename, OpSync) and reports the operation's fate.
	StoreOp(class string) StoreFate
}

// MaxDelay bounds injected message delays so a mis-scripted scenario cannot
// stall a run longer than a deadline-equipped receiver would wait anyway.
const MaxDelay = 5 * time.Second

// MaxHang bounds an injected hang when no watchdog is armed: the wedged call
// returns a StallError on its own after this long, so a scenario cannot block
// an unsupervised run forever.
const MaxHang = 2 * time.Second

// HardwareHook is the injection surface the simulated hardware consults.
// *Injector implements it; the hardware packages hold it as an interface so
// they stay testable with local fakes.
type HardwareHook interface {
	// HardwareCall fires at the entry of every calculation call on a site.
	// A non-nil return (typed *BoardError or *TransientError) makes the
	// call fail.
	HardwareCall(site Site) error
	// PendingFlip reports a bit flip scheduled for the current call at the
	// site and consumes it: the word index and bit to corrupt.
	PendingFlip(site Site) (word, bit int, ok bool)
}

// Injector holds a fault schedule and the live counters it fires against.
// All methods are safe for concurrent use by the SPMD rank goroutines.
type Injector struct {
	mu     sync.Mutex
	events []*scheduled
	step   int
	calls  map[Site]int64
	flips  map[Site]*scheduled // registered for the current call, unconsumed
	sends  map[[2]int]int64
	recvs  map[[2]int]int64
	stores map[string]int64
	fired  []string
	hangs  []chan struct{}
}

type scheduled struct {
	Event
	fired bool
}

// NewInjector builds an injector over a validated fault schedule.
func NewInjector(events ...Event) (*Injector, error) {
	in := &Injector{
		calls:  make(map[Site]int64),
		flips:  make(map[Site]*scheduled),
		sends:  make(map[[2]int]int64),
		recvs:  make(map[[2]int]int64),
		stores: make(map[string]int64),
	}
	for i, e := range events {
		if err := e.validate(); err != nil {
			return nil, fmt.Errorf("%w (event %d)", err, i)
		}
		in.events = append(in.events, &scheduled{Event: e})
	}
	return in, nil
}

// BeginStep advances the injector's step clock; step-keyed events arm for
// the hardware calls that follow. The recovery layer calls it once per force
// step.
func (in *Injector) BeginStep(step int) {
	in.mu.Lock()
	in.step = step
	in.mu.Unlock()
}

// StepFault reports a Fatal event scheduled for the current step, firing it.
func (in *Injector) StepFault() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, e := range in.events {
		if e.fired || e.Kind != Fatal || e.Step != in.step {
			continue
		}
		in.fire(e)
		return &FatalError{Step: in.step}
	}
	return nil
}

// HardwareCall implements HardwareHook. An armed Hang event blocks the call
// after the injector lock is released, so concurrent ranks and the watchdog
// stay live while one "board" is wedged.
func (in *Injector) HardwareCall(site Site) error {
	in.mu.Lock()
	in.calls[site]++
	n := in.calls[site]
	var failure, hang *scheduled
	var slow time.Duration
	for _, e := range in.events {
		if e.fired || e.Site != site {
			continue
		}
		switch e.Kind {
		case BoardDrop, Transient, BitFlip, Hang, Slow:
		default:
			continue
		}
		if !(e.Call == n || (e.Call == 0 && e.Step > 0 && e.Step == in.step)) {
			continue
		}
		switch e.Kind {
		case BitFlip:
			// Arm the flip for this call; the pipeline consumes it via
			// PendingFlip at its memory-readout point.
			in.fire(e)
			in.flips[site] = e
		case Slow:
			in.fire(e)
			d := time.Duration(e.DelayMS) * time.Millisecond
			if d > MaxDelay {
				d = MaxDelay
			}
			if d > slow {
				slow = d
			}
		case Hang:
			if hang == nil {
				in.fire(e)
				hang = e
			}
		default:
			if failure == nil {
				failure = e
			}
		}
	}
	var release chan struct{}
	if hang != nil {
		release = make(chan struct{})
		in.hangs = append(in.hangs, release)
	}
	if failure != nil {
		in.fire(failure)
	}
	in.mu.Unlock()

	if slow > 0 {
		//mdm:wallclockok -- deliberate injected slowdown: the whole point of the scenario is to burn wall time; results are unaffected
		time.Sleep(slow)
	}
	if hang != nil {
		select {
		case <-release:
		//mdm:wallclockok -- MaxHang backstop on a deliberately injected hang; fires only in fault scenarios
		case <-time.After(MaxHang):
		}
		return &StallError{Site: site, Board: hang.Board}
	}
	if failure == nil {
		return nil
	}
	switch failure.Kind {
	case BoardDrop:
		return &BoardError{Site: site, Board: failure.Board}
	default:
		return &TransientError{Site: site, Board: failure.Board}
	}
}

// ReleaseHangs unblocks every hardware call currently wedged by a Hang event;
// each returns a *StallError to its caller. The watchdog invokes it when it
// declares a stall, converting silent non-progress into a retryable error.
func (in *Injector) ReleaseHangs() {
	in.mu.Lock()
	hangs := in.hangs
	in.hangs = nil
	in.mu.Unlock()
	for _, ch := range hangs {
		close(ch)
	}
}

// PendingFlip implements HardwareHook.
func (in *Injector) PendingFlip(site Site) (word, bit int, ok bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	e := in.flips[site]
	if e == nil {
		return 0, 0, false
	}
	delete(in.flips, site)
	return e.Word, e.Bit, true
}

// SendFate decides the fate of the next (src → dst) message. It implements
// the send half of the mpi fault-hook interface.
func (in *Injector) SendFate(src, dst int) Fate {
	in.mu.Lock()
	defer in.mu.Unlock()
	key := [2]int{src, dst}
	in.sends[key]++
	n := in.sends[key]
	for _, e := range in.events {
		if e.fired || e.Site != MPI || e.Src != src || e.Dst != dst || e.Nth != n {
			continue
		}
		switch e.Kind {
		case MsgDrop:
			in.fire(e)
			return Fate{Drop: true}
		case MsgDelay:
			d := time.Duration(e.DelayMS) * time.Millisecond
			if d > MaxDelay {
				d = MaxDelay
			}
			in.fire(e)
			return Fate{Delay: d}
		case MsgCorrupt:
			in.fire(e)
			return Fate{Corrupt: true, Word: e.Word, Bit: e.Bit}
		case SendErr:
			in.fire(e)
			return Fate{Err: &LinkError{Src: src, Dst: dst}}
		}
	}
	return Fate{}
}

// RecvError decides whether the next (src → dst) receive fails. It
// implements the receive half of the mpi fault-hook interface.
func (in *Injector) RecvError(src, dst int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	key := [2]int{src, dst}
	in.recvs[key]++
	n := in.recvs[key]
	for _, e := range in.events {
		if e.fired || e.Site != MPI || e.Kind != RecvErr || e.Src != src || e.Dst != dst || e.Nth != n {
			continue
		}
		in.fire(e)
		return &LinkError{Src: src, Dst: dst}
	}
	return nil
}

// StoreOp implements StoreHook: it advances the per-class storage-operation
// counter and fires the first unfired store event keyed to this operation.
func (in *Injector) StoreOp(class string) StoreFate {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stores[class]++
	n := in.stores[class]
	for _, e := range in.events {
		if e.fired || e.Site != Store || e.OpClass != class || e.Op != n {
			continue
		}
		in.fire(e)
		return StoreFate{Hit: true, Kind: e.Kind, Bytes: e.Bytes, Offset: e.Offset}
	}
	return StoreFate{}
}

// fire marks an event consumed and logs it. Callers hold in.mu.
//
//mdm:hotallocok -- fault-event logging: runs only when an injected event fires, never on a clean step
func (in *Injector) fire(e *scheduled) {
	e.fired = true
	in.fired = append(in.fired, fmt.Sprintf("step %d: %s", in.step, e.Event))
}

// Fired returns the log of fired events, in firing order.
func (in *Injector) Fired() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, len(in.fired))
	copy(out, in.fired)
	return out
}

// Consume marks as already-fired the events recorded in a fired log from a
// previous incarnation of the same scenario — the journal's injector cursor —
// so a resumed run does not refire them. Each log line consumes at most one
// matching unfired event; lines that match nothing (counters drifted, or the
// scenario changed) are ignored. Only step-keyed events replay exactly: call-
// and message-count-keyed events are counted from process start, so their
// unfired remainder fires relative to the resumed process's counters.
func (in *Injector) Consume(fired []string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, line := range fired {
		rendered := line
		if _, after, ok := strings.Cut(line, ": "); ok {
			rendered = after
		}
		for _, e := range in.events {
			if !e.fired && e.Event.String() == rendered {
				e.fired = true
				in.fired = append(in.fired, line)
				break
			}
		}
	}
}

// Remaining returns how many scheduled events have not fired yet.
func (in *Injector) Remaining() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, e := range in.events {
		if !e.fired {
			n++
		}
	}
	return n
}

// FlipFloat64 flips one bit of a float64 — the corruption primitive shared
// by the pipeline-memory and message-payload injection points.
func FlipFloat64(v float64, bit int) float64 {
	return math.Float64frombits(math.Float64bits(v) ^ 1<<uint(bit&63))
}
