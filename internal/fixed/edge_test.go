package fixed

import (
	"math"
	"testing"
)

// TestCarrierBoundaryFormats pins the 62-bit carrier limit exactly: the
// widest legal formats on either side of the boundary, at both extremes of
// the Int/Frac split.
//
//mdm:fixedok -- this test constructs out-of-range formats on purpose
func TestCarrierBoundaryFormats(t *testing.T) {
	cases := []struct {
		f     Format
		valid bool
	}{
		{F(30, 31), true},  // 62 bits: widest balanced format
		{F(31, 30), true},  // 62 bits, mirrored split
		{F(61, 0), true},   // 62 bits, all integer
		{F(0, 61), true},   // 62 bits, all fraction
		{F(31, 31), false}, // 63 bits: one too many
		{F(62, 0), false},
		{F(0, 62), false},
		{F(0, 1), true}, // 2 bits: narrowest legal format
		{F(1, 0), true},
		{F(0, 0), false}, // sign bit only
	}
	for _, c := range cases {
		if got := c.f.Valid(); got != c.valid {
			t.Errorf("%v (%d bits): Valid() = %v, want %v", c.f, c.f.TotalBits(), got, c.valid)
		}
	}
	// At the widest legal format the raw extremes must still fit int64.
	w := F(61, 0)
	if w.MaxRaw() != (1<<61)-1 || w.MinRaw() != -(1<<61) {
		t.Errorf("61-bit extremes: [%d, %d]", w.MinRaw(), w.MaxRaw())
	}
}

// TestWideFor checks the product-width constructor used by the WINE-2
// accumulation stages (and recommended by the fixedformat analyzer).
func TestWideFor(t *testing.T) {
	for frac := uint(0); frac <= 60; frac++ {
		f := WideFor(frac)
		if !f.Valid() {
			t.Fatalf("WideFor(%d) = %v invalid", frac, f)
		}
		if f.Frac != frac {
			t.Fatalf("WideFor(%d).Frac = %d", frac, f.Frac)
		}
		if f.TotalBits() != 62 {
			t.Fatalf("WideFor(%d) is %d bits, want the full carrier", frac, f.TotalBits())
		}
	}
	// Beyond 60 fractional bits the fraction is clamped so an integer bit
	// survives.
	if f := WideFor(64); !f.Valid() || f.Frac != 60 {
		t.Errorf("WideFor(64) = %v", f)
	}
}

// TestSaturateVsWrapAtExtremes drives the two overflow behaviours one step
// past each raw extreme: saturation must pin, wrapping must reappear at the
// opposite end, and both must be identities inside the range.
func TestSaturateVsWrapAtExtremes(t *testing.T) {
	f := F(3, 4) // 8-bit format: raw range [-128, 127]
	maxR, minR := f.MaxRaw(), f.MinRaw()
	cases := []struct {
		raw      int64
		sat, wrp int64
	}{
		{maxR, maxR, maxR},         // at the top: both identity
		{minR, minR, minR},         // at the bottom: both identity
		{maxR + 1, maxR, minR},     // one past the top: wrap goes negative
		{minR - 1, minR, maxR},     // one past the bottom: wrap goes positive
		{maxR + 5, maxR, minR + 4}, // a few past
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := f.Saturate(c.raw); got != c.sat {
			t.Errorf("Saturate(%d) = %d, want %d", c.raw, got, c.sat)
		}
		if got := f.Wrap(c.raw); got != c.wrp {
			t.Errorf("Wrap(%d) = %d, want %d", c.raw, got, c.wrp)
		}
	}
}

// TestQuantizeAtExactExtremes quantizes the exact real values of MaxRaw and
// MinRaw: the maximum representable value and the most negative one must
// round-trip, and the first value beyond each must saturate, not wrap.
func TestQuantizeAtExactExtremes(t *testing.T) {
	f := F(2, 5) // range [-4, 3.96875] in steps of 1/32
	top := f.Float(f.MaxRaw())
	bottom := f.Float(f.MinRaw())
	if got := f.Quantize(top); got != f.MaxRaw() {
		t.Errorf("Quantize(top) = %d, want %d", got, f.MaxRaw())
	}
	if got := f.Quantize(bottom); got != f.MinRaw() {
		t.Errorf("Quantize(bottom) = %d, want %d", got, f.MinRaw())
	}
	if got := f.Quantize(top + f.Eps()); got != f.MaxRaw() {
		t.Errorf("Quantize(top+eps) = %d, want saturation at %d", got, f.MaxRaw())
	}
	if got := f.Quantize(bottom - f.Eps()); got != f.MinRaw() {
		t.Errorf("Quantize(bottom-eps) = %d, want saturation at %d", got, f.MinRaw())
	}
	if got := f.Quantize(math.Inf(1)); got != f.MaxRaw() {
		t.Errorf("Quantize(+inf) = %d", got)
	}
	if got := f.Quantize(math.Inf(-1)); got != f.MinRaw() {
		t.Errorf("Quantize(-inf) = %d", got)
	}
}

// TestSinCosPhaseWraparound checks the table at the seam: phases just below
// one turn, exactly one turn, and negative phases must all agree with the
// mathematically wrapped phase, because only the fractional bits of the
// fixed-point phase word reach the lookup.
func TestSinCosPhaseWraparound(t *testing.T) {
	const phaseFrac = 24
	tab, err := NewSinCosTable(10, F(1, 22))
	if err != nil {
		t.Fatal(err)
	}
	turn := int64(1) << phaseFrac
	pairs := []struct{ a, b int64 }{
		{0, turn},                   // 0 and exactly one turn
		{1, turn + 1},               // just past the seam
		{turn - 1, 2*turn - 1},      // just before the seam, one turn apart
		{turn / 3, turn/3 - 2*turn}, // negative phases wrap too
		{turn / 2, -turn / 2},
	}
	for _, p := range pairs {
		sa, ca := tab.SinCos(p.a, phaseFrac)
		sb, cb := tab.SinCos(p.b, phaseFrac)
		if sa != sb || ca != cb {
			t.Errorf("phase %d vs %d: sin %d vs %d, cos %d vs %d", p.a, p.b, sa, sb, ca, cb)
		}
	}
	// The seam must also be continuous: the output one phase step below one
	// turn is within one table step of the output at zero.
	sSeam, _ := tab.SinCos(turn-1, phaseFrac)
	s0, _ := tab.SinCos(0, phaseFrac)
	step := 2 * math.Pi / float64(tab.Size()) // max |d sin| per segment ≈ segment width
	if d := math.Abs(tab.Out().Float(sSeam - s0)); d > step {
		t.Errorf("discontinuity at the phase seam: |Δsin| = %g", d)
	}
}
