package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFormatBasics(t *testing.T) {
	f := F(1, 22)
	if got := f.TotalBits(); got != 24 {
		t.Errorf("TotalBits = %d", got)
	}
	if !f.Valid() {
		t.Error("s1.22 should be valid")
	}
	if got := f.Scale(); got != 1<<22 {
		t.Errorf("Scale = %g", got)
	}
	if got := f.MaxRaw(); got != (1<<23)-1 {
		t.Errorf("MaxRaw = %d", got)
	}
	if got := f.MinRaw(); got != -(1 << 23) {
		t.Errorf("MinRaw = %d", got)
	}
	if f.String() != "s1.22" {
		t.Errorf("String = %q", f.String())
	}
}

//mdm:fixedok -- this test constructs invalid formats on purpose to exercise Valid
func TestFormatValidity(t *testing.T) {
	if F(40, 40).Valid() {
		t.Error("81-bit format should be invalid")
	}
	if F(0, 0).Valid() {
		t.Error("1-bit format should be invalid")
	}
	if !F(0, 31).Valid() {
		t.Error("s0.31 should be valid")
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	f := F(3, 20)
	for _, x := range []float64{0, 0.5, -0.5, 1.25, -7.999, 3.14159} {
		raw := f.Quantize(x)
		back := f.Float(raw)
		if math.Abs(back-x) > f.Eps() {
			t.Errorf("round trip %g -> %d -> %g (eps %g)", x, raw, back, f.Eps())
		}
	}
}

func TestQuantizeSaturates(t *testing.T) {
	f := F(1, 10)
	if got := f.Quantize(100); got != f.MaxRaw() {
		t.Errorf("Quantize(100) = %d, want MaxRaw %d", got, f.MaxRaw())
	}
	if got := f.Quantize(-100); got != f.MinRaw() {
		t.Errorf("Quantize(-100) = %d, want MinRaw %d", got, f.MinRaw())
	}
	if got := f.Quantize(math.NaN()); got != 0 {
		t.Errorf("Quantize(NaN) = %d, want 0", got)
	}
}

func TestWrapTwosComplement(t *testing.T) {
	f := F(0, 7) // 8-bit
	if got := f.Wrap(128); got != -128 {
		t.Errorf("Wrap(128) = %d, want -128", got)
	}
	if got := f.Wrap(255); got != -1 {
		t.Errorf("Wrap(255) = %d, want -1", got)
	}
	if got := f.Wrap(256); got != 0 {
		t.Errorf("Wrap(256) = %d, want 0", got)
	}
	if got := f.Wrap(-129); got != 127 {
		t.Errorf("Wrap(-129) = %d, want 127", got)
	}
}

// Property: Wrap is idempotent and always lands inside the representable range.
func TestWrapProperty(t *testing.T) {
	f := F(2, 13)
	fn := func(raw int64) bool {
		w := f.Wrap(raw)
		return w >= f.MinRaw() && w <= f.MaxRaw() && f.Wrap(w) == w
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantization error is at most half an LSB inside the range.
func TestQuantizeErrorBound(t *testing.T) {
	f := F(4, 18)
	fn := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 15.9) // stay in range
		raw := f.Quantize(x)
		return math.Abs(f.Float(raw)-x) <= f.Eps()/2+1e-15
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizeWrapPhase(t *testing.T) {
	// Phase format: pure fraction (0 integer bits). Phases one whole turn
	// apart must agree on their fractional bits — that is all the SinCos
	// datapath ever reads.
	f := F(0, 30)
	mask := int64(1)<<30 - 1
	a := f.QuantizeWrap(1.25)
	b := f.QuantizeWrap(0.25)
	if a&mask != b&mask {
		t.Errorf("QuantizeWrap(1.25) = %d, want ≡ %d mod one turn", a, b)
	}
	// -0.75 turns ≡ 0.25 turns
	c := f.QuantizeWrap(-0.75)
	if c&mask != b&mask {
		t.Errorf("QuantizeWrap(-0.75) = %d, want ≡ %d mod one turn", c, b)
	}
}

func TestConvert(t *testing.T) {
	from := F(1, 20)
	to := F(1, 10)
	raw := from.Quantize(0.123456)
	conv := Convert(raw, from, to)
	if math.Abs(to.Float(conv)-0.123456) > to.Eps() {
		t.Errorf("Convert down lost too much: %g", to.Float(conv))
	}
	// Up-conversion is exact.
	up := Convert(conv, to, from)
	if from.Float(up) != to.Float(conv) {
		t.Errorf("Convert up not exact: %g vs %g", from.Float(up), to.Float(conv))
	}
}

func TestMulRound(t *testing.T) {
	// 0.5 * 0.5 = 0.25 in s1.10 * s1.10 -> s1.20 exact
	a := F(1, 10).Quantize(0.5)
	b := F(1, 10).Quantize(0.5)
	p := MulRound(a, b, 10, 10, 20)
	if got := F(1, 20).Float(p); got != 0.25 {
		t.Errorf("0.5*0.5 = %g", got)
	}
	// Rounding down to 8 fractional bits.
	p8 := MulRound(a, b, 10, 10, 8)
	if got := F(1, 8).Float(p8); got != 0.25 {
		t.Errorf("0.5*0.5 @8 = %g", got)
	}
	// Negative operand.
	n := F(1, 10).Quantize(-0.5)
	pn := MulRound(n, b, 10, 10, 20)
	if got := F(1, 20).Float(pn); got != -0.25 {
		t.Errorf("-0.5*0.5 = %g", got)
	}
}

// Property: MulRound result is within half an output LSB of the exact product.
func TestMulRoundProperty(t *testing.T) {
	opf := F(1, 14)
	fn := func(xa, xb float64) bool {
		if math.IsNaN(xa) || math.IsInf(xa, 0) || math.IsNaN(xb) || math.IsInf(xb, 0) {
			return true
		}
		xa = math.Mod(xa, 1.9)
		xb = math.Mod(xb, 1.9)
		a := opf.Quantize(xa)
		b := opf.Quantize(xb)
		p := MulRound(a, b, 14, 14, 18)
		exact := opf.Float(a) * opf.Float(b)
		return math.Abs(F(3, 18).Float(p)-exact) <= math.Ldexp(1, -19)+1e-15
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestSinCosTableAccuracy(t *testing.T) {
	tbl, err := NewSinCosTable(10, F(1, 22))
	if err != nil {
		t.Fatal(err)
	}
	maxErr := tbl.MaxAbsError(10000, 32)
	// 1024-entry linear interpolation: analytic max error (2π/1024)²/8 ≈ 4.7e-6,
	// plus output quantization 2^-23.
	if maxErr > 6e-6 {
		t.Errorf("max sin/cos error = %g, want <= 6e-6", maxErr)
	}
	if maxErr == 0 {
		t.Error("zero error is implausible for a quantized table")
	}
}

func TestSinCosQuadrature(t *testing.T) {
	tbl, err := NewSinCosTable(10, F(1, 22))
	if err != nil {
		t.Fatal(err)
	}
	const phaseFrac = 32
	f := F(0, phaseFrac)
	for _, turns := range []float64{0, 0.125, 0.25, 0.5, 0.75, 0.99} {
		p := f.QuantizeWrap(turns)
		s, c := tbl.SinCos(p, phaseFrac)
		sf, cf := tbl.out.Float(s), tbl.out.Float(c)
		if math.Abs(sf*sf+cf*cf-1) > 1e-4 {
			t.Errorf("sin²+cos² at %g turns = %g", turns, sf*sf+cf*cf)
		}
	}
}

func TestSinCosKnownValues(t *testing.T) {
	tbl, _ := NewSinCosTable(12, F(1, 24))
	const phaseFrac = 32
	pf := F(0, phaseFrac)
	cases := []struct {
		turns    float64
		sin, cos float64
	}{
		{0, 0, 1},
		{0.25, 1, 0},
		{0.5, 0, -1},
		{0.75, -1, 0},
		{1.0 / 12, 0.5, math.Sqrt(3) / 2},
	}
	for _, c := range cases {
		s, co := tbl.SinCos(pf.QuantizeWrap(c.turns), phaseFrac)
		if math.Abs(tbl.out.Float(s)-c.sin) > 1e-5 {
			t.Errorf("sin(%g turns) = %g, want %g", c.turns, tbl.out.Float(s), c.sin)
		}
		if math.Abs(tbl.out.Float(co)-c.cos) > 1e-5 {
			t.Errorf("cos(%g turns) = %g, want %g", c.turns, tbl.out.Float(co), c.cos)
		}
	}
}

func TestSinCosPeriodicity(t *testing.T) {
	tbl, _ := NewSinCosTable(10, F(1, 22))
	const phaseFrac = 30
	pf := F(0, phaseFrac)
	p1 := pf.QuantizeWrap(0.3)
	p2 := p1 + (1 << phaseFrac) // +1 full turn in raw units
	s1, c1 := tbl.SinCos(p1, phaseFrac)
	s2, c2 := tbl.SinCos(p2, phaseFrac)
	if s1 != s2 || c1 != c2 {
		t.Error("SinCos not periodic in whole turns")
	}
}

func TestNewSinCosTableErrors(t *testing.T) {
	if _, err := NewSinCosTable(1, F(1, 22)); err == nil {
		t.Error("logSize 1 should be rejected")
	}
	if _, err := NewSinCosTable(21, F(1, 22)); err == nil {
		t.Error("logSize 21 should be rejected")
	}
	if _, err := NewSinCosTable(10, F(40, 40)); err == nil { //mdm:fixedok -- invalid on purpose: rejection path
		t.Error("invalid format should be rejected")
	}
}

func BenchmarkSinCos(b *testing.B) {
	tbl, _ := NewSinCosTable(10, F(1, 22))
	var s, c int64
	for i := 0; i < b.N; i++ {
		s, c = tbl.SinCos(int64(i)*0x9E3779B9, 32)
	}
	_, _ = s, c
}
