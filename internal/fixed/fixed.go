// Package fixed implements the parameterized fixed-point two's-complement
// arithmetic used by the WINE-2 pipeline simulator.
//
// The paper (§3.4.4) states that "fixed-point two's complement format is used
// in all the arithmetic calculations in a pipeline" and that the resulting
// relative accuracy of the wavenumber-space force is about 10^-4.5. This
// package provides the building blocks for reproducing that datapath:
//
//   - Format describes a signed fixed-point representation (integer and
//     fractional bit widths) and converts between float64 and raw integers
//     with round-to-nearest quantization, with either saturating or wrapping
//     (true two's-complement) overflow behaviour.
//   - SinCosTable is a table-lookup sine/cosine unit with linear
//     interpolation, the core of the WINE-2 DFT/IDFT pipelines. Phase is a
//     fixed-point number of turns; only its fractional part matters, which a
//     wrapping datapath gets for free.
//
// Raw values are carried in int64. Formats are limited to 62 total bits so
// that sums of a few terms cannot overflow the carrier type; pipeline code is
// responsible for keeping product widths (sum of operand bit widths) within
// int64 as real hardware keeps them within its adder trees.
package fixed

import (
	"fmt"
	"math"
)

// Format describes a signed fixed-point two's-complement representation with
// Int integer bits and Frac fractional bits (plus an implicit sign bit).
type Format struct {
	Int  uint // integer bits, excluding sign
	Frac uint // fractional bits
}

// F is shorthand for Format{Int: i, Frac: f}.
func F(i, f uint) Format { return Format{Int: i, Frac: f} }

// WideFor returns the widest valid Format with the given fractional width:
// all remaining carrier bits become integer bits. It is the checked
// constructor for product-width intermediates (frac = Frac_a + Frac_b after a
// multiply), where a fixed Int width on top of a variable product width could
// silently exceed the 62-bit carrier. frac must leave at least one value bit.
func WideFor(frac uint) Format {
	if frac > 60 {
		frac = 60
	}
	return Format{Int: 61 - frac, Frac: frac}
}

// TotalBits returns the total width including the sign bit.
func (f Format) TotalBits() uint { return f.Int + f.Frac + 1 }

// Valid reports whether the format fits the int64 carrier with headroom.
func (f Format) Valid() bool { return f.TotalBits() >= 2 && f.TotalBits() <= 62 }

// Scale returns 2^Frac, the factor between real values and raw integers.
func (f Format) Scale() float64 { return math.Ldexp(1, int(f.Frac)) }

// MaxRaw returns the largest representable raw value (2^(Int+Frac) - 1).
func (f Format) MaxRaw() int64 { return (int64(1) << (f.Int + f.Frac)) - 1 }

// MinRaw returns the smallest representable raw value (-2^(Int+Frac)).
func (f Format) MinRaw() int64 { return -(int64(1) << (f.Int + f.Frac)) }

// Eps returns the representable step 2^-Frac.
func (f Format) Eps() float64 { return math.Ldexp(1, -int(f.Frac)) }

// String implements fmt.Stringer, e.g. "s1.22" for 1 integer and 22
// fractional bits.
func (f Format) String() string { return fmt.Sprintf("s%d.%d", f.Int, f.Frac) }

// Saturate clamps raw into the representable range of f.
func (f Format) Saturate(raw int64) int64 {
	if raw > f.MaxRaw() {
		return f.MaxRaw()
	}
	if raw < f.MinRaw() {
		return f.MinRaw()
	}
	return raw
}

// Wrap reduces raw modulo 2^TotalBits into the representable range, i.e. true
// two's-complement overflow. This is how a hardware adder with no saturation
// logic behaves, and it conveniently implements phase arithmetic modulo one
// turn when Int == 0.
func (f Format) Wrap(raw int64) int64 {
	n := f.TotalBits()
	mask := (int64(1) << n) - 1
	raw &= mask
	if raw>>(n-1) != 0 { // sign bit set
		raw -= int64(1) << n
	}
	return raw
}

// Quantize converts x to raw fixed point with round-to-nearest-even and
// saturating overflow.
func (f Format) Quantize(x float64) int64 {
	if math.IsNaN(x) {
		return 0
	}
	r := math.RoundToEven(x * f.Scale())
	if r >= float64(f.MaxRaw()) {
		return f.MaxRaw()
	}
	if r <= float64(f.MinRaw()) {
		return f.MinRaw()
	}
	return int64(r)
}

// QuantizeWrap converts x to raw fixed point with round-to-nearest-even and
// wrapping overflow.
func (f Format) QuantizeWrap(x float64) int64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	// Reduce in floating point first so the integer conversion cannot
	// overflow for huge x; the final Wrap makes the result exact for the
	// surviving low bits only, which is all hardware would keep anyway.
	period := math.Ldexp(1, int(f.Int)+1) // representable span in real units
	x = math.Mod(x, period)
	return f.Wrap(int64(math.RoundToEven(x * f.Scale())))
}

// Float converts a raw value in format f back to float64.
func (f Format) Float(raw int64) float64 { return float64(raw) / f.Scale() }

// Convert re-quantizes a raw value from format f to format g, rounding to
// nearest and saturating in g. Shifting right discards fractional bits with
// rounding; shifting left is exact.
func Convert(raw int64, from, to Format) int64 {
	switch {
	case to.Frac >= from.Frac:
		shifted := raw << (to.Frac - from.Frac)
		return to.Saturate(shifted)
	default:
		shift := from.Frac - to.Frac
		half := int64(1) << (shift - 1)
		// Round half away from zero, matching a simple hardware rounder.
		if raw >= 0 {
			raw = (raw + half) >> shift
		} else {
			raw = -((-raw + half) >> shift)
		}
		return to.Saturate(raw)
	}
}

// MulRound multiplies two raw values and rounds the product down to outFrac
// fractional bits, given the operands' fractional bit counts. The caller must
// ensure the operand widths sum to < 63 bits; this mirrors a hardware
// multiplier of fixed width.
func MulRound(a, b int64, aFrac, bFrac, outFrac uint) int64 {
	p := a * b
	pf := aFrac + bFrac
	if outFrac >= pf {
		return p << (outFrac - pf)
	}
	shift := pf - outFrac
	half := int64(1) << (shift - 1)
	if p >= 0 {
		return (p + half) >> shift
	}
	return -((-p + half) >> shift)
}

// SinCosTable is a quarter-resolution sine/cosine lookup unit with linear
// interpolation, modelling the trigonometric function generator of a WINE-2
// pipeline. The table stores 2^LogSize samples of sin over one full turn.
type SinCosTable struct {
	logSize uint
	out     Format
	sin     []int64 // quantized sin(2π i / 2^logSize), length 2^logSize + 1
}

// NewSinCosTable builds a table with 2^logSize segments whose samples and
// outputs are quantized to format out. logSize must be in [2, 20].
func NewSinCosTable(logSize uint, out Format) (*SinCosTable, error) {
	if logSize < 2 || logSize > 20 {
		return nil, fmt.Errorf("fixed: logSize %d out of range [2,20]", logSize)
	}
	if !out.Valid() {
		return nil, fmt.Errorf("fixed: invalid output format %v", out)
	}
	n := 1 << logSize
	t := &SinCosTable{logSize: logSize, out: out, sin: make([]int64, n+1)}
	for i := 0; i <= n; i++ {
		t.sin[i] = out.Quantize(math.Sin(2 * math.Pi * float64(i) / float64(n)))
	}
	return t, nil
}

// Size returns the number of table segments.
func (t *SinCosTable) Size() int { return 1 << t.logSize }

// Out returns the output format of the unit.
func (t *SinCosTable) Out() Format { return t.out }

// SinCos evaluates sin and cos of a phase given in fixed-point turns with
// phaseFrac fractional bits. Only the fractional part of the phase is used
// (the hardware datapath wraps modulo one turn). phaseFrac must be at least
// logSize + 1.
func (t *SinCosTable) SinCos(phase int64, phaseFrac uint) (sin, cos int64) {
	sin = t.lookup(phase, phaseFrac)
	// cos(x) = sin(x + 1/4 turn)
	quarter := int64(1) << (phaseFrac - 2)
	cos = t.lookup(phase+quarter, phaseFrac)
	return sin, cos
}

func (t *SinCosTable) lookup(phase int64, phaseFrac uint) int64 {
	mask := (int64(1) << phaseFrac) - 1
	p := phase & mask // fractional part of the phase, in [0, 1) turns
	idxShift := phaseFrac - t.logSize
	idx := p >> idxShift
	rem := p & ((int64(1) << idxShift) - 1) // position within the segment
	a := t.sin[idx]
	b := t.sin[idx+1]
	// Linear interpolation: a + (b-a) * rem / 2^idxShift, rounded.
	diff := b - a
	interp := a + roundShift(diff*rem, idxShift)
	return t.out.Saturate(interp)
}

func roundShift(v int64, shift uint) int64 {
	if shift == 0 {
		return v
	}
	half := int64(1) << (shift - 1)
	if v >= 0 {
		return (v + half) >> shift
	}
	return -((-v + half) >> shift)
}

// MaxAbsError returns an empirically measured maximum absolute error of the
// table over n uniformly spaced probe phases, compared against math.Sin. It
// is used by tests and by the accuracy experiment of §3.4.4.
func (t *SinCosTable) MaxAbsError(n int, phaseFrac uint) float64 {
	maxErr := 0.0
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n) // turns
		phase := int64(math.Round(x * math.Ldexp(1, int(phaseFrac))))
		s, c := t.SinCos(phase, phaseFrac)
		es := math.Abs(t.out.Float(s) - math.Sin(2*math.Pi*x))
		ec := math.Abs(t.out.Float(c) - math.Cos(2*math.Pi*x))
		if es > maxErr {
			maxErr = es
		}
		if ec > maxErr {
			maxErr = ec
		}
	}
	return maxErr
}
