// Package mpi provides the in-process message-passing substrate that stands
// in for the MPI library of the paper's host software (§4: "We developed MD
// program written in C for MDM, which is parallelized with Message Passing
// Interface").
//
// A World is a fixed set of ranks; each rank runs in its own goroutine and
// communicates through buffered channels (one FIFO per directed rank pair),
// in the spirit of "share memory by communicating". Point-to-point Send/Recv
// use integer tags with strict FIFO matching — the deterministic SPMD style
// of the paper's MD code. Collectives (Barrier, Bcast, AllreduceSum, Gather,
// Allgather) are built on the point-to-point layer so that the byte counters
// used by the host performance model see all traffic.
//
// Every blocking primitive is bounded: receives (and the collectives built on
// them) observe the world deadline (SetTimeout) or a per-call deadline
// (RecvWithin, BarrierWithin) and fail with a typed ErrTimeout instead of
// deadlocking. Ranks carry health state (MarkDead) so peers of a crashed rank
// fail fast with ErrRankDead, and World.Run cancels the whole group when any
// rank errors so no survivor blocks on a peer that already unwound. A
// FaultHook (implemented by fault.Injector) can drop, delay, corrupt, or fail
// messages for chaos testing.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mdm/internal/fault"
)

// RecvTimeout is the default bound on blocking sends and receives. It is
// generous for tests yet keeps hangs debuggable; SetTimeout tightens it.
const RecvTimeout = 30 * time.Second

// AnyTag matches any message tag in Recv.
const AnyTag = -1

// Typed failure modes. Errors returned by Send/Recv/collectives wrap one of
// these, so callers classify with errors.Is.
var (
	// ErrTimeout reports that a bounded primitive hit its deadline.
	ErrTimeout = errors.New("mpi: deadline exceeded")
	// ErrCanceled reports that the run group was canceled because a peer
	// rank failed; the operation was abandoned, not timed out.
	ErrCanceled = errors.New("mpi: run group canceled")
	// ErrRankDead reports communication with a rank marked dead.
	ErrRankDead = errors.New("mpi: rank marked dead")
	// ErrTagMismatch reports a message arriving under an unexpected tag. In
	// this strict-FIFO SPMD substrate that is either a program bug or the
	// wake of a dropped message desynchronizing a pair's stream — recovery
	// layers treat it like a lost message and retry the step.
	ErrTagMismatch = errors.New("mpi: tag mismatch")
)

// FaultHook intercepts the message layer for fault injection. *fault.Injector
// implements it; a nil hook costs one atomic load per operation.
type FaultHook interface {
	// SendFate decides what happens to the next src→dst message.
	SendFate(src, dst int) fault.Fate
	// RecvError may fail a receive before it consumes a message.
	RecvError(src, dst int) error
}

type message struct {
	tag  int
	data any
}

// Stats counts traffic through a World.
type Stats struct {
	Messages int64
	Bytes    int64
}

// runGroup is the cancellation scope of one World.Run invocation.
type runGroup struct {
	once sync.Once
	done chan struct{}
}

func (g *runGroup) cancel() { g.once.Do(func() { close(g.done) }) }

type hookBox struct{ h FaultHook }

// tagCounter accumulates per-tag traffic. Counters are atomic so concurrent
// senders on different ranks can share one entry without a write lock.
type tagCounter struct {
	messages atomic.Int64
	bytes    atomic.Int64
}

// World is a communicator universe of a fixed number of ranks.
type World struct {
	size     int
	inbox    [][]chan message // inbox[dst][src]
	messages atomic.Int64
	bytes    atomic.Int64
	timeout  atomic.Int64 // nanoseconds
	dead     []atomic.Bool
	group    atomic.Pointer[runGroup]
	hook     atomic.Pointer[hookBox]

	tagMu sync.RWMutex
	tags  map[int]*tagCounter
}

// NewWorld creates a world with the given number of ranks. Channel buffers
// are sized so that common SPMD exchange patterns cannot deadlock.
func NewWorld(size int) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: world size %d must be positive", size)
	}
	w := &World{
		size:  size,
		inbox: make([][]chan message, size),
		dead:  make([]atomic.Bool, size),
		tags:  make(map[int]*tagCounter),
	}
	w.timeout.Store(int64(RecvTimeout))
	for d := 0; d < size; d++ {
		w.inbox[d] = make([]chan message, size)
		for s := 0; s < size; s++ {
			w.inbox[d][s] = make(chan message, 1024)
		}
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Stats returns the accumulated traffic counters.
func (w *World) Stats() Stats {
	return Stats{Messages: w.messages.Load(), Bytes: w.bytes.Load()}
}

// StatsByTag returns a snapshot of the traffic counters broken down by
// message tag, so halo, reduction, and gather traffic are separately
// visible. The returned map is a fresh copy.
func (w *World) StatsByTag() map[int]Stats {
	w.tagMu.RLock()
	defer w.tagMu.RUnlock()
	out := make(map[int]Stats, len(w.tags))
	//mdm:maporderok -- snapshot copy into a fresh map: rows are independent, order cannot affect the result
	for tag, tc := range w.tags {
		out[tag] = Stats{Messages: tc.messages.Load(), Bytes: tc.bytes.Load()}
	}
	return out
}

// count records one delivered message of nbytes under tag, in both the
// global and the per-tag counters. The per-tag entry is created on first
// use; the steady-state path is a read-locked map hit plus atomic adds.
func (w *World) count(tag int, nbytes int64) {
	w.messages.Add(1)
	w.bytes.Add(nbytes)
	w.tagMu.RLock()
	tc := w.tags[tag]
	w.tagMu.RUnlock()
	if tc == nil {
		w.tagMu.Lock()
		tc = w.tags[tag]
		if tc == nil {
			tc = &tagCounter{}
			w.tags[tag] = tc
		}
		w.tagMu.Unlock()
	}
	tc.messages.Add(1)
	tc.bytes.Add(nbytes)
}

// SetTimeout bounds every blocking Send/Recv (and the collectives built on
// them). Non-positive durations are ignored.
func (w *World) SetTimeout(d time.Duration) {
	if d > 0 {
		w.timeout.Store(int64(d))
	}
}

// Timeout returns the current world deadline.
func (w *World) Timeout() time.Duration { return time.Duration(w.timeout.Load()) }

// SetFaultHook installs (or, with nil, removes) the fault-injection hook.
func (w *World) SetFaultHook(h FaultHook) {
	if h == nil {
		w.hook.Store(nil)
		return
	}
	w.hook.Store(&hookBox{h: h})
}

func (w *World) faultHook() FaultHook {
	if b := w.hook.Load(); b != nil {
		return b.h
	}
	return nil
}

// MarkDead records that a rank has failed. Subsequent sends to it fail fast
// with ErrRankDead; receives from it still drain queued messages, then fail.
func (w *World) MarkDead(rank int) {
	if rank >= 0 && rank < w.size {
		w.dead[rank].Store(true)
	}
}

// MarkAlive clears a rank's dead flag (e.g. after a restart).
func (w *World) MarkAlive(rank int) {
	if rank >= 0 && rank < w.size {
		w.dead[rank].Store(false)
	}
}

// Dead reports whether a rank is marked dead.
func (w *World) Dead(rank int) bool {
	return rank >= 0 && rank < w.size && w.dead[rank].Load()
}

// AliveCount returns the number of ranks not marked dead.
func (w *World) AliveCount() int {
	n := 0
	for r := 0; r < w.size; r++ {
		if !w.dead[r].Load() {
			n++
		}
	}
	return n
}

// Reset drains every in-flight message so an aborted step's stragglers cannot
// be mistaken for the retry's traffic. Call only while no rank goroutines are
// running (Run has returned).
func (w *World) Reset() {
	w.group.Store(nil)
	for d := range w.inbox {
		for s := range w.inbox[d] {
			for {
				select {
				case <-w.inbox[d][s]:
				default:
					goto next
				}
			}
		next:
		}
	}
}

// Comm is one rank's endpoint in a World.
type Comm struct {
	w    *World
	rank int
}

// Comm returns the endpoint for a rank.
func (w *World) Comm(rank int) (*Comm, error) {
	if rank < 0 || rank >= w.size {
		return nil, fmt.Errorf("mpi: rank %d outside world of size %d", rank, w.size)
	}
	return &Comm{w: w, rank: rank}, nil
}

// Run starts one goroutine per rank executing f and waits for all of them.
// When a rank returns a non-nil error the whole group is canceled, so peers
// blocked in Send/Recv unwind with ErrCanceled instead of waiting out their
// deadline on a rank that is already gone. The first real error (by rank
// order, preferring errors that are not cancellation echoes) is returned.
func (w *World) Run(f func(c *Comm) error) error {
	g := &runGroup{done: make(chan struct{})}
	w.group.Store(g)
	defer w.group.Store(nil)
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		//mdm:hotallocok -- rank goroutines launch once per world run, not per step; the per-step work happens inside f
		go func(rank int) {
			defer wg.Done()
			c, err := w.Comm(rank)
			if err == nil {
				err = f(c)
			}
			if err != nil {
				errs[rank] = err
				g.cancel()
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrCanceled) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CancelRun cancels the active Run group from outside it: every rank blocked
// in a Send/Recv/collective unwinds with ErrCanceled. This is the watchdog's
// stalled-rank escalation — when a rank stops making progress, the group is
// torn down as one retryable failure instead of waiting out the deadline on
// every peer. A no-op when no Run is active.
func (w *World) CancelRun() {
	if g := w.group.Load(); g != nil {
		g.cancel()
	}
}

// groupDone returns the active run group's cancellation channel, or nil (a
// channel that never fires) outside Run.
func (w *World) groupDone() <-chan struct{} {
	if g := w.group.Load(); g != nil {
		return g.done
	}
	return nil
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// payloadBytes estimates the wire size of a payload for the traffic model.
func payloadBytes(data any) int64 {
	switch v := data.(type) {
	case []float64:
		return int64(8 * len(v))
	case []int:
		return int64(8 * len(v))
	case []byte:
		return int64(len(v))
	case float64, int, int64:
		return 8
	case nil:
		return 0
	default:
		if s, ok := data.(interface{ WireBytes() int64 }); ok {
			return s.WireBytes()
		}
		return 8 // envelope-only estimate
	}
}

// corruptPayload flips one bit of a float payload (a copy; the sender's slice
// is never modified). Non-float payloads pass through untouched.
func corruptPayload(data any, word, bit int) any {
	switch v := data.(type) {
	case []float64:
		if len(v) == 0 {
			return v
		}
		out := make([]float64, len(v))
		copy(out, v)
		i := word % len(out)
		if i < 0 {
			i += len(out)
		}
		out[i] = fault.FlipFloat64(out[i], bit)
		return out
	case float64:
		return fault.FlipFloat64(v, bit)
	}
	return data
}

// Send delivers data to dst with the given tag. It blocks only if the
// destination's buffer for this source is full, and then no longer than the
// world deadline (ErrTimeout) or the life of the run group (ErrCanceled).
// Sends to a dead rank fail fast with ErrRankDead.
func (c *Comm) Send(dst, tag int, data any) error {
	if dst < 0 || dst >= c.w.size {
		return fmt.Errorf("mpi: send to rank %d outside world of size %d", dst, c.w.size)
	}
	if c.w.Dead(dst) {
		return fmt.Errorf("mpi: send %d→%d tag %d: %w", c.rank, dst, tag, ErrRankDead)
	}
	if h := c.w.faultHook(); h != nil {
		f := h.SendFate(c.rank, dst)
		if f.Err != nil {
			return fmt.Errorf("mpi: send %d→%d tag %d: %w", c.rank, dst, tag, f.Err)
		}
		if f.Drop {
			return nil // lost on the wire; the receiver's deadline notices
		}
		if f.Delay > 0 {
			//mdm:wallclockok -- injected link delay from a fault scenario; clean runs never take this branch
			time.Sleep(f.Delay)
		}
		if f.Corrupt {
			data = corruptPayload(data, f.Word, f.Bit)
		}
	}
	select {
	case c.w.inbox[dst][c.rank] <- message{tag: tag, data: data}:
		c.w.count(tag, payloadBytes(data))
		return nil
	default:
	}
	timer := time.NewTimer(c.w.Timeout())
	defer timer.Stop()
	select {
	case c.w.inbox[dst][c.rank] <- message{tag: tag, data: data}:
		c.w.count(tag, payloadBytes(data))
		return nil
	case <-timer.C:
		return fmt.Errorf("mpi: send %d→%d tag %d (receiver buffer full): %w", c.rank, dst, tag, ErrTimeout)
	case <-c.w.groupDone():
		return fmt.Errorf("mpi: send %d→%d tag %d: %w", c.rank, dst, tag, ErrCanceled)
	}
}

// Recv blocks until the next message from src arrives, bounded by the world
// deadline, and returns its payload. The message's tag must equal tag (unless
// AnyTag), otherwise an error is returned — SPMD programs here are
// deterministic, so a mismatch is a program bug, not a race.
func (c *Comm) Recv(src, tag int) (any, error) {
	return c.RecvWithin(src, tag, c.w.Timeout())
}

// RecvWithin is Recv with an explicit per-call deadline. It returns a typed
// ErrTimeout when the deadline passes, ErrCanceled when the run group is torn
// down, and ErrRankDead when src is dead and its queue is empty.
func (c *Comm) RecvWithin(src, tag int, d time.Duration) (any, error) {
	if src < 0 || src >= c.w.size {
		return nil, fmt.Errorf("mpi: recv from rank %d outside world of size %d", src, c.w.size)
	}
	if h := c.w.faultHook(); h != nil {
		if err := h.RecvError(src, c.rank); err != nil {
			return nil, fmt.Errorf("mpi: recv %d←%d tag %d: %w", c.rank, src, tag, err)
		}
	}
	// Fast path: already queued (also drains mail from a since-dead rank).
	select {
	case m := <-c.w.inbox[c.rank][src]:
		return c.matchTag(m, src, tag)
	default:
	}
	if c.w.Dead(src) {
		return nil, fmt.Errorf("mpi: recv %d←%d tag %d: %w", c.rank, src, tag, ErrRankDead)
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case m := <-c.w.inbox[c.rank][src]:
		return c.matchTag(m, src, tag)
	case <-timer.C:
		return nil, fmt.Errorf("mpi: recv %d←%d tag %d after %v: %w", c.rank, src, tag, d, ErrTimeout)
	case <-c.w.groupDone():
		return nil, fmt.Errorf("mpi: recv %d←%d tag %d: %w", c.rank, src, tag, ErrCanceled)
	}
}

func (c *Comm) matchTag(m message, src, tag int) (any, error) {
	if tag != AnyTag && m.tag != tag {
		return nil, fmt.Errorf("mpi: rank %d expected tag %d from %d, got %d: %w", c.rank, tag, src, m.tag, ErrTagMismatch)
	}
	return m.data, nil
}

// RecvFloat64s receives and type-asserts a []float64 payload.
func (c *Comm) RecvFloat64s(src, tag int) ([]float64, error) {
	return c.RecvFloat64sWithin(src, tag, c.w.Timeout())
}

// RecvFloat64sWithin is RecvFloat64s with an explicit per-call deadline.
func (c *Comm) RecvFloat64sWithin(src, tag int, d time.Duration) ([]float64, error) {
	data, err := c.RecvWithin(src, tag, d)
	if err != nil {
		return nil, err
	}
	v, ok := data.([]float64)
	if !ok {
		return nil, fmt.Errorf("mpi: rank %d expected []float64 from %d, got %T", c.rank, src, data)
	}
	return v, nil
}

// Internal tags for collectives, kept far from user tag space.
const (
	tagBarrier = -1000 - iota
	tagBcast
	tagReduce
	tagGather
)

// Barrier blocks until every rank has entered it, bounded by the world
// deadline. Implemented as a gather to rank 0 followed by a broadcast.
func (c *Comm) Barrier() error {
	return c.BarrierWithin(c.w.Timeout())
}

// BarrierWithin is Barrier with an explicit per-call deadline: if some rank
// never arrives (dead, hung, or unwound), every survivor returns an error
// wrapping ErrTimeout (or ErrRankDead) within the deadline instead of
// blocking forever.
func (c *Comm) BarrierWithin(d time.Duration) error {
	if c.w.size == 1 {
		return nil
	}
	if c.rank == 0 {
		for src := 1; src < c.w.size; src++ {
			if _, err := c.RecvWithin(src, tagBarrier, d); err != nil {
				return err
			}
		}
		for dst := 1; dst < c.w.size; dst++ {
			if err := c.Send(dst, tagBarrier, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.Send(0, tagBarrier, nil); err != nil {
		return err
	}
	_, err := c.RecvWithin(0, tagBarrier, d)
	return err
}

// Bcast broadcasts root's data to all ranks and returns the received value
// (root returns its own data unchanged).
func (c *Comm) Bcast(root int, data any) (any, error) {
	if root < 0 || root >= c.w.size {
		return nil, fmt.Errorf("mpi: bcast root %d outside world", root)
	}
	if c.w.size == 1 {
		return data, nil
	}
	if c.rank == root {
		for dst := 0; dst < c.w.size; dst++ {
			if dst == root {
				continue
			}
			if err := c.Send(dst, tagBcast, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	return c.Recv(root, tagBcast)
}

// AllreduceSum element-wise sums vals across all ranks; every rank receives
// the total. The input slice is not modified; a new slice is returned.
// Implements the wine2.Communicator interface.
func (c *Comm) AllreduceSum(vals []float64) ([]float64, error) {
	if c.w.size == 1 {
		out := make([]float64, len(vals))
		copy(out, vals)
		return out, nil
	}
	if c.rank == 0 {
		total := make([]float64, len(vals))
		copy(total, vals)
		for src := 1; src < c.w.size; src++ {
			part, err := c.RecvFloat64s(src, tagReduce)
			if err != nil {
				return nil, err
			}
			if len(part) != len(vals) {
				return nil, fmt.Errorf("mpi: allreduce length mismatch: %d vs %d", len(part), len(vals))
			}
			for i := range total {
				total[i] += part[i]
			}
		}
		for dst := 1; dst < c.w.size; dst++ {
			if err := c.Send(dst, tagReduce, total); err != nil {
				return nil, err
			}
		}
		return total, nil
	}
	// Copy before sending: the sender keeps using vals.
	part := make([]float64, len(vals))
	copy(part, vals)
	if err := c.Send(0, tagReduce, part); err != nil {
		return nil, err
	}
	return c.RecvFloat64s(0, tagReduce)
}

// Gather collects each rank's slice at root (in rank order). Non-root ranks
// receive nil.
func (c *Comm) Gather(root int, vals []float64) ([][]float64, error) {
	if root < 0 || root >= c.w.size {
		return nil, fmt.Errorf("mpi: gather root %d outside world", root)
	}
	if c.rank != root {
		part := make([]float64, len(vals))
		copy(part, vals)
		return nil, c.Send(root, tagGather, part)
	}
	out := make([][]float64, c.w.size)
	own := make([]float64, len(vals))
	copy(own, vals)
	out[c.rank] = own
	for src := 0; src < c.w.size; src++ {
		if src == root {
			continue
		}
		part, err := c.RecvFloat64s(src, tagGather)
		if err != nil {
			return nil, err
		}
		out[src] = part
	}
	return out, nil
}

// Allgather collects each rank's slice on every rank (in rank order).
func (c *Comm) Allgather(vals []float64) ([][]float64, error) {
	parts, err := c.Gather(0, vals)
	if err != nil {
		return nil, err
	}
	// Root flattens and broadcasts with lengths.
	if c.rank == 0 {
		lens := make([]float64, c.w.size)
		var flat []float64
		for r, p := range parts {
			lens[r] = float64(len(p))
			flat = append(flat, p...)
		}
		if _, err := c.Bcast(0, lens); err != nil {
			return nil, err
		}
		if _, err := c.Bcast(0, flat); err != nil {
			return nil, err
		}
		return parts, nil
	}
	lensAny, err := c.Bcast(0, nil)
	if err != nil {
		return nil, err
	}
	lens, ok := lensAny.([]float64)
	if !ok {
		return nil, fmt.Errorf("mpi: allgather expected lengths, got %T", lensAny)
	}
	flatAny, err := c.Bcast(0, nil)
	if err != nil {
		return nil, err
	}
	flat, ok := flatAny.([]float64)
	if !ok {
		return nil, fmt.Errorf("mpi: allgather expected data, got %T", flatAny)
	}
	out := make([][]float64, c.w.size)
	off := 0
	for r := range out {
		n := int(lens[r])
		if off+n > len(flat) {
			return nil, fmt.Errorf("mpi: allgather length overflow")
		}
		out[r] = flat[off : off+n]
		off += n
	}
	return out, nil
}

const tagAlltoall = -1010

// Alltoall delivers sendTo[d] to rank d and returns what every rank sent to
// this one, indexed by source. sendTo must have one (possibly empty) slice
// per rank; the self-slot is copied locally. This is the primitive behind
// the §4 halo exchange, where every real-space process ships boundary
// particles to every other.
func (c *Comm) Alltoall(sendTo [][]float64) ([][]float64, error) {
	if len(sendTo) != c.w.size {
		return nil, fmt.Errorf("mpi: alltoall needs %d send slots, got %d", c.w.size, len(sendTo))
	}
	out := make([][]float64, c.w.size)
	own := make([]float64, len(sendTo[c.rank]))
	copy(own, sendTo[c.rank])
	out[c.rank] = own
	for dst := 0; dst < c.w.size; dst++ {
		if dst == c.rank {
			continue
		}
		part := make([]float64, len(sendTo[dst]))
		copy(part, sendTo[dst])
		if err := c.Send(dst, tagAlltoall, part); err != nil {
			return nil, err
		}
	}
	for src := 0; src < c.w.size; src++ {
		if src == c.rank {
			continue
		}
		part, err := c.RecvFloat64s(src, tagAlltoall)
		if err != nil {
			return nil, err
		}
		out[src] = part
	}
	return out, nil
}
