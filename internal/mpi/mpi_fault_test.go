package mpi

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"mdm/internal/fault"
)

// Tags for the failure-mode tests, named per the mpitags analyzer.
const (
	tagDeadline = 20 // deadline-variant receives
	tagFaulty   = 21 // traffic routed through a fault hook
	tagStale    = 22 // stale messages drained by Reset
)

func TestRecvWithinTimeoutTyped(t *testing.T) {
	w, _ := NewWorld(2)
	c, _ := w.Comm(0)
	start := time.Now()
	_, err := c.RecvWithin(1, tagDeadline, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("timeout took %v, deadline was 30ms", el)
	}
}

func TestWorldTimeoutBoundsRecv(t *testing.T) {
	w, _ := NewWorld(2)
	w.SetTimeout(20 * time.Millisecond)
	c, _ := w.Comm(0)
	if _, err := c.Recv(1, tagDeadline); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Recv err = %v, want ErrTimeout", err)
	}
	if _, err := c.RecvFloat64s(1, tagDeadline); !errors.Is(err, ErrTimeout) {
		t.Fatalf("RecvFloat64s err = %v, want ErrTimeout", err)
	}
}

// A rank that never enters the barrier must not hang the survivors: each one
// unwinds with ErrTimeout within its deadline. Comms run directly (not via
// Run) so group cancellation cannot mask the timeout path.
func TestBarrierDeadRankTimesOutSurvivors(t *testing.T) {
	w, _ := NewWorld(4)
	const deadline = 50 * time.Millisecond
	errs := make([]error, 3)
	var wg sync.WaitGroup
	start := time.Now()
	for r := 0; r < 3; r++ { // rank 3 never shows up
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, _ := w.Comm(rank)
			errs[rank] = c.BarrierWithin(deadline)
		}(r)
	}
	wg.Wait()
	if el := time.Since(start); el > 10*deadline {
		t.Errorf("survivors took %v to unwind, deadline %v", el, deadline)
	}
	for r, err := range errs {
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("rank %d: err = %v, want ErrTimeout", r, err)
		}
	}
}

// A rank failing inside Run cancels the group: peers blocked in a collective
// unwind with ErrCanceled immediately rather than burning their full
// deadline, no goroutine outlives Run, and the original error is returned.
func TestRunCancelsGroupOnError(t *testing.T) {
	before := runtime.NumGoroutine()
	w, _ := NewWorld(4)
	w.SetTimeout(10 * time.Second) // cancel must beat this by a wide margin
	sentinel := fmt.Errorf("rank exploded")
	peerErrs := make([]error, 4)
	start := time.Now()
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		peerErrs[c.Rank()] = c.Barrier()
		return peerErrs[c.Rank()]
	})
	if err != sentinel {
		t.Errorf("Run err = %v, want the sentinel unchanged", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("group unwound in %v; cancellation should not wait out the deadline", el)
	}
	for r, perr := range peerErrs {
		if r == 2 {
			continue
		}
		if !errors.Is(perr, ErrCanceled) {
			t.Errorf("rank %d: err = %v, want ErrCanceled", r, perr)
		}
	}
	// Give the runtime a moment, then check Run leaked nothing.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before Run, %d after", before, after)
	}
}

func TestMarkDeadFastFail(t *testing.T) {
	w, _ := NewWorld(3)
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	// Mail queued before the rank died is still delivered...
	if err := c1.Send(0, tagDeadline, []float64{1}); err != nil {
		t.Fatal(err)
	}
	w.MarkDead(1)
	if _, err := c0.RecvFloat64s(1, tagDeadline); err != nil {
		t.Fatalf("queued mail from dead rank: %v", err)
	}
	// ...then both directions fail fast, well inside the world deadline.
	start := time.Now()
	if err := c0.Send(1, tagDeadline, nil); !errors.Is(err, ErrRankDead) {
		t.Errorf("send to dead rank: %v, want ErrRankDead", err)
	}
	if _, err := c0.RecvWithin(1, tagDeadline, 10*time.Second); !errors.Is(err, ErrRankDead) {
		t.Errorf("recv from dead rank: %v, want ErrRankDead", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("dead-rank ops took %v, want fast fail", el)
	}
	if n := w.AliveCount(); n != 2 {
		t.Errorf("AliveCount = %d, want 2", n)
	}
	w.MarkAlive(1)
	if w.Dead(1) || w.AliveCount() != 3 {
		t.Error("MarkAlive did not revive the rank")
	}
}

func TestFaultHookDropDelayCorrupt(t *testing.T) {
	w, _ := NewWorld(2)
	w.SetTimeout(50 * time.Millisecond)
	in, err := fault.ParseInjector(
		"mpi:drop@src=1,dst=0,n=1; mpi:corrupt@src=1,dst=0,n=2,word=1,bit=3;" +
			"mpi:delay@src=1,dst=0,n=3,ms=30; mpi:senderr@src=1,dst=0,n=4;" +
			"mpi:recverr@src=0,dst=1,n=1")
	if err != nil {
		t.Fatal(err)
	}
	w.SetFaultHook(in)
	defer w.SetFaultHook(nil)
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)

	// Message 1 is dropped: send succeeds, receive times out.
	if err := c1.Send(0, tagFaulty, []float64{1, 2}); err != nil {
		t.Fatalf("dropped send errored: %v", err)
	}
	if _, err := c0.RecvWithin(1, tagFaulty, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("dropped message: recv err = %v, want ErrTimeout", err)
	}

	// Message 2 arrives with word 1 bit-flipped; the sender's slice is intact.
	orig := []float64{1, 2}
	if err := c1.Send(0, tagFaulty, orig); err != nil {
		t.Fatal(err)
	}
	got, err := c0.RecvFloat64s(1, tagFaulty)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] == 2 {
		t.Errorf("corrupt fate delivered %v, want word 1 flipped only", got)
	}
	if got[1] != fault.FlipFloat64(2, 3) {
		t.Errorf("flipped word = %g, want %g", got[1], fault.FlipFloat64(2, 3))
	}
	if orig[1] != 2 {
		t.Error("sender's slice was modified")
	}

	// Message 3 is delayed ~30ms but still delivered.
	start := time.Now()
	if err := c1.Send(0, tagFaulty, []float64{9}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Errorf("delayed send returned in %v, want ≥30ms stall", el)
	}
	if _, err := c0.RecvFloat64s(1, tagFaulty); err != nil {
		t.Fatalf("delayed message lost: %v", err)
	}

	// Message 4 fails at the sender with a typed link error.
	err = c1.Send(0, tagFaulty, nil)
	var le *fault.LinkError
	if !errors.As(err, &le) {
		t.Errorf("senderr fate: %v, want LinkError", err)
	}

	// First receive 1←... on rank 1 fails at the receiver.
	if _, err := c1.RecvWithin(0, tagFaulty, 20*time.Millisecond); !errors.As(err, &le) {
		t.Errorf("recverr fate: %v, want LinkError", err)
	}
	if in.Remaining() != 0 {
		t.Errorf("%d events never fired", in.Remaining())
	}
}

func TestResetDrainsInboxes(t *testing.T) {
	w, _ := NewWorld(2)
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	for i := 0; i < 5; i++ {
		if err := c1.Send(0, tagStale, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	w.Reset()
	if _, err := c0.RecvWithin(1, tagStale, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("stale message survived Reset: err = %v", err)
	}
	// The world is fully usable after a Reset.
	if err := c1.Send(0, tagStale, []float64{42}); err != nil {
		t.Fatal(err)
	}
	got, err := c0.RecvFloat64s(1, tagStale)
	if err != nil || got[0] != 42 {
		t.Fatalf("post-Reset traffic: %v %v", got, err)
	}
}
