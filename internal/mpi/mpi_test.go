package mpi

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// Named message tags, as the mpitags analyzer requires of all Comm traffic.
const (
	tagData    = 7   // generic paired payload
	tagWrong   = 8   // deliberately never sent: exercises mismatch detection
	tagProbe   = 42  // sent once, received via AnyTag only
	tagInvalid = 100 // used only against invalid ranks in validation tests
	tagTraffic = 11  // traffic-stats exchange
	tagRingCW  = 5   // ring exchange, clockwise
	tagRingCCW = 6   // ring exchange, counterclockwise
)

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Error("size 0 accepted")
	}
	w, err := NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 4 {
		t.Errorf("Size = %d", w.Size())
	}
	if _, err := w.Comm(4); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := w.Comm(-1); err == nil {
		t.Error("negative rank accepted")
	}
}

func TestSendRecv(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, tagData, []float64{1, 2, 3})
		}
		got, err := c.RecvFloat64s(0, tagData)
		if err != nil {
			return err
		}
		if len(got) != 3 || got[0] != 1 || got[2] != 3 {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagMismatch(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, tagData, nil)
		}
		_, err := c.Recv(0, tagWrong) //mdm:tagok -- tagWrong is one-sided on purpose: the test wants the mismatch
		if err == nil {
			return fmt.Errorf("tag mismatch not detected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnyTag(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, tagProbe, []float64{9}) //mdm:tagok -- tagProbe is received via AnyTag below
		}
		got, err := c.Recv(0, AnyTag)
		if err != nil {
			return err
		}
		if got.([]float64)[0] != 9 {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendValidation(t *testing.T) {
	w, _ := NewWorld(2)
	c, _ := w.Comm(0)
	if err := c.Send(5, tagInvalid, nil); err == nil {
		t.Error("send to invalid rank accepted")
	}
	if _, err := c.Recv(5, tagInvalid); err == nil {
		t.Error("recv from invalid rank accepted")
	}
}

func TestBarrier(t *testing.T) {
	const p = 8
	w, _ := NewWorld(p)
	var mu sync.Mutex
	phase := make(map[int]int)
	err := w.Run(func(c *Comm) error {
		for step := 0; step < 5; step++ {
			mu.Lock()
			phase[c.Rank()] = step
			// No rank may be more than one phase apart when inside a step.
			for r, s := range phase {
				if s < step-1 || s > step+1 {
					mu.Unlock()
					return fmt.Errorf("rank %d at phase %d while rank %d at %d", c.Rank(), step, r, s)
				}
			}
			mu.Unlock()
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	const p = 5
	w, _ := NewWorld(p)
	err := w.Run(func(c *Comm) error {
		var in any
		if c.Rank() == 2 {
			in = []float64{3.14, 2.72}
		}
		out, err := c.Bcast(2, in)
		if err != nil {
			return err
		}
		v, ok := out.([]float64)
		if !ok || len(v) != 2 || v[0] != 3.14 {
			return fmt.Errorf("rank %d got %v", c.Rank(), out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := func() (any, error) { c, _ := w.Comm(0); return c.Bcast(9, nil) }(); err == nil {
		t.Error("bcast with invalid root accepted")
	}
}

func TestAllreduceSum(t *testing.T) {
	const p = 6
	w, _ := NewWorld(p)
	err := w.Run(func(c *Comm) error {
		vals := []float64{float64(c.Rank()), 1, -float64(c.Rank())}
		out, err := c.AllreduceSum(vals)
		if err != nil {
			return err
		}
		wantMid := float64(p)
		want0 := float64(p * (p - 1) / 2)
		if math.Abs(out[0]-want0) > 1e-12 || math.Abs(out[1]-wantMid) > 1e-12 || math.Abs(out[2]+want0) > 1e-12 {
			return fmt.Errorf("rank %d: out = %v", c.Rank(), out)
		}
		// Input must be untouched.
		if vals[0] != float64(c.Rank()) {
			return fmt.Errorf("input modified: %v", vals)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSingleRank(t *testing.T) {
	w, _ := NewWorld(1)
	c, _ := w.Comm(0)
	out, err := c.AllreduceSum([]float64{5})
	if err != nil || out[0] != 5 {
		t.Fatalf("out = %v, err = %v", out, err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
}

func TestGatherAllgather(t *testing.T) {
	const p = 4
	w, _ := NewWorld(p)
	err := w.Run(func(c *Comm) error {
		mine := make([]float64, c.Rank()+1) // rank r contributes r+1 values
		for i := range mine {
			mine[i] = float64(c.Rank()*10 + i)
		}
		g, err := c.Gather(1, mine)
		if err != nil {
			return err
		}
		if c.Rank() == 1 {
			for r := 0; r < p; r++ {
				if len(g[r]) != r+1 || g[r][0] != float64(r*10) {
					return fmt.Errorf("gather root: g[%d] = %v", r, g[r])
				}
			}
		} else if g != nil {
			return fmt.Errorf("non-root got %v", g)
		}
		all, err := c.Allgather(mine)
		if err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			if len(all[r]) != r+1 || all[r][r] != float64(r*10+r) {
				return fmt.Errorf("rank %d: all[%d] = %v", c.Rank(), r, all[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrafficStats(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, tagTraffic, make([]float64, 100))
		}
		_, err := c.Recv(0, tagTraffic)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Messages != 1 {
		t.Errorf("messages = %d", st.Messages)
	}
	if st.Bytes != 800 {
		t.Errorf("bytes = %d, want 800", st.Bytes)
	}
}

func TestStatsByTag(t *testing.T) {
	const tagA, tagB = 7, 8
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, tagA, make([]float64, 10)); err != nil {
				return err
			}
			if err := c.Send(1, tagA, make([]float64, 5)); err != nil {
				return err
			}
			return c.Send(1, tagB, make([]int, 3))
		}
		if _, err := c.Recv(0, tagA); err != nil {
			return err
		}
		if _, err := c.Recv(0, tagA); err != nil {
			return err
		}
		_, err := c.Recv(0, tagB)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	by := w.StatsByTag()
	if got := by[tagA]; got.Messages != 2 || got.Bytes != 120 {
		t.Errorf("tag %d stats = %+v, want 2 messages / 120 bytes", tagA, got)
	}
	if got := by[tagB]; got.Messages != 1 || got.Bytes != 24 {
		t.Errorf("tag %d stats = %+v, want 1 message / 24 bytes", tagB, got)
	}
	// Per-tag counters must sum to the global counters.
	var msgs, bytes int64
	for _, st := range by {
		msgs += st.Messages
		bytes += st.Bytes
	}
	if tot := w.Stats(); msgs != tot.Messages || bytes != tot.Bytes {
		t.Errorf("per-tag sums (%d msgs, %d bytes) != totals %+v", msgs, bytes, tot)
	}
}

func TestRunPropagatesError(t *testing.T) {
	w, _ := NewWorld(3)
	sentinel := fmt.Errorf("boom")
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Errorf("err = %v, want sentinel", err)
	}
}

// The halo-exchange pattern used by the domain decomposition: every rank
// exchanges with both neighbors in a ring simultaneously.
func TestRingExchangeNoDeadlock(t *testing.T) {
	const p = 8
	w, _ := NewWorld(p)
	err := w.Run(func(c *Comm) error {
		right := (c.Rank() + 1) % p
		left := (c.Rank() + p - 1) % p
		if err := c.Send(right, tagRingCW, []float64{float64(c.Rank())}); err != nil {
			return err
		}
		if err := c.Send(left, tagRingCCW, []float64{float64(c.Rank())}); err != nil {
			return err
		}
		fromLeft, err := c.RecvFloat64s(left, tagRingCW)
		if err != nil {
			return err
		}
		fromRight, err := c.RecvFloat64s(right, tagRingCCW)
		if err != nil {
			return err
		}
		if int(fromLeft[0]) != left || int(fromRight[0]) != right {
			return fmt.Errorf("rank %d: got %v %v", c.Rank(), fromLeft, fromRight)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllreduce(b *testing.B) {
	const p = 4
	w, _ := NewWorld(p)
	vals := make([]float64, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(func(c *Comm) error {
			_, err := c.AllreduceSum(vals)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAlltoall(t *testing.T) {
	const p = 5
	w, _ := NewWorld(p)
	err := w.Run(func(c *Comm) error {
		send := make([][]float64, p)
		for d := 0; d < p; d++ {
			// rank r sends {100r + d} to rank d, with r+d+1 elements.
			send[d] = make([]float64, c.Rank()+d+1)
			for k := range send[d] {
				send[d][k] = float64(100*c.Rank() + d)
			}
		}
		got, err := c.Alltoall(send)
		if err != nil {
			return err
		}
		for src := 0; src < p; src++ {
			wantLen := src + c.Rank() + 1
			if len(got[src]) != wantLen {
				return fmt.Errorf("rank %d: from %d got %d values, want %d", c.Rank(), src, len(got[src]), wantLen)
			}
			want := float64(100*src + c.Rank())
			for _, v := range got[src] {
				if v != want {
					return fmt.Errorf("rank %d: from %d got %v, want %v", c.Rank(), src, v, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallValidation(t *testing.T) {
	w, _ := NewWorld(3)
	c, _ := w.Comm(0)
	if _, err := c.Alltoall(make([][]float64, 2)); err == nil {
		t.Error("wrong slot count accepted")
	}
}
