package analysis

import (
	"math"
	"math/rand"
	"testing"

	"mdm/internal/vec"
)

func TestNewRDFValidation(t *testing.T) {
	if _, err := NewRDF(10, 6, 50); err == nil {
		t.Error("rmax > L/2 accepted")
	}
	if _, err := NewRDF(10, 4, 0); err == nil {
		t.Error("0 bins accepted")
	}
	if _, err := NewRDF(0, 4, 10); err == nil {
		t.Error("zero box accepted")
	}
}

func TestRDFIdealGasIsFlat(t *testing.T) {
	const l = 20.0
	rng := rand.New(rand.NewSource(1))
	rdf, err := NewRDF(l, 9, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Many frames of uncorrelated particles → g(r) ≈ 1 everywhere.
	for f := 0; f < 40; f++ {
		pos := make([]vec.V, 150)
		for i := range pos {
			pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		}
		rdf.AddFrame(pos, pos)
	}
	rs, g := rdf.Curve()
	for b := range g {
		if rs[b] < 1.5 {
			continue // tiny shells are noisy
		}
		if math.Abs(g[b]-1) > 0.25 {
			t.Errorf("ideal gas g(%.2f) = %.3f, want ≈ 1", rs[b], g[b])
		}
	}
}

func TestRDFCrystalPeak(t *testing.T) {
	// Rock-salt unlike-pair RDF peaks at the nearest-neighbor distance a/2.
	const a = 5.64
	const cells = 3
	l := float64(cells) * a
	var na, cl []vec.V
	d := a / 2
	for z := 0; z < 2*cells; z++ {
		for y := 0; y < 2*cells; y++ {
			for x := 0; x < 2*cells; x++ {
				p := vec.New(float64(x)*d, float64(y)*d, float64(z)*d)
				if (x+y+z)%2 == 0 {
					na = append(na, p)
				} else {
					cl = append(cl, p)
				}
			}
		}
	}
	rdf, _ := NewRDF(l, l/2*0.99, 100)
	rdf.AddFrame(na, cl)
	rs, g := rdf.Curve()
	pos, height := FirstPeak(rs, g, 1.0)
	if math.Abs(pos-a/2) > 0.2 {
		t.Errorf("first Na-Cl peak at %.2f Å, want %.2f", pos, a/2)
	}
	if height < 5 {
		t.Errorf("crystal peak height = %.1f, want sharp (>5)", height)
	}
}

func TestFirstPeakDegenerate(t *testing.T) {
	if p, h := FirstPeak([]float64{1, 2}, []float64{0, 0}, 0); p != 0 || h != 0 {
		t.Error("no peak should give zeros")
	}
}

func TestMSDStationary(t *testing.T) {
	pos := []vec.V{vec.New(1, 2, 3), vec.New(4, 5, 6)}
	m := NewMSD(10, pos)
	if got := m.Update(pos); got != 0 {
		t.Errorf("MSD of unmoved particles = %g", got)
	}
}

func TestMSDUnwrapsAcrossBoundary(t *testing.T) {
	// A particle drifting +0.4 Å per step crosses the boundary; MSD must
	// keep growing quadratically, not reset.
	const l = 10.0
	pos := []vec.V{vec.New(9.5, 5, 5)}
	m := NewMSD(l, pos)
	var msd float64
	for step := 1; step <= 10; step++ {
		x := 9.5 + 0.4*float64(step)
		msd = m.Update([]vec.V{vec.New(x, 5, 5).Wrap(l)})
	}
	want := 16.0 // (0.4×10)²
	if math.Abs(msd-want) > 1e-9 {
		t.Errorf("MSD after wrap = %g, want %g", msd, want)
	}
}

func TestBlockAverage(t *testing.T) {
	if _, _, err := BlockAverage([]float64{1, 2}, 4); err == nil {
		t.Error("too few samples accepted")
	}
	data := make([]float64, 100)
	for i := range data {
		data[i] = 5 + 0.1*math.Sin(float64(i))
	}
	mean, stderr, err := BlockAverage(data, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("mean = %g", mean)
	}
	if stderr <= 0 || stderr > 0.1 {
		t.Errorf("stderr = %g", stderr)
	}
}

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Error("empty stats nonzero")
	}
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(data); m != 5 {
		t.Errorf("mean = %g", m)
	}
	if s := Std(data); math.Abs(s-2) > 1e-12 {
		t.Errorf("std = %g, want 2", s)
	}
}

func TestFitInverseSqrt(t *testing.T) {
	// Synthetic points exactly on c·N^(-1/2).
	const c0 = 0.8165 // sqrt(2/3)
	var pts []FluctuationPoint
	for _, n := range []int{512, 4096, 32768, 262144} {
		pts = append(pts, FluctuationPoint{N: n, RelFluc: c0 / math.Sqrt(float64(n))})
	}
	c, p, err := FitInverseSqrt(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p+0.5) > 1e-9 {
		t.Errorf("exponent = %g, want -0.5", p)
	}
	if math.Abs(c-c0) > 1e-6 {
		t.Errorf("prefactor = %g, want %g", c, c0)
	}
}

func TestFitInverseSqrtValidation(t *testing.T) {
	if _, _, err := FitInverseSqrt(nil); err == nil {
		t.Error("empty fit accepted")
	}
	if _, _, err := FitInverseSqrt([]FluctuationPoint{{N: 10, RelFluc: 0.1}}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, err := FitInverseSqrt([]FluctuationPoint{{N: 10, RelFluc: 0.1}, {N: 10, RelFluc: 0.2}}); err == nil {
		t.Error("degenerate N accepted")
	}
	if _, _, err := FitInverseSqrt([]FluctuationPoint{{N: 10, RelFluc: -1}, {N: 20, RelFluc: 0.1}}); err == nil {
		t.Error("negative fluctuation accepted")
	}
}

func BenchmarkRDFFrame(b *testing.B) {
	const l = 15.0
	rng := rand.New(rand.NewSource(1))
	pos := make([]vec.V, 500)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
	}
	rdf, _ := NewRDF(l, 7, 70)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rdf.AddFrame(pos, pos)
	}
}

func TestDiffusionCoefficient(t *testing.T) {
	// Exact line MSD = 6·0.25·t + 1.5.
	var times, msd []float64
	for i := 0; i < 50; i++ {
		tt := float64(i) * 0.1
		times = append(times, tt)
		msd = append(msd, 6*0.25*tt+1.5)
	}
	d, c, err := DiffusionCoefficient(times, msd)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.25) > 1e-12 || math.Abs(c-1.5) > 1e-10 {
		t.Errorf("D = %g, c = %g", d, c)
	}
	if _, _, err := DiffusionCoefficient([]float64{1}, []float64{2}); err == nil {
		t.Error("single sample accepted")
	}
	if _, _, err := DiffusionCoefficient([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("degenerate time axis accepted")
	}
	if _, _, err := DiffusionCoefficient([]float64{1, 2}, []float64{2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestDiffusionFromRandomWalk(t *testing.T) {
	// A lattice random walk has MSD = n·step² : D = step²/(6·dt).
	rng := rand.New(rand.NewSource(8))
	const nWalkers = 400
	const step = 0.3
	const l = 1e6 // effectively open boundaries
	pos := make([]vec.V, nWalkers)
	m := NewMSD(l, pos)
	var times, msds []float64
	for s := 1; s <= 200; s++ {
		for i := range pos {
			dir := vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
			n := dir.Norm()
			if n == 0 {
				continue
			}
			pos[i] = pos[i].Add(dir.Scale(step / n))
		}
		times = append(times, float64(s))
		msds = append(msds, m.Update(pos))
	}
	d, _, err := DiffusionCoefficient(times, msds)
	if err != nil {
		t.Fatal(err)
	}
	want := step * step / 6
	if math.Abs(d-want) > 0.15*want {
		t.Errorf("random-walk D = %g, want ≈ %g", d, want)
	}
}

func TestRDFEmptyFrame(t *testing.T) {
	rdf, _ := NewRDF(10, 4, 10)
	rdf.AddFrame(nil, nil) // must not panic
	rs, g := rdf.Curve()
	for b := range g {
		if g[b] != 0 {
			t.Errorf("empty RDF bin %g at %g", g[b], rs[b])
		}
	}
}
