// Package analysis provides the observables used to interpret the paper's
// simulations: radial distribution functions (the structural fingerprint of
// molten vs crystalline NaCl that the solid–liquid studies of §1 and [14]
// rely on), mean-squared displacement, block averaging for error bars, and
// the temperature-fluctuation scaling analysis behind Figure 2 — the paper's
// demonstration that σ_T shrinks as the particle count grows.
package analysis

import (
	"fmt"
	"math"

	"mdm/internal/vec"
)

// RDF accumulates a radial distribution function histogram for a cubic
// periodic box.
type RDF struct {
	L      float64
	RMax   float64
	Bins   []float64 // pair counts per bin
	frames int
	nA, nB int // particles of each species counted per frame
}

// NewRDF creates a histogram with the given number of bins out to rmax,
// which must not exceed half the box.
func NewRDF(l, rmax float64, bins int) (*RDF, error) {
	if l <= 0 || rmax <= 0 || rmax > l/2 {
		return nil, fmt.Errorf("analysis: rmax %g must be in (0, L/2 = %g]", rmax, l/2)
	}
	if bins < 1 {
		return nil, fmt.Errorf("analysis: bins %d must be positive", bins)
	}
	return &RDF{L: l, RMax: rmax, Bins: make([]float64, bins)}, nil
}

// AddFrame accumulates all A–B pairs of one configuration. posA and posB may
// be the same slice (the all-pairs or same-species RDF); the self pair is
// skipped in that case.
func (r *RDF) AddFrame(posA, posB []vec.V) {
	if len(posA) == 0 || len(posB) == 0 {
		return
	}
	same := &posA[0] == &posB[0] && len(posA) == len(posB)
	dr := r.RMax / float64(len(r.Bins))
	for i := range posA {
		for j := range posB {
			if same && j <= i {
				continue
			}
			d := vec.DistPeriodic(posA[i], posB[j], r.L)
			if d >= r.RMax {
				continue
			}
			b := int(d / dr)
			if b >= len(r.Bins) {
				b = len(r.Bins) - 1
			}
			if same {
				r.Bins[b] += 2 // count both (i,j) and (j,i)
			} else {
				r.Bins[b]++
			}
		}
	}
	r.frames++
	r.nA, r.nB = len(posA), len(posB)
}

// Curve returns the bin centers and the normalized g(r): the pair density
// relative to the ideal-gas expectation n_B/V per A particle.
func (r *RDF) Curve() (rs, g []float64) {
	bins := len(r.Bins)
	rs = make([]float64, bins)
	g = make([]float64, bins)
	if r.frames == 0 || r.nA == 0 || r.nB == 0 {
		return rs, g
	}
	dr := r.RMax / float64(bins)
	vol := r.L * r.L * r.L
	rhoB := float64(r.nB) / vol
	for b := 0; b < bins; b++ {
		rs[b] = (float64(b) + 0.5) * dr
		shell := 4 * math.Pi * rs[b] * rs[b] * dr
		norm := float64(r.frames) * float64(r.nA) * rhoB * shell
		if norm > 0 {
			g[b] = r.Bins[b] / norm
		}
	}
	return rs, g
}

// FirstPeak returns the position and height of the first maximum of g(r)
// above the given minimum distance (to skip the trivially empty core).
func FirstPeak(rs, g []float64, rmin float64) (pos, height float64) {
	best := -1
	for i := 1; i+1 < len(g); i++ {
		if rs[i] < rmin {
			continue
		}
		if g[i] >= g[i-1] && g[i] >= g[i+1] && g[i] > height {
			best = i
			height = g[i]
		}
	}
	if best < 0 {
		return 0, 0
	}
	return rs[best], height
}

// MSD tracks mean-squared displacement from a reference configuration using
// unwrapped trajectories: feed it consecutive wrapped configurations and it
// reconstructs the continuous paths via minimum-image increments.
type MSD struct {
	L        float64
	ref      []vec.V // unwrapped reference
	unwrap   []vec.V // current unwrapped positions
	lastWrap []vec.V // last wrapped positions seen
}

// NewMSD starts tracking from the given initial configuration.
func NewMSD(l float64, pos []vec.V) *MSD {
	m := &MSD{
		L:        l,
		ref:      append([]vec.V(nil), pos...),
		unwrap:   append([]vec.V(nil), pos...),
		lastWrap: append([]vec.V(nil), pos...),
	}
	return m
}

// Update advances the unwrapped trajectory with a new wrapped configuration
// and returns the current MSD (Å²). Steps must be small enough that no
// particle moves more than half a box between calls.
func (m *MSD) Update(pos []vec.V) float64 {
	for i := range pos {
		d := pos[i].Sub(m.lastWrap[i]).MinImage(m.L)
		m.unwrap[i] = m.unwrap[i].Add(d)
		m.lastWrap[i] = pos[i]
	}
	sum := 0.0
	for i := range m.unwrap {
		sum += m.unwrap[i].Sub(m.ref[i]).Norm2()
	}
	return sum / float64(len(m.unwrap))
}

// BlockAverage splits data into nblocks contiguous blocks and returns the
// mean and the standard error of the block means — the standard way to
// de-correlate MD time series.
func BlockAverage(data []float64, nblocks int) (mean, stderr float64, err error) {
	if nblocks < 2 || len(data) < nblocks {
		return 0, 0, fmt.Errorf("analysis: need at least %d samples for %d blocks", nblocks, nblocks)
	}
	bs := len(data) / nblocks
	means := make([]float64, nblocks)
	for b := 0; b < nblocks; b++ {
		sum := 0.0
		for i := b * bs; i < (b+1)*bs; i++ {
			sum += data[i]
		}
		means[b] = sum / float64(bs)
		mean += means[b]
	}
	mean /= float64(nblocks)
	varSum := 0.0
	for _, m := range means {
		d := m - mean
		varSum += d * d
	}
	stderr = math.Sqrt(varSum / float64(nblocks-1) / float64(nblocks))
	return mean, stderr, nil
}

// Mean returns the arithmetic mean of data (0 for empty input).
func Mean(data []float64) float64 {
	if len(data) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range data {
		s += v
	}
	return s / float64(len(data))
}

// Std returns the population standard deviation of data.
func Std(data []float64) float64 {
	if len(data) == 0 {
		return 0
	}
	m := Mean(data)
	s := 0.0
	for _, v := range data {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(data)))
}

// FluctuationPoint is one (N, σ_T/T) sample of the Figure 2 experiment.
type FluctuationPoint struct {
	N       int
	MeanT   float64
	StdT    float64
	RelFluc float64 // StdT / MeanT
}

// FitInverseSqrt fits RelFluc = c · N^p by least squares in log space and
// returns (c, p). The canonical-ensemble expectation for the kinetic
// temperature is p = -1/2 with c ≈ sqrt(2/3) — exactly the trend Figure 2
// demonstrates visually.
func FitInverseSqrt(points []FluctuationPoint) (c, p float64, err error) {
	if len(points) < 2 {
		return 0, 0, fmt.Errorf("analysis: need at least 2 points to fit")
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(points))
	for _, pt := range points {
		if pt.N < 1 || pt.RelFluc <= 0 {
			return 0, 0, fmt.Errorf("analysis: invalid point %+v", pt)
		}
		x := math.Log(float64(pt.N))
		y := math.Log(pt.RelFluc)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0, 0, fmt.Errorf("analysis: degenerate fit (all N equal)")
	}
	p = (n*sxy - sx*sy) / denom
	c = math.Exp((sy - p*sx) / n)
	return c, p, nil
}

// DiffusionCoefficient fits MSD(t) = 6·D·t + c by least squares and returns
// D (units: Å²/<time unit of times>) and the intercept c. In three
// dimensions the Einstein relation gives the self-diffusion coefficient of
// the tracked species — the transport property of molten NaCl that the
// paper-scale simulations measure.
func DiffusionCoefficient(times, msd []float64) (d, intercept float64, err error) {
	if len(times) != len(msd) || len(times) < 2 {
		return 0, 0, fmt.Errorf("analysis: need >=2 matched samples (%d, %d)", len(times), len(msd))
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(times))
	for i := range times {
		sx += times[i]
		sy += msd[i]
		sxx += times[i] * times[i]
		sxy += times[i] * msd[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("analysis: degenerate time axis")
	}
	slope := (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope / 6, intercept, nil
}
