package supervise

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// The write-ahead step journal: one JSON record per line, each framed with a
// CRC-32 over its own encoding and fsynced before the step it describes is
// considered committed. A checkpoint bounds restart work to -checkpoint-every
// steps; the journal shrinks that to zero — a kill between checkpoints
// resumes at the exact journaled step by replaying the tail over the
// checkpoint. The payload is opaque here (the mdm package owns its format:
// injector cursor + accumulated recovery report), which keeps this package
// free of upward dependencies.

// JournalVersion is the current record format version.
const JournalVersion = 1

// Typed journal failures, matched with errors.Is.
var (
	// ErrJournalCorrupt reports a record that fails its CRC or does not
	// decode, with valid records after it (a torn final line is tolerated
	// silently: that is the expected shape of a crash mid-append).
	ErrJournalCorrupt = errors.New("supervise: journal record corrupt")
	// ErrJournalVersion reports a record version this build cannot read.
	ErrJournalVersion = errors.New("supervise: unsupported journal version")
)

// Record is one committed step.
type Record struct {
	Version int `json:"version"`
	// Step is the simulation step this record commits.
	Step int `json:"step"`
	// Stage tags the integration mode of the step ("nvt" or "nve") so a
	// resume replays the tail under the same ensemble schedule.
	Stage string `json:"stage,omitempty"`
	// Cursor is the fault injector's fired-event log as of this step; a
	// resumed run feeds it to Injector.Consume so one-shot events stay
	// consumed across the restart.
	Cursor []string `json:"cursor,omitempty"`
	// Payload is owned by the caller (mdm stores the accumulated recovery
	// report here).
	Payload json.RawMessage `json:"payload,omitempty"`
	// Checksum is the IEEE CRC-32 of the record's JSON encoding with this
	// field zeroed.
	Checksum uint32 `json:"crc32"`
}

// recordCRC computes the checksum a record must carry.
func recordCRC(r Record) (uint32, error) {
	r.Checksum = 0
	buf, err := json.Marshal(r)
	if err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(buf), nil
}

// Journal is the append side: an open journal file whose every Append is
// fsynced before returning, making the record durable before the step it
// describes commits.
type Journal struct {
	f    *os.File
	path string
}

// CreateJournal starts a fresh journal, truncating any stale file from a
// previous run at the same path.
func CreateJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, path: path}, nil
}

// AppendJournal opens an existing journal for appending — the resume path,
// which must keep the already-replayed prefix intact.
func AppendJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, path: path}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append writes one record and fsyncs it; on return the record is durable.
func (j *Journal) Append(r Record) error {
	r.Version = JournalVersion
	crc, err := recordCRC(r)
	if err != nil {
		return err
	}
	r.Checksum = crc
	buf, err := json.Marshal(r)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close closes the journal file.
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// ReadJournal decodes a journal's records in order. A torn or corrupt *final*
// line is dropped silently — that is what a crash mid-append leaves behind —
// but damage followed by further valid records is real corruption and returns
// the valid prefix together with ErrJournalCorrupt.
func ReadJournal(lines []string) ([]Record, error) {
	var recs []Record
	for i, line := range lines {
		if line == "" {
			continue
		}
		rec, err := decodeRecord(line)
		if err != nil {
			if i == len(lines)-1 && !errors.Is(err, ErrJournalVersion) {
				return recs, nil
			}
			return recs, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// ReadJournalFile reads a journal from disk; a missing file is an empty
// journal.
func ReadJournalFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ReadJournal(lines)
}

func decodeRecord(line string) (Record, error) {
	var rec Record
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrJournalCorrupt, err)
	}
	if rec.Version != JournalVersion {
		return Record{}, fmt.Errorf("%w: %d", ErrJournalVersion, rec.Version)
	}
	want := rec.Checksum
	crc, err := recordCRC(rec)
	if err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrJournalCorrupt, err)
	}
	if crc != want {
		return Record{}, fmt.Errorf("%w: crc32 %08x, want %08x", ErrJournalCorrupt, crc, want)
	}
	return rec, nil
}
