package supervise

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"mdm/internal/store"
)

// The write-ahead step journal: one JSON record per line, each framed with a
// CRC-32 over its own encoding and fsynced before the step it describes is
// considered committed. A checkpoint bounds restart work to -checkpoint-every
// steps; the journal shrinks that to zero — a kill between checkpoints
// resumes at the exact journaled step by replaying the tail over the
// checkpoint. The payload is opaque here (the mdm package owns its format:
// injector cursor + accumulated recovery report), which keeps this package
// free of upward dependencies.
//
// The journal is segmented: the path itself is the active segment, and each
// committed checkpoint rotates it to path.NNNN (Rotate) so CompactJournal can
// retire segments the checkpoint has made redundant — the journal no longer
// grows without bound over a long campaign. All file I/O goes through the
// store VFS, so every durability claim here is exercised by fault injection:
// creates and rotations are atomic (temp + rename) and committed with a
// directory fsync before any record lands in the new segment.

// JournalVersion is the current record format version.
const JournalVersion = 1

// Typed journal failures, matched with errors.Is.
var (
	// ErrJournalCorrupt reports a record that fails its CRC or does not
	// decode, with valid records after it (a torn final line is tolerated
	// silently: that is the expected shape of a crash mid-append).
	ErrJournalCorrupt = errors.New("supervise: journal record corrupt")
	// ErrJournalVersion reports a record version this build cannot read.
	ErrJournalVersion = errors.New("supervise: unsupported journal version")
)

// Record is one committed step.
type Record struct {
	Version int `json:"version"`
	// Step is the simulation step this record commits.
	Step int `json:"step"`
	// Stage tags the integration mode of the step ("nvt" or "nve") so a
	// resume replays the tail under the same ensemble schedule.
	Stage string `json:"stage,omitempty"`
	// Cursor is the fault injector's fired-event log as of this step; a
	// resumed run feeds it to Injector.Consume so one-shot events stay
	// consumed across the restart.
	Cursor []string `json:"cursor,omitempty"`
	// Payload is owned by the caller (mdm stores the accumulated recovery
	// report here).
	Payload json.RawMessage `json:"payload,omitempty"`
	// Checksum is the IEEE CRC-32 of the record's JSON encoding with this
	// field zeroed.
	Checksum uint32 `json:"crc32"`
}

// recordCRC computes the checksum a record must carry.
func recordCRC(r Record) (uint32, error) {
	r.Checksum = 0
	buf, err := json.Marshal(r)
	if err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(buf), nil
}

// Options configures the journal's storage behavior.
type Options struct {
	// FS is the storage layer (nil = the real filesystem).
	FS store.FS
	// SyncEvery is the group-commit interval: fsync after every Nth append
	// (<= 1 = every append, the default and the strongest guarantee; larger
	// values trade the crash-durability of up to N-1 trailing steps for
	// fewer fsyncs). Rotate and Close always flush.
	SyncEvery int
}

func (o Options) fsys() store.FS {
	if o.FS == nil {
		return store.OS()
	}
	return o.FS
}

func (o Options) every() int {
	if o.SyncEvery < 1 {
		return 1
	}
	return o.SyncEvery
}

// Journal is the append side: an open active segment whose records become
// durable at each group-commit fsync.
type Journal struct {
	fs      store.FS
	f       store.File
	path    string
	every   int
	pending int // appends since the last fsync
}

// CreateJournal starts a fresh journal on the real filesystem.
func CreateJournal(path string) (*Journal, error) {
	return CreateJournalFS(path, Options{})
}

// CreateJournalFS starts a fresh journal: any rotated segments from a
// previous run are retired and the active segment is replaced atomically
// (temp file + rename + directory fsync), so a crash during creation leaves
// the previous run's journal fully intact — never a truncated-in-place file.
func CreateJournalFS(path string, opt Options) (*Journal, error) {
	fsys := opt.fsys()
	segs, err := store.JournalSegments(fsys, path)
	if err != nil {
		return nil, err
	}
	for _, seg := range segs {
		if err := fsys.Remove(seg); err != nil && !store.NotExist(err) {
			return nil, err
		}
	}
	// One directory fsync (inside the atomic replace) commits the segment
	// removals and the fresh active segment together.
	if err := store.WriteFileAtomic(fsys, path, nil); err != nil {
		return nil, err
	}
	f, err := fsys.Append(path)
	if err != nil {
		return nil, err
	}
	return &Journal{fs: fsys, f: f, path: path, every: opt.every()}, nil
}

// AppendJournal opens an existing journal for appending on the real
// filesystem — the resume path, which must keep the replayed prefix intact.
func AppendJournal(path string) (*Journal, error) {
	return AppendJournalFS(path, Options{})
}

// AppendJournalFS opens an existing journal for appending.
func AppendJournalFS(path string, opt Options) (*Journal, error) {
	f, err := opt.fsys().Append(path)
	if err != nil {
		return nil, err
	}
	return &Journal{fs: opt.fsys(), f: f, path: path, every: opt.every()}, nil
}

// Path returns the journal's active-segment path.
func (j *Journal) Path() string { return j.path }

// Append writes one record; it is durable once the group-commit fsync runs
// (immediately with SyncEvery <= 1).
func (j *Journal) Append(r Record) error {
	r.Version = JournalVersion
	crc, err := recordCRC(r)
	if err != nil {
		return err
	}
	r.Checksum = crc
	buf, err := json.Marshal(r)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	j.pending++
	if j.pending >= j.every {
		return j.Sync()
	}
	return nil
}

// Sync flushes any unsynced appends to durable storage.
func (j *Journal) Sync() error {
	if j.pending == 0 {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.pending = 0
	return nil
}

// Rotate closes the active segment under the next rotation name and starts a
// fresh active segment, committing both with a directory fsync before any
// new record lands. The caller rotates right after a checkpoint commit, so
// the rotated segment holds only steps the checkpoint already covers;
// CompactJournal can then retire it. Returns the rotated segment's path.
func (j *Journal) Rotate() (string, error) {
	if err := j.Sync(); err != nil {
		return "", err
	}
	if err := j.f.Close(); err != nil {
		return "", err
	}
	j.f = nil
	seq, err := store.NextSegmentSeq(j.fs, j.path)
	if err != nil {
		return "", err
	}
	segPath := store.SegmentPath(j.path, seq)
	if err := j.fs.Rename(j.path, segPath); err != nil {
		return "", err
	}
	f, err := j.fs.Create(j.path)
	if err != nil {
		return "", err
	}
	if err := j.fs.SyncDir(store.Dir(j.path)); err != nil {
		f.Close()
		return "", err
	}
	j.f = f
	return segPath, nil
}

// Close flushes pending appends and closes the active segment.
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	syncErr := j.Sync()
	err := j.f.Close()
	j.f = nil
	if syncErr != nil {
		return syncErr
	}
	return err
}

// CompactJournal retires rotated segments made redundant by a checkpoint at
// ckptStep: every segment whose records all commit steps <= ckptStep is
// removed (the checkpoint already holds that state). The active segment and
// anything torn or corrupt are left for Scan/Repair to adjudicate. Returns
// the removed paths.
func CompactJournal(fsys store.FS, path string, ckptStep int) ([]string, error) {
	segs, err := store.JournalSegments(fsys, path)
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, seg := range segs {
		data, err := fsys.ReadFile(seg)
		if err != nil {
			if store.NotExist(err) {
				continue
			}
			return removed, err
		}
		steps, validLen, serr := ScanSegment(data)
		if serr != nil || validLen < len(data) {
			continue
		}
		if len(steps) > 0 && steps[len(steps)-1] > ckptStep {
			continue
		}
		if err := fsys.Remove(seg); err != nil && !store.NotExist(err) {
			return removed, err
		}
		removed = append(removed, seg)
	}
	if len(removed) > 0 {
		if err := fsys.SyncDir(store.Dir(path)); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Rewind rewrites the active segment keeping only records through step,
// atomically — the resume path's truncation of uncommitted tail records.
// Rotated segments are untouched: they predate the checkpoint the resume is
// built on.
func Rewind(fsys store.FS, path string, step int) error {
	data, err := fsys.ReadFile(path)
	if err != nil {
		if store.NotExist(err) {
			return nil
		}
		return err
	}
	var keep []byte
	err = walkSegment(data, func(rec Record, start, end int) bool {
		if rec.Step > step {
			return false
		}
		keep = append(keep, data[start:end]...)
		return true
	})
	if err != nil && !errors.Is(err, ErrJournalCorrupt) {
		return err
	}
	return store.WriteFileAtomic(fsys, path, keep)
}

// walkSegment iterates the valid newline-terminated records of a segment
// image, calling fn with each record and its byte extent; fn returning false
// stops the walk. It returns ErrJournalCorrupt for damage followed by further
// content; a torn tail ends the walk silently.
func walkSegment(data []byte, fn func(rec Record, start, end int) bool) error {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			return nil // torn tail: an unterminated final line
		}
		line := data[off : off+nl]
		end := off + nl + 1
		if len(bytes.TrimSpace(line)) == 0 {
			off = end
			continue
		}
		rec, err := decodeRecord(string(line))
		if err != nil {
			if errors.Is(err, ErrJournalVersion) {
				return err
			}
			if len(bytes.TrimSpace(data[end:])) == 0 {
				return nil // damaged final record: the shape of a torn append
			}
			return err
		}
		if !fn(rec, off, end) {
			return nil
		}
		off = end
	}
	return nil
}

// ScanSegment validates one segment image for the recovery manager: the
// steps committed by its valid prefix (one per record, in order), the byte
// length of that prefix, and a non-nil error only for interior corruption.
// A torn tail is validLen < len(data) with a nil error.
func ScanSegment(data []byte) (steps []int, validLen int, err error) {
	err = walkSegment(data, func(rec Record, start, end int) bool {
		steps = append(steps, rec.Step)
		validLen = end
		return true
	})
	return steps, validLen, err
}

// ReadJournal decodes journal lines in order. A torn or corrupt *final*
// line is dropped silently — that is what a crash mid-append leaves behind —
// but damage followed by further valid records is real corruption and returns
// the valid prefix together with ErrJournalCorrupt.
func ReadJournal(lines []string) ([]Record, error) {
	var recs []Record
	for i, line := range lines {
		if line == "" {
			continue
		}
		rec, err := decodeRecord(line)
		if err != nil {
			if i == len(lines)-1 && !errors.Is(err, ErrJournalVersion) {
				return recs, nil
			}
			return recs, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// ReadJournalFile reads a full journal from the real filesystem — rotated
// segments in order, then the active segment. A missing journal is empty.
func ReadJournalFile(path string) ([]Record, error) {
	return ReadJournalFS(store.OS(), path)
}

// ReadJournalFS reads a full journal through a store VFS: the records of
// every rotated segment in rotation order, then the active segment. A torn
// tail on the last thing read is tolerated; interior corruption — including
// a torn rotated segment followed by more records — returns the valid prefix
// with ErrJournalCorrupt.
func ReadJournalFS(fsys store.FS, path string) ([]Record, error) {
	segs, err := store.JournalSegments(fsys, path)
	if err != nil {
		return nil, err
	}
	paths := append(segs, path)
	var recs []Record
	sawDamage := false
	for _, p := range paths {
		data, err := fsys.ReadFile(p)
		if err != nil {
			if store.NotExist(err) {
				continue
			}
			return recs, err
		}
		if sawDamage && len(bytes.TrimSpace(data)) > 0 {
			return recs, fmt.Errorf("%w: records beyond damaged segment", ErrJournalCorrupt)
		}
		consumed := 0
		walkErr := walkSegment(data, func(rec Record, start, end int) bool {
			recs = append(recs, rec)
			consumed = end
			return true
		})
		if walkErr != nil {
			return recs, walkErr
		}
		// A torn tail is only tolerable on the newest data; records in a
		// later segment would sit beyond lost history.
		if len(bytes.TrimSpace(data[consumed:])) > 0 {
			sawDamage = true
		}
	}
	return recs, nil
}

func decodeRecord(line string) (Record, error) {
	var rec Record
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrJournalCorrupt, err)
	}
	if rec.Version != JournalVersion {
		return Record{}, fmt.Errorf("%w: %d", ErrJournalVersion, rec.Version)
	}
	want := rec.Checksum
	crc, err := recordCRC(rec)
	if err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrJournalCorrupt, err)
	}
	if crc != want {
		return Record{}, fmt.Errorf("%w: crc32 %08x, want %08x", ErrJournalCorrupt, crc, want)
	}
	return rec, nil
}
