package supervise

import "sync"

// BreakerConfig tunes the circuit breakers. Cooldowns are measured on the
// simulation step clock, not wall time, so breaker behaviour is deterministic
// for a scripted fault schedule.
type BreakerConfig struct {
	// Trip opens a breaker after this many failures inside Window steps.
	Trip int
	// Window is the sliding failure-counting window, in steps.
	Window int
	// Cooldown is how many steps a freshly opened breaker stays open before
	// probing half-open; it doubles on every reopen up to MaxCooldown.
	Cooldown int
	// MaxCooldown caps the exponential reopen backoff.
	MaxCooldown int
}

// withDefaults fills unset knobs.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Trip <= 0 {
		c.Trip = 3
	}
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 8
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 256
	}
	return c
}

// State is a breaker's position in the closed → open → half-open cycle.
type State int

// The breaker states.
const (
	// Closed passes traffic and counts failures.
	Closed State = iota
	// Open rejects traffic until the cooldown elapses.
	Open
	// HalfOpen passes one probe: success closes, failure reopens with a
	// doubled cooldown.
	HalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is one circuit breaker on the step clock. Not safe for concurrent
// use on its own; BreakerSet adds the locking.
type Breaker struct {
	cfg      BreakerConfig
	state    State
	fails    []int // steps of recent failures (Closed only)
	openedAt int
	cooldown int // current reopen cooldown, doubles per reopen
	trips    int
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// sync lazily moves an open breaker whose cooldown has elapsed to half-open.
func (b *Breaker) sync(step int) {
	if b.state == Open && step >= b.openedAt+b.cooldown {
		b.state = HalfOpen
	}
}

// State reports the breaker's state as of a step.
func (b *Breaker) State(step int) State {
	b.sync(step)
	return b.state
}

// Allow reports whether traffic may pass at a step (closed or half-open).
func (b *Breaker) Allow(step int) bool {
	b.sync(step)
	return b.state != Open
}

// Fail records a failure at a step and reports whether it tripped the
// breaker open (including a half-open probe failing back to open).
func (b *Breaker) Fail(step int) bool {
	b.sync(step)
	switch b.state {
	case Open:
		return false
	case HalfOpen:
		b.open(step, true)
		return true
	}
	//mdm:hotallocok -- failure bookkeeping: runs only when a hardware call failed, and the window trim below bounds the slice
	b.fails = append(b.fails, step)
	keep := b.fails[:0]
	for _, s := range b.fails {
		if s > step-b.cfg.Window {
			keep = append(keep, s)
		}
	}
	b.fails = keep
	if len(b.fails) >= b.cfg.Trip {
		b.open(step, false)
		return true
	}
	return false
}

// OK records a success at a step; a half-open probe succeeding closes the
// breaker and resets its backoff.
func (b *Breaker) OK(step int) {
	b.sync(step)
	if b.state == HalfOpen {
		b.state = Closed
		b.cooldown = 0
		b.fails = nil
	}
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int { return b.trips }

func (b *Breaker) open(step int, reopen bool) {
	b.state = Open
	b.openedAt = step
	b.fails = nil
	b.trips++
	if reopen {
		b.cooldown *= 2
		if b.cooldown > b.cfg.MaxCooldown {
			b.cooldown = b.cfg.MaxCooldown
		}
	} else {
		b.cooldown = b.cfg.Cooldown
	}
}

// BreakerSet is a concurrency-safe registry of breakers keyed by scope
// ("wine2", "mdg/board2", "link 1-0", ...). Breakers are created on first
// failure; Drop retires a scope whose component has been quarantined so it
// no longer gates dispatch.
type BreakerSet struct {
	mu      sync.Mutex
	cfg     BreakerConfig
	m       map[string]*Breaker
	order   []string
	dropped int
	trips   int
}

// NewBreakerSet builds an empty set sharing one config.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg.withDefaults(), m: make(map[string]*Breaker)}
}

// Fail records a failure against a scope and reports whether it tripped the
// scope's breaker open.
func (s *BreakerSet) Fail(scope string, step int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[scope]
	if b == nil {
		b = NewBreaker(s.cfg)
		s.m[scope] = b
		s.order = append(s.order, scope)
	}
	tripped := b.Fail(step)
	if tripped {
		s.trips++
	}
	return tripped
}

// OK records a successful step on every live breaker, closing half-open ones.
func (s *BreakerSet) OK(step int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.m {
		b.OK(step)
	}
}

// Allow reports whether traffic may pass for one scope at a step. A scope
// with no recorded failure always passes.
func (s *BreakerSet) Allow(scope string, step int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[scope]
	return b == nil || b.Allow(step)
}

// OKScope records a success for one scope only, closing its half-open probe.
// Unlike hardware boards sharing a step clock (OK), the serving layer's
// tenants succeed and fail independently, so a success must not close another
// tenant's probe.
func (s *BreakerSet) OKScope(scope string, step int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.m[scope]; b != nil {
		b.OK(step)
	}
}

// States snapshots every live breaker's state at a step, keyed by scope.
func (s *BreakerSet) States(step int) map[string]State {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]State, len(s.m))
	for scope, b := range s.m {
		out[scope] = b.State(step)
	}
	return out
}

// FirstOpen returns the first registered scope whose breaker rejects traffic
// at a step, in registration order (deterministic for a scripted schedule).
func (s *BreakerSet) FirstOpen(step int) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, scope := range s.order {
		if b := s.m[scope]; b != nil && !b.Allow(step) {
			return scope, true
		}
	}
	return "", false
}

// Drop retires a scope: its component has been quarantined (re-striped away),
// so its breaker must not keep rejecting a stripe that no longer includes it.
func (s *BreakerSet) Drop(scope string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[scope]; ok {
		delete(s.m, scope)
		s.dropped++
		keep := s.order[:0]
		for _, sc := range s.order {
			if sc != scope {
				keep = append(keep, sc)
			}
		}
		s.order = keep
	}
}

// Trips returns the total number of breaker openings, including breakers
// since retired by Drop.
func (s *BreakerSet) Trips() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trips
}
