// Package supervise is the long-run supervision layer of the MDM
// reproduction. The paper's headline run held 2,304 ASICs busy for 36.5
// hours at 43.8 s/step (§5); over such a run the dangerous failures are the
// silent ones — a wedged board that never returns, a rank that stops making
// progress, a process killed between checkpoints. The recovery ladder in
// internal/core only reacts to *errors*; this package supplies the three
// mechanisms that turn silence into errors and bound the blast radius:
//
//   - Watchdog: per-scope heartbeats from the hot loops and a monitor that
//     declares a stall after a configurable deadline, so a hung call is
//     converted into a retryable fault instead of blocking forever.
//   - Breaker / BreakerSet: per-board and per-link circuit breakers
//     (closed → open → half-open, step-clock cooldowns with exponential
//     reopen backoff) so a chronically flaky component is quarantined up
//     front instead of paying a retry round-trip every step.
//   - Journal: a write-ahead step journal (CRC-32-framed, fsynced per
//     append) so a SIGKILL between checkpoints resumes at the exact step.
//
// The package is deliberately free of dependencies on the rest of the stack:
// internal/core wires a Watchdog and BreakerSet into its recovery ladder, and
// the top-level mdm package owns the Journal's payload format.
package supervise

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Watchdog detects stalls: hot loops call Beat with a scope name (a hardware
// site or a rank), and a monitor goroutine declares any armed scope that has
// been silent longer than the deadline stalled, invoking the registered
// OnStall callbacks. Arm/Disarm bracket the window in which silence is
// meaningful (a hardware step in flight); outside it the monitor stays quiet,
// so idle time between steps or after the run never counts as a stall.
//
// A Watchdog is one-shot: New → Start → Stop. All methods are safe for
// concurrent use.
type Watchdog struct {
	deadline time.Duration
	interval time.Duration

	mu      sync.Mutex
	scopes  map[string]*scopeState
	onStall []func(scope string)
	stalls  []string
	armed   int
	stop    chan struct{}
	done    chan struct{}
	started bool
	stopped bool
}

type scopeState struct {
	last    time.Time
	stalled bool // latched until the scope beats again
}

// NewWatchdog builds a watchdog that declares a stall after deadline of
// silence on an armed scope. The monitor polls at deadline/4 (at least 1 ms).
func NewWatchdog(deadline time.Duration) *Watchdog {
	interval := deadline / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	return &Watchdog{
		deadline: deadline,
		interval: interval,
		scopes:   make(map[string]*scopeState),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// OnStall registers a callback invoked (from the monitor goroutine) each time
// a scope is declared stalled. Register callbacks before Start.
func (w *Watchdog) OnStall(fn func(scope string)) {
	w.mu.Lock()
	w.onStall = append(w.onStall, fn)
	w.mu.Unlock()
}

// Beat records a sign of life from a scope, registering it on first use and
// clearing any stall latched against it.
//
//mdm:stepflow -- hot-path root: installed as the hardware-call heartbeat hook (core wires cfg.Heartbeat = wd.Beat), so it runs inside every step; annotated explicitly because the hook wiring is an assignment the callgraph cannot see
//mdm:wallclockok -- the liveness clock must be wall time (a stall IS elapsed wall time); timestamps stay inside the watchdog and never reach simulation state or the journal
func (w *Watchdog) Beat(scope string) {
	now := time.Now()
	w.mu.Lock()
	s := w.scopes[scope]
	if s == nil {
		s = &scopeState{}
		w.scopes[scope] = s
	}
	s.last = now
	s.stalled = false
	w.mu.Unlock()
}

// Arm opens a supervision window: until the matching Disarm, a silent scope
// counts as stalled. Windows nest; every known scope's silence clock resets
// at the outermost Arm so staleness from the previous window cannot trip the
// monitor instantly.
//
//mdm:wallclockok -- the liveness clock must be wall time (a stall IS elapsed wall time); timestamps stay inside the watchdog and never reach simulation state or the journal
func (w *Watchdog) Arm() {
	now := time.Now()
	w.mu.Lock()
	w.armed++
	if w.armed == 1 {
		for _, s := range w.scopes {
			s.last = now
			s.stalled = false
		}
	}
	w.mu.Unlock()
}

// Disarm closes the supervision window opened by Arm.
func (w *Watchdog) Disarm() {
	w.mu.Lock()
	if w.armed > 0 {
		w.armed--
	}
	w.mu.Unlock()
}

// Start launches the monitor goroutine. It is a no-op on a watchdog that has
// already started.
func (w *Watchdog) Start() {
	w.mu.Lock()
	if w.started {
		w.mu.Unlock()
		return
	}
	w.started = true
	w.mu.Unlock()
	go w.monitor()
}

// Stop terminates the monitor and waits for it to exit. Idempotent.
func (w *Watchdog) Stop() {
	w.mu.Lock()
	if !w.started || w.stopped {
		w.mu.Unlock()
		return
	}
	w.stopped = true
	w.mu.Unlock()
	close(w.stop)
	<-w.done
}

// Stalls returns the log of declared stalls, in declaration order.
func (w *Watchdog) Stalls() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, len(w.stalls))
	copy(out, w.stalls)
	return out
}

func (w *Watchdog) monitor() {
	defer close(w.done)
	ticker := time.NewTicker(w.interval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case now := <-ticker.C:
			w.check(now)
		}
	}
}

// check declares stalls for armed scopes past the deadline. Callbacks run
// outside the lock: they reach back into the injector (ReleaseHangs) and the
// MPI world (CancelRun), either of which may beat or re-enter concurrently.
func (w *Watchdog) check(now time.Time) {
	w.mu.Lock()
	if w.armed == 0 {
		w.mu.Unlock()
		return
	}
	// Walk scopes in sorted order so the stall log and the callback sequence
	// are stable when several scopes trip on the same tick (map iteration
	// order would otherwise shuffle them run to run).
	names := make([]string, 0, len(w.scopes))
	for scope := range w.scopes {
		names = append(names, scope)
	}
	sort.Strings(names)
	var stalled []string
	for _, scope := range names {
		s := w.scopes[scope]
		if !s.stalled && now.Sub(s.last) > w.deadline {
			s.stalled = true
			w.stalls = append(w.stalls, fmt.Sprintf("%s silent > %v", scope, w.deadline))
			stalled = append(stalled, scope)
		}
	}
	callbacks := w.onStall
	w.mu.Unlock()
	for _, scope := range stalled {
		for _, fn := range callbacks {
			fn(scope)
		}
	}
}
