package supervise

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWatchdogDeclaresStall(t *testing.T) {
	w := NewWatchdog(20 * time.Millisecond)
	var mu sync.Mutex
	var got []string
	w.OnStall(func(scope string) {
		mu.Lock()
		got = append(got, scope)
		mu.Unlock()
	})
	w.Start()
	defer w.Stop()
	w.Arm()
	defer w.Disarm()
	w.Beat("mdg")
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no stall declared for a silent armed scope")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	scope := got[0]
	mu.Unlock()
	if scope != "mdg" {
		t.Errorf("stalled scope = %q, want mdg", scope)
	}
	if stalls := w.Stalls(); len(stalls) == 0 || !strings.Contains(stalls[0], "mdg") {
		t.Errorf("Stalls() = %v", stalls)
	}
}

func TestWatchdogQuietWhenDisarmedOrBeating(t *testing.T) {
	w := NewWatchdog(10 * time.Millisecond)
	w.OnStall(func(string) { t.Error("stall declared") })
	w.Start()
	defer w.Stop()
	// Disarmed: a silent scope is idle, not stalled.
	w.Beat("wine2")
	time.Sleep(50 * time.Millisecond)
	// Armed but beating: alive.
	w.Arm()
	for i := 0; i < 20; i++ {
		w.Beat("wine2")
		time.Sleep(2 * time.Millisecond)
	}
	w.Disarm()
}

func TestWatchdogStallLatchClearsOnBeat(t *testing.T) {
	w := NewWatchdog(10 * time.Millisecond)
	var mu sync.Mutex
	count := 0
	w.OnStall(func(string) { mu.Lock(); count++; mu.Unlock() })
	w.Start()
	defer w.Stop()
	w.Arm()
	defer w.Disarm()
	w.Beat("mdg")
	time.Sleep(60 * time.Millisecond) // one stall, then latched
	mu.Lock()
	first := count
	mu.Unlock()
	if first != 1 {
		t.Fatalf("stall count after silence = %d, want 1 (latched)", first)
	}
	w.Beat("mdg") // recovery: latch clears
	time.Sleep(60 * time.Millisecond)
	mu.Lock()
	second := count
	mu.Unlock()
	if second != 2 {
		t.Errorf("stall count after beat + silence = %d, want 2", second)
	}
}

func TestWatchdogStopIdempotent(t *testing.T) {
	w := NewWatchdog(time.Millisecond)
	w.Start()
	w.Stop()
	w.Stop()
}

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(BreakerConfig{Trip: 3, Window: 10, Cooldown: 4})
	// Two failures inside the window: still closed.
	if b.Fail(1) || b.Fail(2) {
		t.Fatal("tripped before Trip failures")
	}
	if !b.Allow(3) {
		t.Fatal("closed breaker rejects")
	}
	// Third failure trips it open.
	if !b.Fail(3) {
		t.Fatal("third failure in window did not trip")
	}
	if b.Allow(4) || b.State(4) != Open {
		t.Fatal("open breaker allows")
	}
	// Cooldown elapses: half-open probe allowed.
	if !b.Allow(7) || b.State(7) != HalfOpen {
		t.Fatalf("state at step 7 = %v, want half-open", b.State(7))
	}
	// Probe fails: reopens with doubled cooldown (8 steps).
	if !b.Fail(7) {
		t.Fatal("half-open probe failure did not reopen")
	}
	if b.Allow(14) {
		t.Fatal("reopened breaker allowed before doubled cooldown")
	}
	if !b.Allow(15) {
		t.Fatal("breaker still open after doubled cooldown")
	}
	// Probe succeeds: closed, backoff reset.
	b.OK(15)
	if b.State(16) != Closed {
		t.Fatalf("state after good probe = %v, want closed", b.State(16))
	}
	if b.Trips() != 2 {
		t.Errorf("Trips = %d, want 2", b.Trips())
	}
}

func TestBreakerWindowExpiresFailures(t *testing.T) {
	b := NewBreaker(BreakerConfig{Trip: 3, Window: 5, Cooldown: 4})
	b.Fail(1)
	b.Fail(2)
	// Step 10 is outside the window of both: only one live failure.
	if b.Fail(10) {
		t.Fatal("stale failures counted toward trip")
	}
	if !b.Allow(10) {
		t.Fatal("breaker opened on expired window")
	}
}

func TestBreakerSetQuarantineFlow(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{Trip: 2, Window: 10, Cooldown: 4})
	if s.Fail("mdg/board1", 1) {
		t.Fatal("tripped on first failure")
	}
	if !s.Fail("mdg/board1", 2) {
		t.Fatal("did not trip on second failure")
	}
	if scope, open := s.FirstOpen(3); !open || scope != "mdg/board1" {
		t.Fatalf("FirstOpen = %q, %v", scope, open)
	}
	// Quarantined: the board left the stripe, its breaker retires with it.
	s.Drop("mdg/board1")
	if _, open := s.FirstOpen(3); open {
		t.Fatal("dropped scope still gates dispatch")
	}
	if s.Trips() != 1 {
		t.Errorf("Trips = %d, want 1 (survives Drop)", s.Trips())
	}
	// OK on an empty set is fine.
	s.OK(4)
}

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "run.journal")
}

func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(map[string]int{"steps": 3})
	want := []Record{
		{Step: 1, Stage: "nvt", Cursor: []string{"step 1: mdg:transient@step=1"}},
		{Step: 2, Stage: "nvt"},
		{Step: 3, Stage: "nve", Payload: payload},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Step != want[i].Step || r.Stage != want[i].Stage {
			t.Errorf("record %d = step %d stage %q, want step %d stage %q",
				i, r.Step, r.Stage, want[i].Step, want[i].Stage)
		}
		if r.Version != JournalVersion || r.Checksum == 0 {
			t.Errorf("record %d: version %d checksum %08x", i, r.Version, r.Checksum)
		}
	}
	if got[0].Cursor[0] != want[0].Cursor[0] {
		t.Errorf("cursor = %v", got[0].Cursor)
	}
	if string(got[2].Payload) != string(payload) {
		t.Errorf("payload = %s", got[2].Payload)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	path := journalPath(t)
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Record{Step: 1})
	j.Append(Record{Step: 2})
	j.Close()
	// A kill mid-append leaves a truncated final line.
	buf, _ := os.ReadFile(path)
	torn := append(buf, []byte(`{"version":1,"step":3,"crc`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournalFile(path)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(recs) != 2 || recs[1].Step != 2 {
		t.Fatalf("records = %+v, want steps 1,2", recs)
	}
}

func TestJournalRejectsInteriorCorruption(t *testing.T) {
	path := journalPath(t)
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Record{Step: 1})
	j.Append(Record{Step: 2})
	j.Append(Record{Step: 3})
	j.Close()
	buf, _ := os.ReadFile(path)
	lines := strings.Split(strings.TrimRight(string(buf), "\n"), "\n")
	lines[1] = strings.Replace(lines[1], `"step":2`, `"step":20`, 1) // breaks CRC
	recs, err := ReadJournal(lines)
	if !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("interior corruption: err = %v, want ErrJournalCorrupt", err)
	}
	if len(recs) != 1 || recs[0].Step != 1 {
		t.Fatalf("valid prefix = %+v, want step 1", recs)
	}
}

func TestJournalRejectsUnknownVersion(t *testing.T) {
	rec := Record{Version: 99, Step: 1}
	crc, err := recordCRC(rec)
	if err != nil {
		t.Fatal(err)
	}
	rec.Checksum = crc
	buf, _ := json.Marshal(rec)
	// Even as the final line, a future version must not be dropped silently.
	if _, err := ReadJournal([]string{string(buf)}); !errors.Is(err, ErrJournalVersion) {
		t.Fatalf("err = %v, want ErrJournalVersion", err)
	}
}

func TestJournalMissingFileIsEmpty(t *testing.T) {
	recs, err := ReadJournalFile(filepath.Join(t.TempDir(), "absent.journal"))
	if err != nil || recs != nil {
		t.Fatalf("missing file: recs=%v err=%v", recs, err)
	}
}

func TestAppendJournalPreservesPrefix(t *testing.T) {
	path := journalPath(t)
	j, _ := CreateJournal(path)
	j.Append(Record{Step: 1})
	j.Close()
	j2, err := AppendJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.Append(Record{Step: 2})
	j2.Close()
	recs, err := ReadJournalFile(path)
	if err != nil || len(recs) != 2 {
		t.Fatalf("recs=%v err=%v, want 2 records", recs, err)
	}
}
