package supervise

import (
	"errors"
	"testing"

	"mdm/internal/fault"
	"mdm/internal/store"
)

func faultFS(t *testing.T, scenario string) *store.FaultFS {
	t.Helper()
	if scenario == "" {
		return store.NewFaultFS(nil)
	}
	in, err := fault.ParseInjector(scenario)
	if err != nil {
		t.Fatal(err)
	}
	return store.NewFaultFS(in)
}

func appendSteps(t *testing.T, j *Journal, steps ...int) {
	t.Helper()
	for _, s := range steps {
		if err := j.Append(Record{Step: s, Stage: "nvt"}); err != nil {
			t.Fatalf("Append step %d: %v", s, err)
		}
	}
}

func readSteps(t *testing.T, fsys store.FS, path string) []int {
	t.Helper()
	recs, err := ReadJournalFS(fsys, path)
	if err != nil {
		t.Fatalf("ReadJournalFS: %v", err)
	}
	steps := make([]int, len(recs))
	for i, r := range recs {
		steps[i] = r.Step
	}
	return steps
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Rotation moves the active segment aside and the full read spans segments.
func TestJournalRotateAndReadAcrossSegments(t *testing.T) {
	fs := faultFS(t, "")
	j, err := CreateJournalFS("wal", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	appendSteps(t, j, 1, 2)
	seg, err := j.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seg != store.SegmentPath("wal", 1) {
		t.Fatalf("rotated to %q", seg)
	}
	appendSteps(t, j, 3, 4)
	if _, err := j.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendSteps(t, j, 5)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readSteps(t, fs, "wal"); !eqInts(got, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("steps across segments: %v", got)
	}
	// Everything is durable: the same read works after a crash.
	fs.Reboot(nil)
	if got := readSteps(t, fs, "wal"); !eqInts(got, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("steps after reboot: %v", got)
	}
}

// Compaction retires rotated segments fully covered by the checkpoint and
// keeps newer ones and the active segment.
func TestCompactJournal(t *testing.T) {
	fs := faultFS(t, "")
	j, _ := CreateJournalFS("wal", Options{FS: fs})
	appendSteps(t, j, 1, 2)
	j.Rotate() // wal.0001: steps 1-2
	appendSteps(t, j, 3, 4)
	j.Rotate() // wal.0002: steps 3-4
	appendSteps(t, j, 5)
	j.Close()

	removed, err := CompactJournal(fs, "wal", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != store.SegmentPath("wal", 1) {
		t.Fatalf("compact(2) removed %v", removed)
	}
	if got := readSteps(t, fs, "wal"); !eqInts(got, []int{3, 4, 5}) {
		t.Fatalf("after compact: %v", got)
	}
	// The removal is durable (directory fsync ran).
	fs.Reboot(nil)
	if _, err := fs.ReadFile(store.SegmentPath("wal", 1)); !store.NotExist(err) {
		t.Fatalf("compacted segment resurrected: %v", err)
	}
}

// A fresh CreateJournalFS retires a previous run's rotated segments, and a
// crash during creation leaves the previous journal intact.
func TestCreateJournalCrashSafe(t *testing.T) {
	fs := faultFS(t, "")
	j, _ := CreateJournalFS("wal", Options{FS: fs})
	appendSteps(t, j, 1)
	j.Rotate()
	appendSteps(t, j, 2)
	j.Close()

	// Crash at the rename that would commit the new empty journal: the old
	// run's records must survive to the durable view.
	in, err := fault.ParseInjector("store:crash-before-rename@rename=1")
	if err != nil {
		t.Fatal(err)
	}
	fs.Reboot(in)
	if _, err := CreateJournalFS("wal", Options{FS: fs}); !errors.Is(err, store.ErrCrashed) {
		t.Fatalf("create under crash: %v", err)
	}
	fs.Reboot(nil)
	if got := readSteps(t, fs, "wal"); !eqInts(got, []int{1, 2}) {
		t.Fatalf("old journal damaged by crashed create: %v\n%s", got, fs.Dump())
	}

	// A clean re-create starts empty and retires the stale segment.
	if _, err := CreateJournalFS("wal", Options{FS: fs}); err != nil {
		t.Fatal(err)
	}
	if got := readSteps(t, fs, "wal"); len(got) != 0 {
		t.Fatalf("fresh journal not empty: %v", got)
	}
	segs, _ := store.JournalSegments(fs, "wal")
	if len(segs) != 0 {
		t.Fatalf("stale segments survived create: %v", segs)
	}
}

// Group commit: with SyncEvery=3, a crash after two appends loses both; the
// third append syncs and all three survive.
func TestJournalGroupCommit(t *testing.T) {
	fs := faultFS(t, "")
	j, _ := CreateJournalFS("wal", Options{FS: fs, SyncEvery: 3})
	appendSteps(t, j, 1, 2)
	fs.Reboot(nil)
	if got := readSteps(t, fs, "wal"); len(got) != 0 {
		t.Fatalf("unsynced appends survived: %v", got)
	}

	fs = faultFS(t, "")
	j, _ = CreateJournalFS("wal", Options{FS: fs, SyncEvery: 3})
	appendSteps(t, j, 1, 2, 3) // third append triggers the group fsync
	fs.Reboot(nil)
	if got := readSteps(t, fs, "wal"); !eqInts(got, []int{1, 2, 3}) {
		t.Fatalf("group-committed records lost: %v", got)
	}
}

// Close flushes pending group-commit records.
func TestJournalCloseFlushes(t *testing.T) {
	fs := faultFS(t, "")
	j, _ := CreateJournalFS("wal", Options{FS: fs, SyncEvery: 10})
	appendSteps(t, j, 1, 2)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	fs.Reboot(nil)
	if got := readSteps(t, fs, "wal"); !eqInts(got, []int{1, 2}) {
		t.Fatalf("Close lost pending records: %v", got)
	}
}

// Rewind truncates the active segment after step, atomically, leaving
// rotated segments alone.
func TestRewindActiveSegment(t *testing.T) {
	fs := faultFS(t, "")
	j, _ := CreateJournalFS("wal", Options{FS: fs})
	appendSteps(t, j, 1, 2)
	j.Rotate()
	appendSteps(t, j, 3, 4, 5)
	j.Close()
	if err := Rewind(fs, "wal", 3); err != nil {
		t.Fatal(err)
	}
	if got := readSteps(t, fs, "wal"); !eqInts(got, []int{1, 2, 3}) {
		t.Fatalf("after rewind: %v", got)
	}
	fs.Reboot(nil)
	if got := readSteps(t, fs, "wal"); !eqInts(got, []int{1, 2, 3}) {
		t.Fatalf("rewind not durable: %v", got)
	}
}

// An injected eio on the journal read surfaces as an error — never a silent
// short read (satellite: typed-error coverage).
func TestReadJournalFSEIO(t *testing.T) {
	fs := faultFS(t, "")
	j, _ := CreateJournalFS("wal", Options{FS: fs})
	appendSteps(t, j, 1, 2)
	j.Close()
	in, err := fault.ParseInjector("store:eio@read=1")
	if err != nil {
		t.Fatal(err)
	}
	fs.Reboot(in)
	if _, err := ReadJournalFS(fs, "wal"); !errors.Is(err, store.ErrIO) {
		t.Fatalf("eio read: err = %v, want ErrIO", err)
	}
}

// An injected bitrot lands on a record's CRC: the reader reports
// ErrJournalCorrupt for interior damage rather than returning rotted data.
func TestReadJournalFSBitRot(t *testing.T) {
	fs := faultFS(t, "")
	j, _ := CreateJournalFS("wal", Options{FS: fs})
	appendSteps(t, j, 1, 2, 3)
	j.Close()
	// Corrupt a byte in the first record: damage followed by valid records.
	in, err := fault.ParseInjector("store:bitrot@read=1,offset=10")
	if err != nil {
		t.Fatal(err)
	}
	fs.Reboot(in)
	_, rerr := ReadJournalFS(fs, "wal")
	if !errors.Is(rerr, ErrJournalCorrupt) {
		t.Fatalf("bitrot read: err = %v, want ErrJournalCorrupt", rerr)
	}
}
