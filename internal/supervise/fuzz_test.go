package supervise

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzReadJournal drives the journal reader with arbitrary bytes. It must
// never panic, never return a record of a foreign version, and anything it
// accepts must survive a rewrite-and-reread round trip.
func FuzzReadJournal(f *testing.F) {
	path := filepath.Join(f.TempDir(), "seed.wal")
	j, err := CreateJournal(path)
	if err != nil {
		f.Fatal(err)
	}
	for step := 1; step <= 2; step++ {
		err := j.Append(Record{
			Step:    step,
			Stage:   "nvt",
			Cursor:  []string{"step 1: mdg:transient"},
			Payload: json.RawMessage(`{"Retries":1}`),
		})
		if err != nil {
			f.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	recs, err := ReadJournalFile(path)
	if err != nil || len(recs) != 2 {
		f.Fatalf("seed journal unreadable: %d records, %v", len(recs), err)
	}
	seed, err := json.Marshal(recs[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed) + "\n" + string(seed))
	f.Add(string(seed) + "\n{\"torn")
	f.Add(`{"version":99,"step":1,"crc32":0}`)
	f.Add("")
	f.Add("{}\nnot json at all")
	f.Fuzz(func(t *testing.T, data string) {
		recs, err := ReadJournal(strings.Split(data, "\n"))
		for _, r := range recs {
			if r.Version != JournalVersion {
				t.Fatalf("accepted foreign version %d", r.Version)
			}
		}
		if err != nil {
			return
		}
		// Re-append what was read: the result must read back identically.
		path := filepath.Join(t.TempDir(), "rt.wal")
		j, werr := CreateJournal(path)
		if werr != nil {
			t.Fatal(werr)
		}
		for _, r := range recs {
			if werr := j.Append(r); werr != nil {
				t.Fatal(werr)
			}
		}
		if werr := j.Close(); werr != nil {
			t.Fatal(werr)
		}
		back, rerr := ReadJournalFile(path)
		if rerr != nil {
			t.Fatalf("round trip failed: %v", rerr)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip lost records: %d -> %d", len(recs), len(back))
		}
		for i := range back {
			if back[i].Step != recs[i].Step || back[i].Stage != recs[i].Stage {
				t.Fatalf("record %d changed in round trip", i)
			}
		}
	})
}
