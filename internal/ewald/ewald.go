// Package ewald implements the Ewald summation for the Coulomb interaction
// under cubic periodic boundary conditions, in the exact conventions of the
// paper (§2):
//
//   - the splitting parameter α is dimensionless; the real-space screening
//     length is L/α where L is the box side (eq. 2);
//   - wavenumber vectors are k_n = n/L with n ∈ Z³ and |n|L ≡ Lk below the
//     cutoff Lk_cut (eq. 3, 13);
//   - the wavenumber sum runs over a half space of N_wv vectors with the
//     conjugate-symmetry factor folded in (eq. 11).
//
// The package provides the float64 reference implementation that the WINE-2
// and MDGRAPE-2 hardware simulators are validated against, plus the
// analytical machinery the paper's Table 4 rests on: the operation-count
// formulas (N_int, N_int_g, N_wv) and the accuracy-preserving α optimizer
// that balances real-space against wavenumber-space work.
package ewald

import (
	"fmt"
	"math"
	"sort"

	"mdm/internal/units"
	"mdm/internal/vec"
)

// Params fixes one Ewald discretization.
type Params struct {
	L     float64 // box side (Å)
	Alpha float64 // dimensionless splitting parameter (paper's α)
	RCut  float64 // real-space cutoff (Å)
	LKCut float64 // dimensionless wavenumber cutoff (paper's Lk_cut)
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.L <= 0 {
		return fmt.Errorf("ewald: box side %g must be positive", p.L)
	}
	if p.Alpha <= 0 {
		return fmt.Errorf("ewald: alpha %g must be positive", p.Alpha)
	}
	if p.RCut <= 0 || p.RCut > p.L {
		return fmt.Errorf("ewald: r_cut %g must be in (0, L=%g]", p.RCut, p.L)
	}
	if p.LKCut <= 0 {
		return fmt.Errorf("ewald: Lk_cut %g must be positive", p.LKCut)
	}
	return nil
}

// The paper's accuracy-control products (derived from Table 4):
// α·r_cut/L ≈ 2.63 fixes the real-space truncation error (erfc(2.63) ≈ 2e-4
// on the potential) and π·Lk_cut/α ≈ 2.37 fixes the matching
// wavenumber-space truncation. All three Table 4 columns satisfy these.
const (
	SReal = 2.633
	SWave = 2.367
)

// ParamsForAlpha returns the discretization at splitting parameter alpha that
// keeps the paper's truncation-error products: r_cut = SReal·L/α and
// Lk_cut = SWave·α/π.
func ParamsForAlpha(l, alpha float64) Params {
	return Params{
		L:     l,
		Alpha: alpha,
		RCut:  SReal * l / alpha,
		LKCut: SWave * alpha / math.Pi,
	}
}

// NInt is the paper's eq. 5: the pairs per particle a conventional computer
// evaluates with Newton's third law, (1/2)(4π/3) r_cut³ ρ.
func (p Params) NInt(density float64) float64 {
	return 0.5 * (4.0 * math.Pi / 3.0) * p.RCut * p.RCut * p.RCut * density
}

// NIntG is the paper's eq. 6: the pairs per particle MDGRAPE-2 evaluates with
// the 27-cell method and no Newton's third law, 27 r_cut³ ρ.
func (p Params) NIntG(density float64) float64 {
	return 27 * p.RCut * p.RCut * p.RCut * density
}

// NWv is the paper's eq. 13: half the number of wavevectors below the
// cutoff, (1/2)(4π/3)(Lk_cut)³.
func (p Params) NWv() float64 {
	return 0.5 * (4.0 * math.Pi / 3.0) * p.LKCut * p.LKCut * p.LKCut
}

// Wave is one wavenumber-space term: the vector k_n = n/L, its integer
// triple, and the Gaussian weight a_n of eq. 12.
type Wave struct {
	N [3]int  // integer components of nL = kL
	K vec.V   // k = n/L (Å⁻¹)
	A float64 // a_n = exp(-π² L² k² / α²) / k²  (Å²)
}

// Waves enumerates the half space of wavevectors with 0 < |n| < Lk_cut.
// Exactly one of each ±n pair is returned (the one whose first non-zero
// component of (z, y, x) is positive), matching the N_wv accounting of
// eq. 13. The deterministic order is by increasing |n|², then lexicographic.
func Waves(p Params) []Wave {
	nmax := int(math.Ceil(p.LKCut))
	cut2 := p.LKCut * p.LKCut
	// Lattice points in the half ball of radius LKCut number ≈ (2π/3)·LKCut³;
	// size for that so the appends below never regrow.
	out := make([]Wave, 0, int(2.1*p.LKCut*cut2)+8)
	for nz := 0; nz <= nmax; nz++ {
		for ny := -nmax; ny <= nmax; ny++ {
			for nx := -nmax; nx <= nmax; nx++ {
				if nz == 0 && (ny < 0 || (ny == 0 && nx <= 0)) {
					continue // keep the half space, drop n = 0
				}
				n2 := float64(nx*nx + ny*ny + nz*nz)
				if n2 >= cut2 {
					continue
				}
				k := vec.New(float64(nx), float64(ny), float64(nz)).Scale(1 / p.L)
				k2 := k.Norm2()
				a := math.Exp(-math.Pi*math.Pi*p.L*p.L*k2/(p.Alpha*p.Alpha)) / k2
				out = append(out, Wave{N: [3]int{nx, ny, nz}, K: k, A: a})
			}
		}
	}
	sortWaves(out)
	return out
}

func sortWaves(ws []Wave) {
	sort.Slice(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		na := a.N[0]*a.N[0] + a.N[1]*a.N[1] + a.N[2]*a.N[2]
		nb := b.N[0]*b.N[0] + b.N[1]*b.N[1] + b.N[2]*b.N[2]
		if na != nb {
			return na < nb
		}
		if a.N[2] != b.N[2] {
			return a.N[2] < b.N[2]
		}
		if a.N[1] != b.N[1] {
			return a.N[1] < b.N[1]
		}
		return a.N[0] < b.N[0]
	})
}

// RealPairForce returns the real-space Coulomb pair force on particle i from
// particle j (eq. 2 integrand): the full vector including the q_i q_j / 4πε0
// prefactor, given the displacement rij = ri - rj. It does not apply any
// cutoff; callers decide which pairs to sum.
func (p Params) RealPairForce(qi, qj float64, rij vec.V) vec.V {
	r2 := rij.Norm2()
	if r2 == 0 {
		return vec.Zero
	}
	r := math.Sqrt(r2)
	ar := p.Alpha * r / p.L
	s := units.Coulomb * qi * qj *
		(math.Erfc(ar)/r + 2*p.Alpha/(math.SqrtPi*p.L)*math.Exp(-ar*ar)) / r2
	return rij.Scale(s)
}

// RealPairEnergy returns the real-space Coulomb pair energy
// q_i q_j erfc(α r/L) / (4πε0 r).
func (p Params) RealPairEnergy(qi, qj float64, rij vec.V) float64 {
	r := rij.Norm()
	if r == 0 {
		return 0
	}
	return units.Coulomb * qi * qj * math.Erfc(p.Alpha*r/p.L) / r
}

// SelfEnergy returns the Ewald self-interaction correction
// -(α / (√π L)) Σ q_i² / 4πε0, which must be added once to the total Coulomb
// energy.
func SelfEnergy(p Params, q []float64) float64 {
	s := 0.0
	for _, qi := range q {
		s += qi * qi
	}
	return -units.Coulomb * p.Alpha / (math.SqrtPi * p.L) * s
}

// StructureFactors computes the DFT of eqs. 9 and 10 in float64:
// S_n = Σ_j q_j sin(2π k_n·r_j) and C_n = Σ_j q_j cos(2π k_n·r_j)
// for every wave. len(pos) must equal len(q).
func StructureFactors(waves []Wave, pos []vec.V, q []float64) (s, c []float64) {
	s = make([]float64, len(waves))
	c = make([]float64, len(waves))
	for w, wv := range waves {
		var sw, cw float64
		for j, r := range pos {
			th := 2 * math.Pi * wv.K.Dot(r)
			sj, cj := math.Sincos(th)
			sw += q[j] * sj
			cw += q[j] * cj
		}
		s[w] = sw
		c[w] = cw
	}
	return s, c
}

// WavenumberForces computes the IDFT of eq. 11 in float64: the
// wavenumber-space Coulomb force on every particle, using precomputed
// structure factors. The returned slice is freshly allocated.
func WavenumberForces(p Params, waves []Wave, s, c []float64, pos []vec.V, q []float64) []vec.V {
	f := make([]vec.V, len(pos))
	pref := 4 * units.Coulomb / (p.L * p.L * p.L) // q_i/(π ε0 L³) with k_e folded in
	for i, r := range pos {
		var acc vec.V
		for w, wv := range waves {
			th := 2 * math.Pi * wv.K.Dot(r)
			si, ci := math.Sincos(th)
			acc = acc.Add(wv.K.Scale(wv.A * (c[w]*si - s[w]*ci)))
		}
		f[i] = acc.Scale(pref * q[i])
	}
	return f
}

// WavenumberEnergy returns the wavenumber-space Coulomb energy
// (1/(4πε0)) (1/πL³) Σ_half a_n (S_n² + C_n²).
func WavenumberEnergy(p Params, waves []Wave, s, c []float64) float64 {
	e := 0.0
	for w := range waves {
		e += waves[w].A * (s[w]*s[w] + c[w]*c[w])
	}
	return units.Coulomb / (math.Pi * p.L * p.L * p.L) * e
}

// Result bundles the output of a full reference Ewald evaluation.
type Result struct {
	Forces    []vec.V // total Coulomb force per particle
	RealE     float64 // real-space energy (within RCut, minimum image + shells)
	WaveE     float64 // wavenumber-space energy
	SelfE     float64 // self-interaction correction
	TotalE    float64 // RealE + WaveE + SelfE
	NWaves    int     // number of half-space wavevectors used
	RealPairs int     // pairs evaluated in the real-space sum
	NetCharge float64 // Σ q (should be ~0; a neutralizing background is assumed)
}

// Compute evaluates the full Ewald Coulomb interaction (forces and energy)
// with float64 reference arithmetic. The real-space part sums every
// minimum-image pair within RCut (O(N²) scan — this is the validation oracle,
// not the production path). For non-neutral systems the uniform-background
// correction is NOT applied; Result.NetCharge exposes the imbalance.
func Compute(p Params, pos []vec.V, q []float64) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if len(pos) != len(q) {
		return Result{}, fmt.Errorf("ewald: %d positions vs %d charges", len(pos), len(q))
	}
	res := Result{Forces: make([]vec.V, len(pos))}
	for _, qi := range q {
		res.NetCharge += qi
	}

	// Real-space part, minimum image. Valid when RCut <= L/2; enforced here
	// because the oracle uses the single nearest image only.
	if p.RCut > p.L/2 {
		return Result{}, fmt.Errorf("ewald: reference real-space sum requires r_cut <= L/2 (got %g > %g)", p.RCut, p.L/2)
	}
	r2cut := p.RCut * p.RCut
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			rij := pos[i].Sub(pos[j]).MinImage(p.L)
			if rij.Norm2() >= r2cut {
				continue
			}
			f := p.RealPairForce(q[i], q[j], rij)
			res.Forces[i] = res.Forces[i].Add(f)
			res.Forces[j] = res.Forces[j].Sub(f)
			res.RealE += p.RealPairEnergy(q[i], q[j], rij)
			res.RealPairs++
		}
	}

	waves := Waves(p)
	res.NWaves = len(waves)
	s, c := StructureFactors(waves, pos, q)
	wf := WavenumberForces(p, waves, s, c, pos, q)
	for i := range res.Forces {
		res.Forces[i] = res.Forces[i].Add(wf[i])
	}
	res.WaveE = WavenumberEnergy(p, waves, s, c)
	res.SelfE = SelfEnergy(p, q)
	res.TotalE = res.RealE + res.WaveE + res.SelfE
	return res, nil
}

// DirectForces computes Coulomb forces by brute-force summation over real
// periodic images out to the given number of image shells, with no Ewald
// splitting. It converges slowly (conditionally) and is only useful as an
// independent oracle for small, neutral systems.
func DirectForces(l float64, pos []vec.V, q []float64, shells int) []vec.V {
	f := make([]vec.V, len(pos))
	for i := range pos {
		for j := range pos {
			for sx := -shells; sx <= shells; sx++ {
				for sy := -shells; sy <= shells; sy++ {
					for sz := -shells; sz <= shells; sz++ {
						if i == j && sx == 0 && sy == 0 && sz == 0 {
							continue
						}
						shift := vec.New(float64(sx)*l, float64(sy)*l, float64(sz)*l)
						rij := pos[i].Sub(pos[j].Add(shift))
						r2 := rij.Norm2()
						r := math.Sqrt(r2)
						f[i] = f[i].Add(rij.Scale(units.Coulomb * q[i] * q[j] / (r2 * r)))
					}
				}
			}
		}
	}
	return f
}
