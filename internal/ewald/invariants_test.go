package ewald

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mdm/internal/vec"
)

// Physical invariants of the Ewald sum, checked property-style.

func invariantSystem(seed int64) ([]vec.V, []float64, Params) {
	rng := rand.New(rand.NewSource(seed))
	const l = 11.0
	const n = 24
	pos := make([]vec.V, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		q[i] = float64(1 - 2*(i%2))
	}
	p := Params{L: l, Alpha: 6, RCut: l / 2, LKCut: 6 * SWave / math.Pi}
	return pos, q, p
}

// Rigid translation of all particles (including across the periodic
// boundary) leaves the total energy invariant and the forces unchanged.
func TestTranslationInvariance(t *testing.T) {
	f := func(seed int64, tx, ty, tz float64) bool {
		if math.IsNaN(tx) || math.IsInf(tx, 0) || math.IsNaN(ty) || math.IsInf(ty, 0) || math.IsNaN(tz) || math.IsInf(tz, 0) {
			return true
		}
		pos, q, p := invariantSystem(seed)
		shift := vec.New(math.Mod(tx, 30), math.Mod(ty, 30), math.Mod(tz, 30))
		shifted := make([]vec.V, len(pos))
		for i := range pos {
			shifted[i] = pos[i].Add(shift).Wrap(p.L)
		}
		a, err := Compute(p, pos, q)
		if err != nil {
			return false
		}
		b, err := Compute(p, shifted, q)
		if err != nil {
			return false
		}
		if math.Abs(a.TotalE-b.TotalE) > 1e-8*(1+math.Abs(a.TotalE)) {
			return false
		}
		fscale := vec.RMS(a.Forces)
		for i := range a.Forces {
			if a.Forces[i].Sub(b.Forces[i]).Norm() > 1e-8*fscale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// Relabeling particles permutes forces identically and leaves the energy
// unchanged.
func TestPermutationInvariance(t *testing.T) {
	f := func(seed int64) bool {
		pos, q, p := invariantSystem(seed)
		a, err := Compute(p, pos, q)
		if err != nil {
			return false
		}
		// Reverse the particle order.
		n := len(pos)
		rpos := make([]vec.V, n)
		rq := make([]float64, n)
		for i := range pos {
			rpos[n-1-i] = pos[i]
			rq[n-1-i] = q[i]
		}
		b, err := Compute(p, rpos, rq)
		if err != nil {
			return false
		}
		if math.Abs(a.TotalE-b.TotalE) > 1e-9*(1+math.Abs(a.TotalE)) {
			return false
		}
		for i := range a.Forces {
			if a.Forces[i].Sub(b.Forces[n-1-i]).Norm() > 1e-9*(1+vec.RMS(a.Forces)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// Charge inversion q → -q leaves energy and forces invariant (both are
// bilinear in charge).
func TestChargeInversionInvariance(t *testing.T) {
	f := func(seed int64) bool {
		pos, q, p := invariantSystem(seed)
		neg := make([]float64, len(q))
		for i := range q {
			neg[i] = -q[i]
		}
		a, err := Compute(p, pos, q)
		if err != nil {
			return false
		}
		b, err := Compute(p, pos, neg)
		if err != nil {
			return false
		}
		if math.Abs(a.TotalE-b.TotalE) > 1e-10*(1+math.Abs(a.TotalE)) {
			return false
		}
		for i := range a.Forces {
			if a.Forces[i].Sub(b.Forces[i]).Norm() > 1e-10*(1+vec.RMS(a.Forces)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// Doubling every charge quadruples the energy and doubles... quadruples the
// forces (bilinearity).
func TestChargeScalingProperty(t *testing.T) {
	f := func(seed int64) bool {
		pos, q, p := invariantSystem(seed)
		dq := make([]float64, len(q))
		for i := range q {
			dq[i] = 2 * q[i]
		}
		a, err := Compute(p, pos, q)
		if err != nil {
			return false
		}
		b, err := Compute(p, pos, dq)
		if err != nil {
			return false
		}
		if math.Abs(b.TotalE-4*a.TotalE) > 1e-9*(1+math.Abs(a.TotalE)) {
			return false
		}
		for i := range a.Forces {
			if b.Forces[i].Sub(a.Forces[i].Scale(4)).Norm() > 1e-9*(1+vec.RMS(a.Forces)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}
