package ewald

import "math"

// Floating-point operation counts per pair interaction, as assessed in §2 of
// the paper (erfc, exp, sqrt, division, sin and cos each count as ten).
const (
	// OpsRealPair is the operations for one real-space Coulomb pair (eq. 2).
	OpsRealPair = 59
	// OpsDFT is the operations per particle-wave term of the DFT (eqs. 9, 10).
	OpsDFT = 29
	// OpsIDFT is the operations per particle-wave term of the IDFT (eq. 11).
	OpsIDFT = 35
	// OpsWavePair is the combined wavenumber-space operations per
	// particle-wave pair: DFT + IDFT.
	OpsWavePair = OpsDFT + OpsIDFT
)

// Geometry factors for the real-space pair count per particle and unit
// (r_cut³ · density).
const (
	// GeomHalfSphere = (1/2)(4π/3): Newton's third law on a conventional
	// computer (eq. 5).
	GeomHalfSphere = 2 * math.Pi / 3
	// GeomCell27 = 27: the cell-index method without Newton's third law on
	// MDGRAPE-2 (eq. 6).
	GeomCell27 = 27
)

// CostModel describes how expensive each half of the Ewald sum is on a given
// machine. Speeds are sustained flop/s of the engine executing that half.
type CostModel struct {
	RealGeom  float64 // GeomHalfSphere or GeomCell27
	SpeedReal float64 // flop/s for the real-space part
	SpeedWave float64 // flop/s for the wavenumber-space part
}

// ConventionalCost is the cost model of the paper's "conventional
// general-purpose computer" column: half-sphere pair counting, and the same
// engine (speed) for both halves so only the ratio matters.
func ConventionalCost() CostModel {
	return CostModel{RealGeom: GeomHalfSphere, SpeedReal: 1, SpeedWave: 1}
}

// StepFlops returns the floating-point operations per time-step of the two
// halves for n particles at the given number density (particles/Å³):
// re = OpsRealPair · n · RealGeom · r_cut³ · ρ and
// wn = OpsWavePair · n · N_wv (eqs. in §2.2–2.3 and Table 4).
func (m CostModel) StepFlops(p Params, n int, density float64) (re, wn float64) {
	nint := m.RealGeom * p.RCut * p.RCut * p.RCut * density
	re = OpsRealPair * float64(n) * nint
	wn = OpsWavePair * float64(n) * p.NWv()
	return re, wn
}

// StepTime returns the execution time of one step under this model assuming
// the two halves run concurrently on their respective engines (the MDM
// schedule): max of the two times.
func (m CostModel) StepTime(p Params, n int, density float64) float64 {
	re, wn := m.StepFlops(p, n, density)
	return math.Max(re/m.SpeedReal, wn/m.SpeedWave)
}

// OptimalAlpha returns the splitting parameter that minimizes
// t(α) = F_re(α)/SpeedReal + F_wn(α)/SpeedWave at fixed accuracy (the SReal
// and SWave truncation products held constant). Because F_re ∝ α⁻³ and
// F_wn ∝ α³, the optimum equalizes the two weighted terms and has the closed
// form α⁶ = (59·RealGeom·(SReal·L)³·ρ·SpeedWave) / (64·(2π/3)·(SWave/π)³·SpeedReal).
//
// With equal speeds and half-sphere geometry this reproduces the paper's
// conventional-computer balance 59 N N_int = 64 N N_wv and α = 30.1; with the
// 27-cell geometry and the MDM speed ratio it reproduces α ≈ 85 (current) and
// α ≈ 50 (future).
func (m CostModel) OptimalAlpha(l, density float64) float64 {
	num := OpsRealPair * m.RealGeom * math.Pow(SReal*l, 3) * density * m.SpeedWave
	den := OpsWavePair * GeomHalfSphere * math.Pow(SWave/math.Pi, 3) * m.SpeedReal
	return math.Pow(num/den, 1.0/6.0)
}

// BalancedParams returns the full discretization at the optimal α.
func (m CostModel) BalancedParams(l, density float64) Params {
	return ParamsForAlpha(l, m.OptimalAlpha(l, density))
}
