package ewald

import (
	"math"
	"math/rand"
	"testing"

	"mdm/internal/units"
	"mdm/internal/vec"
)

// rockSalt builds an nc×nc×nc block of NaCl conventional cells with
// lattice constant a. Charges alternate ±1. Returns positions, charges and
// the box side.
func rockSalt(nc int, a float64) (pos []vec.V, q []float64, l float64) {
	l = float64(nc) * a
	d := a / 2
	for cz := 0; cz < 2*nc; cz++ {
		for cy := 0; cy < 2*nc; cy++ {
			for cx := 0; cx < 2*nc; cx++ {
				pos = append(pos, vec.New(float64(cx)*d, float64(cy)*d, float64(cz)*d))
				if (cx+cy+cz)%2 == 0 {
					q = append(q, 1)
				} else {
					q = append(q, -1)
				}
			}
		}
	}
	return pos, q, l
}

func TestParamsValidate(t *testing.T) {
	good := Params{L: 10, Alpha: 5, RCut: 4, LKCut: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{L: 0, Alpha: 5, RCut: 4, LKCut: 4},
		{L: 10, Alpha: 0, RCut: 4, LKCut: 4},
		{L: 10, Alpha: 5, RCut: 0, LKCut: 4},
		{L: 10, Alpha: 5, RCut: 11, LKCut: 4},
		{L: 10, Alpha: 5, RCut: 4, LKCut: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestParamsForAlphaProducts(t *testing.T) {
	p := ParamsForAlpha(850, 85)
	if math.Abs(p.Alpha*p.RCut/p.L-SReal) > 1e-12 {
		t.Errorf("SReal product = %g", p.Alpha*p.RCut/p.L)
	}
	if math.Abs(math.Pi*p.LKCut/p.Alpha-SWave) > 1e-12 {
		t.Errorf("SWave product = %g", math.Pi*p.LKCut/p.Alpha)
	}
	// Table 4 current column: r_cut = 26.4 Å, Lk_cut = 63.9.
	if math.Abs(p.RCut-26.4) > 0.1 {
		t.Errorf("r_cut = %g, paper: 26.4", p.RCut)
	}
	if math.Abs(p.LKCut-63.9) > 0.3 {
		t.Errorf("Lk_cut = %g, paper: 63.9", p.LKCut)
	}
}

func TestWavesHalfSpace(t *testing.T) {
	p := Params{L: 10, Alpha: 6, RCut: 4, LKCut: 4.5}
	ws := Waves(p)
	seen := map[[3]int]bool{}
	for _, w := range ws {
		if seen[w.N] {
			t.Fatalf("duplicate wave %v", w.N)
		}
		seen[w.N] = true
		neg := [3]int{-w.N[0], -w.N[1], -w.N[2]}
		if seen[neg] {
			t.Fatalf("both %v and %v present", w.N, neg)
		}
		n2 := float64(w.N[0]*w.N[0] + w.N[1]*w.N[1] + w.N[2]*w.N[2])
		if n2 == 0 || n2 >= p.LKCut*p.LKCut {
			t.Fatalf("wave %v outside (0, Lk_cut)", w.N)
		}
		// k = n/L
		if math.Abs(w.K.X-float64(w.N[0])/p.L) > 1e-15 {
			t.Fatalf("K mismatch for %v", w.N)
		}
		// a_n = exp(-π²n²/α²)/k²
		wantA := math.Exp(-math.Pi*math.Pi*n2/(p.Alpha*p.Alpha)) / (n2 / (p.L * p.L))
		if math.Abs(w.A-wantA) > 1e-12*wantA {
			t.Fatalf("A mismatch for %v: %g vs %g", w.N, w.A, wantA)
		}
	}
	// Count ≈ N_wv (eq. 13). Lattice-count fluctuations are O(surface).
	want := p.NWv()
	if math.Abs(float64(len(ws))-want) > 0.2*want {
		t.Errorf("len(waves) = %d, N_wv formula = %g", len(ws), want)
	}
}

func TestWavesSortedDeterministic(t *testing.T) {
	p := Params{L: 10, Alpha: 6, RCut: 4, LKCut: 5}
	a := Waves(p)
	b := Waves(p)
	if len(a) != len(b) {
		t.Fatal("non-deterministic wave count")
	}
	for i := range a {
		if a[i].N != b[i].N {
			t.Fatalf("wave order differs at %d", i)
		}
	}
	for i := 1; i < len(a); i++ {
		n2 := func(w Wave) int { return w.N[0]*w.N[0] + w.N[1]*w.N[1] + w.N[2]*w.N[2] }
		if n2(a[i]) < n2(a[i-1]) {
			t.Fatalf("waves not sorted by |n|² at %d", i)
		}
	}
}

func TestMadelungConstant(t *testing.T) {
	// Total Coulomb energy of rock salt is -M · k_e / d per ion pair with
	// M = 1.747565 (Madelung constant) and d the nearest-neighbor distance.
	const a = 5.64 // Å, NaCl lattice constant
	pos, q, l := rockSalt(2, a)
	p := Params{L: l, Alpha: 7.0, RCut: l / 2, LKCut: 7.0 * SWave / math.Pi}
	res, err := Compute(p, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	pairs := float64(len(pos) / 2)
	perPair := res.TotalE / pairs
	madelung := -perPair * (a / 2) / units.Coulomb
	if math.Abs(madelung-1.747565) > 2e-3 {
		t.Errorf("Madelung constant = %.6f, want 1.747565", madelung)
	}
	// Forces on a perfect lattice vanish by symmetry.
	if f := vec.MaxNorm(res.Forces); f > 1e-4 {
		t.Errorf("max force on perfect crystal = %g, want ~0", f)
	}
	if res.NetCharge != 0 {
		t.Errorf("net charge = %g", res.NetCharge)
	}
}

func TestAlphaIndependence(t *testing.T) {
	// The Ewald total (real + wave + self) must not depend on α up to
	// truncation error. This is the strongest internal consistency check.
	rng := rand.New(rand.NewSource(11))
	const l = 12.0
	const n = 32
	pos := make([]vec.V, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		if i%2 == 0 {
			q[i] = 1
		} else {
			q[i] = -1
		}
	}
	pa := Params{L: l, Alpha: 6, RCut: l / 2, LKCut: 6 * SWave / math.Pi}
	pb := Params{L: l, Alpha: 9, RCut: l / 2 * 0.9, LKCut: 9 * SWave / math.Pi}
	ra, err := Compute(pa, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Compute(pb, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	scale := math.Abs(ra.TotalE)
	if d := math.Abs(ra.TotalE - rb.TotalE); d > 2e-3*scale {
		t.Errorf("energy α-dependence: %g vs %g (Δ=%g)", ra.TotalE, rb.TotalE, d)
	}
	fscale := vec.RMS(ra.Forces)
	for i := range ra.Forces {
		if d := ra.Forces[i].Sub(rb.Forces[i]).Norm(); d > 5e-3*fscale {
			t.Errorf("force α-dependence on %d: Δ=%g (scale %g)", i, d, fscale)
		}
	}
}

func TestForceIsEnergyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const l = 10.0
	const n = 16
	pos := make([]vec.V, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		if i%2 == 0 {
			q[i] = 1
		} else {
			q[i] = -1
		}
	}
	p := Params{L: l, Alpha: 6, RCut: l / 2, LKCut: 6 * SWave / math.Pi}
	res, err := Compute(p, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	// Central difference on particle 0, x component.
	const h = 1e-5
	energyAt := func(dx float64) float64 {
		p2 := append([]vec.V(nil), pos...)
		p2[0] = p2[0].Add(vec.New(dx, 0, 0))
		r, err := Compute(p, p2, q)
		if err != nil {
			t.Fatal(err)
		}
		return r.TotalE
	}
	grad := (energyAt(h) - energyAt(-h)) / (2 * h)
	want := -grad
	got := res.Forces[0].X
	if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
		t.Errorf("F_x = %g, -dE/dx = %g", got, want)
	}
}

func TestNewtonThirdLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const l = 9.0
	pos := make([]vec.V, 20)
	q := make([]float64, 20)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		q[i] = float64(1 - 2*(i%2))
	}
	p := Params{L: l, Alpha: 6, RCut: l / 2, LKCut: 5}
	res, err := Compute(p, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	total := vec.Sum(res.Forces)
	if total.Norm() > 1e-9*float64(len(pos))*vec.RMS(res.Forces) {
		t.Errorf("net force = %v, want ~0", total)
	}
}

func TestStructureFactorsLinearity(t *testing.T) {
	p := Params{L: 8, Alpha: 5, RCut: 4, LKCut: 4}
	waves := Waves(p)
	pos := []vec.V{vec.New(1, 2, 3), vec.New(4, 5, 6)}
	q := []float64{1, -1}
	s1, c1 := StructureFactors(waves, pos, q)
	q2 := []float64{2, -2}
	s2, c2 := StructureFactors(waves, pos, q2)
	for w := range waves {
		if math.Abs(s2[w]-2*s1[w]) > 1e-12 || math.Abs(c2[w]-2*c1[w]) > 1e-12 {
			t.Fatalf("structure factors not linear in charge at wave %d", w)
		}
	}
	s0, c0 := StructureFactors(waves, pos, []float64{0, 0})
	for w := range waves {
		if s0[w] != 0 || c0[w] != 0 {
			t.Fatalf("zero charges gave non-zero structure factor at %d", w)
		}
	}
}

func TestSelfEnergyNegative(t *testing.T) {
	p := Params{L: 10, Alpha: 6, RCut: 5, LKCut: 4}
	e := SelfEnergy(p, []float64{1, -1, 1, -1})
	if e >= 0 {
		t.Errorf("self energy = %g, want negative", e)
	}
	want := -units.Coulomb * 6 / (math.SqrtPi * 10) * 4
	if math.Abs(e-want) > 1e-12*math.Abs(want) {
		t.Errorf("self energy = %g, want %g", e, want)
	}
}

func TestComputeErrors(t *testing.T) {
	p := Params{L: 10, Alpha: 6, RCut: 5, LKCut: 4}
	if _, err := Compute(p, make([]vec.V, 3), make([]float64, 2)); err == nil {
		t.Error("length mismatch accepted")
	}
	p.RCut = 6 // > L/2
	if _, err := Compute(p, make([]vec.V, 2), make([]float64, 2)); err == nil {
		t.Error("r_cut > L/2 accepted by the minimum-image oracle")
	}
}

func TestDirectForcesAgreeOnDimer(t *testing.T) {
	// Two opposite charges far from the box edges: the nearest-image term
	// dominates; Ewald and the direct image sum must agree on the force.
	l := 40.0
	pos := []vec.V{vec.New(19, 20, 20), vec.New(21.5, 20, 20)}
	q := []float64{1, -1}
	p := Params{L: l, Alpha: 8, RCut: l / 2 * 0.9, LKCut: 8 * SWave / math.Pi}
	res, err := Compute(p, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	direct := DirectForces(l, pos, q, 6)
	// Attraction along +x on particle 0.
	if res.Forces[0].X <= 0 {
		t.Errorf("force not attractive: %v", res.Forces[0])
	}
	d := res.Forces[0].Sub(direct[0]).Norm()
	if d > 2e-2*direct[0].Norm() {
		t.Errorf("Ewald vs direct force differ: %v vs %v", res.Forces[0], direct[0])
	}
}

func TestNIntFormulas(t *testing.T) {
	// Table 4, current column: ρ = 1.88e7/850³, r_cut = 26.4 → N_int_g = 1.52e4.
	density := 1.88e7 / (850.0 * 850.0 * 850.0)
	p := Params{L: 850, Alpha: 85, RCut: 26.4, LKCut: 63.9}
	if got := p.NIntG(density); math.Abs(got-1.52e4) > 0.02e4 {
		t.Errorf("N_int_g = %g, paper: 1.52e4", got)
	}
	if got := p.NWv(); math.Abs(got-5.46e5) > 0.02e5 {
		t.Errorf("N_wv = %g, paper: 5.46e5", got)
	}
	// Conventional column: r_cut = 74.4 → N_int = 2.65e4, Lk_cut=22.7 → N_wv = 2.44e4.
	pc := Params{L: 850, Alpha: 30.1, RCut: 74.4, LKCut: 22.7}
	if got := pc.NInt(density); math.Abs(got-2.65e4) > 0.03e4 {
		t.Errorf("N_int = %g, paper: 2.65e4", got)
	}
	if got := pc.NWv(); math.Abs(got-2.44e4) > 0.03e4 {
		t.Errorf("N_wv = %g, paper: 2.44e4", got)
	}
}

func TestOptimalAlphaConventional(t *testing.T) {
	density := 1.88e7 / (850.0 * 850.0 * 850.0)
	alpha := ConventionalCost().OptimalAlpha(850, density)
	if math.Abs(alpha-30.1) > 0.5 {
		t.Errorf("conventional optimal α = %g, paper: 30.1", alpha)
	}
}

func TestOptimalAlphaMDM(t *testing.T) {
	density := 1.88e7 / (850.0 * 850.0 * 850.0)
	// Current MDM: 27-cell geometry, 1 Tflops MDGRAPE-2 vs 45 Tflops WINE-2.
	cur := CostModel{RealGeom: GeomCell27, SpeedReal: 1e12, SpeedWave: 45e12}
	a := cur.OptimalAlpha(850, density)
	if a < 75 || a > 95 {
		t.Errorf("current MDM optimal α = %g, paper: 85", a)
	}
	// Future MDM: 25 vs 54 Tflops.
	fut := CostModel{RealGeom: GeomCell27, SpeedReal: 25e12, SpeedWave: 54e12}
	af := fut.OptimalAlpha(850, density)
	if af < 45 || af > 58 {
		t.Errorf("future MDM optimal α = %g, paper: 50.3", af)
	}
	// At the optimum the weighted costs balance.
	p := cur.BalancedParams(850, density)
	re, wn := cur.StepFlops(p, 1.88e7, density)
	if r := (re / cur.SpeedReal) / (wn / cur.SpeedWave); math.Abs(r-1) > 1e-6 {
		t.Errorf("weighted costs not balanced at optimum: ratio %g", r)
	}
}

func TestStepFlopsTable4(t *testing.T) {
	const n = 18821096 // paper's particle count (9,410,548 pairs)
	density := float64(n) / (850.0 * 850.0 * 850.0)
	// Current MDM column.
	p := Params{L: 850, Alpha: 85, RCut: 26.4, LKCut: 63.9}
	m := CostModel{RealGeom: GeomCell27, SpeedReal: 1, SpeedWave: 1}
	re, wn := m.StepFlops(p, n, density)
	if math.Abs(re-1.69e13) > 0.05e13 {
		t.Errorf("real flops = %g, paper: 1.69e13", re)
	}
	if math.Abs(wn-6.58e14) > 0.05e14 {
		t.Errorf("wave flops = %g, paper: 6.58e14", wn)
	}
}

func BenchmarkStructureFactors(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const l = 20.0
	pos := make([]vec.V, 500)
	q := make([]float64, 500)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		q[i] = float64(1 - 2*(i%2))
	}
	p := Params{L: l, Alpha: 8, RCut: 9, LKCut: 8}
	waves := Waves(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StructureFactors(waves, pos, q)
	}
}

func BenchmarkComputeReference(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const l = 15.0
	pos := make([]vec.V, 200)
	q := make([]float64, 200)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		q[i] = float64(1 - 2*(i%2))
	}
	p := Params{L: l, Alpha: 7, RCut: 7, LKCut: 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(p, pos, q); err != nil {
			b.Fatal(err)
		}
	}
}
