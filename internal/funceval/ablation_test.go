package funceval

import (
	"math"
	"testing"
)

// Ablation: why MDGRAPE-2 uses 1,024 segments of FOURTH-order interpolation
// (§3.5.4). Lower order or fewer segments on the same kernel must cost
// accuracy; the shipped choice reaches single-precision level.

// tableError builds a table with the given segment count and probes the
// Ewald real-space kernel.
func tableError(t *testing.T, nseg int) float64 {
	t.Helper()
	g := func(x float64) float64 {
		return 2*math.Exp(-x)/(math.SqrtPi*x) + math.Erfc(math.Sqrt(x))/(x*math.Sqrt(x))
	}
	tbl, err := NewTable(g, -16, 16, nseg)
	if err != nil {
		t.Fatal(err)
	}
	return tbl.MaxRelError(g, 1e-2, 10, 8000, 0)
}

func TestAblationSegments(t *testing.T) {
	e1024 := tableError(t, 1024)
	e256 := tableError(t, 256)
	e64 := tableError(t, 64)
	t.Logf("segments 1024: %.2e, 256: %.2e, 64: %.2e", e1024, e256, e64)
	if e256 < e1024 || e64 < e256 {
		t.Errorf("error did not grow with coarser tables: %g %g %g", e1024, e256, e64)
	}
	// Fourth-order convergence: 4x fewer segments per octave costs up to
	// ~4^5 = 1024x; demand at least ~30x between 1024 and 64 segments.
	if e64 < 30*e1024 {
		t.Errorf("segment ablation not sensitive: %g vs %g", e64, e1024)
	}
	// The production table is at single-precision level.
	if e1024 > 2e-6 {
		t.Errorf("production table error %g above single-precision level", e1024)
	}
}

// linearTable mimics a first-order (2-point) evaluator on the same segment
// layout, for the order ablation.
func linearEval(t *testing.T, g func(float64) float64, nseg int, x float64) float64 {
	t.Helper()
	tbl, err := NewTable(g, -16, 16, nseg)
	if err != nil {
		t.Fatal(err)
	}
	seg, u := tbl.segmentIndex(x)
	lo, hi := tbl.segmentBounds(seg)
	gl, gh := g(lo), g(hi)
	return gl + (gh-gl)*u
}

func TestAblationOrder(t *testing.T) {
	g := func(x float64) float64 {
		return 2*math.Exp(-x)/(math.SqrtPi*x) + math.Erfc(math.Sqrt(x))/(x*math.Sqrt(x))
	}
	tbl, err := NewTable(g, -16, 16, 1024)
	if err != nil {
		t.Fatal(err)
	}
	worst4, worst1 := 0.0, 0.0
	for i := 0; i < 4000; i++ {
		x := math.Exp(math.Log(1e-2) + (math.Log(10)-math.Log(1e-2))*float64(i)/4000)
		want := g(x)
		if e := math.Abs(tbl.Eval64(x)-want) / math.Abs(want); e > worst4 {
			worst4 = e
		}
		if e := math.Abs(linearEval(t, g, 1024, x)-want) / math.Abs(want); e > worst1 {
			worst1 = e
		}
	}
	t.Logf("order 4: %.2e, order 1 (same segments): %.2e", worst4, worst1)
	if worst1 < 100*worst4 {
		t.Errorf("fourth order only %gx better than linear", worst1/worst4)
	}
}
