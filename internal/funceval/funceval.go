// Package funceval implements the MDGRAPE-2 function evaluator: a segmented
// polynomial interpolator for an arbitrary central force g(x).
//
// The paper (§3.5.4) describes the unit as "fourth-order interpolation
// segmented by 1,024 region[s]" whose coefficients live in a RAM, so that
// "we can use any arbitrary central force by changing the contents of the
// RAM". Like the real hardware (and its MD-GRAPE predecessor), segments are
// addressed from the floating-point representation of the argument: the
// exponent selects an octave [2^e, 2^(e+1)) and the mantissa's top bits
// select an equal subdivision of that octave, giving pseudo-logarithmic
// spacing that matches the dynamic range of force kernels such as
// erfc-screened Coulomb and Lennard-Jones.
//
// Arithmetic mirrors the chip: the argument and the stored coefficients are
// IEEE-754 single precision, the polynomial is evaluated in single precision
// (Horner), and only the final force accumulation (done by the caller)
// is double precision. The resulting relative accuracy is ~1e-7, as quoted in
// the paper.
package funceval

import (
	"fmt"
	"math"
)

// Order is the interpolation order used by the MDGRAPE-2 evaluator.
const Order = 4

// DefaultSegments is the number of interpolation regions in the MDGRAPE-2
// function-evaluator RAM.
const DefaultSegments = 1024

// Table holds the coefficient RAM for one function g(x).
type Table struct {
	emin, emax int     // domain is [2^emin, 2^emax)
	lo, hi     float64 // cached 2^emin, 2^emax: Eval runs once per pair per pass
	segPerOct  int     // segments per octave
	coeff      [][Order + 1]float32
	highValue  float32 // returned for x >= 2^emax (hardware cutoff tail)
}

// NewTable builds a coefficient table for g over the domain [2^emin, 2^emax)
// using nseg segments. nseg must be a positive multiple of (emax-emin).
// Outside the domain, Eval returns g evaluated at the domain minimum for
// 0 < x < 2^emin (clamp), and highValue — normally 0, the hardware's implicit
// cutoff — for x >= 2^emax.
//
// g must be finite over the open domain; the fitter samples it only at
// interior Chebyshev nodes, so integrable endpoint singularities at exactly
// 2^emin are tolerated.
func NewTable(g func(float64) float64, emin, emax, nseg int) (*Table, error) {
	if emax <= emin {
		return nil, fmt.Errorf("funceval: empty exponent range [%d,%d)", emin, emax)
	}
	oct := emax - emin
	if nseg <= 0 || nseg%oct != 0 {
		return nil, fmt.Errorf("funceval: nseg %d is not a positive multiple of %d octaves", nseg, oct)
	}
	t := &Table{
		emin:      emin,
		emax:      emax,
		lo:        math.Ldexp(1, emin),
		hi:        math.Ldexp(1, emax),
		segPerOct: nseg / oct,
		coeff:     make([][Order + 1]float32, nseg),
		highValue: 0,
	}
	for s := 0; s < nseg; s++ {
		lo, hi := t.segmentBounds(s)
		c, err := fitSegment(g, lo, hi)
		if err != nil {
			return nil, fmt.Errorf("funceval: segment %d [%g,%g): %w", s, lo, hi, err)
		}
		t.coeff[s] = c
	}
	return t, nil
}

// MustNewTable is NewTable but panics on error; for statically valid tables.
func MustNewTable(g func(float64) float64, emin, emax, nseg int) *Table {
	t, err := NewTable(g, emin, emax, nseg)
	if err != nil {
		panic(err)
	}
	return t
}

// Segments returns the number of interpolation regions.
func (t *Table) Segments() int { return len(t.coeff) }

// Domain returns the representable argument range [lo, hi).
func (t *Table) Domain() (lo, hi float64) { return t.lo, t.hi }

// segmentBounds returns the argument interval covered by segment s.
func (t *Table) segmentBounds(s int) (lo, hi float64) {
	oct := s / t.segPerOct
	sub := s % t.segPerOct
	base := math.Ldexp(1, t.emin+oct)
	w := base / float64(t.segPerOct)
	lo = base + float64(sub)*w
	hi = lo + w
	return lo, hi
}

// segmentIndex maps a positive argument inside the domain to its segment and
// the local coordinate u in [0,1). For a normal argument the exponent and
// mantissa come straight from the IEEE-754 word — the addressing the hardware
// performs on the argument's floating-point representation — which yields
// exactly frexp's decomposition (octave e, mantissa position frac·2−1, both
// exact operations) without frexp's call and normalization overhead.
func (t *Table) segmentIndex(x float64) (seg int, u float64) {
	const expMask = uint64(0x7ff) << 52
	bits := math.Float64bits(x)
	biased := int(bits >> 52 & 0x7ff)
	var e int
	var m float64
	if biased != 0 {
		e = biased - 1023
		m = math.Float64frombits(bits&^expMask|(1023<<52)) - 1
	} else {
		// Subnormal argument (a domain bottom below 2^-1022): the exponent
		// field carries no information, fall back to the general decomposition.
		frac, exp := math.Frexp(x) // x = frac * 2^exp, frac in [0.5, 1)
		e = exp - 1                // octave exponent: x in [2^e, 2^(e+1))
		m = frac*2 - 1             // mantissa position in the octave, [0, 1)
	}
	pos := m * float64(t.segPerOct)
	sub := int(pos)
	if sub >= t.segPerOct { // guard against rounding at the octave edge
		sub = t.segPerOct - 1
	}
	return (e-t.emin)*t.segPerOct + sub, pos - float64(sub)
}

// fitSegment computes interpolation coefficients for g on [lo, hi) in the
// local coordinate u = (x-lo)/(hi-lo), by exact interpolation at Order+1
// Chebyshev nodes.
func fitSegment(g func(float64) float64, lo, hi float64) ([Order + 1]float32, error) {
	var nodes [Order + 1]float64
	var vals [Order + 1]float64
	n := Order + 1
	for i := 0; i < n; i++ {
		// Chebyshev nodes of the first kind mapped to (0, 1).
		u := 0.5 - 0.5*math.Cos(math.Pi*(float64(i)+0.5)/float64(n))
		nodes[i] = u
		x := lo + u*(hi-lo)
		v := g(x)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return [Order + 1]float32{}, fmt.Errorf("g(%g) is not finite", x)
		}
		vals[i] = v
	}
	c, err := solveVandermonde(nodes, vals)
	if err != nil {
		return [Order + 1]float32{}, err
	}
	var c32 [Order + 1]float32
	for i, v := range c {
		c32[i] = float32(v)
	}
	return c32, nil
}

// solveVandermonde solves sum_j c_j u_i^j = v_i by Gaussian elimination with
// partial pivoting. The system is tiny (5x5) and well-conditioned for
// Chebyshev nodes on [0,1].
func solveVandermonde(u, v [Order + 1]float64) ([Order + 1]float64, error) {
	const n = Order + 1
	var a [n][n + 1]float64
	for i := 0; i < n; i++ {
		p := 1.0
		for j := 0; j < n; j++ {
			a[i][j] = p
			p *= u[i]
		}
		a[i][n] = v[i]
	}
	for col := 0; col < n; col++ {
		// pivot
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if a[piv][col] == 0 {
			return [n]float64{}, fmt.Errorf("singular Vandermonde system")
		}
		a[col], a[piv] = a[piv], a[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	var x [n]float64
	for i := n - 1; i >= 0; i-- {
		s := a[i][n]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x, nil
}

// Eval evaluates the table at x using single-precision arithmetic, modelling
// the hardware datapath. Arguments at or below zero return 0 (the hardware
// never produces a self-force because r⃗ = 0 there; returning 0 keeps the
// simulated pipeline free of NaNs). Arguments below the domain clamp to the
// domain minimum; arguments at or above the domain maximum return the
// high-side tail value (0 by default — the implicit cutoff).
func (t *Table) Eval(x float32) float32 {
	xf := float64(x) //mdm:float64ok -- exact widening used only for segment addressing, not arithmetic
	if !(xf > 0) {   // also rejects NaN, which fails every comparison
		return 0
	}
	if xf >= t.hi {
		return t.highValue
	}
	if xf < t.lo {
		xf = t.lo
	}
	seg, u := t.segmentIndex(xf)
	c := &t.coeff[seg]
	// Horner in float32, unrolled over the fixed quartic order (the same
	// operation sequence as the loop form, so the same bits).
	uu := float32(u)
	r := c[4]*uu + c[3]
	r = r*uu + c[2]
	r = r*uu + c[1]
	r = r*uu + c[0]
	return r
}

// Eval64 is a float64 convenience wrapper around Eval. The argument is first
// rounded to float32, as the hardware interface would.
func (t *Table) Eval64(x float64) float64 { return float64(t.Eval(float32(x))) }

// SetHighValue overrides the value returned for arguments at or beyond the
// domain maximum. The hardware default is 0 (implicit cutoff).
func (t *Table) SetHighValue(v float32) { t.highValue = v }

// MaxRelError probes the table against the exact g at n log-uniformly spaced
// points inside [lo, hi) ⊆ domain and returns the maximum relative error with
// the given floor on |g| (see units.RelativeError for the convention).
func (t *Table) MaxRelError(g func(float64) float64, lo, hi float64, n int, floor float64) float64 {
	dlo, dhi := t.Domain()
	if lo < dlo {
		lo = dlo
	}
	if hi > dhi {
		hi = dhi
	}
	maxErr := 0.0
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := 0; i < n; i++ {
		x := math.Exp(llo + (lhi-llo)*(float64(i)+0.5)/float64(n))
		want := g(x)
		got := t.Eval64(x)
		d := math.Abs(got - want)
		m := math.Abs(want)
		if m < floor {
			m = floor
		}
		if m == 0 {
			continue
		}
		if e := d / m; e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}
