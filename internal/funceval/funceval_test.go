package funceval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewTableValidation(t *testing.T) {
	g := func(x float64) float64 { return x }
	if _, err := NewTable(g, 4, 4, 1024); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewTable(g, 0, 3, 1000); err == nil {
		t.Error("nseg not multiple of octaves accepted")
	}
	if _, err := NewTable(g, 0, 3, 0); err == nil {
		t.Error("zero segments accepted")
	}
	if _, err := NewTable(func(x float64) float64 { return math.Inf(1) }, 0, 1, 8); err == nil {
		t.Error("non-finite g accepted")
	}
}

func TestMustNewTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewTable did not panic on invalid input")
		}
	}()
	MustNewTable(func(x float64) float64 { return x }, 4, 4, 1024)
}

func TestSegmentBoundsCoverDomain(t *testing.T) {
	tbl := MustNewTable(func(x float64) float64 { return x }, -4, 4, 256)
	lo, hi := tbl.Domain()
	if lo != 1.0/16 || hi != 16 {
		t.Fatalf("domain = [%g,%g)", lo, hi)
	}
	prevHi := lo
	for s := 0; s < tbl.Segments(); s++ {
		slo, shi := tbl.segmentBounds(s)
		if slo != prevHi {
			t.Fatalf("segment %d starts at %g, want %g (gap/overlap)", s, slo, prevHi)
		}
		if shi <= slo {
			t.Fatalf("segment %d empty: [%g,%g)", s, slo, shi)
		}
		prevHi = shi
	}
	if prevHi != hi {
		t.Fatalf("segments end at %g, want %g", prevHi, hi)
	}
}

func TestSegmentIndexRoundTrip(t *testing.T) {
	tbl := MustNewTable(func(x float64) float64 { return x }, -8, 8, 512)
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		lo, hi := tbl.Domain()
		// map raw into the domain log-uniformly
		u := math.Abs(math.Mod(raw, 1.0))
		x := lo * math.Exp(u*math.Log(hi/lo)*0.999)
		seg, local := tbl.segmentIndex(x)
		if seg < 0 || seg >= tbl.Segments() || local < 0 || local >= 1 {
			return false
		}
		slo, shi := tbl.segmentBounds(seg)
		return x >= slo*(1-1e-12) && x < shi*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolynomialExact(t *testing.T) {
	// A 4th-order polynomial must be reproduced to float32 precision.
	g := func(x float64) float64 { return 1 + x*(0.5+x*(0.25+x*(0.125+x*0.0625))) }
	tbl := MustNewTable(g, -2, 2, 64)
	if e := tbl.MaxRelError(g, 0.25, 4, 4096, 0); e > 5e-7 {
		t.Errorf("poly rel error = %g, want float32-level", e)
	}
}

func TestEwaldKernelAccuracy(t *testing.T) {
	// The real-space Ewald kernel of §3.5.4:
	// g(x) = 2 exp(-x)/(sqrt(pi) x) + erfc(sqrt(x)) / x^(3/2)
	g := func(x float64) float64 {
		return 2*math.Exp(-x)/(math.SqrtPi*x) + math.Erfc(math.Sqrt(x))/(x*math.Sqrt(x))
	}
	tbl := MustNewTable(g, -16, 16, DefaultSegments)
	// Paper quotes ~1e-7 relative accuracy for the pipeline; the evaluator
	// itself should be at that level over the physically used range.
	if e := tbl.MaxRelError(g, 1e-4, 30, 20000, 0); e > 3e-6 {
		t.Errorf("Ewald kernel rel error = %g", e)
	}
	if e := tbl.MaxRelError(g, 1e-2, 10, 20000, 0); e > 1e-6 {
		t.Errorf("Ewald kernel rel error (core range) = %g", e)
	}
}

func TestLJKernelAccuracy(t *testing.T) {
	// van der Waals kernel (eq. 4 rewritten per §3.5.4): g(x) = 2x^-7 - x^-4.
	g := func(x float64) float64 { return 2*math.Pow(x, -7) - math.Pow(x, -4) }
	tbl := MustNewTable(g, -4, 12, DefaultSegments)
	// Relative to local magnitude with a floor: near the zero crossing
	// (x = 2^(1/3)) g itself vanishes while the float32 coefficients carry
	// ~1e-7 of the O(1) repulsive scale, so the floored relative error there
	// is bounded by (float32 eps × O(1))/floor ≈ 1e-4, not 1e-7.
	if e := tbl.MaxRelError(g, 0.5, 8, 20000, 1e-3); e > 1e-4 {
		t.Errorf("LJ kernel error = %g", e)
	}
	// Away from the crossing the evaluator is at single-precision level.
	if e := tbl.MaxRelError(g, 0.5, 1.2, 20000, 0); e > 3e-6 {
		t.Errorf("LJ kernel error (repulsive branch) = %g", e)
	}
}

func TestEvalOutOfRange(t *testing.T) {
	g := func(x float64) float64 { return 1 / x }
	tbl := MustNewTable(g, -4, 4, 128)
	if got := tbl.Eval(0); got != 0 {
		t.Errorf("Eval(0) = %g, want 0", got)
	}
	if got := tbl.Eval(-1); got != 0 {
		t.Errorf("Eval(-1) = %g, want 0", got)
	}
	if got := tbl.Eval(float32(math.NaN())); got != 0 {
		t.Errorf("Eval(NaN) = %g, want 0", got)
	}
	// Beyond the high edge: implicit cutoff.
	if got := tbl.Eval(16); got != 0 {
		t.Errorf("Eval(16) = %g, want 0 (cutoff)", got)
	}
	tbl.SetHighValue(7)
	if got := tbl.Eval(1e9); got != 7 {
		t.Errorf("Eval(1e9) = %g, want 7 after SetHighValue", got)
	}
	// Below the low edge: clamp.
	lo, _ := tbl.Domain()
	want := tbl.Eval64(lo)
	if got := tbl.Eval64(lo / 1024); math.Abs(got-want) > 1e-6*math.Abs(want) {
		t.Errorf("Eval below domain = %g, want clamp to %g", got, want)
	}
}

func TestEvalContinuityAcrossSegments(t *testing.T) {
	g := func(x float64) float64 { return math.Exp(-x) / x }
	tbl := MustNewTable(g, -6, 6, 384)
	// At each segment boundary the two polynomial pieces must agree with g,
	// so their mutual jump must be tiny.
	for s := 0; s+1 < tbl.Segments(); s++ {
		_, hi := tbl.segmentBounds(s)
		x := hi
		left := tbl.Eval64(math.Nextafter(x, 0))
		right := tbl.Eval64(x)
		if d := math.Abs(left - right); d > 2e-6*(math.Abs(right)+1e-30) {
			t.Fatalf("discontinuity %g at segment %d boundary x=%g", d, s, x)
		}
	}
}

// Property: the evaluator is deterministic and finite over its domain.
func TestEvalFiniteProperty(t *testing.T) {
	g := func(x float64) float64 { return math.Erfc(math.Sqrt(x)) / (x + 1e-9) }
	tbl := MustNewTable(g, -10, 10, 640)
	f := func(x float32) bool {
		v := tbl.Eval(x)
		w := tbl.Eval(x)
		return v == w && !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultSegmentsIs1024(t *testing.T) {
	// Guard the paper-specified constant (§3.5.4).
	if DefaultSegments != 1024 {
		t.Errorf("DefaultSegments = %d, want 1024", DefaultSegments)
	}
	if Order != 4 {
		t.Errorf("Order = %d, want 4", Order)
	}
}

func BenchmarkEval(b *testing.B) {
	g := func(x float64) float64 {
		return 2*math.Exp(-x)/(math.SqrtPi*x) + math.Erfc(math.Sqrt(x))/(x*math.Sqrt(x))
	}
	tbl := MustNewTable(g, -16, 16, DefaultSegments)
	var sink float32
	for i := 0; i < b.N; i++ {
		sink = tbl.Eval(float32(i%1000)*0.01 + 0.001)
	}
	_ = sink
}

func BenchmarkEvalVsMathExact(b *testing.B) {
	g := func(x float64) float64 {
		return 2*math.Exp(-x)/(math.SqrtPi*x) + math.Erfc(math.Sqrt(x))/(x*math.Sqrt(x))
	}
	b.Run("table", func(b *testing.B) {
		tbl := MustNewTable(g, -16, 16, DefaultSegments)
		var sink float32
		for i := 0; i < b.N; i++ {
			sink = tbl.Eval(float32(i%1000)*0.01 + 0.001)
		}
		_ = sink
	})
	b.Run("exact", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink = g(float64(i%1000)*0.01 + 0.001)
		}
		_ = sink
	})
}

// TestSegmentIndexMatchesFrexp pins the bit-field segment addressing to the
// frexp decomposition it replaced, across octave edges, segment edges and
// values one ulp either side of them.
func TestSegmentIndexMatchesFrexp(t *testing.T) {
	tbl := MustNewTable(func(x float64) float64 { return 1 / x }, -20, 12, DefaultSegments)
	ref := func(x float64) (int, float64) {
		frac, exp := math.Frexp(x)
		e := exp - 1
		m := frac*2 - 1
		pos := m * float64(tbl.segPerOct)
		sub := int(pos)
		if sub >= tbl.segPerOct {
			sub = tbl.segPerOct - 1
		}
		return (e-tbl.emin)*tbl.segPerOct + sub, pos - float64(sub)
	}
	probe := func(x float64) {
		t.Helper()
		lo, hi := tbl.Domain()
		if x < lo || x >= hi {
			return
		}
		gs, gu := tbl.segmentIndex(x)
		ws, wu := ref(x)
		if gs != ws || gu != wu {
			t.Fatalf("segmentIndex(%g) = (%d, %v), frexp path gives (%d, %v)", x, gs, gu, ws, wu)
		}
	}
	for s := 0; s < tbl.Segments(); s++ {
		lo, hi := tbl.segmentBounds(s)
		for _, x := range []float64{lo, math.Nextafter(lo, 0), math.Nextafter(lo, hi),
			(lo + hi) / 2, math.Nextafter(hi, lo), hi} {
			probe(x)
		}
	}
}

// TestSegmentIndexSubnormalFallback exercises the non-normal branch: a table
// whose domain bottom sits in the subnormal range must still address exactly
// as the frexp decomposition does.
func TestSegmentIndexSubnormalFallback(t *testing.T) {
	tbl := MustNewTable(func(x float64) float64 { return 1 }, -1030, -1020, 10)
	for _, x := range []float64{math.Ldexp(1, -1030), math.Ldexp(1.5, -1028), math.Ldexp(1, -1023)} {
		frac, exp := math.Frexp(x)
		e := exp - 1
		pos := (frac*2 - 1) * float64(tbl.segPerOct)
		sub := int(pos)
		if sub >= tbl.segPerOct {
			sub = tbl.segPerOct - 1
		}
		ws, wu := (e-tbl.emin)*tbl.segPerOct+sub, pos-float64(sub)
		gs, gu := tbl.segmentIndex(x)
		if gs != ws || gu != wu {
			t.Fatalf("segmentIndex(%g) = (%d, %v), frexp path gives (%d, %v)", x, gs, gu, ws, wu)
		}
	}
}
