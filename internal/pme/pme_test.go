package pme

import (
	"math"
	"math/rand"
	"testing"

	"mdm/internal/ewald"
	"mdm/internal/vec"
)

func testSystem(n int, l float64, seed int64) ([]vec.V, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]vec.V, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		q[i] = float64(1 - 2*(i%2))
	}
	return pos, q
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 6, 32, 4); err == nil {
		t.Error("zero box accepted")
	}
	if _, err := New(10, 0, 32, 4); err == nil {
		t.Error("zero alpha accepted")
	}
	if _, err := New(10, 6, 30, 4); err == nil {
		t.Error("non-pow2 mesh accepted")
	}
	if _, err := New(10, 6, 32, 2); err == nil {
		t.Error("order 2 accepted")
	}
	if _, err := New(10, 6, 4, 8); err == nil {
		t.Error("order > K accepted")
	}
}

func TestBsplinePartitionOfUnity(t *testing.T) {
	// Σ_t M_p(frac + t) = 1 for any frac — the defining property that makes
	// charge spreading conservative.
	for _, p := range []int{3, 4, 5, 6} {
		for frac := 0.0; frac < 1.0; frac += 0.01 {
			sum := 0.0
			for tt := 0; tt < p; tt++ {
				sum += bspline(p, frac+float64(tt))
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("order %d: Σ M(frac=%g + t) = %g", p, frac, sum)
			}
		}
	}
}

func TestBsplineDerivative(t *testing.T) {
	const h = 1e-7
	for _, p := range []int{3, 4, 5} {
		for _, u := range []float64{0.5, 1.0, 1.7, 2.3, float64(p) - 0.4} {
			want := (bspline(p, u+h) - bspline(p, u-h)) / (2 * h)
			got := bsplineDeriv(p, u)
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Errorf("order %d: M'(%g) = %g, finite diff %g", p, u, got, want)
			}
		}
	}
}

func TestEnergyMatchesReference(t *testing.T) {
	const l = 12.0
	const alpha = 6.0
	pos, q := testSystem(48, l, 1)
	// Reference with generous cutoff (fully converged at this α).
	p := ewald.Params{L: l, Alpha: alpha, RCut: 5, LKCut: 8}
	waves := ewald.Waves(p)
	sn, cn := ewald.StructureFactors(waves, pos, q)
	wantE := ewald.WavenumberEnergy(p, waves, sn, cn)

	m, err := New(l, alpha, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Compute(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-wantE) > 2e-3*math.Abs(wantE) {
		t.Errorf("PME energy = %g, reference %g", res.Energy, wantE)
	}
	t.Logf("PME energy error = %.2e relative", math.Abs(res.Energy-wantE)/math.Abs(wantE))
}

func TestForcesMatchReference(t *testing.T) {
	const l = 12.0
	const alpha = 6.0
	pos, q := testSystem(48, l, 2)
	p := ewald.Params{L: l, Alpha: alpha, RCut: 5, LKCut: 8}
	waves := ewald.Waves(p)
	sn, cn := ewald.StructureFactors(waves, pos, q)
	want := ewald.WavenumberForces(p, waves, sn, cn, pos, q)

	m, _ := New(l, alpha, 32, 4)
	res, err := m.Compute(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	fscale := vec.RMS(want)
	worst := 0.0
	for i := range want {
		if d := res.Forces[i].Sub(want[i]).Norm() / fscale; d > worst {
			worst = d
		}
	}
	if worst > 1e-2 {
		t.Errorf("worst PME force error = %g of RMS", worst)
	}
	t.Logf("worst PME force error = %.2e of RMS (K=32, order 4)", worst)
}

func TestAccuracyImprovesWithMeshAndOrder(t *testing.T) {
	const l = 10.0
	const alpha = 5.0
	pos, q := testSystem(32, l, 3)
	p := ewald.Params{L: l, Alpha: alpha, RCut: 4, LKCut: 7}
	waves := ewald.Waves(p)
	sn, cn := ewald.StructureFactors(waves, pos, q)
	want := ewald.WavenumberForces(p, waves, sn, cn, pos, q)
	fscale := vec.RMS(want)

	errAt := func(k, order int) float64 {
		m, err := New(l, alpha, k, order)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Compute(pos, q)
		if err != nil {
			t.Fatal(err)
		}
		rms := 0.0
		for i := range want {
			rms += res.Forces[i].Sub(want[i]).Norm2()
		}
		return math.Sqrt(rms/float64(len(want))) / fscale
	}
	coarse := errAt(16, 4)
	fine := errAt(32, 4)
	if fine >= coarse {
		t.Errorf("finer mesh did not help: %g -> %g", coarse, fine)
	}
	low := errAt(32, 3)
	high := errAt(32, 6)
	if high >= low {
		t.Errorf("higher order did not help: %g -> %g", low, high)
	}
	t.Logf("rms error: K16/p4 %.1e, K32/p4 %.1e, K32/p3 %.1e, K32/p6 %.1e", coarse, fine, low, high)
}

func TestNetForceSmall(t *testing.T) {
	// SPME with analytic B-spline derivatives does not conserve momentum
	// exactly (a well-known property of the method, Essmann et al. §4); the
	// net force is bounded by the interpolation error, i.e. far below the
	// per-particle force scale but not zero.
	const l = 14.0
	pos, q := testSystem(64, l, 4)
	m, _ := New(l, 6, 32, 4)
	res, err := m.Compute(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	net := vec.Sum(res.Forces).Norm() / float64(len(pos))
	rms := vec.RMS(res.Forces)
	if net > 1e-3*rms {
		t.Errorf("net PME force per particle = %g, rms = %g", net, rms)
	}
	if net == 0 {
		t.Error("exactly zero net force is implausible for analytic-derivative SPME")
	}
}

func TestComputeValidation(t *testing.T) {
	m, _ := New(10, 5, 16, 4)
	if _, err := m.Compute(make([]vec.V, 3), make([]float64, 2)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestParamsFor(t *testing.T) {
	p := ewald.Params{L: 20, Alpha: 9, RCut: 6, LKCut: 6.8}
	m, err := ParamsFor(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.K < int(2*p.LKCut) {
		t.Errorf("K = %d under-resolves Lk_cut %g", m.K, p.LKCut)
	}
	if !isPow2(m.K) {
		t.Errorf("K = %d not a power of two", m.K)
	}
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func BenchmarkPMECompute(b *testing.B) {
	const l = 15.0
	pos, q := testSystem(500, l, 1)
	m, _ := New(l, 7, 32, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Compute(pos, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDirectWavenumber(b *testing.B) {
	// The WINE-2-style direct sum at the same accuracy point, for the
	// O(N·N_wv) vs O(N log N) comparison of §6.3.
	const l = 15.0
	pos, q := testSystem(500, l, 1)
	p := ewald.Params{L: l, Alpha: 7, RCut: 5, LKCut: 7 * ewald.SWave / math.Pi}
	waves := ewald.Waves(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn, cn := ewald.StructureFactors(waves, pos, q)
		ewald.WavenumberForces(p, waves, sn, cn, pos, q)
	}
}
