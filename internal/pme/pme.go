// Package pme implements the smooth particle-mesh Ewald method of Essmann,
// Perera and Berkowitz (the paper's ref. [4]) — the O(N log N) evaluation of
// the wavenumber-space Coulomb sum that general-purpose machines use where
// the MDM throws WINE-2 silicon at the direct O(N^(3/2)) sum. Together with
// internal/treecode it provides the "other fast methods" side of the
// accuracy-versus-speed comparison the paper motivates in §1 and §6.3.
//
// Charges are spread onto a K³ mesh with cardinal B-splines of order p, the
// mesh is transformed with the radix-2 FFT of internal/fft, multiplied by
// the influence function a(n)·|B(n)|², transformed back, and the forces come
// from the analytic B-spline derivatives. The conventions (dimensionless α,
// k = n/L) match internal/ewald, so PME results are directly comparable to
// the reference structure-factor sums and to the WINE-2 simulator.
package pme

import (
	"fmt"
	"math"
	"math/cmplx"

	"mdm/internal/ewald"
	"mdm/internal/fft"
	"mdm/internal/units"
	"mdm/internal/vec"
)

// DefaultOrder is the customary interpolation order (cubic spline support
// over 4 mesh points).
const DefaultOrder = 4

// Mesh is a configured PME solver for a fixed box, α and mesh size.
type Mesh struct {
	L     float64
	Alpha float64 // dimensionless, as in ewald.Params
	K     int     // mesh points per dimension (power of two)
	Order int     // B-spline order p >= 3

	theta []float64 // influence function a(n)·|B(n)|², flattened like fft.Cube
}

// New builds a PME solver. k must be a power of two and order at least 3
// (order 2 splines are not smooth enough for forces) and at most k.
func New(l, alpha float64, k, order int) (*Mesh, error) {
	if l <= 0 || alpha <= 0 {
		return nil, fmt.Errorf("pme: non-positive box %g or alpha %g", l, alpha)
	}
	if !fft.IsPow2(k) {
		return nil, fmt.Errorf("pme: mesh size %d is not a power of two", k)
	}
	if order < 3 || order > 8 || order > k {
		return nil, fmt.Errorf("pme: order %d outside [3, min(8, K)]", order)
	}
	m := &Mesh{L: l, Alpha: alpha, K: k, Order: order}
	m.buildTheta()
	return m, nil
}

// bspline evaluates the cardinal B-spline M_p(u) with support (0, p).
func bspline(p int, u float64) float64 {
	if u <= 0 || u >= float64(p) {
		return 0
	}
	if p == 2 {
		return 1 - math.Abs(u-1)
	}
	fp := float64(p)
	return u/(fp-1)*bspline(p-1, u) + (fp-u)/(fp-1)*bspline(p-1, u-1)
}

// bsplineDeriv evaluates M_p'(u) = M_{p-1}(u) - M_{p-1}(u-1).
func bsplineDeriv(p int, u float64) float64 {
	return bspline(p-1, u) - bspline(p-1, u-1)
}

// bmod2 returns |b(n)|² for the Euler exponential spline factor along one
// dimension.
func (m *Mesh) bmod2(n int) float64 {
	p := m.Order
	var denom complex128
	for k := 0; k <= p-2; k++ {
		w := 2 * math.Pi * float64(n) * float64(k) / float64(m.K)
		denom += complex(bspline(p, float64(k+1)), 0) * cmplx.Exp(complex(0, w))
	}
	d2 := real(denom)*real(denom) + imag(denom)*imag(denom)
	if d2 < 1e-14 {
		return 0 // drop the pathological mode
	}
	return 1 / d2
}

// signedMode maps a mesh index to the signed reciprocal integer.
func (m *Mesh) signedMode(i int) int {
	if i > m.K/2 {
		return i - m.K
	}
	return i
}

// buildTheta precomputes θ(n) = a(n)·|B(n)|² over the mesh, with θ(0) = 0.
func (m *Mesh) buildTheta() {
	k := m.K
	bx := make([]float64, k)
	for i := 0; i < k; i++ {
		bx[i] = m.bmod2(i)
	}
	m.theta = make([]float64, k*k*k)
	l2 := m.L * m.L
	pi2a2 := math.Pi * math.Pi / (m.Alpha * m.Alpha)
	idx := 0
	for z := 0; z < k; z++ {
		nz := m.signedMode(z)
		for y := 0; y < k; y++ {
			ny := m.signedMode(y)
			for x := 0; x < k; x++ {
				nx := m.signedMode(x)
				n2 := float64(nx*nx + ny*ny + nz*nz)
				if n2 == 0 {
					m.theta[idx] = 0
				} else {
					a := math.Exp(-pi2a2*n2) * l2 / n2
					m.theta[idx] = a * bx[x] * bx[y] * bx[z]
				}
				idx++
			}
		}
	}
}

// Result bundles one PME evaluation.
type Result struct {
	Forces []vec.V
	Energy float64 // wavenumber-space Coulomb energy (eV)
}

// Compute evaluates the wavenumber-space Coulomb energy and forces. It is
// the PME counterpart of ewald.StructureFactors + WavenumberForces +
// WavenumberEnergy (the real-space and self terms are unchanged by the
// method and remain the caller's responsibility).
func (m *Mesh) Compute(pos []vec.V, q []float64) (*Result, error) {
	if len(pos) != len(q) {
		return nil, fmt.Errorf("pme: %d positions vs %d charges", len(pos), len(q))
	}
	k := m.K
	p := m.Order
	grid, err := fft.NewCube(k)
	if err != nil {
		return nil, err
	}

	// Charge spreading. For particle fractional mesh coordinate u, the
	// occupied points are k0-t (mod K) with weight M_p(frac + t), t < p.
	type spread struct {
		base [3]int
		wx   []float64
		wy   []float64
		wz   []float64
		dx   []float64
		dy   []float64
		dz   []float64
	}
	spreads := make([]spread, len(pos))
	scale := float64(k) / m.L
	for i, r := range pos {
		w := r.Wrap(m.L)
		var sp spread
		for d, x := range [3]float64{w.X, w.Y, w.Z} {
			u := x * scale
			k0 := int(math.Floor(u))
			frac := u - float64(k0)
			ws := make([]float64, p)
			ds := make([]float64, p)
			for t := 0; t < p; t++ {
				ws[t] = bspline(p, frac+float64(t))
				ds[t] = bsplineDeriv(p, frac+float64(t))
			}
			sp.base[d] = k0
			switch d {
			case 0:
				sp.wx, sp.dx = ws, ds
			case 1:
				sp.wy, sp.dy = ws, ds
			case 2:
				sp.wz, sp.dz = ws, ds
			}
		}
		spreads[i] = sp
		for tz := 0; tz < p; tz++ {
			mz := mod(sp.base[2]-tz, k)
			for ty := 0; ty < p; ty++ {
				my := mod(sp.base[1]-ty, k)
				wyz := sp.wy[ty] * sp.wz[tz] * q[i]
				for tx := 0; tx < p; tx++ {
					mx := mod(sp.base[0]-tx, k)
					idx := grid.Index(mx, my, mz)
					grid.Data[idx] += complex(sp.wx[tx]*wyz, 0)
				}
			}
		}
	}

	// Convolution with the influence function.
	if err := grid.Forward3(); err != nil {
		return nil, err
	}
	energy := 0.0
	for i, v := range grid.Data {
		energy += m.theta[i] * (real(v)*real(v) + imag(v)*imag(v))
		grid.Data[i] = v * complex(m.theta[i], 0)
	}
	if err := grid.Inverse3(); err != nil {
		return nil, err
	}
	// E = k_e/(2πL³) Σ_n θ(n) |Q̂(n)|².
	pref := units.Coulomb / (2 * math.Pi * m.L * m.L * m.L)
	res := &Result{Energy: pref * energy, Forces: make([]vec.V, len(pos))}

	// Force gathering: F_i = -2·pref·K³·q_i Σ_m ∇w_i(m)·conv(m), with the
	// derivative chain factor K/L per dimension. The K³ undoes the 1/K³
	// normalization of Inverse3 (the gradient needs the unnormalized
	// back-transform).
	fpref := -2 * pref * scale * float64(k*k*k)
	for i := range pos {
		sp := spreads[i]
		var fx, fy, fz float64
		for tz := 0; tz < p; tz++ {
			mz := mod(sp.base[2]-tz, k)
			for ty := 0; ty < p; ty++ {
				my := mod(sp.base[1]-ty, k)
				for tx := 0; tx < p; tx++ {
					mx := mod(sp.base[0]-tx, k)
					conv := real(grid.Data[grid.Index(mx, my, mz)])
					fx += sp.dx[tx] * sp.wy[ty] * sp.wz[tz] * conv
					fy += sp.wx[tx] * sp.dy[ty] * sp.wz[tz] * conv
					fz += sp.wx[tx] * sp.wy[ty] * sp.dz[tz] * conv
				}
			}
		}
		res.Forces[i] = vec.New(fx, fy, fz).Scale(fpref * q[i])
	}
	return res, nil
}

func mod(a, k int) int {
	a %= k
	if a < 0 {
		a += k
	}
	return a
}

// ParamsFor maps an ewald discretization to a recommended mesh: K chosen as
// the smallest power of two with at least 2·Lk_cut points per dimension (the
// Nyquist condition for the retained modes).
func ParamsFor(p ewald.Params, order int) (*Mesh, error) {
	k := 2
	for float64(k) < 2*p.LKCut {
		k <<= 1
	}
	return New(p.L, p.Alpha, k, order)
}
