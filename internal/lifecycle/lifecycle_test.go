package lifecycle_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mdm/internal/lifecycle"
)

// The exit-code contract is pinned against real signals delivered to a real
// process: the test binary re-execs itself as a helper (TestMain dispatches
// on MDM_LIFECYCLE_HELPER) so signal.Notify, the watcher goroutine and
// os.Exit run exactly as they do in the production binaries.

func TestMain(m *testing.M) {
	switch os.Getenv("MDM_LIFECYCLE_HELPER") {
	case "":
		os.Exit(m.Run())
	case "graceful":
		helperGraceful()
	case "wedged":
		helperWedged()
	default:
		fmt.Fprintln(os.Stderr, "unknown helper mode")
		os.Exit(3)
	}
}

// helperGraceful models mdmsim/mdmserve: poll Requested at "step"
// boundaries, then shut down cleanly with exit 0.
func helperGraceful() {
	sd := lifecycle.Watch(nil)
	defer sd.Stop()
	fmt.Println("ready")
	for !sd.Requested() {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println("stopping")
	os.Exit(0)
}

// helperWedged models a binary whose graceful path is stuck (a run that
// never reaches a committed step): only the second signal can end it.
func helperWedged() {
	_ = lifecycle.Watch(nil)
	fmt.Println("ready")
	select {}
}

// helper launches the test binary in helper mode and returns the command
// with line-scanners over its stdout and stderr.
func helper(t *testing.T, mode string) (*exec.Cmd, *bufio.Scanner, *bufio.Scanner) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "MDM_LIFECYCLE_HELPER="+mode)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd, bufio.NewScanner(stdout), bufio.NewScanner(stderr)
}

// waitLine scans until a line containing want appears.
func waitLine(t *testing.T, sc *bufio.Scanner, want string) {
	t.Helper()
	for sc.Scan() {
		if strings.Contains(sc.Text(), want) {
			return
		}
	}
	t.Fatalf("stream ended before %q (scan err: %v)", want, sc.Err())
}

func exitCode(t *testing.T, cmd *exec.Cmd) int {
	t.Helper()
	err := cmd.Wait()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if ok := isExitError(err, &ee); !ok {
		t.Fatalf("helper did not exit normally: %v", err)
	}
	return ee.ExitCode()
}

func isExitError(err error, out **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*out = ee
	}
	return ok
}

// One signal: the binary finishes its step loop and exits 0.
func TestExitCodeContractGraceful(t *testing.T) {
	cmd, stdout, _ := helper(t, "graceful")
	waitLine(t, stdout, "ready")
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitLine(t, stdout, "stopping")
	if code := exitCode(t, cmd); code != 0 {
		t.Fatalf("graceful shutdown exit code = %d, want 0", code)
	}
}

// Two signals: the second one kills the process with exit 130, even when the
// graceful path is wedged.
func TestExitCodeContractSecondSignalKills(t *testing.T) {
	cmd, stdout, stderr := helper(t, "wedged")
	waitLine(t, stdout, "ready")
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// The watcher logs after consuming the first signal; only then is the
	// second signal guaranteed to be the killing one rather than a
	// still-queued first.
	waitLine(t, stderr, "signal received")
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitLine(t, stderr, "killed")
	if code := exitCode(t, cmd); code != lifecycle.ExitKilled {
		t.Fatalf("hard-kill exit code = %d, want %d", code, lifecycle.ExitKilled)
	}
}

// The onFirst callback fires exactly once, on the first signal.
func TestWatchCallbackAndStop(t *testing.T) {
	exits := make(chan int, 1)
	sd := lifecycle.Watch(nil, lifecycle.WithExit(func(code int) { exits <- code }),
		lifecycle.WithLogf(func(string, ...any) {}))
	if sd.Requested() {
		t.Fatal("Requested before any signal")
	}
	sd.Stop()
	select {
	case code := <-exits:
		t.Fatalf("exit(%d) without any signal", code)
	default:
	}
}

func TestWriteSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sum.json")
	type sum struct {
		Status string `json:"status"`
		Steps  int    `json:"steps"`
	}
	if err := lifecycle.WriteSummary(path, sum{Status: "ok", Steps: 42}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	var got sum
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Status != "ok" || got.Steps != 42 {
		t.Fatalf("round trip = %+v", got)
	}
	if !strings.HasSuffix(string(buf), "\n") {
		t.Error("summary file does not end in a newline")
	}
	// "" path: explicit no-op.
	if err := lifecycle.WriteSummary("", got); err != nil {
		t.Fatal(err)
	}
}
