// Package lifecycle owns the process-lifetime contracts shared by the
// long-running binaries (cmd/mdmsim, cmd/mdmserve): the two-signal graceful
// shutdown protocol and the machine-readable summary report.
//
// The two-signal contract, pinned by TestExitCodeContract:
//
//   - the first SIGINT/SIGTERM requests a graceful stop — the binary finishes
//     the committed step of every run it owns, flushes journals and final
//     checkpoints, writes its summary, and exits 0;
//   - a second signal kills the process immediately with exit code 130
//     (128 + SIGINT, the shell convention for an interrupted job).
//
// The contract matters because the layers underneath promise durability only
// at committed-step granularity: the write-ahead journal (§10) fsyncs each
// completed step, so "finish the current step, then stop" is exactly the
// window in which stopping is free. Killing mid-step is always safe too —
// that is what the crash matrix proves — but it wastes the partial step and
// forces a journal replay on restart, so the first signal is polite and only
// the second is violent.
package lifecycle

import (
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
)

// ExitKilled is the exit code of the second-signal hard kill: 128 + SIGINT,
// the shell convention for a process that died to an interrupt.
const ExitKilled = 130

// Shutdown is an installed two-signal watcher. Requested flips after the
// first signal; the second signal terminates the process with ExitKilled.
type Shutdown struct {
	requested atomic.Bool
	sigc      chan os.Signal
	exit      func(int) // os.Exit, injectable for tests
	logf      func(format string, args ...any)
}

// Option tunes a Watch call.
type Option func(*Shutdown)

// WithExit overrides the hard-kill exit function (tests).
func WithExit(exit func(int)) Option {
	return func(s *Shutdown) { s.exit = exit }
}

// WithLogf overrides where the watcher's two progress lines go (default
// stderr).
func WithLogf(logf func(format string, args ...any)) Option {
	return func(s *Shutdown) { s.logf = logf }
}

// Watch installs the two-signal contract for SIGINT and SIGTERM: the first
// signal sets Requested and invokes onFirst (which may be nil); the second
// exits the process with ExitKilled. The returned Shutdown's Requested method
// is safe to poll from any goroutine — it is the natural argument to
// mdm.(*Simulation).SetInterrupt.
func Watch(onFirst func(), opts ...Option) *Shutdown {
	s := &Shutdown{
		sigc: make(chan os.Signal, 2),
		exit: os.Exit,
		logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	for _, opt := range opts {
		opt(s)
	}
	signal.Notify(s.sigc, os.Interrupt, syscall.SIGTERM)
	//mdm:gojoinok -- process-lifetime signal watcher; parked on sigc, detached by design (Stop releases it)
	go func() {
		if _, ok := <-s.sigc; !ok {
			return
		}
		s.requested.Store(true)
		s.logf("%s: signal received; finishing the committed step (repeat to kill)", prog())
		if onFirst != nil {
			onFirst()
		}
		if _, ok := <-s.sigc; !ok {
			return
		}
		s.logf("%s: killed", prog())
		s.exit(ExitKilled)
	}()
	return s
}

// Requested reports whether the first signal has arrived. It is the graceful
// stop predicate: poll it at committed-step boundaries.
func (s *Shutdown) Requested() bool { return s.requested.Load() }

// Stop uninstalls the watcher and releases its goroutine. The process reverts
// to default signal disposition.
func (s *Shutdown) Stop() {
	signal.Stop(s.sigc)
	close(s.sigc)
}

// prog names the running binary for the watcher's stderr lines.
func prog() string {
	if len(os.Args) == 0 || os.Args[0] == "" {
		return "mdm"
	}
	base := os.Args[0]
	for i := len(base) - 1; i >= 0; i-- {
		if base[i] == '/' {
			return base[i+1:]
		}
	}
	return base
}

// WriteSummary writes v as indented JSON to path — the machine-readable
// result contract of a run or a drain. An empty path is a no-op. The summary
// is a report, not durable run state: losing it on a crash costs nothing
// (the run is re-summarizable from its journal), so it takes the direct
// write path rather than the store layer's atomic-replace discipline.
func WriteSummary(path string, v any) error {
	if path == "" {
		return nil
	}
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	//mdm:rawiook -- summary report: re-runnable output, not durable run state
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
