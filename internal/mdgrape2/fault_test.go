package mdgrape2

import (
	"errors"
	"testing"

	"mdm/internal/cellindex"
	"mdm/internal/fault"
)

func TestFaultHookTransientAbortsCall(t *testing.T) {
	sys, _ := NewSystem(CurrentConfig())
	if err := sys.LoadTable("ewald", ewaldG, -16, 8); err != nil {
		t.Fatal(err)
	}
	in, err := fault.ParseInjector("mdg:transient@call=1")
	if err != nil {
		t.Fatal(err)
	}
	sys.SetFaultHook(in)
	pos, types, _ := naclSystem(8, 10, 1)
	grid, _ := cellindex.NewGrid(10, 3)
	js, _ := NewJSet(grid, pos, types)
	co, _ := NewCoeffs(2, 0.25, 1)

	_, err = sys.ComputeForces("ewald", co, pos, types, nil, js)
	var te *fault.TransientError
	if !errors.As(err, &te) || te.Site != fault.MDG2 {
		t.Fatalf("call 1 = %v, want TransientError on mdg", err)
	}
	if _, err := sys.ComputeForces("ewald", co, pos, types, nil, js); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
}

func TestFaultHookBitFlipPerturbsOneComponent(t *testing.T) {
	pos, types, _ := naclSystem(8, 10, 1)
	grid, _ := cellindex.NewGrid(10, 3)
	js, _ := NewJSet(grid, pos, types)
	co, _ := NewCoeffs(2, 0.25, 1)

	clean, _ := NewSystem(CurrentConfig())
	if err := clean.LoadTable("ewald", ewaldG, -16, 8); err != nil {
		t.Fatal(err)
	}
	want, err := clean.ComputeForces("ewald", co, pos, types, nil, js)
	if err != nil {
		t.Fatal(err)
	}

	sys, _ := NewSystem(CurrentConfig())
	if err := sys.LoadTable("ewald", ewaldG, -16, 8); err != nil {
		t.Fatal(err)
	}
	// word=7 → particle 2, Y component (7 = 2*3 + 1).
	in, err := fault.ParseInjector("mdg:bitflip@call=1,word=7,bit=51")
	if err != nil {
		t.Fatal(err)
	}
	sys.SetFaultHook(in)
	got, err := sys.ComputeForces("ewald", co, pos, types, nil, js)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if i == 2 {
			if got[i].X != want[i].X || got[i].Y == want[i].Y || got[i].Z != want[i].Z {
				t.Errorf("particle 2: got %v want Y-only flip of %v", got[i], want[i])
			}
			continue
		}
		if got[i] != want[i] {
			t.Errorf("particle %d perturbed: %v != %v", i, got[i], want[i])
		}
	}
	// Consumed: next call is clean.
	got, err = sys.ComputeForces("ewald", co, pos, types, nil, js)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("particle %d still perturbed on second call", i)
		}
	}
}

func TestMR1FaultHookSurvivesReinit(t *testing.T) {
	m, err := NewMR1(CurrentConfig())
	if err != nil {
		t.Fatal(err)
	}
	in, err := fault.ParseInjector("mdg:transient@call=1")
	if err != nil {
		t.Fatal(err)
	}
	m.SetFaultHook(in) // before Init
	if err := m.AllocateBoards(4); err != nil {
		t.Fatal(err)
	}
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	if err := m.SetTable("ewald", ewaldG, -16, 8); err != nil {
		t.Fatal(err)
	}
	pos, types, _ := naclSystem(8, 10, 1)
	grid, _ := cellindex.NewGrid(10, 3)
	js, _ := NewJSet(grid, pos, types)
	co, _ := NewCoeffs(2, 0.25, 1)
	_, err = m.CalcVDWBlock2("ewald", co, pos, types, nil, js)
	var te *fault.TransientError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TransientError through MR1", err)
	}
}
