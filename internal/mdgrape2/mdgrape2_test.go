package mdgrape2

import (
	"math"
	"math/rand"
	"testing"

	"mdm/internal/cellindex"
	"mdm/internal/ewald"
	"mdm/internal/lj"
	"mdm/internal/tosifumi"
	"mdm/internal/units"
	"mdm/internal/vec"
)

// ewaldG is the real-space Coulomb kernel of §3.5.4.
func ewaldG(x float64) float64 {
	return 2*math.Exp(-x)/(math.SqrtPi*x) + math.Erfc(math.Sqrt(x))/(x*math.Sqrt(x))
}

func TestConfigInventory(t *testing.T) {
	cur := CurrentConfig()
	if got := cur.Chips(); got != 64 {
		t.Errorf("current chips = %d, paper: 64", got)
	}
	if got := cur.Pipelines(); got != 256 {
		t.Errorf("current pipelines = %d, want 256", got)
	}
	// "Peak performance of an MDGRAPE-2 chip corresponds to about 16 Gflops
	// at a clock frequency of 100 MHz" → 64 chips ≈ 1 Tflops.
	peak := cur.PeakFlops()
	if peak < 0.9e12 || peak > 1.2e12 {
		t.Errorf("current peak = %g, paper: ~1 Tflops", peak)
	}
	fut := FutureConfig()
	if got := fut.Chips(); got != 1536 {
		t.Errorf("future chips = %d, paper: 1,536", got)
	}
	if p := fut.PeakFlops(); p < 22e12 || p > 27e12 {
		t.Errorf("future peak = %g, paper: ~25 Tflops", p)
	}
	if cur.ParticleCapacity() != (8<<20)/16 {
		t.Errorf("particle capacity = %d", cur.ParticleCapacity())
	}
}

func TestConfigValidate(t *testing.T) {
	bad := CurrentConfig()
	bad.Clusters = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero clusters accepted")
	}
	bad = CurrentConfig()
	bad.ClockHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero clock accepted")
	}
	if _, err := NewSystem(bad); err == nil {
		t.Error("NewSystem accepted invalid config")
	}
}

func TestPairwiseAccuracy(t *testing.T) {
	// §3.5.4: "The relative accuracy of a pairwise force is about 1e-7."
	sys, err := NewSystem(CurrentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadTable("ewald", ewaldG, -16, 8); err != nil {
		t.Fatal(err)
	}
	tbl, _ := sys.Table("ewald")
	rng := rand.New(rand.NewSource(42))
	worst := 0.0
	for trial := 0; trial < 2000; trial++ {
		dx := float32(rng.Float64()*4 - 2)
		dy := float32(rng.Float64()*4 - 2)
		dz := float32(rng.Float64()*4 - 2)
		a := float32(0.05 + rng.Float64()*0.3)
		b := float32(1 - 2*float64(rng.Intn(2)))
		fx, fy, fz := pairForce(tbl, a, b, dx, dy, dz)
		// Exact kernel on the same float32 inputs.
		r2 := float64(dx)*float64(dx) + float64(dy)*float64(dy) + float64(dz)*float64(dz)
		if r2 < 1e-4 {
			continue
		}
		x := float64(a) * r2
		bg := float64(b) * ewaldG(x)
		wantX := bg * float64(dx)
		scale := math.Abs(bg) * math.Sqrt(r2)
		if scale == 0 {
			continue
		}
		if e := math.Abs(float64(fx)-wantX) / scale; e > worst {
			worst = e
		}
		_ = fy
		_ = fz
	}
	if worst > 1e-6 {
		t.Errorf("worst pairwise relative error = %g, paper: ~1e-7", worst)
	}
	if worst == 0 {
		t.Error("zero error is implausible for single-precision hardware")
	}
	t.Logf("worst pairwise relative error = %.2e (paper: ~1e-7)", worst)
}

// naclSystem builds a random neutral two-species system.
func naclSystem(n int, l float64, seed int64) (pos []vec.V, types []int, q []float64) {
	rng := rand.New(rand.NewSource(seed))
	pos = make([]vec.V, n)
	types = make([]int, n)
	q = make([]float64, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		types[i] = i % 2
		q[i] = float64(1 - 2*(i%2))
	}
	return pos, types, q
}

// coulombCoeffs builds the Coulomb real-space coefficient RAM:
// a_ij = α²/L², b_ij = q_i·q_j (the q_i factor folded into b so the tables
// stay symmetric; the host scale carries k_e·α³/L³).
func coulombCoeffs(p ewald.Params) *Coeffs {
	a := p.Alpha * p.Alpha / (p.L * p.L)
	co, _ := NewCoeffs(2, a, 0)
	co.Set(0, 0, a, 1)
	co.Set(0, 1, a, -1)
	co.Set(1, 1, a, 1)
	return co
}

func TestRealSpaceCoulombVsFloat64SamePairs(t *testing.T) {
	const l = 14.0
	const n = 160
	pos, types, q := naclSystem(n, l, 9)
	p := ewald.Params{L: l, Alpha: 7, RCut: 4.5, LKCut: 5}

	sys, err := NewSystem(CurrentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadTable("ewald", ewaldG, -20, 8); err != nil {
		t.Fatal(err)
	}
	grid, err := cellindex.NewGrid(l, p.RCut)
	if err != nil {
		t.Fatal(err)
	}
	js, err := NewJSet(grid, pos, types)
	if err != nil {
		t.Fatal(err)
	}
	scale := make([]float64, n)
	pref := units.Coulomb * math.Pow(p.Alpha/p.L, 3)
	for i := range scale {
		scale[i] = pref
	}
	got, err := sys.ComputeForces("ewald", coulombCoeffs(p), pos, types, scale, js)
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: identical pair walk in float64 with the exact kernel.
	want := make([]vec.V, n)
	sorted := js.Sorted
	for i := range pos {
		ci := grid.CellOf(pos[i])
		var acc vec.V
		for _, nb := range grid.Neighbors(ci) {
			jstart, jend := sorted.CellRange(nb.Cell)
			for j := jstart; j < jend; j++ {
				rij := pos[i].Sub(sorted.At(j).Add(nb.Shift))
				r2 := rij.Norm2()
				if r2 == 0 {
					continue
				}
				x := p.Alpha * p.Alpha / (p.L * p.L) * r2
				qj := q[sorted.Order[j]]
				acc = acc.Add(rij.Scale(q[i] * qj * ewaldG(x)))
			}
		}
		want[i] = acc.Scale(pref)
	}
	fscale := vec.RMS(want)
	for i := range got {
		if d := got[i].Sub(want[i]).Norm(); d > 2e-5*fscale {
			t.Errorf("particle %d: hardware %v vs float64 %v (Δ %g, scale %g)", i, got[i], want[i], d, fscale)
		}
	}
}

func TestRealSpaceCoulombVsEwaldReference(t *testing.T) {
	// Against the independent ewald.Compute real-space oracle (which applies
	// the r_cut test that the hardware does not): agreement to truncation
	// accuracy.
	const l = 14.0
	const n = 160
	pos, types, q := naclSystem(n, l, 5)
	p := ewald.Params{L: l, Alpha: 2.633 * l / 4.5, RCut: 4.5, LKCut: 2}

	sys, _ := NewSystem(CurrentConfig())
	if err := sys.LoadTable("ewald", ewaldG, -20, 8); err != nil {
		t.Fatal(err)
	}
	grid, _ := cellindex.NewGrid(l, p.RCut)
	js, _ := NewJSet(grid, pos, types)
	scale := make([]float64, n)
	pref := units.Coulomb * math.Pow(p.Alpha/p.L, 3)
	for i := range scale {
		scale[i] = pref
	}
	got, err := sys.ComputeForces("ewald", coulombCoeffs(p), pos, types, scale, js)
	if err != nil {
		t.Fatal(err)
	}

	// Reference real-space force: pairs within RCut, Newton's third law.
	want := make([]vec.V, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			rij := pos[i].Sub(pos[j]).MinImage(l)
			if rij.Norm() >= p.RCut {
				continue
			}
			f := p.RealPairForce(q[i], q[j], rij)
			want[i] = want[i].Add(f)
			want[j] = want[j].Sub(f)
		}
	}
	fscale := vec.RMS(want)
	for i := range got {
		if d := got[i].Sub(want[i]).Norm(); d > 2e-3*fscale {
			t.Errorf("particle %d: hardware %v vs reference %v (Δ %g)", i, got[i], want[i], d)
		}
	}
}

func TestVDWMatchesLJ(t *testing.T) {
	const l = 16.0
	const n = 120
	rng := rand.New(rand.NewSource(17))
	pos := make([]vec.V, n)
	types := make([]int, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		types[i] = i % 2
	}
	const eps, sigma = 0.05, 2.8
	ljc, _ := lj.NewCoeffs(2)
	ljc.Set(0, 0, eps, sigma)
	ljc.Set(0, 1, eps, sigma*1.1)
	ljc.Set(1, 1, eps, sigma*1.2)

	sys, _ := NewSystem(CurrentConfig())
	if err := sys.LoadTable("lj", lj.G, -6, 10); err != nil {
		t.Fatal(err)
	}
	co, _ := NewCoeffs(2, 0, 0)
	for i := 0; i < 2; i++ {
		for j := i; j < 2; j++ {
			sg := ljc.Sigma[i][j]
			co.Set(i, j, 1/(sg*sg), ljc.Eps[i][j])
		}
	}
	grid, _ := cellindex.NewGrid(l, 4.0)
	js, _ := NewJSet(grid, pos, types)
	got, err := sys.ComputeForces("lj", co, pos, types, nil, js)
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: same pair walk, float64 lj.
	want := make([]vec.V, n)
	sorted := js.Sorted
	for i := range pos {
		ci := grid.CellOf(pos[i])
		var acc vec.V
		for _, nb := range grid.Neighbors(ci) {
			jstart, jend := sorted.CellRange(nb.Cell)
			for j := jstart; j < jend; j++ {
				rij := pos[i].Sub(sorted.At(j).Add(nb.Shift))
				acc = acc.Add(ljc.Force(types[i], js.Types[j], rij))
			}
		}
		want[i] = acc
	}
	fscale := vec.RMS(want)
	for i := range got {
		if d := got[i].Sub(want[i]).Norm(); d > 1e-4*fscale {
			t.Errorf("particle %d: vdW %v vs lj %v", i, got[i], want[i])
		}
	}
}

func TestTosiFumiShortRange(t *testing.T) {
	// The NaCl short-range force through per-pair tables: since a_ij = 1 and
	// the Na-Cl pair kernels differ, load one table per pair and compute
	// per-species contributions in three calls with b selecting the pair.
	pot := tosifumi.Default()
	const l = 12.0
	pos := []vec.V{vec.New(3, 3, 3), vec.New(5.8, 3, 3), vec.New(3, 6.2, 3)}
	types := []int{0, 1, 0}

	sys, _ := NewSystem(CurrentConfig())
	// One table per unordered species pair; b_ij = 1 on the pair, 0 elsewhere.
	names := map[string][2]int{"nana": {0, 0}, "nacl": {0, 1}, "clcl": {1, 1}}
	for name, pair := range names {
		g := pot.GFunc(tosifumi.Species(pair[0]), tosifumi.Species(pair[1]))
		if err := sys.LoadTable(name, g, -4, 10); err != nil {
			t.Fatal(err)
		}
	}
	grid, _ := cellindex.NewGrid(l, 4.0)
	js, _ := NewJSet(grid, pos, types)

	total := make([]vec.V, len(pos))
	for name, pair := range names {
		co, _ := NewCoeffs(2, 1, 0)
		co.Set(pair[0], pair[1], 1, 1)
		if pair[0] != pair[1] {
			co.Set(pair[0], pair[0], 1, 0)
			co.Set(pair[1], pair[1], 1, 0)
		} else {
			other := 1 - pair[0]
			co.Set(pair[0], other, 1, 0)
			co.Set(other, other, 1, 0)
		}
		f, err := sys.ComputeForces(name, co, pos, types, nil, js)
		if err != nil {
			t.Fatal(err)
		}
		for i := range total {
			total[i] = total[i].Add(f[i])
		}
	}

	// Oracle: direct evaluation.
	want := make([]vec.V, len(pos))
	for i := range pos {
		for j := range pos {
			if i == j {
				continue
			}
			rij := pos[i].Sub(pos[j]).MinImage(l)
			want[i] = want[i].Add(pot.ShortForce(tosifumi.Species(types[i]), tosifumi.Species(types[j]), rij))
		}
	}
	for i := range total {
		if d := total[i].Sub(want[i]).Norm(); d > 1e-4*(1+want[i].Norm()) {
			t.Errorf("particle %d: %v vs %v", i, total[i], want[i])
		}
	}
}

func TestSelfPairContributesNothing(t *testing.T) {
	sys, _ := NewSystem(CurrentConfig())
	if err := sys.LoadTable("ewald", ewaldG, -16, 8); err != nil {
		t.Fatal(err)
	}
	pos := []vec.V{vec.New(5, 5, 5)}
	types := []int{0}
	grid, _ := cellindex.NewGrid(20, 5)
	js, _ := NewJSet(grid, pos, types)
	co, _ := NewCoeffs(1, 0.25, 1)
	f, err := sys.ComputeForces("ewald", co, pos, types, nil, js)
	if err != nil {
		t.Fatal(err)
	}
	if f[0] != vec.Zero {
		t.Errorf("single particle force = %v, want zero", f[0])
	}
}

func TestParticleMemoryCapacity(t *testing.T) {
	cfg := CurrentConfig()
	cfg.ParticleMemBytes = 10 * cfg.BytesPerParticle // capacity: 10 particles
	sys, _ := NewSystem(cfg)
	if err := sys.LoadTable("g", func(x float64) float64 { return 1 / x }, -4, 4); err != nil {
		t.Fatal(err)
	}
	pos, types, _ := naclSystem(11, 10, 1)
	grid, _ := cellindex.NewGrid(10, 3)
	js, _ := NewJSet(grid, pos, types)
	co, _ := NewCoeffs(2, 1, 1)
	if _, err := sys.ComputeForces("g", co, pos, types, nil, js); err == nil {
		t.Error("capacity overflow accepted")
	}
}

func TestComputeForcesValidation(t *testing.T) {
	sys, _ := NewSystem(CurrentConfig())
	pos, types, _ := naclSystem(8, 10, 1)
	grid, _ := cellindex.NewGrid(10, 3)
	js, _ := NewJSet(grid, pos, types)
	co, _ := NewCoeffs(2, 1, 1)
	if _, err := sys.ComputeForces("missing", co, pos, types, nil, js); err == nil {
		t.Error("missing table accepted")
	}
	if err := sys.LoadTable("g", func(x float64) float64 { return 1 / x }, -4, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ComputeForces("g", co, pos, types[:4], nil, js); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := sys.ComputeForces("g", co, pos, types, make([]float64, 3), js); err == nil {
		t.Error("scale length mismatch accepted")
	}
	badTypes := append([]int(nil), types...)
	badTypes[0] = 5
	if _, err := sys.ComputeForces("g", co, pos, badTypes, nil, js); err == nil {
		t.Error("out-of-range type accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	sys, _ := NewSystem(CurrentConfig())
	if err := sys.LoadTable("g", func(x float64) float64 { return math.Exp(-x) }, -8, 8); err != nil {
		t.Fatal(err)
	}
	const l = 12.0
	pos, types, _ := naclSystem(200, l, 3)
	grid, _ := cellindex.NewGrid(l, 3)
	js, _ := NewJSet(grid, pos, types)
	co, _ := NewCoeffs(2, 1, 1)
	if _, err := sys.ComputeForces("g", co, pos, types, nil, js); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Calls != 1 || st.IParticles != 200 {
		t.Errorf("stats = %+v", st)
	}
	// Pair count must equal the cell-index ordered pair count (N·N_int_g).
	if want := int64(js.Sorted.OrderedPairCount()); st.PairsEvaluated != want {
		t.Errorf("pairs = %d, ordered pair count = %d", st.PairsEvaluated, want)
	}
	// Compute time at 256 pipelines × 100 MHz.
	dt := sys.ComputeTime(st.PairsEvaluated)
	want := float64(st.PairsEvaluated) / (256 * 100e6)
	if math.Abs(dt-want) > 1e-18 {
		t.Errorf("ComputeTime = %g, want %g", dt, want)
	}
	sys.ResetStats()
	if sys.Stats() != (Stats{}) {
		t.Error("ResetStats did not clear")
	}
}

func TestNewJSetValidation(t *testing.T) {
	grid, _ := cellindex.NewGrid(10, 3)
	if _, err := NewJSet(grid, make([]vec.V, 3), make([]int, 2)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestNewCoeffsValidation(t *testing.T) {
	if _, err := NewCoeffs(0, 1, 1); err == nil {
		t.Error("0 types accepted")
	}
	if _, err := NewCoeffs(MaxTypes+1, 1, 1); err == nil {
		t.Error("33 types accepted")
	}
	co, err := NewCoeffs(MaxTypes, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if co.A[31][31] != 2 || co.B[0][31] != 3 {
		t.Error("uniform fill wrong")
	}
	co.Set(1, 2, 5, 6)
	if co.A[2][1] != 5 || co.B[2][1] != 6 {
		t.Error("Set not symmetric")
	}
}

func TestMR1Lifecycle(t *testing.T) {
	m, err := NewMR1(CurrentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(); err == nil {
		t.Error("Init before AllocateBoards accepted")
	}
	if err := m.AllocateBoards(99); err == nil {
		t.Error("allocating more boards than the machine has accepted")
	}
	if err := m.AllocateBoards(4); err != nil {
		t.Fatal(err)
	}
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	if m.System().Config().Boards() != 4 {
		t.Errorf("acquired boards = %d, want 4", m.System().Config().Boards())
	}
	if err := m.Init(); err == nil {
		t.Error("double Init accepted")
	}
	if err := m.SetTable("g", func(x float64) float64 { return 1 / x }, -4, 4); err != nil {
		t.Fatal(err)
	}
	pos, types, _ := naclSystem(20, 10, 2)
	grid, _ := cellindex.NewGrid(10, 3)
	js, _ := NewJSet(grid, pos, types)
	co, _ := NewCoeffs(2, 1, 1)
	if _, err := m.CalcVDWBlock2("g", co, pos, types, nil, js); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(); err == nil {
		t.Error("double Free accepted")
	}
	if _, err := m.CalcVDWBlock2("g", co, pos, types, nil, js); err == nil {
		t.Error("calc after Free accepted")
	}
	// Odd board count exercises the partial-cluster path.
	if err := m.AllocateBoards(3); err != nil {
		t.Fatal(err)
	}
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	if m.System().Config().Boards() != 3 {
		t.Errorf("acquired boards = %d, want 3", m.System().Config().Boards())
	}
}

func TestMR1BeforeInitErrors(t *testing.T) {
	m, _ := NewMR1(CurrentConfig())
	if err := m.SetTable("g", func(x float64) float64 { return x }, 0, 4); err == nil {
		t.Error("SetTable before Init accepted")
	}
	if err := m.Free(); err == nil {
		t.Error("Free before Init accepted")
	}
	if _, err := NewMR1(Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func BenchmarkComputeForces(b *testing.B) {
	sys, _ := NewSystem(CurrentConfig())
	if err := sys.LoadTable("ewald", ewaldG, -20, 8); err != nil {
		b.Fatal(err)
	}
	const l = 20.0
	pos, types, _ := naclSystem(1000, l, 1)
	p := ewald.Params{L: l, Alpha: 10, RCut: 4.0, LKCut: 5}
	grid, _ := cellindex.NewGrid(l, p.RCut)
	js, _ := NewJSet(grid, pos, types)
	co := coulombCoeffs(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.ComputeForces("ewald", co, pos, types, nil, js); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPerParticleChargeFieldCoulomb(t *testing.T) {
	// The hardware reads q_j from particle memory (§3.5.2). Computing the
	// real-space Coulomb force with b_ij = 1 and the charge field carrying
	// q_j must agree with the type-encoded-b path used elsewhere.
	const l = 12.0
	const n = 120
	pos, types, q := naclSystem(n, l, 41)
	p := ewald.Params{L: l, Alpha: 6, RCut: 4, LKCut: 4}
	sys, _ := NewSystem(CurrentConfig())
	if err := sys.LoadTable("ewald", ewaldG, -20, 8); err != nil {
		t.Fatal(err)
	}
	grid, _ := cellindex.NewGrid(l, p.RCut)

	// Path A: type-encoded b = q_i q_j (existing convention).
	jsA, _ := NewJSet(grid, pos, types)
	pref := units.Coulomb * math.Pow(p.Alpha/p.L, 3)
	scaleA := make([]float64, n)
	for i := range scaleA {
		scaleA[i] = pref
	}
	fa, err := sys.ComputeForces("ewald", coulombCoeffs(p), pos, types, scaleA, jsA)
	if err != nil {
		t.Fatal(err)
	}

	// Path B: b = 1, charge field carries q_j, scale carries k_e q_i α³/L³.
	jsB, err := NewJSetWeighted(grid, pos, types, q)
	if err != nil {
		t.Fatal(err)
	}
	aC := p.Alpha * p.Alpha / (p.L * p.L)
	coB, _ := NewCoeffs(2, aC, 1)
	scaleB := make([]float64, n)
	for i := range scaleB {
		scaleB[i] = pref * q[i]
	}
	fb, err := sys.ComputeForces("ewald", coB, pos, types, scaleB, jsB)
	if err != nil {
		t.Fatal(err)
	}
	fscale := vec.RMS(fa)
	for i := range fa {
		if d := fa[i].Sub(fb[i]).Norm(); d > 1e-6*fscale {
			t.Errorf("particle %d: type-b %v vs charge-field %v", i, fa[i], fb[i])
		}
	}
}

func TestNewJSetWeightedValidation(t *testing.T) {
	grid, _ := cellindex.NewGrid(10, 3)
	pos, types, _ := naclSystem(6, 10, 42)
	if _, err := NewJSetWeighted(grid, pos, types, make([]float64, 3)); err == nil {
		t.Error("weight length mismatch accepted")
	}
	js, err := NewJSetWeighted(grid, pos, types, nil)
	if err != nil || js.Weights != nil {
		t.Errorf("nil weights should stay nil: %v %v", js.Weights, err)
	}
}
