// Package mdgrape2 simulates the MDGRAPE-2 special-purpose computer: the
// real-space force engine of the MDM (§3.5 of the paper).
//
// The simulated hierarchy mirrors the hardware exactly:
//
//	System (16 clusters) → Cluster (2 boards, shared PCI bus)
//	  → Board (2 chips + FPGA: interface logic, cell-index counter,
//	           cell memory, particle-index counter, 8 MB particle memory)
//	    → Chip (4 pipelines + atom-coefficient RAM for 32 types
//	            + neighbor-list RAM)
//	      → Pipeline (f⃗_ij = b_ij · g(a_ij r²) · r⃗_ij, eq. 14)
//
// Numerics follow §3.5.4: "most of the arithmetic units in the pipeline use
// IEEE754 single floating point format" — the displacement, squared distance,
// argument scaling, function evaluation (a 1,024-segment fourth-order
// interpolator, package funceval) and the b_ij multiply are all done in
// float32 — while "the double floating point format is used for accumulating
// the force", so per-particle accumulation is float64. The resulting pairwise
// relative accuracy is ~1e-7.
//
// The board walks particles through the cell-index method (eqs. 7, 8): no
// distance test and no Newton's third law, so the operation count is
// N·N_int_g ≈ 13 N·N_int. Self-pairs (r⃗ = 0) pass through the pipeline and
// contribute exactly zero, as in the hardware.
//
// The user-visible entry points reproduce the library of Table 3 (MR1…).
package mdgrape2

import (
	"fmt"

	"mdm/internal/cellindex"
	"mdm/internal/fault"
	"mdm/internal/funceval"
	"mdm/internal/parallelize"
	"mdm/internal/vec"
)

// Config describes one MDGRAPE-2 installation.
type Config struct {
	Clusters         int     // clusters in the system
	BoardsPerCluster int     // boards on each cluster's PCI bus
	ChipsPerBoard    int     // MDGRAPE-2 chips per board
	PipelinesPerChip int     // pipelines per chip
	ClockHz          float64 // pipeline clock
	ParticleMemBytes int     // per-board particle memory (SSRAM)
	BytesPerParticle int     // storage per j-particle (position, charge, type)
	FlopsPerPair     float64 // flop equivalence of one pipeline cycle
	NeighborRAMBytes int     // per-board neighbor-list RAM (§3.5.3)
}

// CurrentConfig is the machine of §3.5 / Table 5 "current": 64 chips,
// 1 Tflops peak (16 Gflops per chip at 100 MHz).
func CurrentConfig() Config {
	return Config{
		Clusters:         16,
		BoardsPerCluster: 2,
		ChipsPerBoard:    2,
		PipelinesPerChip: 4,
		ClockHz:          100e6,
		ParticleMemBytes: 8 << 20,
		BytesPerParticle: 16,
		FlopsPerPair:     40, // 4 pipes × 100 MHz × 40 = 16 Gflops/chip
		NeighborRAMBytes: 4 << 20,
	}
}

// FutureConfig is the Table 5 "future" machine: 1,536 chips, 25 Tflops peak.
func FutureConfig() Config {
	c := CurrentConfig()
	c.Clusters = 384 // 1,536 chips at 2 boards × 2 chips per cluster
	return c
}

// Chips returns the total chip count.
func (c Config) Chips() int { return c.Clusters * c.BoardsPerCluster * c.ChipsPerBoard }

// Boards returns the total board count.
func (c Config) Boards() int { return c.Clusters * c.BoardsPerCluster }

// Pipelines returns the total pipeline count.
func (c Config) Pipelines() int { return c.Chips() * c.PipelinesPerChip }

// PeakFlops returns the nominal peak speed: pipelines × clock × FlopsPerPair.
func (c Config) PeakFlops() float64 {
	return float64(c.Pipelines()) * c.ClockHz * c.FlopsPerPair
}

// ParticleCapacity returns how many j-particles fit in one board's memory.
func (c Config) ParticleCapacity() int { return c.ParticleMemBytes / c.BytesPerParticle }

// NeighborRAMEntries returns how many neighbor-list entries (index + image
// code, 8 bytes each) fit in one board's neighbor-list RAM.
func (c Config) NeighborRAMEntries() int { return c.NeighborRAMBytes / 8 }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Clusters < 1 || c.BoardsPerCluster < 1 || c.ChipsPerBoard < 1 || c.PipelinesPerChip < 1 {
		return fmt.Errorf("mdgrape2: non-positive hierarchy in %+v", c)
	}
	if c.ClockHz <= 0 || c.ParticleMemBytes <= 0 || c.BytesPerParticle <= 0 || c.FlopsPerPair <= 0 {
		return fmt.Errorf("mdgrape2: non-positive rates in %+v", c)
	}
	if c.NeighborRAMBytes < 0 {
		return fmt.Errorf("mdgrape2: negative neighbor RAM")
	}
	return nil
}

// MaxTypes is the capacity of the atom-coefficient RAM (§3.5.3).
const MaxTypes = 32

// Stats accumulates the work counters a timing model needs.
type Stats struct {
	PairsEvaluated int64 // pipeline cycles consumed (one pair each)
	IParticles     int64 // i-particles processed
	JLoads         int64 // j-particles written to particle memories
	Calls          int64 // force-calculation calls
}

// System is a simulated MDGRAPE-2 installation. Calculation calls on one
// System must not overlap (the stats counters are unsynchronized, as the
// hardware's were per-session); concurrent sessions use separate Systems.
type System struct {
	cfg    Config
	tables map[string]*funceval.Table
	stats  Stats
	hook   fault.HardwareHook
	beat   func()
	pool   *parallelize.Pool

	shardPairs []int64 // per-call pair-counter scratch, reused across calls
}

// pairScratch returns a zeroed per-shard pair-counter slice of length n,
// reusing the session's scratch buffer.
func (s *System) pairScratch(n int) []int64 {
	if cap(s.shardPairs) < n {
		s.shardPairs = make([]int64, n)
	}
	sp := s.shardPairs[:n]
	for i := range sp {
		sp[i] = 0
	}
	return sp
}

// NewSystem builds a simulated system.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{cfg: cfg, tables: make(map[string]*funceval.Table)}, nil
}

// Config returns the hardware configuration.
func (s *System) Config() Config { return s.cfg }

// Stats returns a copy of the accumulated work counters.
func (s *System) Stats() Stats { return s.stats }

// ResetStats clears the work counters.
func (s *System) ResetStats() { s.stats = Stats{} }

// SetFaultHook installs a fault injector on the simulated hardware. Every
// ComputeForces call reports to the hook (site fault.MDG2) and may be failed
// with a board or transient error; an armed bit flip lands in one returned
// force component. A nil hook (the default) disables injection.
func (s *System) SetFaultHook(h fault.HardwareHook) { s.hook = h }

// SetHeartbeat installs a liveness callback invoked at the entry of every
// ComputeForces call, before fault injection can wedge it — the watchdog's
// view of board progress. A nil heartbeat (the default) costs one nil check.
func (s *System) SetHeartbeat(beat func()) { s.beat = beat }

// SetPool installs the worker pool that stripes the i-particle loops of the
// force, potential and neighbor-list passes across host cores, mirroring the
// hardware's distribution of i-particles over pipelines (§3.5.2). A nil pool
// (the default) runs serially; every pool width is bit-identical because the
// per-particle float64 accumulation order is unchanged — sharding only moves
// whole i-particles between workers.
func (s *System) SetPool(p *parallelize.Pool) { s.pool = p }

// LoadTable fits g(x) into a 1,024-segment function-evaluator table covering
// at least [2^emin, 2^emax) and stores it in every chip's RAM under the given
// name (the MR1SetTable operation of Table 3). Because segment addressing is
// derived from the float32 bit pattern, the number of octaves must divide the
// segment count; the range is widened upward to the next power-of-two span.
func (s *System) LoadTable(name string, g func(float64) float64, emin, emax int) error {
	span := 1
	for span < emax-emin {
		span <<= 1
	}
	if span > funceval.DefaultSegments {
		return fmt.Errorf("mdgrape2: table %q: exponent span %d too wide", name, emax-emin)
	}
	emax = emin + span
	t, err := funceval.NewTable(g, emin, emax, funceval.DefaultSegments)
	if err != nil {
		return fmt.Errorf("mdgrape2: table %q: %w", name, err)
	}
	s.tables[name] = t
	return nil
}

// Table returns a loaded table by name.
func (s *System) Table(name string) (*funceval.Table, error) {
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("mdgrape2: no table %q loaded", name)
	}
	return t, nil
}

// Coeffs is the per-type-pair coefficient RAM content: a_ij scales the
// squared distance, b_ij scales the evaluated kernel (eq. 14). Mutate the
// coefficients through Set (not by writing A/B directly) so the cached
// float32 RAM image stays coherent.
type Coeffs struct {
	A [][]float64
	B [][]float64

	// Cached float32 image of the RAM (the chips store singles). Rebuilt
	// lazily after NewCoeffs/Set mark it stale, so the per-call quantization
	// loop — and its allocations — run once per coefficient load instead of
	// once per force pass.
	a32, b32 [][]float32
	stale    bool
}

// NewCoeffs builds uniform coefficient tables (a, b identical for all type
// pairs) for n types.
func NewCoeffs(n int, a, b float64) (*Coeffs, error) {
	if n < 1 || n > MaxTypes {
		return nil, fmt.Errorf("mdgrape2: %d types outside [1, %d]", n, MaxTypes)
	}
	c := &Coeffs{A: make([][]float64, n), B: make([][]float64, n), stale: true}
	for i := range c.A {
		c.A[i] = make([]float64, n)
		c.B[i] = make([]float64, n)
		for j := range c.A[i] {
			c.A[i][j] = a
			c.B[i][j] = b
		}
	}
	return c, nil
}

// Set assigns the symmetric coefficients for the type pair (i, j).
func (c *Coeffs) Set(i, j int, a, b float64) {
	c.A[i][j], c.A[j][i] = a, a
	c.B[i][j], c.B[j][i] = b, b
	c.stale = true
}

// Load materializes the float32 coefficient RAM image now, as the host
// library does when a session is configured. A Coeffs shared by boards that
// run concurrently (the domain-decomposed ranks) must be loaded before the
// first force call: the hot-path staleness check is a plain flag read,
// coherent only once the image exists — on real hardware, likewise, RAMs
// are written before particles stream, never during.
func (c *Coeffs) Load() { c.quant32() }

// quant32 returns the float32 coefficient RAM image, rebuilding it if a Set
// invalidated the cache. Coefficient RAMs are loaded during session setup, so
// on the hot path this is a flag check; concurrent readers of a coherent
// cache are safe (rebuilds must not race reads, as on real hardware).
func (c *Coeffs) quant32() (a32, b32 [][]float32) {
	if c.stale || c.a32 == nil {
		n := len(c.A)
		if len(c.a32) != n {
			c.a32 = make([][]float32, n)
			c.b32 = make([][]float32, n)
			for i := range c.a32 {
				c.a32[i] = make([]float32, n)
				c.b32[i] = make([]float32, n)
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				c.a32[i][j] = float32(c.A[i][j])
				c.b32[i][j] = float32(c.B[i][j])
			}
		}
		c.stale = false
	}
	return c.a32, c.b32
}

// JSet is the j-side particle data in the board memory layout: sorted by
// cell with contiguous ranges (the cell memory + particle memory of Fig. 9).
// Weights is the per-particle "charge" field of the particle memory ("The
// position, charge, and particle type of a particle j are supplied to both
// of the MDGRAPE-2 chips", §3.5.2): it multiplies the evaluated kernel for
// every pair involving that j particle. A nil Weights means 1 everywhere.
type JSet struct {
	Sorted  *cellindex.Sorted
	Types   []int     // particle type of each *sorted* j particle
	Weights []float64 // per-sorted-j kernel weight (hardware charge field)

	// nbt caches the per-cell neighbor lists (the board cell memory); the
	// force/potential/neighbor passes enumerate cells through it instead of
	// re-deriving the 27-cell neighborhood per i-particle.
	nbt *cellindex.NeighborTable
}

// NewJSet sorts raw j-side particles into the board layout. types are given
// in the original (unsorted) order; the charge field defaults to 1.
func NewJSet(grid *cellindex.Grid, pos []vec.V, types []int) (*JSet, error) {
	return NewJSetPool(grid, pos, types, nil, nil)
}

// NewJSetWeighted additionally loads the per-particle charge field (weights
// in original order; nil for all-ones).
func NewJSetWeighted(grid *cellindex.Grid, pos []vec.V, types []int, weights []float64) (*JSet, error) {
	return NewJSetPool(grid, pos, types, weights, nil)
}

// NewJSetPool is NewJSetWeighted with the cell sort and cell-memory build
// striped across a worker pool (nil pool: serial; any width produces the
// identical layout).
func NewJSetPool(grid *cellindex.Grid, pos []vec.V, types []int, weights []float64, pool *parallelize.Pool) (*JSet, error) {
	if len(pos) != len(types) {
		return nil, fmt.Errorf("mdgrape2: %d positions vs %d types", len(pos), len(types))
	}
	if weights != nil && len(weights) != len(pos) {
		return nil, fmt.Errorf("mdgrape2: %d positions vs %d weights", len(pos), len(weights))
	}
	sorted := cellindex.SortPool(grid, pos, pool)
	st := make([]int, len(types))
	for k, orig := range sorted.Order {
		st[k] = types[orig]
	}
	js := &JSet{Sorted: sorted, Types: st, nbt: cellindex.BuildNeighborTable(grid, pool)}
	if weights != nil {
		sw := make([]float64, len(weights))
		for k, orig := range sorted.Order {
			sw[k] = weights[orig]
		}
		js.Weights = sw
	}
	return js, nil
}

// neighbors returns the cached neighbor list of cell c.
func (js *JSet) neighbors(c int) []cellindex.Neighbor {
	if js.nbt != nil {
		return js.nbt.Of(c)
	}
	return js.Sorted.Grid.Neighbors(c)
}

// weight32 returns the float32 charge field of sorted particle j.
func (js *JSet) weight32(j int) float32 {
	if js.Weights == nil {
		return 1
	}
	return float32(js.Weights[j])
}

// pipeline evaluates one pair in hardware precision: float32 datapath,
// float64 accumulation done by the caller.
func pairForce(t *funceval.Table, aij, bij float32, dx, dy, dz float32) (fx, fy, fz float32) {
	r2 := dx*dx + dy*dy + dz*dz
	x := aij * r2
	g := t.Eval(x)
	bg := bij * g
	return bg * dx, bg * dy, bg * dz
}

// ComputeForces runs the cell-index force calculation of eqs. 7/8 for the
// given i-particles against the j-set: for every i, every j in the 27
// neighbor cells of i's cell is streamed through a pipeline with no distance
// test. scale multiplies the final accumulated force (the host-side
// prefactor, e.g. k_e·q_i·α³/L³ for the Coulomb real-space part when b_ij
// carries q_j only).
//
// The i-particles are distributed round-robin over all pipelines, mirroring
// the block distribution of MR1calcvdw_block2; the result is deterministic.
func (s *System) ComputeForces(table string, co *Coeffs, xi []vec.V, ti []int, scaleI []float64, js *JSet) ([]vec.V, error) {
	tbl, err := s.Table(table)
	if err != nil {
		return nil, err
	}
	if len(xi) != len(ti) {
		return nil, fmt.Errorf("mdgrape2: %d i-positions vs %d i-types", len(xi), len(ti))
	}
	if scaleI != nil && len(scaleI) != len(xi) {
		return nil, fmt.Errorf("mdgrape2: %d i-positions vs %d scales", len(xi), len(scaleI))
	}
	if js.Sorted.Len() > s.cfg.ParticleCapacity() {
		return nil, fmt.Errorf("mdgrape2: %d j-particles exceed board particle memory capacity %d",
			js.Sorted.Len(), s.cfg.ParticleCapacity())
	}
	for _, t := range ti {
		if t < 0 || t >= len(co.A) {
			return nil, fmt.Errorf("mdgrape2: i-type %d outside coefficient RAM (%d types)", t, len(co.A))
		}
	}
	for _, t := range js.Types {
		if t < 0 || t >= len(co.A) {
			return nil, fmt.Errorf("mdgrape2: j-type %d outside coefficient RAM (%d types)", t, len(co.A))
		}
	}
	// Fault injection: a scheduled board/transient error aborts the call; an
	// armed bit flip corrupts one force component after the pipeline loop,
	// where a flipped particle-memory or accumulator bit would surface.
	if s.beat != nil {
		s.beat()
	}
	if s.hook != nil {
		if err := s.hook.HardwareCall(fault.MDG2); err != nil {
			return nil, err
		}
	}

	grid := js.Sorted.Grid
	forces := make([]vec.V, len(xi))

	// The coefficient RAM stores singles; the float32 image is cached on the
	// Coeffs and rebuilt only after a Set.
	a32, b32 := co.quant32()

	// The i-particles are striped across the pool's workers in contiguous
	// blocks, as the hardware distributes them over pipelines; each
	// i-particle's float64 accumulator stays in one shard, so accumulation
	// order — and the result — is bit-identical at any pool width. Pair
	// counters are per-shard, merged in shard order below.
	shardPairs := s.pairScratch(parallelize.NumShards(len(xi), s.pool.Workers()))
	_ = s.pool.Run(len(xi), func(shard, lo, hi int) error {
		var pairs int64
		for i := lo; i < hi; i++ {
			// The interface quantizes coordinates to single precision.
			pix := float32(xi[i].X)
			piy := float32(xi[i].Y)
			piz := float32(xi[i].Z)
			ci := grid.CellOf(xi[i])
			var ax, ay, az float64 // double-precision accumulators (§3.5.4)
			ta := a32[ti[i]]
			tb := b32[ti[i]]
			jx, jy, jz := js.Sorted.P32.X, js.Sorted.P32.Y, js.Sorted.P32.Z
			for _, nb := range js.neighbors(ci) {
				jstart, jend := js.Sorted.CellRange(nb.Cell)
				sx := float32(nb.Shift.X)
				sy := float32(nb.Shift.Y)
				sz := float32(nb.Shift.Z)
				for j := jstart; j < jend; j++ {
					dx := pix - (jx[j] + sx)
					dy := piy - (jy[j] + sy)
					dz := piz - (jz[j] + sz)
					tj := js.Types[j]
					b := tb[tj]
					if js.Weights != nil {
						b *= float32(js.Weights[j]) // particle-memory charge field
					}
					fx, fy, fz := pairForce(tbl, ta[tj], b, dx, dy, dz)
					ax += float64(fx)
					ay += float64(fy)
					az += float64(fz)
					pairs++
				}
			}
			f := vec.New(ax, ay, az)
			if scaleI != nil {
				f = f.Scale(scaleI[i])
			}
			forces[i] = f
		}
		shardPairs[shard] = pairs
		return nil
	})
	var pairs int64
	for _, p := range shardPairs {
		pairs += p
	}

	if s.hook != nil && len(forces) > 0 {
		if word, bit, ok := s.hook.PendingFlip(fault.MDG2); ok {
			i := word % (3 * len(forces))
			if i < 0 {
				i += 3 * len(forces)
			}
			f := &forces[i/3]
			switch i % 3 {
			case 0:
				f.X = fault.FlipFloat64(f.X, bit&63)
			case 1:
				f.Y = fault.FlipFloat64(f.Y, bit&63)
			default:
				f.Z = fault.FlipFloat64(f.Z, bit&63)
			}
		}
	}

	s.stats.PairsEvaluated += pairs
	s.stats.IParticles += int64(len(xi))
	s.stats.JLoads += int64(js.Sorted.Len() * s.cfg.Boards())
	s.stats.Calls++
	return forces, nil
}

// ComputeTime returns the pipeline wall-clock time for evaluating the given
// number of pairs with perfect pipelining: pairs / (pipelines × clock).
func (s *System) ComputeTime(pairs int64) float64 {
	return float64(pairs) / (float64(s.cfg.Pipelines()) * s.cfg.ClockHz)
}
