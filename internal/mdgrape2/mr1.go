package mdgrape2

import (
	"fmt"

	"mdm/internal/fault"
	"mdm/internal/parallelize"
	"mdm/internal/vec"
)

// MR1 reproduces the MDGRAPE-2 library of Table 3 as a session object. The
// method-to-routine mapping is:
//
//	AllocateBoards  ↔ MR1allocateboard  (set the number of boards to acquire)
//	Init            ↔ MR1init           (acquire MDGRAPE-2 boards)
//	SetTable        ↔ MR1SetTable       (set the function table g(x))
//	CalcVDWBlock2   ↔ MR1calcvdw_block2 (real-space force, cell-index method)
//	Free            ↔ MR1free           (release MDGRAPE-2 boards)
//
// Like the real library, calculation calls are rejected until boards are
// acquired, and the function table is generated beforehand and loaded at
// initialization time (§4).
type MR1 struct {
	cfg       Config
	requested int
	sys       *System
	hook      fault.HardwareHook
	beat      func()
	pool      *parallelize.Pool
}

// NewMR1 creates a library session against a machine of the given
// configuration. No boards are acquired yet.
func NewMR1(cfg Config) (*MR1, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &MR1{cfg: cfg}, nil
}

// AllocateBoards records how many boards the session will acquire
// (MR1allocateboard). It must be called before Init.
func (m *MR1) AllocateBoards(n int) error {
	if m.sys != nil {
		return fmt.Errorf("mdgrape2: boards already acquired")
	}
	if n < 1 || n > m.cfg.Boards() {
		return fmt.Errorf("mdgrape2: cannot allocate %d boards, machine has %d", n, m.cfg.Boards())
	}
	m.requested = n
	return nil
}

// Init acquires the allocated boards (MR1init). The session then behaves as
// a machine restricted to the acquired boards.
func (m *MR1) Init() error {
	if m.requested == 0 {
		return fmt.Errorf("mdgrape2: MR1init before MR1allocateboard")
	}
	if m.sys != nil {
		return fmt.Errorf("mdgrape2: already initialized")
	}
	sub := m.cfg
	// Restrict the hierarchy to the acquired boards, keeping whole clusters
	// where possible (a board is acquired through its cluster's bus bridge).
	sub.Clusters = (m.requested + m.cfg.BoardsPerCluster - 1) / m.cfg.BoardsPerCluster
	sub.BoardsPerCluster = m.cfg.BoardsPerCluster
	if m.requested < sub.Clusters*sub.BoardsPerCluster {
		// Partial last cluster: model as boards-per-cluster 1 over the
		// requested count for accounting purposes.
		sub.Clusters = m.requested
		sub.BoardsPerCluster = 1
	}
	sys, err := NewSystem(sub)
	if err != nil {
		return err
	}
	sys.SetFaultHook(m.hook)
	sys.SetHeartbeat(m.beat)
	sys.SetPool(m.pool)
	m.sys = sys
	return nil
}

// SetFaultHook installs a fault injector on the session's hardware; it
// survives Init/Free cycles.
func (m *MR1) SetFaultHook(h fault.HardwareHook) {
	m.hook = h
	if m.sys != nil {
		m.sys.SetFaultHook(h)
	}
}

// SetHeartbeat installs a liveness callback on the session's hardware; it
// survives Init/Free cycles.
func (m *MR1) SetHeartbeat(beat func()) {
	m.beat = beat
	if m.sys != nil {
		m.sys.SetHeartbeat(beat)
	}
}

// SetPool installs the worker pool on the session's hardware; it survives
// Init/Free cycles. A nil pool runs serially.
func (m *MR1) SetPool(p *parallelize.Pool) {
	m.pool = p
	if m.sys != nil {
		m.sys.SetPool(p)
	}
}

// SetTable generates and loads the g(x) function table (MR1SetTable). The
// table is fitted with the 1,024-segment fourth-order interpolator over
// [2^emin, 2^emax).
func (m *MR1) SetTable(name string, g func(float64) float64, emin, emax int) error {
	if m.sys == nil {
		return fmt.Errorf("mdgrape2: MR1SetTable before MR1init")
	}
	return m.sys.LoadTable(name, g, emin, emax)
}

// CalcVDWBlock2 computes the real-space part of the force with the
// cell-index method (MR1calcvdw_block2): forces on the xi/ti block from the
// j-set js, using the named table and the coefficient RAM co. See
// System.ComputeForces for the scale semantics.
//
//mdm:stepflow -- hot-path root: the MDGRAPE-2 session's per-step kernel pass (Table 3 loop)
func (m *MR1) CalcVDWBlock2(table string, co *Coeffs, xi []vec.V, ti []int, scaleI []float64, js *JSet) ([]vec.V, error) {
	if m.sys == nil {
		return nil, fmt.Errorf("mdgrape2: MR1calcvdw_block2 before MR1init")
	}
	return m.sys.ComputeForces(table, co, xi, ti, scaleI, js)
}

// Free releases the boards (MR1free). The session can be re-initialized.
func (m *MR1) Free() error {
	if m.sys == nil {
		return fmt.Errorf("mdgrape2: MR1free without MR1init")
	}
	m.sys = nil
	m.requested = 0
	return nil
}

// System exposes the underlying simulated machine (nil before Init); tests
// and the performance model read its statistics.
func (m *MR1) System() *System { return m.sys }
