package mdgrape2

import (
	"math"
	"testing"

	"mdm/internal/cellindex"
	"mdm/internal/ewald"
	"mdm/internal/units"
	"mdm/internal/vec"
)

func TestBuildNeighborListsMatchesBruteForce(t *testing.T) {
	const l, rcut = 14.0, 4.0
	pos, types, _ := naclSystem(200, l, 21)
	sys, _ := NewSystem(CurrentConfig())
	grid, _ := cellindex.NewGrid(l, rcut)
	js, _ := NewJSet(grid, pos, types)
	nl, err := sys.BuildNeighborLists(pos, js, rcut)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: count minimum-image pairs within rcut. Each unordered pair
	// appears in both particles' lists, so entries = 2 × pair count (for
	// rcut < L/2 where only one image can be inside).
	pairCount := 0
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			if vec.DistPeriodic(pos[i], pos[j], l) < rcut {
				pairCount++
			}
		}
	}
	// The hardware flags with float32 distances, so pairs exactly at the
	// cutoff may differ; allow a handful of boundary disagreements.
	if d := nl.Entries() - 2*pairCount; d < -4 || d > 4 {
		t.Errorf("neighbor entries = %d, brute force 2×%d", nl.Entries(), pairCount)
	}
}

func TestNeighborListForcesMatchCutoffOracle(t *testing.T) {
	const l, rcut = 14.0, 4.0
	pos, types, q := naclSystem(160, l, 22)
	p := ewald.Params{L: l, Alpha: 2.633 * l / rcut, RCut: rcut, LKCut: 3}
	sys, _ := NewSystem(CurrentConfig())
	if err := sys.LoadTable("ewald", ewaldG, -20, 8); err != nil {
		t.Fatal(err)
	}
	grid, _ := cellindex.NewGrid(l, rcut)
	js, _ := NewJSet(grid, pos, types)
	nl, err := sys.BuildNeighborLists(pos, js, rcut)
	if err != nil {
		t.Fatal(err)
	}
	pref := units.Coulomb * math.Pow(p.Alpha/p.L, 3)
	scale := make([]float64, len(pos))
	for i := range scale {
		scale[i] = pref
	}
	got, err := sys.ComputeForcesNL("ewald", coulombCoeffs(p), pos, types, scale, nl)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: float64 sum over the same stored pairs.
	aC := p.Alpha * p.Alpha / (p.L * p.L)
	want := make([]vec.V, len(pos))
	for i := range pos {
		var acc vec.V
		for _, e := range nl.Lists[i] {
			rij := pos[i].Sub(js.Sorted.At(e.J).Add(e.Shift))
			qj := q[js.Sorted.Order[e.J]]
			acc = acc.Add(rij.Scale(q[i] * qj * ewaldG(aC*rij.Norm2())))
		}
		want[i] = acc.Scale(pref)
	}
	fscale := vec.RMS(want)
	for i := range got {
		if d := got[i].Sub(want[i]).Norm(); d > 2e-5*fscale {
			t.Errorf("particle %d: NL force %v vs oracle %v", i, got[i], want[i])
		}
	}
}

func TestNeighborListSavesWork(t *testing.T) {
	// The point of the RAM: follow-up passes cost ~N_int×2 pair evaluations
	// instead of N_int_g.
	const l, rcut = 18.0, 3.0
	pos, types, _ := naclSystem(1500, l, 23)
	sys, _ := NewSystem(CurrentConfig())
	if err := sys.LoadTable("g", func(x float64) float64 { return math.Exp(-x) }, -8, 8); err != nil {
		t.Fatal(err)
	}
	grid, _ := cellindex.NewGrid(l, rcut)
	js, _ := NewJSet(grid, pos, types)
	nl, err := sys.BuildNeighborLists(pos, js, rcut)
	if err != nil {
		t.Fatal(err)
	}
	sys.ResetStats()
	co, _ := NewCoeffs(2, 1, 1)
	if _, err := sys.ComputeForcesNL("g", co, pos, types, nil, nl); err != nil {
		t.Fatal(err)
	}
	nlPairs := sys.Stats().PairsEvaluated
	sys.ResetStats()
	if _, err := sys.ComputeForces("g", co, pos, types, nil, js); err != nil {
		t.Fatal(err)
	}
	cellPairs := sys.Stats().PairsEvaluated
	ratio := float64(cellPairs) / float64(nlPairs)
	// 27-cell vs in-cutoff: 27/(4π/3) ≈ 6.4 at cell = rcut (both directed).
	if ratio < 4 || ratio > 10 {
		t.Errorf("cell/NL pair ratio = %.1f, expected ≈ 6.4", ratio)
	}
	t.Logf("cell-index pass: %d pairs; neighbor-list pass: %d pairs (×%.1f saving)", cellPairs, nlPairs, ratio)
}

func TestNeighborRAMCapacity(t *testing.T) {
	cfg := CurrentConfig()
	cfg.NeighborRAMBytes = 64 // 8 entries per board
	sys, _ := NewSystem(cfg)
	pos, types, _ := naclSystem(300, 10, 24)
	grid, _ := cellindex.NewGrid(10, 3)
	js, _ := NewJSet(grid, pos, types)
	if _, err := sys.BuildNeighborLists(pos, js, 3); err == nil {
		t.Error("neighbor RAM overflow accepted")
	}
	bad := CurrentConfig()
	bad.NeighborRAMBytes = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative neighbor RAM accepted")
	}
}

func TestNeighborListValidation(t *testing.T) {
	sys, _ := NewSystem(CurrentConfig())
	pos, types, _ := naclSystem(20, 10, 25)
	grid, _ := cellindex.NewGrid(10, 3)
	js, _ := NewJSet(grid, pos, types)
	if _, err := sys.BuildNeighborLists(pos, js, 0); err == nil {
		t.Error("zero cutoff accepted")
	}
	nl, err := sys.BuildNeighborLists(pos, js, 3)
	if err != nil {
		t.Fatal(err)
	}
	co, _ := NewCoeffs(2, 1, 1)
	if _, err := sys.ComputeForcesNL("missing", co, pos, types, nil, nl); err == nil {
		t.Error("missing table accepted")
	}
	if err := sys.LoadTable("g", func(x float64) float64 { return 1 / x }, -4, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ComputeForcesNL("g", co, pos[:10], types[:9], nil, nl); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := sys.ComputeForcesNL("g", co, pos, types, make([]float64, 2), nl); err == nil {
		t.Error("scale mismatch accepted")
	}
}

func TestComputePotentialsCoulomb(t *testing.T) {
	// Potential mode vs float64 oracle over the same 27-cell pair walk:
	// φ(x) = erfc(√x)/√x with a = α²/L², b = q_i q_j, scale = k_e α/L gives
	// the real-space Ewald energy per particle.
	const l, rcut = 12.0, 4.0
	pos, types, q := naclSystem(100, l, 26)
	p := ewald.Params{L: l, Alpha: 2.633 * l / rcut, RCut: rcut, LKCut: 3}
	sys, _ := NewSystem(CurrentConfig())
	phi := func(x float64) float64 { return math.Erfc(math.Sqrt(x)) / math.Sqrt(x) }
	if err := sys.LoadTable("ewaldpot", phi, -20, 8); err != nil {
		t.Fatal(err)
	}
	grid, _ := cellindex.NewGrid(l, rcut)
	js, _ := NewJSet(grid, pos, types)
	scale := make([]float64, len(pos))
	pref := units.Coulomb * p.Alpha / p.L
	for i := range scale {
		scale[i] = pref
	}
	got, err := sys.ComputePotentials("ewaldpot", coulombCoeffs(p), pos, types, scale, js)
	if err != nil {
		t.Fatal(err)
	}
	aC := p.Alpha * p.Alpha / (p.L * p.L)
	var total, wantTotal float64
	for i := range pos {
		total += got[i]
		ci := grid.CellOf(pos[i])
		for _, nb := range grid.Neighbors(ci) {
			jstart, jend := js.Sorted.CellRange(nb.Cell)
			for j := jstart; j < jend; j++ {
				rij := pos[i].Sub(js.Sorted.At(j).Add(nb.Shift))
				r2 := rij.Norm2()
				if r2 == 0 {
					continue
				}
				qj := q[js.Sorted.Order[j]]
				wantTotal += pref * q[i] * qj * phi(aC*r2)
			}
		}
	}
	if math.Abs(total-wantTotal) > 1e-4*(1+math.Abs(wantTotal)) {
		t.Errorf("hardware potential sum %g vs oracle %g", total, wantTotal)
	}
	// Each pair is counted twice; E = Σ/2. Cross-check against the
	// reference half-pair energy (agrees to the beyond-cutoff tail level).
	var ref float64
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			rij := pos[i].Sub(pos[j]).MinImage(l)
			if rij.Norm() < rcut {
				ref += p.RealPairEnergy(q[i], q[j], rij)
			}
		}
	}
	if math.Abs(total/2-ref) > 2e-2*(1+math.Abs(ref)) {
		t.Errorf("E = Σp/2 = %g vs reference cutoff sum %g", total/2, ref)
	}
}

func TestComputePotentialsValidation(t *testing.T) {
	sys, _ := NewSystem(CurrentConfig())
	pos, types, _ := naclSystem(10, 10, 27)
	grid, _ := cellindex.NewGrid(10, 3)
	js, _ := NewJSet(grid, pos, types)
	co, _ := NewCoeffs(2, 1, 1)
	if _, err := sys.ComputePotentials("missing", co, pos, types, nil, js); err == nil {
		t.Error("missing table accepted")
	}
	if err := sys.LoadTable("g", func(x float64) float64 { return 1 / x }, -4, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ComputePotentials("g", co, pos, types[:5], nil, js); err == nil {
		t.Error("length mismatch accepted")
	}
}

func BenchmarkNeighborListVsCellIndex(b *testing.B) {
	const l, rcut = 18.0, 3.0
	pos, types, _ := naclSystem(2000, l, 1)
	sys, _ := NewSystem(CurrentConfig())
	if err := sys.LoadTable("g", func(x float64) float64 { return math.Exp(-x) }, -8, 8); err != nil {
		b.Fatal(err)
	}
	grid, _ := cellindex.NewGrid(l, rcut)
	js, _ := NewJSet(grid, pos, types)
	co, _ := NewCoeffs(2, 1, 1)
	b.Run("cellIndex27", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.ComputeForces("g", co, pos, types, nil, js); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("neighborList", func(b *testing.B) {
		nl, err := sys.BuildNeighborLists(pos, js, rcut)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.ComputeForcesNL("g", co, pos, types, nil, nl); err != nil {
				b.Fatal(err)
			}
		}
	})
}
