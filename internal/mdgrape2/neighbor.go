package mdgrape2

import (
	"fmt"

	"mdm/internal/parallelize"
	"mdm/internal/vec"
)

// Neighbor-list mode. §3.5.3: "Neighbor list RAM, which was not used in our
// simulation, can be used to search neighboring particles." The hardware can
// flag, during a cell-index pass, the j particles that actually fall within
// the cutoff of each i particle and store their indices; subsequent passes
// (e.g. the three short-range kernels of a Tosi–Fumi step) then iterate only
// over the stored lists, skipping the ~12/13 of the 27-cell candidates that
// contribute nothing.

// NeighborEntry identifies one stored neighbor: a sorted-j index plus the
// periodic image shift under which it was within the cutoff.
type NeighborEntry struct {
	J     int
	Shift vec.V
}

// NeighborList is the content of the neighbor-list RAMs for one i-particle
// block against one j-set.
type NeighborList struct {
	RCut  float64
	Lists [][]NeighborEntry // one list per i particle
	js    *JSet             // the j-set the indices refer to
}

// Entries returns the total stored entry count (RAM occupancy).
func (nl *NeighborList) Entries() int {
	n := 0
	for _, l := range nl.Lists {
		n += len(l)
	}
	return n
}

// BuildNeighborLists runs a distance-flagging cell-index pass and fills the
// neighbor-list RAM: for every i, the j entries (with image shift) whose
// pair distance is below rcut. Self pairs (distance zero) are never stored.
// The pass costs one full 27-cell walk (counted in the system statistics,
// as it occupies the pipelines on real hardware) and the stored entries must
// fit the per-board neighbor RAM.
func (s *System) BuildNeighborLists(xi []vec.V, js *JSet, rcut float64) (*NeighborList, error) {
	if rcut <= 0 {
		return nil, fmt.Errorf("mdgrape2: non-positive neighbor cutoff %g", rcut)
	}
	if js.Sorted.Len() > s.cfg.ParticleCapacity() {
		return nil, fmt.Errorf("mdgrape2: %d j-particles exceed board particle memory capacity %d",
			js.Sorted.Len(), s.cfg.ParticleCapacity())
	}
	grid := js.Sorted.Grid
	nl := &NeighborList{RCut: rcut, Lists: make([][]NeighborEntry, len(xi)), js: js}
	r2cut := rcut * rcut
	// Each i-particle owns its own list slot, so the flagging pass stripes
	// across the pool bit-identically: list contents and order are a pure
	// function of i.
	shardPairs := s.pairScratch(parallelize.NumShards(len(xi), s.pool.Workers()))
	_ = s.pool.Run(len(xi), func(shard, lo, hi int) error {
		var pairs int64
		for i := lo; i < hi; i++ {
			ci := grid.CellOf(xi[i])
			pix, piy, piz := float32(xi[i].X), float32(xi[i].Y), float32(xi[i].Z)
			for _, nb := range js.neighbors(ci) {
				jstart, jend := js.Sorted.CellRange(nb.Cell)
				sx, sy, sz := float32(nb.Shift.X), float32(nb.Shift.Y), float32(nb.Shift.Z)
				jx := js.Sorted.P32.X[jstart:jend]
				jy := js.Sorted.P32.Y[jstart:jend:jend]
				jz := js.Sorted.P32.Z[jstart:jend:jend]
				for jj := range jx {
					j := jstart + jj
					dx := pix - (jx[jj] + sx)
					dy := piy - (jy[jj] + sy)
					dz := piz - (jz[jj] + sz)
					r2 := float64(dx*dx + dy*dy + dz*dz)
					pairs++
					if r2 == 0 || r2 >= r2cut {
						continue
					}
					nl.Lists[i] = append(nl.Lists[i], NeighborEntry{J: j, Shift: nb.Shift})
				}
			}
		}
		shardPairs[shard] = pairs
		return nil
	})
	var pairs int64
	for _, p := range shardPairs {
		pairs += p
	}
	s.stats.PairsEvaluated += pairs
	s.stats.IParticles += int64(len(xi))
	s.stats.Calls++
	// Capacity: entries are spread across boards with the i particles.
	perBoard := (nl.Entries() + s.cfg.Boards() - 1) / s.cfg.Boards()
	if capacity := s.cfg.NeighborRAMEntries(); perBoard > capacity {
		return nil, fmt.Errorf("mdgrape2: %d neighbor entries per board exceed RAM capacity %d",
			perBoard, capacity)
	}
	return nl, nil
}

// ComputeForcesNL evaluates the same kernel as ComputeForces but iterates
// the stored neighbor lists instead of the 27-cell candidates. The semantic
// difference from the cell-index pass is exactly the cutoff: pairs beyond
// the list cutoff contribute nothing at all (the cell-index pass still
// evaluates their — tiny — kernel tails).
func (s *System) ComputeForcesNL(table string, co *Coeffs, xi []vec.V, ti []int, scaleI []float64, nl *NeighborList) ([]vec.V, error) {
	tbl, err := s.Table(table)
	if err != nil {
		return nil, err
	}
	if len(xi) != len(ti) || len(xi) != len(nl.Lists) {
		return nil, fmt.Errorf("mdgrape2: %d i-positions vs %d types vs %d lists", len(xi), len(ti), len(nl.Lists))
	}
	if scaleI != nil && len(scaleI) != len(xi) {
		return nil, fmt.Errorf("mdgrape2: %d i-positions vs %d scales", len(xi), len(scaleI))
	}
	js := nl.js
	n := len(co.A)
	for _, t := range ti {
		if t < 0 || t >= n {
			return nil, fmt.Errorf("mdgrape2: i-type %d outside coefficient RAM", t)
		}
	}
	a32, b32 := co.quant32()
	forces := make([]vec.V, len(xi))
	shardPairs := s.pairScratch(parallelize.NumShards(len(xi), s.pool.Workers()))
	if err := s.pool.Run(len(xi), func(shard, lo, hi int) error {
		var pairs int64
		for i := lo; i < hi; i++ {
			pix, piy, piz := float32(xi[i].X), float32(xi[i].Y), float32(xi[i].Z)
			ta, tb := a32[ti[i]], b32[ti[i]]
			var ax, ay, az float64
			for _, e := range nl.Lists[i] {
				dx := pix - (js.Sorted.P32.X[e.J] + float32(e.Shift.X))
				dy := piy - (js.Sorted.P32.Y[e.J] + float32(e.Shift.Y))
				dz := piz - (js.Sorted.P32.Z[e.J] + float32(e.Shift.Z))
				tj := js.Types[e.J]
				if tj < 0 || tj >= n {
					return fmt.Errorf("mdgrape2: j-type %d outside coefficient RAM", tj)
				}
				b := tb[tj]
				if js.Weights != nil {
					b *= float32(js.Weights[e.J])
				}
				fx, fy, fz := pairForce(tbl, ta[tj], b, dx, dy, dz)
				ax += float64(fx)
				ay += float64(fy)
				az += float64(fz)
				pairs++
			}
			f := vec.New(ax, ay, az)
			if scaleI != nil {
				f = f.Scale(scaleI[i])
			}
			forces[i] = f
		}
		shardPairs[shard] = pairs
		return nil
	}); err != nil {
		return nil, err
	}
	var pairs int64
	for _, p := range shardPairs {
		pairs += p
	}
	s.stats.PairsEvaluated += pairs
	s.stats.IParticles += int64(len(xi))
	s.stats.Calls++
	return forces, nil
}

// ComputePotentials evaluates the scalar pair sum p_i = scale_i · Σ_j b_ij ·
// φ(a_ij r²) through the pipelines, with φ loaded as a function table — the
// hardware's potential-energy mode (the paper evaluated the potential every
// 100 steps, §5). The walk and numerics match ComputeForces: 27-cell
// candidates, no distance test, float32 datapath, float64 accumulation.
// Each unordered pair is visited from both sides, so Σ p_i double counts:
// the total potential is Σ p_i / 2.
func (s *System) ComputePotentials(table string, co *Coeffs, xi []vec.V, ti []int, scaleI []float64, js *JSet) ([]float64, error) {
	tbl, err := s.Table(table)
	if err != nil {
		return nil, err
	}
	if len(xi) != len(ti) {
		return nil, fmt.Errorf("mdgrape2: %d i-positions vs %d i-types", len(xi), len(ti))
	}
	if scaleI != nil && len(scaleI) != len(xi) {
		return nil, fmt.Errorf("mdgrape2: %d i-positions vs %d scales", len(xi), len(scaleI))
	}
	if js.Sorted.Len() > s.cfg.ParticleCapacity() {
		return nil, fmt.Errorf("mdgrape2: %d j-particles exceed board particle memory capacity %d",
			js.Sorted.Len(), s.cfg.ParticleCapacity())
	}
	n := len(co.A)
	a32, b32 := co.quant32()
	grid := js.Sorted.Grid
	pots := make([]float64, len(xi))
	shardPairs := s.pairScratch(parallelize.NumShards(len(xi), s.pool.Workers()))
	if err := s.pool.Run(len(xi), func(shard, lo, hi int) error {
		var pairs int64
		for i := lo; i < hi; i++ {
			if ti[i] < 0 || ti[i] >= n {
				return fmt.Errorf("mdgrape2: i-type %d outside coefficient RAM", ti[i])
			}
			pix, piy, piz := float32(xi[i].X), float32(xi[i].Y), float32(xi[i].Z)
			ta, tb := a32[ti[i]], b32[ti[i]]
			ci := grid.CellOf(xi[i])
			var acc float64
			for _, nb := range js.neighbors(ci) {
				jstart, jend := js.Sorted.CellRange(nb.Cell)
				sx, sy, sz := float32(nb.Shift.X), float32(nb.Shift.Y), float32(nb.Shift.Z)
				jx := js.Sorted.P32.X[jstart:jend]
				jy := js.Sorted.P32.Y[jstart:jend:jend]
				jz := js.Sorted.P32.Z[jstart:jend:jend]
				jt := js.Types[jstart:jend:jend]
				for jj := range jx {
					j := jstart + jj
					dx := pix - (jx[jj] + sx)
					dy := piy - (jy[jj] + sy)
					dz := piz - (jz[jj] + sz)
					tj := jt[jj]
					r2 := dx*dx + dy*dy + dz*dz
					phi := tbl.Eval(ta[tj] * r2)
					b := tb[tj]
					if js.Weights != nil {
						b *= float32(js.Weights[j])
					}
					acc += float64(b * phi)
					pairs++
				}
			}
			if scaleI != nil {
				pots[i] = acc * scaleI[i]
			} else {
				pots[i] = acc
			}
		}
		shardPairs[shard] = pairs
		return nil
	}); err != nil {
		return nil, err
	}
	var pairs int64
	for _, p := range shardPairs {
		pairs += p
	}
	s.stats.PairsEvaluated += pairs
	s.stats.IParticles += int64(len(xi))
	s.stats.Calls++
	return pots, nil
}
