package mdgrape2

import (
	"fmt"

	"mdm/internal/cellindex"
	"mdm/internal/fault"
	"mdm/internal/funceval"
	"mdm/internal/parallelize"
	"mdm/internal/soa"
	"mdm/internal/vec"
)

// Fused multi-table sweep. A Tosi–Fumi force step issues four kernel passes
// (Coulomb real-space + Born–Mayer + r⁻⁶ + r⁻⁸) over the same j-set; the
// unfused path walks the cell-pair candidates and streams j-memory four
// times. The fused sweep walks them once, evaluating every loaded table per
// pair — the host-side analogue of the hardware broadcasting each j particle
// to all pipelines once per step. Bookkeeping (stats, heartbeats, fault
// injection) still counts one hardware call per pass, so the timing model and
// the injector-visible call sequence are identical to running the passes
// back-to-back.

// ForcePass describes one table pass of a fused sweep: the function table,
// the coefficient RAM, and the optional per-i host prefactor.
type ForcePass struct {
	Table  string
	Co     *Coeffs
	ScaleI []float64 // per-i scale applied to the accumulated force; nil = 1
}

// maxFusedPasses bounds a fused sweep (a chip evaluates one table per pass
// slot; four slots carry the NaCl force field, eight leave headroom).
const maxFusedPasses = 8

// fusedFlip is one captured bit-flip event, replayed onto the pass's
// contribution exactly where the unfused path would have applied it.
type fusedFlip struct {
	i    int // particle index (word % (3·n) / 3)
	comp int // component 0/1/2
	bit  int // bit to flip (already masked to 0..63)
}

// ComputeForcesFused evaluates up to maxFusedPasses table passes in a single
// cell-index traversal and returns the pass contributions summed per particle
// in pass order. The result is bit-identical to calling ComputeForces once
// per pass and combining forces[i] = pass0[i] + pass1[i] + … in order:
// the float32 displacement is a pure function of the positions, each pass
// keeps its own float64 accumulator walked in the same j order, the per-i
// scale and any injected bit flip are applied to the pass's own contribution
// before the ordered combine, and the heartbeat/HardwareCall/PendingFlip
// sequence per pass is issued in pass order up front (the traversal between
// those calls never touches the injector, so the injector-visible event
// stream is unchanged).
func (s *System) ComputeForcesFused(passes []ForcePass, xi []vec.V, ti []int, js *JSet) ([]vec.V, error) {
	fc, err := s.ComputeForcesFusedInto(passes, xi, ti, js, soa.Coords{})
	if err != nil {
		return nil, err
	}
	return fc.AppendAoS(make([]vec.V, 0, fc.Len())), nil
}

// ComputeForcesFusedInto is ComputeForcesFused writing the summed force
// components into structure-of-arrays planes (dst is resized and reused when
// its backing arrays are large enough), so a steady-state step path feeds the
// host combine stage without re-allocating or re-interleaving the output.
func (s *System) ComputeForcesFusedInto(passes []ForcePass, xi []vec.V, ti []int, js *JSet, dst soa.Coords) (soa.Coords, error) {
	np := len(passes)
	if np == 0 || np > maxFusedPasses {
		return soa.Coords{}, fmt.Errorf("mdgrape2: %d fused passes outside [1, %d]", np, maxFusedPasses)
	}
	if len(xi) != len(ti) {
		return soa.Coords{}, fmt.Errorf("mdgrape2: %d i-positions vs %d i-types", len(xi), len(ti))
	}
	if js.Sorted.Len() > s.cfg.ParticleCapacity() {
		return soa.Coords{}, fmt.Errorf("mdgrape2: %d j-particles exceed board particle memory capacity %d",
			js.Sorted.Len(), s.cfg.ParticleCapacity())
	}
	var tbls [maxFusedPasses]tableRef
	for p := range passes {
		tbl, err := s.Table(passes[p].Table)
		if err != nil {
			return soa.Coords{}, err
		}
		tbls[p].tbl = tbl
		co := passes[p].Co
		if passes[p].ScaleI != nil && len(passes[p].ScaleI) != len(xi) {
			return soa.Coords{}, fmt.Errorf("mdgrape2: %s: %d i-positions vs %d scales",
				passes[p].Table, len(xi), len(passes[p].ScaleI))
		}
		nt := len(co.A)
		for _, t := range ti {
			if t < 0 || t >= nt {
				return soa.Coords{}, fmt.Errorf("mdgrape2: i-type %d outside coefficient RAM (%d types)", t, nt)
			}
		}
		for _, t := range js.Types {
			if t < 0 || t >= nt {
				return soa.Coords{}, fmt.Errorf("mdgrape2: j-type %d outside coefficient RAM (%d types)", t, nt)
			}
		}
		tbls[p].a32, tbls[p].b32 = co.quant32()
	}

	// Per-pass hardware bookkeeping, in pass order: heartbeat, injected call
	// fault, armed bit-flip capture. This is the exact injector-visible
	// sequence of np back-to-back ComputeForces calls.
	var flips [maxFusedPasses]fusedFlip
	var hasFlip [maxFusedPasses]bool
	for p := range passes {
		if s.beat != nil {
			s.beat()
		}
		if s.hook != nil {
			if err := s.hook.HardwareCall(fault.MDG2); err != nil {
				return soa.Coords{}, fmt.Errorf("%s pass: %w", passes[p].Table, err)
			}
			if len(xi) > 0 {
				if word, bit, ok := s.hook.PendingFlip(fault.MDG2); ok {
					i := word % (3 * len(xi))
					if i < 0 {
						i += 3 * len(xi)
					}
					flips[p] = fusedFlip{i: i / 3, comp: i % 3, bit: bit & 63}
					hasFlip[p] = true
				}
			}
		}
	}

	grid := js.Sorted.Grid
	dst = dst.Resize(len(xi))
	fX, fY, fZ := dst.X, dst.Y, dst.Z
	shardPairs := s.pairScratch(parallelize.NumShards(len(xi), s.pool.Workers()))
	_ = s.pool.Run(len(xi), func(shard, lo, hi int) error {
		var pairs int64
		var tb [maxFusedPasses][]float32
		var ta [maxFusedPasses][]float32
		var ax, ay, az [maxFusedPasses]float64
		for i := lo; i < hi; i++ {
			pix := float32(xi[i].X)
			piy := float32(xi[i].Y)
			piz := float32(xi[i].Z)
			ci := grid.CellOf(xi[i])
			for p := 0; p < np; p++ {
				ta[p] = tbls[p].a32[ti[i]]
				tb[p] = tbls[p].b32[ti[i]]
				ax[p], ay[p], az[p] = 0, 0, 0
			}
			for _, nb := range js.neighbors(ci) {
				jstart, jend := js.Sorted.CellRange(nb.Cell)
				sx := float32(nb.Shift.X)
				sy := float32(nb.Shift.Y)
				sz := float32(nb.Shift.Z)
				// Stream the cell's j-run from the float32 planes — the banked
				// particle-memory read of §3.3. Equal-length subslices let the
				// compiler drop the per-pair bounds checks.
				jx := js.Sorted.P32.X[jstart:jend]
				jy := js.Sorted.P32.Y[jstart:jend:jend]
				jz := js.Sorted.P32.Z[jstart:jend:jend]
				jt := js.Types[jstart:jend:jend]
				for j := range jx {
					dx := pix - (jx[j] + sx)
					dy := piy - (jy[j] + sy)
					dz := piz - (jz[j] + sz)
					// One squared distance serves all fused passes — the same
					// expression pairForce evaluates, so the same bits, computed
					// once instead of once per table.
					r2 := dx*dx + dy*dy + dz*dz
					tj := jt[j]
					var w float32 = 1
					if js.Weights != nil {
						w = float32(js.Weights[jstart+j])
					}
					for p := 0; p < np; p++ {
						b := tb[p][tj]
						if js.Weights != nil {
							b *= w
						}
						bg := b * tbls[p].tbl.Eval(ta[p][tj]*r2)
						ax[p] += float64(bg * dx)
						ay[p] += float64(bg * dy)
						az[p] += float64(bg * dz)
					}
					pairs++
				}
			}
			// Scale, flip and combine in pass order — exactly the unfused
			// reduction forces[i] = pass0 + pass1 + … .
			var f vec.V
			for p := 0; p < np; p++ {
				fp := vec.New(ax[p], ay[p], az[p])
				if sc := passes[p].ScaleI; sc != nil {
					fp = fp.Scale(sc[i])
				}
				if hasFlip[p] && flips[p].i == i {
					switch flips[p].comp {
					case 0:
						fp.X = fault.FlipFloat64(fp.X, flips[p].bit)
					case 1:
						fp.Y = fault.FlipFloat64(fp.Y, flips[p].bit)
					default:
						fp.Z = fault.FlipFloat64(fp.Z, flips[p].bit)
					}
				}
				if p == 0 {
					f = fp
				} else {
					f = f.Add(fp)
				}
			}
			fX[i], fY[i], fZ[i] = f.X, f.Y, f.Z
		}
		shardPairs[shard] = pairs
		return nil
	})
	var pairs int64
	for _, p := range shardPairs {
		pairs += p
	}
	// Stats count one hardware pass per table, as the unfused path would.
	s.stats.PairsEvaluated += pairs * int64(np)
	s.stats.IParticles += int64(len(xi) * np)
	s.stats.JLoads += int64(js.Sorted.Len() * s.cfg.Boards() * np)
	s.stats.Calls += int64(np)
	return dst, nil
}

// tableRef is the resolved per-pass state of a fused sweep.
type tableRef struct {
	tbl      *funceval.Table
	a32, b32 [][]float32
}

// CalcVDWFused computes several real-space kernel passes in one cell-index
// sweep (see System.ComputeForcesFused). The session must be initialized.
//
//mdm:stepflow -- hot-path root: the MDGRAPE-2 session's fused per-step sweep (Table 3 loop, four tables at once)
func (m *MR1) CalcVDWFused(passes []ForcePass, xi []vec.V, ti []int, js *JSet) ([]vec.V, error) {
	if m.sys == nil {
		return nil, fmt.Errorf("mdgrape2: MR1calcvdw_block2 before MR1init")
	}
	return m.sys.ComputeForcesFused(passes, xi, ti, js)
}

// CalcVDWFusedInto is CalcVDWFused writing the summed forces into
// structure-of-arrays planes (see System.ComputeForcesFusedInto) — the
// zero-alloc variant the machine's step path feeds its combine stage from.
//
//mdm:stepflow -- hot-path root: the MDGRAPE-2 session's fused per-step sweep, SoA output (Table 3 loop, four tables at once)
func (m *MR1) CalcVDWFusedInto(passes []ForcePass, xi []vec.V, ti []int, js *JSet, dst soa.Coords) (soa.Coords, error) {
	if m.sys == nil {
		return soa.Coords{}, fmt.Errorf("mdgrape2: MR1calcvdw_block2 before MR1init")
	}
	return m.sys.ComputeForcesFusedInto(passes, xi, ti, js, dst)
}

// JSetBuilder amortizes per-step j-set construction: the neighbor table is
// built once per grid, the counting-sort scratch and the sorted layout are
// reused across rebuilds, and Refresh rewrites the sorted positions in place
// when the cell assignment is still valid (the Verlet-skin reuse contract:
// no particle has moved more than skin/2 since the last Build). The returned
// JSet is owned by the builder and valid until the next Build or Refresh.
type JSetBuilder struct {
	nbt    *cellindex.NeighborTable
	sorter *cellindex.Sorter
	js     JSet
}

// NewJSetBuilder prepares a builder for the grid; the neighbor table is
// enumerated once here.
func NewJSetBuilder(grid *cellindex.Grid, pool *parallelize.Pool) *JSetBuilder {
	return &JSetBuilder{
		nbt:    cellindex.BuildNeighborTable(grid, pool),
		sorter: cellindex.NewSorter(grid),
	}
}

// NeighborTable exposes the builder's cached per-cell neighbor lists, so
// host-side pair walks over the built j-set can share them.
func (b *JSetBuilder) NeighborTable() *cellindex.NeighborTable { return b.nbt }

// Clone returns a builder with its own j-set (sorted layout, types, reference
// state) sharing this builder's neighbor table and counting-sort scratch.
// The shared pieces are value-independent between calls — the neighbor table
// is immutable after construction and the sorter's buckets are fully
// rewritten by every SortInto — so clones stepped serially (one Build/Refresh
// at a time) are exactly as deterministic as independent builders, without
// re-enumerating the 27-cell table per clone. This is how a batch of systems
// on one grid shares per-machine setup while keeping per-system layouts.
func (b *JSetBuilder) Clone() *JSetBuilder {
	return &JSetBuilder{nbt: b.nbt, sorter: b.sorter}
}

// Build (re)sorts the particles into the board layout, reusing all internal
// buffers. types are in original (unsorted) order; the charge field is 1.
func (b *JSetBuilder) Build(pos []vec.V, types []int, pool *parallelize.Pool) (*JSet, error) {
	if len(pos) != len(types) {
		return nil, fmt.Errorf("mdgrape2: %d positions vs %d types", len(pos), len(types))
	}
	b.js.Sorted = b.sorter.SortInto(b.js.Sorted, pos, pool)
	if len(b.js.Types) != len(types) {
		b.js.Types = make([]int, len(types))
	}
	for k, orig := range b.js.Sorted.Order {
		b.js.Types[k] = types[orig]
	}
	b.js.Weights = nil
	b.js.nbt = b.nbt
	return &b.js, nil
}

// Refresh rewrites the sorted positions from the current original-order
// positions without re-sorting; the caller guarantees the skin bound still
// holds (every displacement since the last Build ≤ skin/2).
func (b *JSetBuilder) Refresh(pos []vec.V) (*JSet, error) {
	if b.js.Sorted == nil {
		return nil, fmt.Errorf("mdgrape2: Refresh before Build")
	}
	if len(pos) != b.js.Sorted.Len() {
		return nil, fmt.Errorf("mdgrape2: %d positions vs %d sorted particles", len(pos), b.js.Sorted.Len())
	}
	b.js.Sorted.Refresh(pos)
	return &b.js, nil
}
