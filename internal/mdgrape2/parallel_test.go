package mdgrape2

import (
	"math"
	"math/rand"
	"testing"

	"mdm/internal/cellindex"
	"mdm/internal/parallelize"
	"mdm/internal/vec"
)

// Sharding stripes whole i-particles across workers, so each particle's
// float64 accumulation order — and therefore every output bit — must match
// the serial pass at any pool width.

type parallelFixture struct {
	grid  *cellindex.Grid
	pos   []vec.V
	types []int
	co    *Coeffs
}

func newParallelFixture(t *testing.T, n int, seed int64) *parallelFixture {
	t.Helper()
	const l = 18.0
	grid, err := cellindex.NewGrid(l, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	pos := make([]vec.V, n)
	types := make([]int, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		types[i] = i % 2
	}
	co, err := NewCoeffs(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	co.Set(0, 1, 1.5, -0.5)
	return &parallelFixture{grid: grid, pos: pos, types: types, co: co}
}

func newParallelSystem(t *testing.T, workers int) *System {
	t.Helper()
	sys, err := NewSystem(CurrentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadTable("g", func(x float64) float64 {
		return math.Exp(-x)
	}, -10, 10); err != nil {
		t.Fatal(err)
	}
	if workers > 0 {
		sys.SetPool(parallelize.New(workers))
	}
	return sys
}

func sameVecBits(a, b vec.V) bool {
	return math.Float64bits(a.X) == math.Float64bits(b.X) &&
		math.Float64bits(a.Y) == math.Float64bits(b.Y) &&
		math.Float64bits(a.Z) == math.Float64bits(b.Z)
}

func TestComputeForcesBitIdenticalAcrossWorkers(t *testing.T) {
	fx := newParallelFixture(t, 300, 11)
	serial := newParallelSystem(t, 0)
	js, err := NewJSet(fx.grid, fx.pos, fx.types)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.ComputeForces("g", fx.co, fx.pos, fx.types, nil, js)
	if err != nil {
		t.Fatal(err)
	}
	wantStats := serial.Stats()

	for _, w := range []int{2, 3, 4, 8} {
		sys := newParallelSystem(t, w)
		pjs, err := NewJSetPool(fx.grid, fx.pos, fx.types, nil, parallelize.New(w))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sys.ComputeForces("g", fx.co, fx.pos, fx.types, nil, pjs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !sameVecBits(got[i], want[i]) {
				t.Fatalf("workers=%d: force %d differs: %v vs %v", w, i, got[i], want[i])
			}
		}
		if gs := sys.Stats(); gs.PairsEvaluated != wantStats.PairsEvaluated {
			t.Fatalf("workers=%d: %d pairs evaluated, serial %d", w, gs.PairsEvaluated, wantStats.PairsEvaluated)
		}
	}
}

func TestComputePotentialsBitIdenticalAcrossWorkers(t *testing.T) {
	fx := newParallelFixture(t, 250, 13)
	serial := newParallelSystem(t, 0)
	js, err := NewJSet(fx.grid, fx.pos, fx.types)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.ComputePotentials("g", fx.co, fx.pos, fx.types, nil, js)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		sys := newParallelSystem(t, w)
		got, err := sys.ComputePotentials("g", fx.co, fx.pos, fx.types, nil, js)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("workers=%d: potential %d differs: %v vs %v", w, i, got[i], want[i])
			}
		}
	}
}

func TestNeighborListsBitIdenticalAcrossWorkers(t *testing.T) {
	fx := newParallelFixture(t, 250, 17)
	serial := newParallelSystem(t, 0)
	js, err := NewJSet(fx.grid, fx.pos, fx.types)
	if err != nil {
		t.Fatal(err)
	}
	const rcut = 3.0
	wantNL, err := serial.BuildNeighborLists(fx.pos, js, rcut)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.ComputeForcesNL("g", fx.co, fx.pos, fx.types, nil, wantNL)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		sys := newParallelSystem(t, w)
		nl, err := sys.BuildNeighborLists(fx.pos, js, rcut)
		if err != nil {
			t.Fatal(err)
		}
		if nl.Entries() != wantNL.Entries() {
			t.Fatalf("workers=%d: %d entries, serial %d", w, nl.Entries(), wantNL.Entries())
		}
		for i := range wantNL.Lists {
			if len(nl.Lists[i]) != len(wantNL.Lists[i]) {
				t.Fatalf("workers=%d: list %d length differs", w, i)
			}
			for k := range wantNL.Lists[i] {
				if nl.Lists[i][k] != wantNL.Lists[i][k] {
					t.Fatalf("workers=%d: list %d entry %d differs", w, i, k)
				}
			}
		}
		got, err := sys.ComputeForcesNL("g", fx.co, fx.pos, fx.types, nil, nl)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !sameVecBits(got[i], want[i]) {
				t.Fatalf("workers=%d: NL force %d differs: %v vs %v", w, i, got[i], want[i])
			}
		}
	}
}

// A shard error must surface deterministically and identically to serial.
func TestParallelTypeValidationDeterministic(t *testing.T) {
	fx := newParallelFixture(t, 64, 19)
	ti := make([]int, len(fx.types))
	copy(ti, fx.types)
	ti[40] = 99 // outside the 2-type coefficient RAM
	js, err := NewJSet(fx.grid, fx.pos, fx.types)
	if err != nil {
		t.Fatal(err)
	}
	serialErr := func() error {
		sys := newParallelSystem(t, 0)
		_, err := sys.ComputePotentials("g", fx.co, fx.pos, ti, nil, js)
		return err
	}()
	if serialErr == nil {
		t.Fatal("serial pass accepted out-of-range type")
	}
	sys := newParallelSystem(t, 4)
	_, parErr := sys.ComputePotentials("g", fx.co, fx.pos, ti, nil, js)
	if parErr == nil {
		t.Fatal("parallel pass accepted out-of-range type")
	}
	if parErr.Error() != serialErr.Error() {
		t.Fatalf("parallel error %q differs from serial %q", parErr, serialErr)
	}
}
