package mdgrape2

import (
	"math"
	"testing"

	"mdm/internal/cellindex"
	"mdm/internal/fault"
	"mdm/internal/parallelize"
	"mdm/internal/vec"
)

// fusedFixture loads three distinct kernels into a system and builds matching
// coefficient RAMs with per-type-pair structure.
func fusedFixture(t *testing.T) (*System, []ForcePass, []vec.V, []int, *JSet) {
	t.Helper()
	sys, err := NewSystem(CurrentConfig())
	if err != nil {
		t.Fatal(err)
	}
	kernels := map[string]func(float64) float64{
		"k-exp":  func(x float64) float64 { return math.Exp(-x) },
		"k-r6":   func(x float64) float64 { x2 := x * x; return 1 / (x2 * x2) },
		"k-sqrt": func(x float64) float64 { s := math.Sqrt(x); return math.Exp(-s) / s },
	}
	for name, g := range kernels {
		if err := sys.LoadTable(name, g, -8, 8); err != nil {
			t.Fatal(err)
		}
	}
	l := 9.0
	pos, types, _ := naclSystem(200, l, 7)
	grid, err := cellindex.NewGrid(l, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	js, err := NewJSet(grid, pos, types)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(b00, b01, b11 float64) *Coeffs {
		co, _ := NewCoeffs(2, 1, 0)
		co.Set(0, 0, 1.0, b00)
		co.Set(0, 1, 0.9, b01)
		co.Set(1, 1, 1.1, b11)
		return co
	}
	scale := make([]float64, len(pos))
	for i := range scale {
		scale[i] = 0.5
	}
	passes := []ForcePass{
		{Table: "k-exp", Co: mk(1, -1, 1), ScaleI: scale},
		{Table: "k-sqrt", Co: mk(2, 3, 4), ScaleI: nil},
		{Table: "k-r6", Co: mk(-6, -5, -4), ScaleI: nil},
	}
	return sys, passes, pos, types, js
}

// unfusedReference runs the passes back-to-back through ComputeForces and
// combines them in pass order — the pre-fusion Machine.Forces reduction.
func unfusedReference(t *testing.T, sys *System, passes []ForcePass, xi []vec.V, ti []int, js *JSet) []vec.V {
	t.Helper()
	var total []vec.V
	for p, pass := range passes {
		f, err := sys.ComputeForces(pass.Table, pass.Co, xi, ti, pass.ScaleI, js)
		if err != nil {
			t.Fatal(err)
		}
		if p == 0 {
			total = f
		} else {
			for i := range total {
				total[i] = total[i].Add(f[i])
			}
		}
	}
	return total
}

// TestFusedMatchesUnfusedBitExact pins the fused sweep to the unfused
// pass-by-pass reduction bit-for-bit, at several pool widths.
func TestFusedMatchesUnfusedBitExact(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		sys, passes, pos, types, js := fusedFixture(t)
		sys.SetPool(parallelize.New(workers))
		want := unfusedReference(t, sys, passes, pos, types, js)
		got, err := sys.ComputeForcesFused(passes, pos, types, js)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: force %d differs: fused %v vs unfused %v",
					workers, i, got[i], want[i])
			}
		}
	}
}

// TestFusedStatsMatchUnfused checks the fused sweep books the same hardware
// work as the pass-by-pass path (the timing model depends on it).
func TestFusedStatsMatchUnfused(t *testing.T) {
	sys, passes, pos, types, js := fusedFixture(t)
	_ = unfusedReference(t, sys, passes, pos, types, js)
	unfused := sys.Stats()
	sys.ResetStats()
	if _, err := sys.ComputeForcesFused(passes, pos, types, js); err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats(); got != unfused {
		t.Fatalf("fused stats %+v != unfused %+v", got, unfused)
	}
}

// TestFusedFaultSequence checks the fused sweep consumes injector events in
// the same order as back-to-back passes: a transient scheduled on the k-th
// hardware call fails the k-th pass, and an armed bit flip lands in that
// pass's contribution exactly as the unfused path applies it.
func TestFusedFaultSequence(t *testing.T) {
	// Transient on the 2nd MDG2 call of the step.
	sys, passes, pos, types, js := fusedFixture(t)
	in, err := fault.ParseInjector("mdg:transient@call=2")
	if err != nil {
		t.Fatal(err)
	}
	sys.SetFaultHook(in)
	if _, err := sys.ComputeForcesFused(passes, pos, types, js); err == nil {
		t.Fatal("transient on pass 2 not surfaced")
	}
	// Same schedule against the unfused sequence errors on the same pass.
	sys2, passes2, pos2, types2, js2 := fusedFixture(t)
	in2, err := fault.ParseInjector("mdg:transient@call=2")
	if err != nil {
		t.Fatal(err)
	}
	sys2.SetFaultHook(in2)
	if _, err := sys2.ComputeForces(passes2[0].Table, passes2[0].Co, pos2, types2, passes2[0].ScaleI, js2); err != nil {
		t.Fatalf("pass 1 should succeed: %v", err)
	}
	if _, err := sys2.ComputeForces(passes2[1].Table, passes2[1].Co, pos2, types2, passes2[1].ScaleI, js2); err == nil {
		t.Fatal("unfused pass 2 should fail")
	}

	// Bit flip armed for the 3rd call lands identically in both paths.
	sysA, passesA, posA, typesA, jsA := fusedFixture(t)
	inA, err := fault.ParseInjector("mdg:bitflip@call=3,word=41,bit=51")
	if err != nil {
		t.Fatal(err)
	}
	sysA.SetFaultHook(inA)
	gotA, err := sysA.ComputeForcesFused(passesA, posA, typesA, jsA)
	if err != nil {
		t.Fatal(err)
	}
	sysB, passesB, posB, typesB, jsB := fusedFixture(t)
	inB, err := fault.ParseInjector("mdg:bitflip@call=3,word=41,bit=51")
	if err != nil {
		t.Fatal(err)
	}
	sysB.SetFaultHook(inB)
	wantB := unfusedReference(t, sysB, passesB, posB, typesB, jsB)
	flipped := false
	for i := range wantB {
		if gotA[i] != wantB[i] {
			t.Fatalf("flip landed differently at %d: %v vs %v", i, gotA[i], wantB[i])
		}
	}
	// Confirm the flip actually fired (results differ from a clean run).
	sysC, passesC, posC, typesC, jsC := fusedFixture(t)
	clean, err := sysC.ComputeForcesFused(passesC, posC, typesC, jsC)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if clean[i] != gotA[i] {
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("bit flip did not fire")
	}
}

// TestJSetBuilderMatchesNewJSet pins the builder's reused layout to a fresh
// NewJSetPool build, including after Refresh with unchanged cells.
func TestJSetBuilderMatchesNewJSet(t *testing.T) {
	l := 9.0
	pos, types, _ := naclSystem(300, l, 11)
	grid, err := cellindex.NewGrid(l, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	pool := parallelize.New(4)
	b := NewJSetBuilder(grid, pool)
	for trial := 0; trial < 3; trial++ {
		js, err := b.Build(pos, types, pool)
		if err != nil {
			t.Fatal(err)
		}
		want, err := NewJSetPool(grid, pos, types, nil, pool)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < want.Sorted.Len(); k++ {
			if js.Sorted.At(k) != want.Sorted.At(k) || js.Types[k] != want.Types[k] {
				t.Fatalf("trial %d: sorted slot %d differs", trial, k)
			}
		}
		// Perturb within a cell and refresh.
		for i := range pos {
			pos[i] = pos[i].Add(vec.New(1e-7, -1e-7, 1e-7))
		}
		if _, err := b.Refresh(pos); err != nil {
			t.Fatal(err)
		}
		for k, orig := range js.Sorted.Order {
			if js.Sorted.At(k) != pos[orig].Wrap(l) {
				t.Fatalf("trial %d: refreshed slot %d stale", trial, k)
			}
		}
	}
}
