package domain

import "fmt"

// Blocks is a cell-aligned spatial decomposition: the nc×nc×nc cell grid of
// the real-space discretization is split into px×py×pz contiguous blocks of
// whole cells, one block per real-space rank. Cells are the atomic unit of
// ownership — every cell belongs to exactly one rank, and a rank owns
// exactly the particles whose cell it owns. Aligning ownership to the cell
// grid keeps the decomposed pair walk identical to the serial one: each cell
// is filled by a single rank, so the within-cell particle order (ascending
// global index) is preserved no matter how many ranks share the box.
//
// Axis splits follow the same balanced convention as the wavenumber stripes:
// rank k along an axis of p ranks owns cells [k·nc/p, (k+1)·nc/p). When p
// exceeds nc some blocks are empty; empty ranks still participate in every
// exchange with empty payloads, so any rank count works on any grid.
type Blocks struct {
	NC         int // cells per axis of the underlying grid
	Px, Py, Pz int // ranks per axis (largest first along x, like New)
}

// NewBlocks splits an nc×nc×nc cell grid across n ranks.
func NewBlocks(nc, n int) (*Blocks, error) {
	if nc < 1 {
		return nil, fmt.Errorf("domain: cell grid side %d must be positive", nc)
	}
	if n < 1 {
		return nil, fmt.Errorf("domain: %d blocks must be positive", n)
	}
	px, py, pz := factor3(n)
	return &Blocks{NC: nc, Px: px, Py: py, Pz: pz}, nil
}

// NumRanks returns the number of blocks.
func (b *Blocks) NumRanks() int { return b.Px * b.Py * b.Pz }

// RankIndex flattens per-axis rank coordinates (same convention as
// Decomposition.Index).
func (b *Blocks) RankIndex(rx, ry, rz int) int {
	return (rz*b.Py+ry)*b.Px + rx
}

// RankCoords inverts RankIndex.
func (b *Blocks) RankCoords(r int) (rx, ry, rz int) {
	rx = r % b.Px
	ry = (r / b.Px) % b.Py
	rz = r / (b.Px * b.Py)
	return rx, ry, rz
}

// axisSpan returns the half-open cell range [lo, hi) owned by rank k of p
// along one axis. The range may be empty when p > nc.
func (b *Blocks) axisSpan(k, p int) (lo, hi int) {
	return k * b.NC / p, (k + 1) * b.NC / p
}

// axisOwner returns which of the p ranks along an axis owns cell ic: the
// unique k with k·nc/p ≤ ic < (k+1)·nc/p, in closed form
// k = ceil((ic+1)·p/nc) − 1.
func (b *Blocks) axisOwner(ic, p int) int {
	return ((ic+1)*p - 1) / b.NC
}

// Owner returns the rank owning flat cell index c. The flat layout matches
// cellindex.Grid.Index: c = (iz·nc + iy)·nc + ix.
func (b *Blocks) Owner(c int) int {
	ix := c % b.NC
	iy := (c / b.NC) % b.NC
	iz := c / (b.NC * b.NC)
	return b.RankIndex(b.axisOwner(ix, b.Px), b.axisOwner(iy, b.Py), b.axisOwner(iz, b.Pz))
}

// CellSpan returns the half-open cell ranges of rank r's block along each
// axis. Any range may be empty.
func (b *Blocks) CellSpan(r int) (xlo, xhi, ylo, yhi, zlo, zhi int) {
	rx, ry, rz := b.RankCoords(r)
	xlo, xhi = b.axisSpan(rx, b.Px)
	ylo, yhi = b.axisSpan(ry, b.Py)
	zlo, zhi = b.axisSpan(rz, b.Pz)
	return
}

// OwnedCells returns the flat indices of the cells in rank r's block,
// ascending. Empty blocks return nil.
func (b *Blocks) OwnedCells(r int) []int {
	xlo, xhi, ylo, yhi, zlo, zhi := b.CellSpan(r)
	var out []int
	for iz := zlo; iz < zhi; iz++ {
		for iy := ylo; iy < yhi; iy++ {
			for ix := xlo; ix < xhi; ix++ {
				out = append(out, (iz*b.NC+iy)*b.NC+ix)
			}
		}
	}
	return out
}

// GhostCells returns the flat indices of the cells rank r needs as ghosts:
// every cell in the periodic one-cell dilation of its block that it does not
// own itself, ascending and deduplicated (small grids wrap the dilation onto
// the block itself). An empty block has no ghost shell.
func (b *Blocks) GhostCells(r int) []int {
	xlo, xhi, ylo, yhi, zlo, zhi := b.CellSpan(r)
	if xlo >= xhi || ylo >= yhi || zlo >= zhi {
		return nil
	}
	need := make([]bool, b.NC*b.NC*b.NC)
	for iz := zlo - 1; iz < zhi+1; iz++ {
		wz := wrapIdx(iz, b.NC)
		for iy := ylo - 1; iy < yhi+1; iy++ {
			wy := wrapIdx(iy, b.NC)
			for ix := xlo - 1; ix < xhi+1; ix++ {
				wx := wrapIdx(ix, b.NC)
				need[(wz*b.NC+wy)*b.NC+wx] = true
			}
		}
	}
	out := make([]int, 0, len(need))
	for c, n := range need {
		if n && b.Owner(c) != r {
			out = append(out, c)
		}
	}
	return out
}

func wrapIdx(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}
