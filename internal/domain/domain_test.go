package domain

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mdm/internal/vec"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 16); err == nil {
		t.Error("zero box accepted")
	}
	if _, err := New(10, 0); err == nil {
		t.Error("zero domains accepted")
	}
}

func TestFactor3(t *testing.T) {
	cases := map[int][3]int{
		16: {4, 2, 2}, // the paper's decomposition
		8:  {2, 2, 2},
		1:  {1, 1, 1},
		12: {3, 2, 2},
		27: {3, 3, 3},
		7:  {7, 1, 1},
	}
	for n, want := range cases {
		a, b, c := factor3(n)
		if a*b*c != n {
			t.Errorf("factor3(%d) = %d×%d×%d ≠ %d", n, a, b, c, n)
		}
		if [3]int{a, b, c} != want {
			t.Errorf("factor3(%d) = (%d,%d,%d), want %v", n, a, b, c, want)
		}
	}
}

func TestPaperDecomposition(t *testing.T) {
	d, err := New(850, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumDomains() != 16 {
		t.Errorf("domains = %d", d.NumDomains())
	}
	if d.Nx != 4 || d.Ny != 2 || d.Nz != 2 {
		t.Errorf("grid = %d×%d×%d", d.Nx, d.Ny, d.Nz)
	}
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	d, _ := New(10, 12)
	for dom := 0; dom < d.NumDomains(); dom++ {
		x, y, z := d.Coords(dom)
		if got := d.Index(x, y, z); got != dom {
			t.Fatalf("round trip %d -> %d", dom, got)
		}
	}
}

func TestDomainOfRespectsBounds(t *testing.T) {
	d, _ := New(20, 16)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 1000; trial++ {
		p := vec.New(rng.Float64()*20, rng.Float64()*20, rng.Float64()*20)
		dom := d.DomainOf(p)
		lo, hi := d.Bounds(dom)
		w := p.Wrap(20)
		if w.X < lo.X || w.X >= hi.X || w.Y < lo.Y || w.Y >= hi.Y || w.Z < lo.Z || w.Z >= hi.Z {
			t.Fatalf("p = %v assigned to domain %d with bounds [%v, %v)", p, dom, lo, hi)
		}
	}
}

func TestPartitionCoversAll(t *testing.T) {
	d, _ := New(15, 16)
	rng := rand.New(rand.NewSource(2))
	pos := make([]vec.V, 500)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*15, rng.Float64()*15, rng.Float64()*15)
	}
	parts := d.Partition(pos)
	seen := make([]bool, len(pos))
	total := 0
	for dom, idx := range parts {
		for _, i := range idx {
			if seen[i] {
				t.Fatalf("particle %d in two domains", i)
			}
			seen[i] = true
			if d.DomainOf(pos[i]) != dom {
				t.Fatalf("particle %d misfiled", i)
			}
			total++
		}
	}
	if total != len(pos) {
		t.Fatalf("partition covers %d of %d", total, len(pos))
	}
}

func TestHaloMatchesBruteForce(t *testing.T) {
	const l = 12.0
	const rcut = 2.0
	d, _ := New(l, 8)
	rng := rand.New(rand.NewSource(3))
	pos := make([]vec.V, 400)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
	}
	for dom := 0; dom < d.NumDomains(); dom++ {
		halo := map[int]bool{}
		for _, i := range d.HaloOf(dom, pos, rcut) {
			halo[i] = true
		}
		// Brute force: a non-owned particle belongs to the halo iff some
		// owned point... approximate oracle: check the guarantee that every
		// pair (owned, other) within rcut has the other in the halo.
		owned := map[int]bool{}
		for i, p := range pos {
			if d.DomainOf(p) == dom {
				owned[i] = true
			}
		}
		for i := range owned {
			for j := range pos {
				if owned[j] || i == j {
					continue
				}
				if vec.DistPeriodic(pos[i], pos[j], l) < rcut && !halo[j] {
					t.Fatalf("domain %d: particle %d within rcut of owned %d but not in halo", dom, j, i)
				}
			}
		}
		// No owned particle may appear in its own halo.
		for i := range halo {
			if owned[i] {
				t.Fatalf("domain %d: owned particle %d in halo", dom, i)
			}
		}
	}
}

func TestInHaloInsideBox(t *testing.T) {
	d, _ := New(10, 8)
	lo, hi := d.Bounds(3)
	center := lo.Add(hi).Scale(0.5)
	if !d.InHalo(3, center, 0.1) {
		t.Error("center of domain not in its halo region")
	}
}

func TestDistToBoxPeriodic(t *testing.T) {
	// Interval [0, 5) in a box of 10: x = 9.5 is 0.5 away through the wrap.
	if got := distToBox(9.5, 0, 5, 10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("distToBox(9.5) = %g, want 0.5", got)
	}
	if got := distToBox(2, 0, 5, 10); got != 0 {
		t.Errorf("distToBox(inside) = %g", got)
	}
	if got := distToBox(6, 0, 5, 10); math.Abs(got-1) > 1e-12 {
		t.Errorf("distToBox(6) = %g, want 1", got)
	}
}

// Property: halo membership is invariant under whole-box translation.
func TestHaloPeriodicProperty(t *testing.T) {
	d, _ := New(10, 16)
	f := func(x, y, z float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) || math.IsNaN(z) || math.IsInf(z, 0) {
			return true
		}
		p := vec.New(math.Mod(x, 10), math.Mod(y, 10), math.Mod(z, 10))
		shifted := p.Add(vec.New(10, -10, 20))
		return d.InHalo(5, p, 1.5) == d.InHalo(5, shifted, 1.5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDomainFaceAssignment pins the half-open ownership convention for
// particles exactly on a domain face: the face belongs to the upper domain,
// and the assignment agrees with Bounds bit-for-bit even when the box side
// is not exactly divisible.
func TestDomainFaceAssignment(t *testing.T) {
	for _, l := range []float64{10, 8.523, 28.2, 1.0 / 3.0 * 30} {
		for _, n := range []int{2, 8, 12, 16, 27} {
			d, err := New(l, n)
			if err != nil {
				t.Fatal(err)
			}
			for dom := 0; dom < d.NumDomains(); dom++ {
				lo, hi := d.Bounds(dom)
				// The lower-left corner is owned by this domain...
				if got := d.DomainOf(lo); got != dom {
					glo, ghi := d.Bounds(got)
					t.Fatalf("l=%g n=%d: corner %v of domain %d [%v,%v) assigned to %d [%v,%v)",
						l, n, lo, dom, lo, hi, got, glo, ghi)
				}
				// ...and the upper corner is not (it is the lower corner of a
				// neighbor, possibly through the periodic wrap).
				if hi.X < l && hi.Y < l && hi.Z < l {
					if got := d.DomainOf(hi); got == dom {
						t.Fatalf("l=%g n=%d: upper corner %v still assigned to domain %d", l, n, hi, dom)
					}
				}
				// Face midpoints: exactly on the x-face between dom and its
				// +x neighbor.
				mid := vec.New(hi.X, (lo.Y+hi.Y)/2, (lo.Z+hi.Z)/2)
				got := d.DomainOf(mid)
				glo, _ := d.Bounds(got)
				w := mid.Wrap(l)
				if w.X < glo.X {
					t.Fatalf("l=%g n=%d: face point %v assigned below its face (domain %d, lo.X=%g)", l, n, mid, got, glo.X)
				}
			}
		}
	}
}

// TestInHaloMinimumImageWrap pins the periodic minimum-image behavior of
// InHalo and HaloOf: a particle just inside the far side of the box is in
// the halo of the domain block touching the near side, through the wrap.
func TestInHaloMinimumImageWrap(t *testing.T) {
	const l = 10.0
	d, _ := New(l, 8) // 2×2×2 domains of side 5
	// Domain 0 is [0,5)³. A particle at x=9.9 is 0.1 away through the wrap.
	p := vec.New(9.9, 2.5, 2.5)
	if !d.InHalo(0, p, 0.2) {
		t.Error("wrap neighbor at distance 0.1 not in halo (rcut 0.2)")
	}
	if d.InHalo(0, p, 0.05) {
		t.Error("wrap neighbor at distance 0.1 in halo at rcut 0.05")
	}
	// Corner wrap: distance is the 3-D diagonal through the periodic corner.
	q := vec.New(9.9, 9.9, 9.9) // 0.1 beyond the corner of domain 0 in all axes
	want := math.Sqrt(3 * 0.1 * 0.1)
	if !d.InHalo(0, q, want+1e-9) {
		t.Errorf("corner wrap at distance %g not in halo", want)
	}
	if d.InHalo(0, q, want-1e-3) {
		t.Errorf("corner wrap at distance %g in halo below that radius", want)
	}
	// HaloOf must agree with InHalo and exclude owned particles.
	pos := []vec.V{p, q, vec.New(2.5, 2.5, 2.5)}
	// rcut 0.15 reaches p (0.1 through the face wrap) but not q (√0.03 ≈
	// 0.173 through the corner wrap), and never the owned particle.
	halo := d.HaloOf(0, pos, 0.15)
	if len(halo) != 1 || halo[0] != 0 {
		t.Errorf("HaloOf = %v, want [0]", halo)
	}
}

// TestFactor3Property: for every n the three factors multiply back to n,
// are non-increasing, and have the minimal spread over all factorizations
// (the near-cubic requirement of the §4 decomposition).
func TestFactor3Property(t *testing.T) {
	for n := 1; n <= 400; n++ {
		a, b, c := factor3(n)
		if a*b*c != n {
			t.Fatalf("factor3(%d) = %d×%d×%d ≠ %d", n, a, b, c, n)
		}
		if !(a >= b && b >= c) {
			t.Fatalf("factor3(%d) = (%d,%d,%d) not non-increasing", n, a, b, c)
		}
		// Brute-force minimal spread.
		best := n - 1
		for x := 1; x*x*x <= n; x++ {
			if n%x != 0 {
				continue
			}
			m := n / x
			for y := x; y*y <= m; y++ {
				if m%y == 0 && m/y-x < best {
					best = m/y - x
				}
			}
		}
		if a-c != best {
			t.Fatalf("factor3(%d) spread %d, minimal %d", n, a-c, best)
		}
	}
}

func BenchmarkHaloOf(b *testing.B) {
	const l = 30.0
	d, _ := New(l, 16)
	rng := rand.New(rand.NewSource(1))
	pos := make([]vec.V, 5000)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.HaloOf(i%16, pos, 3.0)
	}
}
