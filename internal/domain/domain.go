// Package domain implements the spatial domain decomposition of the paper's
// MD software (§4): "The simulation box is divided into 16 domains, and one
// process for real-space part performs all the calculation in each domain."
//
// A Decomposition splits the cubic box into a nx×ny×nz grid of rectangular
// domains (16 → 4×2×2). Each MPI rank owns the particles inside its domain
// and, before calling the MDGRAPE-2 force routine, must obtain the positions
// of neighboring particles within r_cut of its boundary — "that is what you
// have to manage with MPI routines". HaloOf computes exactly that set under
// periodic boundary conditions.
package domain

import (
	"fmt"
	"math"

	"mdm/internal/vec"
)

// Decomposition is a static split of a cubic box into rectangular domains.
type Decomposition struct {
	L          float64 // box side
	Nx, Ny, Nz int     // domains per dimension
}

// New splits the box into n domains, factoring n into three near-equal
// factors (largest first along x).
func New(l float64, n int) (*Decomposition, error) {
	if l <= 0 {
		return nil, fmt.Errorf("domain: box side %g must be positive", l)
	}
	if n < 1 {
		return nil, fmt.Errorf("domain: %d domains must be positive", n)
	}
	nx, ny, nz := factor3(n)
	return &Decomposition{L: l, Nx: nx, Ny: ny, Nz: nz}, nil
}

// factor3 factors n into three factors as close to each other as possible,
// returned in non-increasing order.
func factor3(n int) (int, int, int) {
	best := [3]int{n, 1, 1}
	bestSpread := n - 1
	for a := 1; a*a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		m := n / a
		for b := a; b*b <= m; b++ {
			if m%b != 0 {
				continue
			}
			c := m / b
			spread := c - a
			if spread < bestSpread {
				bestSpread = spread
				best = [3]int{c, b, a}
			}
		}
	}
	return best[0], best[1], best[2]
}

// NumDomains returns the domain count.
func (d *Decomposition) NumDomains() int { return d.Nx * d.Ny * d.Nz }

// widths returns the domain extent in each dimension.
func (d *Decomposition) widths() (wx, wy, wz float64) {
	return d.L / float64(d.Nx), d.L / float64(d.Ny), d.L / float64(d.Nz)
}

// Index flattens domain coordinates.
func (d *Decomposition) Index(ix, iy, iz int) int {
	return (iz*d.Ny+iy)*d.Nx + ix
}

// Coords inverts Index.
func (d *Decomposition) Coords(dom int) (ix, iy, iz int) {
	ix = dom % d.Nx
	iy = (dom / d.Nx) % d.Ny
	iz = dom / (d.Nx * d.Ny)
	return ix, iy, iz
}

// DomainOf returns the domain owning position p (wrapped into the box).
func (d *Decomposition) DomainOf(p vec.V) int {
	w := p.Wrap(d.L)
	wx, wy, wz := d.widths()
	ix := clampIdx(int(w.X/wx), d.Nx)
	iy := clampIdx(int(w.Y/wy), d.Ny)
	iz := clampIdx(int(w.Z/wz), d.Nz)
	return d.Index(ix, iy, iz)
}

func clampIdx(i, n int) int {
	if i >= n {
		return n - 1
	}
	if i < 0 {
		return 0
	}
	return i
}

// Bounds returns the half-open box [lo, hi) of a domain.
func (d *Decomposition) Bounds(dom int) (lo, hi vec.V) {
	ix, iy, iz := d.Coords(dom)
	wx, wy, wz := d.widths()
	lo = vec.New(float64(ix)*wx, float64(iy)*wy, float64(iz)*wz)
	hi = vec.New(float64(ix+1)*wx, float64(iy+1)*wy, float64(iz+1)*wz)
	return lo, hi
}

// Partition returns, for each domain, the indices of the particles it owns.
// Two passes: count first, then fill exactly-sized lists, so the per-domain
// slices never regrow.
func (d *Decomposition) Partition(pos []vec.V) [][]int {
	counts := make([]int, d.NumDomains())
	for _, p := range pos {
		counts[d.DomainOf(p)]++
	}
	out := make([][]int, d.NumDomains())
	for dom, c := range counts {
		out[dom] = make([]int, 0, c)
	}
	for i, p := range pos {
		dom := d.DomainOf(p)
		out[dom] = append(out[dom], i)
	}
	return out
}

// distToBox returns the periodic distance from x to the interval [lo, hi)
// along one axis of a box with period l.
func distToBox(x, lo, hi, l float64) float64 {
	// Consider x, x±l relative to the interval.
	best := math.Inf(1)
	for _, xx := range [3]float64{x - l, x, x + l} {
		var d float64
		switch {
		case xx < lo:
			d = lo - xx
		case xx >= hi:
			d = xx - hi
		default:
			d = 0
		}
		if d < best {
			best = d
		}
	}
	return best
}

// InHalo reports whether position p lies within rcut of domain dom's box
// under periodic boundary conditions (positions inside the box count too).
func (d *Decomposition) InHalo(dom int, p vec.V, rcut float64) bool {
	lo, hi := d.Bounds(dom)
	w := p.Wrap(d.L)
	dx := distToBox(w.X, lo.X, hi.X, d.L)
	if dx > rcut {
		return false
	}
	dy := distToBox(w.Y, lo.Y, hi.Y, d.L)
	if dy > rcut {
		return false
	}
	dz := distToBox(w.Z, lo.Z, hi.Z, d.L)
	return dx*dx+dy*dy+dz*dz <= rcut*rcut
}

// HaloOf returns the indices of positions that lie within rcut of domain
// dom's boundary but are NOT owned by dom — the neighbor particles a process
// must receive before the real-space force call.
func (d *Decomposition) HaloOf(dom int, pos []vec.V, rcut float64) []int {
	var out []int
	for i, p := range pos {
		if d.DomainOf(p) == dom {
			continue
		}
		if d.InHalo(dom, p, rcut) {
			out = append(out, i)
		}
	}
	return out
}
