package domain

import (
	"testing"
)

// bruteAxisOwner is the linear-scan oracle for the closed-form axisOwner.
func bruteAxisOwner(ic, nc, p int) int {
	for k := 0; k < p; k++ {
		lo, hi := k*nc/p, (k+1)*nc/p
		if lo <= ic && ic < hi {
			return k
		}
	}
	return -1
}

func TestBlocksAxisOwnerClosedForm(t *testing.T) {
	for nc := 1; nc <= 12; nc++ {
		for p := 1; p <= 20; p++ {
			b := &Blocks{NC: nc, Px: p, Py: 1, Pz: 1}
			for ic := 0; ic < nc; ic++ {
				want := bruteAxisOwner(ic, nc, p)
				if got := b.axisOwner(ic, p); got != want {
					t.Fatalf("nc=%d p=%d: axisOwner(%d) = %d, want %d", nc, p, ic, got, want)
				}
			}
		}
	}
}

func TestBlocksOwnerPartitionsCells(t *testing.T) {
	for _, tc := range []struct{ nc, n int }{
		{3, 1}, {3, 4}, {4, 8}, {5, 16}, {2, 16}, {6, 12}, {7, 7}, {1, 8},
	} {
		b, err := NewBlocks(tc.nc, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if b.NumRanks() != tc.n {
			t.Fatalf("nc=%d n=%d: NumRanks = %d", tc.nc, tc.n, b.NumRanks())
		}
		// Every cell owned by exactly one rank, and OwnedCells inverts Owner.
		ownerOf := make([]int, tc.nc*tc.nc*tc.nc)
		for c := range ownerOf {
			ownerOf[c] = -1
		}
		for r := 0; r < b.NumRanks(); r++ {
			for _, c := range b.OwnedCells(r) {
				if ownerOf[c] != -1 {
					t.Fatalf("nc=%d n=%d: cell %d owned by both %d and %d", tc.nc, tc.n, c, ownerOf[c], r)
				}
				ownerOf[c] = r
				if b.Owner(c) != r {
					t.Fatalf("nc=%d n=%d: Owner(%d) = %d, OwnedCells says %d", tc.nc, tc.n, c, b.Owner(c), r)
				}
			}
		}
		for c, r := range ownerOf {
			if r == -1 {
				t.Fatalf("nc=%d n=%d: cell %d unowned", tc.nc, tc.n, c)
			}
		}
	}
}

func TestBlocksGhostCells(t *testing.T) {
	for _, tc := range []struct{ nc, n int }{
		{3, 4}, {4, 8}, {5, 16}, {2, 16}, {6, 12}, {3, 27},
	} {
		b, err := NewBlocks(tc.nc, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		nc := tc.nc
		// Oracle: cell g is a ghost of rank r iff r does not own g and g is a
		// periodic 27-neighbor of some cell r owns.
		adjacent := func(a, g int) bool {
			ax, ay, az := a%nc, (a/nc)%nc, a/(nc*nc)
			gx, gy, gz := g%nc, (g/nc)%nc, g/(nc*nc)
			near := func(u, v int) bool {
				d := u - v
				if d < 0 {
					d = -d
				}
				return d <= 1 || d >= nc-1
			}
			return near(ax, gx) && near(ay, gy) && near(az, gz)
		}
		for r := 0; r < b.NumRanks(); r++ {
			owned := b.OwnedCells(r)
			got := map[int]bool{}
			prev := -1
			for _, g := range b.GhostCells(r) {
				if g <= prev {
					t.Fatalf("nc=%d n=%d rank %d: ghost cells not strictly ascending", tc.nc, tc.n, r)
				}
				prev = g
				got[g] = true
			}
			for g := 0; g < nc*nc*nc; g++ {
				want := false
				if b.Owner(g) != r {
					for _, a := range owned {
						if adjacent(a, g) {
							want = true
							break
						}
					}
				}
				if got[g] != want {
					t.Fatalf("nc=%d n=%d rank %d: ghost(%d) = %v, want %v", tc.nc, tc.n, r, g, got[g], want)
				}
			}
		}
	}
}

func TestBlocksEmptyRanks(t *testing.T) {
	// 16 ranks on a 2³ grid: only 8 cells, so at least 8 blocks are empty.
	b, err := NewBlocks(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	empty := 0
	for r := 0; r < b.NumRanks(); r++ {
		if len(b.OwnedCells(r)) == 0 {
			empty++
			if g := b.GhostCells(r); g != nil {
				t.Fatalf("empty rank %d has ghost cells %v", r, g)
			}
		}
	}
	if empty != 8 {
		t.Fatalf("16 ranks on 2³ cells: %d empty ranks, want 8", empty)
	}
}

func TestBlocksValidation(t *testing.T) {
	if _, err := NewBlocks(0, 4); err == nil {
		t.Error("zero grid accepted")
	}
	if _, err := NewBlocks(3, 0); err == nil {
		t.Error("zero ranks accepted")
	}
}
