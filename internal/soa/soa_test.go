package soa

import (
	"math"
	"testing"

	"mdm/internal/vec"
)

func TestRoundTripBitIdentical(t *testing.T) {
	pos := make([]vec.V, 37)
	for i := range pos {
		// Irrational-ish values exercise every mantissa bit.
		pos[i] = vec.New(math.Sqrt(float64(i)+2), -math.Pi*float64(i), 1/float64(i+3))
	}
	var c Coords
	c = c.FromAoS(pos)
	if c.Len() != len(pos) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(pos))
	}
	back := c.AppendAoS(nil)
	for i := range pos {
		if back[i] != pos[i] {
			t.Fatalf("round trip changed element %d: %v != %v", i, back[i], pos[i])
		}
		if c.At(i) != pos[i] {
			t.Fatalf("At(%d) = %v, want %v", i, c.At(i), pos[i])
		}
	}
}

func TestResizeReusesBacking(t *testing.T) {
	c := Make(64)
	x0 := &c.X[0]
	c = c.Resize(32)
	if &c.X[0] != x0 {
		t.Fatal("Resize to a smaller length reallocated")
	}
	c = c.Resize(64)
	if &c.X[0] != x0 {
		t.Fatal("Resize within capacity reallocated")
	}
	if got := c.Resize(65); got.Len() != 65 {
		t.Fatalf("grow length = %d, want 65", got.Len())
	}
}

func TestCoords32MirrorsNarrowing(t *testing.T) {
	var c32 Coords32
	c32 = c32.Resize(3)
	v := vec.New(1.0000000001, -math.Pi, 1e-40)
	c32.Set(1, v)
	if c32.X[1] != float32(v.X) || c32.Y[1] != float32(v.Y) || c32.Z[1] != float32(v.Z) {
		t.Fatal("float32 mirror differs from per-element float32() conversion")
	}
}

func TestFrameFromAoS(t *testing.T) {
	pos := []vec.V{vec.New(1, 2, 3), vec.New(4, 5, 6)}
	q := []float64{1, -1}
	sp := []int{0, 1}
	var f Frame
	f = f.FromAoS(pos, q, sp)
	if f.Pos.At(1) != pos[1] || f.Charge[0] != 1 || f.Species[1] != 1 {
		t.Fatal("Frame conversion lost data")
	}
	// Mutating the frame must not alias the source.
	f.Charge[0] = 7
	if q[0] != 1 {
		t.Fatal("Frame aliases the source charge slice")
	}
}
