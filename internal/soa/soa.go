// Package soa provides structure-of-arrays particle storage for the
// step-critical kernels. The MDM's pipelines stream particle data from flat
// banked memories — j-particle memory on MDGRAPE-2 (§3.3), coordinate words
// on WINE-2 (§3.2) — one coordinate plane per bank, never as interleaved
// structs. The software reproduction mirrors that layout on the hot path:
// three contiguous float64 planes (plus an optional float32 mirror feeding
// the single-precision pipelines), converted to and from the []vec.V
// array-of-structs form only at the public md/mdm API boundary.
//
// Conversions are pure data movement: loading X[i] from a plane yields the
// same float64 the AoS form holds in Pos[i].X, so every kernel refactored
// onto planes stays bit-identical to its AoS ancestor.
package soa

import "mdm/internal/vec"

// Coords is one particle block in structure-of-arrays form: three equal-
// length coordinate planes.
type Coords struct {
	X, Y, Z []float64
}

// Make returns planes of length n, carved from one backing slab (one bank
// allocation per block, as the hardware commits one SDRAM region). The
// three-index slices cap each plane at its own length, so a plane can never
// grow into its neighbor and Resize's capacity check stays sound.
func Make(n int) Coords {
	s := make([]float64, 3*n)
	return Coords{X: s[0:n:n], Y: s[n : 2*n : 2*n], Z: s[2*n : 3*n : 3*n]}
}

// Len returns the plane length.
func (c Coords) Len() int { return len(c.X) }

// Resize returns planes of length n, reusing c's backing arrays when they
// are large enough (the amortized step-path contract: no steady-state
// allocation once capacity has been reached).
func (c Coords) Resize(n int) Coords {
	if cap(c.X) >= n {
		return Coords{X: c.X[:n], Y: c.Y[:n], Z: c.Z[:n]}
	}
	return Make(n)
}

// At gathers element i into a vector.
func (c Coords) At(i int) vec.V { return vec.V{X: c.X[i], Y: c.Y[i], Z: c.Z[i]} }

// Set scatters v into element i.
func (c Coords) Set(i int, v vec.V) {
	c.X[i] = v.X
	c.Y[i] = v.Y
	c.Z[i] = v.Z
}

// FromAoS scatters an array-of-structs block into planes, growing them as
// needed, and returns the (possibly reallocated) planes.
func (c Coords) FromAoS(pos []vec.V) Coords {
	c = c.Resize(len(pos))
	for i, p := range pos {
		c.X[i] = p.X
		c.Y[i] = p.Y
		c.Z[i] = p.Z
	}
	return c
}

// AppendAoS gathers the planes into dst (reused when large enough) and
// returns it in array-of-structs form.
func (c Coords) AppendAoS(dst []vec.V) []vec.V {
	n := c.Len()
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]vec.V, n)
	}
	for i := range dst {
		dst[i] = vec.V{X: c.X[i], Y: c.Y[i], Z: c.Z[i]}
	}
	return dst
}

// Zero clears the planes.
func (c Coords) Zero() {
	for i := range c.X {
		c.X[i] = 0
		c.Y[i] = 0
		c.Z[i] = 0
	}
}

// Coords32 is the float32 mirror of a Coords block — the j-particle image the
// single-precision pipelines read. Each element is float32(plane[i]), the
// same conversion the pair sweep previously performed per pair, hoisted to
// one conversion per particle per rebuild.
type Coords32 struct {
	X, Y, Z []float32
}

// Resize returns float32 planes of length n, reusing backing arrays when
// large enough; fresh planes are carved from one slab like Make's.
func (c Coords32) Resize(n int) Coords32 {
	if cap(c.X) >= n {
		return Coords32{X: c.X[:n], Y: c.Y[:n], Z: c.Z[:n]}
	}
	s := make([]float32, 3*n)
	return Coords32{X: s[0:n:n], Y: s[n : 2*n : 2*n], Z: s[2*n : 3*n : 3*n]}
}

// Set narrows v into element i.
func (c Coords32) Set(i int, v vec.V) {
	c.X[i] = float32(v.X)
	c.Y[i] = float32(v.Y)
	c.Z[i] = float32(v.Z)
}

// Frame is a full SoA particle block: coordinate planes plus the per-particle
// charge and species slices the force field reads alongside them.
type Frame struct {
	Pos     Coords
	Charge  []float64
	Species []int
}

// FromAoS converts an AoS particle block (positions, charges, species) into
// a Frame, reusing f's storage.
func (f Frame) FromAoS(pos []vec.V, charge []float64, species []int) Frame {
	f.Pos = f.Pos.FromAoS(pos)
	if cap(f.Charge) >= len(charge) {
		f.Charge = f.Charge[:len(charge)]
	} else {
		f.Charge = make([]float64, len(charge))
	}
	copy(f.Charge, charge)
	if cap(f.Species) >= len(species) {
		f.Species = f.Species[:len(species)]
	} else {
		f.Species = make([]int, len(species))
	}
	copy(f.Species, species)
	return f
}
