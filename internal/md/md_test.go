package md

import (
	"fmt"
	"math"
	"testing"

	"mdm/internal/tosifumi"
	"mdm/internal/units"
	"mdm/internal/vec"
)

// ljFF is a minimum-image all-pairs Lennard-Jones force field used to test
// the integrator in isolation (continuous potential, cheap at small N).
type ljFF struct {
	eps, sigma float64
}

func (l ljFF) Forces(s *System) ([]vec.V, float64, error) {
	f := make([]vec.V, s.N())
	pot := 0.0
	for i := 0; i < s.N(); i++ {
		for j := i + 1; j < s.N(); j++ {
			rij := s.Pos[i].Sub(s.Pos[j]).MinImage(s.L)
			r2 := rij.Norm2()
			sr2 := l.sigma * l.sigma / r2
			sr6 := sr2 * sr2 * sr2
			pot += 4 * l.eps * (sr6*sr6 - sr6)
			fs := 24 * l.eps * (2*sr6*sr6 - sr6) / r2
			fv := rij.Scale(fs)
			f[i] = f[i].Add(fv)
			f[j] = f[j].Sub(fv)
		}
	}
	return f, pot, nil
}

// harmonicFF tethers every particle to its initial position.
type harmonicFF struct {
	k      float64
	anchor []vec.V
}

func (h *harmonicFF) Forces(s *System) ([]vec.V, float64, error) {
	f := make([]vec.V, s.N())
	pot := 0.0
	for i := range f {
		d := s.Pos[i].Sub(h.anchor[i])
		f[i] = d.Scale(-h.k)
		pot += 0.5 * h.k * d.Norm2()
	}
	return f, pot, nil
}

type errFF struct{}

func (errFF) Forces(s *System) ([]vec.V, float64, error) {
	return nil, 0, fmt.Errorf("synthetic failure")
}

func TestNewRockSalt(t *testing.T) {
	s, err := NewRockSalt(2, 5.64)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 64 {
		t.Fatalf("N = %d, want 64", s.N())
	}
	if s.L != 11.28 {
		t.Errorf("L = %g", s.L)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Charge neutrality and species balance.
	qsum := 0.0
	na := 0
	for i := range s.Charge {
		qsum += s.Charge[i]
		if s.Type[i] == int(tosifumi.Na) {
			na++
		}
	}
	if qsum != 0 {
		t.Errorf("net charge = %g", qsum)
	}
	if na != 32 {
		t.Errorf("Na count = %d, want 32", na)
	}
	// Nearest neighbors are unlike species at distance a/2.
	d01 := vec.DistPeriodic(s.Pos[0], s.Pos[1], s.L)
	if math.Abs(d01-2.82) > 1e-12 {
		t.Errorf("nearest spacing = %g", d01)
	}
	if s.Type[0] == s.Type[1] {
		t.Error("nearest neighbors have the same species")
	}
}

func TestNewRockSaltValidation(t *testing.T) {
	if _, err := NewRockSalt(0, 5.64); err == nil {
		t.Error("0 cells accepted")
	}
	if _, err := NewRockSalt(2, 0); err == nil {
		t.Error("zero lattice constant accepted")
	}
}

func TestValidateCatchesBadState(t *testing.T) {
	s, _ := NewRockSalt(1, 5.64)
	s.Mass[3] = 0
	if err := s.Validate(); err == nil {
		t.Error("zero mass accepted")
	}
	s, _ = NewRockSalt(1, 5.64)
	s.Vel = s.Vel[:2]
	if err := s.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	s, _ = NewRockSalt(1, 5.64)
	s.L = -1
	if err := s.Validate(); err == nil {
		t.Error("negative box accepted")
	}
}

func TestMaxwellVelocities(t *testing.T) {
	s, _ := NewRockSalt(3, 5.64) // 216 particles
	s.SetMaxwellVelocities(1200, 7)
	if got := s.Temperature(); math.Abs(got-1200) > 1e-9*1200 {
		t.Errorf("T = %g, want exactly 1200 after rescale", got)
	}
	// Zero net momentum.
	var p vec.V
	for i := range s.Vel {
		p = p.Add(s.Vel[i].Scale(s.Mass[i]))
	}
	if p.Norm() > 1e-9 {
		t.Errorf("net momentum = %v", p)
	}
	// Reproducible with the same seed; different with another.
	s2, _ := NewRockSalt(3, 5.64)
	s2.SetMaxwellVelocities(1200, 7)
	if s.Vel[5] != s2.Vel[5] {
		t.Error("same seed gave different velocities")
	}
	s3, _ := NewRockSalt(3, 5.64)
	s3.SetMaxwellVelocities(1200, 8)
	if s.Vel[5] == s3.Vel[5] {
		t.Error("different seeds gave identical velocities")
	}
}

func TestKineticTemperatureConsistency(t *testing.T) {
	s, _ := NewRockSalt(2, 5.64)
	s.SetMaxwellVelocities(300, 1)
	ke := s.KineticEnergy()
	want := units.KelvinToKinetic(300, s.N())
	if math.Abs(ke-want) > 1e-9*want {
		t.Errorf("KE = %g, equipartition: %g", ke, want)
	}
}

func TestNewIntegratorValidation(t *testing.T) {
	s, _ := NewRockSalt(1, 5.64)
	if _, err := NewIntegrator(s, nil, 1); err == nil {
		t.Error("nil force field accepted")
	}
	if _, err := NewIntegrator(s, ljFF{0.05, 3}, 0); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := NewIntegrator(s, errFF{}, 1); err == nil {
		t.Error("failing force field not propagated")
	}
	s.L = 0
	if _, err := NewIntegrator(s, ljFF{0.05, 3}, 1); err == nil {
		t.Error("invalid state accepted")
	}
}

func TestHarmonicOscillatorPeriod(t *testing.T) {
	// One particle in a harmonic well: x(t) = A cos(ωt) with
	// ω = sqrt(k·ForceToAccel/m) in fs⁻¹.
	s := &System{
		L:      100,
		Pos:    []vec.V{vec.New(51, 50, 50)}, // amplitude 1 Å
		Vel:    []vec.V{vec.Zero},
		Mass:   []float64{20},
		Charge: []float64{0},
		Type:   []int{0},
	}
	k := 0.5 // eV/Å²
	ff := &harmonicFF{k: k, anchor: []vec.V{vec.New(50, 50, 50)}}
	it, err := NewIntegrator(s, ff, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	omega := math.Sqrt(k * units.ForceToAccel / 20)
	period := 2 * math.Pi / omega
	steps := int(period / it.Dt)
	if err := it.Run(steps, nil); err != nil {
		t.Fatal(err)
	}
	// After one period the particle is back near the start.
	if d := s.Pos[0].Sub(vec.New(51, 50, 50)).Norm(); d > 0.01 {
		t.Errorf("after one period displacement = %g Å", d)
	}
	// Energy is conserved.
	e := it.TotalEnergy()
	if math.Abs(e-0.25) > 1e-4 { // E = ½kA² = 0.25 eV
		t.Errorf("oscillator energy = %g, want 0.25", e)
	}
}

func TestNVEEnergyConservationLJ(t *testing.T) {
	s, _ := NewRockSalt(2, 8.0) // dilute: 64 particles, L = 16
	// Re-type everything identically; LJ doesn't care.
	s.SetMaxwellVelocities(60, 3)
	ff := ljFF{eps: 0.01, sigma: 3.0}
	it, err := NewIntegrator(s, ff, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recorder{}
	rec.Sample(it)
	if err := it.Run(300, func(step int) error {
		rec.Sample(it)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	drift := rec.EnergyDrift()
	if drift > 2e-4 {
		t.Errorf("NVE energy drift = %g", drift)
	}
	if drift == 0 {
		t.Error("exactly zero drift is implausible")
	}
	// Momentum stays zero under pair forces.
	var p vec.V
	for i := range s.Vel {
		p = p.Add(s.Vel[i].Scale(s.Mass[i]))
	}
	if p.Norm() > 1e-8 {
		t.Errorf("net momentum after NVE = %v", p)
	}
}

func TestNVTPinsTemperature(t *testing.T) {
	s, _ := NewRockSalt(2, 8.0)
	s.SetMaxwellVelocities(200, 4)
	it, err := NewIntegrator(s, ljFF{eps: 0.01, sigma: 3.0}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	it.Mode = NVT
	it.Target = 500
	if err := it.Run(20, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Sys().Temperature(); math.Abs(got-500) > 1e-6*500 {
		t.Errorf("T after NVT = %g, want 500", got)
	}
}

// Sys is a tiny helper so the test above reads naturally.
func (s *System) Sys() *System { return s }

func TestEnsembleString(t *testing.T) {
	if NVE.String() != "NVE" || NVT.String() != "NVT" {
		t.Error("ensemble names wrong")
	}
}

func TestRunObserveError(t *testing.T) {
	s, _ := NewRockSalt(1, 8.0)
	it, _ := NewIntegrator(s, ljFF{0.01, 3}, 1)
	sentinel := fmt.Errorf("stop")
	if err := it.Run(10, func(step int) error { return sentinel }); err != sentinel {
		t.Errorf("err = %v", err)
	}
	if it.StepCount() != 1 {
		t.Errorf("steps = %d, want 1", it.StepCount())
	}
}

func TestRecorderStats(t *testing.T) {
	r := &Recorder{}
	if m, s := r.TemperatureStats(); m != 0 || s != 0 {
		t.Error("empty recorder stats nonzero")
	}
	if r.EnergyDrift() != 0 {
		t.Error("empty recorder drift nonzero")
	}
	r.Records = []Record{{T: 100, E: -10}, {T: 200, E: -10.1}, {T: 300, E: -9.9}}
	m, sd := r.TemperatureStats()
	if m != 200 {
		t.Errorf("mean T = %g", m)
	}
	if math.Abs(sd-math.Sqrt(20000.0/3)) > 1e-9 {
		t.Errorf("std T = %g", sd)
	}
	if d := r.EnergyDrift(); math.Abs(d-0.01) > 1e-12 {
		t.Errorf("drift = %g, want 0.01", d)
	}
}

func TestRecorderTimeAxis(t *testing.T) {
	s, _ := NewRockSalt(1, 8.0)
	it, _ := NewIntegrator(s, ljFF{0.01, 3}, 2.0) // the paper's 2 fs step
	rec := &Recorder{}
	if err := it.Run(5, func(step int) error { rec.Sample(it); return nil }); err != nil {
		t.Fatal(err)
	}
	// 5 steps × 2 fs = 10 fs = 0.01 ps.
	last := rec.Records[len(rec.Records)-1]
	if math.Abs(last.Time-0.01) > 1e-12 {
		t.Errorf("time = %g ps, want 0.01", last.Time)
	}
}

func BenchmarkStepLJ64(b *testing.B) {
	s, _ := NewRockSalt(2, 8.0)
	s.SetMaxwellVelocities(100, 1)
	it, _ := NewIntegrator(s, ljFF{0.01, 3}, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := it.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
