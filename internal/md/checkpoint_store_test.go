package md

import (
	"errors"
	"testing"

	"mdm/internal/fault"
	"mdm/internal/store"
)

// The FS-threaded checkpoint path round-trips through the fault filesystem
// and survives a crash once the atomic replace completes.
func TestCheckpointFSRoundTripAndDurability(t *testing.T) {
	s, _ := NewRockSalt(2, 5.64)
	fs := store.NewFaultFS(nil)
	if err := WriteCheckpointFS(fs, "run.ckpt", s, 7); err != nil {
		t.Fatal(err)
	}
	fs.Reboot(nil)
	got, step, err := ReadCheckpointFS(fs, "run.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if step != 7 || len(got.Pos) != len(s.Pos) {
		t.Fatalf("step=%d n=%d", step, len(got.Pos))
	}
	if _, err := fs.ReadFile(store.TempPath("run.ckpt")); !store.NotExist(err) {
		t.Fatal("temp file left behind by clean write")
	}
}

// A crash before the commit rename preserves the previous checkpoint — the
// contract WriteCheckpointFS exists to keep.
func TestCheckpointFSCrashBeforeRenameKeepsOld(t *testing.T) {
	s, _ := NewRockSalt(2, 5.64)
	fs := store.NewFaultFS(nil)
	if err := WriteCheckpointFS(fs, "run.ckpt", s, 5); err != nil {
		t.Fatal(err)
	}
	in, err := fault.ParseInjector("store:crash-before-rename@rename=1")
	if err != nil {
		t.Fatal(err)
	}
	fs.Reboot(in)
	if werr := WriteCheckpointFS(fs, "run.ckpt", s, 9); !errors.Is(werr, store.ErrCrashed) {
		t.Fatalf("crashed write: %v", werr)
	}
	fs.Reboot(nil)
	_, step, err := ReadCheckpointFS(fs, "run.ckpt")
	if err != nil || step != 5 {
		t.Fatalf("old checkpoint lost: step=%d err=%v", step, err)
	}
}

// An injected eio on the checkpoint read surfaces as an error, never a
// silent short read.
func TestReadCheckpointFSEIO(t *testing.T) {
	s, _ := NewRockSalt(2, 5.64)
	fs := store.NewFaultFS(nil)
	if err := WriteCheckpointFS(fs, "run.ckpt", s, 3); err != nil {
		t.Fatal(err)
	}
	in, err := fault.ParseInjector("store:eio@read=1")
	if err != nil {
		t.Fatal(err)
	}
	fs.Reboot(in)
	if _, _, rerr := ReadCheckpointFS(fs, "run.ckpt"); !errors.Is(rerr, store.ErrIO) {
		t.Fatalf("eio read: %v, want ErrIO", rerr)
	}
}

// An injected bitrot trips the CRC: the typed ErrCheckpointCorrupt comes
// back instead of a corrupted trajectory.
func TestReadCheckpointFSBitRot(t *testing.T) {
	s, _ := NewRockSalt(2, 5.64)
	fs := store.NewFaultFS(nil)
	if err := WriteCheckpointFS(fs, "run.ckpt", s, 3); err != nil {
		t.Fatal(err)
	}
	in, err := fault.ParseInjector("store:bitrot@read=1,offset=40")
	if err != nil {
		t.Fatal(err)
	}
	fs.Reboot(in)
	_, _, rerr := ReadCheckpointFS(fs, "run.ckpt")
	if rerr == nil {
		t.Fatal("bit-rotted checkpoint accepted")
	}
	if !errors.Is(rerr, ErrCheckpointCorrupt) {
		t.Fatalf("bitrot read: %v, want ErrCheckpointCorrupt", rerr)
	}
}

// CheckpointStep — the recovery scan's validator — accepts a good image and
// rejects damage with the typed errors.
func TestCheckpointStepValidator(t *testing.T) {
	s, _ := NewRockSalt(2, 5.64)
	fs := store.NewFaultFS(nil)
	if err := WriteCheckpointFS(fs, "run.ckpt", s, 11); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile("run.ckpt")
	step, err := CheckpointStep(data)
	if err != nil || step != 11 {
		t.Fatalf("CheckpointStep: %d, %v", step, err)
	}
	if _, err := CheckpointStep(data[:len(data)/2]); !errors.Is(err, ErrCheckpointTruncated) {
		t.Fatalf("truncated: %v", err)
	}
	rotted := append([]byte(nil), data...)
	rotted[40] ^= 1
	if _, err := CheckpointStep(rotted); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("rotted: %v", err)
	}
}
