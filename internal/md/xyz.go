package md

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mdm/internal/tosifumi"
	"mdm/internal/vec"
)

// Trajectory I/O in the XYZ format — the "file I/O" duty of the host
// computer in the paper's step schedule (§3.1). Frames are standard XYZ:
// particle count, a comment line (we store the box side as "L=<Å>"), then
// one "<symbol> <x> <y> <z>" line per particle.

// WriteXYZ appends one frame of the system to w. The species symbol comes
// from the particle type (Na/Cl for the two NaCl species, X<i> otherwise).
func WriteXYZ(w io.Writer, s *System, comment string) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\nL=%.8f %s\n", s.N(), s.L, comment); err != nil {
		return err
	}
	for i := range s.Pos {
		sym := symbolFor(s.Type[i])
		p := s.Pos[i]
		if _, err := fmt.Fprintf(bw, "%s %.8f %.8f %.8f\n", sym, p.X, p.Y, p.Z); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func symbolFor(t int) string {
	switch tosifumi.Species(t) {
	case tosifumi.Na:
		return "Na"
	case tosifumi.Cl:
		return "Cl"
	}
	return fmt.Sprintf("X%d", t)
}

func typeFor(sym string) int {
	switch sym {
	case "Na":
		return int(tosifumi.Na)
	case "Cl":
		return int(tosifumi.Cl)
	}
	var t int
	if _, err := fmt.Sscanf(sym, "X%d", &t); err == nil {
		return t
	}
	return 0
}

// Frame is one parsed XYZ frame.
type Frame struct {
	L       float64
	Comment string
	Pos     []vec.V
	Type    []int
}

// ReadXYZ parses consecutive XYZ frames from r until EOF.
func ReadXYZ(r io.Reader) ([]Frame, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var frames []Frame
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		n, err := strconv.Atoi(line)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("md: bad particle count %q in frame %d", line, len(frames))
		}
		if !sc.Scan() {
			return nil, fmt.Errorf("md: missing comment line in frame %d", len(frames))
		}
		f := Frame{Comment: sc.Text()}
		// Parse "L=<value>" from the comment if present.
		for _, tok := range strings.Fields(f.Comment) {
			if v, ok := strings.CutPrefix(tok, "L="); ok {
				if l, err := strconv.ParseFloat(v, 64); err == nil {
					f.L = l
				}
			}
		}
		for k := 0; k < n; k++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("md: frame %d truncated at particle %d", len(frames), k)
			}
			fields := strings.Fields(sc.Text())
			if len(fields) < 4 {
				return nil, fmt.Errorf("md: frame %d particle %d: bad line %q", len(frames), k, sc.Text())
			}
			x, err1 := strconv.ParseFloat(fields[1], 64)
			y, err2 := strconv.ParseFloat(fields[2], 64)
			z, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("md: frame %d particle %d: bad coordinates %q", len(frames), k, sc.Text())
			}
			f.Pos = append(f.Pos, vec.New(x, y, z))
			f.Type = append(f.Type, typeFor(fields[0]))
		}
		frames = append(frames, f)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return frames, nil
}
