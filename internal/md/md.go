// Package md implements the host-side molecular dynamics engine of the MDM
// software (§4, §5 of the paper): particle state, the rock-salt initial
// configuration, Maxwell–Boltzmann velocities, velocity-Verlet time
// integration, the NVT (velocity-scaling) and NVE ensembles used in the
// paper's runs, and the observables plotted in Figure 2 (instantaneous
// temperature) and quoted in §5 (total-energy conservation).
//
// Forces come from a ForceField — either the simulated MDM machine or the
// float64 "conventional computer" reference (package core provides both).
// Units follow package units: Å, fs, eV, amu, K.
package md

import (
	"fmt"
	"math"
	"math/rand"

	"mdm/internal/tosifumi"
	"mdm/internal/units"
	"mdm/internal/vec"
)

// System is the particle state of one simulation.
type System struct {
	L      float64   // cubic box side (Å)
	Pos    []vec.V   // positions (Å)
	Vel    []vec.V   // velocities (Å/fs)
	Mass   []float64 // masses (amu)
	Charge []float64 // charges (e)
	Type   []int     // particle types (species index)
}

// N returns the particle count.
func (s *System) N() int { return len(s.Pos) }

// Validate reports state inconsistencies.
func (s *System) Validate() error {
	n := len(s.Pos)
	if s.L <= 0 {
		return fmt.Errorf("md: box side %g must be positive", s.L)
	}
	if len(s.Vel) != n || len(s.Mass) != n || len(s.Charge) != n || len(s.Type) != n {
		return fmt.Errorf("md: inconsistent state lengths (%d pos, %d vel, %d mass, %d charge, %d type)",
			n, len(s.Vel), len(s.Mass), len(s.Charge), len(s.Type))
	}
	for i, m := range s.Mass {
		if m <= 0 {
			return fmt.Errorf("md: particle %d has non-positive mass %g", i, m)
		}
	}
	return nil
}

// NewRockSalt builds a cells×cells×cells block of NaCl conventional unit
// cells with lattice constant a (Å): 8 ions per cell, alternating Na⁺/Cl⁻ on
// a simple-cubic sublattice of spacing a/2. The box side is cells·a and the
// system is charge-neutral with equal numbers of both species.
func NewRockSalt(cells int, a float64) (*System, error) {
	if cells < 1 {
		return nil, fmt.Errorf("md: cells %d must be positive", cells)
	}
	if a <= 0 {
		return nil, fmt.Errorf("md: lattice constant %g must be positive", a)
	}
	n := 8 * cells * cells * cells
	s := &System{
		L:      float64(cells) * a,
		Pos:    make([]vec.V, n),
		Vel:    make([]vec.V, n),
		Mass:   make([]float64, n),
		Charge: make([]float64, n),
		Type:   make([]int, n),
	}
	d := a / 2
	i := 0
	for cz := 0; cz < 2*cells; cz++ {
		for cy := 0; cy < 2*cells; cy++ {
			for cx := 0; cx < 2*cells; cx++ {
				s.Pos[i] = vec.New(float64(cx)*d, float64(cy)*d, float64(cz)*d)
				var sp tosifumi.Species
				if (cx+cy+cz)%2 == 0 {
					sp = tosifumi.Na
				} else {
					sp = tosifumi.Cl
				}
				s.Type[i] = int(sp)
				s.Charge[i] = tosifumi.Charge(sp)
				s.Mass[i] = tosifumi.Mass(sp)
				i++
			}
		}
	}
	return s, nil
}

// SetMaxwellVelocities draws velocities from the Maxwell–Boltzmann
// distribution at temperature tK, removes the net momentum, and rescales to
// hit tK exactly. The given seed makes runs reproducible.
func (s *System) SetMaxwellVelocities(tK float64, seed int64) {
	//mdm:wallclockok -- the source IS explicitly seeded (the seed parameter); construction-time draw, reached from the batch-driver root but never from a step
	rng := rand.New(rand.NewSource(seed))
	for i := range s.Vel {
		// σ² = k_B T / m in (Å/fs)² via the eV→(Å/fs)² conversion.
		sigma := math.Sqrt(units.Boltzmann * tK / s.Mass[i] * units.ForceToAccel)
		//mdm:wallclockok -- deterministic draws from the explicitly seeded source above; construction-time, not step-time
		s.Vel[i] = vec.New(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	s.RemoveNetMomentum()
	if t := s.Temperature(); t > 0 && tK > 0 {
		s.ScaleVelocities(math.Sqrt(tK / t))
	}
}

// RemoveNetMomentum shifts velocities so that total momentum vanishes.
func (s *System) RemoveNetMomentum() {
	var p vec.V
	mTot := 0.0
	for i := range s.Vel {
		p = p.Add(s.Vel[i].Scale(s.Mass[i]))
		mTot += s.Mass[i]
	}
	if mTot == 0 {
		return
	}
	drift := p.Scale(1 / mTot)
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Sub(drift)
	}
}

// ScaleVelocities multiplies every velocity by f (the paper's NVT
// velocity-scaling thermostat applies f = sqrt(T_target/T)).
func (s *System) ScaleVelocities(f float64) {
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Scale(f)
	}
}

// KineticEnergy returns the total kinetic energy in eV:
// KE = Σ ½ m v² / ForceToAccel (v in Å/fs, m in amu).
func (s *System) KineticEnergy() float64 {
	ke := 0.0
	for i := range s.Vel {
		ke += 0.5 * s.Mass[i] * s.Vel[i].Norm2()
	}
	return ke / units.ForceToAccel
}

// Temperature returns the instantaneous temperature in K.
func (s *System) Temperature() float64 {
	return units.KineticToKelvin(s.KineticEnergy(), s.N())
}

// ForceField computes forces and total potential energy for a configuration.
// Implementations: the simulated MDM machine and the float64 conventional
// reference (package core).
type ForceField interface {
	Forces(s *System) (forces []vec.V, potential float64, err error)
}

// GeometryInvalidator is implemented by force fields that cache
// position-dependent geometry between calls (the machine's Verlet-skin
// j-set). The integrator's own steps move particles gradually — the cache
// validates itself against a displacement bound — but an external rewrite of
// the positions (checkpoint restore) must announce itself through this hook.
type GeometryInvalidator interface {
	InvalidateGeometry()
}

// Ensemble selects the integration mode of one segment of a run.
type Ensemble int

// The two ensembles used in the paper's §5 run: 2,000 steps of NVT by
// velocity scaling followed by 1,000 steps of NVE.
const (
	NVE Ensemble = iota
	NVT
)

// String implements fmt.Stringer.
func (e Ensemble) String() string {
	if e == NVT {
		return "NVT"
	}
	return "NVE"
}

// Integrator advances a System with the velocity-Verlet scheme.
type Integrator struct {
	Sys    *System
	FF     ForceField
	Dt     float64 // time step (fs); the paper uses 2 fs
	Target float64 // NVT target temperature (K)
	Mode   Ensemble

	forces []vec.V
	pot    float64
	step   int
}

// NewIntegrator validates the state and computes the initial forces.
func NewIntegrator(s *System, ff ForceField, dt float64) (*Integrator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if dt <= 0 {
		return nil, fmt.Errorf("md: time step %g must be positive", dt)
	}
	if ff == nil {
		return nil, fmt.Errorf("md: nil force field")
	}
	f, pot, err := ff.Forces(s)
	if err != nil {
		return nil, fmt.Errorf("md: initial force evaluation: %w", err)
	}
	if len(f) != s.N() {
		return nil, fmt.Errorf("md: force field returned %d forces for %d particles", len(f), s.N())
	}
	return &Integrator{Sys: s, FF: ff, Dt: dt, Mode: NVE, forces: f, pot: pot}, nil
}

// Step advances one velocity-Verlet time step. In NVT mode the velocities
// are rescaled to the target temperature after the update (the paper's
// velocity-scaling thermostat).
//
//mdm:stepflow -- hot-path root: one velocity-Verlet step, incl. every md.ForceField implementation it dispatches to
func (it *Integrator) Step() error {
	s := it.Sys
	dt := it.Dt
	half := 0.5 * dt * units.ForceToAccel
	// Half kick + drift.
	for i := range s.Pos {
		s.Vel[i] = s.Vel[i].Add(it.forces[i].Scale(half / s.Mass[i]))
		s.Pos[i] = s.Pos[i].Add(s.Vel[i].Scale(dt)).Wrap(s.L)
	}
	// New forces.
	f, pot, err := it.FF.Forces(s)
	if err != nil {
		return fmt.Errorf("md: force evaluation at step %d: %w", it.step+1, err)
	}
	if len(f) != s.N() {
		return fmt.Errorf("md: force field returned %d forces for %d particles", len(f), s.N())
	}
	it.forces = f
	it.pot = pot
	// Second half kick.
	for i := range s.Pos {
		s.Vel[i] = s.Vel[i].Add(it.forces[i].Scale(half / s.Mass[i]))
	}
	if it.Mode == NVT && it.Target > 0 {
		if t := s.Temperature(); t > 0 {
			s.ScaleVelocities(math.Sqrt(it.Target / t))
		}
	}
	it.step++
	return nil
}

// Run advances n steps, invoking observe (if non-nil) after each step.
//
//mdm:stepflow -- hot-path root: the step loop; per-step observe callbacks passed to it (journal commit, sampling) run between steps
func (it *Integrator) Run(n int, observe func(step int) error) error {
	for i := 0; i < n; i++ {
		if err := it.Step(); err != nil {
			return err
		}
		if observe != nil {
			if err := observe(it.step); err != nil {
				return err
			}
		}
	}
	return nil
}

// StepCount returns the number of completed steps.
func (it *Integrator) StepCount() int { return it.step }

// SetStepCount positions the step counter, so a run resumed from a
// checkpoint keeps the original step numbering and time axis. Restoring a
// checkpoint rewrites the positions out from under the force field, so any
// cached geometry is invalidated here.
func (it *Integrator) SetStepCount(n int) {
	it.step = n
	it.InvalidateGeometry()
}

// InvalidateGeometry forwards an external position rewrite to the force
// field's geometry cache, when it keeps one.
func (it *Integrator) InvalidateGeometry() {
	if gi, ok := it.FF.(GeometryInvalidator); ok {
		gi.InvalidateGeometry()
	}
}

// Potential returns the potential energy at the current positions (eV).
func (it *Integrator) Potential() float64 { return it.pot }

// Forces returns the cached forces at the current positions.
func (it *Integrator) Forces() []vec.V { return it.forces }

// TotalEnergy returns KE + PE at the current state (eV).
func (it *Integrator) TotalEnergy() float64 {
	return it.Sys.KineticEnergy() + it.pot
}

// Record is one observable sample, the quantities behind Figure 2.
type Record struct {
	Step int
	Time float64 // ps
	T    float64 // K
	KE   float64 // eV
	PE   float64 // eV
	E    float64 // eV
}

// Recorder samples an Integrator.
type Recorder struct {
	Records []Record
}

// Sample appends the current observables.
func (r *Recorder) Sample(it *Integrator) {
	r.Records = append(r.Records, Record{
		Step: it.StepCount(),
		Time: float64(it.StepCount()) * it.Dt / 1000.0,
		T:    it.Sys.Temperature(),
		KE:   it.Sys.KineticEnergy(),
		PE:   it.Potential(),
		E:    it.TotalEnergy(),
	})
}

// TemperatureStats returns the mean and standard deviation of the sampled
// temperature — the fluctuation measure of Figure 2.
func (r *Recorder) TemperatureStats() (mean, std float64) {
	if len(r.Records) == 0 {
		return 0, 0
	}
	for _, rec := range r.Records {
		mean += rec.T
	}
	mean /= float64(len(r.Records))
	for _, rec := range r.Records {
		d := rec.T - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(r.Records)))
	return mean, std
}

// EnergyDrift returns the maximum relative deviation of the total energy
// from its initial sampled value: max |E(t)-E(0)| / |E(0)|. The paper quotes
// a relative error below 5×10⁻⁵ percent for the NVE segment.
func (r *Recorder) EnergyDrift() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	e0 := r.Records[0].E
	if e0 == 0 {
		return 0
	}
	worst := 0.0
	for _, rec := range r.Records {
		if d := math.Abs(rec.E-e0) / math.Abs(e0); d > worst {
			worst = d
		}
	}
	return worst
}
