package md

import (
	"encoding/json"
	"fmt"
	"io"

	"mdm/internal/vec"
)

// Checkpointing: the host computer's file-I/O duty (§3.1) for restartable
// runs — the paper's 36.5-hour campaign would have been unrecoverable
// without it. The format is versioned JSON of the complete dynamical state.

// checkpointVersion identifies the on-disk format.
const checkpointVersion = 1

type checkpoint struct {
	Version int       `json:"version"`
	L       float64   `json:"l"`
	Step    int       `json:"step"`
	Pos     []vec.V   `json:"pos"`
	Vel     []vec.V   `json:"vel"`
	Mass    []float64 `json:"mass"`
	Charge  []float64 `json:"charge"`
	Type    []int     `json:"type"`
}

// WriteCheckpoint serializes the full dynamical state plus a step counter.
func WriteCheckpoint(w io.Writer, s *System, step int) error {
	if err := s.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	return enc.Encode(checkpoint{
		Version: checkpointVersion,
		L:       s.L,
		Step:    step,
		Pos:     s.Pos,
		Vel:     s.Vel,
		Mass:    s.Mass,
		Charge:  s.Charge,
		Type:    s.Type,
	})
}

// ReadCheckpoint restores a System and its step counter.
func ReadCheckpoint(r io.Reader) (*System, int, error) {
	var cp checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, 0, fmt.Errorf("md: reading checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, 0, fmt.Errorf("md: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	s := &System{
		L:      cp.L,
		Pos:    cp.Pos,
		Vel:    cp.Vel,
		Mass:   cp.Mass,
		Charge: cp.Charge,
		Type:   cp.Type,
	}
	if err := s.Validate(); err != nil {
		return nil, 0, fmt.Errorf("md: invalid checkpoint state: %w", err)
	}
	return s, cp.Step, nil
}
