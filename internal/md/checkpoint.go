package md

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"mdm/internal/store"
	"mdm/internal/vec"
)

// Checkpointing: the host computer's file-I/O duty (§3.1) for restartable
// runs — the paper's 36.5-hour campaign would have been unrecoverable
// without it. The format is versioned JSON of the complete dynamical state,
// protected since version 2 by a CRC-32 so that a torn or bit-rotted file is
// rejected instead of silently restarting a corrupted trajectory.

const (
	// checkpointVersion is the format written today: version 1 plus a
	// CRC-32C checksum over the payload.
	checkpointVersion = 2
	// oldCheckpointVersion is the checksum-less seed format, still accepted
	// on read.
	oldCheckpointVersion = 1
)

// Typed checkpoint failures, matched with errors.Is so callers (the mdmsim
// restart loop in particular) can tell a useless file from a wrong-format
// one.
var (
	// ErrCheckpointTruncated marks a file that ends mid-record — the
	// signature of a crash during a non-atomic write.
	ErrCheckpointTruncated = errors.New("md: checkpoint truncated")
	// ErrCheckpointCorrupt marks a record whose checksum does not match its
	// payload, or that does not parse at all.
	ErrCheckpointCorrupt = errors.New("md: checkpoint corrupt")
	// ErrCheckpointVersion marks a record from an unknown format version.
	ErrCheckpointVersion = errors.New("md: unsupported checkpoint version")
)

type checkpoint struct {
	Version int       `json:"version"`
	L       float64   `json:"l"`
	Step    int       `json:"step"`
	Pos     []vec.V   `json:"pos"`
	Vel     []vec.V   `json:"vel"`
	Mass    []float64 `json:"mass"`
	Charge  []float64 `json:"charge"`
	Type    []int     `json:"type"`
	// Checksum is the IEEE CRC-32 of the record serialized with this field
	// zeroed. Version 1 files predate it.
	Checksum uint32 `json:"crc32,omitempty"`
}

// payloadCRC computes the checksum of a record: the CRC-32 of its JSON
// serialization with the Checksum field zeroed. encoding/json renders
// float64 in shortest round-tripping form, so decode→re-encode is
// byte-stable and the read side can recompute the same bytes.
func payloadCRC(cp checkpoint) (uint32, error) {
	cp.Checksum = 0
	b, err := json.Marshal(cp)
	if err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(b), nil
}

// WriteCheckpoint serializes the full dynamical state plus a step counter.
func WriteCheckpoint(w io.Writer, s *System, step int) error {
	if err := s.Validate(); err != nil {
		return err
	}
	cp := checkpoint{
		Version: checkpointVersion,
		L:       s.L,
		Step:    step,
		Pos:     s.Pos,
		Vel:     s.Vel,
		Mass:    s.Mass,
		Charge:  s.Charge,
		Type:    s.Type,
	}
	sum, err := payloadCRC(cp)
	if err != nil {
		return err
	}
	cp.Checksum = sum
	b, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadCheckpoint restores a System and its step counter. It accepts the
// current checksummed format and the checksum-less version-1 files written
// by earlier builds; failures carry ErrCheckpointTruncated,
// ErrCheckpointCorrupt, or ErrCheckpointVersion.
func ReadCheckpoint(r io.Reader) (*System, int, error) {
	var cp checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, fmt.Errorf("%w: %v", ErrCheckpointTruncated, err)
		}
		return nil, 0, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	switch cp.Version {
	case oldCheckpointVersion:
		// Seed format: no checksum to verify.
	case checkpointVersion:
		sum, err := payloadCRC(cp)
		if err != nil {
			return nil, 0, err
		}
		if sum != cp.Checksum {
			return nil, 0, fmt.Errorf("%w: crc32 %08x, recorded %08x", ErrCheckpointCorrupt, sum, cp.Checksum)
		}
	default:
		return nil, 0, fmt.Errorf("%w: version %d, want %d (or legacy %d)",
			ErrCheckpointVersion, cp.Version, checkpointVersion, oldCheckpointVersion)
	}
	s := &System{
		L:      cp.L,
		Pos:    cp.Pos,
		Vel:    cp.Vel,
		Mass:   cp.Mass,
		Charge: cp.Charge,
		Type:   cp.Type,
	}
	if err := s.Validate(); err != nil {
		return nil, 0, fmt.Errorf("md: invalid checkpoint state: %w", err)
	}
	return s, cp.Step, nil
}

// WriteCheckpointFile writes a checkpoint crash-safely to the real
// filesystem; see WriteCheckpointFS.
func WriteCheckpointFile(path string, s *System, step int) error {
	return WriteCheckpointFS(store.OS(), path, s, step)
}

// WriteCheckpointFS writes a checkpoint crash-safely through a store VFS:
// the record goes to a fixed-name temporary sibling, is fsynced, and is
// renamed over the destination, so a crash at any instant leaves either the
// old complete file or the new complete file — never a torn one. The
// directory is fsynced too so the rename itself is durable. The temp name is
// deterministic (store.TempPath) so fault schedules keyed by operation
// counts replay exactly and the recovery scan can recognize leftovers.
func WriteCheckpointFS(fsys store.FS, path string, s *System, step int) (err error) {
	tmp := store.TempPath(path)
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			_ = f.Close()
			_ = fsys.Remove(tmp)
		}
	}()
	if err = WriteCheckpoint(f, s, step); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(store.Dir(path))
}

// ReadCheckpointFile restores a checkpoint written by WriteCheckpointFile.
func ReadCheckpointFile(path string) (*System, int, error) {
	return ReadCheckpointFS(store.OS(), path)
}

// ReadCheckpointFS restores a checkpoint through a store VFS.
func ReadCheckpointFS(fsys store.FS, path string) (*System, int, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	return ReadCheckpoint(bytes.NewReader(data))
}

// CheckpointStep validates a checkpoint image — parse, version, CRC, state
// invariants — and returns the step it commits. It is the format callback
// the recovery scan (store.Validators) uses to judge checkpoint artifacts.
func CheckpointStep(data []byte) (int, error) {
	_, step, err := ReadCheckpoint(bytes.NewReader(data))
	return step, err
}
