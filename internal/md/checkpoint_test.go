package md

import (
	"bytes"
	"strings"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	s, _ := NewRockSalt(2, 5.64)
	s.SetMaxwellVelocities(700, 5)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, s, 123); err != nil {
		t.Fatal(err)
	}
	restored, step, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if step != 123 {
		t.Errorf("step = %d", step)
	}
	if restored.L != s.L || restored.N() != s.N() {
		t.Fatalf("geometry mismatch")
	}
	for i := range s.Pos {
		if restored.Pos[i] != s.Pos[i] || restored.Vel[i] != s.Vel[i] {
			t.Fatalf("state mismatch at %d", i)
		}
		if restored.Type[i] != s.Type[i] || restored.Charge[i] != s.Charge[i] || restored.Mass[i] != s.Mass[i] {
			t.Fatalf("metadata mismatch at %d", i)
		}
	}
}

func TestCheckpointResumesIdentically(t *testing.T) {
	// A run split by a checkpoint must be bitwise identical to an unbroken
	// run — the property that makes long campaigns restartable.
	mk := func() (*System, *Integrator) {
		s, _ := NewRockSalt(2, 8.0)
		s.SetMaxwellVelocities(150, 6)
		it, err := NewIntegrator(s, ljFF{eps: 0.01, sigma: 3.0}, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		return s, it
	}
	sA, itA := mk()
	if err := itA.Run(40, nil); err != nil {
		t.Fatal(err)
	}

	sB, itB := mk()
	if err := itB.Run(20, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sB, itB.StepCount()); err != nil {
		t.Fatal(err)
	}
	restored, step, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if step != 20 {
		t.Fatalf("step = %d", step)
	}
	itC, err := NewIntegrator(restored, ljFF{eps: 0.01, sigma: 3.0}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := itC.Run(20, nil); err != nil {
		t.Fatal(err)
	}
	for i := range sA.Pos {
		if sA.Pos[i] != restored.Pos[i] {
			t.Fatalf("resumed trajectory diverged at particle %d: %v vs %v",
				i, sA.Pos[i], restored.Pos[i])
		}
	}
}

func TestCheckpointErrors(t *testing.T) {
	if _, _, err := ReadCheckpoint(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, _, err := ReadCheckpoint(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, _, err := ReadCheckpoint(strings.NewReader(`{"version":1,"l":10,"pos":[{}],"vel":[],"mass":[],"charge":[],"type":[]}`)); err == nil {
		t.Error("inconsistent state accepted")
	}
	bad, _ := NewRockSalt(1, 5.64)
	bad.Mass[0] = -1
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, bad, 0); err == nil {
		t.Error("invalid state written")
	}
}

func FuzzReadXYZ(f *testing.F) {
	f.Add("2\nL=10.0 frame\nNa 1 2 3\nCl 4 5 6\n")
	f.Add("1\ncomment\nX3 0.5 0.5 0.5\n")
	f.Add("")
	f.Add("0\n\n")
	f.Fuzz(func(t *testing.T, input string) {
		// Must never panic; frames that parse must be self-consistent.
		frames, err := ReadXYZ(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, fr := range frames {
			if len(fr.Pos) != len(fr.Type) {
				t.Fatalf("inconsistent frame: %d pos vs %d types", len(fr.Pos), len(fr.Type))
			}
		}
	})
}

func FuzzReadCheckpoint(f *testing.F) {
	s, _ := NewRockSalt(1, 5.64)
	var buf bytes.Buffer
	_ = WriteCheckpoint(&buf, s, 7)
	f.Add(buf.Bytes())
	f.Add([]byte("{}"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		sys, _, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must satisfy the state invariants.
		if err := sys.Validate(); err != nil {
			t.Fatalf("accepted invalid state: %v", err)
		}
	})
}
