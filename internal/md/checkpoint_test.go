package md

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	s, _ := NewRockSalt(2, 5.64)
	s.SetMaxwellVelocities(700, 5)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, s, 123); err != nil {
		t.Fatal(err)
	}
	restored, step, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if step != 123 {
		t.Errorf("step = %d", step)
	}
	if restored.L != s.L || restored.N() != s.N() {
		t.Fatalf("geometry mismatch")
	}
	for i := range s.Pos {
		if restored.Pos[i] != s.Pos[i] || restored.Vel[i] != s.Vel[i] {
			t.Fatalf("state mismatch at %d", i)
		}
		if restored.Type[i] != s.Type[i] || restored.Charge[i] != s.Charge[i] || restored.Mass[i] != s.Mass[i] {
			t.Fatalf("metadata mismatch at %d", i)
		}
	}
}

func TestCheckpointResumesIdentically(t *testing.T) {
	// A run split by a checkpoint must be bitwise identical to an unbroken
	// run — the property that makes long campaigns restartable.
	mk := func() (*System, *Integrator) {
		s, _ := NewRockSalt(2, 8.0)
		s.SetMaxwellVelocities(150, 6)
		it, err := NewIntegrator(s, ljFF{eps: 0.01, sigma: 3.0}, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		return s, it
	}
	sA, itA := mk()
	if err := itA.Run(40, nil); err != nil {
		t.Fatal(err)
	}

	sB, itB := mk()
	if err := itB.Run(20, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sB, itB.StepCount()); err != nil {
		t.Fatal(err)
	}
	restored, step, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if step != 20 {
		t.Fatalf("step = %d", step)
	}
	itC, err := NewIntegrator(restored, ljFF{eps: 0.01, sigma: 3.0}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := itC.Run(20, nil); err != nil {
		t.Fatal(err)
	}
	for i := range sA.Pos {
		if sA.Pos[i] != restored.Pos[i] {
			t.Fatalf("resumed trajectory diverged at particle %d: %v vs %v",
				i, sA.Pos[i], restored.Pos[i])
		}
	}
}

func TestCheckpointErrors(t *testing.T) {
	if _, _, err := ReadCheckpoint(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, _, err := ReadCheckpoint(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, _, err := ReadCheckpoint(strings.NewReader(`{"version":1,"l":10,"pos":[{}],"vel":[],"mass":[],"charge":[],"type":[]}`)); err == nil {
		t.Error("inconsistent state accepted")
	}
	bad, _ := NewRockSalt(1, 5.64)
	bad.Mass[0] = -1
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, bad, 0); err == nil {
		t.Error("invalid state written")
	}
}

func TestCheckpointTypedErrors(t *testing.T) {
	s, _ := NewRockSalt(2, 5.64)
	s.SetMaxwellVelocities(700, 5)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, s, 123); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// A write torn mid-record (the crash WriteCheckpointFile guards against).
	_, _, err := ReadCheckpoint(bytes.NewReader(good[:len(good)/2]))
	if !errors.Is(err, ErrCheckpointTruncated) {
		t.Errorf("half a record: err = %v, want ErrCheckpointTruncated", err)
	}
	if _, _, err := ReadCheckpoint(strings.NewReader("")); !errors.Is(err, ErrCheckpointTruncated) {
		t.Errorf("empty file: err = %v, want ErrCheckpointTruncated", err)
	}

	// Bit rot: still valid JSON, but the payload no longer matches the CRC.
	rotted := bytes.Replace(good, []byte(`"step":123`), []byte(`"step":321`), 1)
	if bytes.Equal(rotted, good) {
		t.Fatal("corruption not applied")
	}
	if _, _, err := ReadCheckpoint(bytes.NewReader(rotted)); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("rotted record: err = %v, want ErrCheckpointCorrupt", err)
	}
	if _, _, err := ReadCheckpoint(strings.NewReader("not json")); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("garbage: err = %v, want ErrCheckpointCorrupt", err)
	}

	if _, _, err := ReadCheckpoint(strings.NewReader(`{"version":99}`)); !errors.Is(err, ErrCheckpointVersion) {
		t.Errorf("future version: err = %v, want ErrCheckpointVersion", err)
	}
}

func TestCheckpointLegacyV1Accepted(t *testing.T) {
	// Files from the checksum-less seed format must keep loading.
	s, _ := NewRockSalt(2, 5.64)
	s.SetMaxwellVelocities(700, 5)
	legacy, err := json.Marshal(checkpoint{
		Version: oldCheckpointVersion,
		L:       s.L, Step: 42,
		Pos: s.Pos, Vel: s.Vel, Mass: s.Mass, Charge: s.Charge, Type: s.Type,
	})
	if err != nil {
		t.Fatal(err)
	}
	restored, step, err := ReadCheckpoint(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("v1 file rejected: %v", err)
	}
	if step != 42 || restored.N() != s.N() {
		t.Errorf("v1 restore: step %d, N %d", step, restored.N())
	}
}

func TestCheckpointFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	s, _ := NewRockSalt(2, 5.64)
	s.SetMaxwellVelocities(700, 5)
	if err := WriteCheckpointFile(path, s, 10); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a later step: the rename must replace in place.
	s.Pos[0].X += 0.25
	if err := WriteCheckpointFile(path, s, 20); err != nil {
		t.Fatal(err)
	}
	restored, step, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if step != 20 || restored.Pos[0] != s.Pos[0] {
		t.Errorf("got step %d, pos %v", step, restored.Pos[0])
	}
	// No temp litter: a crash-free write leaves exactly the checkpoint.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "run.ckpt" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("directory contents = %v, want [run.ckpt]", names)
	}
}

func FuzzReadXYZ(f *testing.F) {
	f.Add("2\nL=10.0 frame\nNa 1 2 3\nCl 4 5 6\n")
	f.Add("1\ncomment\nX3 0.5 0.5 0.5\n")
	f.Add("")
	f.Add("0\n\n")
	f.Fuzz(func(t *testing.T, input string) {
		// Must never panic; frames that parse must be self-consistent.
		frames, err := ReadXYZ(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, fr := range frames {
			if len(fr.Pos) != len(fr.Type) {
				t.Fatalf("inconsistent frame: %d pos vs %d types", len(fr.Pos), len(fr.Type))
			}
		}
	})
}

// FuzzReadCheckpoint lives in fuzz_test.go, alongside its v1/v2 seeds and
// the write-and-reread round-trip property.
