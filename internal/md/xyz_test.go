package md

import (
	"bytes"
	"strings"
	"testing"

	"mdm/internal/vec"
)

func TestXYZRoundTrip(t *testing.T) {
	s, _ := NewRockSalt(2, 5.64)
	var buf bytes.Buffer
	if err := WriteXYZ(&buf, s, "step=0"); err != nil {
		t.Fatal(err)
	}
	if err := WriteXYZ(&buf, s, "step=1"); err != nil {
		t.Fatal(err)
	}
	frames, err := ReadXYZ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("frames = %d", len(frames))
	}
	f := frames[0]
	if f.L != s.L {
		t.Errorf("L = %g, want %g", f.L, s.L)
	}
	if !strings.Contains(f.Comment, "step=0") {
		t.Errorf("comment = %q", f.Comment)
	}
	if len(f.Pos) != s.N() {
		t.Fatalf("particles = %d", len(f.Pos))
	}
	for i := range f.Pos {
		if vec.Dist(f.Pos[i], s.Pos[i]) > 1e-7 {
			t.Fatalf("position %d mismatch", i)
		}
		if f.Type[i] != s.Type[i] {
			t.Fatalf("type %d mismatch", i)
		}
	}
}

func TestXYZSymbols(t *testing.T) {
	if symbolFor(0) != "Na" || symbolFor(1) != "Cl" || symbolFor(5) != "X5" {
		t.Error("symbols wrong")
	}
	if typeFor("Na") != 0 || typeFor("Cl") != 1 || typeFor("X5") != 5 {
		t.Error("type parsing wrong")
	}
}

func TestReadXYZErrors(t *testing.T) {
	cases := []string{
		"abc\ncomment\n",
		"2\ncomment\nNa 1 2 3\n",   // truncated
		"1\ncomment\nNa 1 2\n",     // short line
		"1\ncomment\nNa one 2 3\n", // bad coordinate
		"1\n",                      // missing comment
	}
	for i, c := range cases {
		if _, err := ReadXYZ(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
	// Empty input is zero frames, not an error.
	frames, err := ReadXYZ(strings.NewReader(""))
	if err != nil || len(frames) != 0 {
		t.Errorf("empty input: %v, %d frames", err, len(frames))
	}
}
