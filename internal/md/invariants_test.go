package md

import (
	"math"
	"testing"
	"testing/quick"

	"mdm/internal/vec"
)

// Velocity Verlet is time-reversible: run forward n steps, negate the
// velocities, run n more steps, and the system returns to its starting
// configuration (up to floating-point round-off). This is a much stronger
// integrator invariant than energy conservation alone.
func TestVelocityVerletTimeReversible(t *testing.T) {
	f := func(seed int64) bool {
		s, err := NewRockSalt(2, 8.0)
		if err != nil {
			return false
		}
		s.SetMaxwellVelocities(80, seed)
		start := append([]vec.V(nil), s.Pos...)
		it, err := NewIntegrator(s, ljFF{eps: 0.01, sigma: 3.0}, 1.0)
		if err != nil {
			return false
		}
		const n = 25
		if err := it.Run(n, nil); err != nil {
			return false
		}
		for i := range s.Vel {
			s.Vel[i] = s.Vel[i].Neg()
		}
		// Re-kick: the integrator caches forces at the current positions, so
		// reversal is exact for velocity Verlet.
		if err := it.Run(n, nil); err != nil {
			return false
		}
		worst := 0.0
		for i := range s.Pos {
			if d := s.Pos[i].Sub(start[i]).MinImage(s.L).Norm(); d > worst {
				worst = d
			}
		}
		return worst < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

// Momentum is exactly conserved by pair forces under NVE for any seed.
func TestMomentumConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		s, err := NewRockSalt(2, 8.0)
		if err != nil {
			return false
		}
		s.SetMaxwellVelocities(120, seed)
		it, err := NewIntegrator(s, ljFF{eps: 0.01, sigma: 3.0}, 1.0)
		if err != nil {
			return false
		}
		if err := it.Run(20, nil); err != nil {
			return false
		}
		var p vec.V
		for i := range s.Vel {
			p = p.Add(s.Vel[i].Scale(s.Mass[i]))
		}
		return p.Norm() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

// The thermostat hits the target exactly for any positive target.
func TestNVTTargetProperty(t *testing.T) {
	f := func(raw float64) bool {
		target := 50 + math.Abs(math.Mod(raw, 2000))
		s, err := NewRockSalt(2, 8.0)
		if err != nil {
			return false
		}
		s.SetMaxwellVelocities(300, 9)
		it, err := NewIntegrator(s, ljFF{eps: 0.01, sigma: 3.0}, 1.0)
		if err != nil {
			return false
		}
		it.Mode = NVT
		it.Target = target
		if err := it.Run(3, nil); err != nil {
			return false
		}
		return math.Abs(s.Temperature()-target) < 1e-6*target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
