package md

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzReadCheckpoint drives the checkpoint decoder (current v2 format and
// the legacy checksum-less v1) with arbitrary bytes. It must never panic,
// and any state it accepts must be a valid dynamical system that survives a
// write-and-reread round trip.
func FuzzReadCheckpoint(f *testing.F) {
	sys, err := NewRockSalt(1, 5.64)
	if err != nil {
		f.Fatal(err)
	}
	sys.SetMaxwellVelocities(300, 1)
	var v2 bytes.Buffer
	if err := WriteCheckpoint(&v2, sys, 7); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	// A legacy v1 file: same payload, version 1, no checksum field.
	var cp map[string]any
	if err := json.Unmarshal(v2.Bytes(), &cp); err != nil {
		f.Fatal(err)
	}
	cp["version"] = 1
	delete(cp, "crc32")
	v1, err := json.Marshal(cp)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(v1, '\n'))
	f.Add([]byte(`{"version":3,"l":5.64,"step":0}`))
	f.Add([]byte(`{"version":2,"l":5.64,"step":0,"crc32":12345}`))
	f.Add([]byte("{\"version\":2,\"l\":5.6"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, step, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("nil system without error")
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("accepted invalid system: %v", verr)
		}
		var out bytes.Buffer
		if werr := WriteCheckpoint(&out, s, step); werr != nil {
			t.Fatalf("accepted state does not re-serialize: %v", werr)
		}
		s2, step2, rerr := ReadCheckpoint(&out)
		if rerr != nil {
			t.Fatalf("round trip failed: %v", rerr)
		}
		if step2 != step || s2.N() != s.N() {
			t.Fatalf("round trip changed state: step %d->%d, n %d->%d", step, step2, s.N(), s2.N())
		}
	})
}
