// Package treecode implements the Barnes–Hut hierarchical force calculation
// [Barnes & Hut 1986], the O(N log N) method the paper discusses as the
// alternative to the Ewald summation (§6.3: "If we use tree-code with MDM,
// we can not only compare the accuracy with Ewald method but also perform
// larger simulation that cannot be done with Ewald method"). GRAPE-style
// machines accelerate it by evaluating the node–particle interactions on the
// pipelines [Makino 1991]; here the walk produces exactly the central-force
// evaluations a MDGRAPE-2 pipeline would execute.
//
// The implementation handles open (non-periodic) boundary conditions, as
// tree codes classically do. For charge-neutral systems the cells' monopole
// moments nearly vanish, so cells carry monopole AND dipole moments; the
// multipole acceptance criterion is the standard s/d < θ.
package treecode

import (
	"fmt"
	"math"

	"mdm/internal/units"
	"mdm/internal/vec"
)

// node is one octree cell.
type node struct {
	center    vec.V   // geometric center of the cube
	half      float64 // half side length
	q         float64 // total charge (monopole)
	qCenter   vec.V   // charge-weighted position numerator Σ q_i r_i
	dipole    vec.V   // Σ q_i (r_i - center)
	particles []int   // leaf bucket (non-empty only for leaves)
	children  [8]*node
	count     int // particles in the subtree
}

// Tree is a built Barnes–Hut octree over a particle set.
type Tree struct {
	Theta float64 // opening angle; smaller is more accurate
	pos   []vec.V
	q     []float64
	root  *node

	// NodeInteractions counts particle–node multipole evaluations done by
	// the last Forces call — the work a GRAPE pipeline would execute.
	NodeInteractions int64
	// LeafInteractions counts direct particle–particle evaluations.
	LeafInteractions int64
}

// Build constructs the octree. theta in (0, 1] is the usual accuracy range;
// theta = 0 forces the walk to open every cell (exact direct summation).
func Build(pos []vec.V, q []float64, theta float64) (*Tree, error) {
	if len(pos) == 0 {
		return nil, fmt.Errorf("treecode: empty particle set")
	}
	if len(pos) != len(q) {
		return nil, fmt.Errorf("treecode: %d positions vs %d charges", len(pos), len(q))
	}
	if theta < 0 || theta > 2 {
		return nil, fmt.Errorf("treecode: theta %g outside [0, 2]", theta)
	}
	// Bounding cube.
	lo, hi := pos[0], pos[0]
	for _, p := range pos {
		lo = vec.New(math.Min(lo.X, p.X), math.Min(lo.Y, p.Y), math.Min(lo.Z, p.Z))
		hi = vec.New(math.Max(hi.X, p.X), math.Max(hi.Y, p.Y), math.Max(hi.Z, p.Z))
	}
	center := lo.Add(hi).Scale(0.5)
	half := math.Max(hi.X-lo.X, math.Max(hi.Y-lo.Y, hi.Z-lo.Z))/2 + 1e-9

	t := &Tree{Theta: theta, pos: pos, q: q}
	t.root = &node{center: center, half: half}
	for i := range pos {
		t.insert(t.root, i, 0)
	}
	t.computeMoments(t.root)
	return t, nil
}

const maxDepth = 48

// insert places particle i into the subtree rooted at n. Leaves hold one
// particle, except at maxDepth where they become buckets — the safety valve
// for coincident particles.
func (t *Tree) insert(n *node, i, depth int) {
	n.count++
	if n.count == 1 || depth >= maxDepth {
		n.particles = append(n.particles, i)
		return
	}
	if len(n.particles) > 0 {
		// Push the resident particle(s) down first.
		resident := n.particles
		n.particles = nil
		for _, r := range resident {
			t.insertChild(n, r, depth)
		}
	}
	t.insertChild(n, i, depth)
}

func (t *Tree) insertChild(n *node, i, depth int) {
	p := t.pos[i]
	oct := 0
	if p.X >= n.center.X {
		oct |= 1
	}
	if p.Y >= n.center.Y {
		oct |= 2
	}
	if p.Z >= n.center.Z {
		oct |= 4
	}
	if n.children[oct] == nil {
		h := n.half / 2
		off := vec.New(
			h*float64(2*(oct&1)-1),
			h*float64(2*((oct>>1)&1)-1),
			h*float64(2*((oct>>2)&1)-1),
		)
		n.children[oct] = &node{center: n.center.Add(off), half: h}
	}
	t.insert(n.children[oct], i, depth+1)
}

// computeMoments fills monopole and dipole moments bottom-up.
func (t *Tree) computeMoments(n *node) {
	if n == nil {
		return
	}
	if len(n.particles) > 0 {
		for _, pi := range n.particles {
			qi := t.q[pi]
			n.q += qi
			n.qCenter = n.qCenter.Add(t.pos[pi].Scale(qi))
			n.dipole = n.dipole.Add(t.pos[pi].Sub(n.center).Scale(qi))
		}
		return
	}
	for _, c := range n.children {
		if c == nil {
			continue
		}
		t.computeMoments(c)
		n.q += c.q
		n.qCenter = n.qCenter.Add(c.qCenter)
		// Shift the child dipole to this node's center:
		// d_parent = Σ q (r - C_p) = d_child + q_child (C_c - C_p).
		n.dipole = n.dipole.Add(c.dipole).Add(c.center.Sub(n.center).Scale(c.q))
	}
}

// ForceOn returns the Coulomb force on particle i (in eV/Å with charges in
// e), computed by the tree walk.
func (t *Tree) ForceOn(i int) vec.V {
	f := t.walk(t.root, i)
	return f.Scale(units.Coulomb * t.q[i])
}

// Forces returns the force on every particle and resets the interaction
// counters before accumulating them.
func (t *Tree) Forces() []vec.V {
	t.NodeInteractions = 0
	t.LeafInteractions = 0
	out := make([]vec.V, len(t.pos))
	for i := range out {
		out[i] = t.walk(t.root, i).Scale(units.Coulomb * t.q[i])
	}
	return out
}

// walk returns the field (force per unit source charge factor) at particle i
// from the subtree n.
func (t *Tree) walk(n *node, i int) vec.V {
	if n == nil || n.count == 0 {
		return vec.Zero
	}
	if len(n.particles) > 0 {
		var acc vec.V
		for _, pj := range n.particles {
			if pj == i {
				continue
			}
			t.LeafInteractions++
			r := t.pos[i].Sub(t.pos[pj])
			d2 := r.Norm2()
			if d2 == 0 {
				continue
			}
			d := math.Sqrt(d2)
			acc = acc.Add(r.Scale(t.q[pj] / (d2 * d)))
		}
		return acc
	}
	r := t.pos[i].Sub(n.center)
	d := r.Norm()
	if d > 0 && (2*n.half)/d < t.Theta {
		// Accepted: monopole + dipole field about the cell center.
		t.NodeInteractions++
		d2 := d * d
		d3 := d2 * d
		f := r.Scale(n.q / d3)
		// Dipole term: E = (3 (p·r̂) r̂ - p) / d³.
		pr := n.dipole.Dot(r) / d
		f = f.Add(r.Scale(3 * pr / (d3 * d)).Sub(n.dipole.Scale(1 / d3)))
		return f
	}
	var acc vec.V
	for _, c := range n.children {
		if c != nil {
			acc = acc.Add(t.walk(c, i))
		}
	}
	return acc
}

// Direct computes the exact open-boundary Coulomb forces by the O(N²) sum.
func Direct(pos []vec.V, q []float64) []vec.V {
	out := make([]vec.V, len(pos))
	for i := range pos {
		var acc vec.V
		for j := range pos {
			if j == i {
				continue
			}
			r := pos[i].Sub(pos[j])
			d2 := r.Norm2()
			if d2 == 0 {
				continue
			}
			d := math.Sqrt(d2)
			acc = acc.Add(r.Scale(q[j] / (d2 * d)))
		}
		out[i] = acc.Scale(units.Coulomb * q[i])
	}
	return out
}

// Depth returns the maximum depth of the built tree (diagnostics).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil {
		return 0
	}
	best := 0
	for _, c := range n.children {
		if d := depth(c); d > best {
			best = d
		}
	}
	return best + 1
}
