package treecode

import (
	"math"
	"math/rand"
	"testing"

	"mdm/internal/units"
	"mdm/internal/vec"
)

func randomCloud(n int, l float64, seed int64, neutral bool) ([]vec.V, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]vec.V, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		if neutral {
			q[i] = float64(1 - 2*(i%2))
		} else {
			q[i] = 1
		}
	}
	return pos, q
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, nil, 0.5); err == nil {
		t.Error("empty set accepted")
	}
	pos, q := randomCloud(4, 10, 1, false)
	if _, err := Build(pos, q[:3], 0.5); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Build(pos, q, -1); err == nil {
		t.Error("negative theta accepted")
	}
	if _, err := Build(pos, q, 3); err == nil {
		t.Error("theta > 2 accepted")
	}
}

func TestTwoBodyExact(t *testing.T) {
	pos := []vec.V{vec.New(0, 0, 0), vec.New(2, 0, 0)}
	q := []float64{1, -1}
	tr, err := Build(pos, q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	f := tr.ForceOn(0)
	want := units.Coulomb / 4 // attraction toward +x
	if math.Abs(f.X-want) > 1e-12*want {
		t.Errorf("F_x = %g, want %g", f.X, want)
	}
	if f.Y != 0 || f.Z != 0 {
		t.Errorf("transverse force: %v", f)
	}
}

func TestThetaZeroIsExact(t *testing.T) {
	pos, q := randomCloud(60, 12, 2, true)
	tr, err := Build(pos, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Forces()
	want := Direct(pos, q)
	for i := range got {
		if d := got[i].Sub(want[i]).Norm(); d > 1e-9*(1+want[i].Norm()) {
			t.Fatalf("theta=0 not exact at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if tr.NodeInteractions != 0 {
		t.Errorf("theta=0 accepted %d multipoles", tr.NodeInteractions)
	}
}

func TestAccuracyImprovesWithTheta(t *testing.T) {
	pos, q := randomCloud(300, 20, 3, true)
	want := Direct(pos, q)
	fscale := vec.RMS(want)
	var prev float64 = math.Inf(1)
	for _, theta := range []float64{0.9, 0.6, 0.3} {
		tr, err := Build(pos, q, theta)
		if err != nil {
			t.Fatal(err)
		}
		got := tr.Forces()
		rms := 0.0
		for i := range got {
			rms += got[i].Sub(want[i]).Norm2()
		}
		rms = math.Sqrt(rms/float64(len(got))) / fscale
		t.Logf("theta=%.1f: rms force error %.2e, %d node + %d leaf interactions",
			theta, rms, tr.NodeInteractions, tr.LeafInteractions)
		if rms >= prev {
			t.Errorf("error did not shrink at theta=%g (%g >= %g)", theta, rms, prev)
		}
		prev = rms
	}
	if prev > 5e-3 {
		t.Errorf("theta=0.3 rms error = %g, want better than 5e-3", prev)
	}
}

func TestNeutralCloudUsesDipoles(t *testing.T) {
	// A neutral system's cells have tiny monopoles; without dipole moments
	// the tree force would be badly wrong. Verify reasonable accuracy.
	pos, q := randomCloud(400, 25, 4, true)
	tr, _ := Build(pos, q, 0.5)
	got := tr.Forces()
	want := Direct(pos, q)
	fscale := vec.RMS(want)
	rms := 0.0
	for i := range got {
		rms += got[i].Sub(want[i]).Norm2()
	}
	rms = math.Sqrt(rms/float64(len(got))) / fscale
	if rms > 2e-2 {
		t.Errorf("neutral-cloud rms error = %g", rms)
	}
	if tr.NodeInteractions == 0 {
		t.Error("walk never accepted a multipole")
	}
}

func TestWorkScalesSubQuadratically(t *testing.T) {
	// Interactions per particle should grow like log N, not N.
	perParticle := func(n int) float64 {
		pos, q := randomCloud(n, 20*math.Cbrt(float64(n)/300), 5, false)
		tr, _ := Build(pos, q, 0.6)
		tr.Forces()
		return float64(tr.NodeInteractions+tr.LeafInteractions) / float64(n)
	}
	small := perParticle(200)
	large := perParticle(1600)
	// Direct would grow ×8; tree should be ×<2.5.
	if ratio := large / small; ratio > 2.5 {
		t.Errorf("work per particle grew ×%.2f from N=200 to N=1600", ratio)
	}
}

func TestCoincidentParticles(t *testing.T) {
	// Stacked particles must not loop forever or produce NaN.
	pos := []vec.V{vec.New(1, 1, 1), vec.New(1, 1, 1), vec.New(3, 1, 1)}
	q := []float64{1, 1, -1}
	tr, err := Build(pos, q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	f := tr.Forces()
	for i, fi := range f {
		if !fi.IsFinite() {
			t.Errorf("non-finite force on %d: %v", i, fi)
		}
	}
}

func TestMomentumConservationDirect(t *testing.T) {
	pos, q := randomCloud(50, 10, 6, true)
	f := Direct(pos, q)
	if s := vec.Sum(f); s.Norm() > 1e-9*vec.RMS(f)*float64(len(f)) {
		t.Errorf("direct net force = %v", s)
	}
}

func TestDepth(t *testing.T) {
	pos, q := randomCloud(100, 10, 7, false)
	tr, _ := Build(pos, q, 0.5)
	if d := tr.Depth(); d < 2 || d > 30 {
		t.Errorf("depth = %d, implausible", d)
	}
}

func BenchmarkTreeForces1000(b *testing.B) {
	pos, q := randomCloud(1000, 30, 1, true)
	tr, _ := Build(pos, q, 0.6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Forces()
	}
}

func BenchmarkDirectForces1000(b *testing.B) {
	pos, q := randomCloud(1000, 30, 1, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Direct(pos, q)
	}
}
