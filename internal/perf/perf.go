// Package perf implements the performance-accounting model behind the
// paper's headline results: Table 4 (floating-point operations per step,
// seconds per step, calculation speed and effective speed for the current
// MDM, a conventional computer, and the future MDM) and Table 5 (hardware
// generations and their efficiencies).
//
// Flop counting follows §2 exactly (59 operations per real-space pair, 64
// per particle-wave pair; N_int, N_int_g and N_wv from eqs. 5, 6 and 13).
// Step times come from a component model:
//
//	t_step = max(t_wine, t_mdg) + t_host
//	t_wine = F_wn /(P_wine·η_wine) + t_comm_wine
//	t_mdg  = F_re /(P_mdg ·η_mdg ) + t_comm_mdg
//
// where the communication terms count position/structure-factor/force bytes
// over the PCI bridges and Myrinet of package host, and η is the pipeline
// duty-cycle. η for the current machine is calibrated so the current-MDM
// column reproduces the measured 43.8 s/step; the future machine then uses
// the paper's own 50% efficiency estimate (§6.1, Table 5). The paper's
// "effective speed" normalization — divide the cheapest conventional
// operation count by the same wall-clock time — is reproduced verbatim.
package perf

import (
	"fmt"
	"math"

	"mdm/internal/ewald"
	"mdm/internal/host"
)

// Bytes per particle for positions/charges sent to the boards, and per force
// vector returned (3 × float64), matching the board memory layouts.
const (
	posBytes   = 16
	forceBytes = 24
	scBytes    = 16 // S and C (or a_n·S, a_n·C) per wave
)

// HostFlopsPerParticle is the host-side work per particle per step
// (integration, thermostat, bookkeeping) in the flop model.
const HostFlopsPerParticle = 60

// MachineModel describes one machine generation for the timing model.
type MachineModel struct {
	Name string

	// Real-space engine.
	MDGPeak  float64 // flop/s
	MDGEff   float64 // pipeline duty-cycle η
	RealGeom float64 // ewald.GeomCell27 for MDGRAPE-2, GeomHalfSphere for CPUs

	// Wavenumber engine.
	WinePeak float64
	WineEff  float64

	// Interconnect and host.
	Host host.Model

	// Conventional marks the general-purpose column: one engine does both
	// halves (speeds equal), no board communication.
	Conventional bool
}

// Calibration constants: the current-generation pipeline duty cycles that
// reproduce the measured 43.8 s/step of §5 through this package's component
// model. They are close to — but not identical with — the 26%/29%
// "efficiency" of Table 5, whose accounting the paper does not spell out
// (see EXPERIMENTS.md).
const (
	CalibratedWineEff = 0.392
	CalibratedMDGEff  = 0.40
)

// CurrentMDM is the July-2000 machine: 45 Tflops WINE-2 + 1 Tflops
// MDGRAPE-2 on 32-bit PCI and first-generation Myrinet.
func CurrentMDM() MachineModel {
	return MachineModel{
		Name:     "MDM current",
		MDGPeak:  1.024e12, // 64 chips × 16 Gflops
		MDGEff:   CalibratedMDGEff,
		RealGeom: ewald.GeomCell27,
		WinePeak: 45e12,
		WineEff:  CalibratedWineEff,
		Host:     host.Current(),
	}
}

// FutureMDM is the end-of-2000 machine of §6.1: 1,536 MDGRAPE-2 chips
// (25 Tflops), 2,688 WINE-2 chips (54 Tflops), 64-bit PCI, new Myrinet, and
// the paper's 50% efficiency estimate.
func FutureMDM() MachineModel {
	return MachineModel{
		Name:     "MDM future",
		MDGPeak:  24.6e12, // 1,536 chips × 16 Gflops
		MDGEff:   0.5,
		RealGeom: ewald.GeomCell27,
		WinePeak: 54e12,
		WineEff:  0.5,
		Host:     host.Future(),
	}
}

// Conventional is the general-purpose column: a machine that executes the
// half-sphere operation count at the given sustained speed for both halves.
func Conventional(speed float64) MachineModel {
	return MachineModel{
		Name:         "Conventional",
		MDGPeak:      speed,
		MDGEff:       1,
		RealGeom:     ewald.GeomHalfSphere,
		WinePeak:     speed,
		WineEff:      1,
		Host:         host.Current(),
		Conventional: true,
	}
}

// CostModel returns the ewald cost model implied by this machine (for the α
// optimizer).
func (m MachineModel) CostModel() ewald.CostModel {
	return ewald.CostModel{
		RealGeom:  m.RealGeom,
		SpeedReal: m.MDGPeak * m.MDGEff,
		SpeedWave: m.WinePeak * m.WineEff,
	}
}

// OptimalParams returns the Ewald discretization this machine would choose
// for an N-particle box of side l — the α of its Table 4 column.
func (m MachineModel) OptimalParams(n int, l float64) ewald.Params {
	density := float64(n) / (l * l * l)
	// The α optimum depends only on the speed *ratio*, which for the paper's
	// choice was the peak ratio (their 85.0 follows from 45:1, not from the
	// measured efficiencies).
	cm := ewald.CostModel{RealGeom: m.RealGeom, SpeedReal: m.MDGPeak, SpeedWave: m.WinePeak}
	return cm.BalancedParams(l, density)
}

// Breakdown is the per-component step time.
type Breakdown struct {
	TWineCompute float64
	TWineComm    float64
	TMDGCompute  float64
	TMDGComm     float64
	THost        float64
	Total        float64
}

// StepFlops returns the §2 operation counts for this machine's geometry.
func (m MachineModel) StepFlops(p ewald.Params, n int, density float64) (re, wn float64) {
	cm := ewald.CostModel{RealGeom: m.RealGeom, SpeedReal: 1, SpeedWave: 1}
	return cm.StepFlops(p, n, density)
}

// StepTime evaluates the component timing model for one MD step.
func (m MachineModel) StepTime(p ewald.Params, n int, density float64) Breakdown {
	re, wn := m.StepFlops(p, n, density)
	var b Breakdown
	b.TWineCompute = wn / (m.WinePeak * m.WineEff)
	b.TMDGCompute = re / (m.MDGPeak * m.MDGEff)
	if !m.Conventional {
		nw := p.NWv()
		nf := float64(n)
		// WINE-2 traffic per step over the cluster bridges: positions out,
		// structure factors back and forth, forces back. Boards hold
		// particle blocks; each bridge carries its share.
		wineLinks := float64(m.Host.WineLinks())
		boardsPerBridge := 7.0
		wineBytes := nf*posBytes/wineLinks + // positions, partitioned
			2*2*nw*scBytes*boardsPerBridge + // S±C per board, both directions
			nf*forceBytes/wineLinks // forces, partitioned
		b.TWineComm = m.Host.PCITime(int64(wineBytes))

		// MDGRAPE-2 traffic: each cluster's two boards receive the j-set of
		// its domain (own + halo ≈ 1.5× share) and return forces.
		mdgLinks := float64(m.Host.MDGLinks())
		jBytes := 2 * 1.5 * nf / mdgLinks * posBytes
		mdgBytes := jBytes + nf*forceBytes/mdgLinks
		b.TMDGComm = m.Host.PCITime(int64(mdgBytes))
	}
	// Host integration + inter-node halo/gather traffic.
	b.THost = m.Host.HostTime(HostFlopsPerParticle*float64(n)) +
		m.Host.NetTime(int64(float64(n)*posBytes/float64(m.Host.Nodes)))
	b.Total = math.Max(b.TWineCompute+b.TWineComm, b.TMDGCompute+b.TMDGComm) + b.THost
	return b
}

// Column is one column of Table 4.
type Column struct {
	Name       string
	N          int
	Alpha      float64
	RCut       float64
	LKCut      float64
	NInt       float64 // half-sphere count (conventional only; 0 otherwise)
	NIntG      float64 // 27-cell count (MDM columns; 0 otherwise)
	NWv        float64
	FlopsReal  float64
	FlopsWave  float64
	FlopsTotal float64
	SecPerStep float64 // component-model prediction
	CalcTflops float64 // FlopsTotal / SecPerStep
	EffTflops  float64 // conventional-minimum flops / SecPerStep
}

// PaperTable4 holds the values printed in the paper for comparison.
var PaperTable4 = map[string]Column{
	"MDM current":  {Alpha: 85.0, RCut: 26.4, LKCut: 63.9, NIntG: 1.52e4, NWv: 5.46e5, FlopsReal: 1.69e13, FlopsWave: 6.58e14, FlopsTotal: 6.75e14, SecPerStep: 43.8, CalcTflops: 15.4, EffTflops: 1.34},
	"Conventional": {Alpha: 30.1, RCut: 74.4, LKCut: 22.7, NInt: 2.65e4, NWv: 2.44e4, FlopsReal: 2.94e13, FlopsWave: 2.94e13, FlopsTotal: 5.88e13, SecPerStep: 43.8, CalcTflops: 1.34, EffTflops: 1.34},
	"MDM future":   {Alpha: 50.3, RCut: 44.5, LKCut: 37.9, NIntG: 7.32e4, NWv: 1.14e5, FlopsReal: 8.13e13, FlopsWave: 1.37e14, FlopsTotal: 2.18e14, SecPerStep: 4.48, CalcTflops: 48.7, EffTflops: 13.1},
}

// PaperN and PaperL are the §5 run size: 9,410,548 NaCl ion pairs in an
// 850 Å box.
const (
	PaperN = 18821096
	PaperL = 850.0
)

// Table4 generates the three columns of Table 4 for an N-particle box of
// side l. Each machine chooses its own optimal α; the conventional column's
// step time is, by the paper's construction, the measured MDM step time
// (same wall-clock, minimal operation count), and the effective speed of
// every column is the conventional operation count divided by that column's
// step time.
func Table4(n int, l float64) ([]Column, error) {
	if n < 1 || l <= 0 {
		return nil, fmt.Errorf("perf: invalid system n=%d l=%g", n, l)
	}
	density := float64(n) / (l * l * l)

	cur := CurrentMDM()
	fut := FutureMDM()

	curP := cur.OptimalParams(n, l)
	futP := fut.OptimalParams(n, l)
	convP := ewald.ConventionalCost().BalancedParams(l, density)

	// Minimal conventional operation count: the effective-speed yardstick.
	convRe, convWn := Conventional(1).StepFlops(convP, n, density)
	convTotal := convRe + convWn

	curT := cur.StepTime(curP, n, density).Total
	futT := fut.StepTime(futP, n, density).Total

	mk := func(name string, m MachineModel, p ewald.Params, t float64) Column {
		re, wn := m.StepFlops(p, n, density)
		col := Column{
			Name:       name,
			N:          n,
			Alpha:      p.Alpha,
			RCut:       p.RCut,
			LKCut:      p.LKCut,
			NWv:        p.NWv(),
			FlopsReal:  re,
			FlopsWave:  wn,
			FlopsTotal: re + wn,
			SecPerStep: t,
			CalcTflops: (re + wn) / t / 1e12,
			EffTflops:  convTotal / t / 1e12,
		}
		if m.RealGeom == ewald.GeomCell27 {
			col.NIntG = p.NIntG(density)
		} else {
			col.NInt = p.NInt(density)
		}
		return col
	}

	cols := []Column{
		mk("MDM current", cur, curP, curT),
		// The conventional machine is *defined* to take the same time as the
		// measured MDM run (Table 4's construction).
		mk("Conventional", Conventional(convTotal/curT), convP, curT),
		mk("MDM future", fut, futP, futT),
	}
	return cols, nil
}

// Table5Row is one row of Table 5.
type Table5Row struct {
	Quantity string
	Current  float64
	Future   float64
}

// Table5 generates the current-vs-future comparison of Table 5. The
// efficiency rows report this package's calibrated/estimated duty cycles;
// the paper quotes 26/29% (current) and 50% (future).
func Table5() []Table5Row {
	cur, fut := CurrentMDM(), FutureMDM()
	return []Table5Row{
		{"Number of MDGRAPE-2 chips", 64, 1536},
		{"Number of WINE-2 chips", 2240, 2688},
		{"Peak performance of MDGRAPE-2 (Tflops)", cur.MDGPeak / 1e12, fut.MDGPeak / 1e12},
		{"Peak performance of WINE-2 (Tflops)", cur.WinePeak / 1e12, fut.WinePeak / 1e12},
		{"Efficiency of MDGRAPE-2 (%)", cur.MDGEff * 100, fut.MDGEff * 100},
		{"Efficiency of WINE-2 (%)", cur.WineEff * 100, fut.WineEff * 100},
	}
}
