package perf

import (
	"math"
	"testing"
)

func relClose(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Abs(want)
}

func TestTable4Validation(t *testing.T) {
	if _, err := Table4(0, 850); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Table4(100, 0); err == nil {
		t.Error("l=0 accepted")
	}
}

func TestTable4ReproducesPaper(t *testing.T) {
	cols, err := Table4(PaperN, PaperL)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 {
		t.Fatalf("columns = %d", len(cols))
	}
	for _, col := range cols {
		paper, ok := PaperTable4[col.Name]
		if !ok {
			t.Fatalf("unknown column %q", col.Name)
		}
		// α, r_cut, Lk_cut within a few percent (the paper rounds).
		if !relClose(col.Alpha, paper.Alpha, 0.05) {
			t.Errorf("%s: α = %.1f, paper %.1f", col.Name, col.Alpha, paper.Alpha)
		}
		if !relClose(col.RCut, paper.RCut, 0.06) {
			t.Errorf("%s: r_cut = %.1f, paper %.1f", col.Name, col.RCut, paper.RCut)
		}
		if !relClose(col.LKCut, paper.LKCut, 0.06) {
			t.Errorf("%s: Lk_cut = %.1f, paper %.1f", col.Name, col.LKCut, paper.LKCut)
		}
		// Interaction counts.
		if paper.NInt > 0 && !relClose(col.NInt, paper.NInt, 0.1) {
			t.Errorf("%s: N_int = %.3g, paper %.3g", col.Name, col.NInt, paper.NInt)
		}
		if paper.NIntG > 0 && !relClose(col.NIntG, paper.NIntG, 0.15) {
			t.Errorf("%s: N_int_g = %.3g, paper %.3g", col.Name, col.NIntG, paper.NIntG)
		}
		if !relClose(col.NWv, paper.NWv, 0.15) {
			t.Errorf("%s: N_wv = %.3g, paper %.3g", col.Name, col.NWv, paper.NWv)
		}
		// Operation counts.
		if !relClose(col.FlopsReal, paper.FlopsReal, 0.15) {
			t.Errorf("%s: F_re = %.3g, paper %.3g", col.Name, col.FlopsReal, paper.FlopsReal)
		}
		if !relClose(col.FlopsWave, paper.FlopsWave, 0.15) {
			t.Errorf("%s: F_wn = %.3g, paper %.3g", col.Name, col.FlopsWave, paper.FlopsWave)
		}
	}
}

func TestTable4HeadlineNumbers(t *testing.T) {
	cols, err := Table4(PaperN, PaperL)
	if err != nil {
		t.Fatal(err)
	}
	cur, conv, fut := cols[0], cols[1], cols[2]

	// The calibrated model must land on the measured 43.8 s/step within 10%.
	if !relClose(cur.SecPerStep, 43.8, 0.10) {
		t.Errorf("current sec/step = %.1f, paper 43.8", cur.SecPerStep)
	}
	// Calculation speed ≈ 15.4 Tflops, effective ≈ 1.34 Tflops — the title.
	if !relClose(cur.CalcTflops, 15.4, 0.20) {
		t.Errorf("current calc speed = %.1f, paper 15.4", cur.CalcTflops)
	}
	if !relClose(cur.EffTflops, 1.34, 0.20) {
		t.Errorf("current effective speed = %.2f, paper 1.34 (the title)", cur.EffTflops)
	}
	t.Logf("current: %.1f s/step, %.1f Tflops calc, %.2f Tflops effective (paper: 43.8 / 15.4 / 1.34)",
		cur.SecPerStep, cur.CalcTflops, cur.EffTflops)

	// Conventional column: same wall clock, calc == effective.
	if conv.SecPerStep != cur.SecPerStep {
		t.Errorf("conventional sec/step = %g, must equal current %g by construction", conv.SecPerStep, cur.SecPerStep)
	}
	if !relClose(conv.CalcTflops, conv.EffTflops, 1e-9) {
		t.Errorf("conventional calc %.3f != effective %.3f", conv.CalcTflops, conv.EffTflops)
	}

	// Future column: the shape claim — roughly an order of magnitude faster,
	// effective speed around 10 Tflops (paper: 4.48 s, 13.1 Tflops; our model
	// predicts close but not identical values, see EXPERIMENTS.md).
	if ratio := cur.SecPerStep / fut.SecPerStep; ratio < 5 || ratio > 15 {
		t.Errorf("future speedup ×%.1f, paper ×9.8", ratio)
	}
	if fut.EffTflops < 6 || fut.EffTflops > 16 {
		t.Errorf("future effective = %.1f Tflops, paper 13.1", fut.EffTflops)
	}
	t.Logf("future: %.2f s/step, %.1f Tflops calc, %.1f Tflops effective (paper: 4.48 / 48.7 / 13.1)",
		fut.SecPerStep, fut.CalcTflops, fut.EffTflops)

	// The miss-balance statement of §6.1: the current machine wastes ~10× on
	// the wavenumber side; the future machine is balanced within ~2×.
	if imb := cur.FlopsWave / cur.FlopsReal; imb < 20 {
		t.Errorf("current F_wn/F_re = %.1f, expect severe imbalance (paper: 39)", imb)
	}
	if imb := fut.FlopsWave / fut.FlopsReal; imb > 4 {
		t.Errorf("future F_wn/F_re = %.1f, expect near balance (paper: 1.7)", imb)
	}
}

func TestEffectiveSpeedDefinition(t *testing.T) {
	// Effective speed = conventional-minimum flops / step time, for every
	// column (§5: "the effective performance of the MDM is 1.34 Tflops
	// instead of 15.4 Tflops").
	cols, _ := Table4(PaperN, PaperL)
	convTotal := cols[1].FlopsTotal
	for _, col := range cols {
		want := convTotal / col.SecPerStep / 1e12
		if !relClose(col.EffTflops, want, 1e-9) {
			t.Errorf("%s: effective = %g, want %g", col.Name, col.EffTflops, want)
		}
	}
}

func TestStepTimeBreakdown(t *testing.T) {
	m := CurrentMDM()
	p := m.OptimalParams(PaperN, PaperL)
	density := float64(PaperN) / (PaperL * PaperL * PaperL)
	b := m.StepTime(p, PaperN, density)
	if b.Total <= 0 {
		t.Fatal("non-positive step time")
	}
	// Components must assemble per the documented formula.
	want := math.Max(b.TWineCompute+b.TWineComm, b.TMDGCompute+b.TMDGComm) + b.THost
	if math.Abs(b.Total-want) > 1e-12*want {
		t.Errorf("total %g != assembly %g", b.Total, want)
	}
	// The current machine is WINE-limited (the §6.1 miss-balance).
	if b.TWineCompute < b.TMDGCompute {
		t.Error("current machine should be wavenumber-limited")
	}
	// Communication is a visible but not dominant part of the current step.
	if b.TWineComm <= 0 || b.TMDGComm <= 0 {
		t.Error("board communication should cost something")
	}
}

func TestConventionalModel(t *testing.T) {
	m := Conventional(1e9)
	const n, l = 1000, 30.0
	density := float64(n) / (l * l * l)
	p := m.CostModel().BalancedParams(l, density)
	b := m.StepTime(p, n, density)
	if b.TWineComm != 0 || b.TMDGComm != 0 {
		t.Error("conventional machine has no board links")
	}
	// The balanced α makes both compute halves take equal time.
	if !relClose(b.TWineCompute, b.TMDGCompute, 1e-6) {
		t.Errorf("conventional halves unbalanced: %g vs %g", b.TWineCompute, b.TMDGCompute)
	}
}

func TestTable5(t *testing.T) {
	rows := Table5()
	if len(rows) != 6 {
		t.Fatalf("rows = %d, Table 5 has 6", len(rows))
	}
	byName := map[string]Table5Row{}
	for _, r := range rows {
		byName[r.Quantity] = r
	}
	if r := byName["Number of MDGRAPE-2 chips"]; r.Current != 64 || r.Future != 1536 {
		t.Errorf("MDGRAPE-2 chips = %+v", r)
	}
	if r := byName["Number of WINE-2 chips"]; r.Current != 2240 || r.Future != 2688 {
		t.Errorf("WINE-2 chips = %+v", r)
	}
	if r := byName["Peak performance of MDGRAPE-2 (Tflops)"]; !relClose(r.Current, 1, 0.1) || !relClose(r.Future, 25, 0.1) {
		t.Errorf("MDGRAPE-2 peaks = %+v", r)
	}
	if r := byName["Peak performance of WINE-2 (Tflops)"]; !relClose(r.Current, 45, 0.1) || !relClose(r.Future, 54, 0.1) {
		t.Errorf("WINE-2 peaks = %+v", r)
	}
	if r := byName["Efficiency of WINE-2 (%)"]; r.Future != 50 {
		t.Errorf("future WINE-2 efficiency = %+v, paper estimates 50%%", r)
	}
}

func TestOptimalAlphaPerMachine(t *testing.T) {
	if a := CurrentMDM().OptimalParams(PaperN, PaperL).Alpha; !relClose(a, 85.0, 0.05) {
		t.Errorf("current α = %.1f, paper 85.0", a)
	}
	if a := FutureMDM().OptimalParams(PaperN, PaperL).Alpha; !relClose(a, 50.3, 0.06) {
		t.Errorf("future α = %.1f, paper 50.3", a)
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Table4(PaperN, PaperL); err != nil {
			b.Fatal(err)
		}
	}
}

func TestScalingExponents(t *testing.T) {
	// §3.1: "The calculation cost on two special-purpose computers scales as
	// O(N^(3/2)), while that on the host computer and the communication
	// between them scale as O(N). Therefore ... the host computer and the
	// communication do not cause the bottleneck of the system."
	m := CurrentMDM()
	density := float64(PaperN) / (PaperL * PaperL * PaperL)
	timesAt := func(n int) Breakdown {
		l := math.Cbrt(float64(n) / density)
		p := m.OptimalParams(n, l)
		return m.StepTime(p, n, density)
	}
	n1, n2 := 1_000_000, 8_000_000
	b1, b2 := timesAt(n1), timesAt(n2)
	// Pipeline compute must scale ~N^1.5 (ratio 8^1.5 ≈ 22.6).
	computeRatio := (b2.TWineCompute + b2.TMDGCompute) / (b1.TWineCompute + b1.TMDGCompute)
	if computeRatio < 18 || computeRatio > 28 {
		t.Errorf("compute scaled ×%.1f for 8× particles, want ≈ 22.6 (N^1.5)", computeRatio)
	}
	// Host + communication scale at most linearly (positions/forces ∝ N,
	// structure factors ∝ N_wv ∝ √N, latency constant), so their share of
	// the step shrinks as N grows — the paper's no-bottleneck argument.
	overheadRatio := (b2.THost + b2.TWineComm + b2.TMDGComm) / (b1.THost + b1.TWineComm + b1.TMDGComm)
	if overheadRatio > 9 {
		t.Errorf("host+comm scaled ×%.1f for 8× particles, want at most ≈ 8 (N)", overheadRatio)
	}
	frac1 := (b1.THost + b1.TWineComm + b1.TMDGComm) / b1.Total
	frac2 := (b2.THost + b2.TWineComm + b2.TMDGComm) / b2.Total
	if frac2 >= frac1 {
		t.Errorf("overhead share grew with N: %.0f%% → %.0f%%", frac1*100, frac2*100)
	}
	t.Logf("compute ×%.1f (N^1.5 → 22.6); host+comm ×%.1f, share %.0f%% → %.0f%%",
		computeRatio, overheadRatio, frac1*100, frac2*100)
}

func TestMillionParticleProjection(t *testing.T) {
	// §6.2: "MDM should take 0.19 seconds per time-step for MD simulations
	// with a million particles using the Ewald method."
	density := float64(PaperN) / (PaperL * PaperL * PaperL)
	const n = 1_000_000
	l := math.Cbrt(float64(n) / density)
	m := FutureMDM()
	p := m.OptimalParams(n, l)
	b := m.StepTime(p, n, density)
	t.Logf("future MDM at N=1e6: %.3f s/step (paper §6.2: 0.19 s)", b.Total)
	if b.Total < 0.08 || b.Total > 0.5 {
		t.Errorf("N=1e6 step time = %.3f s, paper projects 0.19 s", b.Total)
	}
	// And the week-long 1.6 ns campaign (3.2e6 steps) stays within ~2 weeks
	// in our model (paper: ~1 week).
	campaign := b.Total * 3.2e6 / 86400
	t.Logf("1.6 ns campaign: %.1f days (paper: ~7)", campaign)
	if campaign > 20 {
		t.Errorf("campaign projection %.1f days, paper: ~7", campaign)
	}
}
