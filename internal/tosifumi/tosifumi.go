// Package tosifumi implements the Tosi–Fumi (Born–Mayer–Huggins) interionic
// potential for alkali halides, the force field the paper uses for molten
// NaCl (§5, eq. 15):
//
//	φ(r) = q_i q_j/(4πε0 r) + A_ij b exp((σ_i+σ_j-r)/ρ) - c_ij/r⁶ - d_ij/r⁸
//
// The Coulomb term is computed by the Ewald machinery (WINE-2 + MDGRAPE-2 in
// the paper); this package provides the short-range part — Born–Mayer
// repulsion plus r⁻⁶ and r⁻⁸ dispersion — which the machine evaluates on
// MDGRAPE-2 through its arbitrary-central-force tables, one table per species
// pair with a_ij = 1 (x = r²) and b_ij = 1.
//
// Default parameters are the Fumi–Tosi 1964 NaCl set, converted to eV/Å.
package tosifumi

import (
	"fmt"
	"math"

	"mdm/internal/units"
	"mdm/internal/vec"
)

// Species indexes the two ion types.
type Species int

// The two ion species of NaCl.
const (
	Na Species = 0
	Cl Species = 1
)

// NumSpecies is the number of ion types in the force field.
const NumSpecies = 2

// String implements fmt.Stringer.
func (s Species) String() string {
	switch s {
	case Na:
		return "Na"
	case Cl:
		return "Cl"
	}
	return fmt.Sprintf("Species(%d)", int(s))
}

// Potential holds the Tosi–Fumi parameters (eq. 15 of the paper).
type Potential struct {
	B     float64                         // b (eV): common repulsion prefactor
	Rho   float64                         // ρ (Å): repulsion softness
	Sigma [NumSpecies]float64             // σ_i (Å): ionic radii parameters
	A     [NumSpecies][NumSpecies]float64 // A_ij: Pauling factors
	C     [NumSpecies][NumSpecies]float64 // c_ij (eV·Å⁶): dipole dispersion
	D     [NumSpecies][NumSpecies]float64 // d_ij (eV·Å⁸): quadrupole dispersion
}

// Default returns the Fumi–Tosi 1964 parameter set for NaCl.
// Dispersion coefficients from the original paper (in 10⁻⁷⁹ J·m⁶ and
// 10⁻⁹⁹ J·m⁸) are converted with 1e-79 J·m⁶ = 0.62415 eV·Å⁶ and
// 1e-99 J·m⁸ = 0.62415 eV·Å⁸.
func Default() *Potential {
	const jm6 = 1e-79 * units.JToEV * units.M6ToA6 // ≈ 0.62415 eV·Å⁶
	const jm8 = 1e-99 * units.JToEV * units.M8ToA8 // ≈ 0.62415 eV·Å⁸
	return &Potential{
		B:     0.338e-19 * units.JToEV, // ≈ 0.2110 eV
		Rho:   0.317,
		Sigma: [2]float64{1.170, 1.585},
		A: [2][2]float64{
			{1.25, 1.00},
			{1.00, 0.75},
		},
		C: [2][2]float64{
			{1.68 * jm6, 11.2 * jm6},
			{11.2 * jm6, 116 * jm6},
		},
		D: [2][2]float64{
			{0.8 * jm8, 13.9 * jm8},
			{13.9 * jm8, 233 * jm8},
		},
	}
}

// Charge returns the ionic charge in units of e.
func Charge(s Species) float64 {
	if s == Na {
		return +1
	}
	return -1
}

// Mass returns the ionic mass in amu.
func Mass(s Species) float64 {
	if s == Na {
		return units.MassNa
	}
	return units.MassCl
}

// ShortEnergy returns the non-Coulomb pair energy at separation r:
// A_ij b exp((σ_i+σ_j-r)/ρ) - c_ij/r⁶ - d_ij/r⁸.
func (p *Potential) ShortEnergy(si, sj Species, r float64) float64 {
	if r <= 0 {
		return math.Inf(1)
	}
	rep := p.A[si][sj] * p.B * math.Exp((p.Sigma[si]+p.Sigma[sj]-r)/p.Rho)
	r2 := r * r
	r6 := r2 * r2 * r2
	r8 := r6 * r2
	return rep - p.C[si][sj]/r6 - p.D[si][sj]/r8
}

// ShortForceScalar returns g(r²) such that the pair force on i is
// g(r²)·r⃗_ij: the MDGRAPE-2 central-force form (eq. 14) of the non-Coulomb
// part, g(r²) = (A b/ρ)exp((σs-r)/ρ)/r - 6c/r⁸ - 8d/r¹⁰.
func (p *Potential) ShortForceScalar(si, sj Species, r2 float64) float64 {
	if r2 <= 0 {
		return 0
	}
	r := math.Sqrt(r2)
	rep := p.A[si][sj] * p.B / p.Rho * math.Exp((p.Sigma[si]+p.Sigma[sj]-r)/p.Rho) / r
	r4 := r2 * r2
	r8 := r4 * r4
	return rep - 6*p.C[si][sj]/r8 - 8*p.D[si][sj]/(r8*r2)
}

// ShortForce returns the non-Coulomb pair force on particle i given
// rij = ri - rj.
func (p *Potential) ShortForce(si, sj Species, rij vec.V) vec.V {
	return rij.Scale(p.ShortForceScalar(si, sj, rij.Norm2()))
}

// GFunc returns the g(x) central-force kernel (x = r² in Å²) for the species
// pair, suitable for loading into a MDGRAPE-2 function-evaluator table with
// a_ij = 1 and b_ij = 1.
func (p *Potential) GFunc(si, sj Species) func(x float64) float64 {
	return func(x float64) float64 { return p.ShortForceScalar(si, sj, x) }
}

// EquilibriumSpacing returns the nearest-neighbor Na–Cl distance (Å) that
// minimizes the static rock-salt lattice energy per ion pair computed with
// the Madelung constant and first/second-shell short-range terms. It is used
// by tests as a sanity check that the parameter set reproduces the known
// NaCl lattice constant (d ≈ 2.8 Å, a ≈ 5.6 Å).
func (p *Potential) EquilibriumSpacing() float64 {
	// E(d) = -M k_e/d + 6 φ_+-(d) + 6 φ_++(√2 d)/... (first shells; the 12
	// like-ion second-shell pairs split 6/6 between Na and Cl per pair).
	energy := func(d float64) float64 {
		const madelung = 1.747565
		e := -madelung * units.Coulomb / d
		e += 6 * p.ShortEnergy(Na, Cl, d)
		s2 := math.Sqrt2 * d
		e += 6 * p.ShortEnergy(Na, Na, s2)
		e += 6 * p.ShortEnergy(Cl, Cl, s2)
		return e
	}
	// Golden-section search on [2, 4] Å.
	lo, hi := 2.0, 4.0
	const phi = 0.6180339887498949
	for i := 0; i < 200; i++ {
		a := hi - phi*(hi-lo)
		b := lo + phi*(hi-lo)
		if energy(a) < energy(b) {
			hi = b
		} else {
			lo = a
		}
	}
	return (lo + hi) / 2
}
