package tosifumi

import (
	"math"
	"testing"
	"testing/quick"

	"mdm/internal/units"
	"mdm/internal/vec"
)

func TestDefaultParameters(t *testing.T) {
	p := Default()
	if math.Abs(p.B-0.2110) > 1e-3 {
		t.Errorf("b = %g eV, want ≈ 0.211", p.B)
	}
	if p.Rho != 0.317 {
		t.Errorf("ρ = %g", p.Rho)
	}
	// Symmetry of the pair tables.
	for i := 0; i < NumSpecies; i++ {
		for j := 0; j < NumSpecies; j++ {
			if p.A[i][j] != p.A[j][i] || p.C[i][j] != p.C[j][i] || p.D[i][j] != p.D[j][i] {
				t.Fatalf("asymmetric parameters at (%d,%d)", i, j)
			}
		}
	}
	// Pauling factors for ±1 charges with n = 8: 1.25, 1.00, 0.75.
	if p.A[Na][Na] != 1.25 || p.A[Na][Cl] != 1.00 || p.A[Cl][Cl] != 0.75 {
		t.Error("Pauling factors wrong")
	}
	// c_-- ≈ 72.4 eV·Å⁶.
	if math.Abs(p.C[Cl][Cl]-72.4) > 0.5 {
		t.Errorf("c_-- = %g eV·Å⁶, want ≈ 72.4", p.C[Cl][Cl])
	}
}

func TestChargeMass(t *testing.T) {
	if Charge(Na) != 1 || Charge(Cl) != -1 {
		t.Error("charges wrong")
	}
	if Charge(Na)+Charge(Cl) != 0 {
		t.Error("NaCl pair not neutral")
	}
	if Mass(Na) >= Mass(Cl) {
		t.Error("Na should be lighter than Cl")
	}
	if Na.String() != "Na" || Cl.String() != "Cl" {
		t.Error("String() wrong")
	}
	if Species(7).String() == "" {
		t.Error("unknown species should still print")
	}
}

func TestShortEnergyShape(t *testing.T) {
	p := Default()
	// Strongly repulsive at short range.
	if e := p.ShortEnergy(Na, Cl, 1.0); e < 1 {
		t.Errorf("E(1 Å) = %g, want strongly positive", e)
	}
	// Attractive (dispersion-dominated) at intermediate range.
	if e := p.ShortEnergy(Cl, Cl, 4.5); e >= 0 {
		t.Errorf("E_ClCl(4.5 Å) = %g, want negative (dispersion)", e)
	}
	// Negligible at the paper's cutoff.
	if e := math.Abs(p.ShortEnergy(Na, Cl, 26.4)); e > 1e-7 {
		t.Errorf("E(26.4 Å) = %g, should be negligible", e)
	}
	// Infinite at contact.
	if e := p.ShortEnergy(Na, Na, 0); !math.IsInf(e, 1) {
		t.Errorf("E(0) = %g", e)
	}
}

func TestForceIsEnergyDerivative(t *testing.T) {
	p := Default()
	const h = 1e-6
	for _, r := range []float64{2.0, 2.8, 3.5, 5.0, 8.0} {
		for si := Species(0); si < NumSpecies; si++ {
			for sj := Species(0); sj < NumSpecies; sj++ {
				grad := (p.ShortEnergy(si, sj, r+h) - p.ShortEnergy(si, sj, r-h)) / (2 * h)
				// F_radial = -dφ/dr; ShortForceScalar is F_radial / r.
				want := -grad / r
				got := p.ShortForceScalar(si, sj, r*r)
				if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
					t.Errorf("%v-%v at r=%g: g = %g, -φ'/r = %g", si, sj, r, got, want)
				}
			}
		}
	}
}

func TestShortForceVector(t *testing.T) {
	p := Default()
	rij := vec.New(1.5, -1.0, 0.5)
	f := p.ShortForce(Na, Cl, rij)
	// Force must be parallel (or anti-parallel) to rij.
	cross := f.Cross(rij).Norm()
	if cross > 1e-12*f.Norm()*rij.Norm() {
		t.Errorf("force not central: cross = %g", cross)
	}
	// At ~2 Å the Na-Cl pair is inside the repulsive wall: force pushes i
	// away from j, i.e. along +rij.
	if f.Dot(rij) <= 0 {
		t.Errorf("force at r=%g not repulsive", rij.Norm())
	}
	// Zero displacement gives zero force (hardware self-pair behaviour).
	if got := p.ShortForce(Na, Na, vec.Zero); got != vec.Zero {
		t.Errorf("self force = %v", got)
	}
}

func TestGFuncMatchesScalar(t *testing.T) {
	p := Default()
	g := p.GFunc(Cl, Cl)
	f := func(r float64) bool {
		r = 1.5 + math.Abs(math.Mod(r, 10))
		return g(r*r) == p.ShortForceScalar(Cl, Cl, r*r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEquilibriumSpacing(t *testing.T) {
	// The Tosi-Fumi set should reproduce the NaCl crystal: d₀ ≈ 2.8 Å
	// (a = 5.64 Å). Static-lattice minimum with only first/second shells is
	// within a few percent.
	d := Default().EquilibriumSpacing()
	if d < 2.6 || d > 3.0 {
		t.Errorf("equilibrium Na-Cl spacing = %g Å, want ≈ 2.8", d)
	}
}

func TestNaClPotentialWellDepth(t *testing.T) {
	// The full Na-Cl pair potential (Coulomb + short range) at the crystal
	// spacing should be a deep well of several eV.
	p := Default()
	const d = 2.82
	e := -units.Coulomb/d + p.ShortEnergy(Na, Cl, d)
	if e > -4 || e < -6.5 {
		t.Errorf("NaCl pair energy at %g Å = %g eV, want ≈ -5", d, e)
	}
}

// Property: the short-range force decays monotonically to zero beyond ~6 Å
// (no spurious oscillations from the implementation).
func TestLongRangeDecay(t *testing.T) {
	p := Default()
	prev := math.Abs(p.ShortForceScalar(Cl, Cl, 36))
	for r := 7.0; r < 25; r += 1.0 {
		cur := math.Abs(p.ShortForceScalar(Cl, Cl, r*r))
		if cur > prev {
			t.Fatalf("|g| grew from %g to %g at r=%g", prev, cur, r)
		}
		prev = cur
	}
}

func BenchmarkShortForceScalar(b *testing.B) {
	p := Default()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = p.ShortForceScalar(Na, Cl, 4.0+float64(i%100)*0.05)
	}
	_ = sink
}
