package store

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"mdm/internal/fault"
)

// FaultFS is an in-memory filesystem that models crash durability and
// consults a fault.StoreHook on every operation. It keeps two views:
//
//   - the live namespace — what the running process sees, updated by every
//     successful operation, and
//   - the durable namespace — what would survive a power cut right now:
//     content advances only at File.Sync, and creates / renames / removes
//     commit only at SyncDir on the parent directory.
//
// A Crash / TornWrite / CrashRename fate latches the filesystem into the
// crashed state: the durable view freezes (plus any torn bytes), and every
// later operation fails with ErrCrashed until Reboot, which discards the
// live view and re-materializes the durable one — the moral equivalent of
// power coming back.
//
// Operation classes consulted on the hook: create (Create and Append), write
// (File.Write), read (ReadFile), rename (Rename), sync (File.Sync and
// SyncDir, one clock). Remove and ReadDir are metadata-only and not faultable
// — crash coverage around them comes from the sync/rename counters of the
// surrounding sequence.
type FaultFS struct {
	mu      sync.Mutex
	hook    fault.StoreHook
	live    map[string]*memFile
	disk    map[string][]byte
	crashed bool
}

// memFile is one live inode.
type memFile struct {
	data    []byte
	synced  int  // prefix of data flushed by Sync (durable iff durable)
	durable bool // this inode's directory entry at its current name is durable
}

// NewFaultFS builds an empty fault-injecting filesystem. hook may be nil
// (no faults, pure in-memory FS with crash-durability bookkeeping).
func NewFaultFS(hook fault.StoreHook) *FaultFS {
	return &FaultFS{
		hook: hook,
		live: make(map[string]*memFile),
		disk: make(map[string][]byte),
	}
}

// fate consults the hook for one operation of the given class. Callers hold
// f.mu.
func (f *FaultFS) fate(class string) fault.StoreFate {
	if f.hook == nil {
		return fault.StoreFate{}
	}
	return f.hook.StoreOp(class)
}

// crash latches the crashed state. Callers hold f.mu.
func (f *FaultFS) crash() {
	f.crashed = true
}

// Crashed reports whether an injected crash has latched the filesystem.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Reboot simulates power restore: the live namespace is discarded and
// rebuilt from the durable one, the crashed latch clears, and hook becomes
// the injection schedule for the new incarnation (nil = no further faults).
func (f *FaultFS) Reboot(hook fault.StoreHook) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.live = make(map[string]*memFile, len(f.disk))
	for path, data := range f.disk {
		f.live[path] = &memFile{data: clone(data), synced: len(data), durable: true}
	}
	f.crashed = false
	f.hook = hook
}

// Create implements FS.
func (f *FaultFS) Create(path string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	switch ft := f.fate(fault.OpCreate); ft.Kind {
	case fault.IOErr:
		if ft.Hit {
			return nil, &fs.PathError{Op: "create", Path: path, Err: ErrIO}
		}
	case fault.Crash:
		if ft.Hit {
			f.crash()
			return nil, ErrCrashed
		}
	}
	// O_TRUNC: the live inode restarts empty. The durable namespace keeps
	// whatever was committed before — a crash right after Create resurrects
	// the old content, which is why atomic replace goes through a temp name.
	mf := &memFile{}
	f.live[path] = mf
	return &faultFile{fs: f, path: path, mf: mf}, nil
}

// Append implements FS. Opening for append counts on the create clock: both
// materialize a writable handle at a name.
func (f *FaultFS) Append(path string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	switch ft := f.fate(fault.OpCreate); ft.Kind {
	case fault.IOErr:
		if ft.Hit {
			return nil, &fs.PathError{Op: "append", Path: path, Err: ErrIO}
		}
	case fault.Crash:
		if ft.Hit {
			f.crash()
			return nil, ErrCrashed
		}
	}
	mf, ok := f.live[path]
	if !ok {
		mf = &memFile{}
		f.live[path] = mf
	}
	return &faultFile{fs: f, path: path, mf: mf}, nil
}

// ReadFile implements FS.
func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	ft := f.fate(fault.OpRead)
	if ft.Hit {
		switch ft.Kind {
		case fault.IOErr:
			return nil, &fs.PathError{Op: "read", Path: path, Err: ErrIO}
		case fault.Crash:
			f.crash()
			return nil, ErrCrashed
		}
	}
	mf, ok := f.live[path]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: path, Err: fs.ErrNotExist}
	}
	data := clone(mf.data)
	if ft.Hit && ft.Kind == fault.BitRot && len(data) > 0 {
		off := ft.Offset % int64(len(data))
		data[off] ^= 1 << 3
	}
	return data, nil
}

// Rename implements FS. The rename is immediately visible in the live
// namespace but durable only after SyncDir on the parent.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	ft := f.fate(fault.OpRename)
	if ft.Hit {
		switch ft.Kind {
		case fault.IOErr:
			return &fs.PathError{Op: "rename", Path: oldpath, Err: ErrIO}
		case fault.CrashRename, fault.Crash:
			f.crash()
			return ErrCrashed
		}
	}
	mf, ok := f.live[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(f.live, oldpath)
	f.live[newpath] = mf
	mf.durable = false // the new name is uncommitted until SyncDir
	return nil
}

// Remove implements FS. The durable unlink commits at SyncDir; a crash
// before that resurrects the file.
func (f *FaultFS) Remove(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	if _, ok := f.live[path]; !ok {
		return &fs.PathError{Op: "remove", Path: path, Err: fs.ErrNotExist}
	}
	delete(f.live, path)
	return nil
}

// MkdirAll implements FS. The fault filesystem's namespace is name-keyed
// with no first-class directories, so materializing one is a crash-gated
// no-op: files under any path can be created directly.
func (f *FaultFS) MkdirAll(string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// ReadDir implements FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	dir = Dir(filepath.Join(dir, "x"))
	var names []string
	for path := range f.live {
		if Dir(path) == dir {
			names = append(names, filepath.Base(path))
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS: it commits dir's current directory entries to the
// durable namespace — creates and renames become durable (content up to each
// file's synced prefix), removed or renamed-away names disappear.
func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	ft := f.fate(fault.OpSync)
	if ft.Hit {
		switch ft.Kind {
		case fault.IOErr:
			return &fs.PathError{Op: "syncdir", Path: dir, Err: ErrIO}
		case fault.Crash:
			f.crash()
			return ErrCrashed
		}
	}
	dir = Dir(filepath.Join(dir, "x"))
	for path := range f.disk {
		if _, ok := f.live[path]; !ok && Dir(path) == dir {
			delete(f.disk, path)
		}
	}
	for path, mf := range f.live {
		if Dir(path) == dir {
			mf.durable = true
			f.disk[path] = clone(mf.data[:mf.synced])
		}
	}
	return nil
}

// DurableBytes returns the content of path in the durable namespace — what a
// crash right now would preserve. Test hook.
func (f *FaultFS) DurableBytes(path string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.disk[path]
	return clone(data), ok
}

// Dump renders the live and durable namespaces for test failure messages.
func (f *FaultFS) Dump() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var b strings.Builder
	var paths []string
	for p := range f.live {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		mf := f.live[p]
		fmt.Fprintf(&b, "live %s: %dB (synced %d, durable %v)\n", p, len(mf.data), mf.synced, mf.durable)
	}
	paths = paths[:0]
	for p := range f.disk {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(&b, "disk %s: %dB\n", p, len(f.disk[p]))
	}
	return b.String()
}

// faultFile is a writable handle on a FaultFS inode.
type faultFile struct {
	fs   *FaultFS
	path string
	mf   *memFile
}

// Write implements io.Writer.
func (h *faultFile) Write(p []byte) (int, error) {
	f := h.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	ft := f.fate(fault.OpWrite)
	if ft.Hit {
		switch ft.Kind {
		case fault.NoSpace:
			return 0, &fs.PathError{Op: "write", Path: h.path, Err: ErrNoSpace}
		case fault.IOErr:
			return 0, &fs.PathError{Op: "write", Path: h.path, Err: ErrIO}
		case fault.TornWrite:
			// Power cut mid-write: the durable view keeps the synced prefix
			// plus the first Bytes bytes of this buffer (if the name was
			// committed); everything else is lost.
			torn := ft.Bytes
			if torn > len(p) {
				torn = len(p)
			}
			if h.mf.durable {
				f.disk[h.path] = append(clone(h.mf.data[:h.mf.synced]), p[:torn]...)
			}
			f.crash()
			return 0, ErrCrashed
		case fault.Crash:
			f.crash()
			return 0, ErrCrashed
		}
	}
	h.mf.data = append(h.mf.data, p...)
	return len(p), nil
}

// Sync implements File: the inode's bytes become its durable content — if
// its directory entry is committed. Syncing a file never commits its name.
func (h *faultFile) Sync() error {
	f := h.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	ft := f.fate(fault.OpSync)
	if ft.Hit {
		switch ft.Kind {
		case fault.IOErr:
			return &fs.PathError{Op: "sync", Path: h.path, Err: ErrIO}
		case fault.Crash:
			f.crash()
			return ErrCrashed
		}
	}
	h.mf.synced = len(h.mf.data)
	if h.mf.durable {
		f.disk[h.path] = clone(h.mf.data)
	}
	return nil
}

// Close implements File. Closing flushes nothing — unsynced bytes stay
// volatile, exactly like the page cache.
func (h *faultFile) Close() error {
	f := h.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
