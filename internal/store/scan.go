package store

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Layout names the durable artifacts of one run.
type Layout struct {
	Checkpoint string // checkpoint path (atomically replaced each commit)
	Journal    string // active journal segment; rotated segments are Journal.NNNN
}

// Validators supplies the format knowledge Scan needs without importing the
// checkpoint (internal/md) and journal (internal/supervise) packages — which
// would cycle, since both write through this package.
type Validators struct {
	// CheckpointStep CRC-validates a checkpoint image and returns its step.
	CheckpointStep func(data []byte) (int, error)
	// ScanSegment validates a journal segment: the steps covered by its
	// valid prefix (one entry per record, in record order), the byte length
	// of that prefix, and a non-nil error only for interior corruption —
	// a torn tail is validLen < len(data) with err == nil.
	ScanSegment func(data []byte) (steps []int, validLen int, err error)
}

// Artifact is one inventoried file.
type Artifact struct {
	Path      string `json:"path"`
	Kind      string `json:"kind"` // "checkpoint", "segment", "temp"
	Seq       int    `json:"seq"`  // segment rotation sequence (0 = active)
	Size      int    `json:"size"`
	ValidLen  int    `json:"valid_len"`            // bytes of the valid prefix
	Step      int    `json:"step,omitempty"`       // checkpoint step
	FirstStep int    `json:"first_step,omitempty"` // segment step range
	LastStep  int    `json:"last_step,omitempty"`
	Status    string `json:"status"` // "ok", "torn", "corrupt", "stale"
}

// Inventory is the recovery manager's verdict on a run directory.
type Inventory struct {
	Artifacts []Artifact `json:"artifacts"`
	// Checkpoint is the validated checkpoint path ("" if none usable) and
	// CheckpointStep its step (-1 if none).
	Checkpoint     string `json:"checkpoint,omitempty"`
	CheckpointStep int    `json:"checkpoint_step"`
	// ResumeStep is the newest step recoverable from the consistent
	// checkpoint + journal-tail pair: the checkpoint step plus the longest
	// contiguous run of journal steps following it. -1 means no consistent
	// resume state exists.
	ResumeStep int `json:"resume_step"`
	// Torn lists artifacts whose tail is missing (repairable by truncation),
	// Damaged those with interior corruption or an unreadable image, and
	// Stale leftover temp files from an interrupted atomic replace.
	Torn    []string `json:"torn,omitempty"`
	Damaged []string `json:"damaged,omitempty"`
	Stale   []string `json:"stale,omitempty"`
}

// Healthy reports a clean directory: nothing torn, damaged or stale.
func (inv *Inventory) Healthy() bool {
	return len(inv.Torn) == 0 && len(inv.Damaged) == 0 && len(inv.Stale) == 0
}

// Unrecoverable reports state that Repair cannot bring back to a resumable
// condition: journal records exist but no checkpoint validates (the run's
// progress is stranded), or the checkpoint image itself is damaged.
func (inv *Inventory) Unrecoverable() bool {
	if inv.CheckpointStep >= 0 {
		return false
	}
	for _, a := range inv.Artifacts {
		if a.Kind == "checkpoint" && a.Status != "ok" {
			return true
		}
		if a.Kind == "segment" && a.LastStep > 0 {
			return true
		}
	}
	return false
}

// TempPath is the hidden sibling used for atomic replacement of path. The
// name is fixed (not randomized) so fault schedules keyed by operation
// counts stay deterministic and Scan can recognize leftovers.
func TempPath(path string) string {
	return filepath.Join(Dir(path), "."+filepath.Base(path)+".tmp")
}

// SegmentPath names the rotated journal segment of base path with sequence
// seq (seq >= 1).
func SegmentPath(path string, seq int) string {
	return fmt.Sprintf("%s.%04d", path, seq)
}

// segmentSeq parses name as a rotated segment of base, returning its
// sequence number.
func segmentSeq(base, name string) (int, bool) {
	suffix, ok := strings.CutPrefix(name, base+".")
	if !ok || len(suffix) != 4 {
		return 0, false
	}
	seq, err := strconv.Atoi(suffix)
	if err != nil || seq <= 0 {
		return 0, false
	}
	return seq, true
}

// JournalSegments lists the rotated segments of journal base path in
// ascending sequence order (oldest first). The active segment (path itself)
// is not included. A missing directory is an empty journal, not an error.
func JournalSegments(fsys FS, path string) ([]string, error) {
	names, err := fsys.ReadDir(Dir(path))
	if err != nil {
		if NotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	base := filepath.Base(path)
	seqs := make([]int, 0, 4)
	for _, name := range names {
		if seq, ok := segmentSeq(base, name); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	segs := make([]string, len(seqs))
	for i, seq := range seqs {
		segs[i] = SegmentPath(path, seq)
	}
	return segs, nil
}

// NextSegmentSeq returns the sequence number the active journal should
// rotate to: one past the newest rotated segment.
func NextSegmentSeq(fsys FS, path string) (int, error) {
	segs, err := JournalSegments(fsys, path)
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		return 1, nil
	}
	seq, _ := segmentSeq(filepath.Base(path), filepath.Base(segs[len(segs)-1]))
	return seq + 1, nil
}

// Scan inventories a run's durable artifacts — checkpoint, journal segments,
// atomic-replace leftovers — validates each with the supplied format
// callbacks, and computes the newest consistent resume pair. It never
// mutates the directory; Repair applies its verdict.
func Scan(fsys FS, lay Layout, v Validators) (*Inventory, error) {
	inv := &Inventory{CheckpointStep: -1, ResumeStep: -1}

	// Atomic-replace leftovers are stale whatever their content: the rename
	// that would have committed them never happened.
	for _, tmp := range tempPaths(lay) {
		if data, err := fsys.ReadFile(tmp); err == nil {
			inv.Artifacts = append(inv.Artifacts, Artifact{
				Path: tmp, Kind: "temp", Size: len(data), Status: "stale",
			})
			inv.Stale = append(inv.Stale, tmp)
		}
	}

	// Checkpoint.
	if data, err := fsys.ReadFile(lay.Checkpoint); err == nil {
		a := Artifact{Path: lay.Checkpoint, Kind: "checkpoint", Size: len(data), ValidLen: len(data)}
		if step, verr := v.CheckpointStep(data); verr != nil {
			a.Status = "corrupt"
			inv.Damaged = append(inv.Damaged, lay.Checkpoint)
		} else {
			a.Status = "ok"
			a.Step = step
			inv.Checkpoint = lay.Checkpoint
			inv.CheckpointStep = step
		}
		inv.Artifacts = append(inv.Artifacts, a)
	} else if !NotExist(err) {
		return nil, fmt.Errorf("store: scan checkpoint: %w", err)
	}

	// Journal segments, oldest rotation first, active last.
	segs, err := JournalSegments(fsys, lay.Journal)
	if err != nil {
		return nil, fmt.Errorf("store: scan journal: %w", err)
	}
	paths := append(segs, lay.Journal)
	var steps []int // concatenated valid-prefix steps across segments
	intact := true  // no torn/corrupt segment seen yet
	for i, path := range paths {
		data, err := fsys.ReadFile(path)
		if err != nil {
			if NotExist(err) {
				continue
			}
			return nil, fmt.Errorf("store: scan journal: %w", err)
		}
		a := Artifact{Path: path, Kind: "segment", Size: len(data), ValidLen: len(data)}
		if i < len(segs) {
			a.Seq, _ = segmentSeq(filepath.Base(lay.Journal), filepath.Base(path))
		}
		segSteps, validLen, verr := v.ScanSegment(data)
		a.ValidLen = validLen
		if len(segSteps) > 0 {
			a.FirstStep, a.LastStep = segSteps[0], segSteps[len(segSteps)-1]
		}
		switch {
		case verr != nil:
			a.Status = "corrupt"
			inv.Damaged = append(inv.Damaged, path)
		case validLen < len(data):
			a.Status = "torn"
			inv.Torn = append(inv.Torn, path)
		default:
			a.Status = "ok"
		}
		inv.Artifacts = append(inv.Artifacts, a)
		// Records after a tear or corruption are gone; anything in later
		// segments cannot be step-contiguous with the surviving prefix, so
		// the resume tail stops growing here.
		if intact {
			steps = append(steps, segSteps...)
			if a.Status != "ok" {
				intact = false
			}
		}
	}

	// The consistent resume pair: the checkpoint step plus the longest
	// contiguous journal-step run following it. Records at or before the
	// checkpoint step are already folded into the checkpoint and skipped.
	if inv.CheckpointStep >= 0 {
		t := inv.CheckpointStep
	walk:
		for _, st := range steps {
			switch {
			case st <= t: // folded into the checkpoint (or same-step stage record)
			case st == t+1:
				t = st
			default: // gap: records beyond it are not consistently reachable
				break walk
			}
		}
		inv.ResumeStep = t
	}
	return inv, nil
}

// Repair applies Scan's verdict: torn or interior-corrupt journal segments
// are truncated to their valid prefix (atomic replace), stale temp files are
// removed. A damaged checkpoint is not touched — that state is
// Unrecoverable and deleting it is a human's call. Returns the paths
// modified or removed.
func Repair(fsys FS, inv *Inventory) ([]string, error) {
	var changed []string
	for _, a := range inv.Artifacts {
		switch {
		case a.Kind == "temp":
			if err := fsys.Remove(a.Path); err != nil && !NotExist(err) {
				return changed, fmt.Errorf("store: repair: %w", err)
			}
			changed = append(changed, a.Path)
		case a.Kind == "segment" && (a.Status == "torn" || a.Status == "corrupt"):
			data, err := fsys.ReadFile(a.Path)
			if err != nil {
				return changed, fmt.Errorf("store: repair: %w", err)
			}
			if a.ValidLen > len(data) {
				return changed, fmt.Errorf("store: repair: %s changed underfoot", a.Path)
			}
			if err := WriteFileAtomic(fsys, a.Path, data[:a.ValidLen]); err != nil {
				return changed, fmt.Errorf("store: repair: %w", err)
			}
			changed = append(changed, a.Path)
		}
	}
	if len(changed) > 0 {
		if err := fsys.SyncDir(Dir(inv.dirHint())); err != nil {
			return changed, fmt.Errorf("store: repair: %w", err)
		}
	}
	return changed, nil
}

// dirHint returns a path in the repaired directory for the final SyncDir.
func (inv *Inventory) dirHint() string {
	for _, a := range inv.Artifacts {
		return a.Path
	}
	return "."
}

// WriteFileAtomic writes data to path with the full atomic-replace
// discipline: temp sibling, file sync, rename, directory sync.
func WriteFileAtomic(fsys FS, path string, data []byte) error {
	tmp := TempPath(path)
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(Dir(path))
}

// tempPaths lists the atomic-replace temp names a layout can leave behind.
func tempPaths(lay Layout) []string {
	tmps := []string{TempPath(lay.Checkpoint)}
	if jt := TempPath(lay.Journal); jt != tmps[0] {
		tmps = append(tmps, jt)
	}
	return tmps
}
