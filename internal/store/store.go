// Package store is the durable-storage layer of the MDM reproduction. The
// paper's headline runs are multi-hour campaigns (36.5 hours for the 18.8M
// NaCl system, §5); a lost or corrupt restart file costs the whole campaign,
// so every durability claim the checkpoint and journal code makes has to be
// testable. This package provides the seam: a minimal VFS interface with a
// real implementation (OS) and a deterministic fault-injecting one (FaultFS)
// driven by the internal/fault scenario DSL, plus a recovery manager (Scan)
// that inventories a run directory and picks the newest consistent
// checkpoint/journal resume pair.
//
// Durability model (what FaultFS simulates and the write paths must respect):
//
//   - bytes reach disk only at File.Sync; an unsynced write can be lost or
//     torn at a power cut,
//   - a file's directory entry is durable only after SyncDir on its parent;
//     fsyncing the file alone does not commit a create, rename or remove,
//   - rename over an existing durable name keeps the old content until the
//     rename itself is committed by SyncDir.
//
// The canonical atomic-replace sequence is therefore Create(tmp) → Write →
// Sync → Close → Rename(tmp, final) → SyncDir(dir) — the pattern
// md.WriteCheckpointFile and supervise.CreateJournal follow.
package store

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// Injected storage failures. FaultFS returns these; the OS filesystem never
// does (real I/O errors surface as *os.PathError etc.).
var (
	// ErrCrashed latches after a simulated power cut: every subsequent
	// operation on the FaultFS fails with it until Reboot.
	ErrCrashed = errors.New("store: filesystem crashed (injected)")
	// ErrNoSpace is an injected out-of-space write failure.
	ErrNoSpace = errors.New("store: no space left on device (injected)")
	// ErrIO is an injected transient I/O failure.
	ErrIO = errors.New("store: i/o error (injected)")
)

// Recovery-manager verdicts on a run directory that cannot be resumed. The
// serving layer maps these to distinct HTTP statuses, so resume failures
// must stay typed rather than collapsing into one wrapped string.
var (
	// ErrNoRunState means neither a checkpoint nor any journal record
	// exists: there is nothing to resume, and the only recovery is to start
	// the run over (which is safe — no committed progress is lost, because
	// none was ever durable).
	ErrNoRunState = errors.New("store: no resumable run state")
	// ErrStaleRunDir means durable artifacts exist but do not form a
	// consistent timeline for the configured run — a journal whose steps do
	// not continue the checkpoint, or journal records stranded without any
	// validating checkpoint. Resuming would splice two different histories,
	// so the caller must decide: discard the directory or investigate.
	ErrStaleRunDir = errors.New("store: stale run state")
)

// File is a writable file handle.
type File interface {
	io.Writer
	// Sync flushes the file's written bytes to durable storage.
	Sync() error
	Close() error
}

// FS is the storage seam the checkpoint and journal layers write through.
// Implementations: OS() (the real filesystem) and FaultFS (deterministic
// fault injection). Every path is interpreted by the implementation; the
// fault one is purely name-keyed, so relative and absolute paths work alike
// as long as callers are consistent.
type FS interface {
	// Create opens path for writing, truncating it (O_CREATE|O_TRUNC).
	Create(path string) (File, error)
	// Append opens path for appending, creating it if absent.
	Append(path string) (File, error)
	// ReadFile returns the whole content of path.
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath's file.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// ReadDir lists the file names in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs dir, committing creates, renames and removes in it.
	SyncDir(dir string) error
	// MkdirAll materializes dir and its parents (the serving layer carves a
	// run directory per session). Like Remove and ReadDir it is
	// metadata-only and not independently faultable: crash coverage comes
	// from the create/sync/rename counters of the files inside it.
	MkdirAll(dir string) error
}

// OS returns the real-filesystem implementation.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (osFS) Append(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

func (osFS) ReadFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func (osFS) Rename(oldpath, newpath string) error {
	return os.Rename(oldpath, newpath)
}

func (osFS) Remove(path string) error {
	return os.Remove(path)
}

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) MkdirAll(dir string) error {
	if dir == "" {
		return nil
	}
	return os.MkdirAll(dir, 0o755)
}

func (osFS) SyncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	if closeErr := d.Close(); syncErr == nil {
		syncErr = closeErr
	}
	return syncErr
}

// NotExist reports whether err means the file was absent, across both the OS
// filesystem and FaultFS.
func NotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist)
}

// Dir is filepath.Dir with "" normalized to "." so directory keys compare
// stably across implementations.
func Dir(path string) string {
	d := filepath.Dir(path)
	if d == "" {
		return "."
	}
	return d
}
