package store

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// Synthetic formats for Scan tests: a checkpoint is "ckpt:<step>", a journal
// segment is newline-terminated "s<step>" lines. "BAD" is interior
// corruption; a line without its newline is a torn tail.
func testValidators() Validators {
	return Validators{
		CheckpointStep: func(data []byte) (int, error) {
			s, ok := strings.CutPrefix(string(data), "ckpt:")
			if !ok {
				return 0, fmt.Errorf("not a checkpoint")
			}
			return strconv.Atoi(strings.TrimSpace(s))
		},
		ScanSegment: func(data []byte) ([]int, int, error) {
			var steps []int
			valid := 0
			for len(data) > 0 {
				nl := bytes.IndexByte(data, '\n')
				if nl < 0 {
					return steps, valid, nil // torn tail
				}
				line := string(data[:nl])
				st, err := strconv.Atoi(strings.TrimPrefix(line, "s"))
				if err != nil || !strings.HasPrefix(line, "s") {
					return steps, valid, fmt.Errorf("corrupt record %q", line)
				}
				steps = append(steps, st)
				valid += nl + 1
				data = data[nl+1:]
			}
			return steps, valid, nil
		},
	}
}

func seg(steps ...int) []byte {
	var b bytes.Buffer
	for _, s := range steps {
		fmt.Fprintf(&b, "s%d\n", s)
	}
	return b.Bytes()
}

var lay = Layout{Checkpoint: "run.ckpt", Journal: "run.journal"}

func put(t *testing.T, fs FS, path string, data []byte) {
	t.Helper()
	if err := WriteFileAtomic(fs, path, data); err != nil {
		t.Fatal(err)
	}
}

func TestScanEmptyDir(t *testing.T) {
	inv, err := Scan(NewFaultFS(nil), lay, testValidators())
	if err != nil {
		t.Fatal(err)
	}
	if inv.CheckpointStep != -1 || inv.ResumeStep != -1 || !inv.Healthy() || inv.Unrecoverable() {
		t.Fatalf("empty dir: %+v", inv)
	}
}

func TestScanConsistentPair(t *testing.T) {
	fs := NewFaultFS(nil)
	put(t, fs, lay.Checkpoint, []byte("ckpt:4"))
	put(t, fs, SegmentPath(lay.Journal, 1), seg(1, 2, 3, 4))
	put(t, fs, lay.Journal, seg(5, 6, 7))
	inv, err := Scan(fs, lay, testValidators())
	if err != nil {
		t.Fatal(err)
	}
	if inv.CheckpointStep != 4 || inv.ResumeStep != 7 {
		t.Fatalf("ckpt=%d resume=%d, want 4/7", inv.CheckpointStep, inv.ResumeStep)
	}
	if !inv.Healthy() {
		t.Fatalf("healthy dir flagged: %+v", inv)
	}
}

// A gap after the checkpoint step truncates the resume tail to the
// contiguous prefix — Scan never selects records beyond the gap.
func TestScanGapTruncatesResume(t *testing.T) {
	fs := NewFaultFS(nil)
	put(t, fs, lay.Checkpoint, []byte("ckpt:2"))
	put(t, fs, lay.Journal, seg(3, 4, 6, 7))
	inv, err := Scan(fs, lay, testValidators())
	if err != nil {
		t.Fatal(err)
	}
	if inv.ResumeStep != 4 {
		t.Fatalf("resume=%d, want 4 (gap at 5)", inv.ResumeStep)
	}
}

// Torn tail: the valid prefix still resumes; Repair truncates the tear and
// the rescan is healthy with the same resume step.
func TestScanTornTailAndRepair(t *testing.T) {
	fs := NewFaultFS(nil)
	put(t, fs, lay.Checkpoint, []byte("ckpt:1"))
	torn := append(seg(2, 3), []byte("s4")...) // record 4 lost its newline
	put(t, fs, lay.Journal, torn)
	v := testValidators()
	inv, err := Scan(fs, lay, v)
	if err != nil {
		t.Fatal(err)
	}
	if inv.ResumeStep != 3 || len(inv.Torn) != 1 {
		t.Fatalf("torn scan: %+v", inv)
	}
	changed, err := Repair(fs, inv)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0] != lay.Journal {
		t.Fatalf("repair changed %v", changed)
	}
	inv2, err := Scan(fs, lay, v)
	if err != nil {
		t.Fatal(err)
	}
	if !inv2.Healthy() || inv2.ResumeStep != 3 {
		t.Fatalf("post-repair: %+v", inv2)
	}
}

// Interior corruption in a rotated segment stops the resume tail before the
// later segments, even if their steps would continue the sequence.
func TestScanCorruptSegmentStopsTail(t *testing.T) {
	fs := NewFaultFS(nil)
	put(t, fs, lay.Checkpoint, []byte("ckpt:0"))
	bad := append(seg(1, 2), []byte("BAD\n")...)
	put(t, fs, SegmentPath(lay.Journal, 1), bad)
	put(t, fs, lay.Journal, seg(3, 4))
	inv, err := Scan(fs, lay, testValidators())
	if err != nil {
		t.Fatal(err)
	}
	if inv.ResumeStep != 2 {
		t.Fatalf("resume=%d, want 2 (stop at corruption)", inv.ResumeStep)
	}
	if len(inv.Damaged) != 1 {
		t.Fatalf("damaged: %v", inv.Damaged)
	}
}

// A corrupt checkpoint with journal records is unrecoverable; Repair leaves
// the checkpoint alone.
func TestScanCorruptCheckpointUnrecoverable(t *testing.T) {
	fs := NewFaultFS(nil)
	put(t, fs, lay.Checkpoint, []byte("garbage"))
	put(t, fs, lay.Journal, seg(1, 2))
	inv, err := Scan(fs, lay, testValidators())
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Unrecoverable() {
		t.Fatalf("corrupt checkpoint not flagged unrecoverable: %+v", inv)
	}
	if _, err := Repair(fs, inv); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile(lay.Checkpoint); !bytes.Equal(got, []byte("garbage")) {
		t.Fatal("Repair touched the damaged checkpoint")
	}
}

// Stale atomic-replace temps are inventoried and removed by Repair.
func TestScanStaleTempRemoved(t *testing.T) {
	fs := NewFaultFS(nil)
	put(t, fs, lay.Checkpoint, []byte("ckpt:3"))
	put(t, fs, TempPath(lay.Checkpoint), []byte("half-written"))
	inv, err := Scan(fs, lay, testValidators())
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.Stale) != 1 {
		t.Fatalf("stale: %v", inv.Stale)
	}
	if _, err := Repair(fs, inv); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile(TempPath(lay.Checkpoint)); !NotExist(err) {
		t.Fatal("stale temp survived repair")
	}
}

func TestSegmentNaming(t *testing.T) {
	fs := NewFaultFS(nil)
	if seq, err := NextSegmentSeq(fs, lay.Journal); err != nil || seq != 1 {
		t.Fatalf("empty: seq=%d err=%v", seq, err)
	}
	put(t, fs, SegmentPath(lay.Journal, 1), seg(1))
	put(t, fs, SegmentPath(lay.Journal, 3), seg(3))
	put(t, fs, lay.Journal, seg(4))
	put(t, fs, lay.Journal+".junk", []byte("not a segment"))
	segs, err := JournalSegments(fs, lay.Journal)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{SegmentPath(lay.Journal, 1), SegmentPath(lay.Journal, 3)}
	if len(segs) != 2 || segs[0] != want[0] || segs[1] != want[1] {
		t.Fatalf("segments: %v, want %v", segs, want)
	}
	if seq, _ := NextSegmentSeq(fs, lay.Journal); seq != 4 {
		t.Fatalf("next seq: %d, want 4", seq)
	}
}
