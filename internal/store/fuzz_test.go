package store_test

// The recovery manager's fuzz harness lives in an external test package so
// it can validate with the real format callbacks — md.CheckpointStep and
// supervise.ScanSegment — which internal/store itself must not import (both
// packages write through it).

import (
	"testing"

	"mdm/internal/md"
	"mdm/internal/store"
	"mdm/internal/supervise"
)

var fuzzLayout = store.Layout{Checkpoint: "run.ckpt", Journal: "run.wal"}

func fuzzValidators() store.Validators {
	return store.Validators{
		CheckpointStep: md.CheckpointStep,
		ScanSegment:    supervise.ScanSegment,
	}
}

// plant writes data into the filesystem under path, skipping empty files so
// the fuzzer controls which artifacts exist at all.
func plant(t *testing.T, fsys store.FS, path string, data []byte) {
	t.Helper()
	if len(data) == 0 {
		return
	}
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// realArtifacts builds a genuine checkpoint image and journal segment to
// seed the corpus with the formats Scan actually meets.
func realArtifacts(t testing.TB) (ckpt, seg []byte) {
	s, err := md.NewRockSalt(2, 5.64)
	if err != nil {
		t.Fatal(err)
	}
	fs := store.NewFaultFS(nil)
	if err := md.WriteCheckpointFS(fs, "c", s, 3); err != nil {
		t.Fatal(err)
	}
	ckpt, err = fs.ReadFile("c")
	if err != nil {
		t.Fatal(err)
	}
	j, err := supervise.CreateJournalFS("j", supervise.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for step := 4; step <= 6; step++ {
		if err := j.Append(supervise.Record{Step: step, Stage: "nvt"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seg, err = fs.ReadFile("j")
	if err != nil {
		t.Fatal(err)
	}
	return ckpt, seg
}

// FuzzScanRunDir throws arbitrary artifact mixes — checkpoint, active
// journal, rotated segments, atomic-replace leftovers — at the recovery
// manager and asserts its safety contract: Scan never panics and never
// certifies an inconsistent resume pair, and Repair converges to a
// directory with no torn or stale debris without shrinking the certified
// resume state.
func FuzzScanRunDir(f *testing.F) {
	ckpt, seg := realArtifacts(f)
	torn := seg[:len(seg)-5]
	rotted := append([]byte(nil), seg...)
	rotted[10] ^= 0x08

	f.Add(ckpt, seg, []byte(nil), []byte(nil), []byte(nil))
	f.Add(ckpt, torn, seg, []byte(nil), []byte("half-written temp"))
	f.Add(ckpt, rotted, seg, torn, []byte(nil))
	f.Add([]byte("not a checkpoint"), seg, []byte(nil), []byte(nil), []byte(nil))
	f.Add(ckpt[:len(ckpt)/2], []byte(nil), seg, []byte(nil), ckpt)
	f.Add([]byte(nil), []byte(nil), []byte(nil), []byte(nil), []byte(nil))

	f.Fuzz(func(t *testing.T, ckpt, active, seg1, seg2, tmp []byte) {
		fs := store.NewFaultFS(nil)
		plant(t, fs, fuzzLayout.Checkpoint, ckpt)
		plant(t, fs, fuzzLayout.Journal, active)
		plant(t, fs, store.SegmentPath(fuzzLayout.Journal, 1), seg1)
		plant(t, fs, store.SegmentPath(fuzzLayout.Journal, 2), seg2)
		plant(t, fs, store.TempPath(fuzzLayout.Checkpoint), tmp)

		inv, err := store.Scan(fs, fuzzLayout, fuzzValidators())
		if err != nil {
			t.Fatalf("Scan on a fault-free fs: %v", err)
		}
		// A certified resume pair must be consistent: a validated checkpoint
		// at or below the resume step, whose image really does decode to the
		// step the inventory claims.
		if inv.ResumeStep >= 0 {
			if inv.CheckpointStep < 0 || inv.ResumeStep < inv.CheckpointStep {
				t.Fatalf("inconsistent pair: ckpt=%d resume=%d", inv.CheckpointStep, inv.ResumeStep)
			}
			data, err := fs.ReadFile(inv.Checkpoint)
			if err != nil {
				t.Fatalf("certified checkpoint unreadable: %v", err)
			}
			step, err := md.CheckpointStep(data)
			if err != nil || step != inv.CheckpointStep {
				t.Fatalf("certified checkpoint does not validate: step=%d err=%v", step, err)
			}
		}
		if inv.CheckpointStep >= 0 && inv.ResumeStep < inv.CheckpointStep {
			t.Fatalf("valid checkpoint but resume=%d < %d", inv.ResumeStep, inv.CheckpointStep)
		}

		// Repair converges: no torn or stale debris afterwards, and the
		// certified resume state is preserved exactly.
		if _, err := store.Repair(fs, inv); err != nil {
			t.Fatalf("Repair: %v", err)
		}
		after, err := store.Scan(fs, fuzzLayout, fuzzValidators())
		if err != nil {
			t.Fatalf("post-repair Scan: %v", err)
		}
		if len(after.Torn) != 0 || len(after.Stale) != 0 {
			t.Fatalf("repair left debris: torn=%v stale=%v", after.Torn, after.Stale)
		}
		// Repair never shrinks the certified state: the checkpoint is
		// untouched and the resume step only grows (truncating a torn
		// rotated segment can legitimately reconnect later segments).
		if after.CheckpointStep != inv.CheckpointStep {
			t.Fatalf("repair moved the checkpoint step: %d -> %d", inv.CheckpointStep, after.CheckpointStep)
		}
		if after.ResumeStep < inv.ResumeStep {
			t.Fatalf("repair shrank the resume step: %d -> %d", inv.ResumeStep, after.ResumeStep)
		}
		// A post-repair directory with every artifact "ok" must read back
		// clean end to end.
		if after.Healthy() {
			if _, err := supervise.ReadJournalFS(fs, fuzzLayout.Journal); err != nil {
				t.Fatalf("healthy journal unreadable: %v", err)
			}
		}
	})
}
