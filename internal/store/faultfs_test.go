package store

import (
	"bytes"
	"errors"
	"testing"

	"mdm/internal/fault"
)

func injector(t *testing.T, scenario string) *fault.Injector {
	t.Helper()
	in, err := fault.ParseInjector(scenario)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// mustWrite drives the canonical atomic-replace sequence.
func mustWrite(t *testing.T, fsys FS, path string, data []byte) {
	t.Helper()
	if err := WriteFileAtomic(fsys, path, data); err != nil {
		t.Fatalf("WriteFileAtomic(%s): %v", path, err)
	}
}

// Unsynced bytes do not survive a crash; synced bytes under a committed name
// do.
func TestFaultFSCrashLosesUnsyncedBytes(t *testing.T) {
	fs := NewFaultFS(nil)
	f, err := fs.Append("j")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("aaaa"))
	f.Sync()
	fs.SyncDir(".") // commit the name
	f.Write([]byte("bbbb"))
	f.Sync() // durable: aaaabbbb
	f.Write([]byte("cccc"))
	// no sync: cccc is volatile
	fs.Reboot(nil)
	got, err := fs.ReadFile("j")
	if err != nil {
		t.Fatalf("after reboot: %v\n%s", err, fs.Dump())
	}
	if want := []byte("aaaabbbb"); !bytes.Equal(got, want) {
		t.Fatalf("after reboot: %q, want %q", got, want)
	}
}

// A synced file whose directory entry was never committed vanishes at a
// crash — the satellite-2 failure mode (missing dir fsync after create).
func TestFaultFSUncommittedNameVanishes(t *testing.T) {
	fs := NewFaultFS(nil)
	f, _ := fs.Create("seg")
	f.Write([]byte("data"))
	f.Sync()
	f.Close()
	// No SyncDir: the name is not durable.
	fs.Reboot(nil)
	if _, err := fs.ReadFile("seg"); !NotExist(err) {
		t.Fatalf("uncommitted name survived reboot: %v\n%s", err, fs.Dump())
	}
}

// Rename over a durable target keeps the old content until SyncDir commits
// the rename.
func TestFaultFSRenameNotDurableUntilSyncDir(t *testing.T) {
	fs := NewFaultFS(nil)
	mustWrite(t, fs, "ckpt", []byte("old"))

	f, _ := fs.Create("tmp")
	f.Write([]byte("new"))
	f.Sync()
	f.Close()
	if err := fs.Rename("tmp", "ckpt"); err != nil {
		t.Fatal(err)
	}
	// Crash before SyncDir: the durable view still has the old checkpoint.
	fs.Reboot(nil)
	if got, _ := fs.ReadFile("ckpt"); !bytes.Equal(got, []byte("old")) {
		t.Fatalf("pre-SyncDir rename became durable: %q\n%s", got, fs.Dump())
	}

	// Same sequence with the SyncDir: the new content commits.
	fs = NewFaultFS(nil)
	mustWrite(t, fs, "ckpt", []byte("old"))
	mustWrite(t, fs, "ckpt", []byte("new"))
	fs.Reboot(nil)
	if got, _ := fs.ReadFile("ckpt"); !bytes.Equal(got, []byte("new")) {
		t.Fatalf("committed replace lost: %q\n%s", got, fs.Dump())
	}
}

// Remove is durable only after SyncDir.
func TestFaultFSRemoveDurableAfterSyncDir(t *testing.T) {
	fs := NewFaultFS(nil)
	mustWrite(t, fs, "seg", []byte("x"))
	fs.Remove("seg")
	fs.Reboot(nil)
	if _, err := fs.ReadFile("seg"); err != nil {
		t.Fatalf("un-synced remove destroyed durable file: %v", err)
	}
	fs.Remove("seg")
	fs.SyncDir(".")
	fs.Reboot(nil)
	if _, err := fs.ReadFile("seg"); !NotExist(err) {
		t.Fatalf("committed remove survived: %v", err)
	}
}

// TornWrite persists exactly the scheduled prefix of the crashing write and
// latches the filesystem down.
func TestFaultFSTornWrite(t *testing.T) {
	in := injector(t, "store:torn-write@write=2,bytes=3")
	fs := NewFaultFS(in)
	f, _ := fs.Append("j")
	f.Write([]byte("hello\n")) // write 1, clean
	f.Sync()
	fs.SyncDir(".")
	if _, err := f.Write([]byte("world\n")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write: err = %v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Fatal("filesystem not crashed after torn write")
	}
	if _, err := fs.ReadFile("j"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op: err = %v, want ErrCrashed", err)
	}
	fs.Reboot(nil)
	got, err := fs.ReadFile("j")
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte("hello\nwor"); !bytes.Equal(got, want) {
		t.Fatalf("durable after torn write: %q, want %q", got, want)
	}
}

// NoSpace and IOErr fail the operation without crashing the filesystem, and
// a failed write persists nothing.
func TestFaultFSNoSpaceAndIOErr(t *testing.T) {
	in := injector(t, "store:enospc@write=1; store:eio@sync=1")
	fs := NewFaultFS(in)
	f, _ := fs.Append("j")
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("write: %v, want ErrNoSpace", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrIO) {
		t.Fatalf("sync: %v, want ErrIO", err)
	}
	if fs.Crashed() {
		t.Fatal("enospc/eio must not crash the filesystem")
	}
	// Both ops retry clean.
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}

// BitRot flips a bit of the returned data without touching the stored bytes.
func TestFaultFSBitRot(t *testing.T) {
	in := injector(t, "store:bitrot@read=1,offset=2")
	fs := NewFaultFS(in)
	mustWrite(t, fs, "ckpt", []byte("abcd"))
	rotted, err := fs.ReadFile("ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(rotted, []byte("abcd")) {
		t.Fatal("bitrot read returned clean data")
	}
	if rotted[2] == 'c' || rotted[0] != 'a' || rotted[1] != 'b' || rotted[3] != 'd' {
		t.Fatalf("bitrot hit wrong byte: %q", rotted)
	}
	clean, err := fs.ReadFile("ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean, []byte("abcd")) {
		t.Fatalf("bitrot persisted: %q", clean)
	}
}

// CrashRename aborts before the rename happens: the temp stays volatile and
// the durable target keeps its old content.
func TestFaultFSCrashBeforeRename(t *testing.T) {
	in := injector(t, "store:crash-before-rename@rename=2")
	fs := NewFaultFS(in)
	mustWrite(t, fs, "ckpt", []byte("old")) // rename 1
	f, _ := fs.Create("tmp")
	f.Write([]byte("new"))
	f.Sync()
	f.Close()
	if err := fs.Rename("tmp", "ckpt"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename: %v, want ErrCrashed", err)
	}
	fs.Reboot(nil)
	if got, _ := fs.ReadFile("ckpt"); !bytes.Equal(got, []byte("old")) {
		t.Fatalf("crash-before-rename lost target: %q\n%s", got, fs.Dump())
	}
	if _, err := fs.ReadFile("tmp"); !NotExist(err) {
		t.Fatal("uncommitted temp survived crash")
	}
}

// The OS filesystem round-trips the same API against a real directory.
func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := OS()
	path := dir + "/f"
	mustWrite(t, fsys, path, []byte("data"))
	got, err := fsys.ReadFile(path)
	if err != nil || !bytes.Equal(got, []byte("data")) {
		t.Fatalf("ReadFile: %q, %v", got, err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil || len(names) != 1 || names[0] != "f" {
		t.Fatalf("ReadDir: %v, %v", names, err)
	}
	f, err := fsys.Append(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("+more"))
	f.Sync()
	f.Close()
	got, _ = fsys.ReadFile(path)
	if !bytes.Equal(got, []byte("data+more")) {
		t.Fatalf("append: %q", got)
	}
	if err := fsys.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.ReadFile(path); !NotExist(err) {
		t.Fatalf("after remove: %v", err)
	}
}
