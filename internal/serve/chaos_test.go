package serve_test

// The server-level chaos suite: a multi-tenant workload with in-simulation
// hardware faults (a board drop absorbed by a spare, a hang caught by the
// watchdog) is killed by a storage power cut at randomized-but-reproducible
// points, the server is restarted over the surviving disk image, and every
// session must finish bit-identically to a solo run that was never
// interrupted. This is the end-to-end proof of the service's crash-safety
// contract; the per-operation storage semantics are covered by the crash
// matrix in the root package.

import (
	"context"
	"fmt"
	"path"
	"sync/atomic"
	"testing"
	"time"

	"mdm/internal/fault"
	"mdm/internal/md"
	"mdm/internal/serve"
	"mdm/internal/store"
	"mdm/internal/vec"
)

// chaosSpecs is the workload: five sessions across four tenants, mixing the
// reference and MDM backends, one session with a board drop its spare board
// absorbs and one with a hang its watchdog breaks.
func chaosSpecs() []serve.JobSpec {
	return []serve.JobSpec{
		{Tenant: "alice", Cells: 2, Steps: 12, Seed: 1, Backend: "reference"},
		{Tenant: "alice", Cells: 2, Steps: 10, Seed: 2, Backend: "reference"},
		{Tenant: "bob", Cells: 2, Steps: 14, Seed: 3, Backend: "reference"},
		{Tenant: "carol", Cells: 2, Steps: 10, Seed: 4, Backend: "mdm",
			Faults: "mdg:hang@step=4", WatchdogMs: 250},
		{Tenant: "dave", Cells: 2, Steps: 10, Seed: 5, Backend: "mdm",
			Faults: "wine2:board-drop@step=5,board=1"},
	}
}

// chaosConfig runs the workload with real concurrency: four executors, so at
// least four tenant sessions advance at once, all sharing one worker budget.
func chaosConfig(fsys store.FS) serve.Config {
	return serve.Config{
		Root:            "data",
		FS:              fsys,
		Executors:       4,
		WorkerBudget:    4,
		QueueDepth:      8,
		AdmitWait:       time.Second,
		CheckpointEvery: 2,
	}
}

// soloFinal is the uninterrupted ground truth for one spec.
type soloFinal struct {
	pos, vel []vec.V
	step     int
}

// soloRun executes one spec alone on its own pristine filesystem and returns
// the final committed checkpoint.
func soloRun(t *testing.T, spec serve.JobSpec) soloFinal {
	t.Helper()
	fsys := store.NewFaultFS(nil)
	m, err := serve.Open(chaosConfig(fsys))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, s.ID, serve.StateDone)
	m.Close()
	return readFinal(t, fsys, spec.Tenant, s.ID)
}

// readFinal loads a session's final checkpoint image from disk.
func readFinal(t *testing.T, fsys store.FS, tenant, id string) soloFinal {
	t.Helper()
	sys, step, err := md.ReadCheckpointFS(fsys, path.Join("data", tenant, id, "run.ckpt"))
	if err != nil {
		t.Fatalf("final checkpoint of %s/%s: %v", tenant, id, err)
	}
	return soloFinal{pos: sys.Pos, vel: sys.Vel, step: step}
}

// opCensus counts storage operations per class while a workload runs; the
// totals size the kill schedule, so every trial's cut lands inside the
// workload's actual I/O stream.
type opCensus struct {
	writes atomic.Int64
	syncs  atomic.Int64
}

func (h *opCensus) StoreOp(class string) fault.StoreFate {
	switch class {
	case fault.OpWrite:
		h.writes.Add(1)
	case fault.OpSync:
		h.syncs.Add(1)
	}
	return fault.StoreFate{}
}

// runWorkload submits every spec on m and returns the session IDs ("" where
// the submit itself was refused, e.g. because the power cut hit mid-submit).
func runWorkload(t *testing.T, m *serve.Manager, specs []serve.JobSpec) []string {
	t.Helper()
	ids := make([]string, len(specs))
	for i, spec := range specs {
		s, err := m.Submit(context.Background(), spec)
		if err != nil {
			t.Logf("submit %d refused: %v", i, err)
			continue
		}
		ids[i] = s.ID
	}
	return ids
}

// waitSettled waits until every tracked session is terminal — done, failed
// (the expected verdict once the storage layer has power-cut), or canceled.
func waitSettled(t *testing.T, m *serve.Manager, ids []string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		settled := true
		for _, id := range ids {
			if id == "" {
				continue
			}
			s, ok := m.Session(id)
			if !ok {
				t.Fatalf("session %s disappeared", id)
			}
			if !terminal(s.Status().State) {
				settled = false
				break
			}
		}
		if settled {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("workload never settled")
}

func TestServeChaosKillRestartBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is seconds-long; skipped in -short")
	}
	specs := chaosSpecs()

	// Ground truth: each spec solo, never interrupted.
	solo := make([]soloFinal, len(specs))
	for i, spec := range specs {
		solo[i] = soloRun(t, spec)
		if solo[i].step != spec.Steps {
			t.Fatalf("solo run %d stopped at step %d, want %d", i, solo[i].step, spec.Steps)
		}
	}

	// Census: the same workload, concurrently, counting storage ops.
	census := &opCensus{}
	cfsys := store.NewFaultFS(census)
	cm, err := serve.Open(chaosConfig(cfsys))
	if err != nil {
		t.Fatal(err)
	}
	waitSettled(t, cm, runWorkload(t, cm, specs))
	cm.Close()
	writes, syncs := census.writes.Load(), census.syncs.Load()
	if writes < 10 || syncs < 10 {
		t.Fatalf("census implausibly small: %d writes, %d syncs", writes, syncs)
	}

	// The kill schedule: power cuts a quarter, half and three quarters of the
	// way into the write stream, plus one mid-fsync (the torn-commit window).
	// Concurrency makes the cut land at a different logical point every run;
	// the recovery contract must hold wherever it lands.
	trials := []string{
		fmt.Sprintf("store:crash@write=%d", writes/4),
		fmt.Sprintf("store:crash@write=%d", writes/2),
		fmt.Sprintf("store:crash@write=%d", 3*writes/4),
		fmt.Sprintf("store:crash@sync=%d", syncs/2),
	}
	for _, scenario := range trials {
		scenario := scenario
		t.Run(scenario, func(t *testing.T) {
			chaosTrial(t, specs, solo, scenario)
		})
	}
}

// chaosTrial runs the workload until the scenario's power cut (or, if the
// interleaving finished first, to completion), restarts the server on the
// surviving disk image, and verifies every session ends bit-identical to its
// solo baseline.
func chaosTrial(t *testing.T, specs []serve.JobSpec, solo []soloFinal, scenario string) {
	inj, err := fault.ParseInjector(scenario)
	if err != nil {
		t.Fatal(err)
	}
	fsys := store.NewFaultFS(inj)
	m, err := serve.Open(chaosConfig(fsys))
	if err != nil {
		t.Fatal(err)
	}
	ids := runWorkload(t, m, specs)
	waitSettled(t, m, ids)
	m.Close()
	if !fsys.Crashed() {
		t.Log("workload outran the kill point; verifying the uninterrupted image")
	}

	// Power restored: reboot the disk (dropping everything past the synced
	// prefix) and restart the server. The sweep re-admits every interrupted
	// session; specs whose submit the cut refused are resubmitted by their
	// tenant, exactly as a real client retrying after a 5xx would.
	fsys.Reboot(nil)
	m2, err := serve.Open(chaosConfig(fsys))
	if err != nil {
		t.Fatalf("restart after %s: %v", scenario, err)
	}
	defer m2.Close()
	for i, spec := range specs {
		if ids[i] != "" {
			continue
		}
		s, err := m2.Submit(context.Background(), spec)
		if err != nil {
			t.Fatalf("resubmit %d after restart: %v", i, err)
		}
		ids[i] = s.ID
	}

	for i, id := range ids {
		fin := waitState(t, m2, id, serve.StateDone)
		if fin.StepsDone != specs[i].Steps {
			t.Errorf("session %s finished at step %d, want %d", id, fin.StepsDone, specs[i].Steps)
		}
	}
	for i, id := range ids {
		got := readFinal(t, fsys, specs[i].Tenant, id)
		if got.step != solo[i].step {
			t.Errorf("session %s: final checkpoint at step %d, solo %d", id, got.step, solo[i].step)
			continue
		}
		if d := firstDiff(got.pos, solo[i].pos); d >= 0 {
			t.Errorf("session %s: position %d diverges from solo run: %v vs %v", id, d, got.pos[d], solo[i].pos[d])
		}
		if d := firstDiff(got.vel, solo[i].vel); d >= 0 {
			t.Errorf("session %s: velocity %d diverges from solo run: %v vs %v", id, d, got.vel[d], solo[i].vel[d])
		}
	}
}

// firstDiff returns the first index where two vector slices differ exactly
// (bitwise, no tolerance), or -1.
func firstDiff(a, b []vec.V) int {
	if len(a) != len(b) {
		return 0
	}
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}
