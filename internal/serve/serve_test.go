package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path"
	"testing"
	"time"

	"mdm/internal/serve"
	"mdm/internal/store"
	"mdm/internal/supervise"
)

// testConfig is a small, fast manager over an in-memory filesystem: one
// executor, tight checkpoint cadence, short admission wait.
func testConfig(fsys store.FS) serve.Config {
	return serve.Config{
		Root:            "data",
		FS:              fsys,
		Executors:       1,
		QueueDepth:      8,
		AdmitWait:       25 * time.Millisecond,
		CheckpointEvery: 2,
		RetryAfter:      2 * time.Second,
	}
}

// refSpec is a cheap reference-backend job.
func refSpec(tenant string, seed int64, steps int) serve.JobSpec {
	return serve.JobSpec{Tenant: tenant, Cells: 2, Steps: steps, Seed: seed, Backend: "reference"}
}

// waitState polls until the session reaches want (or fails the test).
func waitState(t *testing.T, m *serve.Manager, id, want string) serve.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		s, ok := m.Session(id)
		if !ok {
			t.Fatalf("session %s disappeared", id)
		}
		st := s.Status()
		if st.State == want {
			return st
		}
		if terminal(st.State) && st.State != want {
			t.Fatalf("session %s reached %s (err %s: %s), want %s", id, st.State, st.ErrKind, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("session %s never reached %s", id, want)
	return serve.Status{}
}

func terminal(state string) bool {
	return state == serve.StateDone || state == serve.StateFailed || state == serve.StateCanceled
}

// The admission ladder's quota rung: over-quota submits answer 429 with a
// Retry-After hint, both programmatically and over HTTP.
func TestServeAdmissionQuota(t *testing.T) {
	cfg := testConfig(store.NewFaultFS(nil))
	cfg.Executors = -1 // freeze the queue: everything stays queued
	cfg.Quota = serve.Quota{MaxSessions: 2}
	m, err := serve.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(ctx, refSpec("alice", int64(i+1), 4)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err = m.Submit(ctx, refSpec("alice", 9, 4))
	var adm *serve.AdmissionError
	if !asAdmission(err, &adm) || adm.Code != http.StatusTooManyRequests || adm.Reason != serve.ReasonQuotaSessions {
		t.Fatalf("over-quota submit: %v, want 429 %s", err, serve.ReasonQuotaSessions)
	}
	if adm.RetryAfter <= 0 {
		t.Fatalf("over-quota submit carries no Retry-After: %+v", adm)
	}
	// Another tenant is unaffected: quotas isolate tenants from each other.
	if _, err := m.Submit(ctx, refSpec("bob", 1, 4)); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}

	// The same rejection over HTTP: 429 + Retry-After header.
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp := post(t, srv.URL+"/v1/sessions", `{"tenant":"alice","steps":4,"backend":"reference"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP over-quota status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response carries no Retry-After header")
	}
	var body struct {
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Reason != serve.ReasonQuotaSessions {
		t.Fatalf("429 body reason = %q (%v), want %s", body.Reason, err, serve.ReasonQuotaSessions)
	}
}

// A full queue blocks the submit for the bounded AdmitWait, then rejects
// typed queue-full — it does not block indefinitely and it does not drop the
// session silently.
func TestServeAdmissionQueueFullBoundedWait(t *testing.T) {
	cfg := testConfig(store.NewFaultFS(nil))
	cfg.Executors = -1
	cfg.QueueDepth = 1
	m, err := serve.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx := context.Background()
	if _, err := m.Submit(ctx, refSpec("alice", 1, 4)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = m.Submit(ctx, refSpec("alice", 2, 4))
	elapsed := time.Since(start)
	var adm *serve.AdmissionError
	if !asAdmission(err, &adm) || adm.Code != http.StatusServiceUnavailable || adm.Reason != serve.ReasonQueueFull {
		t.Fatalf("queue-full submit: %v, want 503 %s", err, serve.ReasonQueueFull)
	}
	if elapsed < cfg.AdmitWait {
		t.Fatalf("rejected after %v, before the bounded wait of %v", elapsed, cfg.AdmitWait)
	}
}

// MaxParticleSteps is a lifetime budget: once a tenant has spent it, further
// submits answer 429 regardless of session count.
func TestServeAdmissionParticleStepBudget(t *testing.T) {
	cfg := testConfig(store.NewFaultFS(nil))
	cfg.Executors = -1
	// 64 ions × 4 steps = 256 particle-steps per session; budget fits two.
	cfg.Quota = serve.Quota{MaxParticleSteps: 600}
	m, err := serve.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(ctx, refSpec("alice", int64(i+1), 4)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err = m.Submit(ctx, refSpec("alice", 9, 4))
	var adm *serve.AdmissionError
	if !asAdmission(err, &adm) || adm.Reason != serve.ReasonQuotaBudget {
		t.Fatalf("over-budget submit: %v, want 429 %s", err, serve.ReasonQuotaBudget)
	}
}

// A tenant whose sessions keep failing is quarantined by its circuit
// breaker: its submits answer 503 while other tenants stay admitted. The
// server survives the failures; only the tenant is isolated.
func TestServeBreakerQuarantinesTenant(t *testing.T) {
	cfg := testConfig(store.NewFaultFS(nil))
	cfg.Breaker = supervise.BreakerConfig{Trip: 2, Window: 100, Cooldown: 1000}
	m, err := serve.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx := context.Background()
	// run:fatal is an injected unrecoverable host fault: the session fails.
	bad := serve.JobSpec{Tenant: "mallory", Cells: 2, Steps: 6, Seed: 1,
		Backend: "mdm", Faults: "run:fatal@step=2"}
	for i := 0; i < 2; i++ {
		s, err := m.Submit(ctx, bad)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		st := waitState(t, m, s.ID, serve.StateFailed)
		if st.ErrKind == "" {
			t.Fatalf("failed session has no typed error kind: %+v", st)
		}
	}
	_, err = m.Submit(ctx, bad)
	var adm *serve.AdmissionError
	if !asAdmission(err, &adm) || adm.Code != http.StatusServiceUnavailable || adm.Reason != serve.ReasonQuarantined {
		t.Fatalf("quarantined submit: %v, want 503 %s", err, serve.ReasonQuarantined)
	}
	// The quarantine is the tenant's, not the server's.
	s, err := m.Submit(ctx, refSpec("alice", 1, 4))
	if err != nil {
		t.Fatalf("innocent tenant rejected: %v", err)
	}
	waitState(t, m, s.ID, serve.StateDone)
	if got := m.Metrics().Breakers["mallory"]; got != "open" {
		t.Fatalf("metrics report mallory breaker %q, want open", got)
	}
}

// Drain stops admission, interrupts the running session at a committed step,
// and reports it; a new manager over the same filesystem resumes and
// finishes it.
func TestServeDrainInterruptsAndRestartResumes(t *testing.T) {
	fsys := store.NewFaultFS(nil)
	cfg := testConfig(fsys)
	m, err := serve.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	s, err := m.Submit(ctx, refSpec("alice", 1, 60))
	if err != nil {
		t.Fatal(err)
	}
	// Let it make some progress first, so the drain interrupts mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := s.Status(); st.StepsDone >= 2 && st.State == serve.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never started: %+v", s.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	sum := m.Drain()
	if len(sum.Interrupted) != 1 || sum.Interrupted[0] != s.ID {
		t.Fatalf("drain summary interrupted = %v, want [%s]", sum.Interrupted, s.ID)
	}
	if sum.Sessions[serve.StateQueued] != 1 {
		t.Fatalf("drain summary sessions = %v, want 1 queued", sum.Sessions)
	}
	st := s.Status()
	if st.State != serve.StateQueued || st.StepsDone == 0 || st.StepsDone >= 60 {
		t.Fatalf("drained session status = %+v, want queued mid-run", st)
	}
	// Draining managers reject new submits typed "draining".
	_, err = m.Submit(ctx, refSpec("bob", 1, 4))
	var adm *serve.AdmissionError
	if !asAdmission(err, &adm) || adm.Reason != serve.ReasonDraining {
		t.Fatalf("submit during drain: %v, want 503 %s", err, serve.ReasonDraining)
	}

	// Restart: the sweep re-enqueues the interrupted session and it runs to
	// completion from its committed step.
	m2, err := serve.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	fin := waitState(t, m2, s.ID, serve.StateDone)
	if fin.StepsDone != 60 {
		t.Fatalf("resumed session finished at step %d, want 60", fin.StepsDone)
	}
}

// Pause checkpoints and parks the session (surviving restarts as paused);
// resume re-enqueues it; cancel on a terminal session conflicts.
func TestServePauseResumeCancel(t *testing.T) {
	fsys := store.NewFaultFS(nil)
	cfg := testConfig(fsys)
	m, err := serve.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	s, err := m.Submit(ctx, refSpec("alice", 1, 60))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for s.Status().StepsDone < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("session never progressed: %+v", s.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := m.Pause(s.ID); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, m, s.ID, serve.StatePaused)
	if st.StepsDone == 0 || st.StepsDone >= 60 {
		t.Fatalf("paused at step %d, want mid-run", st.StepsDone)
	}

	// A paused session survives a restart as paused — it does not self-resume.
	m.Close()
	m2, err := serve.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := mustStatus(t, m2, s.ID); got.State != serve.StatePaused {
		t.Fatalf("after restart, paused session is %s", got.State)
	}

	if err := m2.Resume(ctx, s.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m2, s.ID, serve.StateDone)
	if fin.StepsDone != 60 {
		t.Fatalf("resumed to step %d, want 60", fin.StepsDone)
	}
	err = m2.Cancel(s.ID)
	var op *serve.OpError
	if !asOp(err, &op) || op.Code != http.StatusConflict {
		t.Fatalf("cancel of done session: %v, want 409", err)
	}
}

// The HTTP surface end to end: submit, status, observables, metrics,
// healthz, and the typed 400 for a malformed spec.
func TestServeHTTPEndpoints(t *testing.T) {
	cfg := testConfig(store.NewFaultFS(nil))
	m, err := serve.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	resp := post(t, srv.URL+"/v1/sessions", `{"tenant":"alice","cells":2,"steps":6,"backend":"reference"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d, want 201", resp.StatusCode)
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, m, st.ID, serve.StateDone)

	var got serve.Status
	getJSON(t, srv.URL+"/v1/sessions/"+st.ID, &got)
	if got.State != serve.StateDone || got.StepsDone != 6 {
		t.Fatalf("status = %+v, want done at step 6", got)
	}

	var obs struct {
		Records []struct {
			Step int     `json:"Step"`
			T    float64 `json:"T"`
		} `json:"records"`
	}
	getJSON(t, srv.URL+"/v1/sessions/"+st.ID+"/observables?since=3", &obs)
	if len(obs.Records) != 3 || obs.Records[0].Step != 4 || obs.Records[0].T == 0 {
		t.Fatalf("observables since=3: %+v, want steps 4..6 with temperatures", obs.Records)
	}

	var health map[string]string
	getJSON(t, srv.URL+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}
	var metrics serve.Metrics
	getJSON(t, srv.URL+"/metrics", &metrics)
	if metrics.Sessions[serve.StateDone] != 1 || metrics.FsyncCount == 0 {
		t.Fatalf("metrics = %+v, want 1 done session and fsync telemetry", metrics)
	}

	resp = post(t, srv.URL+"/v1/sessions", `{"tenant":"","steps":0}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec status = %d, want 400", resp.StatusCode)
	}
	resp = post(t, srv.URL+"/v1/sessions/nope/cancel", ``)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session cancel = %d, want 404", resp.StatusCode)
	}
}

// A damaged session manifest surfaces as a typed failed session after the
// sweep, not a crashed or silently-shrunk server.
func TestServeSweepDamagedManifest(t *testing.T) {
	fsys := store.NewFaultFS(nil)
	cfg := testConfig(fsys)
	m, err := serve.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s, err := m.Submit(ctx, refSpec("alice", 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, s.ID, serve.StateDone)
	m.Close()

	manPath := path.Join("data", "alice", s.ID, "session.json")
	if err := store.WriteFileAtomic(fsys, manPath, []byte("not json")); err != nil {
		t.Fatal(err)
	}
	m2, err := serve.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	st := mustStatus(t, m2, s.ID)
	if st.State != serve.StateFailed || st.ErrKind != "manifest" {
		t.Fatalf("damaged-manifest session = %+v, want failed/manifest", st)
	}
}

// A session past its deadline stops at the next committed step and fails
// typed "deadline" — the server-side budget, not the client, ends it.
func TestServeSessionDeadline(t *testing.T) {
	cfg := testConfig(store.NewFaultFS(nil))
	m, err := serve.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	spec := refSpec("alice", 1, 100000-1)
	spec.DeadlineMs = 50
	s, err := m.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, m, s.ID, serve.StateFailed)
	if st.ErrKind != "deadline" {
		t.Fatalf("deadline session err kind = %q, want deadline", st.ErrKind)
	}
	if st.StepsDone >= spec.Steps {
		t.Fatalf("deadline session ran to completion (%d steps)", st.StepsDone)
	}
}

func mustStatus(t *testing.T, m *serve.Manager, id string) serve.Status {
	t.Helper()
	s, ok := m.Session(id)
	if !ok {
		t.Fatalf("session %s not registered", id)
	}
	return s.Status()
}

func asAdmission(err error, target **serve.AdmissionError) bool {
	if err == nil {
		return false
	}
	a, ok := err.(*serve.AdmissionError)
	if ok {
		*target = a
	}
	return ok
}

func asOp(err error, target **serve.OpError) bool {
	if err == nil {
		return false
	}
	o, ok := err.(*serve.OpError)
	if ok {
		*target = o
	}
	return ok
}

func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body))) //mdm:httpok -- test client against an httptest server; the test binary's own deadline bounds it
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url) //mdm:httpok -- test client against an httptest server; the test binary's own deadline bounds it
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
