package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"path"
	"sync"
	"sync/atomic"
	"time"

	"mdm"
	"mdm/internal/store"
)

// Session states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StatePaused   = "paused"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Typed failure kinds the HTTP layer maps to distinct statuses.
const (
	errKindRun               = "run"                // simulation or storage failure
	errKindNoRunState        = "no-run-state"       // nothing durable to resume
	errKindStaleRunDir       = "stale-run-dir"      // durable state from another timeline
	errKindCheckpointCorrupt = "checkpoint-corrupt" // damaged checkpoint image
	errKindMissingArtifact   = "missing-artifact"   // checkpoint without journal etc.
	errKindManifest          = "manifest"           // session manifest lost/damaged
	errKindDeadline          = "deadline"           // per-session deadline exceeded
)

// Stop reasons, in priority order: a cancel outranks a pause, a drain or
// deadline outranks neither (first writer wins otherwise).
const (
	stopNone int32 = iota
	stopPause
	stopDrain
	stopDeadline
	stopCancel
)

// JobSpec is a submitted simulation request.
type JobSpec struct {
	// Tenant is the owning tenant (required).
	Tenant string `json:"tenant"`
	// Cells is the rock-salt unit cells per side (default 2 → 64 ions).
	Cells int `json:"cells,omitempty"`
	// Steps is the number of NVT steps to run (required, bounded by the
	// server's MaxSessionSteps budget).
	Steps int `json:"steps"`
	// Seed is the velocity RNG seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Backend selects the force engine: "mdm" (default) or "reference".
	Backend string `json:"backend,omitempty"`
	// Faults is a fault-injection scenario in the internal/fault DSL,
	// applied to this session's simulated hardware (MDM backend only).
	Faults string `json:"faults,omitempty"`
	// WatchdogMs arms the per-hardware-call stall watchdog (0 = off).
	WatchdogMs int `json:"watchdog_ms,omitempty"`
	// DeadlineMs bounds the session's total wall-clock run time; past it the
	// session stops at the next committed step and fails typed "deadline".
	DeadlineMs int `json:"deadline_ms,omitempty"`
}

// manifest is the durable per-session record at <dir>/session.json,
// atomically replaced at every state transition that must survive a crash.
type manifest struct {
	ID      string  `json:"id"`
	Tenant  string  `json:"tenant"`
	Spec    JobSpec `json:"spec"`
	State   string  `json:"state"` // manifestActive etc.
	Steps   int     `json:"steps_done"`
	ErrKind string  `json:"err_kind,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// Manifest states. Active covers queued, running and drain-interrupted
// sessions alike: anything active at the moment of a crash is resumed by the
// next incarnation's sweep.
const (
	manifestActive   = "active"
	manifestPaused   = "paused"
	manifestDone     = "done"
	manifestFailed   = "failed"
	manifestCanceled = "canceled"
)

// Session is one registered simulation run.
type Session struct {
	ID     string
	Tenant string
	Spec   JobSpec

	mgr      *Manager
	dir      string
	stop     atomic.Int32 // stop reason requested for the running segment
	deadline time.Time    // zero = none; armed at submit

	mu        sync.Mutex
	state     string
	stepsDone int
	errKind   string
	errMsg    string
	records   []mdm.Record // observable samples published at chunk boundaries
}

func (s *Session) manifestPath() string { return path.Join(s.dir, "session.json") }
func (s *Session) ckptPath() string     { return path.Join(s.dir, "run.ckpt") }
func (s *Session) walPath() string      { return path.Join(s.dir, "run.wal") }

// Status is a session's externally visible state.
type Status struct {
	ID        string `json:"id"`
	Tenant    string `json:"tenant"`
	State     string `json:"state"`
	StepsDone int    `json:"steps_done"`
	StepsGoal int    `json:"steps_goal"`
	ErrKind   string `json:"err_kind,omitempty"`
	Error     string `json:"error,omitempty"`
}

// Status snapshots the session.
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{
		ID: s.ID, Tenant: s.Tenant, State: s.state,
		StepsDone: s.stepsDone, StepsGoal: s.Spec.Steps,
		ErrKind: s.errKind, Error: s.errMsg,
	}
}

// Records returns the observable samples with Step > since, in step order.
// Samples are published at checkpoint boundaries; after a server restart
// only samples from the resumed segment onward are available (the trajectory
// itself is durable, the in-memory sample buffer is not).
func (s *Session) Records(since int) []mdm.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := 0
	for i < len(s.records) && s.records[i].Step <= since {
		i++
	}
	out := make([]mdm.Record, len(s.records)-i)
	copy(out, s.records[i:])
	return out
}

// requestStop asks the running segment to stop at the next committed step.
// A higher-priority reason overwrites a lower one; cancel always wins.
func (s *Session) requestStop(reason int32) {
	for {
		cur := s.stop.Load()
		if cur >= reason {
			return
		}
		if s.stop.CompareAndSwap(cur, reason) {
			return
		}
	}
}

// interrupted is the per-step interrupt predicate installed on every
// simulation the executor runs; the integrator polls it after each committed
// step, so it is on the hot path of every session.
//
//mdm:stepflow -- hot-path root: installed as the simulation's per-step interrupt check (sim.SetInterrupt(s.interrupted)); annotated explicitly because the hook wiring is an assignment the callgraph cannot see
func (s *Session) interrupted() bool {
	return s.stop.Load() != stopNone
}

// simConfig builds the mdm.Config for this session's run directory.
func (s *Session) simConfig() (mdm.Config, error) {
	cfg := mdm.Config{
		Cells: s.Spec.Cells,
		Seed:  s.Spec.Seed,
	}
	switch s.Spec.Backend {
	case "", "mdm":
		cfg.Backend = mdm.BackendMDM
	case "reference":
		cfg.Backend = mdm.BackendReference
	default:
		return cfg, fmt.Errorf("serve: unknown backend %q", s.Spec.Backend)
	}
	cfg.Faults = s.Spec.Faults
	cfg.Supervise.Journal = s.walPath()
	cfg.Supervise.Watchdog = time.Duration(s.Spec.WatchdogMs) * time.Millisecond
	cfg.Workers = s.mgr.sessionWorkers()
	cfg.SetStoreFS(s.mgr.fsys)
	return cfg, nil
}

// sessionWorkers splits the shared worker budget across the executor pool so
// concurrent sessions do not each claim GOMAXPROCS.
func (m *Manager) sessionWorkers() int {
	if m.cfg.WorkerBudget <= 0 {
		return 0 // 0 = GOMAXPROCS inside mdm; single-executor default
	}
	per := m.cfg.WorkerBudget / max(1, m.cfg.Executors)
	return max(1, per)
}

// persistManifest atomically replaces the session manifest.
func (s *Session) persistManifest(state string) error {
	s.mu.Lock()
	man := manifest{
		ID: s.ID, Tenant: s.Tenant, Spec: s.Spec, State: state,
		Steps: s.stepsDone, ErrKind: s.errKind, Error: s.errMsg,
	}
	s.mu.Unlock()
	data, err := encodeJSON(&man)
	if err != nil {
		return err
	}
	return store.WriteFileAtomic(s.mgr.fsys, s.manifestPath(), data)
}

// runSession executes one dequeued session to a stopping point: completion,
// failure, or an interrupt (pause, cancel, drain, deadline). It owns the
// session's state transitions out of queued.
func (m *Manager) runSession(s *Session) {
	s.mu.Lock()
	if s.state != StateQueued {
		// Canceled while queued: the tombstone was already persisted.
		s.mu.Unlock()
		return
	}
	if m.draining.Load() {
		// Stay queued; the drain summary reports it and the next
		// incarnation's sweep re-runs it.
		s.mu.Unlock()
		return
	}
	s.state = StateRunning
	s.mu.Unlock()

	err := m.runSegments(s)
	tick := m.tick.Add(1)

	switch reason := s.stop.Load(); {
	case err == nil:
		s.finish(StateDone, manifestDone, "", "")
		m.breakers.OKScope(s.Tenant, int(tick))
	case errors.Is(err, mdm.ErrInterrupted) && reason == stopCancel:
		s.finish(StateCanceled, manifestCanceled, "", "")
	case errors.Is(err, mdm.ErrInterrupted) && reason == stopPause:
		s.stop.Store(stopNone)
		s.finish(StatePaused, manifestPaused, "", "")
	case errors.Is(err, mdm.ErrInterrupted) && reason == stopDeadline:
		s.finish(StateFailed, manifestFailed, errKindDeadline, "session deadline exceeded")
		m.breakers.Fail(s.Tenant, int(tick))
	case errors.Is(err, mdm.ErrInterrupted): // drain
		s.mu.Lock()
		s.state = StateQueued
		s.mu.Unlock()
		// Manifest stays "active": the next incarnation resumes it.
	case errors.Is(err, store.ErrCrashed):
		// The storage layer is gone (injected power cut): nothing can be
		// persisted. Leave every durable artifact as-is for the restart
		// sweep; the in-memory verdict only matters to this doomed process.
		s.mu.Lock()
		s.state = StateFailed
		s.errKind, s.errMsg = errKindRun, err.Error()
		s.mu.Unlock()
	default:
		s.finish(StateFailed, manifestFailed, failKind(err), err.Error())
		m.breakers.Fail(s.Tenant, int(tick))
	}
}

// finish records a terminal (or paused) verdict in memory and durably.
func (s *Session) finish(state, manState, errKind, errMsg string) {
	s.mu.Lock()
	s.state = state
	if errKind != "" {
		s.errKind, s.errMsg = errKind, errMsg
	}
	s.mu.Unlock()
	if err := s.persistManifest(manState); err != nil {
		s.mgr.cfg.Logf("serve: session %s: manifest write: %v", s.ID, err)
	}
}

// runSegments builds (or resumes) the simulation and advances it in
// CheckpointEvery-step segments, committing a checkpoint and publishing
// observables after each. Returns nil on completion, mdm.ErrInterrupted when
// a stop request landed, or the underlying failure.
func (m *Manager) runSegments(s *Session) error {
	cfg, err := s.simConfig()
	if err != nil {
		return err
	}
	sim, err := mdm.ResumeFromJournal(cfg, s.ckptPath())
	switch {
	case err == nil:
	case errors.Is(err, store.ErrNoRunState),
		errors.Is(err, store.ErrStaleRunDir) && !s.hasCheckpoint():
		// First run, killed before anything became durable, or killed after
		// journal appends but before the first checkpoint commit (a stranded
		// journal with no checkpoint is "stale run dir" to the resume scan).
		// Either way nothing committed constrains us: start from scratch,
		// which replays bit-identically from the same seed. The run directory
		// must exist before the journal's atomic-create sequence touches it.
		if err := m.fsys.MkdirAll(s.dir); err != nil {
			return err
		}
		sim, err = mdm.NewSimulation(cfg)
		if err != nil {
			return err
		}
	default:
		return err
	}
	defer func() { _ = sim.Free() }()
	sim.SetInterrupt(s.interrupted)

	if s.Spec.DeadlineMs > 0 {
		// Deadline enforcement stays off the step path: a timer flips the
		// atomic stop flag and the integrator's per-step poll sees it.
		remain := time.Until(s.deadline)
		if remain <= 0 {
			s.requestStop(stopDeadline)
		} else {
			t := time.AfterFunc(remain, func() { s.requestStop(stopDeadline) })
			defer t.Stop()
		}
	}

	done := sim.Integrator.StepCount()
	s.setSteps(done)
	if done >= s.Spec.Steps {
		// The resume replayed the journal tail right up to the goal: no steps
		// remain, but the durable checkpoint still predates the tail. Commit a
		// final checkpoint so the on-disk image matches the finished state.
		if err := sim.WriteCheckpoint(s.ckptPath()); err != nil {
			return err
		}
		s.publish(sim.Records())
		return nil
	}
	for done < s.Spec.Steps {
		n := m.cfg.CheckpointEvery
		if rest := s.Spec.Steps - done; rest < n {
			n = rest
		}
		runErr := sim.RunNVT(n)
		done = sim.Integrator.StepCount()
		s.setSteps(done)
		if runErr != nil && !errors.Is(runErr, mdm.ErrInterrupted) {
			return runErr
		}
		// Commit what ran — including the partial segment an interrupt
		// leaves — so a pause, drain or restart resumes from the last
		// committed step without journal replay from the previous
		// checkpoint.
		if err := sim.WriteCheckpoint(s.ckptPath()); err != nil {
			return err
		}
		s.publish(sim.Records())
		if runErr != nil {
			return runErr
		}
	}
	return nil
}

// hasCheckpoint reports whether a durable checkpoint image exists. Only its
// definite absence may downgrade a stale-run-dir verdict to a fresh start.
func (s *Session) hasCheckpoint() bool {
	_, err := s.mgr.fsys.ReadFile(s.ckptPath())
	return !store.NotExist(err)
}

func (s *Session) setSteps(n int) {
	s.mu.Lock()
	s.stepsDone = n
	s.mu.Unlock()
}

// publish merges the simulation's accumulated samples into the session's
// buffer (the sim restarts its recorder at the resume step, so merge by
// step, newest wins).
func (s *Session) publish(recs []mdm.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(recs) == 0 {
		return
	}
	first := recs[0].Step
	keep := s.records[:0]
	for _, r := range s.records {
		if r.Step < first {
			keep = append(keep, r)
		}
	}
	s.records = append(keep, recs...)
}

// encodeJSON marshals indented JSON (stable, human-inspectable artifacts).
func encodeJSON(v any) ([]byte, error) {
	return json.MarshalIndent(v, "", "  ")
}

// decodeStrict unmarshals rejecting unknown fields, so a manifest written by
// a newer incarnation fails loudly instead of silently dropping state.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
