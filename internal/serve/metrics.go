package serve

import (
	"sync/atomic"
	"time"

	"mdm/internal/store"
)

// Metrics is the /metrics snapshot.
type Metrics struct {
	// Sessions counts registered sessions by state.
	Sessions map[string]int `json:"sessions"`
	// QueueDepth and QueueCap describe the admission queue.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Draining reports whether a drain has begun.
	Draining bool `json:"draining"`
	// Breakers maps each tenant with breaker history to its state.
	Breakers map[string]string `json:"breakers"`
	// BreakerTrips counts breaker openings across all tenants.
	BreakerTrips int `json:"breaker_trips"`
	// FsyncCount / FsyncMeanMicros / FsyncMaxMicros describe journal and
	// checkpoint fsync latency as seen by the storage wrapper.
	FsyncCount      int64   `json:"fsync_count"`
	FsyncMeanMicros float64 `json:"fsync_mean_micros"`
	FsyncMaxMicros  int64   `json:"fsync_max_micros"`
}

// Metrics snapshots the manager.
func (m *Manager) Metrics() Metrics {
	out := Metrics{
		Sessions:   make(map[string]int),
		QueueDepth: len(m.queue),
		QueueCap:   cap(m.queue),
		Draining:   m.draining.Load(),
		Breakers:   make(map[string]string),
	}
	m.mu.Lock()
	for _, s := range m.sessions {
		s.mu.Lock()
		out.Sessions[s.state]++
		s.mu.Unlock()
	}
	m.mu.Unlock()
	for scope, st := range m.breakers.States(int(m.tick.Load())) {
		out.Breakers[scope] = st.String()
	}
	out.BreakerTrips = m.breakers.Trips()
	count, total, maxv := m.timing.stats()
	out.FsyncCount = count
	if count > 0 {
		out.FsyncMeanMicros = float64(total) / float64(count) / 1e3
	}
	out.FsyncMaxMicros = maxv / 1e3
	return out
}

// timingFS wraps a store.FS to measure fsync latency (File.Sync and
// SyncDir), the dominant cost of the per-step journal commit. It is an
// observability wrapper only: every operation is delegated unchanged, so the
// crash-durability semantics of the wrapped filesystem are preserved.
type timingFS struct {
	store.FS
	syncCount atomic.Int64
	syncNanos atomic.Int64
	syncMax   atomic.Int64
}

func newTimingFS(inner store.FS) *timingFS { return &timingFS{FS: inner} }

func (t *timingFS) stats() (count, totalNanos, maxNanos int64) {
	return t.syncCount.Load(), t.syncNanos.Load(), t.syncMax.Load()
}

func (t *timingFS) observe(d time.Duration) {
	n := int64(d)
	t.syncCount.Add(1)
	t.syncNanos.Add(n)
	for {
		cur := t.syncMax.Load()
		if n <= cur || t.syncMax.CompareAndSwap(cur, n) {
			return
		}
	}
}

func (t *timingFS) Create(path string) (store.File, error) {
	f, err := t.FS.Create(path)
	if err != nil {
		return nil, err
	}
	return &timingFile{File: f, fs: t}, nil
}

func (t *timingFS) Append(path string) (store.File, error) {
	f, err := t.FS.Append(path)
	if err != nil {
		return nil, err
	}
	return &timingFile{File: f, fs: t}, nil
}

func (t *timingFS) SyncDir(dir string) error {
	start := time.Now() //mdm:wallclockok -- fsync latency telemetry: the duration feeds /metrics counters only, never simulation state or the journal
	err := t.FS.SyncDir(dir)
	t.observe(time.Since(start)) //mdm:wallclockok -- fsync latency telemetry: counters only
	return err
}

type timingFile struct {
	store.File
	fs *timingFS
}

func (f *timingFile) Sync() error {
	start := time.Now() //mdm:wallclockok -- fsync latency telemetry: the duration feeds /metrics counters only, never simulation state or the journal
	err := f.File.Sync()
	f.fs.observe(time.Since(start)) //mdm:wallclockok -- fsync latency telemetry: counters only
	return err
}
