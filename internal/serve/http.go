package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/sessions                    submit a JobSpec → 201 Status
//	GET  /v1/sessions/{id}               session status
//	GET  /v1/sessions/{id}/observables   samples (?since=<step>)
//	POST /v1/sessions/{id}/pause
//	POST /v1/sessions/{id}/resume
//	POST /v1/sessions/{id}/cancel
//	GET  /healthz
//	GET  /metrics
//
// Rejections are typed: quota violations answer 429 with Retry-After;
// queue-full, draining and quarantined answer 503 with Retry-After; malformed
// specs answer 400. Session failures expose their typed kind in Status.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", m.handleSubmit)
	mux.HandleFunc("GET /v1/sessions/{id}", m.handleStatus)
	mux.HandleFunc("GET /v1/sessions/{id}/observables", m.handleObservables)
	mux.HandleFunc("POST /v1/sessions/{id}/pause", m.handlePause)
	mux.HandleFunc("POST /v1/sessions/{id}/resume", m.handleResume)
	mux.HandleFunc("POST /v1/sessions/{id}/cancel", m.handleCancel)
	mux.HandleFunc("GET /healthz", m.handleHealthz)
	mux.HandleFunc("GET /metrics", m.handleMetrics)
	return mux
}

// Server wraps Handler in an http.Server with the I/O deadlines a
// long-lived daemon needs: without ReadHeaderTimeout a client that opens a
// connection and goes silent pins a goroutine forever.
func (m *Manager) Server(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           m.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := encodeJSON(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(append(data, '\n'))
}

// writeError maps the serve error taxonomy onto HTTP: AdmissionError carries
// its own status and Retry-After, ValidationError is 400, OpError carries
// its status, anything else is 500.
func writeError(w http.ResponseWriter, err error) {
	var adm *AdmissionError
	var val *ValidationError
	var op *OpError
	switch {
	case errors.As(err, &adm):
		w.Header().Set("Retry-After", strconv.Itoa(int((adm.RetryAfter+time.Second-1)/time.Second)))
		writeJSON(w, adm.Code, errorBody{Error: adm.Error(), Reason: adm.Reason})
	case errors.As(err, &val):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: val.Error()})
	case errors.As(err, &op):
		writeJSON(w, op.Code, errorBody{Error: op.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	buf, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "body: " + err.Error()})
		return
	}
	if err := decodeStrict(buf, &spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "body: " + err.Error()})
		return
	}
	s, err := m.Submit(r.Context(), spec)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/sessions/"+s.ID)
	writeJSON(w, http.StatusCreated, s.Status())
}

func (m *Manager) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	id := r.PathValue("id")
	s, ok := m.Session(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such session " + id})
		return nil, false
	}
	return s, true
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	if s, ok := m.session(w, r); ok {
		writeJSON(w, http.StatusOK, s.Status())
	}
}

func (m *Manager) handleObservables(w http.ResponseWriter, r *http.Request) {
	s, ok := m.session(w, r)
	if !ok {
		return
	}
	since := -1
	if q := r.URL.Query().Get("since"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("since: %v", err)})
			return
		}
		since = n
	}
	recs := s.Records(since)
	writeJSON(w, http.StatusOK, map[string]any{"id": s.ID, "records": recs})
}

func (m *Manager) handlePause(w http.ResponseWriter, r *http.Request) {
	if err := m.Pause(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "pausing"})
}

func (m *Manager) handleResume(w http.ResponseWriter, r *http.Request) {
	if err := m.Resume(r.Context(), r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "queued"})
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := m.Cancel(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "canceling"})
}

func (m *Manager) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if m.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

func (m *Manager) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, m.Metrics())
}
