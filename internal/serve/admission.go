package serve

import (
	"context"
	"fmt"
	"net/http"
	"time"
)

// AdmissionError is a typed submit rejection. The HTTP layer turns it into
// Code + a Retry-After header; programmatic callers branch on Reason.
type AdmissionError struct {
	// Code is the HTTP status the rejection maps to: 429 for quota
	// violations (the tenant can shed load and retry), 503 for server-side
	// conditions (queue full, draining, tenant quarantined).
	Code int
	// Reason is the machine-readable rejection class.
	Reason string
	// RetryAfter is the client back-off hint.
	RetryAfter time.Duration
	msg        string
}

// Admission rejection reasons.
const (
	ReasonQuotaSessions = "quota-sessions"
	ReasonQuotaQueued   = "quota-queued"
	ReasonQuotaBudget   = "quota-particle-steps"
	ReasonQueueFull     = "queue-full"
	ReasonDraining      = "draining"
	ReasonQuarantined   = "quarantined"
)

//mdm:hotallocok -- admission-rejection formatting: runs on the submit path, never inside the integrator step loop; marked hot only via error-interface fan-out
func (e *AdmissionError) Error() string {
	return fmt.Sprintf("serve: admission rejected (%s): %s", e.Reason, e.msg)
}

func (m *Manager) reject(code int, reason, format string, args ...any) *AdmissionError {
	return &AdmissionError{
		Code: code, Reason: reason, RetryAfter: m.cfg.RetryAfter,
		msg: fmt.Sprintf(format, args...),
	}
}

// ValidationError is a submit rejected for a malformed spec (HTTP 400): no
// amount of retrying will admit it.
type ValidationError struct{ msg string }

//mdm:hotallocok -- spec-validation formatting: runs on the submit path, never inside the integrator step loop; marked hot only via error-interface fan-out
func (e *ValidationError) Error() string { return "serve: invalid spec: " + e.msg }

func validate(spec JobSpec, maxSteps int) error {
	switch {
	case spec.Tenant == "":
		return &ValidationError{"tenant is required"}
	case spec.Steps <= 0:
		return &ValidationError{"steps must be positive"}
	case spec.Steps > maxSteps:
		return &ValidationError{fmt.Sprintf("steps %d exceeds the server budget of %d", spec.Steps, maxSteps)}
	case spec.Cells < 0 || spec.Cells > 8:
		return &ValidationError{"cells must be in [1, 8]"}
	case spec.Backend != "" && spec.Backend != "mdm" && spec.Backend != "reference":
		return &ValidationError{fmt.Sprintf("unknown backend %q", spec.Backend)}
	case spec.WatchdogMs < 0 || spec.DeadlineMs < 0:
		return &ValidationError{"watchdog_ms and deadline_ms must be non-negative"}
	}
	return nil
}

// Submit runs the admission ladder for spec and, if every rung passes,
// durably registers a new session and enqueues it:
//
//  1. spec validation (400 — retrying is pointless),
//  2. drain check (503 draining),
//  3. tenant circuit breaker (503 quarantined: this tenant's recent sessions
//     kept failing; the server stays open for everyone else),
//  4. tenant quotas (429 with Retry-After),
//  5. bounded queue wait (at most AdmitWait, also bounded by ctx; 503
//     queue-full on timeout).
//
// The session is durable (index + manifest committed) before Submit returns;
// a crash after that resumes it, a crash before it never existed.
func (m *Manager) Submit(ctx context.Context, spec JobSpec) (*Session, error) {
	if err := validate(spec, m.cfg.MaxSessionSteps); err != nil {
		return nil, err
	}
	if m.draining.Load() {
		return nil, m.reject(http.StatusServiceUnavailable, ReasonDraining, "server is draining")
	}
	tick := int(m.tick.Add(1))
	if !m.breakers.Allow(spec.Tenant, tick) {
		return nil, m.reject(http.StatusServiceUnavailable, ReasonQuarantined,
			"tenant %s is quarantined after repeated failures", spec.Tenant)
	}

	m.mu.Lock()
	if err := m.checkQuota(spec); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.nextID++
	s := &Session{
		ID:     fmt.Sprintf("s%04d", m.nextID),
		Tenant: spec.Tenant,
		Spec:   spec,
		mgr:    m,
		state:  StateQueued,
	}
	s.dir = m.sessionDir(s.Tenant, s.ID)
	if spec.DeadlineMs > 0 {
		s.deadline = time.Now().Add(time.Duration(spec.DeadlineMs) * time.Millisecond)
	}
	// Registration order: manifest first, then the index that makes the
	// session discoverable. A crash between the two leaves an orphaned
	// manifest no sweep will read — invisible, exactly like a crash before
	// either write.
	if err := m.fsys.MkdirAll(s.dir); err != nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("serve: session dir: %w", err)
	}
	if err := s.persistManifest(manifestActive); err != nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("serve: manifest: %w", err)
	}
	m.index.Sessions = append(m.index.Sessions, indexEntry{Tenant: s.Tenant, ID: s.ID})
	if err := m.persistIndex(); err != nil {
		m.index.Sessions = m.index.Sessions[:len(m.index.Sessions)-1]
		m.mu.Unlock()
		return nil, fmt.Errorf("serve: index: %w", err)
	}
	m.sessions[s.ID] = s
	m.used[spec.Tenant] += particleSteps(spec)
	m.mu.Unlock()

	if err := m.enqueue(ctx, s); err != nil {
		// The session is durable but has no queue slot; mark it canceled so
		// it neither runs now nor resurrects on restart.
		s.finish(StateCanceled, manifestCanceled, "", "")
		return nil, err
	}
	return s, nil
}

// checkQuota enforces the tenant quotas. Callers hold m.mu.
func (m *Manager) checkQuota(spec JobSpec) error {
	q := m.cfg.Quota
	live, queued := 0, 0
	for _, s := range m.sessions {
		if s.Tenant != spec.Tenant {
			continue
		}
		s.mu.Lock()
		switch s.state {
		case StateQueued:
			live++
			queued++
		case StateRunning, StatePaused:
			live++
		}
		s.mu.Unlock()
	}
	switch {
	case q.MaxSessions > 0 && live >= q.MaxSessions:
		return m.reject(http.StatusTooManyRequests, ReasonQuotaSessions,
			"tenant %s has %d live sessions (max %d)", spec.Tenant, live, q.MaxSessions)
	case q.MaxQueued > 0 && queued >= q.MaxQueued:
		return m.reject(http.StatusTooManyRequests, ReasonQuotaQueued,
			"tenant %s has %d queued sessions (max %d)", spec.Tenant, queued, q.MaxQueued)
	case q.MaxParticleSteps > 0 && m.used[spec.Tenant]+particleSteps(spec) > q.MaxParticleSteps:
		return m.reject(http.StatusTooManyRequests, ReasonQuotaBudget,
			"tenant %s would exceed its particle-step budget of %d", spec.Tenant, q.MaxParticleSteps)
	}
	return nil
}

// enqueue places s on the admission queue, waiting at most AdmitWait (and no
// longer than the request context allows).
func (m *Manager) enqueue(ctx context.Context, s *Session) error {
	wait := time.NewTimer(m.cfg.AdmitWait)
	defer wait.Stop()
	select {
	case m.queue <- s:
		return nil
	case <-ctx.Done():
		return m.reject(http.StatusServiceUnavailable, ReasonQueueFull,
			"request canceled while waiting for a queue slot")
	case <-wait.C:
		return m.reject(http.StatusServiceUnavailable, ReasonQueueFull,
			"admission queue full for %v", m.cfg.AdmitWait)
	case <-m.stop:
		return m.reject(http.StatusServiceUnavailable, ReasonDraining, "server is draining")
	}
}

// OpError is a session-operation rejection (pause/resume/cancel in the wrong
// state, unknown session).
type OpError struct {
	Code int
	msg  string
}

//mdm:hotallocok -- session-operation rejection formatting: runs on the HTTP path, never inside the integrator step loop; marked hot only via error-interface fan-out
func (e *OpError) Error() string { return "serve: " + e.msg }

// Pause asks a running session to stop at its next committed step and
// checkpoint; a queued session pauses immediately (it gives up its place in
// line). Paused sessions survive restarts as paused.
func (m *Manager) Pause(id string) error {
	s, ok := m.Session(id)
	if !ok {
		return &OpError{http.StatusNotFound, "no such session " + id}
	}
	s.mu.Lock()
	state := s.state
	if state == StateQueued {
		s.state = StatePaused
	}
	s.mu.Unlock()
	switch state {
	case StateQueued:
		return s.persistManifest(manifestPaused)
	case StateRunning:
		s.requestStop(stopPause)
		return nil
	default:
		return &OpError{http.StatusConflict, fmt.Sprintf("session %s is %s, not pausable", id, state)}
	}
}

// Resume re-enqueues a paused session.
func (m *Manager) Resume(ctx context.Context, id string) error {
	if m.draining.Load() {
		return m.reject(http.StatusServiceUnavailable, ReasonDraining, "server is draining")
	}
	s, ok := m.Session(id)
	if !ok {
		return &OpError{http.StatusNotFound, "no such session " + id}
	}
	s.mu.Lock()
	if s.state != StatePaused {
		state := s.state
		s.mu.Unlock()
		return &OpError{http.StatusConflict, fmt.Sprintf("session %s is %s, not paused", id, state)}
	}
	s.state = StateQueued
	s.mu.Unlock()
	s.stop.Store(stopNone)
	if err := s.persistManifest(manifestActive); err != nil {
		return err
	}
	if err := m.enqueue(ctx, s); err != nil {
		// Back to paused: the session stays resumable.
		s.mu.Lock()
		s.state = StatePaused
		s.mu.Unlock()
		if perr := s.persistManifest(manifestPaused); perr != nil {
			return perr
		}
		return err
	}
	return nil
}

// Cancel terminates a session: queued and paused sessions cancel
// immediately, running ones at their next committed step. Terminal sessions
// conflict.
func (m *Manager) Cancel(id string) error {
	s, ok := m.Session(id)
	if !ok {
		return &OpError{http.StatusNotFound, "no such session " + id}
	}
	s.mu.Lock()
	state := s.state
	if state == StateQueued || state == StatePaused {
		s.state = StateCanceled
	}
	s.mu.Unlock()
	switch state {
	case StateQueued, StatePaused:
		return s.persistManifest(manifestCanceled)
	case StateRunning:
		s.requestStop(stopCancel)
		return nil
	default:
		return &OpError{http.StatusConflict, fmt.Sprintf("session %s is already %s", id, state)}
	}
}
