// Package serve is the long-lived simulation service of the MDM
// reproduction. The paper's machine room ran multi-hour campaigns for many
// users (§6: 36.5 hours for the production NaCl run); this package models the
// host-side queueing discipline such a facility needs: a session manager that
// admits, schedules and supervises concurrent mdm.Simulation runs for
// multiple tenants, designed around failure rather than around the happy
// path.
//
// The load-bearing properties, each pinned by tests:
//
//   - Crash safety. Every session journals and checkpoints through
//     internal/store into its own run directory. Killing the server at any
//     point — including a simulated power cut via store's FaultFS — and
//     restarting recovers every interrupted session via mdm.ResumeFromJournal
//     and finishes it bit-identically to a run that was never interrupted.
//   - Bounded admission. Submits pass a ladder: tenant quota (429 with
//     Retry-After), tenant circuit breaker (quarantine the tenant, not the
//     server), then a bounded FIFO queue feeding a fixed executor pool that
//     shares one worker budget. A full queue blocks the submit for at most
//     AdmitWait before a typed rejection.
//   - Graceful drain. Drain stops admission, interrupts running sessions at
//     the next committed step, flushes their journals, writes final
//     checkpoints, and returns a machine-readable summary; interrupted
//     sessions resume on the next server start.
package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"path"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mdm/internal/md"
	"mdm/internal/store"
	"mdm/internal/supervise"
)

// Quota bounds one tenant. Zero values mean unlimited.
type Quota struct {
	// MaxSessions caps a tenant's live (queued, running or paused) sessions.
	MaxSessions int
	// MaxQueued caps a tenant's sessions waiting in the admission queue.
	MaxQueued int
	// MaxParticleSteps caps a tenant's lifetime compute budget: the sum of
	// ions × requested steps over every admitted session.
	MaxParticleSteps int64
}

// Config describes one Manager. Zero values select the noted defaults.
type Config struct {
	// Root is the run-directory root; each session lives in
	// Root/<tenant>/<id>/.
	Root string
	// FS overrides the storage layer (nil = the real filesystem). Tests
	// inject store.FaultFS here to power-cut the whole server.
	FS store.FS
	// Executors is the number of executor goroutines pulling sessions off
	// the admission queue (default 2; negative = none, a test hook that
	// freezes the queue).
	Executors int
	// WorkerBudget is the total simulation worker budget shared by all
	// executors (default runtime.GOMAXPROCS); each session runs with
	// WorkerBudget/Executors workers rather than claiming GOMAXPROCS for
	// itself. Worker width never changes trajectories.
	WorkerBudget int
	// QueueDepth is the admission queue capacity (default 16).
	QueueDepth int
	// AdmitWait bounds how long a submit may block waiting for a queue slot
	// before the typed queue-full rejection (default 100ms).
	AdmitWait time.Duration
	// CheckpointEvery is the step interval between checkpoint commits
	// (default 8). Smaller values shorten recovery replay at the cost of
	// more checkpoint I/O.
	CheckpointEvery int
	// MaxSessionSteps is the server-side step budget: a submit asking for
	// more steps is rejected outright (default 100000).
	MaxSessionSteps int
	// Quota is the per-tenant admission quota.
	Quota Quota
	// Breaker tunes the per-tenant circuit breakers, clocked on admission
	// ticks rather than wall time so quarantine behaviour is deterministic.
	Breaker supervise.BreakerConfig
	// RetryAfter is the client back-off hint attached to quota and
	// queue-full rejections (default 1s).
	RetryAfter time.Duration
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.FS == nil {
		c.FS = store.OS()
	}
	if c.Executors == 0 {
		c.Executors = 2
	}
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = 0 // resolved per session: 0 = GOMAXPROCS
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.AdmitWait <= 0 {
		c.AdmitWait = 100 * time.Millisecond
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 8
	}
	if c.MaxSessionSteps <= 0 {
		c.MaxSessionSteps = 100000
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// indexEntry is one row of the flat session index at Root/sessions.json. The
// index exists because the fault filesystem has no directory tree to walk:
// discovery after a crash must go through a single durably-committed file.
type indexEntry struct {
	Tenant string `json:"tenant"`
	ID     string `json:"id"`
}

type sessionIndex struct {
	Sessions []indexEntry `json:"sessions"`
}

// Manager owns the session registry, the admission queue and the executor
// pool. Build one with Open, which also performs the crash-recovery sweep.
type Manager struct {
	cfg      Config
	fsys     store.FS  // timing-wrapped storage all session I/O goes through
	timing   *timingFS // the wrapper itself, for metrics
	queue    chan *Session
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	draining atomic.Bool
	// tick is the admission clock the tenant breakers run on: it advances on
	// every admission decision and every session completion, so breaker
	// windows and cooldowns are counted in service events, not wall time.
	tick     atomic.Int64
	breakers *supervise.BreakerSet

	mu       sync.Mutex
	sessions map[string]*Session
	index    sessionIndex
	nextID   int
	used     map[string]int64 // tenant → admitted particle-steps
}

// Open builds a Manager over cfg.Root, runs the crash-recovery sweep
// (re-registering every session the index knows about and re-enqueueing the
// interrupted ones), and starts the executor pool.
func Open(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	timing := newTimingFS(cfg.FS)
	m := &Manager{
		cfg:      cfg,
		fsys:     timing,
		timing:   timing,
		queue:    make(chan *Session, cfg.QueueDepth),
		stop:     make(chan struct{}),
		breakers: supervise.NewBreakerSet(cfg.Breaker),
		sessions: make(map[string]*Session),
		used:     make(map[string]int64),
	}
	if err := m.fsys.MkdirAll(cfg.Root); err != nil {
		return nil, fmt.Errorf("serve: root: %w", err)
	}
	if err := m.sweep(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Executors; i++ {
		m.wg.Add(1)
		//mdm:gojoinok -- executor pool: joined by Drain/Close via m.wg before the manager is discarded
		go m.executor()
	}
	return m, nil
}

// sweep is the crash-recovery pass: read the durable index, load every
// session's manifest, and re-enqueue the ones a previous incarnation left
// unfinished. Terminal sessions are re-registered for status queries;
// sessions whose manifest is unreadable are registered failed rather than
// silently dropped.
func (m *Manager) sweep() error {
	data, err := m.fsys.ReadFile(m.indexPath())
	if store.NotExist(err) {
		return nil // fresh root
	}
	if err != nil {
		return fmt.Errorf("serve: index: %w", err)
	}
	if err := decodeStrict(data, &m.index); err != nil {
		return fmt.Errorf("serve: index: %w", err)
	}
	var resume []*Session
	for _, ent := range m.index.Sessions {
		s := &Session{ID: ent.ID, Tenant: ent.Tenant, mgr: m, dir: m.sessionDir(ent.Tenant, ent.ID)}
		if n := idNum(ent.ID); n >= m.nextID {
			m.nextID = n + 1
		}
		var man manifest
		mdata, merr := m.fsys.ReadFile(s.manifestPath())
		if merr == nil {
			merr = decodeStrict(mdata, &man)
		}
		switch {
		case merr != nil:
			// The submit crashed between index and manifest commit, or the
			// manifest was damaged: the session is unrunnable but must stay
			// visible, with the reason attached.
			s.state = StateFailed
			s.errKind = errKindManifest
			s.errMsg = fmt.Sprintf("manifest unreadable: %v", merr)
		case man.State == manifestDone:
			s.state = StateDone
			s.Spec = man.Spec
			s.stepsDone = man.Steps
		case man.State == manifestFailed:
			s.state = StateFailed
			s.Spec = man.Spec
			s.stepsDone = man.Steps
			s.errKind = man.ErrKind
			s.errMsg = man.Error
		case man.State == manifestCanceled:
			s.state = StateCanceled
			s.Spec = man.Spec
			s.stepsDone = man.Steps
		case man.State == manifestPaused:
			s.state = StatePaused
			s.Spec = man.Spec
			s.stepsDone = man.Steps
		default: // active: interrupted by the crash (or never started)
			s.state = StateQueued
			s.Spec = man.Spec
			s.stepsDone = man.Steps
			resume = append(resume, s)
		}
		m.sessions[s.ID] = s
		m.used[s.Tenant] += particleSteps(s.Spec)
	}
	// Re-enqueue outside the registry loop, oldest first (index order is
	// submission order). The queue is sized by config, not by the sweep, so
	// a recovery bigger than QueueDepth must not deadlock Open: grow the
	// queue to fit the backlog.
	if len(resume) > cap(m.queue)-len(m.queue) {
		grown := make(chan *Session, len(resume)+cap(m.queue))
		for {
			select {
			case s := <-m.queue:
				grown <- s
				continue
			default:
			}
			break
		}
		m.queue = grown
	}
	for _, s := range resume {
		m.cfg.Logf("serve: recovering session %s (tenant %s, step %d/%d)", s.ID, s.Tenant, s.stepsDone, s.Spec.Steps)
		m.queue <- s
	}
	return nil
}

func (m *Manager) indexPath() string { return path.Join(m.cfg.Root, "sessions.json") }

func (m *Manager) sessionDir(tenant, id string) string {
	return path.Join(m.cfg.Root, tenant, id)
}

// idNum parses the numeric tail of a session ID ("s0042" → 42, -1 if not
// ours).
func idNum(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "s%d", &n); err != nil {
		return -1
	}
	return n
}

func particleSteps(spec JobSpec) int64 {
	cells := spec.Cells
	if cells <= 0 {
		cells = 2
	}
	return int64(8*cells*cells*cells) * int64(spec.Steps)
}

// executor pulls sessions off the admission queue until Drain or Close.
func (m *Manager) executor() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		select {
		case <-m.stop:
			return
		case s := <-m.queue:
			m.runSession(s)
		}
	}
}

// Session returns the registered session with the given ID.
func (m *Manager) Session(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// DrainSummary is the machine-readable result of a graceful drain.
type DrainSummary struct {
	// Sessions counts every registered session by state at drain completion.
	Sessions map[string]int `json:"sessions"`
	// Interrupted lists the sessions the drain stopped mid-run; each resumes
	// from its last committed step on the next server start.
	Interrupted []string `json:"interrupted,omitempty"`
	// Queued lists sessions that never started; they also run on restart.
	Queued []string `json:"queued,omitempty"`
}

// Drain performs the graceful-shutdown protocol: stop admitting, interrupt
// every running session at its next committed step (journals are already
// fsynced per step; the executor adds a final checkpoint), stop the executor
// pool, and report what was left behind. Idempotent; the manager admits
// nothing afterwards.
func (m *Manager) Drain() DrainSummary {
	m.draining.Store(true)
	m.mu.Lock()
	for _, s := range m.sessions {
		s.requestStop(stopDrain)
	}
	m.mu.Unlock()
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()

	sum := DrainSummary{Sessions: make(map[string]int)}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.sessions {
		s.mu.Lock()
		state, started := s.state, s.stepsDone > 0
		s.mu.Unlock()
		sum.Sessions[state]++
		if state == StateQueued {
			if started {
				sum.Interrupted = append(sum.Interrupted, s.ID)
			} else {
				sum.Queued = append(sum.Queued, s.ID)
			}
		}
	}
	sort.Strings(sum.Interrupted)
	sort.Strings(sum.Queued)
	return sum
}

// Close is Drain without the summary, for tests and error paths.
func (m *Manager) Close() { m.Drain() }

// Draining reports whether a drain has begun.
func (m *Manager) Draining() bool { return m.draining.Load() }

// persistIndex writes the session index atomically. Callers hold m.mu.
func (m *Manager) persistIndex() error {
	data, err := encodeJSON(&m.index)
	if err != nil {
		return err
	}
	return store.WriteFileAtomic(m.fsys, m.indexPath(), data)
}

// failKind classifies a session-run error into the typed kinds the HTTP
// layer maps to distinct statuses.
func failKind(err error) string {
	switch {
	case errors.Is(err, store.ErrNoRunState):
		return errKindNoRunState
	case errors.Is(err, store.ErrStaleRunDir):
		return errKindStaleRunDir
	case errors.Is(err, md.ErrCheckpointCorrupt):
		return errKindCheckpointCorrupt
	case errors.Is(err, fs.ErrNotExist):
		return errKindMissingArtifact
	default:
		return errKindRun
	}
}
