package wine2

import (
	"testing"

	"mdm/internal/ewald"
)

func TestDFTPartitionedBitwiseEqual(t *testing.T) {
	// Partial fixed-point accumulators summed on the host are exactly the
	// monolithic accumulators: the blocked dataflow loses nothing.
	cfg := CurrentConfig()
	cfg.ParticleMemBytes = 20 * cfg.BytesPerParticle // force 4 blocks for 66 particles
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const l = 12.0
	pos, q := testSystem(66, l, 31)
	p := ewald.Params{L: l, Alpha: 7, RCut: 5, LKCut: 5}
	waves := ewald.Waves(p)

	mono, err := NewSystem(CurrentConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantS, wantC, err := mono.DFT(l, waves, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	gotS, gotC, boards, err := sys.DFTPartitioned(l, waves, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	if boards != 4 {
		t.Errorf("boards = %d, want 4", boards)
	}
	for w := range waves {
		if gotS[w] != wantS[w] || gotC[w] != wantC[w] {
			t.Fatalf("wave %d: partitioned (%g,%g) != monolithic (%g,%g)",
				w, gotS[w], gotC[w], wantS[w], wantC[w])
		}
	}
}

func TestIDFTPartitionedEqual(t *testing.T) {
	cfg := CurrentConfig()
	cfg.ParticleMemBytes = 16 * cfg.BytesPerParticle
	sys, _ := NewSystem(cfg)
	const l = 12.0
	pos, q := testSystem(48, l, 32)
	p := ewald.Params{L: l, Alpha: 7, RCut: 5, LKCut: 5}
	waves := ewald.Waves(p)
	sn, cn := ewald.StructureFactors(waves, pos, q)

	mono, _ := NewSystem(CurrentConfig())
	want, err := mono.IDFT(l, waves, sn, cn, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	got, boards, err := sys.IDFTPartitioned(l, waves, sn, cn, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	if boards != 3 {
		t.Errorf("boards = %d, want 3", boards)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("particle %d: partitioned %v != monolithic %v", i, got[i], want[i])
		}
	}
}

func TestPartitionedCapacityExceeded(t *testing.T) {
	cfg := CurrentConfig()
	cfg.Clusters = 1
	cfg.BoardsPerCluster = 2
	cfg.ParticleMemBytes = 4 * cfg.BytesPerParticle // 2 boards × 4 = 8 max
	sys, _ := NewSystem(cfg)
	pos, q := testSystem(9, 10, 33)
	p := ewald.Params{L: 10, Alpha: 6, RCut: 4, LKCut: 4}
	waves := ewald.Waves(p)
	if _, _, _, err := sys.DFTPartitioned(10, waves, pos, q); err == nil {
		t.Error("over-capacity system accepted")
	}
	if _, _, err := sys.IDFTPartitioned(10, waves, make([]float64, len(waves)), make([]float64, len(waves)), pos, q); err == nil {
		t.Error("over-capacity IDFT accepted")
	}
	if _, _, _, err := sys.DFTPartitioned(10, waves, pos, q[:5]); err == nil {
		t.Error("length mismatch accepted")
	}
}
