package wine2

import (
	"math"
	"testing"

	"mdm/internal/ewald"
	"mdm/internal/parallelize"
)

// The DFT stripes waves and the IDFT stripes particles across the pool; the
// fixed-point accumulators live entirely inside one shard, so every pool
// width must return bit-for-bit the serial result.

func TestDFTIDFTBitIdenticalAcrossWorkers(t *testing.T) {
	const l = 12.0
	pos, q := testSystem(96, l, 3)
	p := ewald.Params{L: l, Alpha: 7, RCut: 5, LKCut: 6}
	waves := ewald.Waves(p)

	serial, err := NewSystem(CurrentConfig())
	if err != nil {
		t.Fatal(err)
	}
	sn0, cn0, err := serial.DFT(l, waves, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	f0, err := serial.IDFT(l, waves, sn0, cn0, pos, q)
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range []int{2, 3, 4, 8} {
		sys, err := NewSystem(CurrentConfig())
		if err != nil {
			t.Fatal(err)
		}
		sys.SetPool(parallelize.New(w))
		sn, cn, err := sys.DFT(l, waves, pos, q)
		if err != nil {
			t.Fatal(err)
		}
		for k := range sn0 {
			if math.Float64bits(sn[k]) != math.Float64bits(sn0[k]) ||
				math.Float64bits(cn[k]) != math.Float64bits(cn0[k]) {
				t.Fatalf("workers=%d: structure factor %d differs: (%x,%x) vs (%x,%x)",
					w, k, math.Float64bits(sn[k]), math.Float64bits(cn[k]),
					math.Float64bits(sn0[k]), math.Float64bits(cn0[k]))
			}
		}
		f, err := sys.IDFT(l, waves, sn, cn, pos, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range f0 {
			if math.Float64bits(f[i].X) != math.Float64bits(f0[i].X) ||
				math.Float64bits(f[i].Y) != math.Float64bits(f0[i].Y) ||
				math.Float64bits(f[i].Z) != math.Float64bits(f0[i].Z) {
				t.Fatalf("workers=%d: force %d differs: %v vs %v", w, i, f[i], f0[i])
			}
		}
	}
}

// Quantize + DFTQuantized/IDFTQuantized must agree exactly with the one-shot
// entry points: the hoisted SDRAM image is the same data the fused paths
// derive internally.

func TestQuantizedEntryPointsMatchFused(t *testing.T) {
	const l = 12.0
	pos, q := testSystem(64, l, 5)
	p := ewald.Params{L: l, Alpha: 7, RCut: 5, LKCut: 6}
	waves := ewald.Waves(p)
	sys, err := NewSystem(CurrentConfig())
	if err != nil {
		t.Fatal(err)
	}
	sn0, cn0, err := sys.DFT(l, waves, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	f0, err := sys.IDFT(l, waves, sn0, cn0, pos, q)
	if err != nil {
		t.Fatal(err)
	}

	pw, err := sys.Quantize(l, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	if pw.N() != len(pos) {
		t.Fatalf("ParticleWords.N = %d, want %d", pw.N(), len(pos))
	}
	sn, cn, err := sys.DFTQuantized(waves, pw)
	if err != nil {
		t.Fatal(err)
	}
	f, err := sys.IDFTQuantized(waves, sn, cn, pw)
	if err != nil {
		t.Fatal(err)
	}
	for k := range sn0 {
		if sn[k] != sn0[k] || cn[k] != cn0[k] {
			t.Fatalf("structure factor %d differs via quantized path", k)
		}
	}
	for i := range f0 {
		if f[i] != f0[i] {
			t.Fatalf("force %d differs via quantized path: %v vs %v", i, f[i], f0[i])
		}
	}
}
