package wine2

import (
	"math"
	"math/rand"
	"testing"

	"mdm/internal/ewald"
	"mdm/internal/vec"
)

func TestConfigInventory(t *testing.T) {
	cur := CurrentConfig()
	if got := cur.Chips(); got != 2240 {
		t.Errorf("current chips = %d, paper: 2,240", got)
	}
	if got := cur.Boards(); got != 140 {
		t.Errorf("current boards = %d, want 140 (20 clusters × 7)", got)
	}
	if got := cur.Pipelines(); got != 2240*8 {
		t.Errorf("pipelines = %d", got)
	}
	// "Peak performance of a WINE-2 chip corresponds to about 20 Gflops at
	// 66.6 MHz"; system ≈ 45 Tflops.
	chip := cur.PeakFlops() / float64(cur.Chips())
	if chip < 19e9 || chip > 21e9 {
		t.Errorf("chip peak = %g, paper: ~20 Gflops", chip)
	}
	if p := cur.PeakFlops(); p < 43e12 || p > 47e12 {
		t.Errorf("system peak = %g, paper: ~45 Tflops", p)
	}
	fut := FutureConfig()
	if got := fut.Chips(); got != 2688 {
		t.Errorf("future chips = %d, paper: 2,688", got)
	}
	if p := fut.PeakFlops(); p < 52e12 || p > 56e12 {
		t.Errorf("future peak = %g, paper: ~54 Tflops", p)
	}
	if cur.ParticleCapacity() != (16<<20)/16 {
		t.Errorf("particle capacity = %d", cur.ParticleCapacity())
	}
}

func TestConfigValidate(t *testing.T) {
	for _, mod := range []func(*Config){
		func(c *Config) { c.Clusters = 0 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.PosFrac = 2 },
		func(c *Config) { c.SinLogSize = 0 },
		func(c *Config) { c.QFrac = 1 },
	} {
		c := CurrentConfig()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
}

func testSystem(n int, l float64, seed int64) (pos []vec.V, q []float64) {
	rng := rand.New(rand.NewSource(seed))
	pos = make([]vec.V, n)
	q = make([]float64, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		q[i] = float64(1 - 2*(i%2))
	}
	return pos, q
}

func TestDFTMatchesReference(t *testing.T) {
	sys, err := NewSystem(CurrentConfig())
	if err != nil {
		t.Fatal(err)
	}
	const l = 12.0
	pos, q := testSystem(64, l, 1)
	p := ewald.Params{L: l, Alpha: 7, RCut: 5, LKCut: 6}
	waves := ewald.Waves(p)
	sn, cn, err := sys.DFT(l, waves, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	wantS, wantC := ewald.StructureFactors(waves, pos, q)
	// Scale for errors: structure factors are O(√N q).
	scale := math.Sqrt(float64(len(pos)))
	worst := 0.0
	for w := range waves {
		if e := math.Abs(sn[w]-wantS[w]) / scale; e > worst {
			worst = e
		}
		if e := math.Abs(cn[w]-wantC[w]) / scale; e > worst {
			worst = e
		}
	}
	if worst > 1e-4 {
		t.Errorf("worst structure-factor error = %g (scaled)", worst)
	}
	if worst == 0 {
		t.Error("zero error is implausible for a fixed-point pipeline")
	}
	t.Logf("worst scaled structure-factor error = %.2e", worst)
}

func TestIDFTForceAccuracy(t *testing.T) {
	// §3.4.4: "The relative accuracy of F⃗(wn) is about 1e-4.5."
	sys, err := NewSystem(CurrentConfig())
	if err != nil {
		t.Fatal(err)
	}
	const l = 12.0
	pos, q := testSystem(64, l, 2)
	p := ewald.Params{L: l, Alpha: 7, RCut: 5, LKCut: 6}
	waves := ewald.Waves(p)
	// Use exact structure factors so the measured error isolates the IDFT
	// pipeline; then a full DFT+IDFT end-to-end check.
	wantS, wantC := ewald.StructureFactors(waves, pos, q)
	got, err := sys.IDFT(l, waves, wantS, wantC, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	want := ewald.WavenumberForces(p, waves, wantS, wantC, pos, q)
	fscale := vec.RMS(want)
	worst := 0.0
	for i := range got {
		if e := got[i].Sub(want[i]).Norm() / fscale; e > worst {
			worst = e
		}
	}
	// Paper: ~10^-4.5 ≈ 3e-5. Allow up to 10^-3.5 and require non-zero.
	if worst > 3e-4 {
		t.Errorf("worst wavenumber force error = %g of RMS, paper: ~1e-4.5", worst)
	}
	if worst < 1e-8 {
		t.Errorf("error %g implausibly small for fixed point", worst)
	}
	t.Logf("worst relative F(wn) error (IDFT only) = %.2e (paper: ~1e-4.5)", worst)

	// End to end: hardware DFT feeding hardware IDFT.
	sn, cn, err := sys.DFT(l, waves, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := sys.IDFT(l, waves, sn, cn, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	worst2 := 0.0
	for i := range got2 {
		if e := got2[i].Sub(want[i]).Norm() / fscale; e > worst2 {
			worst2 = e
		}
	}
	if worst2 > 5e-4 {
		t.Errorf("end-to-end F(wn) error = %g of RMS", worst2)
	}
	t.Logf("worst relative F(wn) error (DFT+IDFT) = %.2e", worst2)
}

func TestIDFTZeroStructureFactors(t *testing.T) {
	sys, _ := NewSystem(CurrentConfig())
	const l = 10.0
	pos, q := testSystem(8, l, 3)
	p := ewald.Params{L: l, Alpha: 6, RCut: 5, LKCut: 4}
	waves := ewald.Waves(p)
	sn := make([]float64, len(waves))
	cn := make([]float64, len(waves))
	f, err := sys.IDFT(l, waves, sn, cn, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f {
		if f[i] != vec.Zero {
			t.Errorf("zero structure factors gave force %v", f[i])
		}
	}
}

func TestDFTValidation(t *testing.T) {
	sys, _ := NewSystem(CurrentConfig())
	p := ewald.Params{L: 10, Alpha: 6, RCut: 5, LKCut: 4}
	waves := ewald.Waves(p)
	if _, _, err := sys.DFT(10, waves, make([]vec.V, 3), make([]float64, 2)); err == nil {
		t.Error("length mismatch accepted")
	}
	cfg := CurrentConfig()
	cfg.ParticleMemBytes = 5 * cfg.BytesPerParticle
	small, _ := NewSystem(cfg)
	pos, q := testSystem(6, 10, 1)
	if _, _, err := small.DFT(10, waves, pos, q); err == nil {
		t.Error("capacity overflow accepted")
	}
	if _, err := small.IDFT(10, waves, make([]float64, len(waves)), make([]float64, len(waves)), pos, q); err == nil {
		t.Error("IDFT capacity overflow accepted")
	}
	if _, err := sys.IDFT(10, waves, make([]float64, 2), make([]float64, len(waves)), pos[:2], q[:2]); err == nil {
		t.Error("structure-factor length mismatch accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	sys, _ := NewSystem(CurrentConfig())
	const l = 10.0
	pos, q := testSystem(16, l, 4)
	p := ewald.Params{L: l, Alpha: 6, RCut: 5, LKCut: 4}
	waves := ewald.Waves(p)
	sn, cn, err := sys.DFT(l, waves, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.IDFT(l, waves, sn, cn, pos, q); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	want := int64(len(waves) * len(pos))
	if st.DFTOps != want || st.IDFTOps != want {
		t.Errorf("ops = %+v, want %d each", st, want)
	}
	if st.Calls != 2 {
		t.Errorf("calls = %d", st.Calls)
	}
	dt := sys.ComputeTime(st.DFTOps)
	if wantT := float64(want) / (float64(sys.Config().Pipelines()) * 66.6e6); math.Abs(dt-wantT) > 1e-20 {
		t.Errorf("ComputeTime = %g, want %g", dt, wantT)
	}
	sys.ResetStats()
	if sys.Stats() != (Stats{}) {
		t.Error("ResetStats did not clear")
	}
}

// fakeComm is a loopback communicator pretending to be P ranks whose
// AllreduceSum multiplies by P (every rank holding identical data).
type fakeComm struct{ size int }

func (f *fakeComm) Rank() int { return 0 }
func (f *fakeComm) Size() int { return f.size }
func (f *fakeComm) AllreduceSum(vals []float64) ([]float64, error) {
	for i := range vals {
		vals[i] *= float64(f.size)
	}
	return vals, nil
}

func TestLibraryLifecycle(t *testing.T) {
	lib, err := NewLibrary(CurrentConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := ewald.Params{L: 10, Alpha: 6, RCut: 5, LKCut: 4}
	waves := ewald.Waves(p)
	pos, q := testSystem(12, 10, 5)

	if err := lib.InitializeBoards(); err == nil {
		t.Error("initialize before allocate accepted")
	}
	if err := lib.AllocateBoards(1000); err == nil {
		t.Error("over-allocation accepted")
	}
	if err := lib.AllocateBoards(14); err != nil {
		t.Fatal(err)
	}
	if err := lib.InitializeBoards(); err != nil {
		t.Fatal(err)
	}
	if lib.System().Config().Boards() != 14 {
		t.Errorf("boards = %d, want 14", lib.System().Config().Boards())
	}
	if _, _, err := lib.CalcForceAndPotWavepart(p, waves, pos, q); err == nil {
		t.Error("force call before set_nn accepted")
	}
	if err := lib.SetNN(0); err == nil {
		t.Error("nn = 0 accepted")
	}
	if err := lib.SetNN(12); err != nil {
		t.Fatal(err)
	}
	bigPos, bigQ := testSystem(13, 10, 7)
	if _, _, err := lib.CalcForceAndPotWavepart(p, waves, bigPos, bigQ); err == nil {
		t.Error("more particles than nn accepted")
	}
	forces, pot, err := lib.CalcForceAndPotWavepart(p, waves, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(forces) != 12 {
		t.Fatalf("len(forces) = %d", len(forces))
	}
	// Potential must match the reference wavenumber energy.
	sref, cref := ewald.StructureFactors(waves, pos, q)
	wantPot := ewald.WavenumberEnergy(p, waves, sref, cref)
	if math.Abs(pot-wantPot) > 1e-3*math.Abs(wantPot) {
		t.Errorf("wavepart pot = %g, want %g", pot, wantPot)
	}
	if err := lib.FreeBoards(); err != nil {
		t.Fatal(err)
	}
	if err := lib.FreeBoards(); err == nil {
		t.Error("double free accepted")
	}
}

func TestLibraryWithCommunicator(t *testing.T) {
	// With a communicator of size 2 where both ranks hold the same
	// particles, the reduced structure factors double, and the potential
	// quadruples (|S|²).
	lib, _ := NewLibrary(CurrentConfig())
	lib.SetMPICommunity(&fakeComm{size: 2})
	if err := lib.AllocateBoards(7); err != nil {
		t.Fatal(err)
	}
	if err := lib.InitializeBoards(); err != nil {
		t.Fatal(err)
	}
	if err := lib.SetNN(12); err != nil {
		t.Fatal(err)
	}
	p := ewald.Params{L: 10, Alpha: 6, RCut: 5, LKCut: 4}
	waves := ewald.Waves(p)
	pos, q := testSystem(12, 10, 6)
	_, pot, err := lib.CalcForceAndPotWavepart(p, waves, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	sref, cref := ewald.StructureFactors(waves, pos, q)
	single := ewald.WavenumberEnergy(p, waves, sref, cref)
	if math.Abs(pot-4*single) > 1e-2*math.Abs(4*single) {
		t.Errorf("doubled-system pot = %g, want %g", pot, 4*single)
	}
}

func TestPhaseWraps(t *testing.T) {
	// A particle at u and at u + one box must give identical phases.
	sys, _ := NewSystem(CurrentConfig())
	const l = 10.0
	p := ewald.Params{L: l, Alpha: 6, RCut: 5, LKCut: 4}
	waves := ewald.Waves(p)
	pos1 := []vec.V{vec.New(1.2, 3.4, 5.6)}
	pos2 := []vec.V{vec.New(1.2+l, 3.4-l, 5.6)}
	q := []float64{1}
	s1, c1, _ := sys.DFT(l, waves, pos1, q)
	s2, c2, _ := sys.DFT(l, waves, pos2, q)
	for w := range waves {
		if s1[w] != s2[w] || c1[w] != c2[w] {
			t.Fatalf("wave %d: DFT not translation-periodic", w)
		}
	}
}

func BenchmarkDFT(b *testing.B) {
	sys, _ := NewSystem(CurrentConfig())
	const l = 12.0
	pos, q := testSystem(256, l, 1)
	p := ewald.Params{L: l, Alpha: 7, RCut: 5, LKCut: 6}
	waves := ewald.Waves(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.DFT(l, waves, pos, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIDFT(b *testing.B) {
	sys, _ := NewSystem(CurrentConfig())
	const l = 12.0
	pos, q := testSystem(256, l, 1)
	p := ewald.Params{L: l, Alpha: 7, RCut: 5, LKCut: 6}
	waves := ewald.Waves(p)
	sn, cn := ewald.StructureFactors(waves, pos, q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.IDFT(l, waves, sn, cn, pos, q); err != nil {
			b.Fatal(err)
		}
	}
}
