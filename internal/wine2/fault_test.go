package wine2

import (
	"errors"
	"testing"

	"mdm/internal/ewald"
	"mdm/internal/fault"
)

func TestFaultHookTransientAbortsCall(t *testing.T) {
	sys, err := NewSystem(CurrentConfig())
	if err != nil {
		t.Fatal(err)
	}
	in, err := fault.ParseInjector("wine2:transient@call=1; wine2:board-drop@call=3,board=2")
	if err != nil {
		t.Fatal(err)
	}
	sys.SetFaultHook(in)
	const l = 12.0
	pos, q := testSystem(16, l, 7)
	p := ewald.Params{L: l, Alpha: 7, RCut: 5, LKCut: 5}
	waves := ewald.Waves(p)

	_, _, err = sys.DFT(l, waves, pos, q)
	var te *fault.TransientError
	if !errors.As(err, &te) {
		t.Fatalf("call 1 = %v, want TransientError", err)
	}
	sn, cn, err := sys.DFT(l, waves, pos, q)
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	_, err = sys.IDFT(l, waves, sn, cn, pos, q)
	var be *fault.BoardError
	if !errors.As(err, &be) || be.Board != 2 {
		t.Fatalf("call 3 = %v, want BoardError board 2", err)
	}
}

func TestFaultHookBitFlipPerturbsDFT(t *testing.T) {
	const l = 12.0
	pos, q := testSystem(16, l, 7)
	p := ewald.Params{L: l, Alpha: 7, RCut: 5, LKCut: 5}
	waves := ewald.Waves(p)

	clean, _ := NewSystem(CurrentConfig())
	wantS, wantC, err := clean.DFT(l, waves, pos, q)
	if err != nil {
		t.Fatal(err)
	}

	sys, _ := NewSystem(CurrentConfig())
	in, err := fault.ParseInjector("wine2:bitflip@call=1,word=3,bit=52")
	if err != nil {
		t.Fatal(err)
	}
	sys.SetFaultHook(in)
	gotS, gotC, err := sys.DFT(l, waves, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	// The flip lands in wave 3's S+C accumulator: S and C of that wave move,
	// every other wave is bit-identical.
	diff := 0
	for w := range waves {
		if gotS[w] != wantS[w] || gotC[w] != wantC[w] {
			diff++
			if w != 3 {
				t.Errorf("wave %d perturbed, flip targeted wave 3", w)
			}
		}
	}
	if diff != 1 {
		t.Errorf("%d waves perturbed, want exactly 1", diff)
	}
	// The flip is consumed: the next call is clean again.
	gotS, gotC, err = sys.DFT(l, waves, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	for w := range waves {
		if gotS[w] != wantS[w] || gotC[w] != wantC[w] {
			t.Fatalf("wave %d still perturbed on second call", w)
		}
	}
}

func TestLibraryFaultHookSurvivesReinit(t *testing.T) {
	lib, err := NewLibrary(CurrentConfig())
	if err != nil {
		t.Fatal(err)
	}
	in, err := fault.ParseInjector("wine2:transient@call=1")
	if err != nil {
		t.Fatal(err)
	}
	lib.SetFaultHook(in) // before the system exists
	if err := lib.AllocateBoards(4); err != nil {
		t.Fatal(err)
	}
	if err := lib.InitializeBoards(); err != nil {
		t.Fatal(err)
	}
	if err := lib.SetNN(16); err != nil {
		t.Fatal(err)
	}
	const l = 12.0
	pos, q := testSystem(16, l, 7)
	p := ewald.Params{L: l, Alpha: 7, RCut: 5, LKCut: 5}
	_, _, err = lib.CalcForceAndPotWavepart(p, ewald.Waves(p), pos, q)
	var te *fault.TransientError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TransientError through the library", err)
	}
}
