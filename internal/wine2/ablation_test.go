package wine2

import (
	"math"
	"testing"

	"mdm/internal/ewald"
	"mdm/internal/fixed"
	"mdm/internal/vec"
)

// Ablation: how the WINE-2 datapath parameters determine the 10^-4.5 force
// accuracy of §3.4.4. Varying one knob at a time isolates each error source:
// the position quantization (PosFrac), the sine-table resolution
// (SinLogSize) and the trig output width (TrigFormat).

// wineError measures the worst relative F(wn) error of a config against the
// float64 reference on a fixed system.
func wineError(t *testing.T, cfg Config) float64 {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const l = 12.0
	pos, q := testSystem(64, l, 77)
	p := ewald.Params{L: l, Alpha: 7, RCut: 5, LKCut: 6}
	waves := ewald.Waves(p)
	sn, cn, err := sys.DFT(l, waves, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.IDFT(l, waves, sn, cn, pos, q)
	if err != nil {
		t.Fatal(err)
	}
	wantS, wantC := ewald.StructureFactors(waves, pos, q)
	want := ewald.WavenumberForces(p, waves, wantS, wantC, pos, q)
	fscale := vec.RMS(want)
	worst := 0.0
	for i := range got {
		if e := got[i].Sub(want[i]).Norm() / fscale; e > worst {
			worst = e
		}
	}
	return worst
}

func TestAblationPositionBits(t *testing.T) {
	// Coarser position quantization must degrade accuracy monotonically-ish;
	// going from 24 to 12 bits should cost orders of magnitude.
	prev := 0.0
	for _, bits := range []uint{24, 16, 12} {
		cfg := CurrentConfig()
		cfg.PosFrac = bits
		e := wineError(t, cfg)
		t.Logf("PosFrac=%2d: worst error %.2e", bits, e)
		if e < prev {
			t.Errorf("accuracy improved with fewer position bits (%d: %g < %g)", bits, e, prev)
		}
		prev = e
	}
	if prev < 1e-3 {
		t.Errorf("12-bit positions still accurate (%g); ablation not sensitive", prev)
	}
}

func TestAblationSinTable(t *testing.T) {
	// Smaller sine tables mean coarser linear interpolation.
	coarse := func(logSize uint) float64 {
		cfg := CurrentConfig()
		cfg.SinLogSize = logSize
		return wineError(t, cfg)
	}
	e10 := coarse(10)
	e6 := coarse(6)
	e4 := coarse(4)
	t.Logf("sin table 2^10: %.2e, 2^6: %.2e, 2^4: %.2e", e10, e6, e4)
	if e6 < e10 || e4 < e6 {
		t.Errorf("accuracy did not degrade with table size: %g, %g, %g", e10, e6, e4)
	}
	// Linear-interpolation error scales ~ (2π/size)²/8: 2^4 should be
	// dramatically worse than 2^10.
	if e4 < 50*e10 {
		t.Errorf("2^4 table only %gx worse than 2^10", e4/e10)
	}
}

func TestAblationTrigWidth(t *testing.T) {
	narrow := CurrentConfig()
	narrow.TrigFormat = fixed.F(1, 10) // 12-bit trig outputs
	eNarrow := wineError(t, narrow)
	eFull := wineError(t, CurrentConfig())
	t.Logf("trig s1.22: %.2e, s1.10: %.2e", eFull, eNarrow)
	if eNarrow < 10*eFull {
		t.Errorf("narrow trig output barely hurts (%g vs %g)", eNarrow, eFull)
	}
}

func TestProductionConfigHitsPaperAccuracy(t *testing.T) {
	// The shipped CurrentConfig must land in the 10^-4.5 decade the paper
	// quotes (between 10^-5.5 and 10^-3.5 over random systems).
	e := wineError(t, CurrentConfig())
	lg := math.Log10(e)
	if lg < -5.5 || lg > -3.5 {
		t.Errorf("production accuracy 10^%.2f outside the paper's ~10^-4.5 decade", lg)
	}
	t.Logf("production datapath worst error = 10^%.2f (paper: ~10^-4.5)", lg)
}
