// Package wine2 simulates WINE-2, the wavenumber-space force engine of the
// MDM (§3.4 of the paper).
//
// The simulated hierarchy mirrors the hardware:
//
//	System (20 clusters) → Cluster (7 boards, CompactPCI bus)
//	  → Board (16 chips + FPGA interface logic, particle-index counter,
//	           16 MB SDRAM particle memory)
//	    → Chip (8 pipelines) → Pipeline (DFT or IDFT mode)
//
// Numerics follow §3.4.4: "Fixed-point two's complement format is used in all
// the arithmetic calculations in a pipeline." The simulated datapath is:
//
//   - positions enter as box fractions u⃗ = r⃗/L quantized to PosFrac
//     fractional bits; the phase k⃗_n·r⃗ = n⃗·u⃗ is then an exact integer ×
//     fixed-point product whose wrap-around implements "mod one turn" for
//     free (two's-complement overflow);
//   - sine and cosine come from a 2^SinLogSize-entry lookup table with linear
//     interpolation, quantized to TrigFormat (package fixed);
//   - in DFT mode the pipeline accumulates q_j·sin + q_j·cos and
//     q_j·sin − q_j·cos — the hardware outputs S_n+C_n and S_n−C_n and "the
//     host computer calculates S_n and C_n" from them (§3.4.4);
//   - in IDFT mode the per-wave coefficients a_n·S_n and a_n·C_n are
//     block-normalized by the host (a global scale factor) and quantized, and
//     the pipeline accumulates Σ a_n (C_n sin θ - S_n cos θ) n⃗ in wide
//     fixed-point accumulators.
//
// The resulting relative accuracy of F⃗(wn) is ~1e-4.5, matching the paper's
// claim, and is measured by the package tests.
package wine2

import (
	"fmt"
	"math"

	"mdm/internal/ewald"
	"mdm/internal/fault"
	"mdm/internal/fixed"
	"mdm/internal/parallelize"
	"mdm/internal/soa"
	"mdm/internal/units"
	"mdm/internal/vec"
)

// Config describes one WINE-2 installation, including the fixed-point
// datapath geometry.
type Config struct {
	Clusters         int     // clusters in the system
	BoardsPerCluster int     // boards per CompactPCI crate
	ChipsPerBoard    int     // WINE-2 chips per board
	PipelinesPerChip int     // pipelines per chip
	ClockHz          float64 // pipeline clock
	ParticleMemBytes int     // per-board particle memory (SDRAM)
	BytesPerParticle int
	FlopsPerCycle    float64 // flop equivalence of one pipeline cycle

	PosFrac    uint         // fractional bits of box-fraction coordinates
	SinLogSize uint         // log2 of the sine table size
	TrigFormat fixed.Format // format of sine/cosine outputs
	QFrac      uint         // fractional bits of quantized charges
	AccFrac    uint         // fractional bits of DFT accumulators
	CoefFrac   uint         // fractional bits of normalized a_n·S_n, a_n·C_n
	IAccFrac   uint         // fractional bits of IDFT accumulators
}

// CurrentConfig is the machine of §3.4 / Table 5 "current": 2,240 chips,
// 45 Tflops peak ("about 20 Gflops" per chip at 66.6 MHz).
func CurrentConfig() Config {
	return Config{
		Clusters:         20,
		BoardsPerCluster: 7,
		ChipsPerBoard:    16,
		PipelinesPerChip: 8,
		ClockHz:          66.6e6,
		ParticleMemBytes: 16 << 20,
		BytesPerParticle: 16,
		FlopsPerCycle:    37.5, // 8 × 66.6 MHz × 37.5 ≈ 20 Gflops/chip
		PosFrac:          24,
		SinLogSize:       10,
		TrigFormat:       fixed.F(1, 22),
		QFrac:            20,
		AccFrac:          30,
		CoefFrac:         30,
		IAccFrac:         26,
	}
}

// FutureConfig is the Table 5 "future" machine: 2,688 chips, 54 Tflops peak.
func FutureConfig() Config {
	c := CurrentConfig()
	c.Clusters = 24 // 24 × 7 × 16 = 2,688 chips
	return c
}

// Chips returns the total chip count.
func (c Config) Chips() int { return c.Clusters * c.BoardsPerCluster * c.ChipsPerBoard }

// Boards returns the total board count.
func (c Config) Boards() int { return c.Clusters * c.BoardsPerCluster }

// Pipelines returns the total pipeline count.
func (c Config) Pipelines() int { return c.Chips() * c.PipelinesPerChip }

// PeakFlops returns the nominal peak speed.
func (c Config) PeakFlops() float64 {
	return float64(c.Pipelines()) * c.ClockHz * c.FlopsPerCycle
}

// ParticleCapacity returns how many particles fit in one board's memory.
func (c Config) ParticleCapacity() int { return c.ParticleMemBytes / c.BytesPerParticle }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Clusters < 1 || c.BoardsPerCluster < 1 || c.ChipsPerBoard < 1 || c.PipelinesPerChip < 1 {
		return fmt.Errorf("wine2: non-positive hierarchy in %+v", c)
	}
	if c.ClockHz <= 0 || c.ParticleMemBytes <= 0 || c.BytesPerParticle <= 0 || c.FlopsPerCycle <= 0 {
		return fmt.Errorf("wine2: non-positive rates")
	}
	if c.PosFrac < 8 || c.PosFrac > 40 {
		return fmt.Errorf("wine2: PosFrac %d outside [8, 40]", c.PosFrac)
	}
	if c.SinLogSize < 2 || c.SinLogSize > 20 || !c.TrigFormat.Valid() {
		return fmt.Errorf("wine2: bad trig unit (logSize %d, format %v)", c.SinLogSize, c.TrigFormat)
	}
	if c.QFrac < 4 || c.AccFrac < 8 || c.CoefFrac < 8 || c.IAccFrac < 8 {
		return fmt.Errorf("wine2: accumulator formats too narrow")
	}
	return nil
}

// Stats accumulates work counters for the timing model.
type Stats struct {
	DFTOps  int64 // particle-wave DFT evaluations
	IDFTOps int64 // particle-wave IDFT evaluations
	Calls   int64
}

// System is a simulated WINE-2 installation. Calculation calls on one System
// must not overlap (the stats counters and coefficient scratch are
// unsynchronized, as a hardware session's were); concurrent sessions use
// separate Systems.
type System struct {
	cfg   Config
	trig  *fixed.SinCosTable
	stats Stats
	hook  fault.HardwareHook
	beat  func()
	pool  *parallelize.Pool

	aS, aC []int64 // IDFT normalized-coefficient scratch, reused across calls
}

// NewSystem builds a simulated system.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	trig, err := fixed.NewSinCosTable(cfg.SinLogSize, cfg.TrigFormat)
	if err != nil {
		return nil, err
	}
	return &System{cfg: cfg, trig: trig}, nil
}

// Config returns the hardware configuration.
func (s *System) Config() Config { return s.cfg }

// Stats returns the accumulated work counters.
func (s *System) Stats() Stats { return s.stats }

// ResetStats clears the work counters.
func (s *System) ResetStats() { s.stats = Stats{} }

// SetFaultHook installs a fault injector on the simulated hardware. Every
// DFT/IDFT call reports to the hook (site fault.WINE2) and may be failed with
// a board or transient error; an armed bit flip lands in a DFT accumulator.
// A nil hook (the default) disables injection.
func (s *System) SetFaultHook(h fault.HardwareHook) { s.hook = h }

// SetHeartbeat installs a liveness callback invoked at the entry of every
// DFT/IDFT call, before fault injection can wedge it — the watchdog's view
// of board progress. A nil heartbeat (the default) costs one nil check.
func (s *System) SetHeartbeat(beat func()) { s.beat = beat }

// SetPool installs the worker pool that stripes DFT waves and IDFT particles
// across host cores, mirroring the hardware's chip-level concurrency. A nil
// pool (the default) runs every pipeline loop serially; any pool width
// produces bit-identical results (see ParticleWords and package
// parallelize). The pool is also used to parallelize quantization.
func (s *System) SetPool(p *parallelize.Pool) { s.pool = p }

// ParticleWords is the quantized particle image of one board's SDRAM
// particle memory: the fixed-point box-fraction position words and charge
// words for a particle block. The hardware writes this memory once per step
// and then runs both the DFT and the IDFT pass against the same image
// (§3.4.2, Fig. 6); Quantize + DFTQuantized/IDFTQuantized reproduce that
// flow, so the host quantization cost is paid once per image instead of once
// per pass.
// The position words are stored as one plane per component (structure of
// arrays) — the layout of the banked SDRAM itself, where the pipelines
// stream each coordinate word column-wise rather than gathering per-particle
// records.
type ParticleWords struct {
	L          float64   // box side the words were quantized against
	Ux, Uy, Uz []int64   // box-fraction position word planes, PosFrac fractional bits
	Q          []int64   // charge words, QFrac fractional bits
	q          []float64 // original charges (host side of the IDFT prefactor q_i)
}

// N returns the number of particles in the image.
func (pw *ParticleWords) N() int { return len(pw.Ux) }

// Quantize converts a particle block to the fixed-point SDRAM image shared
// by the DFT and IDFT passes. len(pos) must equal len(q) and fit the board
// particle memory.
func (s *System) Quantize(l float64, pos []vec.V, q []float64) (*ParticleWords, error) {
	return s.QuantizeInto(nil, l, pos, q)
}

// QuantizeInto is Quantize rewriting a reusable particle image: a non-nil
// pw's word buffers are reused when the particle count matches, so the
// steady-state step path allocates nothing here (the hardware, likewise,
// rewrites the same SDRAM every step).
func (s *System) QuantizeInto(pw *ParticleWords, l float64, pos []vec.V, q []float64) (*ParticleWords, error) {
	if len(pos) != len(q) {
		return nil, fmt.Errorf("wine2: %d positions vs %d charges", len(pos), len(q))
	}
	if len(pos) > s.cfg.ParticleCapacity() {
		return nil, fmt.Errorf("wine2: %d particles exceed board particle memory capacity %d",
			len(pos), s.cfg.ParticleCapacity())
	}
	if pw == nil {
		pw = &ParticleWords{}
	}
	pw.L = l
	if len(pw.Ux) != len(pos) {
		// One slab carved into the four word planes — one SDRAM image, one
		// allocation; the capped slices keep the planes independent.
		n := len(pos)
		s := make([]int64, 4*n)
		pw.Ux = s[0:n:n]
		pw.Uy = s[n : 2*n : 2*n]
		pw.Uz = s[2*n : 3*n : 3*n]
		pw.Q = s[3*n : 4*n : 4*n]
	}
	pw.q = q
	pf := fixed.F(0, s.cfg.PosFrac)
	qf := fixed.F(5, s.cfg.QFrac)
	// Each particle's words are independent, so the quantization shards
	// trivially; every slot is written by exactly one worker.
	_ = s.pool.Run(len(pos), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			w := pos[i].Wrap(l)
			pw.Ux[i] = pf.QuantizeWrap(w.X / l)
			pw.Uy[i] = pf.QuantizeWrap(w.Y / l)
			pw.Uz[i] = pf.QuantizeWrap(w.Z / l)
			pw.Q[i] = qf.Quantize(q[i])
		}
		return nil
	})
	return pw, nil
}

// phase computes n⃗·u⃗ in fixed-point turns (PosFrac fractional bits). The
// int64 product of small integers with PosFrac-bit fractions cannot
// overflow for |n| below 2^20.
func phase(n [3]int, ux, uy, uz int64) int64 {
	return int64(n[0])*ux + int64(n[1])*uy + int64(n[2])*uz
}

// DFT runs the pipelines in DFT mode (eqs. 9, 10): it returns the structure
// factors S_n and C_n for every wave, computed through the fixed-point
// datapath. Internally the accumulators hold S+C and S-C, and the host-side
// reconstruction S = ((S+C)+(S-C))/2 is applied before returning, exactly as
// in §3.4.4. len(pos) must equal len(q) and fit the board particle memory.
func (s *System) DFT(l float64, waves []ewald.Wave, pos []vec.V, q []float64) (sn, cn []float64, err error) {
	pw, err := s.Quantize(l, pos, q)
	if err != nil {
		return nil, nil, err
	}
	return s.DFTQuantized(waves, pw)
}

// DFTQuantized is the DFT pass over a pre-quantized particle image. The wave
// loop is striped across the pool's workers exactly as the hardware stripes
// waves across chips (§3.4.2: "different wavenumber vectors are assigned to
// different pipelines"); each wave's S±C accumulator lives entirely in one
// shard, so the output is bit-identical at any pool width.
func (s *System) DFTQuantized(waves []ewald.Wave, pw *ParticleWords) (sn, cn []float64, err error) {
	return s.DFTQuantizedInto(waves, pw, nil, nil)
}

// DFTQuantizedInto is DFTQuantized writing into caller-provided structure
// factor slices (reused when their length matches len(waves), allocated
// otherwise).
func (s *System) DFTQuantizedInto(waves []ewald.Wave, pw *ParticleWords, sn, cn []float64) ([]float64, []float64, error) {
	// Fault injection: a scheduled board/transient error aborts the call; an
	// armed bit flip lands in one wave's S+C accumulator at readout, the spot
	// where a flipped SDRAM or pipeline-register bit would surface.
	flipWave, flipBit := -1, 0
	if s.beat != nil {
		s.beat()
	}
	if s.hook != nil {
		if err := s.hook.HardwareCall(fault.WINE2); err != nil {
			return nil, nil, err
		}
		if word, bit, ok := s.hook.PendingFlip(fault.WINE2); ok && len(waves) > 0 {
			flipWave = word % len(waves)
			if flipWave < 0 {
				flipWave += len(waves)
			}
			flipBit = bit & 63
		}
	}
	trigFrac := s.cfg.TrigFormat.Frac
	prodFrac := s.cfg.QFrac + trigFrac

	if len(sn) != len(waves) {
		sn = make([]float64, len(waves))
	}
	if len(cn) != len(waves) {
		cn = make([]float64, len(waves))
	}
	accF := fixed.F(0, s.cfg.AccFrac) // conversion scale for readout
	accWide := fixed.F(30, s.cfg.AccFrac)
	prodWide := fixed.WideFor(prodFrac)
	_ = s.pool.Run(len(waves), func(_, lo, hi int) error {
		for w := lo; w < hi; w++ {
			var accPlus, accMinus int64 // S+C and S-C, AccFrac fractional bits
			for j := range pw.Ux {
				ph := phase(waves[w].N, pw.Ux[j], pw.Uy[j], pw.Uz[j])
				sj, cj := s.trig.SinCos(ph, s.cfg.PosFrac)
				qs := fixed.MulRound(pw.Q[j], sj, s.cfg.QFrac, trigFrac, prodFrac)
				qc := fixed.MulRound(pw.Q[j], cj, s.cfg.QFrac, trigFrac, prodFrac)
				// Reduce to the accumulator precision before summing, as a
				// fixed-width adder tree would.
				qs = fixed.Convert(qs, prodWide, accWide)
				qc = fixed.Convert(qc, prodWide, accWide)
				accPlus += qs + qc
				accMinus += qs - qc
			}
			if w == flipWave {
				accPlus ^= 1 << flipBit
			}
			plus := accF.Float(accPlus)
			minus := accF.Float(accMinus)
			sn[w] = (plus + minus) / 2
			cn[w] = (plus - minus) / 2
		}
		return nil
	})
	s.stats.DFTOps += int64(len(waves)) * int64(pw.N())
	s.stats.Calls++
	return sn, cn, nil
}

// IDFT runs the pipelines in IDFT mode (eq. 11): given the structure factors,
// it returns the wavenumber-space Coulomb force on every particle, including
// the full physical prefactor q_i/(π ε0 L³) (expressed through the package
// unit system). The per-wave coefficients a_n·S_n and a_n·C_n are
// block-normalized by the host and quantized to CoefFrac bits before entering
// the pipelines.
func (s *System) IDFT(l float64, waves []ewald.Wave, sn, cn []float64, pos []vec.V, q []float64) ([]vec.V, error) {
	pw, err := s.Quantize(l, pos, q)
	if err != nil {
		return nil, err
	}
	return s.IDFTQuantized(waves, sn, cn, pw)
}

// IDFTQuantized is the IDFT pass over a pre-quantized particle image. The
// particle loop is striped across the pool's workers exactly as the board
// blocking of §3.4.2 stripes resident particle blocks across boards; each
// particle's fixed-point force accumulators live entirely in one shard, so
// the output is bit-identical at any pool width.
func (s *System) IDFTQuantized(waves []ewald.Wave, sn, cn []float64, pw *ParticleWords) ([]vec.V, error) {
	return s.IDFTQuantizedInto(waves, sn, cn, pw, nil)
}

// idftPrepare runs the host side of an IDFT call — liveness and fault
// bookkeeping, the block normalization of a_n·S_n and a_n·C_n, and the
// coefficient quantization into session scratch. A zero scale return (with
// nil error) means every structure factor vanished and the force is zero.
func (s *System) idftPrepare(waves []ewald.Wave, sn, cn []float64) (aS, aC []int64, scale float64, err error) {
	if len(sn) != len(waves) || len(cn) != len(waves) {
		return nil, nil, 0, fmt.Errorf("wine2: %d waves vs %d/%d structure factors", len(waves), len(sn), len(cn))
	}
	if s.beat != nil {
		s.beat()
	}
	if s.hook != nil {
		if err := s.hook.HardwareCall(fault.WINE2); err != nil {
			return nil, nil, 0, err
		}
	}
	// Host-side block normalization of a_n S_n and a_n C_n.
	for w := range waves {
		as := math.Abs(waves[w].A * sn[w])
		ac := math.Abs(waves[w].A * cn[w])
		if as > scale {
			scale = as
		}
		if ac > scale {
			scale = ac
		}
	}
	if scale == 0 {
		return nil, nil, 0, nil // all structure factors vanish
	}
	cf := fixed.F(1, s.cfg.CoefFrac)
	if cap(s.aS) < len(waves) {
		s.aS = make([]int64, len(waves))
		s.aC = make([]int64, len(waves))
	}
	aS = s.aS[:len(waves)]
	aC = s.aC[:len(waves)]
	for w := range waves {
		aS[w] = cf.Quantize(waves[w].A * sn[w] / scale)
		aC[w] = cf.Quantize(waves[w].A * cn[w] / scale)
	}
	return aS, aC, scale, nil
}

// IDFTQuantizedInto is IDFTQuantized writing the forces into dst (reused
// when its length matches the particle count, allocated otherwise); the
// normalized per-wave coefficients live in session scratch.
func (s *System) IDFTQuantizedInto(waves []ewald.Wave, sn, cn []float64, pw *ParticleWords, dst []vec.V) ([]vec.V, error) {
	aS, aC, scale, err := s.idftPrepare(waves, sn, cn)
	if err != nil {
		return nil, err
	}
	forces := dst
	if len(forces) != pw.N() {
		forces = make([]vec.V, pw.N())
	}
	if scale == 0 {
		for i := range forces {
			forces[i] = vec.V{}
		}
		s.stats.Calls++
		return forces, nil
	}

	trigFrac := s.cfg.TrigFormat.Frac
	prodFrac := s.cfg.CoefFrac + trigFrac
	tF := fixed.F(2, s.cfg.IAccFrac)
	iaccF := fixed.F(0, s.cfg.IAccFrac)
	l := pw.L
	// Physical prefactor: F = (q_i/(π ε0 L³)) Σ a_n [C sinθ - S cosθ] k⃗ with
	// k⃗ = n⃗/L and the block scale restored.
	pref := 4 * units.Coulomb / (l * l * l * l) * scale

	prodWide := fixed.WideFor(prodFrac)
	_ = s.pool.Run(pw.N(), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			var ax, ay, az int64 // IAccFrac fractional bits
			for w := range waves {
				ph := phase(waves[w].N, pw.Ux[i], pw.Uy[i], pw.Uz[i])
				si, ci := s.trig.SinCos(ph, s.cfg.PosFrac)
				t1 := fixed.MulRound(aC[w], si, s.cfg.CoefFrac, trigFrac, prodFrac)
				t2 := fixed.MulRound(aS[w], ci, s.cfg.CoefFrac, trigFrac, prodFrac)
				t := fixed.Convert(t1-t2, prodWide, tF)
				ax += t * int64(waves[w].N[0])
				ay += t * int64(waves[w].N[1])
				az += t * int64(waves[w].N[2])
			}
			forces[i] = vec.New(iaccF.Float(ax), iaccF.Float(ay), iaccF.Float(az)).Scale(pref * pw.q[i])
		}
		return nil
	})
	s.stats.IDFTOps += int64(len(waves)) * int64(pw.N())
	s.stats.Calls++
	return forces, nil
}

// IDFTQuantizedCoordsInto is IDFTQuantizedInto writing the force components
// into structure-of-arrays planes (dst is resized and reused when its backing
// arrays are large enough). The per-particle arithmetic is identical word for
// word; only the destination layout differs, so the planes carry exactly the
// bits of the AoS call.
func (s *System) IDFTQuantizedCoordsInto(waves []ewald.Wave, sn, cn []float64, pw *ParticleWords, dst soa.Coords) (soa.Coords, error) {
	aS, aC, scale, err := s.idftPrepare(waves, sn, cn)
	if err != nil {
		return soa.Coords{}, err
	}
	dst = dst.Resize(pw.N())
	fx, fy, fz := dst.X, dst.Y, dst.Z
	if scale == 0 {
		dst.Zero()
		s.stats.Calls++
		return dst, nil
	}

	trigFrac := s.cfg.TrigFormat.Frac
	prodFrac := s.cfg.CoefFrac + trigFrac
	tF := fixed.F(2, s.cfg.IAccFrac)
	iaccF := fixed.F(0, s.cfg.IAccFrac)
	l := pw.L
	pref := 4 * units.Coulomb / (l * l * l * l) * scale

	prodWide := fixed.WideFor(prodFrac)
	_ = s.pool.Run(pw.N(), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			var ax, ay, az int64 // IAccFrac fractional bits
			for w := range waves {
				ph := phase(waves[w].N, pw.Ux[i], pw.Uy[i], pw.Uz[i])
				si, ci := s.trig.SinCos(ph, s.cfg.PosFrac)
				t1 := fixed.MulRound(aC[w], si, s.cfg.CoefFrac, trigFrac, prodFrac)
				t2 := fixed.MulRound(aS[w], ci, s.cfg.CoefFrac, trigFrac, prodFrac)
				t := fixed.Convert(t1-t2, prodWide, tF)
				ax += t * int64(waves[w].N[0])
				ay += t * int64(waves[w].N[1])
				az += t * int64(waves[w].N[2])
			}
			qp := pref * pw.q[i]
			fx[i] = iaccF.Float(ax) * qp
			fy[i] = iaccF.Float(ay) * qp
			fz[i] = iaccF.Float(az) * qp
		}
		return nil
	})
	s.stats.IDFTOps += int64(len(waves)) * int64(pw.N())
	s.stats.Calls++
	return dst, nil
}

// ComputeTime returns the pipeline wall-clock time for the given number of
// particle-wave operations with perfect pipelining.
func (s *System) ComputeTime(ops int64) float64 {
	return float64(ops) / (float64(s.cfg.Pipelines()) * s.cfg.ClockHz)
}
