package wine2

import (
	"testing"

	"mdm/internal/ewald"
	"mdm/internal/vec"
)

// TestIntoReuseBitIdentical pins the scratch-reusing Into entry points to the
// allocating path: repeated CalcForceAndPotWavepartInto calls on one session,
// reusing the returned force slice, must be bit-identical to fresh
// CalcForceAndPotWavepart calls on a fresh session — with and without a
// communicator (the redbuf path).
func TestIntoReuseBitIdentical(t *testing.T) {
	for _, comm := range []Communicator{nil, &fakeComm{size: 2}} {
		mk := func() *Library {
			lib, err := NewLibrary(CurrentConfig())
			if err != nil {
				t.Fatal(err)
			}
			lib.SetMPICommunity(comm)
			if err := lib.AllocateBoards(7); err != nil {
				t.Fatal(err)
			}
			if err := lib.InitializeBoards(); err != nil {
				t.Fatal(err)
			}
			if err := lib.SetNN(24); err != nil {
				t.Fatal(err)
			}
			return lib
		}
		reuse, fresh := mk(), mk()
		p := ewald.Params{L: 10, Alpha: 6, RCut: 5, LKCut: 4}
		waves := ewald.Waves(p)
		pos, q := testSystem(24, 10, 9)
		var dst []vec.V
		for step := 0; step < 4; step++ {
			// Drift the positions so each step quantizes a new image.
			for i := range pos {
				pos[i] = pos[i].Add(vec.New(0.01*float64(step), -0.02, 0.015)).Wrap(p.L)
			}
			var err error
			dst, _, err = reuse.CalcForceAndPotWavepartInto(p, waves, pos, q, dst)
			if err != nil {
				t.Fatal(err)
			}
			want, wantPot, err := fresh.CalcForceAndPotWavepart(p, waves, pos, q)
			if err != nil {
				t.Fatal(err)
			}
			gotAgain, gotPot, err := reuse.CalcForceAndPotWavepartInto(p, waves, pos, q, dst)
			if err != nil {
				t.Fatal(err)
			}
			if &gotAgain[0] != &dst[0] {
				t.Fatalf("step %d: dst not reused", step)
			}
			if gotPot != wantPot {
				t.Fatalf("step %d: pot %g != fresh %g", step, gotPot, wantPot)
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("step %d: force %d differs: reused %v vs fresh %v",
						step, i, dst[i], want[i])
				}
			}
			// Keep the fresh session's call count in step with the reusing one
			// (it made one extra call above).
			if _, _, err := fresh.CalcForceAndPotWavepart(p, waves, pos, q); err != nil {
				t.Fatal(err)
			}
		}
	}
}
