package wine2

import (
	"fmt"

	"mdm/internal/ewald"
	"mdm/internal/fault"
	"mdm/internal/parallelize"
	"mdm/internal/soa"
	"mdm/internal/vec"
)

// Communicator is the message-passing interface the WINE-2 library was
// parallelized with (§4: "the library routine for force calculation is
// already parallelized with MPI, and users do not care any communication
// between processes"). The internal/mpi package satisfies it.
type Communicator interface {
	Rank() int
	Size() int
	// AllreduceSum replaces vals with the element-wise sum across all ranks
	// and returns the result.
	AllreduceSum(vals []float64) ([]float64, error)
}

// Library reproduces the WINE-2 library of Table 2 as a session object:
//
//	SetMPICommunity        ↔ wine2_set_MPI_community
//	AllocateBoards         ↔ wine2_allocate_board
//	InitializeBoards       ↔ wine2_initialize_board
//	SetNN                  ↔ wine2_set_nn
//	CalcForceAndPotWavepart ↔ calculate_force_and_pot_wavepart_nooffset
//	FreeBoards             ↔ wine2_free_board
//
// All processes call the routines with the same parameters except the force
// calculation, where each process passes its own ~N/P particle positions; the
// library reduces the structure factors across processes internally.
type Library struct {
	cfg       Config
	comm      Communicator
	requested int
	nn        int
	sys       *System
	hook      fault.HardwareHook
	beat      func()
	pool      *parallelize.Pool

	// Per-call scratch, reused across force calls. A Library session serves
	// one goroutine at a time (as one host process drove one WINE-2 board
	// set); concurrent CalcForceAndPotWavepart calls on a single Library are
	// not supported.
	pw     *ParticleWords
	sn, cn []float64
	redbuf []float64
}

// NewLibrary creates a session against a machine configuration.
func NewLibrary(cfg Config) (*Library, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Library{cfg: cfg}, nil
}

// SetMPICommunity registers the communicator used for the wavenumber-space
// part (wine2_set_MPI_community). A nil communicator means single-process
// operation.
func (l *Library) SetMPICommunity(comm Communicator) { l.comm = comm }

// SetFaultHook installs a fault injector on the session's hardware; it
// survives InitializeBoards/FreeBoards cycles.
func (l *Library) SetFaultHook(h fault.HardwareHook) {
	l.hook = h
	if l.sys != nil {
		l.sys.SetFaultHook(h)
	}
}

// SetHeartbeat installs a liveness callback on the session's hardware; it
// survives InitializeBoards/FreeBoards cycles.
func (l *Library) SetHeartbeat(beat func()) {
	l.beat = beat
	if l.sys != nil {
		l.sys.SetHeartbeat(beat)
	}
}

// SetPool installs the worker pool on the session's hardware; it survives
// InitializeBoards/FreeBoards cycles. A nil pool runs serially.
func (l *Library) SetPool(p *parallelize.Pool) {
	l.pool = p
	if l.sys != nil {
		l.sys.SetPool(p)
	}
}

// AllocateBoards records the number of boards to acquire
// (wine2_allocate_board).
func (l *Library) AllocateBoards(n int) error {
	if l.sys != nil {
		return fmt.Errorf("wine2: boards already acquired")
	}
	if n < 1 || n > l.cfg.Boards() {
		return fmt.Errorf("wine2: cannot allocate %d boards, machine has %d", n, l.cfg.Boards())
	}
	l.requested = n
	return nil
}

// InitializeBoards acquires the boards (wine2_initialize_board).
func (l *Library) InitializeBoards() error {
	if l.requested == 0 {
		return fmt.Errorf("wine2: initialize before allocate")
	}
	if l.sys != nil {
		return fmt.Errorf("wine2: already initialized")
	}
	sub := l.cfg
	sub.Clusters = (l.requested + l.cfg.BoardsPerCluster - 1) / l.cfg.BoardsPerCluster
	sub.BoardsPerCluster = l.cfg.BoardsPerCluster
	if l.requested < sub.Clusters*sub.BoardsPerCluster {
		sub.Clusters = l.requested
		sub.BoardsPerCluster = 1
	}
	sys, err := NewSystem(sub)
	if err != nil {
		return err
	}
	sys.SetFaultHook(l.hook)
	sys.SetHeartbeat(l.beat)
	sys.SetPool(l.pool)
	l.sys = sys
	return nil
}

// SetNN declares the number of particles each process will pass to the force
// calculation (wine2_set_nn).
func (l *Library) SetNN(n int) error {
	if l.sys == nil {
		return fmt.Errorf("wine2: set_nn before initialize")
	}
	if n < 1 {
		return fmt.Errorf("wine2: nn %d must be positive", n)
	}
	if n > l.sys.Config().ParticleCapacity() {
		return fmt.Errorf("wine2: nn %d exceeds particle memory capacity %d", n, l.sys.Config().ParticleCapacity())
	}
	l.nn = n
	return nil
}

// CalcForceAndPotWavepart computes the wavenumber-space part of the Coulomb
// force on this process's particles and the total wavenumber-space potential
// energy (calculate_force_and_pot_wavepart_nooffset). Each process passes its
// own positions/charges; the structure factors are summed across the
// communicator before the IDFT, so the returned potential is the full-system
// value on every rank.
func (l *Library) CalcForceAndPotWavepart(p ewald.Params, waves []ewald.Wave, pos []vec.V, q []float64) ([]vec.V, float64, error) {
	return l.CalcForceAndPotWavepartInto(p, waves, pos, q, nil)
}

// CalcForceAndPotWavepartInto is CalcForceAndPotWavepart writing the forces
// into dst (reused when len(dst) == len(pos), reallocated otherwise) and
// drawing all intermediate buffers — the quantized particle image, the
// structure factors, the reduction message — from session scratch. Results
// are bit-identical to the allocating call.
//
//mdm:stepflow -- hot-path root: the WINE-2 session's per-step wavenumber pass (Table 2 loop)
func (l *Library) CalcForceAndPotWavepartInto(p ewald.Params, waves []ewald.Wave, pos []vec.V, q []float64, dst []vec.V) ([]vec.V, float64, error) {
	pw, sn, cn, err := l.wavePrepare(p, waves, pos, q)
	if err != nil {
		return nil, 0, err
	}
	forces, err := l.sys.IDFTQuantizedInto(waves, sn, cn, pw, dst)
	if err != nil {
		return nil, 0, err
	}
	pot := ewald.WavenumberEnergy(p, waves, sn, cn)
	return forces, pot, nil
}

// CalcForceAndPotWavepartCoordsInto is CalcForceAndPotWavepartInto writing
// the force components into structure-of-arrays planes; the DFT pass, the
// structure-factor reduction and the returned potential are shared word for
// word with the AoS call.
//
//mdm:stepflow -- hot-path root: the WINE-2 session's per-step wavenumber pass, SoA output (Table 2 loop)
func (l *Library) CalcForceAndPotWavepartCoordsInto(p ewald.Params, waves []ewald.Wave, pos []vec.V, q []float64, dst soa.Coords) (soa.Coords, float64, error) {
	pw, sn, cn, err := l.wavePrepare(p, waves, pos, q)
	if err != nil {
		return soa.Coords{}, 0, err
	}
	fc, err := l.sys.IDFTQuantizedCoordsInto(waves, sn, cn, pw, dst)
	if err != nil {
		return soa.Coords{}, 0, err
	}
	pot := ewald.WavenumberEnergy(p, waves, sn, cn)
	return fc, pot, nil
}

// wavePrepare is the shared host flow of a force call up to the IDFT: session
// checks, the single SDRAM particle-image write both passes read, the DFT,
// and the cross-process structure-factor reduction.
func (l *Library) wavePrepare(p ewald.Params, waves []ewald.Wave, pos []vec.V, q []float64) (*ParticleWords, []float64, []float64, error) {
	if l.sys == nil {
		return nil, nil, nil, fmt.Errorf("wine2: force call before initialize")
	}
	if l.nn == 0 {
		return nil, nil, nil, fmt.Errorf("wine2: force call before set_nn")
	}
	if len(pos) > l.nn {
		return nil, nil, nil, fmt.Errorf("wine2: %d particles exceed declared nn %d", len(pos), l.nn)
	}
	// Write the SDRAM particle image once; the DFT and IDFT passes both read
	// it, halving the host quantization work of the call pair.
	pw, err := l.sys.QuantizeInto(l.pw, p.L, pos, q)
	if err != nil {
		return nil, nil, nil, err
	}
	l.pw = pw
	sn, cn, err := l.sys.DFTQuantizedInto(waves, pw, l.sn, l.cn)
	if err != nil {
		return nil, nil, nil, err
	}
	l.sn, l.cn = sn, cn
	if l.comm != nil && l.comm.Size() > 1 {
		// Reduce S and C across processes in one message, mirroring the
		// single exchange of the hardware's S+C / S-C readout.
		if cap(l.redbuf) < 2*len(waves) {
			l.redbuf = make([]float64, 0, 2*len(waves))
		}
		buf := l.redbuf[:0]
		buf = append(buf, sn...)
		buf = append(buf, cn...)
		buf, err = l.comm.AllreduceSum(buf)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("wine2: structure-factor reduction: %w", err)
		}
		sn = buf[:len(waves)]
		cn = buf[len(waves):]
	}
	return pw, sn, cn, nil
}

// FreeBoards releases the boards (wine2_free_board).
func (l *Library) FreeBoards() error {
	if l.sys == nil {
		return fmt.Errorf("wine2: free without initialize")
	}
	l.sys = nil
	l.requested = 0
	l.nn = 0
	return nil
}

// System exposes the underlying simulated machine (nil before
// InitializeBoards).
func (l *Library) System() *System { return l.sys }
