package wine2

import (
	"fmt"

	"mdm/internal/ewald"
	"mdm/internal/vec"
)

// Board-partitioned operation. The §5 run had N = 1.88×10⁷ particles but a
// board's particle memory holds only ParticleCapacity (1M) of them, so the
// production dataflow blocks the particle set across boards: each board
// computes partial structure factors for its resident block (DFT mode), the
// host sums the partials, and in IDFT mode each board produces the full
// wavenumber force for its own block from the global structure factors.
// These entry points reproduce that dataflow and verify it is numerically
// identical to the monolithic path (the fixed-point accumulators make the
// partial sums exact).

// blocks splits n particles into board-sized contiguous blocks.
func (s *System) blocks(n int) ([][2]int, error) {
	capPerBoard := s.cfg.ParticleCapacity()
	if capPerBoard < 1 {
		return nil, fmt.Errorf("wine2: zero board capacity")
	}
	need := (n + capPerBoard - 1) / capPerBoard
	if need > s.cfg.Boards() {
		return nil, fmt.Errorf("wine2: %d particles need %d boards, machine has %d",
			n, need, s.cfg.Boards())
	}
	var out [][2]int
	for lo := 0; lo < n; lo += capPerBoard {
		hi := min(lo+capPerBoard, n)
		out = append(out, [2]int{lo, hi})
	}
	return out, nil
}

// DFTPartitioned computes the structure factors with the board-blocked
// dataflow: per-board partial S±C accumulators reduced on the host. It
// returns the totals plus the number of boards used.
func (s *System) DFTPartitioned(l float64, waves []ewald.Wave, pos []vec.V, q []float64) (sn, cn []float64, boards int, err error) {
	if len(pos) != len(q) {
		return nil, nil, 0, fmt.Errorf("wine2: %d positions vs %d charges", len(pos), len(q))
	}
	blks, err := s.blocks(len(pos))
	if err != nil {
		return nil, nil, 0, err
	}
	sn = make([]float64, len(waves))
	cn = make([]float64, len(waves))
	for _, b := range blks {
		ps, pc, err := s.DFT(l, waves, pos[b[0]:b[1]], q[b[0]:b[1]])
		if err != nil {
			return nil, nil, 0, err
		}
		for w := range waves {
			sn[w] += ps[w]
			cn[w] += pc[w]
		}
	}
	return sn, cn, len(blks), nil
}

// IDFTPartitioned computes the wavenumber forces with the board-blocked
// dataflow: each board evaluates its own particle block against the global
// structure factors.
func (s *System) IDFTPartitioned(l float64, waves []ewald.Wave, sn, cn []float64, pos []vec.V, q []float64) ([]vec.V, int, error) {
	if len(pos) != len(q) {
		return nil, 0, fmt.Errorf("wine2: %d positions vs %d charges", len(pos), len(q))
	}
	blks, err := s.blocks(len(pos))
	if err != nil {
		return nil, 0, err
	}
	forces := make([]vec.V, len(pos))
	for _, b := range blks {
		f, err := s.IDFT(l, waves, sn, cn, pos[b[0]:b[1]], q[b[0]:b[1]])
		if err != nil {
			return nil, 0, err
		}
		copy(forces[b[0]:b[1]], f)
	}
	return forces, len(blks), nil
}
