package cellindex

import (
	"math/rand"
	"testing"

	"mdm/internal/parallelize"
	"mdm/internal/vec"
)

// The counting sort and the cell-memory build must produce byte-identical
// layouts at every pool width — the foundation of the repo-wide determinism
// contract (a different j ordering would change float32 accumulation order
// everywhere downstream).

func TestSortPoolBitIdentical(t *testing.T) {
	const l = 24.0
	g, err := NewGrid(l, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	pos := make([]vec.V, 500)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
	}
	serial := Sort(g, pos)
	for _, w := range []int{1, 2, 3, 4, 8, 16} {
		par := SortPool(g, pos, parallelize.New(w))
		if par.Pos.Len() != serial.Pos.Len() || len(par.Order) != len(serial.Order) {
			t.Fatalf("workers=%d: layout sizes differ", w)
		}
		for k := 0; k < serial.Pos.Len(); k++ {
			if par.At(k) != serial.At(k) || par.Order[k] != serial.Order[k] {
				t.Fatalf("workers=%d: sorted slot %d differs: %v/%d vs %v/%d",
					w, k, par.At(k), par.Order[k], serial.At(k), serial.Order[k])
			}
		}
		for c := range serial.Start {
			if par.Start[c] != serial.Start[c] {
				t.Fatalf("workers=%d: Start[%d] = %d, serial %d", w, c, par.Start[c], serial.Start[c])
			}
		}
	}
}

func TestNeighborTableMatchesGrid(t *testing.T) {
	g, err := NewGrid(30, 3)
	if err != nil {
		t.Fatal(err)
	}
	nt := BuildNeighborTable(g, parallelize.New(4))
	if nt.Grid() != g {
		t.Fatal("table does not reference its grid")
	}
	for c := 0; c < g.NumCells(); c++ {
		want := g.Neighbors(c)
		got := nt.Of(c)
		if len(got) != len(want) {
			t.Fatalf("cell %d: %d cached neighbors, want %d", c, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("cell %d neighbor %d: %+v vs %+v", c, k, got[k], want[k])
			}
		}
	}
}
